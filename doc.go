// Package wormlan reproduces "Multicasting Protocols for High-Speed,
// Wormhole-Routing Local Area Networks" (Gerla, Palnati, Walton,
// SIGCOMM 1996) as a production-quality Go library.
//
// The repository contains:
//
//   - A deterministic byte-level wormhole LAN simulator (internal/des,
//     internal/network): crossbar switches, slack buffers with STOP/GO
//     backpressure, source routing, switch-level multicast schemes.
//   - Autonet/Myrinet up/down deadlock-free routing (internal/updown).
//   - Multicast source-route codecs, including the linearized tree header
//     of the paper's Figure 2 (internal/route).
//   - The host-adapter multicast protocols of Sections 4-6: Hamiltonian
//     circuit and rooted tree, implicit ACK/NACK buffer reservation, two
//     buffer classes, cut-through forwarding (internal/adapter,
//     internal/multicast).
//   - A goroutine-based emulation of the Myrinet/LANai prototype of
//     Section 8 (internal/emu) and the IP class-D address mapping of
//     Section 8.1 (internal/ipmap).
//   - One-call presets for every figure of the evaluation and the design
//     ablations (internal/core), driven by cmd/mcbench and the benchmarks
//     in bench_test.go.
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for paper-vs-measured results.
package wormlan
