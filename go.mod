module wormlan

go 1.22
