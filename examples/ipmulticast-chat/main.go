// ipmulticast-chat: the Section 8.1 interoperation demo — IP multicast
// applications (think 'wb' and 'nv') running over Myrinet multicast.
//
// Class D addresses map to 8-bit Myrinet groups by their low byte; two IP
// sessions whose addresses collide in the low bits share one Myrinet group
// (kept as the union of both memberships), and the receiving IP layer
// filters out the session a host did not join.
package main

import (
	"fmt"
	"log"
	"net"

	"wormlan/internal/adapter"
	"wormlan/internal/des"
	"wormlan/internal/ipmap"
	"wormlan/internal/multicast"
	"wormlan/internal/network"
	"wormlan/internal/topology"
	"wormlan/internal/updown"
)

// session pairs a transfer with the IP group it was sent to (a real stack
// would carry the destination address in the payload header).
var sessionOf = map[int64]net.IP{}

func main() {
	whiteboard := net.ParseIP("224.2.0.9") // 'wb' session -> Myrinet group 9
	video := net.ParseIP("239.9.9.9")      // 'nv' session -> the same group 9

	g := topology.Myrinet4()
	hosts := g.Hosts()

	// The multicast group manager's view: who joined which IP session.
	tbl := ipmap.NewTable()
	join := func(h topology.NodeID, ip net.IP) {
		if _, err := tbl.Join(h, ip); err != nil {
			log.Fatal(err)
		}
	}
	join(hosts[0], whiteboard)
	join(hosts[1], whiteboard)
	join(hosts[2], whiteboard)
	join(hosts[2], video)
	join(hosts[3], video)
	join(hosts[4], video)

	mg, err := ipmap.MapIP(whiteboard)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("IP %v and %v both map to Myrinet group %d\n", whiteboard, video, mg)
	fmt.Printf("union membership of group %d: %v\n\n", mg, tbl.Members(mg))

	// Wire the LAN with that union group.
	ud, err := updown.New(g, topology.None)
	if err != nil {
		log.Fatal(err)
	}
	routeTbl, err := ud.NewTable(false)
	if err != nil {
		log.Fatal(err)
	}
	k := des.NewKernel()
	fab, err := network.New(k, g, ud, network.Config{})
	if err != nil {
		log.Fatal(err)
	}
	sys, err := adapter.NewSystem(k, fab, routeTbl, adapter.Config{Mode: adapter.ModeCircuit}, 3)
	if err != nil {
		log.Fatal(err)
	}
	grp, err := multicast.NewGroup(int(mg), tbl.Members(mg))
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sys.AddGroup(grp); err != nil {
		log.Fatal(err)
	}

	// The adapter delivers the originator's own copy synchronously inside
	// SendMulticast, before the session map entry exists, so deliveries
	// are collected and filtered after the run.
	var deliveries []adapter.AppDelivery
	sys.OnAppDeliver = func(d adapter.AppDelivery) {
		if d.Transfer != nil {
			deliveries = append(deliveries, d)
		}
	}

	// The first whiteboard member draws a stroke; the first video-only
	// member sends a frame.
	wb, err := sys.Adapter(hosts[0]).SendMulticast(int(mg), 800)
	if err != nil {
		log.Fatal(err)
	}
	sessionOf[wb.ID] = whiteboard
	nv, err := sys.Adapter(hosts[3]).SendMulticast(int(mg), 1500)
	if err != nil {
		log.Fatal(err)
	}
	sessionOf[nv.ID] = video

	if err := k.Run(0); err != nil {
		log.Fatal(err)
	}

	for _, d := range deliveries {
		ip := sessionOf[d.Transfer.ID]
		// Receiver-side IP filtering: hosts in the shared Myrinet group
		// but not in this IP session drop the packet here.
		if tbl.Accept(d.Host, ip) {
			fmt.Printf("t=%6d: host %d delivers %v packet from host %d up to the application\n",
				d.At, d.Host, ip, d.Transfer.Origin)
		} else {
			fmt.Printf("t=%6d: host %d filters out %v packet (not joined)\n",
				d.At, d.Host, ip)
		}
	}
	fmt.Printf("\nWhiteboard-only hosts (%d, %d) filtered the video frame;\n", hosts[0], hosts[1])
	fmt.Printf("video-only hosts (%d, %d) filtered the whiteboard stroke;\n", hosts[3], hosts[4])
	fmt.Printf("host %d, joined to both sessions, kept both.\n", hosts[2])
}
