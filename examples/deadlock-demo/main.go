// deadlock-demo: makes the paper's two deadlock classes observable.
//
// Part 1 — wormhole (path) deadlock in the fabric: on a ring of switches,
// hand-built clockwise routes create a cycle of blocked worms; the same
// traffic under up/down routing completes.  This is the failure mode
// up/down routing exists to prevent (Section 2).
//
// Part 2 — host-adapter buffer deadlock (Figure 6): two hosts multicast to
// each other with buffers sized for exactly one worm.  Under a single
// buffer class the reservations livelock (NACK storm, eventual give-up);
// the two-class rule of Figure 7 completes cleanly.
package main

import (
	"fmt"
	"log"

	"wormlan/internal/adapter"
	"wormlan/internal/des"
	"wormlan/internal/flit"
	"wormlan/internal/multicast"
	"wormlan/internal/network"
	"wormlan/internal/route"
	"wormlan/internal/topology"
	"wormlan/internal/updown"
)

func main() {
	pathDeadlock()
	fmt.Println()
	bufferDeadlock()
}

// pathDeadlock injects four long worms clockwise around a 4-switch ring so
// that each holds the link the next one needs.
func pathDeadlock() {
	fmt.Println("== Part 1: wormhole path deadlock on a ring ==")
	g := topology.Ring(4, 1)
	ud, err := updown.New(g, topology.None)
	if err != nil {
		log.Fatal(err)
	}
	k := des.NewKernel()
	delivered := 0
	fab, err := network.New(k, g, ud, network.Config{
		StopMark: 8, GoMark: 4,
		OnDeliver: func(network.Delivery) { delivered++ },
	})
	if err != nil {
		log.Fatal(err)
	}
	hosts := g.Hosts()

	// Hand-built clockwise 2-hop routes h(i) -> h(i+2): these ignore the
	// up/down rule and form the textbook channel cycle.
	clockwisePort := func(sw topology.NodeID) topology.PortID {
		next := g.Switches()[(int(sw)+1)%4]
		for pi, p := range g.Node(sw).Ports {
			if p.Wired() && p.Peer == next {
				return topology.PortID(pi)
			}
		}
		panic("no clockwise port")
	}
	hostPort := func(sw, host topology.NodeID) topology.PortID {
		for pi, p := range g.Node(sw).Ports {
			if p.Wired() && p.Peer == host {
				return topology.PortID(pi)
			}
		}
		panic("no host port")
	}
	for i := 0; i < 4; i++ {
		s0 := g.Switches()[i]
		s1 := g.Switches()[(i+1)%4]
		dst := hosts[(i+2)%4]
		hdr, err := route.EncodeUnicast([]topology.PortID{
			clockwisePort(s0), clockwisePort(s1), hostPort(g.Switches()[(i+2)%4], dst),
		})
		if err != nil {
			log.Fatal(err)
		}
		w := &flit.Worm{ID: int64(i + 1), Src: hosts[i], Dst: dst,
			Mode: flit.Unicast, Group: -1, Header: hdr, PayloadLen: 500}
		if err := fab.Inject(hosts[i], w); err != nil {
			log.Fatal(err)
		}
	}
	k.Run(20_000)
	fmt.Printf("clockwise minimal routing: delivered %d of 4 worms; stalled=%v\n",
		delivered, fab.Stalled(1000))
	if fab.Stalled(1000) {
		fmt.Println("stall report (cycle of held output ports):")
		fmt.Print(fab.StallReport())
	}

	// The same traffic under up/down routing drains without deadlock.
	k2 := des.NewKernel()
	delivered2 := 0
	fab2, err := network.New(k2, g, ud, network.Config{
		StopMark: 8, GoMark: 4,
		OnDeliver: func(network.Delivery) { delivered2++ },
	})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		rt, err := ud.Route(hosts[i], hosts[(i+2)%4])
		if err != nil {
			log.Fatal(err)
		}
		hdr, err := route.EncodeUnicast(rt.Ports)
		if err != nil {
			log.Fatal(err)
		}
		w := &flit.Worm{ID: int64(10 + i), Src: hosts[i], Dst: hosts[(i+2)%4],
			Mode: flit.Unicast, Group: -1, Header: hdr, PayloadLen: 500}
		if err := fab2.Inject(hosts[i], w); err != nil {
			log.Fatal(err)
		}
	}
	k2.Run(0)
	fmt.Printf("up/down routing:           delivered %d of 4 worms; stalled=%v\n",
		delivered2, fab2.Stalled(1000))
}

// bufferDeadlock runs the Figure 6 crossing-multicast scenario under both
// buffer disciplines.
func bufferDeadlock() {
	fmt.Println("== Part 2: host-adapter buffer deadlock (Figure 6) ==")
	for _, single := range []bool{true, false} {
		g := topology.Line(2, 1)
		k := des.NewKernel()
		ud, err := updown.New(g, topology.None)
		if err != nil {
			log.Fatal(err)
		}
		tbl, err := ud.NewTable(false)
		if err != nil {
			log.Fatal(err)
		}
		fab, err := network.New(k, g, ud, network.Config{})
		if err != nil {
			log.Fatal(err)
		}
		sys, err := adapter.NewSystem(k, fab, tbl, adapter.Config{
			Mode:        adapter.ModeCircuit,
			ClassBytes:  400, // exactly one worm per class
			NackBackoff: 1024,
			MaxRetries:  6,
			SingleClass: single,
		}, 11)
		if err != nil {
			log.Fatal(err)
		}
		delivered := 0
		sys.OnAppDeliver = func(adapter.AppDelivery) { delivered++ }
		hosts := g.Hosts()
		grp, err := multicast.NewGroup(1, hosts)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := sys.AddGroup(grp); err != nil {
			log.Fatal(err)
		}
		// Both hosts multicast simultaneously: each pins its only buffer
		// with its own message while the other's message asks for it.
		for _, h := range hosts {
			if _, err := sys.Adapter(h).SendMulticast(1, 400); err != nil {
				log.Fatal(err)
			}
		}
		if err := k.Run(0); err != nil {
			log.Fatal(err)
		}
		st := sys.Stats()
		mode := "two-class rule "
		if single {
			mode = "single class   "
		}
		fmt.Printf("%s: delivered=%d/4 nacks=%d retransmits=%d giveups=%d\n",
			mode, delivered, st.Nacks, st.Retransmits, st.GiveUps)
	}
	fmt.Println("\nThe two-buffer-class rule (class 1 before the ID reversal, class 2")
	fmt.Println("after) makes every buffer-wait chain point to a higher (ID, class)")
	fmt.Println("pair, so the cycle of Figure 6 cannot form.")
}
