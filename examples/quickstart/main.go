// Quickstart: build a small wormhole LAN, register a multicast group on a
// Hamiltonian circuit, send one message, and watch each member's adapter
// deliver it — the minimal end-to-end use of the library.
package main

import (
	"fmt"
	"log"

	"wormlan/internal/adapter"
	"wormlan/internal/des"
	"wormlan/internal/multicast"
	"wormlan/internal/network"
	"wormlan/internal/topology"
	"wormlan/internal/updown"
)

func main() {
	// A LAN of four crossbar switches in a ring with two hosts each —
	// the paper's prototype configuration.
	g := topology.Myrinet4()

	// Deadlock-free up/down routing (Autonet/Myrinet style) and the
	// precomputed route table between all host pairs.
	ud, err := updown.New(g, topology.None)
	if err != nil {
		log.Fatal(err)
	}
	table, err := ud.NewTable(false)
	if err != nil {
		log.Fatal(err)
	}

	// The byte-level switching fabric and the host-adapter protocol layer
	// (Hamiltonian-circuit multicast with ACK/NACK buffer reservation).
	k := des.NewKernel()
	fab, err := network.New(k, g, ud, network.Config{})
	if err != nil {
		log.Fatal(err)
	}
	sys, err := adapter.NewSystem(k, fab, table, adapter.Config{
		Mode:       adapter.ModeCircuit,
		CutThrough: true,
	}, 42)
	if err != nil {
		log.Fatal(err)
	}

	sys.OnAppDeliver = func(d adapter.AppDelivery) {
		if d.Transfer != nil {
			fmt.Printf("t=%6d byte-times: host %d received multicast #%d from host %d (%d bytes)\n",
				d.At, d.Host, d.Transfer.ID, d.Transfer.Origin, d.Transfer.Payload)
		}
	}

	// A group of five of the eight hosts.
	hosts := g.Hosts()
	grp, err := multicast.NewGroup(1, []topology.NodeID{
		hosts[0], hosts[2], hosts[3], hosts[5], hosts[7],
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sys.AddGroup(grp); err != nil {
		log.Fatal(err)
	}

	// Host 3 multicasts a 2000-byte message to the group.  The adapter
	// delivers the originator's own copy synchronously at send time
	// (unordered circuit), so the originate line comes first.
	fmt.Printf("host %d originates a 2000-byte multicast to group %d\n", hosts[3], grp.ID)
	if _, err := sys.Adapter(hosts[3]).SendMulticast(1, 2000); err != nil {
		log.Fatal(err)
	}

	if err := k.Run(0); err != nil {
		log.Fatal(err)
	}
	st := sys.Stats()
	fmt.Printf("done at t=%d: %d deliveries, %d cut-through forwards, %d NACKs\n",
		k.Now(), st.Deliveries, st.CutThroughFwds, st.Nacks)
}
