// torus-multicast: a reduced Figure 10 — compares the three host-adapter
// multicast schemes (Hamiltonian store-and-forward, Hamiltonian
// cut-through, rooted tree) on the 8x8 torus across offered loads, the
// workload of Section 7.1 of the paper (10 groups of 10 members, 10%
// multicast probability, geometric 400-byte worms).
package main

import (
	"fmt"
	"log"

	"wormlan/internal/adapter"
	"wormlan/internal/sim"
	"wormlan/internal/topology"
)

func main() {
	fmt.Println("scheme                  load   mcLatency  uniLatency  thpt/host")
	for _, scheme := range []sim.Scheme{sim.HamiltonianSF, sim.HamiltonianCT, sim.TreeSF} {
		for _, load := range []float64{0.01, 0.02, 0.03, 0.04} {
			r, err := sim.Run(sim.Config{
				Graph:         topology.Torus(8, 8, 1, 1),
				Scheme:        scheme,
				OfferedLoad:   load,
				MulticastProb: 0.1,
				NumGroups:     10,
				GroupSize:     10,
				Warmup:        40_000,
				Measure:       150_000,
				Seed:          1996,
				Adapter:       adapter.Config{PlainForwarding: true},
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-22s %5.2f  %9.0f  %9.0f   %8.4f\n",
				scheme.Name, load, r.MCLatency.Mean(), r.UniLatency.Mean(), r.ThroughputPerHost)
		}
	}
	fmt.Println("\nExpected shape (paper, Figure 10): the cut-through circuit is")
	fmt.Println("cheapest at light load; the tree overtakes it as load rises; the")
	fmt.Println("store-and-forward circuit is the most expensive throughout.")
}
