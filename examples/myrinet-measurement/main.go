// myrinet-measurement: the Section 8.2 experiment — LANai-resident
// Hamiltonian multicast on eight emulated host adapter cards, measuring
// per-host throughput (Figure 12) and input-buffer loss (Figure 13) as
// packet size grows, for one sender and for all eight sending at once.
//
// The emulation runs in dilated wall-clock time (see internal/emu), so
// this example takes ~20 seconds of real time.
package main

import (
	"fmt"
	"time"

	"wormlan/internal/emu"
)

func main() {
	cfg := emu.Config{TimeScale: 25}
	sizes := []int{1024, 2048, 4096, 8192}

	fmt.Println("single transmitting host (solid curve of Figure 12):")
	for _, p := range emu.Sweep(cfg, sizes, false, time.Second) {
		fmt.Printf("  %s\n", p)
	}
	fmt.Println("all eight hosts transmitting (dashed curve; losses are Figure 13):")
	for _, p := range emu.Sweep(cfg, sizes, true, time.Second) {
		fmt.Printf("  %s\n", p)
	}
	fmt.Println("\nExpected shape (paper): throughput rises with packet size as the")
	fmt.Println("per-packet host cost amortizes; all-send goodput sits well below the")
	fmt.Println("single-sender curve; loss appears only when hosts originate while")
	fmt.Println("forwarding, and grows with packet size.")
}
