// shufflenet-backbone: a reduced Figure 11 — multicast over an optical
// backbone.  The 24-node bidirectional shufflenet has 1000 byte-times of
// propagation per link, so delay (not bandwidth) dominates; the example
// sweeps the multicast proportion and compares the tree against the
// Hamiltonian circuit.
package main

import (
	"fmt"
	"log"

	"wormlan/internal/adapter"
	"wormlan/internal/sim"
	"wormlan/internal/topology"
)

func main() {
	fmt.Println("scheme                 prop   load    delay   mcLatency")
	for _, scheme := range []sim.Scheme{sim.TreeSF, sim.HamiltonianSF} {
		for _, prop := range []float64{0.05, 0.10, 0.20} {
			for _, load := range []float64{0.01, 0.03} {
				r, err := sim.Run(sim.Config{
					Graph:         topology.BidirShufflenet(2, 3, 1000),
					Scheme:        scheme,
					OfferedLoad:   load,
					MulticastProb: prop,
					NumGroups:     4,
					GroupSize:     6,
					Warmup:        100_000,
					Measure:       400_000,
					Seed:          7,
					Adapter:       adapter.Config{PlainForwarding: true},
				})
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf("%-22s %4.2f  %5.2f  %7.0f  %9.0f\n",
					scheme.Name, prop, load, r.AllLatency.Mean(), r.MCLatency.Mean())
			}
		}
	}
	fmt.Println("\nExpected shape (paper, Figure 11): the tree's delay curve sits")
	fmt.Println("below the Hamiltonian's for every multicast proportion, and delay")
	fmt.Println("rises with both load and proportion.")
}
