package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildWormlint compiles the linter once per test process.
func buildWormlint(t *testing.T) string {
	t.Helper()
	gocmd, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go command not in PATH")
	}
	exe := filepath.Join(t.TempDir(), "wormlint")
	cmd := exec.Command(gocmd, "build", "-o", exe, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building wormlint: %v\n%s", err, out)
	}
	return exe
}

// TestRepoComesUpClean is the contract's local enforcement: the whole
// repository must produce zero wormlint diagnostics, the same gate CI
// applies to every PR.
func TestRepoComesUpClean(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping whole-repo vet")
	}
	exe := buildWormlint(t)
	cmd := exec.Command(exe, "wormlan/...")
	cmd.Dir = ".." + string(os.PathSeparator) + ".." // repo root
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Run(); err != nil {
		t.Fatalf("wormlint found violations (or failed): %v\n%s", err, out.String())
	}
	if s := strings.TrimSpace(out.String()); s != "" {
		t.Fatalf("expected silent clean run, got:\n%s", s)
	}
}

// TestVettoolCatchesViolations drives the full go vet -vettool protocol
// against a scratch module containing one violation of each analyzer.
func TestVettoolCatchesViolations(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping vettool round-trip")
	}
	exe := buildWormlint(t)
	gocmd, _ := exec.LookPath("go")

	dir := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(dir, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module scratch\n\ngo 1.22\n")
	write("internal/sim/bad.go", `package sim

import "time"

func Bad(m map[int]int, ch chan int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	go func() { ch <- total }()
	_ = time.Now()
	return total
}
`)

	cmd := exec.Command(gocmd, "vet", "-vettool="+exe, "./...")
	cmd.Dir = dir
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	err := cmd.Run()
	if err == nil {
		t.Fatalf("go vet -vettool succeeded on a package with violations:\n%s", out.String())
	}
	got := out.String()
	for _, wantFrag := range []string{
		"wormlint/maporder",
		"wormlint/nogoroutine",
		"wormlint/wallclock",
		"range over map is nondeterministic",
		"go statement in deterministic kernel",
		"time.Now reads the host clock",
	} {
		if !strings.Contains(got, wantFrag) {
			t.Errorf("vet output missing %q:\n%s", wantFrag, got)
		}
	}
}
