package main

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// buildWormlint compiles the linter once per test process.
func buildWormlint(t *testing.T) string {
	t.Helper()
	gocmd, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go command not in PATH")
	}
	exe := filepath.Join(t.TempDir(), "wormlint")
	cmd := exec.Command(gocmd, "build", "-o", exe, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building wormlint: %v\n%s", err, out)
	}
	return exe
}

// TestRepoComesUpClean is the contract's local enforcement: the whole
// repository must produce zero wormlint diagnostics, the same gate CI
// applies to every PR.
func TestRepoComesUpClean(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping whole-repo vet")
	}
	exe := buildWormlint(t)
	cmd := exec.Command(exe, "wormlan/...")
	cmd.Dir = ".." + string(os.PathSeparator) + ".." // repo root
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Run(); err != nil {
		t.Fatalf("wormlint found violations (or failed): %v\n%s", err, out.String())
	}
	if s := strings.TrimSpace(out.String()); s != "" {
		t.Fatalf("expected silent clean run, got:\n%s", s)
	}
}

// TestVettoolCatchesViolations drives the full go vet -vettool protocol
// against a scratch module containing one violation of each analyzer.
func TestVettoolCatchesViolations(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping vettool round-trip")
	}
	exe := buildWormlint(t)
	gocmd, _ := exec.LookPath("go")

	dir := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(dir, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module scratch\n\ngo 1.22\n")
	write("internal/sim/bad.go", `package sim

import "time"

func Bad(m map[int]int, ch chan int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	go func() { ch <- total }()
	_ = time.Now()
	return total
}
`)

	cmd := exec.Command(gocmd, "vet", "-vettool="+exe, "./...")
	cmd.Dir = dir
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	err := cmd.Run()
	if err == nil {
		t.Fatalf("go vet -vettool succeeded on a package with violations:\n%s", out.String())
	}
	got := out.String()
	for _, wantFrag := range []string{
		"wormlint/maporder",
		"wormlint/nogoroutine",
		"wormlint/wallclock",
		"range over map is nondeterministic",
		"go statement in deterministic kernel",
		"time.Now reads the host clock",
	} {
		if !strings.Contains(got, wantFrag) {
			t.Errorf("vet output missing %q:\n%s", wantFrag, got)
		}
	}
}

// writeTree materializes a file tree under a fresh temp dir.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for rel, content := range files {
		path := filepath.Join(dir, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestVettoolCatchesContractAnalyzers drives the vet protocol against a
// scratch module violating each of the contract-enforcement analyzers
// (poolreset, portbyte, traceguard, kindswitch), proving they survive the
// export-data type-checking path, not just the source-importer test
// harness.
func TestVettoolCatchesContractAnalyzers(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping vettool round-trip")
	}
	exe := buildWormlint(t)
	gocmd, _ := exec.LookPath("go")

	dir := writeTree(t, map[string]string{
		"go.mod": "module scratch\n\ngo 1.22\n",
		// poolreset: recycle skips Time, which Place mutates.
		"internal/eventq/pool.go": `package eventq

type Item struct {
	Time int64
	Fire func()
	next *Item
}

type Pool struct{ free *Item }

func (p *Pool) Place(it *Item, t int64, fn func(), n *Item) {
	it.Time = t
	it.Fire = fn
	it.next = n
}

func (p *Pool) recycle(it *Item) {
	it.Fire = nil
	it.next = p.free
	p.free = it
}
`,
		// portbyte: hand-rolled VC packing outside internal/route.
		"internal/network/pack.go": `package network

func Pack(vc, port byte) byte { return vc<<6 | port }
`,
		"internal/trace/trace.go": `package trace

type Event struct{ Arg int64 }

type Recorder interface{ Record(Event) }
`,
		// traceguard: an emission with no rec != nil guard in sight.
		"internal/adapter/report.go": `package adapter

import "scratch/internal/trace"

func Report(r trace.Recorder, n int64) {
	r.Record(trace.Event{Arg: n})
}
`,
		"internal/flit/flit.go": `package flit

type Kind uint8

const (
	Header Kind = iota
	Payload
	Tail
)
`,
		// kindswitch: a flit.Kind switch missing Tail, no default.
		"internal/sim/kind.go": `package sim

import "scratch/internal/flit"

func Describe(k flit.Kind) string {
	switch k {
	case flit.Header:
		return "header"
	case flit.Payload:
		return "payload"
	}
	return "?"
}
`,
	})

	cmd := exec.Command(gocmd, "vet", "-vettool="+exe, "./...")
	cmd.Dir = dir
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Run(); err == nil {
		t.Fatalf("go vet -vettool succeeded on a module with contract violations:\n%s", out.String())
	}
	got := out.String()
	for _, wantFrag := range []string{
		"wormlint/poolreset",
		"leaves field Time of Item unassigned",
		"wormlint/portbyte",
		"shift by 6 on a byte",
		"wormlint/traceguard",
		"not dominated by a rec != nil guard",
		"wormlint/kindswitch",
		"switch over flit.Kind is not exhaustive: missing Tail",
	} {
		if !strings.Contains(got, wantFrag) {
			t.Errorf("vet output missing %q:\n%s", wantFrag, got)
		}
	}
}

// TestAuditRoundTrip proves the -audit flag survives the whole protocol:
// go vet learns it from -flags, forwards it to every compilation unit, and
// the unit run flags the stale marker — while the ordinary contract gate
// stays clean on the same module (the marker suppresses nothing, so there
// is nothing for the normal run to report).
func TestAuditRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping vettool round-trip")
	}
	exe := buildWormlint(t)
	gocmd, _ := exec.LookPath("go")

	dir := writeTree(t, map[string]string{
		"go.mod": "module scratch\n\ngo 1.22\n",
		"internal/sim/keys.go": `package sim

func Sum(m map[int]int) int {
	t := 0
	//wormlint:ordered integer sum is order-insensitive
	for _, v := range m {
		t += v
	}
	return t
}

func Keys(m map[int]int) []int {
	ks := make([]int, 0, len(m))
	//wormlint:ordered key collection is order-insensitive
	for k := range m {
		ks = append(ks, k)
	}
	return ks
}
`,
	})

	run := func(args ...string) (string, error) {
		cmd := exec.Command(gocmd, args...)
		cmd.Dir = dir
		var out bytes.Buffer
		cmd.Stdout = &out
		cmd.Stderr = &out
		err := cmd.Run()
		return out.String(), err
	}

	if got, err := run("vet", "-vettool="+exe, "./..."); err != nil {
		t.Fatalf("contract gate should pass (both loops are justified or exempt): %v\n%s", err, got)
	}
	got, err := run("vet", "-vettool="+exe, "-audit", "./...")
	if err == nil {
		t.Fatalf("audit run should fail on the stale marker:\n%s", got)
	}
	if !strings.Contains(got, "stale //wormlint:ordered marker") || !strings.Contains(got, "wormlint/audit") {
		t.Errorf("audit output missing the stale-marker diagnostic:\n%s", got)
	}
	if n := strings.Count(got, "stale //wormlint:"); n != 1 {
		t.Errorf("audit flagged %d markers, want exactly 1 (the sum-loop marker is live):\n%s", n, got)
	}
}

// TestVersionHandshake checks the -V=full build-caching handshake: the
// output must name the executable and end in a content-derived buildID, or
// go vet will refuse the tool (or, worse, cache stale results).
func TestVersionHandshake(t *testing.T) {
	exe := buildWormlint(t)
	out, err := exec.Command(exe, "-V=full").CombinedOutput()
	if err != nil {
		t.Fatalf("wormlint -V=full: %v\n%s", err, out)
	}
	re := regexp.MustCompile(`^\S*wormlint version \S.* buildID=[0-9a-f]{64}\n$`)
	if !re.Match(out) {
		t.Fatalf("handshake output %q does not match %v", out, re)
	}
}

// TestFlagsDescriptor checks the -flags JSON go vet reads to learn which
// tool flags it may forward: audit must be declared as a boolean.
func TestFlagsDescriptor(t *testing.T) {
	exe := buildWormlint(t)
	out, err := exec.Command(exe, "-flags").CombinedOutput()
	if err != nil {
		t.Fatalf("wormlint -flags: %v\n%s", err, out)
	}
	var flags []struct {
		Name  string
		Bool  bool
		Usage string
	}
	if err := json.Unmarshal(out, &flags); err != nil {
		t.Fatalf("-flags output is not JSON: %v\n%s", err, out)
	}
	for _, fl := range flags {
		if fl.Name == "audit" {
			if !fl.Bool {
				t.Fatalf("audit flag not declared boolean: %+v", fl)
			}
			if fl.Usage == "" {
				t.Errorf("audit flag has no usage string")
			}
			return
		}
	}
	t.Fatalf("audit flag missing from -flags descriptor: %s", out)
}
