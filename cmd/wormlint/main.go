// Command wormlint statically enforces the simulator's determinism
// contract (see internal/lint and DESIGN.md §9).
//
// Standalone:
//
//	go run ./cmd/wormlint ./...
//
// As a vet tool (what CI runs):
//
//	go build -o bin/wormlint ./cmd/wormlint
//	go vet -vettool=bin/wormlint ./...
package main

import (
	"os"

	"wormlan/internal/lint"
)

func main() {
	os.Exit(lint.Main(os.Args[1:]))
}
