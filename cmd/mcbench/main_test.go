package main

import (
	"strings"
	"testing"
)

// TestExitCodes pins the process contract: usage errors exit 2, mid-run
// figure failures exit 1 — a figure must never fail silently with exit 0.
func TestExitCodes(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want int
		errs string // substring expected on stderr
	}{
		{"unknown figure", []string{"-fig", "14"}, 2, `unknown figure "14"`},
		{"garbage figure", []string{"-fig", "bogus"}, 2, "unknown figure"},
		{"unknown scale", []string{"-fig", "10", "-scale", "huge"}, 2, `unknown scale "huge"`},
		{"bad flag", []string{"-nope"}, 2, ""},
		// The -route contract shared with wormsim: exit 2 with the full
		// legal set in the message, before any simulation runs.
		{"unknown route", []string{"-fig", "routes", "-route", "left-hand"}, 2,
			"unknown route scheme"},
		{"route legal set", []string{"-fig", "routes", "-route", "left-hand"}, 2,
			"adaptive, clos, fullmesh, shufflenet, updown, vcmin"},
		// An impossible per-point timeout makes every simulation point
		// fail mid-run: the error must propagate to a non-zero exit.
		{"figure fails mid-run", []string{"-fig", "10", "-timeout", "1ns"}, 1, "timed out"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var out, errb strings.Builder
			got := run(c.args, &out, &errb)
			if got != c.want {
				t.Fatalf("run(%v) = %d, want %d\nstderr: %s", c.args, got, c.want, errb.String())
			}
			if c.errs != "" && !strings.Contains(errb.String(), c.errs) {
				t.Fatalf("stderr %q does not mention %q", errb.String(), c.errs)
			}
		})
	}
}

func TestFig12RunsClean(t *testing.T) {
	var out, errb strings.Builder
	if got := run([]string{"-fig", "12", "-perpoint", "50ms"}, &out, &errb); got != 0 {
		t.Fatalf("exit %d\nstderr: %s", got, errb.String())
	}
	if !strings.Contains(out.String(), "Figure 12") || !strings.Contains(out.String(), "points") {
		t.Fatalf("output missing figure or sweep report:\n%s", out.String())
	}
}
