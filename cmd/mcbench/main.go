// Command mcbench regenerates every figure of the paper's evaluation
// (Figures 10-13) and the DESIGN.md ablations.
//
// Usage:
//
//	mcbench -fig 10            # one figure (10, 11, 12, 13)
//	mcbench -fig all           # everything
//	mcbench -fig ablations     # the ablation suite
//	mcbench -scale full        # full DESIGN.md grids (minutes)
//
// Figures 12 and 13 come from the same measurement run (throughput and
// loss of the prototype emulation), so either -fig value produces both.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"wormlan/internal/core"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 10, 11, 12, 13, ablations, all")
	scaleFlag := flag.String("scale", "quick", "experiment scale: quick or full")
	seed := flag.Uint64("seed", 1996, "random seed")
	perPoint := flag.Duration("perpoint", 0, "wall-clock time per emulation point (figs 12/13)")
	flag.Parse()

	scale := core.Quick
	switch *scaleFlag {
	case "quick":
	case "full":
		scale = core.Full
	default:
		fmt.Fprintf(os.Stderr, "mcbench: unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}

	run := func(name string, f func() error) {
		start := time.Now()
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "mcbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("  [%s done in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	want := func(f string) bool { return *fig == "all" || *fig == f }

	if want("10") {
		run("fig10", func() error {
			rows, err := core.Fig10(scale, *seed)
			if err != nil {
				return err
			}
			core.PrintFig10(os.Stdout, rows)
			return nil
		})
	}
	if want("11") {
		run("fig11", func() error {
			rows, err := core.Fig11(scale, *seed)
			if err != nil {
				return err
			}
			core.PrintFig11(os.Stdout, rows)
			return nil
		})
	}
	if want("12") || want("13") {
		run("fig12+13", func() error {
			single, all := core.Fig12And13(scale, *perPoint)
			core.PrintFig12And13(os.Stdout, single, all)
			return nil
		})
	}
	if want("ablations") {
		run("ablations", func() error {
			bc, err := core.AblationBufferClasses(*seed)
			if err != nil {
				return err
			}
			core.PrintBufferClasses(os.Stdout, bc)
			or, err := core.AblationOrdering(*seed)
			if err != nil {
				return err
			}
			core.PrintOrdering(os.Stdout, or)
			tc, err := core.AblationTreeConstruction(*seed)
			if err != nil {
				return err
			}
			core.PrintTreeConstruction(os.Stdout, tc)
			rt, err := core.AblationRouting()
			if err != nil {
				return err
			}
			core.PrintRouting(os.Stdout, rt)
			fa, err := core.AblationFabricVsAdapter(*seed)
			if err != nil {
				return err
			}
			core.PrintFabricVsAdapter(os.Stdout, fa)
			bs, err := core.BufferOccupancyStudy(*seed, []float64{0.01, 0.02, 0.04, 0.06})
			if err != nil {
				return err
			}
			core.PrintBufferStudy(os.Stdout, bs)
			return nil
		})
	}
}
