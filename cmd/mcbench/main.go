// Command mcbench regenerates every figure of the paper's evaluation
// (Figures 10-13) and the DESIGN.md ablations.
//
// Usage:
//
//	mcbench -fig 10              # one figure (10, 11, 12, 13, ablations)
//	mcbench -fig all             # everything
//	mcbench -scale full          # full DESIGN.md grids (minutes)
//	mcbench -fig all -parallel 8 # fan simulation points across 8 workers
//	mcbench -fig all -cache /tmp/mc  # memoize points; re-runs are incremental
//
// Simulation figures (10, 11, ablations) are sweeps of independent
// deterministic points: -parallel changes wall-clock time only, never the
// rows (each point derives its own seed from its identity).  Figures 12
// and 13 come from the same wall-clock-measured emulation run, so they
// always execute sequentially and are never cached.
//
// Exit status: 0 on success, 1 if any figure fails mid-run, 2 on usage
// errors (unknown figure or scale).
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof"
	"os"
	"time"

	"wormlan/internal/core"
	"wormlan/internal/des"
	"wormlan/internal/faulttest"
	"wormlan/internal/profiling"
	"wormlan/internal/sim"
	"wormlan/internal/sweep"
	"wormlan/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

var validFigs = map[string]bool{
	"10": true, "11": true, "12": true, "13": true, "ablations": true, "all": true,
	// storms and routes are opt-in (not part of "all"): the chaos matrix
	// with the selected failure-detection mode in the recovery loop, and
	// the routing-scheme comparison (not a figure from the paper).
	"storms": true,
	"routes": true,
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mcbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fig := fs.String("fig", "all", "figure to regenerate: 10, 11, 12, 13, ablations, all, storms, routes")
	scaleFlag := fs.String("scale", "quick", "experiment scale: quick or full")
	seed := fs.Uint64("seed", 1996, "random seed")
	perPoint := fs.Duration("perpoint", 0, "wall-clock time per emulation point (figs 12/13)")
	parallel := fs.Int("parallel", 0, "simulation points run concurrently (0 = GOMAXPROCS, 1 = sequential)")
	cacheDir := fs.String("cache", "", "memoize completed sweep points in this directory")
	timeout := fs.Duration("timeout", 0, "per-point wall-clock timeout (0 = none)")
	progress := fs.Bool("progress", false, "stream per-point completions to stderr")
	metrics := fs.Bool("metrics", false, "print per-figure sweep execution metrics (points run/cached, per-point time distribution)")
	vcs := fs.Int("vcs", 0, "virtual-channel lane count: fabric lanes for -fig 10, multi-VC curve lanes for -fig routes (0 = defaults)")
	routeFilter := fs.String("route", "", "restrict -fig routes to curves of this routing scheme (empty = all)")
	detect := fs.String("detect", "oracle", "storm failure detection: oracle or hello (in-band liveness; -fig storms)")
	helloInterval := fs.Int64("hello-interval", 0, "hello transmission period in byte-times for -detect hello (0 = liveness default)")
	detectMult := fs.Int("detect-mult", 0, "consecutive missed hellos before a peer-down verdict (0 = liveness default)")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof and expvar on this address (e.g. localhost:6060)")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
	memProfile := fs.String("memprofile", "", "write an allocation profile to this file on exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	// Reject a bad -route before any work, with the full legal set in the
	// error — the same check (and message) sim.Run would apply, shared
	// with wormsim so both CLIs fail identically.
	if *routeFilter != "" {
		if err := (&sim.Config{Route: *routeFilter}).Validate(); err != nil {
			fmt.Fprintf(stderr, "mcbench: %v\n", err)
			return 2
		}
	}

	if *cpuProfile != "" {
		stop, err := profiling.StartCPU(*cpuProfile)
		if err != nil {
			fmt.Fprintf(stderr, "mcbench: %v\n", err)
			return 2
		}
		defer stop()
	}
	if *memProfile != "" {
		defer func() {
			if err := profiling.WriteAllocs(*memProfile); err != nil {
				fmt.Fprintf(stderr, "mcbench: %v\n", err)
			}
		}()
	}

	if *pprofAddr != "" {
		expvar.NewString("cmd").Set("mcbench")
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(stderr, "mcbench: pprof server: %v\n", err)
			}
		}()
	}

	scale := core.Quick
	switch *scaleFlag {
	case "quick":
	case "full":
		scale = core.Full
	default:
		fmt.Fprintf(stderr, "mcbench: unknown scale %q (want quick or full)\n", *scaleFlag)
		return 2
	}
	if !validFigs[*fig] {
		fmt.Fprintf(stderr, "mcbench: unknown figure %q (want 10, 11, 12, 13, ablations, or all)\n", *fig)
		return 2
	}

	// One sweep accounting block shared by every figure of this
	// invocation: a per-figure tally of points run/cached and per-point
	// execution times feeds the wall-clock report (and, under -metrics,
	// the execution-time distribution).
	tally := sweep.NewTally()
	opts := core.Options{
		Workers:  *parallel,
		CacheDir: *cacheDir,
		Timeout:  *timeout,
		OnProgress: tally.Hook(func(p sweep.Progress) {
			if *progress {
				state := "ran"
				if p.CacheHit {
					state = "cached"
				}
				fmt.Fprintf(stderr, "  %s %d/%d %s (%s, %v)\n",
					p.Grid, p.Done, p.Total, p.Key[:12], state, p.Elapsed.Round(time.Millisecond))
			}
		}),
	}

	failed := false
	runFig := func(name string, f func() error) {
		if failed {
			return
		}
		*tally = *sweep.NewTally()
		start := time.Now()
		if err := f(); err != nil {
			fmt.Fprintf(stderr, "mcbench: %s: %v\n", name, err)
			failed = true
			return
		}
		fmt.Fprintf(stdout, "  [%s: %d points (%d cached) in %v]\n",
			name, tally.Ran+tally.Cached, tally.Cached, time.Since(start).Round(time.Millisecond))
		if *metrics {
			tally.WriteSummary(stdout)
		}
		fmt.Fprintln(stdout)
	}

	ctx := context.Background()
	want := func(f string) bool { return *fig == "all" || *fig == f }

	if want("10") {
		runFig("fig10", func() error {
			rows, err := core.Fig10VCsWith(ctx, scale, *seed, opts, *vcs)
			if err != nil {
				return err
			}
			core.PrintFig10(stdout, rows)
			return nil
		})
	}
	if want("11") {
		runFig("fig11", func() error {
			rows, err := core.Fig11With(ctx, scale, *seed, opts)
			if err != nil {
				return err
			}
			core.PrintFig11(stdout, rows)
			return nil
		})
	}
	if want("12") || want("13") {
		runFig("fig12+13", func() error {
			single, all := core.Fig12And13(scale, *perPoint)
			core.PrintFig12And13(stdout, single, all)
			return nil
		})
	}
	if *fig == "routes" {
		runFig("routes", func() error {
			variants := core.VariantsWithVCs(*vcs)
			if *routeFilter != "" {
				kept := variants[:0]
				for _, v := range variants {
					if v.Route == *routeFilter || (*routeFilter == "updown" && v.Route == "") {
						kept = append(kept, v)
					}
				}
				variants = kept
			}
			rows, err := core.RoutesWithVariants(ctx, scale, *seed, opts, variants)
			if err != nil {
				return err
			}
			core.PrintRoutes(stdout, rows)
			return nil
		})
	}
	if *fig == "storms" {
		start := time.Now()
		if err := runStorms(ctx, stdout, *detect, *helloInterval, *detectMult, *seed, *parallel, *metrics); err != nil {
			fmt.Fprintf(stderr, "mcbench: storms: %v\n", err)
			failed = true
		} else {
			fmt.Fprintf(stdout, "  [storms in %v]\n", time.Since(start).Round(time.Millisecond))
		}
	}
	if want("ablations") {
		runFig("ablations", func() error {
			bc, err := core.AblationBufferClassesWith(ctx, *seed, opts)
			if err != nil {
				return err
			}
			core.PrintBufferClasses(stdout, bc)
			or, err := core.AblationOrderingWith(ctx, *seed, opts)
			if err != nil {
				return err
			}
			core.PrintOrdering(stdout, or)
			tc, err := core.AblationTreeConstruction(*seed)
			if err != nil {
				return err
			}
			core.PrintTreeConstruction(stdout, tc)
			rt, err := core.AblationRouting()
			if err != nil {
				return err
			}
			core.PrintRouting(stdout, rt)
			fa, err := core.AblationFabricVsAdapterWith(ctx, *seed, opts)
			if err != nil {
				return err
			}
			core.PrintFabricVsAdapter(stdout, fa)
			bs, err := core.BufferOccupancyStudyWith(ctx, *seed, []float64{0.01, 0.02, 0.04, 0.06}, opts)
			if err != nil {
				return err
			}
			core.PrintBufferStudy(stdout, bs)
			return nil
		})
	}
	if failed {
		return 1
	}
	return 0
}

// runStorms executes the chaos storm matrix with the selected detection
// mode and prints one summary row per storm.  Under hello detection the
// per-storm liveness statistics follow each row, and -metrics adds the
// matrix-wide detection-latency histograms (merged across storms).
func runStorms(ctx context.Context, stdout io.Writer, detect string, helloInterval int64, detectMult int, seed uint64, parallel int, metrics bool) error {
	var specs []faulttest.StormSpec
	switch detect {
	case "", "oracle":
		specs = faulttest.DefaultStormMatrix()
	case "hello":
		specs = faulttest.DetectionStormMatrix()
		for i := range specs {
			specs[i].HelloInterval = des.Time(helloInterval)
			specs[i].DetectMult = detectMult
		}
	default:
		return fmt.Errorf("unknown detection mode %q (want oracle or hello)", detect)
	}
	outcomes, err := sweep.Run(ctx, &sweep.Engine{Workers: parallel}, faulttest.StormGrid(specs, seed))
	if err != nil {
		return err
	}
	var d2r, f2d trace.Histogram
	for i, o := range outcomes {
		fmt.Fprintf(stdout, "%-24s injected=%d delivered=%d dropped=%d remaps=%d uni=%d mc=%d\n",
			specs[i].Name, o.Fabric.Injected, o.Fabric.Delivered, o.Fabric.WormsDropped,
			o.Inject.Remaps, o.Uni, o.McSum)
		if detect == "hello" {
			l := o.Detection.Liveness
			fmt.Fprintf(stdout, "%-24s downs=%d ups=%d falsePos=%d flaps=%d suppressed=%d detectionRemaps=%d\n",
				"", l.PeerDowns, l.PeerUps, l.FalsePositives, l.Flaps, l.FlapsSuppressed, o.Detection.Remaps)
			d2r.Merge(&o.Detection.DetectToReroute)
			f2d.Merge(&o.Detection.FaultToDetect)
		}
	}
	if detect == "hello" && metrics {
		d2r.Name, f2d.Name = "detect-to-reroute", "fault-to-detect"
		fmt.Fprintf(stdout, "%s\n%s\n", &d2r, &f2d)
	}
	return nil
}
