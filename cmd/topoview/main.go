// Command topoview inspects a topology: node/link summary, the up/down
// spanning tree labelling, route statistics, and optional Graphviz DOT
// output.
//
// Example:
//
//	topoview -topology torus8x8 -routes
//	topoview -topology myrinet4 -dot > myrinet4.dot
package main

import (
	"flag"
	"fmt"
	"os"

	"wormlan/internal/topology"
	"wormlan/internal/updown"
)

func main() {
	topoName := flag.String("topology", "myrinet4", "topology: torus8x8, torus4x4, shufflenet24, myrinet4, star:N, line:N, ring:N")
	dot := flag.Bool("dot", false, "emit Graphviz DOT and exit")
	routes := flag.Bool("routes", false, "print route statistics")
	flag.Parse()

	g, err := build(*topoName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "topoview: %v\n", err)
		os.Exit(2)
	}
	if *dot {
		fmt.Print(g.DOT())
		return
	}
	s := g.Summary()
	fmt.Printf("topology %s: %d switches, %d hosts, %d links, diameter %d, max switch degree %d\n",
		*topoName, s.Switches, s.Hosts, s.Links, s.Diameter, s.MaxSwitchDegree)

	ud, err := updown.New(g, topology.None)
	if err != nil {
		fmt.Fprintf(os.Stderr, "topoview: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("up/down root: %s\n", g.Node(ud.Root).Name)
	levels := map[int]int{}
	for _, sw := range g.Switches() {
		levels[ud.Level[sw]]++
	}
	for l := 0; ; l++ {
		n, ok := levels[l]
		if !ok {
			break
		}
		fmt.Printf("  level %d: %d switches\n", l, n)
	}
	if *routes {
		free, err := ud.NewTable(false)
		if err != nil {
			fmt.Fprintf(os.Stderr, "topoview: %v\n", err)
			os.Exit(1)
		}
		restricted, err := ud.NewTable(true)
		if err != nil {
			fmt.Fprintf(os.Stderr, "topoview: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("mean route hops: up/down=%.2f tree-restricted=%.2f\n",
			free.MeanHops(), restricted.MeanHops())
	}
}

func build(name string) (*topology.Graph, error) {
	switch name {
	case "torus8x8":
		return topology.Torus(8, 8, 1, 1), nil
	case "torus4x4":
		return topology.Torus(4, 4, 1, 1), nil
	case "shufflenet24":
		return topology.BidirShufflenet(2, 3, 1000), nil
	case "myrinet4":
		return topology.Myrinet4(), nil
	}
	var n int
	if _, err := fmt.Sscanf(name, "star:%d", &n); err == nil {
		return topology.Star(n), nil
	}
	if _, err := fmt.Sscanf(name, "line:%d", &n); err == nil {
		return topology.Line(n, 1), nil
	}
	if _, err := fmt.Sscanf(name, "ring:%d", &n); err == nil {
		return topology.Ring(n, 1), nil
	}
	return nil, fmt.Errorf("unknown topology %q", name)
}
