// Command wormsim runs a single wormhole-LAN simulation and prints its
// measurements: the building block behind cmd/mcbench for exploring
// parameter points the paper did not sweep.
//
// Example:
//
//	wormsim -topology torus8x8 -scheme tree -load 0.03 -pmc 0.1 \
//	        -groups 10 -groupsize 10 -measure 400000
//
// Observability:
//
//	wormsim -trace out.json -metrics   # Perfetto trace + fabric metrics
//	wormsim -pprof localhost:6060      # live pprof/expvar while running
//
// Open the trace at https://ui.perfetto.dev or chrome://tracing.
package main

import (
	"expvar"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strings"

	"wormlan/internal/adapter"
	"wormlan/internal/des"
	"wormlan/internal/fault"
	"wormlan/internal/liveness"
	"wormlan/internal/network"
	"wormlan/internal/profiling"
	"wormlan/internal/sim"
	"wormlan/internal/topology"
	"wormlan/internal/trace"
)

// loadConfigFile reads a topology+groups configuration file (the format of
// the paper's simulator; see topology.ParseConfig).
func loadConfigFile(path string) (*topology.Graph, map[int][]topology.NodeID, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return topology.ParseConfig(f)
}

// builtTopo is a named graph plus whichever routing geometry the topology
// carries (the vcmin, clos, and shufflenet route schemes each need
// theirs).
type builtTopo struct {
	g       *topology.Graph
	torus   *topology.TorusGeom
	clos    *topology.ClosGeom
	shuffle *topology.ShuffleGeom
}

// buildTopology returns the named graph and its geometries.
func buildTopology(name string, delay int64) (builtTopo, error) {
	var bt builtTopo
	switch {
	case name == "torus8x8":
		bt.g, bt.torus = topology.TorusWithGeom(8, 8, 1, delay)
	case name == "torus4x4":
		bt.g, bt.torus = topology.TorusWithGeom(4, 4, 1, delay)
	case name == "shufflenet24":
		bt.g, bt.shuffle = topology.BidirShufflenetWithGeom(2, 3, delayOr(delay, 1000))
	case name == "shufflenet64":
		bt.g, bt.shuffle = topology.BidirShufflenetWithGeom(2, 4, delayOr(delay, 1))
	case name == "clos8x4":
		bt.g, bt.clos = topology.ClosWithGeom(8, 4, 8, delayOr(delay, 1))
	case name == "myrinet4":
		bt.g = topology.Myrinet4()
	case strings.HasPrefix(name, "star:"):
		var n int
		if _, err := fmt.Sscanf(name, "star:%d", &n); err != nil {
			return bt, err
		}
		bt.g = topology.Star(n)
	case strings.HasPrefix(name, "line:"):
		var n int
		if _, err := fmt.Sscanf(name, "line:%d", &n); err != nil {
			return bt, err
		}
		bt.g = topology.Line(n, delay)
	case strings.HasPrefix(name, "ring:"):
		var n int
		if _, err := fmt.Sscanf(name, "ring:%d", &n); err != nil {
			return bt, err
		}
		bt.g = topology.Ring(n, delay)
	case name == "fullmesh8x4":
		bt.g = topology.FullMesh(8, 4, delayOr(delay, 1))
	case name == "fullmesh8x8":
		bt.g = topology.FullMesh(8, 8, delayOr(delay, 1))
	default:
		return bt, fmt.Errorf("unknown topology %q", name)
	}
	return bt, nil
}

// delayOr substitutes d for a zero (topology-default) delay flag.
func delayOr(delay, d int64) int64 {
	if delay == 0 {
		return d
	}
	return delay
}

func pickScheme(name string) (sim.Scheme, error) {
	for _, s := range []sim.Scheme{sim.HamiltonianSF, sim.HamiltonianCT,
		sim.TreeSF, sim.TreeCT, sim.TreeFlood} {
		if s.Name == name {
			return s, nil
		}
	}
	return sim.Scheme{}, fmt.Errorf("unknown scheme %q (try hamiltonian, hamiltonian-cut-thru, tree, tree-cut-thru, tree-flood)", name)
}

// servePprof exposes net/http/pprof and expvar on addr.  It touches expvar
// so the import registers /debug/vars even when nothing else publishes.
func servePprof(addr string, stderr io.Writer) {
	expvar.NewString("cmd").Set("wormsim")
	go func() {
		if err := http.ListenAndServe(addr, nil); err != nil {
			fmt.Fprintf(stderr, "wormsim: pprof server: %v\n", err)
		}
	}()
}

// traceRingCap bounds in-memory trace recording: the newest ~4M events are
// kept, which covers any single figure point at full scale.
const traceRingCap = 1 << 22

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("wormsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	configPath := fs.String("config", "", "topology+groups configuration file (overrides -topology/-groups)")
	topoName := fs.String("topology", "torus8x8", "topology: torus8x8, torus4x4, shufflenet24, shufflenet64, clos8x4, myrinet4, fullmesh8x4, fullmesh8x8, star:N, line:N, ring:N")
	schemeName := fs.String("scheme", "tree", "multicast scheme")
	load := fs.Float64("load", 0.02, "offered load (generated output-link utilization per host)")
	pmc := fs.Float64("pmc", 0.1, "probability a generated worm is multicast")
	groups := fs.Int("groups", 10, "number of multicast groups")
	groupSize := fs.Int("groupsize", 10, "members per group")
	meanWorm := fs.Int("meanworm", 400, "mean worm length in bytes")
	warmup := fs.Int64("warmup", 50_000, "warm-up byte-times (discarded)")
	measure := fs.Int64("measure", 300_000, "measurement window in byte-times")
	linkDelay := fs.Int64("delay", 0, "inter-switch link delay in byte-times (0 = topology default)")
	seed := fs.Uint64("seed", 1996, "random seed")
	routeName := fs.String("route", "", "routing scheme: updown (default), vcmin (dateline minimal, torus only), adaptive (escape-lane, any topology), fullmesh, clos, or shufflenet")
	vcs := fs.Int("vcs", 0, "virtual channels (lanes) per physical link (0 = fabric default)")
	arbName := fs.String("arb", "", "crossbar arbitration: scan (default) or islip")
	arbIters := fs.Int("arb-iters", 0, "iSLIP iterations per tick (0 = arbiter default)")
	ordered := fs.Bool("ordered", false, "total ordering via the lowest-ID serializer")
	reliable := fs.Bool("reliable", false, "use the full ACK/NACK reservation protocol instead of the paper's plain-forwarding simulation mode")
	failLinks := fs.Int("fail-links", 0, "kill N random switch-to-switch cables during the run")
	failSwitches := fs.Int("fail-switches", 0, "crash N random switches during the run")
	failAt := fs.Int64("fail-at", 0, "fault times are drawn uniformly over [1,T] byte-times (default warmup + measure/2)")
	failHeal := fs.Int64("fail-heal", 0, "revive each failed element D byte-times after it fails (0 = permanent)")
	failSeed := fs.Uint64("fail-seed", 0, "fault schedule seed (default: -seed)")
	detect := fs.String("detect", "oracle", "failure detection: oracle (injector triggers recovery) or hello (in-band liveness protocol)")
	helloInterval := fs.Int64("hello-interval", 0, "hello transmission period in byte-times (0 = liveness default)")
	detectMult := fs.Int("detect-mult", 0, "consecutive missed hellos before a peer-down verdict (0 = liveness default)")
	tracePath := fs.String("trace", "", "write a Chrome trace-event (Perfetto) JSON of the run to this file")
	metrics := fs.Bool("metrics", false, "collect and print per-channel utilization, crossbar occupancy, and latency histograms")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof and expvar on this address (e.g. localhost:6060)")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := fs.String("memprofile", "", "write an allocation profile to this file on exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	// Reject a bad -route before any work, with the full legal set in the
	// error — the same check (and message) sim.Run would apply, shared
	// with mcbench so both CLIs fail identically.
	if err := (&sim.Config{Route: *routeName}).Validate(); err != nil {
		fmt.Fprintf(stderr, "wormsim: %v\n", err)
		return 2
	}

	if *cpuProfile != "" {
		stop, err := profiling.StartCPU(*cpuProfile)
		if err != nil {
			fmt.Fprintf(stderr, "wormsim: %v\n", err)
			return 2
		}
		defer stop()
	}
	if *memProfile != "" {
		defer func() {
			if err := profiling.WriteAllocs(*memProfile); err != nil {
				fmt.Fprintf(stderr, "wormsim: %v\n", err)
			}
		}()
	}

	if *pprofAddr != "" {
		servePprof(*pprofAddr, stderr)
	}

	var bt builtTopo
	var fileGroups map[int][]topology.NodeID
	var err error
	if *configPath != "" {
		bt.g, fileGroups, err = loadConfigFile(*configPath)
	} else {
		bt, err = buildTopology(*topoName, *linkDelay)
	}
	if err != nil {
		fmt.Fprintf(stderr, "wormsim: %v\n", err)
		return 2
	}
	g := bt.g
	scheme, err := pickScheme(*schemeName)
	if err != nil {
		fmt.Fprintf(stderr, "wormsim: %v\n", err)
		return 2
	}
	var plan *fault.Plan
	if *failLinks > 0 || *failSwitches > 0 {
		fsd := *failSeed
		if fsd == 0 {
			fsd = *seed
		}
		window := *failAt
		if window == 0 {
			window = *warmup + *measure/2
		}
		plan = fault.RandomPlan(g, fault.Options{
			Seed:        fsd,
			LinkDowns:   *failLinks,
			SwitchDowns: *failSwitches,
			Window:      des.Time(window),
			Heal:        des.Time(*failHeal),
		})
	}
	mode, err := fault.ParseDetectMode(*detect)
	if err != nil {
		fmt.Fprintf(stderr, "wormsim: %v\n", err)
		return 2
	}
	var ring *trace.Ring
	if *tracePath != "" {
		ring = trace.NewRing(traceRingCap)
	}
	cfg := sim.Config{
		Graph:         g,
		Scheme:        scheme,
		TotalOrdering: *ordered,
		OfferedLoad:   *load,
		MulticastProb: *pmc,
		MeanWorm:      *meanWorm,
		NumGroups:     *groups,
		GroupSize:     *groupSize,
		Groups:        fileGroups,
		Warmup:        des.Time(*warmup),
		Measure:       des.Time(*measure),
		Seed:          *seed,
		Route:         *routeName,
		TorusGeom:     bt.torus,
		ClosGeom:      bt.clos,
		ShuffleGeom:   bt.shuffle,
		Adapter:       adapter.Config{PlainForwarding: !*reliable},
		FaultPlan:     plan,
		Detect:        mode,
		Metrics:       *metrics,
	}
	cfg.Network.NumVCs = *vcs
	switch *arbName {
	case "", "scan":
	case "islip":
		cfg.Network.Arb = network.ArbISLIP
		cfg.Network.ArbIters = *arbIters
	default:
		fmt.Fprintf(stderr, "wormsim: unknown arbiter %q (want scan or islip)\n", *arbName)
		return 2
	}
	if mode == fault.DetectHello && (*helloInterval > 0 || *detectMult > 0) {
		cfg.Liveness = &liveness.Config{
			Interval:   des.Time(*helloInterval),
			DetectMult: *detectMult,
		}
	}
	if ring != nil {
		cfg.Tracer = ring
	}
	res, err := sim.Run(cfg)
	if err != nil {
		fmt.Fprintf(stderr, "wormsim: %v\n", err)
		return 1
	}
	fmt.Fprintln(stdout, res)
	fmt.Fprintf(stdout, "multicast latency: mean=%.0f std=%.0f min=%.0f max=%.0f (n=%d)\n",
		res.MCLatency.Mean(), res.MCLatency.Std(), res.MCLatency.Min(), res.MCLatency.Max(), res.MCLatency.N())
	fmt.Fprintf(stdout, "unicast latency:   mean=%.0f std=%.0f (n=%d)\n",
		res.UniLatency.Mean(), res.UniLatency.Std(), res.UniLatency.N())
	fmt.Fprintf(stdout, "generated worms:   %d (%d multicast)\n", res.GeneratedWorms, res.GeneratedMC)
	fmt.Fprintf(stdout, "adapter stats:     %+v\n", res.Adapter)
	fmt.Fprintf(stdout, "fabric counters:   %+v\n", res.Fabric)
	if plan != nil {
		fmt.Fprintf(stdout, "fault counters:    %+v\n", res.Fault)
	}
	if d := res.Detection; d != nil {
		fmt.Fprintf(stdout, "detection:         %+v\n", d.Liveness)
		fmt.Fprintf(stdout, "detection remaps:  %d\n", d.Remaps)
		if *metrics {
			fmt.Fprintf(stdout, "%s\n", &d.DetectToReroute)
			fmt.Fprintf(stdout, "%s\n", &d.FaultToDetect)
		}
	}
	if *metrics {
		fmt.Fprintf(stdout, "kernel:            %d events dispatched, peak queue %d, %.2f events/tick\n",
			res.EventsDispatched, res.MaxQueueDepth, res.EventsPerTick)
		if h := res.Histograms; h != nil {
			for _, hist := range []*trace.Histogram{&h.MC, &h.Uni, &h.All, &h.Queue} {
				fmt.Fprintf(stdout, "%s\n", hist)
			}
		}
		if m := res.Metrics(); m != nil {
			m.WriteSummary(stdout, 10, int64(res.EndTime))
		}
	}
	if ring != nil {
		if err := writeTrace(*tracePath, ring); err != nil {
			fmt.Fprintf(stderr, "wormsim: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "trace:             %d events -> %s", ring.Total(), *tracePath)
		if d := ring.Dropped(); d > 0 {
			fmt.Fprintf(stdout, " (oldest %d dropped by the %d-event ring)", d, traceRingCap)
		}
		fmt.Fprintln(stdout)
	}
	if res.Stalled {
		fmt.Fprintln(stdout, "WARNING: worms remained frozen in the fabric (deadlock symptom)")
		return 1
	}
	return 0
}

// writeTrace exports the recorded events as Chrome trace-event JSON.
func writeTrace(path string, ring *trace.Ring) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteChrome(f, ring.Events()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
