// Command wormsim runs a single wormhole-LAN simulation and prints its
// measurements: the building block behind cmd/mcbench for exploring
// parameter points the paper did not sweep.
//
// Example:
//
//	wormsim -topology torus8x8 -scheme tree -load 0.03 -pmc 0.1 \
//	        -groups 10 -groupsize 10 -measure 400000
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"wormlan/internal/adapter"
	"wormlan/internal/des"
	"wormlan/internal/fault"
	"wormlan/internal/sim"
	"wormlan/internal/topology"
)

// loadConfigFile reads a topology+groups configuration file (the format of
// the paper's simulator; see topology.ParseConfig).
func loadConfigFile(path string) (*topology.Graph, map[int][]topology.NodeID, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return topology.ParseConfig(f)
}

func buildTopology(name string, delay int64) (*topology.Graph, error) {
	switch {
	case name == "torus8x8":
		return topology.Torus(8, 8, 1, delay), nil
	case name == "torus4x4":
		return topology.Torus(4, 4, 1, delay), nil
	case name == "shufflenet24":
		if delay == 0 {
			delay = 1000
		}
		return topology.BidirShufflenet(2, 3, delay), nil
	case name == "myrinet4":
		return topology.Myrinet4(), nil
	case strings.HasPrefix(name, "star:"):
		var n int
		if _, err := fmt.Sscanf(name, "star:%d", &n); err != nil {
			return nil, err
		}
		return topology.Star(n), nil
	case strings.HasPrefix(name, "line:"):
		var n int
		if _, err := fmt.Sscanf(name, "line:%d", &n); err != nil {
			return nil, err
		}
		return topology.Line(n, delay), nil
	case strings.HasPrefix(name, "ring:"):
		var n int
		if _, err := fmt.Sscanf(name, "ring:%d", &n); err != nil {
			return nil, err
		}
		return topology.Ring(n, delay), nil
	default:
		return nil, fmt.Errorf("unknown topology %q", name)
	}
}

func pickScheme(name string) (sim.Scheme, error) {
	for _, s := range []sim.Scheme{sim.HamiltonianSF, sim.HamiltonianCT,
		sim.TreeSF, sim.TreeCT, sim.TreeFlood} {
		if s.Name == name {
			return s, nil
		}
	}
	return sim.Scheme{}, fmt.Errorf("unknown scheme %q (try hamiltonian, hamiltonian-cut-thru, tree, tree-cut-thru, tree-flood)", name)
}

func main() {
	configPath := flag.String("config", "", "topology+groups configuration file (overrides -topology/-groups)")
	topoName := flag.String("topology", "torus8x8", "topology: torus8x8, torus4x4, shufflenet24, myrinet4, star:N, line:N, ring:N")
	schemeName := flag.String("scheme", "tree", "multicast scheme")
	load := flag.Float64("load", 0.02, "offered load (generated output-link utilization per host)")
	pmc := flag.Float64("pmc", 0.1, "probability a generated worm is multicast")
	groups := flag.Int("groups", 10, "number of multicast groups")
	groupSize := flag.Int("groupsize", 10, "members per group")
	meanWorm := flag.Int("meanworm", 400, "mean worm length in bytes")
	warmup := flag.Int64("warmup", 50_000, "warm-up byte-times (discarded)")
	measure := flag.Int64("measure", 300_000, "measurement window in byte-times")
	linkDelay := flag.Int64("delay", 0, "inter-switch link delay in byte-times (0 = topology default)")
	seed := flag.Uint64("seed", 1996, "random seed")
	ordered := flag.Bool("ordered", false, "total ordering via the lowest-ID serializer")
	reliable := flag.Bool("reliable", false, "use the full ACK/NACK reservation protocol instead of the paper's plain-forwarding simulation mode")
	failLinks := flag.Int("fail-links", 0, "kill N random switch-to-switch cables during the run")
	failSwitches := flag.Int("fail-switches", 0, "crash N random switches during the run")
	failAt := flag.Int64("fail-at", 0, "fault times are drawn uniformly over [1,T] byte-times (default warmup + measure/2)")
	failHeal := flag.Int64("fail-heal", 0, "revive each failed element D byte-times after it fails (0 = permanent)")
	failSeed := flag.Uint64("fail-seed", 0, "fault schedule seed (default: -seed)")
	flag.Parse()

	var g *topology.Graph
	var fileGroups map[int][]topology.NodeID
	var err error
	if *configPath != "" {
		g, fileGroups, err = loadConfigFile(*configPath)
	} else {
		g, err = buildTopology(*topoName, *linkDelay)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "wormsim: %v\n", err)
		os.Exit(2)
	}
	scheme, err := pickScheme(*schemeName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wormsim: %v\n", err)
		os.Exit(2)
	}
	var plan *fault.Plan
	if *failLinks > 0 || *failSwitches > 0 {
		fs := *failSeed
		if fs == 0 {
			fs = *seed
		}
		window := *failAt
		if window == 0 {
			window = *warmup + *measure/2
		}
		plan = fault.RandomPlan(g, fault.Options{
			Seed:        fs,
			LinkDowns:   *failLinks,
			SwitchDowns: *failSwitches,
			Window:      des.Time(window),
			Heal:        des.Time(*failHeal),
		})
	}
	res, err := sim.Run(sim.Config{
		Graph:         g,
		Scheme:        scheme,
		TotalOrdering: *ordered,
		OfferedLoad:   *load,
		MulticastProb: *pmc,
		MeanWorm:      *meanWorm,
		NumGroups:     *groups,
		GroupSize:     *groupSize,
		Groups:        fileGroups,
		Warmup:        *warmup,
		Measure:       *measure,
		Seed:          *seed,
		Adapter:       adapter.Config{PlainForwarding: !*reliable},
		FaultPlan:     plan,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "wormsim: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(res)
	fmt.Printf("multicast latency: mean=%.0f std=%.0f min=%.0f max=%.0f (n=%d)\n",
		res.MCLatency.Mean(), res.MCLatency.Std(), res.MCLatency.Min(), res.MCLatency.Max(), res.MCLatency.N())
	fmt.Printf("unicast latency:   mean=%.0f std=%.0f (n=%d)\n",
		res.UniLatency.Mean(), res.UniLatency.Std(), res.UniLatency.N())
	fmt.Printf("generated worms:   %d (%d multicast)\n", res.GeneratedWorms, res.GeneratedMC)
	fmt.Printf("adapter stats:     %+v\n", res.Adapter)
	fmt.Printf("fabric counters:   %+v\n", res.Fabric)
	if plan != nil {
		fmt.Printf("fault counters:    %+v\n", res.Fault)
	}
	if res.Stalled {
		fmt.Println("WARNING: worms remained frozen in the fabric (deadlock symptom)")
		os.Exit(1)
	}
}
