package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// smallArgs is a fast point: a 4x4 torus with short windows.
func smallArgs(extra ...string) []string {
	return append([]string{
		"-topology", "torus4x4", "-scheme", "tree-flood",
		"-load", "0.05", "-groups", "2", "-groupsize", "4",
		"-warmup", "10000", "-measure", "60000", "-seed", "7",
	}, extra...)
}

func TestRunSmoke(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(smallArgs(), &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, want := range []string{"multicast latency", "generated worms", "fabric counters"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-topology", "nosuch"},
		{"-scheme", "nosuch"},
		{"-badflag"},
		{"-route", "left-hand"},
	} {
		var out, errb bytes.Buffer
		if code := run(args, &out, &errb); code != 2 {
			t.Errorf("args %v: exit %d, want 2", args, code)
		}
	}
}

// TestRunRouteValidation pins the -route flag contract: an unknown scheme
// exits 2 before any simulation, and the error spells out the full legal
// set (the identical sim.Config.Validate message mcbench produces).
func TestRunRouteValidation(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-route", "left-hand"}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	msg := errb.String()
	for _, want := range []string{"unknown route scheme", "adaptive, clos, fullmesh, shufflenet, updown, vcmin"} {
		if !strings.Contains(msg, want) {
			t.Errorf("stderr missing %q:\n%s", want, msg)
		}
	}
}

// TestRunVCRoutes is the CLI smoke test for the VC scheme family: each
// (topology, route) pairing runs clean, multicast included.
func TestRunVCRoutes(t *testing.T) {
	for _, tc := range []struct{ topo, route string }{
		{"torus4x4", "adaptive"},
		{"clos8x4", "clos"},
		{"shufflenet64", "shufflenet"},
	} {
		var out, errb bytes.Buffer
		args := []string{
			"-topology", tc.topo, "-route", tc.route, "-scheme", "tree",
			"-load", "0.02", "-groups", "2", "-groupsize", "4",
			"-warmup", "10000", "-measure", "40000", "-seed", "7",
		}
		if code := run(args, &out, &errb); code != 0 {
			t.Fatalf("%s on %s: exit %d, stderr: %s", tc.route, tc.topo, code, errb.String())
		}
		if !strings.Contains(out.String(), "fabric counters") {
			t.Errorf("%s on %s: output missing counters:\n%s", tc.route, tc.topo, out.String())
		}
	}
}

// TestRunTraceAndMetrics is the -trace smoke test: the exported file must
// be valid Chrome trace-event JSON with events from both the worm and
// fabric processes, metrics must print, and two identical invocations must
// produce byte-identical trace files.
func TestRunTraceAndMetrics(t *testing.T) {
	dir := t.TempDir()
	runOnce := func(path string) (string, []byte) {
		var out, errb bytes.Buffer
		if code := run(smallArgs("-trace", path, "-metrics"), &out, &errb); code != 0 {
			t.Fatalf("exit %d, stderr: %s", code, errb.String())
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return out.String(), data
	}
	out, data := runOnce(filepath.Join(dir, "a.json"))

	var doc struct {
		TraceEvents []struct {
			Ph   string `json:"ph"`
			Pid  int    `json:"pid"`
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	var spans, instants int
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "X":
			spans++
		case "i":
			instants++
		}
	}
	if spans == 0 || instants == 0 {
		t.Fatalf("trace has %d spans and %d instants; want both nonzero", spans, instants)
	}
	for _, want := range []string{"channels (top", "mc-latency", "event-queue-depth", "trace:"} {
		if !strings.Contains(out, want) {
			t.Errorf("-metrics output missing %q:\n%s", want, out)
		}
	}

	_, data2 := runOnce(filepath.Join(dir, "b.json"))
	if !bytes.Equal(data, data2) {
		t.Fatalf("identical invocations produced different traces (%d vs %d bytes)", len(data), len(data2))
	}
}
