package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: wormlan/internal/network
BenchmarkDeliveredWormAllocs 	   55186	     38158 ns/op	       0 B/op	       0 allocs/op
PASS
`

const sampleFig10 = `Figure 10: average multicast latency vs offered load, 8x8 torus
scheme                  load    mcLatency   uniLatency   thpt/host   n
hamiltonian             0.015        2607         528      0.0259   150
  [fig10: 9 points (0 cached) in 2.000s]
`

func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestReportRoundTrip(t *testing.T) {
	dir := t.TempDir()
	bench := write(t, dir, "bench.txt", sampleBench)
	fig10 := write(t, dir, "fig10.txt", sampleFig10)
	out := filepath.Join(dir, "BENCH_7.json")
	if rc := run([]string{"-bench", bench, "-fig10", fig10, "-o", out}); rc != 0 {
		t.Fatalf("run = %d, want 0", rc)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var r report
	if err := json.Unmarshal(data, &r); err != nil {
		t.Fatal(err)
	}
	if r.Issue != issueNumber || r.Fig10.Points != 9 || r.Fig10.Seconds != 2.0 {
		t.Errorf("unexpected report: %+v", r)
	}
	if r.DeliveredWorm.NsPerWorm != 38158 || r.DeliveredWorm.AllocsPerWorm != 0 {
		t.Errorf("unexpected delivered-worm stats: %+v", r.DeliveredWorm)
	}
	if want := (9 / 2.0) / (baselineFig10Points / baselineFig10Secs); r.Fig10.Speedup != want {
		t.Errorf("speedup = %v, want %v", r.Fig10.Speedup, want)
	}
}

func TestAllocsPinFails(t *testing.T) {
	dir := t.TempDir()
	bench := write(t, dir, "bench.txt",
		"BenchmarkDeliveredWormAllocs 	   100	     38158 ns/op	      16 B/op	       2 allocs/op\n")
	fig10 := write(t, dir, "fig10.txt", sampleFig10)
	out := filepath.Join(dir, "BENCH_7.json")
	if rc := run([]string{"-bench", bench, "-fig10", fig10, "-o", out}); rc != 1 {
		t.Fatalf("run = %d, want 1 (allocs pin)", rc)
	}
	// The report is still written so the artifact shows the regression.
	if _, err := os.Stat(out); err != nil {
		t.Errorf("report not written on pin failure: %v", err)
	}
}

func TestMissingInputs(t *testing.T) {
	if rc := run([]string{}); rc != 2 {
		t.Fatalf("run = %d, want 2 on missing flags", rc)
	}
	dir := t.TempDir()
	empty := write(t, dir, "empty.txt", "nothing here\n")
	if rc := run([]string{"-bench", empty, "-fig10", empty, "-o", filepath.Join(dir, "x.json")}); rc != 1 {
		t.Fatalf("run = %d, want 1 on unparseable inputs", rc)
	}
}
