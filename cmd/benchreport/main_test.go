package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: wormlan/internal/network
BenchmarkDeliveredWormAllocs/vcs=1-8 	   55186	     38158 ns/op	       0 B/op	       0 allocs/op
BenchmarkDeliveredWormAllocs/vcs=2-8 	   51000	     39500 ns/op	       0 B/op	       0 allocs/op
BenchmarkDeliveredWormAllocs/vcs=4-8 	   50000	     40100 ns/op	       0 B/op	       0 allocs/op
BenchmarkDeliveredWormAllocs/adaptive-8 	   48000	     41000 ns/op	       0 B/op	       0 allocs/op
PASS
`

// Three concatenated mcbench runs, one per lane count, as the CI bench
// job produces.
const sampleFig10 = `Figure 10: average multicast latency vs offered load, 8x8 torus
scheme                  load    mcLatency   uniLatency   thpt/host   n
hamiltonian             0.015        2607         528      0.0259   150
  [fig10: 9 points (0 cached) in 2.000s]
  [fig10: 9 points (0 cached) in 2.100s]
  [fig10: 9 points (0 cached) in 2.300s]
`

func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestReportRoundTrip(t *testing.T) {
	dir := t.TempDir()
	bench := write(t, dir, "bench.txt", sampleBench)
	fig10 := write(t, dir, "fig10.txt", sampleFig10)
	out := filepath.Join(dir, "BENCH_10.json")
	if rc := run([]string{"-bench", bench, "-fig10", fig10, "-fig10-vcs", "1,2,4", "-o", out}); rc != 0 {
		t.Fatalf("run = %d, want 0", rc)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var r report
	if err := json.Unmarshal(data, &r); err != nil {
		t.Fatal(err)
	}
	// The adaptive sub-benchmark line is intentionally outside the per-lane
	// trajectory: only the three vcs=N entries may appear.
	if r.Issue != issueNumber || len(r.Fig10) != 3 || len(r.DeliveredWorm) != 3 {
		t.Fatalf("unexpected report shape: %+v", r)
	}
	if r.Fig10[0].NumVCs != 1 || r.Fig10[0].Points != 9 || r.Fig10[0].Seconds != 2.0 {
		t.Errorf("unexpected vcs=1 fig10 entry: %+v", r.Fig10[0])
	}
	if want := (9 / 2.0) / (baselineFig10Points / baselineFig10Secs); r.Fig10[0].Speedup != want {
		t.Errorf("speedup = %v, want %v", r.Fig10[0].Speedup, want)
	}
	// Multi-lane entries have no pre-VC baseline to compare against.
	if r.Fig10[1].NumVCs != 2 || r.Fig10[1].Seconds != 2.1 || r.Fig10[1].Speedup != 0 {
		t.Errorf("unexpected vcs=2 fig10 entry: %+v", r.Fig10[1])
	}
	if r.Fig10[2].NumVCs != 4 || r.Fig10[2].Seconds != 2.3 {
		t.Errorf("unexpected vcs=4 fig10 entry: %+v", r.Fig10[2])
	}
	for i, want := range []wormEntry{
		{NumVCs: 1, NsPerWorm: 38158},
		{NumVCs: 2, NsPerWorm: 39500},
		{NumVCs: 4, NsPerWorm: 40100},
	} {
		if r.DeliveredWorm[i] != want {
			t.Errorf("deliveredWorm[%d] = %+v, want %+v", i, r.DeliveredWorm[i], want)
		}
	}
}

func TestAllocsPinFails(t *testing.T) {
	dir := t.TempDir()
	// The regression is on the vcs=2 line only: the pin must gate on
	// every lane count, not just the first match.
	bench := write(t, dir, "bench.txt",
		"BenchmarkDeliveredWormAllocs/vcs=1-8 	   100	     38158 ns/op	       0 B/op	       0 allocs/op\n"+
			"BenchmarkDeliveredWormAllocs/vcs=2-8 	   100	     38158 ns/op	      16 B/op	       2 allocs/op\n"+
			"BenchmarkDeliveredWormAllocs/vcs=4-8 	   100	     38158 ns/op	       0 B/op	       0 allocs/op\n")
	fig10 := write(t, dir, "fig10.txt", sampleFig10)
	out := filepath.Join(dir, "BENCH_10.json")
	if rc := run([]string{"-bench", bench, "-fig10", fig10, "-fig10-vcs", "1,2,4", "-o", out}); rc != 1 {
		t.Fatalf("run = %d, want 1 (allocs pin)", rc)
	}
	// The report is still written so the artifact shows the regression.
	if _, err := os.Stat(out); err != nil {
		t.Errorf("report not written on pin failure: %v", err)
	}
}

func TestFooterCountMismatch(t *testing.T) {
	dir := t.TempDir()
	bench := write(t, dir, "bench.txt", sampleBench)
	fig10 := write(t, dir, "fig10.txt", sampleFig10) // 3 footers
	out := filepath.Join(dir, "x.json")
	if rc := run([]string{"-bench", bench, "-fig10", fig10, "-fig10-vcs", "1,2", "-o", out}); rc != 1 {
		t.Fatalf("run = %d, want 1 on footer/vcs-list mismatch", rc)
	}
}

func TestMissingInputs(t *testing.T) {
	if rc := run([]string{}); rc != 2 {
		t.Fatalf("run = %d, want 2 on missing flags", rc)
	}
	dir := t.TempDir()
	empty := write(t, dir, "empty.txt", "nothing here\n")
	if rc := run([]string{"-bench", empty, "-fig10", empty, "-o", filepath.Join(dir, "x.json")}); rc != 1 {
		t.Fatalf("run = %d, want 1 on unparseable inputs", rc)
	}
	if rc := run([]string{"-bench", empty, "-fig10", empty, "-fig10-vcs", "zero", "-o", filepath.Join(dir, "x.json")}); rc != 2 {
		t.Fatalf("run = %d, want 2 on bad -fig10-vcs", rc)
	}
}
