// Command benchreport assembles the tracked benchmark trajectory file
// (BENCH_<issue>.json) from raw benchmark outputs and enforces the
// zero-alloc pin.
//
// Usage:
//
//	go test -bench BenchmarkDeliveredWormAllocs -benchtime 1x ./internal/network > bench.txt
//	mcbench -fig 10 > fig10.txt
//	benchreport -bench bench.txt -fig10 fig10.txt -o BENCH_7.json
//
// It parses the `go test -bench` line for ns/op and allocs/op, the
// mcbench footer (`[fig10: N points (M cached) in Xs]`) for grid
// throughput, and writes a JSON record comparing both against the
// embedded pre-PR baseline.  Exit status: 0 on success, 1 if the
// allocs-per-delivered-worm pin regresses above zero (or an input cannot
// be parsed), 2 on usage errors.
//
// The baseline constants were measured back-to-back with the optimized
// build on one machine (seed and PR binaries alternated, single worker,
// best of three) so they share cache and thermal conditions; the CI run
// re-measures only the current build, so cross-machine points/sec is
// informational while the allocs pin is the hard gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"time"
)

// Pre-PR (seed) baseline, measured with `mcbench -fig 10 -parallel 1`,
// best of three alternated runs.  See BENCHMARKS.md for the trajectory.
const (
	issueNumber         = 7
	baselineFig10Points = 9
	baselineFig10Secs   = 10.488
)

// report is the BENCH_<issue>.json schema.
type report struct {
	Issue int    `json:"issue"`
	Date  string `json:"date"`

	Fig10 struct {
		Points             int     `json:"points"`
		BaselineSeconds    float64 `json:"baselineSeconds"`
		Seconds            float64 `json:"seconds"`
		BaselinePointsSec  float64 `json:"baselinePointsPerSec"`
		PointsSec          float64 `json:"pointsPerSec"`
		Speedup            float64 `json:"speedup"`
		MinAcceptedSpeedup float64 `json:"minAcceptedSpeedup"`
		RoadmapSpeedup     float64 `json:"roadmapSpeedup"`
	} `json:"fig10"`

	DeliveredWorm struct {
		NsPerWorm     float64 `json:"nsPerWorm"`
		AllocsPerWorm float64 `json:"allocsPerWorm"`
	} `json:"deliveredWorm"`
}

var (
	benchRx = regexp.MustCompile(`(?m)^BenchmarkDeliveredWormAllocs\S*\s+\d+\s+([\d.]+) ns/op(?:\s+[\d.]+ B/op)?\s+([\d.]+) allocs/op`)
	fig10Rx = regexp.MustCompile(`\[fig10: (\d+) points \(\d+ cached\) in ([\d.]+)s\]`)
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("benchreport", flag.ContinueOnError)
	benchPath := fs.String("bench", "", "go test -bench output containing BenchmarkDeliveredWormAllocs")
	fig10Path := fs.String("fig10", "", "mcbench -fig 10 output")
	outPath := fs.String("o", fmt.Sprintf("BENCH_%d.json", issueNumber), "output JSON path")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *benchPath == "" || *fig10Path == "" {
		fmt.Fprintln(os.Stderr, "benchreport: -bench and -fig10 are required")
		return 2
	}

	var r report
	r.Issue = issueNumber
	r.Date = time.Now().UTC().Format("2006-01-02")

	bench, err := os.ReadFile(*benchPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
		return 1
	}
	m := benchRx.FindSubmatch(bench)
	if m == nil {
		fmt.Fprintf(os.Stderr, "benchreport: no BenchmarkDeliveredWormAllocs line in %s (run with -benchmem or rely on b.ReportAllocs)\n", *benchPath)
		return 1
	}
	r.DeliveredWorm.NsPerWorm, _ = strconv.ParseFloat(string(m[1]), 64)
	r.DeliveredWorm.AllocsPerWorm, _ = strconv.ParseFloat(string(m[2]), 64)

	fig10, err := os.ReadFile(*fig10Path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
		return 1
	}
	m = fig10Rx.FindSubmatch(fig10)
	if m == nil {
		fmt.Fprintf(os.Stderr, "benchreport: no fig10 timing footer in %s\n", *fig10Path)
		return 1
	}
	points, _ := strconv.Atoi(string(m[1]))
	secs, _ := strconv.ParseFloat(string(m[2]), 64)
	if points == 0 || secs == 0 {
		fmt.Fprintf(os.Stderr, "benchreport: degenerate fig10 footer %q\n", m[0])
		return 1
	}
	r.Fig10.Points = points
	r.Fig10.BaselineSeconds = baselineFig10Secs
	r.Fig10.Seconds = secs
	r.Fig10.BaselinePointsSec = baselineFig10Points / baselineFig10Secs
	r.Fig10.PointsSec = float64(points) / secs
	r.Fig10.Speedup = r.Fig10.PointsSec / r.Fig10.BaselinePointsSec
	r.Fig10.MinAcceptedSpeedup = 5
	r.Fig10.RoadmapSpeedup = 10

	out, err := json.MarshalIndent(&r, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
		return 1
	}
	out = append(out, '\n')
	if err := os.WriteFile(*outPath, out, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
		return 1
	}
	fmt.Printf("benchreport: fig10 %.2f points/s (%.1fx baseline), %.0f ns/worm, %g allocs/worm -> %s\n",
		r.Fig10.PointsSec, r.Fig10.Speedup, r.DeliveredWorm.NsPerWorm, r.DeliveredWorm.AllocsPerWorm, *outPath)

	if r.DeliveredWorm.AllocsPerWorm > 0 {
		fmt.Fprintf(os.Stderr, "benchreport: FAIL: %g allocs per delivered worm, pin is 0\n", r.DeliveredWorm.AllocsPerWorm)
		return 1
	}
	return 0
}
