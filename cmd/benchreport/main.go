// Command benchreport assembles the tracked benchmark trajectory file
// (BENCH_<issue>.json) from raw benchmark outputs and enforces the
// zero-alloc pin.
//
// Usage:
//
//	go test -bench BenchmarkDeliveredWormAllocs -benchtime 1x ./internal/network > bench.txt
//	for v in 1 2 4; do mcbench -fig 10 -vcs $v >> fig10.txt; done
//	benchreport -bench bench.txt -fig10 fig10.txt -fig10-vcs 1,2,4 -o BENCH_10.json
//
// It parses every `BenchmarkDeliveredWormAllocs/vcs=N` line for ns/op and
// allocs/op, every mcbench footer (`[fig10: N points (M cached) in Xs]`)
// in order — one per lane count named by -fig10-vcs — and writes a JSON
// record.  The single-lane fig10 run is compared against the embedded
// pre-PR baseline; the multi-lane runs have no pre-VC baseline and are
// recorded as the trajectory's new reference points.  Exit status: 0 on
// success, 1 if the allocs-per-delivered-worm pin regresses above zero at
// ANY lane count (or an input cannot be parsed), 2 on usage errors.
//
// The baseline constants were measured back-to-back with the optimized
// build on one machine (seed and PR binaries alternated, single worker,
// best of three) so they share cache and thermal conditions; the CI run
// re-measures only the current build, so cross-machine points/sec is
// informational while the allocs pin is the hard gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
	"time"
)

// Pre-PR (issue 7) single-lane baseline, measured with
// `mcbench -fig 10 -parallel 1`, best of three alternated runs.  See
// BENCHMARKS.md for the trajectory.
const (
	issueNumber         = 10
	baselineFig10Points = 9
	baselineFig10Secs   = 10.488
)

// fig10Entry is one fig10 timing at a given lane count.  The baseline
// comparison fields are set only on the single-lane entry: the pre-VC
// fabric had nothing to compare the multi-lane runs against.
type fig10Entry struct {
	NumVCs             int     `json:"numVCs"`
	Points             int     `json:"points"`
	Seconds            float64 `json:"seconds"`
	PointsSec          float64 `json:"pointsPerSec"`
	BaselineSeconds    float64 `json:"baselineSeconds,omitempty"`
	BaselinePointsSec  float64 `json:"baselinePointsPerSec,omitempty"`
	Speedup            float64 `json:"speedup,omitempty"`
	MinAcceptedSpeedup float64 `json:"minAcceptedSpeedup,omitempty"`
	RoadmapSpeedup     float64 `json:"roadmapSpeedup,omitempty"`
}

// wormEntry is the delivered-worm hot-path cost at a given lane count.
type wormEntry struct {
	NumVCs        int     `json:"numVCs"`
	NsPerWorm     float64 `json:"nsPerWorm"`
	AllocsPerWorm float64 `json:"allocsPerWorm"`
}

// report is the BENCH_<issue>.json schema.
type report struct {
	Issue         int          `json:"issue"`
	Date          string       `json:"date"`
	Fig10         []fig10Entry `json:"fig10"`
	DeliveredWorm []wormEntry  `json:"deliveredWorm"`
}

var (
	benchRx = regexp.MustCompile(`(?m)^BenchmarkDeliveredWormAllocs/vcs=(\d+)\S*\s+\d+\s+([\d.]+) ns/op(?:\s+[\d.]+ B/op)?\s+([\d.]+) allocs/op`)
	fig10Rx = regexp.MustCompile(`\[fig10: (\d+) points \(\d+ cached\) in ([\d.]+)s\]`)
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("benchreport", flag.ContinueOnError)
	benchPath := fs.String("bench", "", "go test -bench output containing BenchmarkDeliveredWormAllocs/vcs=N lines")
	fig10Path := fs.String("fig10", "", "concatenated mcbench -fig 10 outputs, one per -fig10-vcs entry, in order")
	fig10VCs := fs.String("fig10-vcs", "1,2,4", "lane counts of the fig10 runs in -fig10, in file order")
	outPath := fs.String("o", fmt.Sprintf("BENCH_%d.json", issueNumber), "output JSON path")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *benchPath == "" || *fig10Path == "" {
		fmt.Fprintln(os.Stderr, "benchreport: -bench and -fig10 are required")
		return 2
	}
	var vcsList []int
	for _, s := range strings.Split(*fig10VCs, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "benchreport: bad -fig10-vcs entry %q\n", s)
			return 2
		}
		vcsList = append(vcsList, n)
	}

	var r report
	r.Issue = issueNumber
	r.Date = time.Now().UTC().Format("2006-01-02")

	bench, err := os.ReadFile(*benchPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
		return 1
	}
	for _, m := range benchRx.FindAllSubmatch(bench, -1) {
		var e wormEntry
		e.NumVCs, _ = strconv.Atoi(string(m[1]))
		e.NsPerWorm, _ = strconv.ParseFloat(string(m[2]), 64)
		e.AllocsPerWorm, _ = strconv.ParseFloat(string(m[3]), 64)
		r.DeliveredWorm = append(r.DeliveredWorm, e)
	}
	if len(r.DeliveredWorm) == 0 {
		fmt.Fprintf(os.Stderr, "benchreport: no BenchmarkDeliveredWormAllocs/vcs=N line in %s (run with -benchmem or rely on b.ReportAllocs)\n", *benchPath)
		return 1
	}

	fig10, err := os.ReadFile(*fig10Path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
		return 1
	}
	footers := fig10Rx.FindAllSubmatch(fig10, -1)
	if len(footers) != len(vcsList) {
		fmt.Fprintf(os.Stderr, "benchreport: %d fig10 timing footers in %s, want %d (one per -fig10-vcs entry)\n",
			len(footers), *fig10Path, len(vcsList))
		return 1
	}
	for i, m := range footers {
		points, _ := strconv.Atoi(string(m[1]))
		secs, _ := strconv.ParseFloat(string(m[2]), 64)
		if points == 0 || secs == 0 {
			fmt.Fprintf(os.Stderr, "benchreport: degenerate fig10 footer %q\n", m[0])
			return 1
		}
		e := fig10Entry{
			NumVCs:    vcsList[i],
			Points:    points,
			Seconds:   secs,
			PointsSec: float64(points) / secs,
		}
		if e.NumVCs == 1 {
			e.BaselineSeconds = baselineFig10Secs
			e.BaselinePointsSec = baselineFig10Points / baselineFig10Secs
			e.Speedup = e.PointsSec / e.BaselinePointsSec
			e.MinAcceptedSpeedup = 5
			e.RoadmapSpeedup = 10
		}
		r.Fig10 = append(r.Fig10, e)
	}

	out, err := json.MarshalIndent(&r, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
		return 1
	}
	out = append(out, '\n')
	if err := os.WriteFile(*outPath, out, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
		return 1
	}
	for _, e := range r.Fig10 {
		if e.NumVCs == 1 {
			fmt.Printf("benchreport: fig10 vcs=%d %.2f points/s (%.1fx baseline)\n", e.NumVCs, e.PointsSec, e.Speedup)
		} else {
			fmt.Printf("benchreport: fig10 vcs=%d %.2f points/s\n", e.NumVCs, e.PointsSec)
		}
	}
	fail := false
	for _, e := range r.DeliveredWorm {
		fmt.Printf("benchreport: worm vcs=%d %.0f ns/worm, %g allocs/worm\n", e.NumVCs, e.NsPerWorm, e.AllocsPerWorm)
		if e.AllocsPerWorm > 0 {
			fmt.Fprintf(os.Stderr, "benchreport: FAIL: %g allocs per delivered worm at vcs=%d, pin is 0\n", e.AllocsPerWorm, e.NumVCs)
			fail = true
		}
	}
	fmt.Printf("benchreport: wrote %s\n", *outPath)
	if fail {
		return 1
	}
	return 0
}
