// Package sweep is a data-parallel experiment engine for figure grids.
// Every evaluation artifact in this repo — the paper's figures, the
// DESIGN.md ablations, the chaos storm matrix — is a grid of independent
// simulation points; the deterministic byte-level kernel makes it safe to
// run those points on separate goroutines as long as each point owns its
// own kernel and RNG streams.  The engine fans a Grid's points out across
// a bounded worker pool, derives an independent deterministic seed per
// point (see PointIdentity), honours context cancellation and an optional
// per-point timeout, streams progress through a callback, and memoizes
// completed points in an on-disk Cache keyed by a stable hash of the point
// configuration — so re-running a figure after editing one cell is
// incremental.
//
// Determinism contract: a point's result may depend only on its derived
// seed and its Config; it must never read shared mutable state or the
// wall clock.  Under that contract the rows returned by Run are identical
// for any worker count — the equivalence tests in internal/core pin this.
package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Point is one independent unit of work in a grid.
type Point[R any] struct {
	// Config is the point's declarative identity: a JSON-marshalable
	// value (typically a small struct) that fully determines the work.
	// It is hashed — together with the grid name and base seed — into
	// the cache key and the per-point seed, so two points with equal
	// Configs in the same grid are the same point.
	Config any
	// Run executes the point.  seed is the derived per-point seed; ctx
	// is cancelled when the sweep is aborted (long-running kernels may
	// ignore it — the engine still stops dispatching new points).
	Run func(ctx context.Context, seed uint64) (R, error)
}

// Grid is a declarative set of independent points plus the identity
// namespace they are keyed under.
type Grid[R any] struct {
	// Name namespaces the grid's cache keys and seeds (e.g. "fig10").
	Name string
	// BaseSeed is folded into every point's identity, so sweeping the
	// same grid under a different seed re-runs every point.
	BaseSeed uint64
	// Points are the cells.  Run returns their results in this order
	// regardless of execution schedule.
	Points []Point[R]
}

// Add appends a point.
func (g *Grid[R]) Add(config any, run func(ctx context.Context, seed uint64) (R, error)) {
	g.Points = append(g.Points, Point[R]{Config: config, Run: run})
}

// Progress reports one completed (or failed) point.  Callbacks are
// serialized by the engine; Done is monotonically increasing.
type Progress struct {
	Grid     string
	Index    int // point index within the grid
	Total    int
	Done     int // points completed so far, including this one
	Key      string
	CacheHit bool
	Err      error
	Elapsed  time.Duration // time spent executing this point (0 on cache hit)
}

// Engine holds the execution policy for sweeps.  The zero value runs
// points sequentially on GOMAXPROCS workers with no cache and no timeout.
type Engine struct {
	// Workers bounds concurrent points; <= 0 means GOMAXPROCS.
	// Workers == 1 is exact sequential execution.
	Workers int
	// Cache, when non-nil, memoizes completed points on disk.
	Cache *Cache
	// Timeout, when positive, bounds each point's wall-clock execution.
	// A point that exceeds it fails the sweep (its goroutine is
	// abandoned; the simulation kernel has no preemption points).
	Timeout time.Duration
	// OnProgress, when non-nil, receives one serialized callback per
	// completed point.
	OnProgress func(Progress)
}

// Run executes every point of the grid and returns the results in point
// order.  The first point error cancels the remaining points and is
// returned (annotated with its point index); results computed before the
// failure are discarded.  Execution order is unspecified, but the result
// slice, each point's derived seed, and each point's cache key are
// independent of Workers.
func Run[R any](ctx context.Context, e *Engine, g Grid[R]) ([]R, error) {
	if e == nil {
		e = &Engine{}
	}
	n := len(g.Points)
	if n == 0 {
		return nil, nil
	}
	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make([]R, n)
	errs := make([]error, n)
	var (
		mu   sync.Mutex
		done int
	)
	report := func(p Progress) {
		mu.Lock()
		done++
		p.Done = done
		cb := e.OnProgress
		if cb != nil {
			cb(p)
		}
		mu.Unlock()
	}

	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				start := time.Now()
				r, key, hit, err := runPoint(ctx, e, g, i)
				results[i], errs[i] = r, err
				elapsed := time.Since(start)
				if hit {
					elapsed = 0
				}
				if err != nil {
					cancel() // first failure aborts the sweep
				}
				report(Progress{Grid: g.Name, Index: i, Total: n,
					Key: key, CacheHit: hit, Err: err, Elapsed: elapsed})
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case idx <- i:
		case <-ctx.Done():
			// Mark undispatched points cancelled so the error scan
			// below can distinguish them from real failures.
			for j := i; j < n; j++ {
				if errs[j] == nil {
					errs[j] = context.Cause(ctx)
					if errs[j] == nil {
						errs[j] = ctx.Err()
					}
				}
			}
			break feed
		}
	}
	close(idx)
	wg.Wait()

	// Deterministic error selection: the lowest-index real failure wins;
	// cancellation errors only surface if nothing else failed.
	var firstCancel error
	for i, err := range errs {
		switch {
		case err == nil:
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			if firstCancel == nil {
				firstCancel = err
			}
		default:
			return nil, fmt.Errorf("sweep %s: point %d: %w", g.Name, i, err)
		}
	}
	if firstCancel != nil {
		return nil, fmt.Errorf("sweep %s: %w", g.Name, firstCancel)
	}
	return results, nil
}

// runPoint resolves one point: identity, cache lookup, execution under
// the timeout, cache fill.
func runPoint[R any](ctx context.Context, e *Engine, g Grid[R], i int) (r R, key string, hit bool, err error) {
	key, seed, err := PointIdentity(g.Name, g.BaseSeed, g.Points[i].Config)
	if err != nil {
		return r, key, false, err
	}
	if e.Cache != nil {
		if hit, err = e.Cache.Get(key, &r); err != nil || hit {
			return r, key, hit, err
		}
	}
	if err = ctx.Err(); err != nil {
		return r, key, false, err
	}
	run := g.Points[i].Run
	if run == nil {
		return r, key, false, fmt.Errorf("nil Run func")
	}
	if e.Timeout <= 0 {
		r, err = run(ctx, seed)
	} else {
		// The simulation kernel has no preemption points, so the
		// timeout is enforced from outside: the point runs on its own
		// goroutine and is abandoned if the timer fires first.
		type outcome struct {
			r   R
			err error
		}
		ch := make(chan outcome, 1)
		go func() {
			rr, rerr := run(ctx, seed)
			ch <- outcome{rr, rerr}
		}()
		t := time.NewTimer(e.Timeout)
		defer t.Stop()
		select {
		case o := <-ch:
			r, err = o.r, o.err
		case <-t.C:
			return r, key, false, fmt.Errorf("timed out after %v", e.Timeout)
		case <-ctx.Done():
			return r, key, false, ctx.Err()
		}
	}
	if err == nil && e.Cache != nil {
		err = e.Cache.Put(key, r)
	}
	return r, key, false, err
}
