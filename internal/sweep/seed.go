package sweep

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// identityVersion is folded into every hash.  Bump it to invalidate all
// cached points and re-derive all seeds (e.g. if the canonical config
// encoding changes).
const identityVersion = "wormlan/sweep/v1"

// PointIdentity derives a point's stable identity: a 128-bit cache key
// and an independent 64-bit seed, both SHA-256 digests of
// (version, grid name, base seed, canonical JSON of config).
//
// Properties the tests pin:
//   - Stable across Go versions and platforms: SHA-256 is fixed and
//     encoding/json is deterministic for structs (field order) and maps
//     (sorted keys); golden values guard against drift.
//   - Collision-free in practice: distinct configs in a grid get distinct
//     keys and seeds (128/64 random-looking bits).
//   - Independent: the seed bytes are disjoint from the key bytes, so
//     knowing one point's rows reveals nothing about another's stream.
func PointIdentity(grid string, baseSeed uint64, config any) (key string, seed uint64, err error) {
	blob, err := json.Marshal(config)
	if err != nil {
		return "", 0, fmt.Errorf("sweep: config not canonicalizable: %w", err)
	}
	h := sha256.New()
	h.Write([]byte(identityVersion))
	h.Write([]byte{0})
	h.Write([]byte(grid))
	h.Write([]byte{0})
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], baseSeed)
	h.Write(b[:])
	h.Write(blob)
	sum := h.Sum(nil)
	return hex.EncodeToString(sum[:16]), binary.BigEndian.Uint64(sum[16:24]), nil
}
