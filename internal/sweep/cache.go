package sweep

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
)

// Cache memoizes completed sweep points on disk, one JSON file per point
// keyed by PointIdentity.  Because keys hash the full point config (plus
// grid name and base seed), a cache directory can safely be shared by
// every figure and reused across runs: editing one figure's grid only
// misses on the cells that actually changed.
//
// Writes are atomic (temp file + rename), so a cache directory shared by
// concurrent workers — or concurrent mcbench processes — never exposes a
// torn entry.  JSON round-trips float64 exactly (shortest-representation
// encoding), so a cache hit returns bit-identical rows to the run that
// filled it; the property test in sweep_test.go pins this.
type Cache struct {
	dir string
}

// NewCache opens (creating if needed) a cache rooted at dir.
func NewCache(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sweep: cache dir: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache root.
func (c *Cache) Dir() string { return c.dir }

func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// Get loads the entry for key into out.  A missing or undecodable entry
// is a miss (undecodable entries — interrupted writes from pre-rename
// crashes, schema drift — heal on the next Put).
func (c *Cache) Get(key string, out any) (bool, error) {
	b, err := os.ReadFile(c.path(key))
	if errors.Is(err, fs.ErrNotExist) {
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("sweep: cache read %s: %w", key, err)
	}
	if err := json.Unmarshal(b, out); err != nil {
		return false, nil
	}
	return true, nil
}

// Put stores v under key atomically.
func (c *Cache) Put(key string, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("sweep: cache encode %s: %w", key, err)
	}
	tmp, err := os.CreateTemp(c.dir, key+".tmp-*")
	if err != nil {
		return fmt.Errorf("sweep: cache write %s: %w", key, err)
	}
	_, werr := tmp.Write(b)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("sweep: cache write %s: %w", key, errors.Join(werr, cerr))
	}
	if err := os.Rename(tmp.Name(), c.path(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("sweep: cache write %s: %w", key, err)
	}
	return nil
}
