package sweep

import (
	"fmt"
	"io"
	"time"

	"wormlan/internal/trace"
)

// Tally aggregates per-point execution metrics from Progress callbacks: how
// many points ran, hit the cache, or failed, and the distribution of
// per-point wall-clock times.  It exists so cmd/mcbench -metrics can report
// where a figure's time went without every caller reimplementing the
// bookkeeping.
//
// Feed it through Hook (or call Observe from an existing OnProgress
// callback).  The engine serializes progress callbacks, so Tally needs no
// locking; read it only after the sweep returns.
type Tally struct {
	// Ran / Cached / Failed partition the completed points.
	Ran, Cached, Failed int
	// Elapsed is the distribution of per-executed-point wall-clock times in
	// milliseconds (cache hits, which report zero elapsed, are excluded).
	Elapsed trace.Histogram
	// Total is the summed execution time across points — CPU-time-ish under
	// parallel sweeps, as points overlap on the wall clock.
	Total time.Duration
}

// NewTally returns an empty tally.
func NewTally() *Tally {
	return &Tally{Elapsed: trace.Histogram{Name: "point-elapsed-ms"}}
}

// Observe folds one progress report into the tally.
func (t *Tally) Observe(p Progress) {
	switch {
	case p.Err != nil:
		t.Failed++
	case p.CacheHit:
		t.Cached++
	default:
		t.Ran++
		t.Elapsed.Add(float64(p.Elapsed.Milliseconds()))
		t.Total += p.Elapsed
	}
}

// Hook returns an OnProgress callback that feeds the tally and then invokes
// next (which may be nil).
func (t *Tally) Hook(next func(Progress)) func(Progress) {
	return func(p Progress) {
		t.Observe(p)
		if next != nil {
			next(p)
		}
	}
}

// WriteSummary prints a one-figure execution report.
func (t *Tally) WriteSummary(w io.Writer) {
	fmt.Fprintf(w, "sweep: %d ran, %d cached, %d failed; exec time %v\n",
		t.Ran, t.Cached, t.Failed, t.Total.Round(time.Millisecond))
	if t.Elapsed.Count > 0 {
		fmt.Fprintf(w, "sweep: %s\n", t.Elapsed.String())
	}
}
