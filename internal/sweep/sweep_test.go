package sweep

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

type tcfg struct {
	Scheme string  `json:"scheme"`
	Load   float64 `json:"load"`
	N      int     `json:"n"`
}

type trow struct {
	Scheme string
	Load   float64
	Seed   uint64
	Mean   float64
}

// mkGrid builds a synthetic grid whose rows are pure functions of the
// derived seed and config — the determinism contract in miniature.
func mkGrid(name string, baseSeed uint64, schemes []string, loads []float64) Grid[trow] {
	g := Grid[trow]{Name: name, BaseSeed: baseSeed}
	for _, s := range schemes {
		for _, l := range loads {
			s, l := s, l
			g.Add(tcfg{Scheme: s, Load: l, N: 3}, func(_ context.Context, seed uint64) (trow, error) {
				// An irrational-ish float exercises exact round-tripping.
				return trow{Scheme: s, Load: l, Seed: seed,
					Mean: l * math.Sqrt(float64(seed%1e6)+2)}, nil
			})
		}
	}
	return g
}

func TestRunOrderAndWorkerEquivalence(t *testing.T) {
	schemes := []string{"a", "b", "c"}
	loads := []float64{0.01, 0.02, 0.03, 0.04}
	seq, err := Run(context.Background(), &Engine{Workers: 1}, mkGrid("g", 7, schemes, loads))
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(schemes)*len(loads) {
		t.Fatalf("rows %d", len(seq))
	}
	// Row order must follow point order.
	if seq[0].Scheme != "a" || seq[0].Load != 0.01 || seq[len(seq)-1].Scheme != "c" {
		t.Fatalf("row order: %+v", seq)
	}
	for _, workers := range []int{2, 3, 8, 0} {
		par, err := Run(context.Background(), &Engine{Workers: workers}, mkGrid("g", 7, schemes, loads))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("workers=%d rows differ from sequential", workers)
		}
	}
}

// TestSeedDerivationProperties: derived per-point seeds are collision-free
// across a realistic grid and distinct grids/base seeds give distinct
// streams.
func TestSeedDerivationProperties(t *testing.T) {
	seen := map[uint64]string{}
	keys := map[string]string{}
	for _, grid := range []string{"fig10", "fig11", "storms"} {
		for _, base := range []uint64{0, 1, 1996, ^uint64(0)} {
			for s := 0; s < 6; s++ {
				for l := 0; l < 12; l++ {
					cfg := tcfg{Scheme: fmt.Sprintf("s%d", s), Load: float64(l) / 100, N: l}
					id := fmt.Sprintf("%s/%d/%+v", grid, base, cfg)
					key, seed, err := PointIdentity(grid, base, cfg)
					if err != nil {
						t.Fatal(err)
					}
					if prev, dup := seen[seed]; dup {
						t.Fatalf("seed collision: %s and %s both derive %d", prev, id, seed)
					}
					if prev, dup := keys[key]; dup {
						t.Fatalf("key collision: %s and %s both derive %s", prev, id, key)
					}
					seen[seed] = id
					keys[key] = id
				}
			}
		}
	}
	// Identity is a pure function.
	k1, s1, _ := PointIdentity("fig10", 1996, tcfg{Scheme: "tree", Load: 0.03, N: 1})
	k2, s2, _ := PointIdentity("fig10", 1996, tcfg{Scheme: "tree", Load: 0.03, N: 1})
	if k1 != k2 || s1 != s2 {
		t.Fatal("PointIdentity not stable across calls")
	}
}

// TestSeedGoldenValues pins the derivation against golden values so that
// a Go version bump, a json encoding change, or a hash tweak — anything
// that would silently re-seed every published figure — fails loudly.
func TestSeedGoldenValues(t *testing.T) {
	cases := []struct {
		grid     string
		base     uint64
		cfg      any
		wantKey  string
		wantSeed uint64
	}{
		{"fig10", 1996, tcfg{Scheme: "hamiltonian", Load: 0.015, N: 0},
			"758376f844a7bfc5dd9c773c6449d2db", 0x4cd85528abedfe51},
		{"fig10", 1996, tcfg{Scheme: "tree-flood", Load: 0.045, N: 0},
			"dfacaa1c2697444519da82214de010cb", 0x1cd2be774a248126},
		{"fig11", 1, tcfg{Scheme: "hamiltonian", Load: 0.01, N: 2},
			"8f6968d95dd3981c959b2c77b3418c1f", 0x16489d5e9606bcfa},
		{"storms", 0, map[string]int{"window": 30000},
			"057f743b6e85964775a227b5659c012f", 0x5c329375e5e36c10},
	}
	for _, c := range cases {
		key, seed, err := PointIdentity(c.grid, c.base, c.cfg)
		if err != nil {
			t.Fatal(err)
		}
		if key != c.wantKey || seed != c.wantSeed {
			t.Errorf("PointIdentity(%s, %d, %+v) = (%s, %#x), golden (%s, %#x)",
				c.grid, c.base, c.cfg, key, seed, c.wantKey, c.wantSeed)
		}
	}
}

// TestCacheHitBitIdentical: a warm sweep must return rows bit-identical
// to the cold run that filled the cache, without re-executing any point.
func TestCacheHitBitIdentical(t *testing.T) {
	cache, err := NewCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var executed atomic.Int64
	build := func() Grid[trow] {
		g := mkGrid("g", 3, []string{"x", "y"}, []float64{0.013, 0.029, 0.041})
		for i := range g.Points {
			inner := g.Points[i].Run
			g.Points[i].Run = func(ctx context.Context, seed uint64) (trow, error) {
				executed.Add(1)
				return inner(ctx, seed)
			}
		}
		return g
	}
	cold, err := Run(context.Background(), &Engine{Workers: 2, Cache: cache}, build())
	if err != nil {
		t.Fatal(err)
	}
	if got := executed.Load(); got != 6 {
		t.Fatalf("cold run executed %d points, want 6", got)
	}
	hits := 0
	warm, err := Run(context.Background(), &Engine{Workers: 2, Cache: cache,
		OnProgress: func(p Progress) {
			if p.CacheHit {
				hits++
			}
		}}, build())
	if err != nil {
		t.Fatal(err)
	}
	if got := executed.Load(); got != 6 {
		t.Fatalf("warm run re-executed points (%d total executions)", got)
	}
	if hits != 6 {
		t.Fatalf("warm run reported %d cache hits, want 6", hits)
	}
	coldJSON, _ := json.Marshal(cold)
	warmJSON, _ := json.Marshal(warm)
	if string(coldJSON) != string(warmJSON) {
		t.Fatalf("cache hit not bit-identical:\n cold=%s\n warm=%s", coldJSON, warmJSON)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Fatal("cache hit rows differ structurally")
	}
}

func TestCacheInvalidatesOnConfigChange(t *testing.T) {
	cache, err := NewCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), &Engine{Cache: cache},
		mkGrid("g", 3, []string{"x"}, []float64{0.01})); err != nil {
		t.Fatal(err)
	}
	// Different base seed, different load, different grid name: all miss.
	for name, g := range map[string]Grid[trow]{
		"base seed": mkGrid("g", 4, []string{"x"}, []float64{0.01}),
		"load":      mkGrid("g", 3, []string{"x"}, []float64{0.02}),
		"grid name": mkGrid("h", 3, []string{"x"}, []float64{0.01}),
	} {
		hit := false
		if _, err := Run(context.Background(), &Engine{Cache: cache,
			OnProgress: func(p Progress) { hit = hit || p.CacheHit }}, g); err != nil {
			t.Fatal(err)
		}
		if hit {
			t.Errorf("changed %s still hit the cache", name)
		}
	}
}

func TestCorruptCacheEntryHeals(t *testing.T) {
	dir := t.TempDir()
	cache, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	g := mkGrid("g", 9, []string{"x"}, []float64{0.01})
	first, err := Run(context.Background(), &Engine{Cache: cache}, g)
	if err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil || len(ents) != 1 {
		t.Fatalf("cache entries: %v %v", ents, err)
	}
	if err := os.WriteFile(filepath.Join(dir, ents[0].Name()), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	again, err := Run(context.Background(), &Engine{Cache: cache}, mkGrid("g", 9, []string{"x"}, []float64{0.01}))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, again) {
		t.Fatal("healed rows differ")
	}
	b, err := os.ReadFile(filepath.Join(dir, ents[0].Name()))
	if err != nil || !json.Valid(b) {
		t.Fatalf("entry not healed: %q %v", b, err)
	}
}

func TestErrorAbortsSweepDeterministically(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		g := Grid[trow]{Name: "g", BaseSeed: 1}
		for i := 0; i < 12; i++ {
			i := i
			g.Add(tcfg{N: i}, func(context.Context, uint64) (trow, error) {
				if i == 5 {
					return trow{}, boom
				}
				return trow{Load: float64(i)}, nil
			})
		}
		_, err := Run(context.Background(), &Engine{Workers: workers}, g)
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v, want boom", workers, err)
		}
		if !strings.Contains(err.Error(), "point 5") {
			t.Fatalf("workers=%d: error does not name the failing point: %v", workers, err)
		}
	}
}

func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 64)
	g := Grid[trow]{Name: "g", BaseSeed: 1}
	for i := 0; i < 64; i++ {
		i := i
		g.Add(tcfg{N: i}, func(ctx context.Context, _ uint64) (trow, error) {
			started <- struct{}{}
			<-ctx.Done()
			return trow{}, ctx.Err()
		})
	}
	go func() {
		<-started
		cancel()
	}()
	_, err := Run(ctx, &Engine{Workers: 2}, g)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := len(started); n > 4 {
		t.Fatalf("%d points started after cancellation", n)
	}
}

func TestPerPointTimeout(t *testing.T) {
	g := Grid[trow]{Name: "g", BaseSeed: 1}
	g.Add(tcfg{N: 0}, func(context.Context, uint64) (trow, error) {
		time.Sleep(5 * time.Second)
		return trow{}, nil
	})
	start := time.Now()
	_, err := Run(context.Background(), &Engine{Workers: 1, Timeout: 30 * time.Millisecond}, g)
	if err == nil || !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("err = %v, want timeout", err)
	}
	if time.Since(start) > 3*time.Second {
		t.Fatal("timeout did not abandon the point")
	}
}

func TestProgressStream(t *testing.T) {
	var seen []Progress
	g := mkGrid("g", 5, []string{"x", "y"}, []float64{0.01, 0.02})
	if _, err := Run(context.Background(), &Engine{Workers: 4,
		OnProgress: func(p Progress) { seen = append(seen, p) }}, g); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 4 {
		t.Fatalf("progress callbacks %d, want 4", len(seen))
	}
	for i, p := range seen {
		if p.Done != i+1 || p.Total != 4 || p.Grid != "g" || p.Key == "" {
			t.Fatalf("progress %d malformed: %+v", i, p)
		}
	}
}

func TestEmptyGrid(t *testing.T) {
	rows, err := Run(context.Background(), nil, Grid[trow]{Name: "empty"})
	if err != nil || rows != nil {
		t.Fatalf("empty grid: %v %v", rows, err)
	}
}
