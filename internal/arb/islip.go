// Package arb implements iSLIP, the iterative request/grant/accept
// crossbar arbiter of the Tiny Tera packet switch (McKeown, "The iSLIP
// Scheduling Algorithm for Input-Queued Switches"; arXiv cs/9810006).
//
// Each output keeps a grant pointer over inputs and each input keeps an
// accept pointer over outputs.  A scheduling cell runs a fixed number of
// iterations; in each, every free output grants the first requesting
// unmatched input at or after its grant pointer, and every unmatched input
// accepts the first granting output at or after its accept pointer.
// Pointers advance one past the partner only on accepts made in the FIRST
// iteration — the discipline that de-synchronizes the pointers under
// contention and gives round-robin service (and hence starvation-freedom)
// to persistent requests.
//
// The arbiter is fully deterministic: the initial pointer positions are
// drawn from a seeded rng stream, all scans are cyclic in ascending index
// order, and a scheduling cell allocates nothing (all scratch is sized at
// construction).  The network fabric uses one instance per switch, with
// inputs and outputs both indexed by crossbar lane (port x virtual
// channel); see internal/network.
package arb

import (
	"fmt"

	"wormlan/internal/rng"
)

// arbStream namespaces the pointer-seeding rng stream.
const arbStream uint64 = 0x1511_9000_0000

// ISLIP is one crossbar's arbiter.  Methods are not safe for concurrent
// use; the simulation kernel is single-threaded by construction.
type ISLIP struct {
	nIn, nOut, iters int

	// gptr[o] is output o's grant pointer (an input index); aptr[i] is
	// input i's accept pointer (an output index).
	gptr, aptr []int

	// Per-cell request state.  wants is the nIn x nOut request matrix;
	// hasReq/reqIns track which inputs registered anything so Begin clears
	// only touched rows.
	wants  []bool
	hasReq []bool
	reqIns []int

	// Per-iteration scratch.
	granted    []int // per output: input granted this iteration, -1
	matchedOut []bool
	match      []int // per input: matched output, -1
}

// New builds an arbiter for nIn inputs and nOut outputs running iters
// request/grant/accept iterations per cell, with pointer positions seeded
// deterministically from seed.
func New(nIn, nOut, iters int, seed uint64) *ISLIP {
	if nIn <= 0 || nOut <= 0 {
		panic(fmt.Sprintf("arb: bad arbiter shape %dx%d", nIn, nOut))
	}
	if iters <= 0 {
		iters = 1
	}
	a := &ISLIP{
		nIn: nIn, nOut: nOut, iters: iters,
		gptr:       make([]int, nOut),
		aptr:       make([]int, nIn),
		wants:      make([]bool, nIn*nOut),
		hasReq:     make([]bool, nIn),
		reqIns:     make([]int, 0, nIn),
		granted:    make([]int, nOut),
		matchedOut: make([]bool, nOut),
		match:      make([]int, nIn),
	}
	r := rng.New(seed, arbStream)
	for o := range a.gptr {
		a.gptr[o] = r.Intn(nIn)
	}
	for i := range a.aptr {
		a.aptr[i] = r.Intn(nOut)
	}
	return a
}

// Iters returns the configured iteration count.
func (a *ISLIP) Iters() int { return a.iters }

// GrantPtr returns output o's grant pointer (for tests and diagnostics).
func (a *ISLIP) GrantPtr(o int) int { return a.gptr[o] }

// AcceptPtr returns input i's accept pointer.
func (a *ISLIP) AcceptPtr(i int) int { return a.aptr[i] }

// Begin starts a scheduling cell, clearing the previous cell's requests.
func (a *ISLIP) Begin() {
	for _, i := range a.reqIns {
		a.hasReq[i] = false
		row := a.wants[i*a.nOut : (i+1)*a.nOut]
		for o := range row {
			row[o] = false
		}
	}
	a.reqIns = a.reqIns[:0]
}

// Request registers input i as wanting each output in outs this cell.
// Duplicate registrations merge.  Match results are only meaningful for
// inputs registered since the last Begin.
func (a *ISLIP) Request(i int, outs []int) {
	if !a.hasReq[i] {
		a.hasReq[i] = true
		a.reqIns = append(a.reqIns, i)
		a.match[i] = -1
	}
	row := a.wants[i*a.nOut : (i+1)*a.nOut]
	for _, o := range outs {
		row[o] = true
	}
}

// Match runs the cell's iterations and returns the per-input match slice
// (the requested output each registered input won, or -1).  free reports
// whether an output is available at all this cell; it is consulted once
// per output per iteration.  The returned slice is the arbiter's scratch:
// valid until the next Begin.
func (a *ISLIP) Match(free func(o int) bool) []int {
	for o := range a.matchedOut {
		a.matchedOut[o] = false
	}
	for it := 0; it < a.iters; it++ {
		// Grant: every free unmatched output offers itself to the first
		// requesting unmatched input at or after its grant pointer.
		for o := 0; o < a.nOut; o++ {
			a.granted[o] = -1
			if a.matchedOut[o] || !free(o) {
				continue
			}
			base := a.gptr[o]
			for k := 0; k < a.nIn; k++ {
				i := base + k
				if i >= a.nIn {
					i -= a.nIn
				}
				if a.hasReq[i] && a.match[i] < 0 && a.wants[i*a.nOut+o] {
					a.granted[o] = i
					break
				}
			}
		}
		// Accept: every unmatched input takes the first granting output at
		// or after its accept pointer.  Pointers move only on first-
		// iteration accepts.
		any := false
		for i := 0; i < a.nIn; i++ {
			if !a.hasReq[i] || a.match[i] >= 0 {
				continue
			}
			base := a.aptr[i]
			for k := 0; k < a.nOut; k++ {
				o := base + k
				if o >= a.nOut {
					o -= a.nOut
				}
				if a.granted[o] != i {
					continue
				}
				a.match[i] = o
				a.matchedOut[o] = true
				any = true
				if it == 0 {
					a.gptr[o] = i + 1
					if a.gptr[o] == a.nIn {
						a.gptr[o] = 0
					}
					a.aptr[i] = o + 1
					if a.aptr[i] == a.nOut {
						a.aptr[i] = 0
					}
				}
				break
			}
		}
		if !any {
			break
		}
	}
	return a.match
}
