package arb

import (
	"testing"

	"wormlan/internal/rng"
)

func allFree(int) bool { return true }

// scanMatch is the port-scan arbitration discipline the fabric uses by
// default, reduced to the arbiter's terms: inputs are visited in rotated
// ascending order and an input wins its (single) requested output iff the
// output is still free when the scan reaches it.
func scanMatch(req []int, start int, free []bool) []int {
	n := len(req)
	out := make([]int, n)
	taken := make([]bool, len(free))
	for i := range out {
		out[i] = -1
	}
	for k := 0; k < n; k++ {
		i := (start + k) % n
		o := req[i]
		if o < 0 || !free[o] || taken[o] {
			continue
		}
		taken[o] = true
		out[i] = o
	}
	return out
}

// TestConflictFreeEquivalence: when every requested output is wanted by
// exactly one input (the NumVCs=1 common case between uncontended worms),
// one iSLIP iteration and the port scan produce the identical match set —
// every requester is served, regardless of pointer or scan positions.
func TestConflictFreeEquivalence(t *testing.T) {
	const n = 8
	r := rng.New(42, 1)
	for trial := 0; trial < 200; trial++ {
		a := New(n, n, 1, uint64(trial))
		// A random partial permutation: conflict-free by construction.
		perm := r.Perm(n)
		req := make([]int, n)
		free := make([]bool, n)
		for i := range req {
			req[i] = -1
			free[i] = true
		}
		nReq := 1 + r.Intn(n)
		for i := 0; i < nReq; i++ {
			req[i] = perm[i]
		}
		a.Begin()
		for i, o := range req {
			if o >= 0 {
				a.Request(i, []int{o})
			}
		}
		got := a.Match(allFree)
		want := scanMatch(req, trial%n, free)
		for i := range req {
			if req[i] < 0 {
				continue
			}
			if got[i] != want[i] || got[i] != req[i] {
				t.Fatalf("trial %d input %d: islip=%d scan=%d want %d", trial, i, got[i], want[i], req[i])
			}
		}
	}
}

// TestStarvationFreedom: every persistent single-output request is granted
// within iters x ports cells of appearing, across random contention
// patterns (multiple inputs camped on the same outputs).
func TestStarvationFreedom(t *testing.T) {
	const n = 8
	for _, iters := range []int{1, 2, 4} {
		r := rng.New(7, uint64(iters))
		for trial := 0; trial < 100; trial++ {
			a := New(n, n, iters, uint64(trial))
			req := make([]int, n) // persistent requested output per input
			for i := range req {
				req[i] = r.Intn(n)
			}
			served := make([]bool, n)
			bound := iters * n
			for cell := 0; cell < bound; cell++ {
				a.Begin()
				for i := range req {
					if !served[i] {
						a.Request(i, []int{req[i]})
					}
				}
				m := a.Match(allFree)
				for i := range req {
					if !served[i] && m[i] >= 0 {
						if m[i] != req[i] {
							t.Fatalf("iters=%d trial %d: input %d matched %d, requested %d", iters, trial, i, m[i], req[i])
						}
						served[i] = true
					}
				}
			}
			for i := range served {
				if !served[i] {
					t.Fatalf("iters=%d trial %d: input %d starved for %d cells (wanted output %d)",
						iters, trial, i, bound, req[i])
				}
			}
		}
	}
}

// TestPointerDeterminism: same seed and request sequence => identical
// matches and identical grant/accept pointer trajectories, cell by cell.
func TestPointerDeterminism(t *testing.T) {
	const n = 6
	run := func(seed uint64) ([]int, []int, []int) {
		a := New(n, n, 2, seed)
		r := rng.New(99, 0)
		var matches []int
		for cell := 0; cell < 64; cell++ {
			a.Begin()
			for i := 0; i < n; i++ {
				if r.Intn(3) > 0 {
					a.Request(i, []int{r.Intn(n)})
				}
			}
			m := a.Match(allFree)
			matches = append(matches, append([]int(nil), m...)...)
		}
		g := make([]int, n)
		ac := make([]int, n)
		for i := 0; i < n; i++ {
			g[i], ac[i] = a.GrantPtr(i), a.AcceptPtr(i)
		}
		return matches, g, ac
	}
	m1, g1, a1 := run(123)
	m2, g2, a2 := run(123)
	for i := range m1 {
		if m1[i] != m2[i] {
			t.Fatalf("match divergence at %d: %d vs %d", i, m1[i], m2[i])
		}
	}
	for i := range g1 {
		if g1[i] != g2[i] || a1[i] != a2[i] {
			t.Fatalf("pointer divergence at %d: g %d/%d a %d/%d", i, g1[i], g2[i], a1[i], a2[i])
		}
	}
}

// TestRoundRobinService: N inputs persistently contending for one output
// are each served exactly once per N cells once the pointer settles — the
// round-robin discipline the grant pointer exists to provide.
func TestRoundRobinService(t *testing.T) {
	const n = 5
	a := New(n, n, 1, 3)
	count := make([]int, n)
	for cell := 0; cell < 4*n; cell++ {
		a.Begin()
		for i := 0; i < n; i++ {
			a.Request(i, []int{0})
		}
		m := a.Match(allFree)
		won := -1
		for i := range m {
			if m[i] == 0 {
				if won >= 0 {
					t.Fatalf("cell %d: output 0 double-matched to %d and %d", cell, won, i)
				}
				won = i
			}
		}
		if won < 0 {
			t.Fatalf("cell %d: contended output went unmatched", cell)
		}
		count[won]++
	}
	for i, c := range count {
		if c != 4 {
			t.Fatalf("input %d served %d times in %d cells, want %d", i, c, 4*n, 4)
		}
	}
}

// TestMultiOutputRequest: an input requesting several outputs (a multicast
// replication set) is matched to exactly one of them per cell.
func TestMultiOutputRequest(t *testing.T) {
	a := New(4, 4, 3, 11)
	for cell := 0; cell < 16; cell++ {
		a.Begin()
		a.Request(0, []int{1, 2, 3})
		a.Request(1, []int{2})
		m := a.Match(allFree)
		if m[0] < 1 || m[0] > 3 {
			t.Fatalf("cell %d: input 0 matched %d outside its request set", cell, m[0])
		}
		if m[1] != 2 && m[0] != 2 {
			t.Fatalf("cell %d: output 2 free but input 1 unmatched", cell)
		}
	}
}

// TestFreeGate: outputs reported busy are never granted.
func TestFreeGate(t *testing.T) {
	a := New(3, 3, 2, 5)
	busy := map[int]bool{0: true, 2: true}
	for cell := 0; cell < 9; cell++ {
		a.Begin()
		for i := 0; i < 3; i++ {
			a.Request(i, []int{0, 1, 2})
		}
		m := a.Match(func(o int) bool { return !busy[o] })
		matched := 0
		for i := range m {
			if m[i] >= 0 {
				if busy[m[i]] {
					t.Fatalf("cell %d: busy output %d matched to input %d", cell, m[i], i)
				}
				matched++
			}
		}
		if matched != 1 {
			t.Fatalf("cell %d: %d matches with one free output", cell, matched)
		}
	}
}
