package flit

import (
	"testing"
	"testing/quick"
)

func TestWormWireSizeAndValidate(t *testing.T) {
	w := &Worm{ID: 1, Header: []byte{1, 2, 3}, PayloadLen: 400}
	if w.WireSize() != 404 {
		t.Fatalf("WireSize = %d", w.WireSize())
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := map[string]*Worm{
		"empty header": {ID: 1, PayloadLen: 4},
		"negative":     {ID: 2, Header: []byte{1}, PayloadLen: -1},
		"oversized":    {ID: 3, Header: []byte{1}, PayloadLen: MaxWormSize},
	}
	for name, w := range cases {
		if err := w.Validate(); err == nil {
			t.Errorf("%s: invalid worm validated", name)
		}
	}
}

func TestStreamProducesHeaderPayloadTail(t *testing.T) {
	w := &Worm{ID: 7, Header: []byte{9, 4}, PayloadLen: 3}
	s := NewStream(w, w.Header)
	var kinds []Kind
	var bytes []byte
	for {
		f, ok := s.Next()
		if !ok {
			break
		}
		kinds = append(kinds, f.Kind)
		if f.Kind == Header {
			bytes = append(bytes, f.B)
		}
		if f.W != w {
			t.Fatal("flit points at wrong worm")
		}
	}
	wantKinds := []Kind{Header, Header, Payload, Payload, Payload, Tail}
	if len(kinds) != len(wantKinds) {
		t.Fatalf("kinds = %v", kinds)
	}
	for i := range kinds {
		if kinds[i] != wantKinds[i] {
			t.Fatalf("kinds = %v, want %v", kinds, wantKinds)
		}
	}
	if bytes[0] != 9 || bytes[1] != 4 {
		t.Fatalf("header bytes = %v", bytes)
	}
}

func TestStreamRestampedHeader(t *testing.T) {
	// Downstream of a multicast stamp, the stream carries the stamped
	// header, not the worm's original one.
	w := &Worm{ID: 7, Header: []byte{1, 2, 3}, PayloadLen: 2}
	s := NewStream(w, []byte{0xFF})
	f, _ := s.Next()
	if f.Kind != Header || f.B != 0xFF {
		t.Fatalf("first flit %v", f)
	}
	if s.Remaining() != 3 { // 2 payload + tail
		t.Fatalf("Remaining = %d", s.Remaining())
	}
}

func TestStreamRemainingProperty(t *testing.T) {
	err := quick.Check(func(hRaw, pRaw uint8) bool {
		h := make([]byte, int(hRaw%16)+1)
		w := &Worm{ID: 1, Header: h, PayloadLen: int(pRaw % 64)}
		s := NewStream(w, h)
		want := w.WireSize()
		for {
			if s.Remaining() != want {
				return false
			}
			_, ok := s.Next()
			if !ok {
				return want == 0
			}
			want--
		}
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestStreamExhausted(t *testing.T) {
	w := &Worm{ID: 1, Header: []byte{1}, PayloadLen: 0}
	s := NewStream(w, w.Header)
	n := 0
	for {
		_, ok := s.Next()
		if !ok {
			break
		}
		n++
	}
	if n != 2 { // header + tail
		t.Fatalf("stream produced %d flits", n)
	}
	if _, ok := s.Next(); ok {
		t.Fatal("stream produced flits after tail")
	}
}

func TestReassembler(t *testing.T) {
	w := &Worm{ID: 5, Header: []byte{1}, PayloadLen: 4}
	s := NewStream(w, []byte{0xFF}) // as delivered: bare END header
	var r Reassembler
	done := false
	for {
		f, ok := s.Next()
		if !ok {
			break
		}
		var err error
		done, err = r.Feed(f)
		if err != nil {
			t.Fatal(err)
		}
	}
	if !done {
		t.Fatal("reassembler did not complete on tail")
	}
	if !r.Complete() {
		t.Fatalf("incomplete: %d of %d payload bytes", r.PayloadBytes(), w.PayloadLen)
	}
	if r.Fragments != 1 {
		t.Fatalf("fragments = %d", r.Fragments)
	}
	if r.Worm() != w {
		t.Fatal("wrong worm")
	}
}

func TestReassemblerFragments(t *testing.T) {
	// Two fragments of the same worm: 3 payload bytes then tail, then a
	// fresh header, 2 more payload bytes, tail.
	w := &Worm{ID: 5, Header: []byte{1}, PayloadLen: 5}
	var r Reassembler
	feed := func(k Kind) bool {
		done, err := r.Feed(Flit{W: w, Kind: k})
		if err != nil {
			t.Fatal(err)
		}
		return done
	}
	feed(Header)
	feed(Payload)
	feed(Payload)
	feed(Payload)
	if !feed(Tail) {
		t.Fatal("first fragment tail not reported")
	}
	if r.Complete() {
		t.Fatal("complete after 3 of 5 bytes")
	}
	feed(Header)
	feed(Payload)
	feed(Payload)
	feed(Tail)
	if !r.Complete() || r.Fragments != 2 {
		t.Fatalf("fragments=%d complete=%v", r.Fragments, r.Complete())
	}
}

func TestReassemblerRejectsInterleaving(t *testing.T) {
	w1 := &Worm{ID: 1, Header: []byte{1}, PayloadLen: 2}
	w2 := &Worm{ID: 2, Header: []byte{1}, PayloadLen: 2}
	var r Reassembler
	if _, err := r.Feed(Flit{W: w1, Kind: Payload}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Feed(Flit{W: w2, Kind: Payload}); err == nil {
		t.Fatal("interleaved worm accepted")
	}
	r.Reset()
	if _, err := r.Feed(Flit{W: w2, Kind: Payload}); err != nil {
		t.Fatalf("after reset: %v", err)
	}
}

func TestStrings(t *testing.T) {
	w := &Worm{ID: 3, Header: []byte{7}}
	if s := (Flit{W: w, Kind: Header, B: 7}).String(); s != "w3:H[7]" {
		t.Fatalf("flit string %q", s)
	}
	if s := (Flit{}).String(); s != "<empty>" {
		t.Fatalf("empty flit string %q", s)
	}
	if Unicast.String() != "unicast" || MulticastTree.String() != "multicast-tree" || Broadcast.String() != "broadcast" {
		t.Fatal("mode strings")
	}
	if Header.String() != "H" || Payload.String() != "P" || Tail.String() != "T" || Kind(9).String() != "?" {
		t.Fatal("kind strings")
	}
}
