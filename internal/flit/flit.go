// Package flit defines the unit of information transfer in the wormhole
// network: worms and the byte-sized flits they are made of.
//
// A worm (Section 2 of the paper) is a variable-length message, up to 9 KB
// in Myrinet, consisting of a source-route header, a payload, and a tail
// marker.  The simulator models the network at the byte level: one flit is
// one byte on the wire, and a flit takes one byte-time (12.5 ns at
// 640 Mb/s) to cross a link stage.
package flit

import (
	"fmt"

	"wormlan/internal/des"
	"wormlan/internal/topology"
)

// MaxWormSize is the largest worm the LANai control program allows (9 KB).
const MaxWormSize = 9 * 1024

// Kind classifies a flit.
type Kind uint8

// Flit kinds.
const (
	// Header flits carry source-route bytes, consumed or rewritten by
	// switches.
	Header Kind = iota
	// Payload flits carry message data (content is not modelled).
	Payload
	// Tail marks the end of the worm; forwarding state is torn down when
	// it passes.  It models Myrinet's end-of-packet control symbol plus
	// the recomputed checksum trailer.
	Tail
	// Hello is a liveness probe (one control symbol on the wire, W is
	// nil).  Hellos are consumed at the receiving port — they never enter
	// slack buffers or reassemblers — and exist only so the liveness
	// protocol shares links, and therefore congestion, with data worms.
	Hello
)

// String returns a single-letter mnemonic (H/P/T/L).
func (k Kind) String() string {
	switch k {
	case Header:
		return "H"
	case Payload:
		return "P"
	case Tail:
		return "T"
	case Hello:
		return "L"
	default:
		return "?"
	}
}

// Mode is the routing mode of a worm, dispatched on by switch input ports.
// (Real hardware would carry this as a packet-type byte; the simulator
// stores it in worm metadata for convenience.)
type Mode uint8

// Worm routing modes.
const (
	// Unicast worms carry a port-list header, one byte stripped per switch.
	Unicast Mode = iota
	// MulticastTree worms carry the linearized tree header of Figure 2 and
	// are replicated inside switches.
	MulticastTree
	// Broadcast worms carry a unicast route to the up/down root followed
	// by the broadcast pseudo-port (Section 3).
	Broadcast
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case Unicast:
		return "unicast"
	case MulticastTree:
		return "multicast-tree"
	case Broadcast:
		return "broadcast"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}

// Worm is one message in flight.  The same Worm is referenced by every flit
// of every replica; per-branch state lives in the fabric, not here.
type Worm struct {
	// ID is unique per injected worm (retransmissions reuse it so that
	// statistics can track end-to-end delivery).
	ID int64
	// Src is the originating host.
	Src topology.NodeID
	// Dst is the destination host for unicast worms; for multicast worms
	// it is the next-hop host at the adapter level, or None for
	// switch-level multicast.
	Dst topology.NodeID
	// Mode selects the switch forwarding behaviour.
	Mode Mode
	// Group is the multicast group ID, or -1 for pure unicast traffic.
	Group int
	// Header is the source-route header at injection time.
	Header []byte
	// PayloadLen is the number of payload bytes.
	PayloadLen int

	// Created is when the worm was generated (for end-to-end latency);
	// Injected is when its head flit first entered the network.
	Created, Injected des.Time

	// Epoch is the fabric topology epoch at injection time.  A worm whose
	// epoch is behind the fabric's current epoch carries a source route
	// computed before a failure; the fabric counts (rather than silently
	// mis-delivers) such stale worms when their route hits a dead link.
	Epoch int64

	// Meta carries adapter- or application-level context through the
	// fabric untouched.
	Meta any

	// RxProgress counts payload flits delivered so far at the receiving
	// host interface, and RxDone is set when reception completes.  A host
	// adapter forwarding this worm in cut-through mode paces the outgoing
	// copy against these (see PaceFrom).
	RxProgress int
	RxDone     bool

	// PaceFrom, when non-nil, marks this worm as a cut-through forward of
	// a still-arriving upstream worm: the host interface transmits payload
	// byte i only once PaceFrom.RxProgress exceeds i, and the tail only
	// once PaceFrom.RxDone — a retransmission cannot outrun its reception.
	PaceFrom *Worm

	// RxAborted is set when this worm's reception was abandoned (its copy
	// was truncated by a link failure or discarded as corrupt).  A
	// cut-through forward paced against an aborted worm can never finish
	// and must itself be aborted.
	RxAborted bool
}

// WireSize returns the number of flits the worm occupies on the wire at
// injection: header + payload + tail.
func (w *Worm) WireSize() int { return len(w.Header) + w.PayloadLen + 1 }

// Validate checks worm invariants before injection.
func (w *Worm) Validate() error {
	if len(w.Header) == 0 {
		return fmt.Errorf("flit: worm %d has empty header", w.ID)
	}
	if w.PayloadLen < 0 {
		return fmt.Errorf("flit: worm %d has negative payload", w.ID)
	}
	if w.WireSize() > MaxWormSize {
		return fmt.Errorf("flit: worm %d wire size %d exceeds LANai limit %d",
			w.ID, w.WireSize(), MaxWormSize)
	}
	return nil
}

// Flit is one byte on the wire.
type Flit struct {
	// W is the worm this flit belongs to.
	W *Worm
	// Kind classifies the flit.
	Kind Kind
	// B is the header byte value; meaningful only when Kind == Header.
	B byte
	// VC is the virtual-channel lane this flit travels on.  Physically it
	// models the lane tag in the channel-symbol encoding (each flit on a
	// multi-lane link is framed with its lane id, as in multi-VC wormhole
	// routers); lane 0 on every single-lane fabric, so the zero value is
	// the pre-VC wire format.
	VC uint8
	// Bad marks a damaged flit.  A Bad payload flit models wire corruption
	// (the receiving host discards the worm on checksum failure); a Bad
	// tail is the fabric's forward-reset marker, synthesized to terminate a
	// worm truncated by a link or switch failure so that downstream state
	// tears down instead of waiting forever.
	Bad bool
}

// String renders the flit for traces.
func (f Flit) String() string {
	if f.W == nil {
		return "<empty>"
	}
	if f.Kind == Header {
		return fmt.Sprintf("w%d:H[%d]", f.W.ID, f.B)
	}
	return fmt.Sprintf("w%d:%s", f.W.ID, f.Kind)
}

// Stream generates a worm's flits one at a time, given the header bytes to
// emit (which may differ from w.Header downstream of a multicast stamp).
type Stream struct {
	W       *Worm
	header  []byte
	hi      int // next header byte index
	payload int // payload flits remaining
	sent    int // flits emitted so far
	done    bool
}

// NewStream returns a flit stream for the worm carrying the given header
// bytes, followed by the worm's payload and a tail flit.
func NewStream(w *Worm, header []byte) *Stream {
	s := new(Stream)
	s.Reset(w, header)
	return s
}

// Reset reinitializes the stream in place for the given worm and header,
// so a long-lived Stream (e.g. one embedded in a host interface) can be
// reused across worms without allocating.
func (s *Stream) Reset(w *Worm, header []byte) {
	*s = Stream{W: w, header: header, payload: w.PayloadLen}
}

// Next returns the next flit of the stream.  ok is false when the stream is
// exhausted (the previous flit was the tail).
func (s *Stream) Next() (f Flit, ok bool) {
	switch {
	case s.done:
		return Flit{}, false
	case s.hi < len(s.header):
		f = Flit{W: s.W, Kind: Header, B: s.header[s.hi]}
		s.hi++
	case s.payload > 0:
		f = Flit{W: s.W, Kind: Payload}
		s.payload--
	default:
		f = Flit{W: s.W, Kind: Tail}
		s.done = true
	}
	s.sent++
	return f, true
}

// Started reports whether the stream has emitted at least one flit — i.e.
// whether aborting it requires a terminating tail on the wire.
func (s *Stream) Started() bool { return s.sent > 0 }

// PayloadRun returns the number of payload flits the stream will emit
// before its next non-payload flit: the length of the pure-payload prefix
// of its remaining output.  Zero when the next flit is a header byte or
// the tail.  Worm fast-forward (network.Fabric.Skip) uses it to bound how
// many ticks of this stream can be advanced in one step.
func (s *Stream) PayloadRun() int {
	if s.done || s.hi < len(s.header) {
		return 0
	}
	return s.payload
}

// Advance emits n payload flits in one step, as if Next had been called n
// times during a pure-payload run.  The caller must ensure n <=
// PayloadRun(); every skipped flit is Flit{W: s.W, Kind: Payload}.
func (s *Stream) Advance(n int) {
	if n > s.payload {
		panic(fmt.Sprintf("flit: Advance(%d) beyond payload run %d of worm %d", n, s.payload, s.W.ID))
	}
	s.payload -= n
	s.sent += n
}

// Remaining returns how many flits the stream will still produce.
func (s *Stream) Remaining() int {
	if s.done {
		return 0
	}
	return (len(s.header) - s.hi) + s.payload + 1
}

// CanSend reports whether the next flit may be transmitted given the
// worm's cut-through pacing source (nil means unpaced: always sendable
// until exhausted).  Header flits are always available (the adapter knows
// the route before the payload arrives); payload byte i needs i <
// from.RxProgress; the tail needs complete upstream reception.
func (s *Stream) CanSend(from *Worm) bool {
	if s.done {
		return false
	}
	if from == nil {
		return true
	}
	switch {
	case s.hi < len(s.header):
		return true
	case s.payload > 0:
		sent := s.W.PayloadLen - s.payload
		return sent < from.RxProgress
	default:
		return from.RxDone
	}
}

// WormPool is a free-list of Worm structs for traffic layers that inject
// and retire worms at high rate.  It is a plain slice, not a sync.Pool:
// reuse order is deterministic and nothing is dropped by the garbage
// collector, so pooling cannot perturb a replayed run.
//
// Ownership rules (DESIGN.md §12): the fabric never takes ownership of a
// worm — only the layer that allocated (or Got) a worm may Put it back,
// and only once the worm is fully retired: delivered (or abandoned) at
// every destination, not the PaceFrom source of any live cut-through
// forward, and never in a run where a fault may have touched it (the
// fabric's drop accounting is keyed by worm pointer, so recycling a
// possibly-dropped worm would corrupt WormsDropped).
type WormPool struct {
	free []*Worm
}

// Get returns a zeroed worm, reusing a retired one when available.
func (p *WormPool) Get() *Worm {
	if n := len(p.free); n > 0 {
		w := p.free[n-1]
		p.free = p.free[:n-1]
		*w = Worm{}
		return w
	}
	//wormlint:alloc pool miss: the worm joins the free-list when retired
	return new(Worm)
}

// Put retires a worm to the pool.  See the ownership rules on WormPool.
func (p *WormPool) Put(w *Worm) { p.free = append(p.free, w) }

// Reassembler collects the flits of one incoming worm at a host interface
// and reports completion.  It tolerates fragments (the interrupted-
// transmission multicast scheme of Section 3 resumes with a fresh header),
// counting payload bytes across fragments of the same worm.
type Reassembler struct {
	w        *Worm
	payload  int
	headerIn int
	// Fragments counts tail-terminated segments seen for this worm.
	Fragments int
	// Corrupt is set when any fed flit carried the Bad mark; the worm must
	// be discarded on completion (checksum failure at the receiver).
	Corrupt bool
}

// Feed consumes one flit.  done is true when a tail flit arrives.
func (r *Reassembler) Feed(f Flit) (done bool, err error) {
	if r.w == nil {
		r.w = f.W
	} else if r.w != f.W {
		return false, fmt.Errorf("flit: interleaved worms %d and %d at reassembler", r.w.ID, f.W.ID)
	}
	if f.Bad {
		r.Corrupt = true
	}
	//wormlint:partial hello flits are consumed at switch input ports and never reach a host reassembler
	switch f.Kind {
	case Header:
		r.headerIn++
	case Payload:
		r.payload++
	case Tail:
		r.Fragments++
		return true, nil
	}
	return false, nil
}

// Worm returns the worm being reassembled (nil before the first flit).
func (r *Reassembler) Worm() *Worm { return r.w }

// PayloadBytes returns how many payload flits have arrived so far.
func (r *Reassembler) PayloadBytes() int { return r.payload }

// AdvancePayload records n payload arrivals in one step, as if Feed had
// been called n times with clean payload flits of the current worm.  Used
// by worm fast-forward; the reassembler must already have a worm.
func (r *Reassembler) AdvancePayload(n int) {
	if r.w == nil {
		panic("flit: AdvancePayload on idle reassembler")
	}
	r.payload += n
}

// Complete reports whether every payload byte of the worm has arrived.
func (r *Reassembler) Complete() bool {
	return r.w != nil && r.payload >= r.w.PayloadLen
}

// Reset prepares the reassembler for the next worm.
func (r *Reassembler) Reset() { *r = Reassembler{} }
