package flit

import "testing"

func TestCanSendUnpaced(t *testing.T) {
	w := &Worm{ID: 1, Header: []byte{1}, PayloadLen: 2}
	s := NewStream(w, w.Header)
	for s.Remaining() > 0 {
		if !s.CanSend(nil) {
			t.Fatal("unpaced stream refused to send")
		}
		s.Next()
	}
	if s.CanSend(nil) {
		t.Fatal("exhausted stream claims sendable")
	}
}

func TestCanSendPacedByUpstream(t *testing.T) {
	upstream := &Worm{ID: 1, Header: []byte{9}, PayloadLen: 3}
	fwd := &Worm{ID: 2, Header: []byte{4, 2}, PayloadLen: 3, PaceFrom: upstream}
	s := NewStream(fwd, fwd.Header)

	// Header flits are always available: the adapter knows the route.
	for i := 0; i < 2; i++ {
		if !s.CanSend(fwd.PaceFrom) {
			t.Fatalf("header flit %d blocked by pacing", i)
		}
		s.Next()
	}
	// Payload byte 0 requires RxProgress > 0.
	if s.CanSend(fwd.PaceFrom) {
		t.Fatal("payload sent before upstream delivered any bytes")
	}
	upstream.RxProgress = 1
	if !s.CanSend(fwd.PaceFrom) {
		t.Fatal("payload byte 0 blocked despite RxProgress=1")
	}
	s.Next()
	// Payload byte 1 requires RxProgress > 1.
	if s.CanSend(fwd.PaceFrom) {
		t.Fatal("payload outran reception")
	}
	upstream.RxProgress = 3
	if !s.CanSend(fwd.PaceFrom) {
		t.Fatal("blocked with full progress")
	}
	s.Next()
	s.Next()
	// Tail requires complete upstream reception.
	if s.CanSend(fwd.PaceFrom) {
		t.Fatal("tail sent before upstream completed")
	}
	upstream.RxDone = true
	if !s.CanSend(fwd.PaceFrom) {
		t.Fatal("tail blocked after completion")
	}
	if f, ok := s.Next(); !ok || f.Kind != Tail {
		t.Fatalf("expected tail, got %v %v", f, ok)
	}
	if s.CanSend(fwd.PaceFrom) {
		t.Fatal("exhausted paced stream claims sendable")
	}
}
