package topology

import (
	"fmt"

	"wormlan/internal/rng"
)

// Torus builds a rows x cols torus of switches, each with hostsPerSwitch
// hosts attached.  The paper's Figure 10 experiment uses an 8x8 torus with
// one host per switch (64 hosts).  Inter-switch links get linkDelay
// byte-times of propagation (0 means 1); host links always get delay 1.
//
// Port layout per switch: inter-switch ports are assigned in the order the
// links are created (row rings first, then column rings), followed by the
// host ports.  The layout is deterministic, so source routes are stable
// across runs.
func Torus(rows, cols, hostsPerSwitch int, linkDelay int64) *Graph {
	g, _ := TorusWithGeom(rows, cols, hostsPerSwitch, linkDelay)
	return g
}

// TorusGeom records the coordinate system of a torus built by
// TorusWithGeom: which port of each switch leads in each ring direction,
// and where the hosts attach.  Routing schemes that need geometry the graph
// alone does not expose — dimension-order minimal routing with dateline VC
// switching — consume this instead of re-deriving directions from node IDs.
type TorusGeom struct {
	Rows, Cols, HostsPer int

	// Sw[r][c] is the switch at row r, column c.
	Sw [][]NodeID
	// XPlus[r][c] / XMinus[r][c] are the ports of Sw[r][c] toward column
	// c+1 / c-1 (mod Cols); YPlus/YMinus likewise for rows.  For a
	// degenerate 2-wide dimension both directions share the single cable.
	XPlus, XMinus [][]PortID
	YPlus, YMinus [][]PortID
	// HostPort[r][c][h] is the port of Sw[r][c] leading to its h-th host,
	// whose node id is Hosts[r][c][h].
	HostPort [][][]PortID
	Hosts    [][][]NodeID
}

// TorusWithGeom builds the same graph as Torus and additionally returns its
// geometry.  The construction order — and therefore every node and port id —
// is identical to Torus's.
func TorusWithGeom(rows, cols, hostsPerSwitch int, linkDelay int64) (*Graph, *TorusGeom) {
	if rows < 2 || cols < 2 {
		panic("topology: torus needs rows, cols >= 2")
	}
	if linkDelay == 0 {
		linkDelay = 1
	}
	g := New()
	geo := &TorusGeom{Rows: rows, Cols: cols, HostsPer: hostsPerSwitch}
	geo.Sw = make([][]NodeID, rows)
	geo.XPlus = make([][]PortID, rows)
	geo.XMinus = make([][]PortID, rows)
	geo.YPlus = make([][]PortID, rows)
	geo.YMinus = make([][]PortID, rows)
	geo.HostPort = make([][][]PortID, rows)
	geo.Hosts = make([][][]NodeID, rows)
	for r := 0; r < rows; r++ {
		geo.Sw[r] = make([]NodeID, cols)
		geo.XPlus[r] = make([]PortID, cols)
		geo.XMinus[r] = make([]PortID, cols)
		geo.YPlus[r] = make([]PortID, cols)
		geo.YMinus[r] = make([]PortID, cols)
		geo.HostPort[r] = make([][]PortID, cols)
		geo.Hosts[r] = make([][]NodeID, cols)
		for c := 0; c < cols; c++ {
			geo.Sw[r][c] = g.AddSwitch(fmt.Sprintf("s%d.%d", r, c))
		}
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			// Right neighbour (wraps). For cols==2 the wrap link would
			// duplicate the direct link; skip the second one.
			if cols > 2 || c == 0 {
				c2 := (c + 1) % cols
				pa, pb := g.Connect(geo.Sw[r][c], geo.Sw[r][c2], linkDelay)
				geo.XPlus[r][c] = pa
				geo.XMinus[r][c2] = pb
				if cols == 2 {
					// One cable serves both directions of the 2-ring.
					geo.XMinus[r][c] = pa
					geo.XPlus[r][c2] = pb
				}
			}
		}
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if rows > 2 || r == 0 {
				r2 := (r + 1) % rows
				pa, pb := g.Connect(geo.Sw[r][c], geo.Sw[r2][c], linkDelay)
				geo.YPlus[r][c] = pa
				geo.YMinus[r2][c] = pb
				if rows == 2 {
					geo.YMinus[r][c] = pa
					geo.YPlus[r2][c] = pb
				}
			}
		}
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			geo.HostPort[r][c] = make([]PortID, hostsPerSwitch)
			geo.Hosts[r][c] = make([]NodeID, hostsPerSwitch)
			for h := 0; h < hostsPerSwitch; h++ {
				host := g.AddHost(fmt.Sprintf("h%d.%d.%d", r, c, h))
				pa, _ := g.Connect(geo.Sw[r][c], host, 1)
				geo.HostPort[r][c][h] = pa
				geo.Hosts[r][c][h] = host
			}
		}
	}
	return g, geo
}

// FullMesh builds nSwitches switches with a direct full-duplex cable
// between every pair, and hostsPerSwitch hosts on each.  Every host pair is
// then at most two switch hops apart (src switch -> dst switch -> host),
// which makes plain shortest-path routing deadlock-free without virtual
// channels: an inter-switch channel only ever waits on host-delivery
// channels, which always drain (the direct-connect argument of
// arXiv 2510.14730's full-mesh fabric).
//
// Port layout per switch k: cables to switches 0..k-1, then to k+1..n-1
// (pair loop in ascending (i, j) order), then the host ports — fully
// deterministic, like every other builder.
func FullMesh(nSwitches, hostsPerSwitch int, linkDelay int64) *Graph {
	if nSwitches < 2 {
		panic("topology: full mesh needs >= 2 switches")
	}
	if hostsPerSwitch < 1 {
		panic("topology: full mesh needs >= 1 host per switch")
	}
	if linkDelay == 0 {
		linkDelay = 1
	}
	g := New()
	sw := make([]NodeID, nSwitches)
	for i := range sw {
		sw[i] = g.AddSwitch(fmt.Sprintf("s%d", i))
	}
	for i := 0; i < nSwitches; i++ {
		for j := i + 1; j < nSwitches; j++ {
			g.Connect(sw[i], sw[j], linkDelay)
		}
	}
	for i := 0; i < nSwitches; i++ {
		for h := 0; h < hostsPerSwitch; h++ {
			host := g.AddHost(fmt.Sprintf("h%d.%d", i, h))
			g.Connect(sw[i], host, 1)
		}
	}
	return g
}

// BidirShufflenet builds a (p, k) bidirectional shufflenet: k columns of
// p^k switches each, where switch (col, row) links to the p switches
// (col+1 mod k, row*p + j mod p^k) for j in [0, p).  All links are
// full-duplex (the "bidirectional" of [PLG95]).  Each switch carries one
// host.  The paper's Figure 11 uses the 24-node instance (p=2, k=3) with
// 1000 byte-times of propagation per backbone link.
func BidirShufflenet(p, k int, linkDelay int64) *Graph {
	g, _ := BidirShufflenetWithGeom(p, k, linkDelay)
	return g
}

// ShuffleGeom records the coordinate system of a shufflenet built by
// BidirShufflenetWithGeom: which port of each switch leads forward along
// each perfect-shuffle arc, and where the hosts attach.  Forward-column
// routing (vcroute.Shufflenet) consumes this instead of re-deriving the
// shuffle pattern from node IDs.
type ShuffleGeom struct {
	P, K, Rows int

	// Sw[c][r] is the switch of column c, row r.
	Sw [][]NodeID
	// Fwd[c][r][j] is the port of Sw[c][r] toward its j-th forward
	// neighbour, switch (c+1 mod K, (r*P+j) mod Rows).  For k == 2 some
	// forward arcs of both columns share one full-duplex cable; Fwd then
	// names each side's own port on that cable.
	Fwd [][][]PortID
	// HostPort[c][r] is the port of Sw[c][r] leading to its host,
	// whose node id is Hosts[c][r].
	HostPort [][]PortID
	Hosts    [][]NodeID
}

// BidirShufflenetWithGeom builds the same graph as BidirShufflenet and
// additionally returns its geometry.  The construction order — and
// therefore every node and port id — is identical to BidirShufflenet's.
func BidirShufflenetWithGeom(p, k int, linkDelay int64) (*Graph, *ShuffleGeom) {
	if p < 2 || k < 2 {
		panic("topology: shufflenet needs p >= 2, k >= 2")
	}
	if linkDelay == 0 {
		linkDelay = 1
	}
	rows := 1
	for i := 0; i < k; i++ {
		rows *= p
	}
	g := New()
	geo := &ShuffleGeom{P: p, K: k, Rows: rows}
	geo.Sw = make([][]NodeID, k)
	geo.Fwd = make([][][]PortID, k)
	geo.HostPort = make([][]PortID, k)
	geo.Hosts = make([][]NodeID, k)
	sw := geo.Sw
	for c := 0; c < k; c++ {
		sw[c] = make([]NodeID, rows)
		geo.Fwd[c] = make([][]PortID, rows)
		for r := 0; r < rows; r++ {
			sw[c][r] = g.AddSwitch(fmt.Sprintf("s%d.%d", c, r))
			geo.Fwd[c][r] = make([]PortID, p)
		}
	}
	type pair struct{ a, b NodeID }
	seen := map[pair]bool{}
	// portTo[{a, b}] is a's port on the (unique) cable toward b.
	portTo := map[pair]PortID{}
	for c := 0; c < k; c++ {
		next := (c + 1) % k
		for r := 0; r < rows; r++ {
			for j := 0; j < p; j++ {
				a, b := sw[c][r], sw[next][(r*p+j)%rows]
				// In a bidirectional shufflenet a full-duplex cable serves
				// both directions; avoid double-wiring the same pair (which
				// happens for k == 2 where next column wraps straight back).
				key := pair{a, b}
				if a > b {
					key = pair{b, a}
				}
				if a != b && !seen[key] {
					seen[key] = true
					pa, pb := g.Connect(a, b, linkDelay)
					portTo[pair{a, b}] = pa
					portTo[pair{b, a}] = pb
				}
				geo.Fwd[c][r][j] = portTo[pair{a, b}]
			}
		}
	}
	for c := 0; c < k; c++ {
		geo.HostPort[c] = make([]PortID, rows)
		geo.Hosts[c] = make([]NodeID, rows)
		for r := 0; r < rows; r++ {
			host := g.AddHost(fmt.Sprintf("h%d.%d", c, r))
			pa, _ := g.Connect(sw[c][r], host, 1)
			geo.HostPort[c][r] = pa
			geo.Hosts[c][r] = host
		}
	}
	return g, geo
}

// ClosGeom records the structure of a leaf-spine Clos fabric built by
// ClosWithGeom: which leaf port reaches which spine and vice versa, and
// where the hosts attach.  Spine-deterministic direct routing
// (vcroute.Clos) consumes this.
type ClosGeom struct {
	NLeaf, NSpine, HostsPer int

	Leaf, Spine []NodeID
	// Up[l][s] is the port of Leaf[l] toward Spine[s]; Down[s][l] the port
	// of Spine[s] toward Leaf[l].
	Up, Down [][]PortID
	// HostPort[l][h] is the port of Leaf[l] leading to its h-th host,
	// whose node id is Hosts[l][h].
	HostPort [][]PortID
	Hosts    [][]NodeID
}

// Clos builds a two-level leaf-spine Clos fabric: nLeaf leaf switches each
// cabled to all nSpine spine switches, with hostsPerLeaf hosts per leaf.
// Every inter-leaf path is exactly leaf -> spine -> leaf, which — like the
// full mesh — is deadlock-free without virtual channels: an up (leaf to
// spine) channel waits only on down channels, and down channels wait only
// on host deliveries, which always drain.
//
// Port layout: leaf l's ports 0..nSpine-1 go to spines 0..nSpine-1 (so
// spine s's ports 0..nLeaf-1 go to leaves 0..nLeaf-1), then the host
// ports — fully deterministic, like every other builder.
func Clos(nLeaf, nSpine, hostsPerLeaf int, linkDelay int64) *Graph {
	g, _ := ClosWithGeom(nLeaf, nSpine, hostsPerLeaf, linkDelay)
	return g
}

// ClosWithGeom builds the same graph as Clos and additionally returns its
// geometry.
func ClosWithGeom(nLeaf, nSpine, hostsPerLeaf int, linkDelay int64) (*Graph, *ClosGeom) {
	if nLeaf < 2 || nSpine < 1 {
		panic("topology: clos needs >= 2 leaves and >= 1 spine")
	}
	if hostsPerLeaf < 1 {
		panic("topology: clos needs >= 1 host per leaf")
	}
	if linkDelay == 0 {
		linkDelay = 1
	}
	g := New()
	geo := &ClosGeom{NLeaf: nLeaf, NSpine: nSpine, HostsPer: hostsPerLeaf}
	geo.Leaf = make([]NodeID, nLeaf)
	geo.Spine = make([]NodeID, nSpine)
	geo.Up = make([][]PortID, nLeaf)
	geo.Down = make([][]PortID, nSpine)
	for l := 0; l < nLeaf; l++ {
		geo.Leaf[l] = g.AddSwitch(fmt.Sprintf("leaf%d", l))
		geo.Up[l] = make([]PortID, nSpine)
	}
	for s := 0; s < nSpine; s++ {
		geo.Spine[s] = g.AddSwitch(fmt.Sprintf("spine%d", s))
		geo.Down[s] = make([]PortID, nLeaf)
	}
	for l := 0; l < nLeaf; l++ {
		for s := 0; s < nSpine; s++ {
			pa, pb := g.Connect(geo.Leaf[l], geo.Spine[s], linkDelay)
			geo.Up[l][s] = pa
			geo.Down[s][l] = pb
		}
	}
	geo.HostPort = make([][]PortID, nLeaf)
	geo.Hosts = make([][]NodeID, nLeaf)
	for l := 0; l < nLeaf; l++ {
		geo.HostPort[l] = make([]PortID, hostsPerLeaf)
		geo.Hosts[l] = make([]NodeID, hostsPerLeaf)
		for h := 0; h < hostsPerLeaf; h++ {
			host := g.AddHost(fmt.Sprintf("h%d.%d", l, h))
			pa, _ := g.Connect(geo.Leaf[l], host, 1)
			geo.HostPort[l][h] = pa
			geo.Hosts[l][h] = host
		}
	}
	return g, geo
}

// Myrinet4 builds the four-switch, eight-host LAN used for the paper's
// prototype measurements (Section 8.2): four crossbar switches in a ring
// with two hosts on each switch.  Link delays are 1 byte-time (25 m of
// cable is well under one byte-time at 640 Mb/s, but zero delays are not
// representable; 1 is the closest model).
func Myrinet4() *Graph {
	g := New()
	var sw [4]NodeID
	for i := range sw {
		sw[i] = g.AddSwitch(fmt.Sprintf("s%d", i))
	}
	for i := range sw {
		g.Connect(sw[i], sw[(i+1)%4], 1)
	}
	for i := range sw {
		for h := 0; h < 2; h++ {
			host := g.AddHost(fmt.Sprintf("h%d", i*2+h))
			g.Connect(sw[i], host, 1)
		}
	}
	return g
}

// Line builds n switches in a line, each with one host.  Useful for unit
// tests where routes are trivially predictable.
func Line(n int, linkDelay int64) *Graph {
	if n < 1 {
		panic("topology: line needs n >= 1")
	}
	g := New()
	prev := None
	for i := 0; i < n; i++ {
		s := g.AddSwitch(fmt.Sprintf("s%d", i))
		if prev != None {
			g.Connect(prev, s, linkDelay)
		}
		h := g.AddHost(fmt.Sprintf("h%d", i))
		g.Connect(s, h, 1)
		prev = s
	}
	return g
}

// Ring builds n switches in a cycle, each with one host.  Rings are the
// canonical topology for demonstrating wormhole deadlock (a cycle of
// blocked worms) and for forcing up/down routing off the shortest path.
func Ring(n int, linkDelay int64) *Graph {
	if n < 3 {
		panic("topology: ring needs n >= 3")
	}
	g := New()
	sws := make([]NodeID, n)
	for i := 0; i < n; i++ {
		sws[i] = g.AddSwitch(fmt.Sprintf("s%d", i))
	}
	for i := 0; i < n; i++ {
		g.Connect(sws[i], sws[(i+1)%n], linkDelay)
	}
	for i := 0; i < n; i++ {
		h := g.AddHost(fmt.Sprintf("h%d", i))
		g.Connect(sws[i], h, 1)
	}
	return g
}

// Star builds one hub switch with n hosts directly attached.  This is the
// degenerate single-switch LAN.
func Star(n int) *Graph {
	g := New()
	hub := g.AddSwitch("hub")
	for i := 0; i < n; i++ {
		h := g.AddHost(fmt.Sprintf("h%d", i))
		g.Connect(hub, h, 1)
	}
	return g
}

// FatTreeish builds a two-level tree of switches: one root, fan spines off
// the root, and leafPerSpine hosts per spine switch, plus optional
// crosslinks between adjacent spines.  Crosslinks exercise the up/down
// crosslink-avoidance logic (Section 3): they are not part of the BFS
// spanning tree when the root switch is chosen as the up/down root.
func FatTreeish(fan, hostsPerSpine int, crosslinks bool) *Graph {
	g := New()
	root := g.AddSwitch("root")
	spines := make([]NodeID, fan)
	for i := 0; i < fan; i++ {
		spines[i] = g.AddSwitch(fmt.Sprintf("spine%d", i))
		g.Connect(root, spines[i], 1)
	}
	if crosslinks {
		for i := 0; i+1 < fan; i += 2 {
			g.Connect(spines[i], spines[i+1], 1)
		}
	}
	for i := 0; i < fan; i++ {
		for h := 0; h < hostsPerSpine; h++ {
			host := g.AddHost(fmt.Sprintf("h%d.%d", i, h))
			g.Connect(spines[i], host, 1)
		}
	}
	return g
}

// Random builds a connected random switch graph of n switches with target
// degree deg and one host per switch, for stress tests.  Construction is
// deterministic in seed: a random spanning tree first (guaranteeing
// connectivity), then extra links until the average degree target is met.
func Random(n, deg int, seed uint64) *Graph {
	if n < 2 {
		panic("topology: random needs n >= 2")
	}
	r := rng.New(seed, 0xDECAF)
	g := New()
	sw := make([]NodeID, n)
	for i := 0; i < n; i++ {
		sw[i] = g.AddSwitch(fmt.Sprintf("s%d", i))
	}
	type pair struct{ a, b int }
	linked := map[pair]bool{}
	link := func(a, b int) bool {
		if a == b {
			return false
		}
		key := pair{a, b}
		if a > b {
			key = pair{b, a}
		}
		if linked[key] {
			return false
		}
		linked[key] = true
		g.Connect(sw[a], sw[b], 1)
		return true
	}
	perm := r.Perm(n)
	for i := 1; i < n; i++ {
		link(perm[i], perm[r.Intn(i)])
	}
	want := n * deg / 2
	for tries := 0; len(linked) < want && tries < 50*n; tries++ {
		link(r.Intn(n), r.Intn(n))
	}
	for i := 0; i < n; i++ {
		h := g.AddHost(fmt.Sprintf("h%d", i))
		g.Connect(sw[i], h, 1)
	}
	return g
}
