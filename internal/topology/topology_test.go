package topology

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestConnectSymmetry(t *testing.T) {
	g := New()
	a := g.AddSwitch("a")
	b := g.AddSwitch("b")
	pa, pb := g.Connect(a, b, 5)
	if g.Node(a).Ports[pa].Peer != b || g.Node(b).Ports[pb].Peer != a {
		t.Fatal("peers not symmetric")
	}
	if g.Node(a).Ports[pa].PeerPort != pb || g.Node(b).Ports[pb].PeerPort != pa {
		t.Fatal("peer ports not symmetric")
	}
	if g.Node(a).Ports[pa].Delay != 5 {
		t.Fatal("delay not recorded")
	}
}

func TestConnectDefaults(t *testing.T) {
	g := New()
	g.DefaultDelay = 7
	a, b := g.AddSwitch(""), g.AddSwitch("")
	pa, _ := g.Connect(a, b, 0)
	if d := g.Node(a).Ports[pa].Delay; d != 7 {
		t.Fatalf("default delay = %d, want 7", d)
	}
}

func TestSelfLinkPanics(t *testing.T) {
	g := New()
	a := g.AddSwitch("a")
	defer func() {
		if recover() == nil {
			t.Fatal("self-link did not panic")
		}
	}()
	g.Connect(a, a, 1)
}

func TestHostAttachment(t *testing.T) {
	g := Line(3, 1)
	hosts := g.Hosts()
	if len(hosts) != 3 {
		t.Fatalf("hosts = %d", len(hosts))
	}
	sw, port := g.HostAttachment(hosts[1])
	if g.Node(sw).Name != "s1" {
		t.Fatalf("host 1 attached to %s", g.Node(sw).Name)
	}
	if port == NoPort {
		t.Fatal("no switch port")
	}
}

func TestHostAttachmentPanicsOnSwitch(t *testing.T) {
	g := Line(2, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("HostAttachment on a switch did not panic")
		}
	}()
	g.HostAttachment(g.Switches()[0])
}

func TestValidateAllBuilders(t *testing.T) {
	cases := map[string]*Graph{
		"torus8x8":     Torus(8, 8, 1, 1),
		"torus2x2":     Torus(2, 2, 1, 1),
		"torus2x3":     Torus(2, 3, 2, 1),
		"shufflenet":   BidirShufflenet(2, 3, 1000),
		"shuffle p2k2": BidirShufflenet(2, 2, 1),
		"shuffle p3k2": BidirShufflenet(3, 2, 1),
		"myrinet4":     Myrinet4(),
		"line1":        Line(1, 1),
		"line5":        Line(5, 1),
		"star8":        Star(8),
		"fattree":      FatTreeish(4, 3, true),
		"random":       Random(20, 4, 99),
	}
	for name, g := range cases {
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestTorusShape(t *testing.T) {
	g := Torus(8, 8, 1, 1)
	s := g.Summary()
	if s.Switches != 64 || s.Hosts != 64 {
		t.Fatalf("torus 8x8: %+v", s)
	}
	// 64 switches x 4 torus links / 2 + 64 host links
	if s.Links != 64*4/2+64 {
		t.Fatalf("torus links = %d", s.Links)
	}
	if s.MaxSwitchDegree != 5 {
		t.Fatalf("torus switch degree = %d, want 4+1 host", s.MaxSwitchDegree)
	}
}

func TestTorus2xNNoDuplicateLinks(t *testing.T) {
	g := Torus(2, 2, 1, 1)
	// With wrap dedup: each switch has 2 switch links + 1 host link.
	for _, sw := range g.Switches() {
		if d := g.Node(sw).Degree(); d != 3 {
			t.Fatalf("2x2 torus switch degree = %d, want 3", d)
		}
	}
}

func TestShufflenetShape(t *testing.T) {
	g := BidirShufflenet(2, 3, 1000)
	s := g.Summary()
	if s.Switches != 24 || s.Hosts != 24 {
		t.Fatalf("shufflenet: %+v", s)
	}
	// (p,k)=(2,3): 24 switches x 2 outgoing links = 48 directed = 48
	// full-duplex cables minus self/dup collisions. Every node row*2+j mod 8
	// for distinct rows is distinct unless a==b (row 0 links to row 0? row*2
	// mod 8 == row only for row 0 col-wrap cases).
	if s.Links < 40 {
		t.Fatalf("shufflenet links = %d, suspiciously low", s.Links)
	}
	// Backbone links carry the optical propagation delay.
	swNodes := g.Switches()
	for _, sw := range swNodes {
		for _, p := range g.Node(sw).Ports {
			if g.Node(p.Peer).Kind == Switch && p.Delay != 1000 {
				t.Fatalf("backbone link delay = %d, want 1000", p.Delay)
			}
		}
	}
}

func TestMyrinet4Shape(t *testing.T) {
	g := Myrinet4()
	s := g.Summary()
	if s.Switches != 4 || s.Hosts != 8 {
		t.Fatalf("myrinet4: %+v", s)
	}
	if s.Links != 4+8 {
		t.Fatalf("myrinet4 links = %d", s.Links)
	}
}

func TestSwitchHops(t *testing.T) {
	g := Line(4, 1)
	hosts := g.Hosts()
	tests := []struct{ a, b, want int }{
		{0, 0, 0}, {0, 1, 1}, {0, 3, 3}, {1, 3, 2},
	}
	for _, tc := range tests {
		if got := g.SwitchHops(hosts[tc.a], hosts[tc.b]); got != tc.want {
			t.Errorf("SwitchHops(h%d,h%d) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestSwitchHopsSameSwitch(t *testing.T) {
	g := Star(4)
	hosts := g.Hosts()
	if got := g.SwitchHops(hosts[0], hosts[3]); got != 0 {
		t.Fatalf("same-switch hops = %d, want 0", got)
	}
}

func TestHostConnectivityMatrix(t *testing.T) {
	g := Myrinet4()
	hosts, m := g.HostConnectivity()
	if len(hosts) != 8 || len(m) != 8 {
		t.Fatalf("connectivity shape %d x %d", len(hosts), len(m))
	}
	for i := range m {
		if m[i][i] != 0 {
			t.Fatalf("diagonal not zero at %d", i)
		}
		for j := range m[i] {
			if m[i][j] != m[j][i] {
				t.Fatalf("asymmetric metric at %d,%d", i, j)
			}
			if i != j && (m[i][j] < 0 || m[i][j] > 2) {
				t.Fatalf("ring of 4 switches: hops(%d,%d) = %d", i, j, m[i][j])
			}
		}
	}
}

func TestTorusDiameter(t *testing.T) {
	g := Torus(4, 4, 0, 1) // no hosts: pure switch fabric
	s := g.Summary()
	if s.Diameter != 4 { // 2+2 in a 4x4 torus
		t.Fatalf("4x4 torus diameter = %d, want 4", s.Diameter)
	}
}

func TestDOT(t *testing.T) {
	g := Star(2)
	dot := g.DOT()
	for _, want := range []string{"graph wormlan", "hub", "h0", "h1", "--"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, dot)
		}
	}
	// 2 host links => exactly 2 edges
	if n := strings.Count(dot, "--"); n != 2 {
		t.Fatalf("DOT has %d edges, want 2", n)
	}
}

func TestValidateCatchesDisconnected(t *testing.T) {
	g := New()
	g.AddSwitch("a")
	g.AddSwitch("b")
	if err := g.Validate(); err == nil {
		t.Fatal("disconnected graph validated")
	}
}

func TestValidateCatchesUnattachedHost(t *testing.T) {
	g := New()
	s := g.AddSwitch("s")
	g.AddHost("h") // never wired
	h2 := g.AddHost("h2")
	g.Connect(s, h2, 1)
	if err := g.Validate(); err == nil {
		t.Fatal("host with no wired port validated")
	}
}

func TestRandomDeterministic(t *testing.T) {
	a := Random(16, 4, 7)
	b := Random(16, 4, 7)
	if a.DOT() != b.DOT() {
		t.Fatal("Random not deterministic in seed")
	}
	c := Random(16, 4, 8)
	if a.DOT() == c.DOT() {
		t.Fatal("Random ignores seed")
	}
}

func TestRandomConnectedProperty(t *testing.T) {
	err := quick.Check(func(seed uint64, nRaw, dRaw uint8) bool {
		n := int(nRaw%30) + 2
		d := int(dRaw%4) + 2
		g := Random(n, d, seed)
		return g.Validate() == nil
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSummaryCounts(t *testing.T) {
	g := FatTreeish(3, 2, false)
	s := g.Summary()
	if s.Switches != 4 || s.Hosts != 6 || s.Links != 3+6 {
		t.Fatalf("fattree summary %+v", s)
	}
}

func TestKindString(t *testing.T) {
	if Switch.String() != "switch" || Host.String() != "host" {
		t.Fatal("Kind.String broken")
	}
	if Kind(9).String() == "" {
		t.Fatal("unknown kind produced empty string")
	}
}
