// Package topology models the physical layout of a wormhole-routing LAN:
// crossbar switches, host adapters, and the point-to-point links between
// them.
//
// A Graph is a set of nodes (switches and hosts) whose ports are wired
// together by full-duplex links.  Port numbering matters: Myrinet source
// routes are sequences of switch *output port numbers* (Section 2 of the
// paper), so every builder in this package assigns ports deterministically
// and the same topology always yields the same routes.
//
// Hosts are modelled as single-port nodes attached to a switch; the host
// adapter logic itself lives in internal/adapter and internal/emu.
package topology

import (
	"fmt"
	"sort"
	"strings"
)

// NodeID identifies a node (switch or host) within a Graph.
type NodeID int

// None is the invalid node ID.
const None NodeID = -1

// PortID identifies a port on a particular node.  Ports double as crossbar
// input and output indices: port p of a switch names both the input channel
// and the output channel of the attached full-duplex link.
type PortID int

// NoPort is the invalid port ID.
const NoPort PortID = -1

// Kind distinguishes crossbar switches from host adapters.
type Kind uint8

// Node kinds.
const (
	Switch Kind = iota
	Host
)

// String returns "switch" or "host".
func (k Kind) String() string {
	switch k {
	case Switch:
		return "switch"
	case Host:
		return "host"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Port describes one side of a full-duplex link.
type Port struct {
	// Peer is the node on the other end of the cable, or None if the port
	// is unwired.
	Peer NodeID
	// PeerPort is the port index on the peer node.
	PeerPort PortID
	// Delay is the one-way propagation delay of the cable in byte-times.
	Delay int64
}

// Wired reports whether the port has a cable attached.
func (p Port) Wired() bool { return p.Peer != None }

// Node is a switch or host adapter.
type Node struct {
	ID    NodeID
	Kind  Kind
	Name  string
	Ports []Port
}

// Degree returns the number of wired ports.
func (n *Node) Degree() int {
	d := 0
	for _, p := range n.Ports {
		if p.Wired() {
			d++
		}
	}
	return d
}

// Graph is a wormhole LAN topology.
type Graph struct {
	Nodes []Node
	// DefaultDelay is applied by Connect when the delay argument is zero
	// and by builders unless they override it per link.
	DefaultDelay int64
}

// New returns an empty graph with a default link delay of 1 byte-time.
func New() *Graph { return &Graph{DefaultDelay: 1} }

// AddNode appends a node of the given kind and returns its ID.
func (g *Graph) AddNode(kind Kind, name string) NodeID {
	id := NodeID(len(g.Nodes))
	if name == "" {
		name = fmt.Sprintf("%s%d", kind, int(id))
	}
	g.Nodes = append(g.Nodes, Node{ID: id, Kind: kind, Name: name})
	return id
}

// AddSwitch appends a switch node.
func (g *Graph) AddSwitch(name string) NodeID { return g.AddNode(Switch, name) }

// AddHost appends a host node.
func (g *Graph) AddHost(name string) NodeID { return g.AddNode(Host, name) }

// Node returns the node with the given ID.  It panics on an invalid ID.
func (g *Graph) Node(id NodeID) *Node { return &g.Nodes[id] }

// Connect wires a new full-duplex link between nodes a and b with the given
// one-way propagation delay in byte-times (0 means the graph default).
// It allocates the next free port index on each node and returns them.
func (g *Graph) Connect(a, b NodeID, delay int64) (pa, pb PortID) {
	if delay == 0 {
		delay = g.DefaultDelay
	}
	if delay <= 0 {
		panic(fmt.Sprintf("topology: non-positive delay %d", delay))
	}
	if a == b {
		panic(fmt.Sprintf("topology: self-link on node %d", a))
	}
	na, nb := &g.Nodes[a], &g.Nodes[b]
	pa = PortID(len(na.Ports))
	pb = PortID(len(nb.Ports))
	na.Ports = append(na.Ports, Port{Peer: b, PeerPort: pb, Delay: delay})
	nb.Ports = append(nb.Ports, Port{Peer: a, PeerPort: pa, Delay: delay})
	return pa, pb
}

// Hosts returns the IDs of all host nodes in ascending order.
func (g *Graph) Hosts() []NodeID {
	var out []NodeID
	for i := range g.Nodes {
		if g.Nodes[i].Kind == Host {
			out = append(out, NodeID(i))
		}
	}
	return out
}

// Switches returns the IDs of all switch nodes in ascending order.
func (g *Graph) Switches() []NodeID {
	var out []NodeID
	for i := range g.Nodes {
		if g.Nodes[i].Kind == Switch {
			out = append(out, NodeID(i))
		}
	}
	return out
}

// HostAttachment returns the switch a host is wired to and the switch-side
// port.  It returns (None, NoPort) for an unwired host and panics if the ID
// does not name a host.
func (g *Graph) HostAttachment(h NodeID) (sw NodeID, swPort PortID) {
	n := g.Node(h)
	if n.Kind != Host {
		panic(fmt.Sprintf("topology: node %d is a %s, not a host", h, n.Kind))
	}
	for _, p := range n.Ports {
		if p.Wired() {
			return p.Peer, p.PeerPort
		}
	}
	return None, NoPort
}

// Validate checks structural invariants: every port's peer points back,
// delays are positive, hosts have exactly one wired port attached to a
// switch, and the graph is connected.  It returns a descriptive error for
// the first violation found.
func (g *Graph) Validate() error {
	for i := range g.Nodes {
		n := &g.Nodes[i]
		wired := 0
		for pi, p := range n.Ports {
			if !p.Wired() {
				continue
			}
			wired++
			if p.Delay <= 0 {
				return fmt.Errorf("node %d port %d: non-positive delay %d", i, pi, p.Delay)
			}
			if int(p.Peer) >= len(g.Nodes) || p.Peer < 0 {
				return fmt.Errorf("node %d port %d: peer %d out of range", i, pi, p.Peer)
			}
			peer := &g.Nodes[p.Peer]
			if int(p.PeerPort) >= len(peer.Ports) {
				return fmt.Errorf("node %d port %d: peer port %d out of range", i, pi, p.PeerPort)
			}
			back := peer.Ports[p.PeerPort]
			if back.Peer != n.ID || back.PeerPort != PortID(pi) {
				return fmt.Errorf("node %d port %d: asymmetric wiring", i, pi)
			}
			if back.Delay != p.Delay {
				return fmt.Errorf("node %d port %d: asymmetric delay", i, pi)
			}
		}
		if n.Kind == Host {
			if wired != 1 {
				return fmt.Errorf("host %d has %d wired ports, want 1", i, wired)
			}
			if g.Nodes[n.Ports[0].Peer].Kind != Switch {
				return fmt.Errorf("host %d attached to non-switch node %d", i, n.Ports[0].Peer)
			}
		}
	}
	if len(g.Nodes) > 0 {
		reach := g.bfsDistances(NodeID(0))
		for i, d := range reach {
			if d < 0 {
				return fmt.Errorf("graph is disconnected: node %d unreachable from node 0", i)
			}
		}
	}
	return nil
}

// bfsDistances returns hop distances from src to every node (-1 if
// unreachable).  Hops count link traversals, including host links.
func (g *Graph) bfsDistances(src NodeID) []int {
	dist := make([]int, len(g.Nodes))
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []NodeID{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, p := range g.Nodes[u].Ports {
			if !p.Wired() {
				continue
			}
			if dist[p.Peer] < 0 {
				dist[p.Peer] = dist[u] + 1
				queue = append(queue, p.Peer)
			}
		}
	}
	return dist
}

// SwitchHops returns the minimum number of switch-to-switch link traversals
// between the attachment switches of hosts a and b (0 if they share a
// switch).  This is the edge metric of the host-connectivity graph used to
// weigh Hamiltonian circuits (Section 5, Figure 8).
func (g *Graph) SwitchHops(a, b NodeID) int {
	sa, _ := g.HostAttachment(a)
	sb, _ := g.HostAttachment(b)
	if sa == None || sb == None {
		return -1
	}
	if sa == sb {
		return 0
	}
	// BFS over switches only.
	dist := make([]int, len(g.Nodes))
	for i := range dist {
		dist[i] = -1
	}
	dist[sa] = 0
	queue := []NodeID{sa}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if u == sb {
			return dist[u]
		}
		for _, p := range g.Nodes[u].Ports {
			if !p.Wired() || g.Nodes[p.Peer].Kind != Switch {
				continue
			}
			if dist[p.Peer] < 0 {
				dist[p.Peer] = dist[u] + 1
				queue = append(queue, p.Peer)
			}
		}
	}
	return -1
}

// HostConnectivity returns the complete host-connectivity graph of the
// topology as a matrix of switch-hop counts indexed by position in
// g.Hosts().  The paper builds multicast structures over this graph
// (Sections 5 and 6).
func (g *Graph) HostConnectivity() ([]NodeID, [][]int) {
	hosts := g.Hosts()
	m := make([][]int, len(hosts))
	for i := range m {
		m[i] = make([]int, len(hosts))
		for j := range m[i] {
			if i == j {
				continue
			}
			m[i][j] = g.SwitchHops(hosts[i], hosts[j])
		}
	}
	return hosts, m
}

// DOT renders the topology in Graphviz DOT format, for inspection with
// cmd/topoview.
func (g *Graph) DOT() string {
	var b strings.Builder
	b.WriteString("graph wormlan {\n")
	for i := range g.Nodes {
		n := &g.Nodes[i]
		shape := "box"
		if n.Kind == Host {
			shape = "ellipse"
		}
		fmt.Fprintf(&b, "  n%d [label=%q shape=%s];\n", i, n.Name, shape)
	}
	type edge struct{ a, b NodeID }
	seen := map[edge]bool{}
	for i := range g.Nodes {
		for _, p := range g.Nodes[i].Ports {
			if !p.Wired() {
				continue
			}
			a, bid := NodeID(i), p.Peer
			if a > bid {
				a, bid = bid, a
			}
			e := edge{a, bid}
			if seen[e] {
				continue
			}
			seen[e] = true
			fmt.Fprintf(&b, "  n%d -- n%d [label=\"%d\"];\n", e.a, e.b, p.Delay)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// Stats summarizes a topology for logging.
type Stats struct {
	Switches, Hosts, Links int
	MaxSwitchDegree        int
	Diameter               int // in link hops over all nodes
}

// Summary computes Stats for the graph.
func (g *Graph) Summary() Stats {
	var s Stats
	links := 0
	for i := range g.Nodes {
		n := &g.Nodes[i]
		switch n.Kind {
		case Switch:
			s.Switches++
			if d := n.Degree(); d > s.MaxSwitchDegree {
				s.MaxSwitchDegree = d
			}
		case Host:
			s.Hosts++
		}
		links += n.Degree()
	}
	s.Links = links / 2
	for i := range g.Nodes {
		for _, d := range g.bfsDistances(NodeID(i)) {
			if d > s.Diameter {
				s.Diameter = d
			}
		}
	}
	return s
}

// SortedNames returns node names in ID order; used by tests and tools.
func (g *Graph) SortedNames() []string {
	names := make([]string, len(g.Nodes))
	for i := range g.Nodes {
		names[i] = g.Nodes[i].Name
	}
	sort.Strings(names)
	return names
}
