package topology

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// ParseConfig reads the simulator's configuration-file format, which — as
// in the paper's Maisie simulator (Section 7) — specifies the network
// topology and the multicast groups in one file:
//
//	# comment
//	switch s0
//	switch s1
//	host   h0 s0          # host name, attachment switch
//	host   h1 s1
//	link   s0 s1          # full-duplex cable, default delay
//	link   s0 s1 delay=1000
//	group  1  h0 h1       # multicast group ID and members
//
// Nodes must be declared before they are referenced.  It returns the graph
// and the group member lists keyed by group ID (hosts in declaration
// order; group builders sort by ID themselves).
func ParseConfig(r io.Reader) (*Graph, map[int][]NodeID, error) {
	g := New()
	byName := map[string]NodeID{}
	groups := map[int][]NodeID{}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		fail := func(format string, args ...any) error {
			return fmt.Errorf("config line %d: %s", lineNo, fmt.Sprintf(format, args...))
		}
		switch fields[0] {
		case "switch":
			if len(fields) != 2 {
				return nil, nil, fail("usage: switch <name>")
			}
			if _, dup := byName[fields[1]]; dup {
				return nil, nil, fail("duplicate node %q", fields[1])
			}
			byName[fields[1]] = g.AddSwitch(fields[1])
		case "host":
			if len(fields) != 3 {
				return nil, nil, fail("usage: host <name> <switch>")
			}
			if _, dup := byName[fields[1]]; dup {
				return nil, nil, fail("duplicate node %q", fields[1])
			}
			sw, ok := byName[fields[2]]
			if !ok {
				return nil, nil, fail("unknown switch %q", fields[2])
			}
			if g.Node(sw).Kind != Switch {
				return nil, nil, fail("%q is not a switch", fields[2])
			}
			h := g.AddHost(fields[1])
			byName[fields[1]] = h
			g.Connect(sw, h, 1)
		case "link":
			if len(fields) != 3 && len(fields) != 4 {
				return nil, nil, fail("usage: link <a> <b> [delay=N]")
			}
			a, ok := byName[fields[1]]
			if !ok {
				return nil, nil, fail("unknown node %q", fields[1])
			}
			b, ok := byName[fields[2]]
			if !ok {
				return nil, nil, fail("unknown node %q", fields[2])
			}
			if g.Node(a).Kind != Switch || g.Node(b).Kind != Switch {
				return nil, nil, fail("links join switches; hosts attach via 'host'")
			}
			delay := int64(0)
			if len(fields) == 4 {
				val, found := strings.CutPrefix(fields[3], "delay=")
				if !found {
					return nil, nil, fail("unknown option %q", fields[3])
				}
				d, err := strconv.ParseInt(val, 10, 64)
				if err != nil || d <= 0 {
					return nil, nil, fail("bad delay %q", val)
				}
				delay = d
			}
			g.Connect(a, b, delay)
		case "group":
			if len(fields) < 4 {
				return nil, nil, fail("usage: group <id> <host> <host> [...]")
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, nil, fail("bad group id %q", fields[1])
			}
			if _, dup := groups[id]; dup {
				return nil, nil, fail("duplicate group %d", id)
			}
			var members []NodeID
			for _, name := range fields[2:] {
				h, ok := byName[name]
				if !ok {
					return nil, nil, fail("unknown host %q", name)
				}
				if g.Node(h).Kind != Host {
					return nil, nil, fail("%q is not a host", name)
				}
				members = append(members, h)
			}
			groups[id] = members
		default:
			return nil, nil, fail("unknown directive %q", fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, nil, fmt.Errorf("config: %w", err)
	}
	return g, groups, nil
}

// WriteConfig renders the graph (and optional groups) in the configuration
// format ParseConfig reads, so generated topologies can be saved, edited,
// and replayed.
func WriteConfig(w io.Writer, g *Graph, groups map[int][]NodeID) error {
	for _, sw := range g.Switches() {
		if _, err := fmt.Fprintf(w, "switch %s\n", g.Node(sw).Name); err != nil {
			return err
		}
	}
	for _, h := range g.Hosts() {
		sw, _ := g.HostAttachment(h)
		if _, err := fmt.Fprintf(w, "host %s %s\n", g.Node(h).Name, g.Node(sw).Name); err != nil {
			return err
		}
	}
	type edge struct {
		a, b NodeID
		d    int64
	}
	var edges []edge
	seen := map[[2]NodeID]bool{}
	for _, sw := range g.Switches() {
		for _, p := range g.Node(sw).Ports {
			if !p.Wired() || g.Node(p.Peer).Kind != Switch {
				continue
			}
			a, b := sw, p.Peer
			if a > b {
				a, b = b, a
			}
			if seen[[2]NodeID{a, b}] {
				continue
			}
			seen[[2]NodeID{a, b}] = true
			edges = append(edges, edge{a, b, p.Delay})
		}
	}
	for _, e := range edges {
		if _, err := fmt.Fprintf(w, "link %s %s delay=%d\n",
			g.Node(e.a).Name, g.Node(e.b).Name, e.d); err != nil {
			return err
		}
	}
	ids := make([]int, 0, len(groups))
	for id := range groups {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		names := make([]string, len(groups[id]))
		for i, h := range groups[id] {
			names[i] = g.Node(h).Name
		}
		if _, err := fmt.Fprintf(w, "group %d %s\n", id, strings.Join(names, " ")); err != nil {
			return err
		}
	}
	return nil
}
