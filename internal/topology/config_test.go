package topology

import (
	"strings"
	"testing"
)

const sampleConfig = `
# the paper's Figure 3 shape: five switches, two hosts
switch A
switch B
switch C
switch D
switch E
host x A
host b E
host c D
link A B
link B E
link A C delay=5
link C D
link D E      # crosslink
group 1 x b c
`

func TestParseConfig(t *testing.T) {
	g, groups, err := ParseConfig(strings.NewReader(sampleConfig))
	if err != nil {
		t.Fatal(err)
	}
	s := g.Summary()
	if s.Switches != 5 || s.Hosts != 3 || s.Links != 5+3 {
		t.Fatalf("summary %+v", s)
	}
	if len(groups) != 1 || len(groups[1]) != 3 {
		t.Fatalf("groups %v", groups)
	}
	// The delayed link must carry its delay.
	a := g.Switches()[0]
	found := false
	for _, p := range g.Node(a).Ports {
		if p.Wired() && g.Node(p.Peer).Name == "C" && p.Delay == 5 {
			found = true
		}
	}
	if !found {
		t.Fatal("delay=5 link not found")
	}
}

func TestConfigRoundtrip(t *testing.T) {
	g, groups, err := ParseConfig(strings.NewReader(sampleConfig))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteConfig(&sb, g, groups); err != nil {
		t.Fatal(err)
	}
	g2, groups2, err := ParseConfig(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, sb.String())
	}
	if g.DOT() != g2.DOT() {
		t.Fatalf("roundtrip changed the topology:\n%s\nvs\n%s", g.DOT(), g2.DOT())
	}
	if len(groups2[1]) != len(groups[1]) {
		t.Fatalf("roundtrip changed groups: %v vs %v", groups, groups2)
	}
}

func TestWriteConfigOfBuilders(t *testing.T) {
	g := Torus(3, 3, 1, 1)
	var sb strings.Builder
	if err := WriteConfig(&sb, g, nil); err != nil {
		t.Fatal(err)
	}
	g2, _, err := ParseConfig(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if g.Summary() != g2.Summary() {
		t.Fatalf("summaries differ: %+v vs %+v", g.Summary(), g2.Summary())
	}
}

func TestParseConfigErrors(t *testing.T) {
	cases := map[string]string{
		"bad directive":   "frobnicate x",
		"dup switch":      "switch a\nswitch a",
		"host no switch":  "host h1 nowhere",
		"host not switch": "switch s\nhost h s\nhost h2 h",
		"short host":      "host h",
		"link unknown":    "switch a\nlink a b",
		"link to host":    "switch a\nhost h a\nswitch b\nlink b h",
		"bad delay":       "switch a\nswitch b\nlink a b delay=x",
		"negative delay":  "switch a\nswitch b\nlink a b delay=-2",
		"bad option":      "switch a\nswitch b\nlink a b speed=9",
		"group short":     "switch s\nhost h s\ngroup 1 h",
		"group bad id":    "switch s\nhost h1 s\nhost h2 s\ngroup x h1 h2",
		"group unknown":   "switch s\nhost h1 s\ngroup 1 h1 hZ",
		"group non-host":  "switch s\nhost h1 s\ngroup 1 h1 s",
		"dup group":       "switch s\nhost h1 s\nhost h2 s\ngroup 1 h1 h2\ngroup 1 h1 h2",
		"disconnected":    "switch a\nswitch b\nswitch c\nlink a b",
		"dup host":        "switch s\nhost h s\nhost h s",
		"short switch":    "switch",
		"short link":      "switch a\nlink a",
	}
	for name, cfg := range cases {
		if _, _, err := ParseConfig(strings.NewReader(cfg)); err == nil {
			t.Errorf("%s: accepted:\n%s", name, cfg)
		}
	}
}

func TestParseConfigCommentsAndBlank(t *testing.T) {
	cfg := "\n# only comments\n   \nswitch a # trailing\nswitch b\nlink a b\n"
	g, groups, err := ParseConfig(strings.NewReader(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Switches()) != 2 || len(groups) != 0 {
		t.Fatal("comment handling broken")
	}
}
