package adapter

import "fmt"

// Pool is a byte-granular buffer pool, one per buffer class per adapter
// (Figure 7), plus an optional shared host-DMA extension pool per adapter
// (the [VLB96] trick of overflowing transit worms into host memory,
// Section 4).
type Pool struct {
	Name string
	Cap  int
	Used int
	// Peak tracks the high-water mark for buffer-occupancy studies.
	Peak int
}

// Free returns the available bytes.
func (p *Pool) Free() int { return p.Cap - p.Used }

func (p *Pool) take(n int) {
	p.Used += n
	if p.Used > p.Cap {
		panic(fmt.Sprintf("adapter: pool %s over-reserved (%d/%d)", p.Name, p.Used, p.Cap))
	}
	if p.Used > p.Peak {
		p.Peak = p.Used
	}
}

func (p *Pool) put(n int) {
	p.Used -= n
	if p.Used < 0 {
		panic(fmt.Sprintf("adapter: pool %s over-released", p.Name))
	}
}

// Reservation records where a worm's bytes were reserved: primarily in a
// class pool, spilling into the DMA extension when the class pool alone is
// too small.
type Reservation struct {
	class *Pool
	dma   *Pool
	nCls  int
	nDMA  int
}

// Bytes returns the reserved size.
func (r Reservation) Bytes() int { return r.nCls + r.nDMA }

// Spilled returns how many bytes overflowed to the host DMA extension.
func (r Reservation) Spilled() int { return r.nDMA }

// reserve attempts to reserve n bytes against the class pool, spilling the
// remainder to the DMA pool (if any).  It returns ok=false without side
// effects when the combined space is insufficient — the arriving worm will
// be dropped and NACKed (Figure 5).
func reserve(class, dma *Pool, n int) (Reservation, bool) {
	fromClass := n
	if fromClass > class.Free() {
		fromClass = class.Free()
	}
	spill := n - fromClass
	if spill > 0 && (dma == nil || dma.Free() < spill) {
		return Reservation{}, false
	}
	class.take(fromClass)
	r := Reservation{class: class, nCls: fromClass}
	if spill > 0 {
		dma.take(spill)
		r.dma = dma
		r.nDMA = spill
	}
	return r, true
}

// release returns the reservation's bytes to their pools.
func (r Reservation) release() {
	if r.nCls > 0 {
		r.class.put(r.nCls)
	}
	if r.nDMA > 0 {
		r.dma.put(r.nDMA)
	}
}
