package adapter

import (
	"fmt"

	"wormlan/internal/des"
	"wormlan/internal/flit"
	"wormlan/internal/network"
	"wormlan/internal/topology"
	"wormlan/internal/trace"
)

// hop is one forwarding decision: send the transfer to dst with the given
// per-hop header.
type hop struct {
	dst  topology.NodeID
	info *mcInfo
}

// onHeadArrival makes the buffer-reservation decision of Figure 5 at the
// moment a worm's head reaches a host interface: the header carries the
// worm's size, so the adapter can accept (reserve, optionally start a
// cut-through forward) or decide to drop-and-NACK before the body lands.
func (s *System) onHeadArrival(w *flit.Worm, host topology.NodeID, at des.Time) {
	info, ok := w.Meta.(*mcInfo)
	if !ok {
		return // unicast traffic and control worms bypass the pools
	}
	a := s.adapters[host]
	t := info.Transfer

	if a.isReturnConfirmation(info) {
		a.arriving[w] = &arrival{} // neither accepted nor NACKed: confirmation
		return
	}
	var arr *arrival
	if s.Cfg.PlainForwarding {
		arr = &arrival{accepted: true}
	} else {
		if a.seen[t.ID] {
			a.arriving[w] = &arrival{duplicate: true}
			return
		}
		res, ok := reserve(a.class[info.Class], a.dma, t.Payload)
		if !ok {
			a.arriving[w] = &arrival{} // will be dropped and NACKed on arrival
			return
		}
		s.stats.DMASpillBytes += int64(res.Spilled())
		arr = &arrival{accepted: true, res: res}
	}
	a.arriving[w] = arr

	// Cut-through: if the interface is free right now, begin retransmitting
	// to the successor(s) immediately, paced against this worm's reception.
	// Only the first forward can cut through; the interface serializes the
	// rest behind it, by which time reception has completed (Section 6).
	if s.Cfg.CutThrough && !s.F.Busy(host) {
		hops := a.nextHops(info)
		if len(hops) > 0 {
			if !s.Cfg.PlainForwarding {
				a.markSeen(t.ID)
				a.held[t.ID] = &holding{res: arr.res, forwards: len(hops)}
			}
			for i, hp := range hops {
				var pace *flit.Worm
				if i == 0 {
					pace = w
				}
				a.transmit(hp.info, hp.dst, pace)
			}
			arr.forwarded = true
			s.stats.CutThroughFwds++
		}
	}
}

// onDiscard releases the reservation made at head arrival when the fabric
// discards an incoming worm (truncated by a failure or corrupted on the
// wire) instead of delivering it.  No ACK is sent, so the upstream sender
// retransmits; a non-forwarded reservation is released so the retry can
// land.  A cut-through forward that already started keeps its pinned
// buffer and its seen mark: the forwards complete via their own
// retransmission timers, and only the local copy is lost.
func (s *System) onDiscard(w *flit.Worm, host topology.NodeID, at des.Time) {
	a := s.adapters[host]
	if a == nil {
		return
	}
	arr := a.arriving[w]
	if arr == nil {
		return // unicast or control worm: no reservation state
	}
	delete(a.arriving, w)
	if arr.accepted && !arr.forwarded && !s.Cfg.PlainForwarding {
		arr.res.release()
		a.kickOriginateQ()
	}
}

// onDeliver dispatches completed worms: application unicasts, ACK/NACK
// control worms, and multicast data worms.
func (s *System) onDeliver(d network.Delivery) {
	a := s.adapters[d.Host]
	switch meta := d.Worm.Meta.(type) {
	case nil:
		if s.OnAppDeliver != nil {
			s.OnAppDeliver(AppDelivery{Host: d.Host, At: d.At, Worm: d.Worm})
		}
	case *ctrlInfo:
		if meta.Nack {
			a.onNack(meta.Transfer, meta.From)
		} else {
			a.onAckWorm(meta)
		}
	case *mcInfo:
		a.onDataWorm(d.Worm, meta, d.At)
	default:
		panic(fmt.Sprintf("adapter: unknown worm meta %T", meta))
	}
}

func (a *Adapter) onAckWorm(ci *ctrlInfo) {
	key := hopKey{ci.Transfer.ID, ci.From}
	o := a.outstanding[key]
	if o == nil {
		return // duplicate ACK after a retransmission; already settled
	}
	a.sys.K.Cancel(o.timer)
	delete(a.outstanding, key)
	a.hopFinished(ci.Transfer)
}

// isReturnConfirmation reports whether an arriving data worm is the
// return-to-sender lap completion of Section 5 rather than a delivery.
func (a *Adapter) isReturnConfirmation(info *mcInfo) bool {
	return a.sys.Cfg.Mode == ModeCircuit &&
		!a.sys.Cfg.TotalOrdering &&
		a.sys.Cfg.ReturnToSender &&
		!info.ToStarter &&
		info.Transfer.Origin == a.Host
}

func (a *Adapter) onDataWorm(w *flit.Worm, info *mcInfo, at des.Time) {
	arr := a.arriving[w]
	if arr == nil {
		panic(fmt.Sprintf("adapter: host %d: data worm %d delivered without head arrival", a.Host, w.ID))
	}
	delete(a.arriving, w)
	t := info.Transfer

	switch {
	case a.isReturnConfirmation(info):
		a.sys.stats.Confirmations++
		if !a.sys.Cfg.PlainForwarding {
			a.sendCtrl(info.From, t, false)
		}
	case arr.duplicate:
		a.sys.stats.Duplicates++
		a.sendCtrl(info.From, t, false) // re-ACK so the sender stops retrying
	case !arr.accepted:
		a.sys.stats.Nacks++
		a.sendCtrl(info.From, t, true)
	default:
		plain := a.sys.Cfg.PlainForwarding
		if !plain {
			a.sendCtrl(info.From, t, false)
		}
		a.deliverLocal(t)
		if arr.forwarded {
			return // cut-through already queued the forwards at head arrival
		}
		hops := a.nextHops(info)
		if plain {
			if len(hops) > 0 {
				a.sys.stats.StoreForwardFwd++
				for _, hp := range hops {
					a.transmit(hp.info, hp.dst, nil)
				}
			}
			return
		}
		a.markSeen(t.ID)
		if len(hops) == 0 {
			arr.res.release()
			a.kickOriginateQ()
			return
		}
		a.sys.stats.StoreForwardFwd++
		h := &holding{res: arr.res, forwards: len(hops)}
		a.held[t.ID] = h
		for _, hp := range hops {
			a.transmit(hp.info, hp.dst, nil)
		}
	}
}

// sendCtrl emits an ACK (nack=false) or NACK control worm back to the
// sending adapter.
func (a *Adapter) sendCtrl(dst topology.NodeID, t *Transfer, nack bool) {
	if a.sys.rec != nil {
		k := trace.EvAck
		if nack {
			k = trace.EvNack
		}
		a.sys.emit(k, a.Host, 0, t.ID)
	}
	a.sys.sendWorm(a.Host, dst, a.sys.Cfg.CtrlPayload,
		&ctrlInfo{Transfer: t, Nack: nack, From: a.Host}, nil)
}

// nextHops computes where a received (or starter-re-originated) transfer
// goes next, with the per-hop buffer class per the lower-to-higher-ID rule
// and the circuit's sticky reversal (Figure 7).
func (a *Adapter) nextHops(info *mcInfo) []hop {
	st := a.sys.groups[info.Transfer.Group]
	if st == nil {
		panic(fmt.Sprintf("adapter: transfer for unknown group %d", info.Transfer.Group))
	}
	if st.Dead || !st.Group.Contains(a.Host) {
		// This host was pruned from the structure after the worm was sent
		// (a stale copy of a pre-failure transfer): deliver locally only,
		// forward nowhere.
		return nil
	}
	switch a.sys.Cfg.Mode {
	case ModeCircuit:
		if info.ToStarter {
			// The serializer starts the circuit lap (Section 5's total
			// ordering: "the lowest ID host serializes all transmissions").
			succ, err := st.Circuit.Successor(a.Host)
			if err != nil {
				panic(err)
			}
			return []hop{{succ, &mcInfo{
				Transfer: info.Transfer,
				Class:    a.sys.classFor(a.Host, succ, false),
				HopsLeft: a.initialHops(st),
				From:     a.Host,
			}}}
		}
		if info.HopsLeft <= 1 {
			return nil
		}
		succ, err := st.Circuit.Successor(a.Host)
		if err != nil {
			panic(err)
		}
		reversed := info.Class == 1
		return []hop{{succ, &mcInfo{
			Transfer: info.Transfer,
			Class:    a.sys.classFor(a.Host, succ, reversed),
			HopsLeft: info.HopsLeft - 1,
			From:     a.Host,
		}}}
	case ModeTreeRooted:
		// At the root this starts the descent; elsewhere it continues it.
		// Children always have higher IDs, so descent stays in class 0.
		var hops []hop
		for _, c := range st.Tree.Children(a.Host) {
			hops = append(hops, hop{c, &mcInfo{
				Transfer: info.Transfer,
				Class:    a.sys.classFor(a.Host, c, false),
				From:     a.Host,
			}})
		}
		return hops
	case ModeTreeFlood:
		// Forward to all tree neighbours except the arrival one: class 1
		// climbing (toward the lower-ID parent), class 0 descending.
		var hops []hop
		for _, n := range st.Tree.Neighbours(a.Host) {
			if n == info.From {
				continue
			}
			hops = append(hops, hop{n, &mcInfo{
				Transfer: info.Transfer,
				Class:    a.sys.classFor(a.Host, n, false),
				From:     a.Host,
			}})
		}
		return hops
	}
	panic("adapter: unknown mode")
}
