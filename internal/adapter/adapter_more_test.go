package adapter

import (
	"testing"

	"wormlan/internal/des"
	"wormlan/internal/topology"
)

// TestOrderingUnderBurst stresses the serializer with many concurrent
// multicasts from every member: total ordering must hold across the whole
// burst, not just for a pair.
func TestOrderingUnderBurst(t *testing.T) {
	g := topology.Torus(3, 3, 1, 1)
	tb := newTestbed(t, g, Config{Mode: ModeCircuit, TotalOrdering: true})
	hosts := g.Hosts()
	members := []topology.NodeID{hosts[0], hosts[2], hosts[4], hosts[6], hosts[8]}
	tb.addGroup(t, 1, members)
	// Stagger injections so transfers overlap in the network.
	for i, m := range members {
		m := m
		for j := 0; j < 3; j++ {
			tb.k.At(des.Time(i*137+j*59), func() {
				if _, err := tb.sys.Adapter(m).SendMulticast(1, 150+i*31); err != nil {
					t.Error(err)
				}
			})
		}
	}
	tb.run(t)
	ref := tb.deliveries[members[0]]
	if len(ref) != 15 {
		t.Fatalf("member 0 saw %d deliveries, want 15", len(ref))
	}
	for _, m := range members[1:] {
		got := tb.deliveries[m]
		if len(got) != 15 {
			t.Fatalf("member %d saw %d deliveries", m, len(got))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("total ordering violated at member %d position %d: %v vs %v",
					m, i, got, ref)
			}
		}
	}
	tb.checkQuiescent(t)
}

// TestRootedTreeOrderingUnderBurst does the same for the rooted tree,
// which serializes at the group root by construction.
func TestRootedTreeOrderingUnderBurst(t *testing.T) {
	g := topology.Torus(3, 3, 1, 1)
	tb := newTestbed(t, g, Config{Mode: ModeTreeRooted})
	hosts := g.Hosts()
	members := []topology.NodeID{hosts[1], hosts[2], hosts[5], hosts[7]}
	tb.addGroup(t, 1, members)
	for i, m := range members {
		m := m
		tb.k.At(des.Time(i*211), func() {
			if _, err := tb.sys.Adapter(m).SendMulticast(1, 300); err != nil {
				t.Error(err)
			}
		})
	}
	tb.run(t)
	ref := tb.deliveries[members[0]]
	if len(ref) != 4 {
		t.Fatalf("root saw %d deliveries", len(ref))
	}
	for _, m := range members[1:] {
		got := tb.deliveries[m]
		if len(got) != 4 {
			t.Fatalf("member %d saw %d", m, len(got))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("rooted-tree ordering violated: %v vs %v", got, ref)
			}
		}
	}
	tb.checkQuiescent(t)
}

// TestFloodUsesBothClasses verifies the climb/descend class split: a flood
// from a mid-tree member must reserve class-2 buffers on the climbing hops
// (toward the lower-ID parent) and class-1 on the descending ones.
func TestFloodUsesBothClasses(t *testing.T) {
	g := topology.Star(7)
	tb := newTestbed(t, g, Config{Mode: ModeTreeFlood})
	hosts := g.Hosts()
	tb.addGroup(t, 1, hosts)
	// hosts are sorted; the greedy tree on a star is parent-chained in ID
	// order segments; pick a member that has both a parent and children.
	st := tb.sys.Group(1)
	var mid topology.NodeID = topology.None
	for _, m := range st.Group.Members {
		if p, _ := st.Tree.Parent(m); p != topology.None && len(st.Tree.Children(m)) > 0 {
			mid = m
			break
		}
	}
	if mid == topology.None {
		t.Skip("tree has no interior non-root member for this layout")
	}
	var peak1, peak2 int
	tb.sys.OnAppDeliver = func(d AppDelivery) {
		for _, h := range hosts {
			c1, c2, _ := tb.sys.Adapter(h).Pools()
			if c1.Peak > peak1 {
				peak1 = c1.Peak
			}
			if c2.Peak > peak2 {
				peak2 = c2.Peak
			}
		}
	}
	if _, err := tb.sys.Adapter(mid).SendMulticast(1, 500); err != nil {
		t.Fatal(err)
	}
	tb.run(t)
	// Re-scan peaks after the run in case the callback missed the maxima.
	for _, h := range hosts {
		c1, c2, _ := tb.sys.Adapter(h).Pools()
		if c1.Peak > peak1 {
			peak1 = c1.Peak
		}
		if c2.Peak > peak2 {
			peak2 = c2.Peak
		}
	}
	if peak1 == 0 || peak2 == 0 {
		t.Fatalf("flood did not touch both buffer classes: peaks %d/%d", peak1, peak2)
	}
	tb.checkQuiescent(t)
}

// TestCutThroughDegradesWhenInterfaceBusy: when a worm's head arrives
// while the interface is transmitting, the adapter must fall back to
// store-and-forward (the Figure 10 degradation mechanism).
func TestCutThroughDegradesWhenInterfaceBusy(t *testing.T) {
	g := topology.Line(3, 1)
	tb := newTestbed(t, g, Config{Mode: ModeCircuit, CutThrough: true})
	hosts := g.Hosts()
	tb.addGroup(t, 1, hosts)
	// Keep the middle host's interface busy with unicast traffic when the
	// multicast head arrives there.
	tb.k.At(1, func() {
		tb.sys.Adapter(hosts[1]).SendUnicast(hosts[2], 4000)
	})
	tb.k.At(10, func() {
		if _, err := tb.sys.Adapter(hosts[0]).SendMulticast(1, 600); err != nil {
			t.Error(err)
		}
	})
	tb.run(t)
	st := tb.sys.Stats()
	if st.StoreForwardFwd == 0 {
		t.Fatalf("busy interface did not force store-and-forward: %+v", st)
	}
	for _, h := range hosts {
		mcCount := 0
		for _, id := range tb.deliveries[h] {
			if id != 0 {
				mcCount++
			}
		}
		if mcCount != 1 {
			t.Fatalf("host %d multicast deliveries %d", h, mcCount)
		}
	}
	tb.checkQuiescent(t)
}

// TestReturnToSenderWithCutThrough combines the confirmation lap with
// cut-through pacing.
func TestReturnToSenderWithCutThrough(t *testing.T) {
	g := topology.Star(4)
	tb := newTestbed(t, g, Config{Mode: ModeCircuit, CutThrough: true, ReturnToSender: true})
	hosts := g.Hosts()
	tb.addGroup(t, 1, hosts)
	if _, err := tb.sys.Adapter(hosts[1]).SendMulticast(1, 700); err != nil {
		t.Fatal(err)
	}
	tb.run(t)
	st := tb.sys.Stats()
	if st.Confirmations != 1 {
		t.Fatalf("confirmations = %d", st.Confirmations)
	}
	for _, h := range hosts {
		if len(tb.deliveries[h]) != 1 {
			t.Fatalf("host %d deliveries %v", h, tb.deliveries[h])
		}
	}
	tb.checkQuiescent(t)
}

// TestPlainForwardingMatchesReliableDeliveries: with ample buffers, the
// plain-forwarding (Section 7 simulator) mode and the reliable protocol
// deliver exactly the same copies — the protocol only adds control
// traffic, never changes outcomes.
func TestPlainForwardingMatchesReliableDeliveries(t *testing.T) {
	counts := func(plain bool) map[topology.NodeID]int {
		g := topology.Torus(3, 3, 1, 1)
		tb := newTestbed(t, g, Config{Mode: ModeCircuit, PlainForwarding: plain})
		hosts := g.Hosts()
		tb.addGroup(t, 1, hosts[:6])
		for _, m := range hosts[:3] {
			if _, err := tb.sys.Adapter(m).SendMulticast(1, 250); err != nil {
				t.Fatal(err)
			}
		}
		tb.run(t)
		out := map[topology.NodeID]int{}
		for h, ds := range tb.deliveries {
			out[h] = len(ds)
		}
		return out
	}
	plain := counts(true)
	reliable := counts(false)
	for h, c := range plain {
		if reliable[h] != c {
			t.Fatalf("host %d: plain %d vs reliable %d deliveries", h, c, reliable[h])
		}
	}
}
