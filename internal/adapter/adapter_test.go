package adapter

import (
	"testing"

	"wormlan/internal/des"
	"wormlan/internal/multicast"
	"wormlan/internal/network"
	"wormlan/internal/topology"
	"wormlan/internal/updown"
)

// testbed bundles a kernel, fabric, and adapter system over a topology,
// recording application deliveries.
type testbed struct {
	k   *des.Kernel
	g   *topology.Graph
	sys *System

	// deliveries[host] is the ordered list of transfer IDs delivered to
	// that host's application (0 for unicast worms).
	deliveries map[topology.NodeID][]int64
	times      map[topology.NodeID][]des.Time
	unicasts   int
}

func newTestbed(t *testing.T, g *topology.Graph, cfg Config) *testbed {
	t.Helper()
	tb := &testbed{
		k: des.NewKernel(), g: g,
		deliveries: map[topology.NodeID][]int64{},
		times:      map[topology.NodeID][]des.Time{},
	}
	ud, err := updown.New(g, topology.None)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := ud.NewTable(false)
	if err != nil {
		t.Fatal(err)
	}
	f, err := network.New(tb.k, g, ud, network.Config{})
	if err != nil {
		t.Fatal(err)
	}
	tb.sys, err = NewSystem(tb.k, f, tbl, cfg, 42)
	if err != nil {
		t.Fatal(err)
	}
	tb.sys.OnAppDeliver = func(d AppDelivery) {
		id := int64(0)
		if d.Transfer != nil {
			id = d.Transfer.ID
		} else {
			tb.unicasts++
		}
		tb.deliveries[d.Host] = append(tb.deliveries[d.Host], id)
		tb.times[d.Host] = append(tb.times[d.Host], d.At)
	}
	return tb
}

func (tb *testbed) run(t *testing.T) {
	t.Helper()
	if err := tb.k.Run(0); err != nil {
		t.Fatal(err)
	}
}

// checkQuiescent asserts the protocol invariant that after the system
// drains, every reservation has been released and no hop is outstanding.
func (tb *testbed) checkQuiescent(t *testing.T) {
	t.Helper()
	for _, h := range tb.g.Hosts() {
		a := tb.sys.Adapter(h)
		c1, c2, dma := a.Pools()
		if c1.Used != 0 || c2.Used != 0 {
			t.Fatalf("host %d: leaked buffers class1=%d class2=%d", h, c1.Used, c2.Used)
		}
		if dma != nil && dma.Used != 0 {
			t.Fatalf("host %d: leaked DMA bytes %d", h, dma.Used)
		}
		if len(a.held) != 0 {
			t.Fatalf("host %d: %d transfers still held", h, len(a.held))
		}
		if len(a.outstanding) != 0 {
			t.Fatalf("host %d: %d hops still outstanding", h, len(a.outstanding))
		}
		if len(a.arriving) != 0 {
			t.Fatalf("host %d: %d arrivals still pending", h, len(a.arriving))
		}
	}
}

func (tb *testbed) addGroup(t *testing.T, id int, members []topology.NodeID) *Structure {
	t.Helper()
	grp, err := multicast.NewGroup(id, members)
	if err != nil {
		t.Fatal(err)
	}
	st, err := tb.sys.AddGroup(grp)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestCircuitDeliversToAllMembers(t *testing.T) {
	g := topology.Torus(3, 3, 1, 1)
	tb := newTestbed(t, g, Config{Mode: ModeCircuit})
	hosts := g.Hosts()
	members := []topology.NodeID{hosts[0], hosts[2], hosts[4], hosts[7]}
	tb.addGroup(t, 1, members)
	xfer, err := tb.sys.Adapter(hosts[2]).SendMulticast(1, 400)
	if err != nil {
		t.Fatal(err)
	}
	tb.run(t)
	for _, m := range members {
		if got := tb.deliveries[m]; len(got) != 1 || got[0] != xfer.ID {
			t.Fatalf("member %d deliveries %v", m, got)
		}
	}
	for _, h := range hosts {
		isMember := false
		for _, m := range members {
			isMember = isMember || m == h
		}
		if !isMember && len(tb.deliveries[h]) != 0 {
			t.Fatalf("non-member %d received %v", h, tb.deliveries[h])
		}
	}
	st := tb.sys.Stats()
	if st.Nacks != 0 || st.Retransmits != 0 || st.GiveUps != 0 {
		t.Fatalf("unexpected protocol friction: %+v", st)
	}
	tb.checkQuiescent(t)
}

func TestCircuitNonMemberCannotSend(t *testing.T) {
	g := topology.Star(4)
	tb := newTestbed(t, g, Config{Mode: ModeCircuit})
	hosts := g.Hosts()
	tb.addGroup(t, 1, hosts[:3])
	if _, err := tb.sys.Adapter(hosts[3]).SendMulticast(1, 100); err == nil {
		t.Fatal("non-member multicast accepted")
	}
	if _, err := tb.sys.Adapter(hosts[0]).SendMulticast(9, 100); err == nil {
		t.Fatal("unknown group accepted")
	}
	if _, err := tb.sys.Adapter(hosts[0]).SendMulticast(1, 0); err == nil {
		t.Fatal("zero payload accepted")
	}
}

func TestCircuitReturnToSender(t *testing.T) {
	g := topology.Star(5)
	tb := newTestbed(t, g, Config{Mode: ModeCircuit, ReturnToSender: true})
	hosts := g.Hosts()
	members := hosts[:4]
	tb.addGroup(t, 1, members)
	xfer, _ := tb.sys.Adapter(members[1]).SendMulticast(1, 200)
	tb.run(t)
	for _, m := range members {
		if got := tb.deliveries[m]; len(got) != 1 || got[0] != xfer.ID {
			t.Fatalf("member %d deliveries %v", m, got)
		}
	}
	if tb.sys.Stats().Confirmations != 1 {
		t.Fatalf("confirmations = %d", tb.sys.Stats().Confirmations)
	}
	tb.checkQuiescent(t)
}

func TestTotalOrderingCircuit(t *testing.T) {
	// Two concurrent multicasts from different origins: with total
	// ordering every member must observe the same delivery order.
	g := topology.Torus(3, 3, 1, 1)
	tb := newTestbed(t, g, Config{Mode: ModeCircuit, TotalOrdering: true})
	hosts := g.Hosts()
	members := []topology.NodeID{hosts[1], hosts[3], hosts[5], hosts[6], hosts[8]}
	tb.addGroup(t, 1, members)
	tb.sys.Adapter(hosts[5]).SendMulticast(1, 300)
	tb.sys.Adapter(hosts[8]).SendMulticast(1, 300)
	tb.run(t)
	ref := tb.deliveries[members[0]]
	if len(ref) != 2 {
		t.Fatalf("member %d got %d deliveries", members[0], len(ref))
	}
	for _, m := range members {
		got := tb.deliveries[m]
		if len(got) != 2 {
			t.Fatalf("member %d got %v", m, got)
		}
		if got[0] != ref[0] || got[1] != ref[1] {
			t.Fatalf("ordering violated: member %d saw %v, member %d saw %v",
				members[0], ref, m, got)
		}
	}
	tb.checkQuiescent(t)
}

func TestTreeRootedOrderingAndDelivery(t *testing.T) {
	g := topology.Torus(3, 3, 1, 1)
	tb := newTestbed(t, g, Config{Mode: ModeTreeRooted})
	hosts := g.Hosts()
	members := []topology.NodeID{hosts[0], hosts[2], hosts[3], hosts[6], hosts[7], hosts[8]}
	tb.addGroup(t, 1, members)
	tb.sys.Adapter(hosts[7]).SendMulticast(1, 250)
	tb.sys.Adapter(hosts[2]).SendMulticast(1, 250)
	tb.run(t)
	ref := tb.deliveries[members[0]]
	if len(ref) != 2 {
		t.Fatalf("root deliveries %v", ref)
	}
	for _, m := range members {
		got := tb.deliveries[m]
		if len(got) != 2 || got[0] != ref[0] || got[1] != ref[1] {
			t.Fatalf("rooted tree ordering violated at %d: %v vs %v", m, got, ref)
		}
	}
	tb.checkQuiescent(t)
}

func TestTreeFloodDeliversOnceEach(t *testing.T) {
	g := topology.Torus(3, 3, 1, 1)
	tb := newTestbed(t, g, Config{Mode: ModeTreeFlood})
	hosts := g.Hosts()
	members := []topology.NodeID{hosts[0], hosts[1], hosts[4], hosts[5], hosts[6]}
	tb.addGroup(t, 1, members)
	// Originate from a mid-tree member so the flood both climbs and
	// descends (exercising both buffer classes).
	xfer, _ := tb.sys.Adapter(hosts[4]).SendMulticast(1, 500)
	tb.run(t)
	for _, m := range members {
		if got := tb.deliveries[m]; len(got) != 1 || got[0] != xfer.ID {
			t.Fatalf("member %d deliveries %v", m, got)
		}
	}
	if tb.sys.Stats().Duplicates != 0 {
		t.Fatalf("flood produced duplicates: %+v", tb.sys.Stats())
	}
	tb.checkQuiescent(t)
}

func TestNackAndRetransmit(t *testing.T) {
	// Buffers sized for one worm: the second of two back-to-back
	// multicasts must be NACKed at the busy forwarder and succeed on
	// retransmission.
	g := topology.Line(3, 1)
	tb := newTestbed(t, g, Config{Mode: ModeCircuit, ClassBytes: 450, AckTimeoutBase: 2048})
	hosts := g.Hosts()
	tb.addGroup(t, 1, hosts)
	a0 := tb.sys.Adapter(hosts[0])
	x1, _ := a0.SendMulticast(1, 400)
	x2, _ := a0.SendMulticast(1, 400)
	tb.run(t)
	for _, m := range hosts {
		got := tb.deliveries[m]
		if len(got) != 2 {
			t.Fatalf("member %d deliveries %v", m, got)
		}
		seen := map[int64]bool{got[0]: true, got[1]: true}
		if !seen[x1.ID] || !seen[x2.ID] {
			t.Fatalf("member %d missing a transfer: %v", m, got)
		}
	}
	st := tb.sys.Stats()
	if st.Nacks == 0 {
		t.Fatalf("expected NACKs under tight buffers: %+v", st)
	}
	if st.Retransmits == 0 {
		t.Fatalf("expected retransmissions: %+v", st)
	}
	if st.GiveUps != 0 {
		t.Fatalf("gave up: %+v", st)
	}
	tb.checkQuiescent(t)
}

func TestDMAExtensionAbsorbsOverflow(t *testing.T) {
	// Class pools far smaller than the worm: only the [VLB96] host-DMA
	// extension makes the transfer possible.
	g := topology.Line(3, 1)
	tb := newTestbed(t, g, Config{Mode: ModeCircuit, ClassBytes: 100, DMABytes: 4096})
	hosts := g.Hosts()
	tb.addGroup(t, 1, hosts)
	tb.sys.Adapter(hosts[0]).SendMulticast(1, 800)
	tb.run(t)
	for _, m := range hosts {
		if len(tb.deliveries[m]) != 1 {
			t.Fatalf("member %d deliveries %v", m, tb.deliveries[m])
		}
	}
	if tb.sys.Stats().DMASpillBytes == 0 {
		t.Fatal("no DMA spill recorded")
	}
	tb.checkQuiescent(t)
}

func TestCutThroughFasterThanStoreAndForward(t *testing.T) {
	// A 5-member circuit chain: cut-through should complete the multicast
	// strictly earlier than store-and-forward at light load.
	lastDelivery := func(cut bool) des.Time {
		g := topology.Line(5, 1)
		tb := newTestbed(t, g, Config{Mode: ModeCircuit, CutThrough: cut})
		hosts := g.Hosts()
		grp, _ := multicast.NewGroup(1, hosts)
		tb.sys.AddGroup(grp)
		tb.sys.Adapter(hosts[0]).SendMulticast(1, 2000)
		tb.k.Run(0)
		var last des.Time
		for _, ts := range tb.times {
			for _, at := range ts {
				if at > last {
					last = at
				}
			}
		}
		if tb.sys.Stats().Deliveries != 5 {
			panic("incomplete multicast")
		}
		if cut && tb.sys.Stats().CutThroughFwds == 0 {
			panic("cut-through never engaged")
		}
		if !cut && tb.sys.Stats().CutThroughFwds != 0 {
			panic("cut-through engaged while disabled")
		}
		return last
	}
	ct := lastDelivery(true)
	sf := lastDelivery(false)
	if ct >= sf {
		t.Fatalf("cut-through lap (%d) not faster than store-and-forward (%d)", ct, sf)
	}
	// Store-and-forward pays ~full worm time per hop; cut-through should
	// cut the lap roughly in proportion to the chain length.
	if sf-ct < 2000 {
		t.Fatalf("cut-through advantage only %d byte-times", sf-ct)
	}
}

func TestTwoBufferClassesPreventDeadlock(t *testing.T) {
	// Figure 6: two crossing multicasts with buffers sized for exactly one
	// worm.  With two classes both complete; the SingleClass ablation
	// livelocks into give-ups (TestSingleClassAblationLivelocks).
	g := topology.Line(2, 1)
	tb := newTestbed(t, g, Config{Mode: ModeCircuit, ClassBytes: 400, AckTimeoutBase: 1024})
	hosts := g.Hosts()
	tb.addGroup(t, 1, hosts)
	tb.sys.Adapter(hosts[0]).SendMulticast(1, 400)
	tb.sys.Adapter(hosts[1]).SendMulticast(1, 400)
	tb.run(t)
	if tb.sys.Stats().GiveUps != 0 {
		t.Fatalf("two-class config gave up: %+v", tb.sys.Stats())
	}
	for _, h := range hosts {
		if len(tb.deliveries[h]) != 2 {
			t.Fatalf("host %d deliveries %v", h, tb.deliveries[h])
		}
	}
	tb.checkQuiescent(t)
}

func TestSingleClassAblationLivelocks(t *testing.T) {
	// Negative control: same crossing-multicast scenario with the class
	// rule disabled.  Each host's only buffer is pinned by its own
	// origination, so the opposing worm is NACKed until its sender gives
	// up — the buffer deadlock of Figure 6 made observable.
	g := topology.Line(2, 1)
	tb := newTestbed(t, g, Config{Mode: ModeCircuit, ClassBytes: 400,
		AckTimeoutBase: 1024, MaxRetries: 5, SingleClass: true})
	hosts := g.Hosts()
	tb.addGroup(t, 1, hosts)
	tb.sys.Adapter(hosts[0]).SendMulticast(1, 400)
	tb.sys.Adapter(hosts[1]).SendMulticast(1, 400)
	tb.run(t)
	st := tb.sys.Stats()
	if st.GiveUps == 0 {
		t.Fatalf("single-class ablation did not livelock: %+v", st)
	}
	if st.Nacks == 0 {
		t.Fatalf("expected NACK storm: %+v", st)
	}
}

func TestUnicastTraffic(t *testing.T) {
	g := topology.Star(3)
	tb := newTestbed(t, g, Config{})
	hosts := g.Hosts()
	a := tb.sys.Adapter(hosts[0])
	if err := a.SendUnicast(hosts[1], 123); err != nil {
		t.Fatal(err)
	}
	if err := a.SendUnicast(hosts[0], 10); err == nil {
		t.Fatal("unicast to self accepted")
	}
	if err := a.SendUnicast(g.Switches()[0], 10); err == nil {
		t.Fatal("unicast to switch accepted")
	}
	tb.run(t)
	if tb.unicasts != 1 || len(tb.deliveries[hosts[1]]) != 1 {
		t.Fatalf("unicast deliveries: %d", tb.unicasts)
	}
	if tb.sys.Stats().UnicastsSent != 1 {
		t.Fatalf("stats %+v", tb.sys.Stats())
	}
}

func TestOriginateQueueWaitsForBuffers(t *testing.T) {
	// Originating three worms with a one-worm buffer: the extra two queue
	// and go out as buffers release.
	g := topology.Star(4)
	tb := newTestbed(t, g, Config{Mode: ModeCircuit, ClassBytes: 400})
	hosts := g.Hosts()
	tb.addGroup(t, 1, hosts)
	a := tb.sys.Adapter(hosts[1])
	for i := 0; i < 3; i++ {
		if _, err := a.SendMulticast(1, 400); err != nil {
			t.Fatal(err)
		}
	}
	tb.run(t)
	for _, h := range hosts {
		if len(tb.deliveries[h]) != 3 {
			t.Fatalf("host %d got %d deliveries", h, len(tb.deliveries[h]))
		}
	}
	tb.checkQuiescent(t)
}

func TestMultipleGroupsIndependent(t *testing.T) {
	g := topology.Torus(3, 3, 1, 1)
	tb := newTestbed(t, g, Config{Mode: ModeTreeRooted})
	hosts := g.Hosts()
	tb.addGroup(t, 1, hosts[:4])
	tb.addGroup(t, 2, hosts[4:8])
	x1, _ := tb.sys.Adapter(hosts[1]).SendMulticast(1, 200)
	x2, _ := tb.sys.Adapter(hosts[5]).SendMulticast(2, 200)
	tb.run(t)
	for _, m := range hosts[:4] {
		if got := tb.deliveries[m]; len(got) != 1 || got[0] != x1.ID {
			t.Fatalf("group1 member %d: %v", m, got)
		}
	}
	for _, m := range hosts[4:8] {
		if got := tb.deliveries[m]; len(got) != 1 || got[0] != x2.ID {
			t.Fatalf("group2 member %d: %v", m, got)
		}
	}
	if _, err := tb.sys.AddGroup(tb.sys.Group(1).Group); err == nil {
		t.Fatal("duplicate group accepted")
	}
	tb.checkQuiescent(t)
}

func TestModeStrings(t *testing.T) {
	if ModeCircuit.String() != "hamiltonian-circuit" ||
		ModeTreeRooted.String() != "rooted-tree" ||
		ModeTreeFlood.String() != "tree-flood" {
		t.Fatal("mode strings")
	}
}

func BenchmarkCircuitMulticast10(b *testing.B) {
	g := topology.Torus(4, 4, 1, 1)
	k := des.NewKernel()
	ud, _ := updown.New(g, topology.None)
	tbl, _ := ud.NewTable(false)
	f, _ := network.New(k, g, ud, network.Config{})
	sys, err := NewSystem(k, f, tbl, Config{Mode: ModeCircuit}, 7)
	if err != nil {
		b.Fatal(err)
	}
	hosts := g.Hosts()
	grp, _ := multicast.NewGroup(1, hosts[:10])
	sys.AddGroup(grp)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Adapter(hosts[2]).SendMulticast(1, 400)
		k.Run(0)
	}
}
