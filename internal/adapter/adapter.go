// Package adapter implements host-adapter multicasting (Sections 4-6 of
// the paper): worm replication and retransmission carried out entirely in
// the host interface cards, so that multicast worms appear as ordinary
// unicast worms to the crossbar switches.
//
// The protocol is the paper's "optimistic" resource acquisition:
//
//   - Implicit buffer reservation (Figure 5): a host adapter that has the
//     whole worm buffered forwards it to its successor; the successor
//     reserves buffer space when the head arrives (the header carries the
//     worm size).  If it cannot, it drops the worm and returns a NACK; the
//     sender retransmits after a timeout.  An accepted worm is ACKed, at
//     which point the sender may release its own copy.
//   - Two buffer classes (Figures 6 and 7): multicast propagates from
//     lower to higher host IDs reserving class-1 buffers; at the single
//     ID reversal of the structure the worm switches to class-2 buffers.
//     Buffer-wait chains therefore always point to a higher (ID, class)
//     pair and can never form a cycle.
//   - Cut-through (Section 4, footnote 1): when enabled and the interface
//     is free when a worm's head arrives, the adapter begins retransmitting
//     to its first successor immediately, paced so the copy never outruns
//     reception.  Otherwise — and always in the Myrinet prototype — the
//     worm is stored and forwarded.
//
// Multicast structures are the Hamiltonian circuit (Section 5) and the
// rooted tree (Section 6), built by internal/multicast.
package adapter

import (
	"fmt"
	"sort"

	"wormlan/internal/des"
	"wormlan/internal/eventq"
	"wormlan/internal/flit"
	"wormlan/internal/multicast"
	"wormlan/internal/network"
	"wormlan/internal/rng"
	"wormlan/internal/route"
	"wormlan/internal/topology"
	"wormlan/internal/trace"
	"wormlan/internal/updown"
)

// Mode selects the multicast structure and start rule.
type Mode uint8

const (
	// ModeCircuit: Hamiltonian circuit (Section 5).  The worm ascends the
	// ID-ordered ring from the originator, reversing once at the wrap.
	ModeCircuit Mode = iota
	// ModeTreeRooted: rooted tree started at the root (Section 6).  The
	// originator first unicasts the message to the lowest-ID member, which
	// descends the tree.  Inherently totally ordered.
	ModeTreeRooted
	// ModeTreeFlood: rooted tree flooded from the originator: each member
	// forwards to all tree neighbours except the arrival one.  Lower
	// latency than ModeTreeRooted, but unordered (Section 6).
	ModeTreeFlood
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeCircuit:
		return "hamiltonian-circuit"
	case ModeTreeRooted:
		return "rooted-tree"
	case ModeTreeFlood:
		return "tree-flood"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}

// Config parameterizes every adapter in the system.
type Config struct {
	Mode Mode

	// CutThrough enables cut-through forwarding when the interface is free
	// at head arrival.  Myrinet hardware cannot do this (worms are always
	// stored and forwarded); the simulator can.
	CutThrough bool

	// TotalOrdering (ModeCircuit only) routes every multicast through the
	// lowest-ID member, which serializes transmissions (Section 5).
	// ModeTreeRooted is ordered by construction; ModeTreeFlood never is.
	TotalOrdering bool

	// ReturnToSender (ModeCircuit only) sends the worm the full lap back
	// to its originator as a delivery confirmation, at the cost of one
	// extra hop of bandwidth (Section 5).
	ReturnToSender bool

	// ClassBytes is the capacity of each of the two buffer classes.
	// Default 12800 (half of the LANai's ~25 KB of packet memory each).
	ClassBytes int

	// DMABytes is the per-adapter host-DMA extension pool shared by both
	// classes (0 disables the [VLB96] overflow trick).
	DMABytes int

	// AckTimeoutBase is the fixed part of the lost-ACK insurance timer;
	// the adaptive part adds 8x the worm's wire size.  The physical layer
	// is reliable, so an ACK always arrives eventually — this timer only
	// guards against protocol bugs and must sit well above worst-case
	// queueing, or spurious retransmissions melt the network down.
	// Default 131072 (~1.6 ms at 640 Mb/s).
	AckTimeoutBase des.Time

	// NackBackoff is the base random backoff before retrying a hop that
	// was NACKed for lack of buffers (Figure 5: "resume transmission ...
	// after a time out"), scaled up exponentially with consecutive
	// failures.  Default 4096.
	NackBackoff des.Time

	// MaxRetries bounds retransmissions per hop before giving up (a
	// give-up is counted, never silent).  Default 20.
	MaxRetries int

	// CtrlPayload is the ACK/NACK worm payload size.  Default 8.
	CtrlPayload int

	// SingleClass disables the two-buffer-class rule, forcing every hop to
	// reserve from class 1.  This is the negative control for the
	// deadlock-prevention ablation: crossing multicasts can then block
	// each other's buffers indefinitely (Figure 6), which surfaces as
	// NACK livelock and eventually GiveUps.
	SingleClass bool

	// PlainForwarding reproduces the paper's Section 7 simulator exactly:
	// adapters forward with unbounded buffering and no ACK/NACK
	// reservation protocol ("work is in progress in evaluating the actual
	// contention for buffers").  The Figure 10/11 experiments run in this
	// mode; the reliable protocol is what Sections 4-6 propose on top.
	PlainForwarding bool
}

// Validate rejects inconsistent configurations.  Zero values are legal
// (withDefaults fills them in); negative or out-of-range values are
// configuration bugs and must not be silently "fixed".
func (c Config) Validate() error {
	if c.Mode > ModeTreeFlood {
		return fmt.Errorf("adapter: unknown mode %v", c.Mode)
	}
	if c.ClassBytes < 0 {
		return fmt.Errorf("adapter: negative ClassBytes %d", c.ClassBytes)
	}
	if c.DMABytes < 0 {
		return fmt.Errorf("adapter: negative DMABytes %d", c.DMABytes)
	}
	if c.AckTimeoutBase < 0 {
		return fmt.Errorf("adapter: negative AckTimeoutBase %d", c.AckTimeoutBase)
	}
	if c.NackBackoff < 0 {
		return fmt.Errorf("adapter: negative NackBackoff %d", c.NackBackoff)
	}
	if c.MaxRetries < 0 {
		return fmt.Errorf("adapter: negative MaxRetries %d", c.MaxRetries)
	}
	if c.CtrlPayload < 0 {
		return fmt.Errorf("adapter: negative CtrlPayload %d", c.CtrlPayload)
	}
	if c.CtrlPayload > flit.MaxWormSize-16 {
		return fmt.Errorf("adapter: CtrlPayload %d exceeds the worm size limit", c.CtrlPayload)
	}
	if c.TotalOrdering && c.Mode != ModeCircuit {
		return fmt.Errorf("adapter: TotalOrdering requires ModeCircuit (got %v)", c.Mode)
	}
	if c.ReturnToSender && c.Mode != ModeCircuit {
		return fmt.Errorf("adapter: ReturnToSender requires ModeCircuit (got %v)", c.Mode)
	}
	return nil
}

func (c Config) withDefaults() Config {
	if c.ClassBytes == 0 {
		c.ClassBytes = 12800
	}
	if c.AckTimeoutBase == 0 {
		c.AckTimeoutBase = 131072
	}
	if c.NackBackoff == 0 {
		c.NackBackoff = 4096
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 20
	}
	if c.CtrlPayload == 0 {
		c.CtrlPayload = 8
	}
	return c
}

// Transfer is one logical multicast message, shared by every worm that
// carries a copy of it.
type Transfer struct {
	ID      int64
	Origin  topology.NodeID
	Group   int
	Payload int
	Created des.Time
}

// mcInfo is the adapter-level header of a multicast data worm (carried in
// Worm.Meta; a real implementation would encode it in the first payload
// bytes).
type mcInfo struct {
	Transfer *Transfer
	// Class is the buffer class (0 or 1) the receiver must reserve from.
	Class int
	// HopsLeft is the circuit hop count (Section 5); unused by trees.
	HopsLeft int
	// ToStarter marks the ordering pre-hop to the serializer (circuit) or
	// root (rooted tree).
	ToStarter bool
	// From is the sending adapter (ACK/NACK destination; flood arrival).
	From topology.NodeID
}

// ctrlInfo is the Meta of an ACK or NACK control worm.
type ctrlInfo struct {
	Transfer *Transfer
	Nack     bool
	From     topology.NodeID
}

// AppDelivery is a message copy handed to the local host.
type AppDelivery struct {
	Transfer *Transfer // nil for plain unicast traffic
	Host     topology.NodeID
	At       des.Time
	// Unicast payload details (Transfer == nil).
	Worm *flit.Worm
}

// Stats aggregates protocol-level counters across the system.
type Stats struct {
	MulticastsSent int64 // transfers originated
	UnicastsSent   int64
	Deliveries     int64 // local copies delivered (multicast)
	Nacks          int64 // worms dropped for lack of buffers
	Retransmits    int64 // data worm retransmissions (NACK or timeout)
	// TimeoutRetransmits is the subset of Retransmits triggered by the ACK
	// timer rather than a NACK: the no-feedback loss path (a worm
	// black-holed by a dead link produces neither ACK nor NACK, so only
	// the timer notices).
	TimeoutRetransmits int64
	Duplicates         int64 // duplicate copies suppressed by dedupe
	GiveUps            int64 // hops abandoned after MaxRetries
	Confirmations      int64 // return-to-sender laps completed
	DMASpillBytes      int64 // bytes overflowed to host DMA extensions
	CutThroughFwds     int64 // forwards begun at head arrival
	StoreForwardFwd    int64 // forwards begun after full reception

	// Failure-recovery counters.
	RouteLost    int64 // sends abandoned because no surviving route exists
	PrunedHops   int64 // outstanding hops given up at reroute (peer unreachable)
	GroupsPruned int64 // multicast structures rebuilt over surviving members
	GroupsDead   int64 // multicast structures left with fewer than 2 members
}

// Structure is the multicast structure of one group under the configured
// mode.
type Structure struct {
	Group   *multicast.Group
	Circuit *multicast.Circuit
	Tree    *multicast.Tree

	// Dead marks a structure whose surviving membership fell below two
	// hosts after failures; sends to it are counted losses.
	Dead bool

	// orig is the membership as registered, before any failure pruning.
	orig *multicast.Group
}

// origGroup returns the membership as registered (before pruning).
func (st *Structure) origGroup() *multicast.Group {
	if st.orig != nil {
		return st.orig
	}
	return st.Group
}

// System wires one Adapter per host onto a fabric and routes protocol
// events between them.
type System struct {
	K   *des.Kernel
	F   *network.Fabric
	T   *updown.Table
	Cfg Config

	// OnAppDeliver is invoked for every local copy handed to a host
	// application (both multicast and unicast).
	OnAppDeliver func(d AppDelivery)

	adapters map[topology.NodeID]*Adapter
	groups   map[int]*Structure
	r        *rng.Source
	nextWorm int64
	nextXfer int64
	stats    Stats
	rec      trace.Recorder
}

// SetRecorder attaches a trace recorder for protocol-level events
// (originate, ACK/NACK outcomes, retransmissions).  A nil recorder
// disables them; every site is behind a nil check.
func (s *System) SetRecorder(r trace.Recorder) { s.rec = r }

// emit forwards one protocol event, stamped with the current time.
func (s *System) emit(k trace.Kind, node topology.NodeID, worm, arg int64) {
	s.rec.Record(trace.Event{At: s.K.Now(), Kind: k, Node: node, Port: -1, Worm: worm, Arg: arg})
}

// NewSystem creates an adapter on every host of the fabric's topology and
// installs the delivery hooks.  It takes ownership of the fabric's
// OnDeliver, OnHeadArrival, and OnDiscard callbacks.  The configuration is
// validated; an invalid one is an error, not a silent default.
func NewSystem(k *des.Kernel, f *network.Fabric, t *updown.Table, cfg Config, seed uint64) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &System{
		K: k, F: f, T: t, Cfg: cfg.withDefaults(),
		adapters: make(map[topology.NodeID]*Adapter),
		groups:   make(map[int]*Structure),
		r:        rng.New(seed, 0xADA),
	}
	for _, h := range f.G.Hosts() {
		s.adapters[h] = newAdapter(s, h)
	}
	f.Cfg.OnDeliver = s.onDeliver
	f.Cfg.OnHeadArrival = s.onHeadArrival
	f.Cfg.OnDiscard = s.onDiscard
	return s, nil
}

// Stats returns a snapshot of the system-wide protocol counters.
func (s *System) Stats() Stats { return s.stats }

// Adapter returns the adapter of the given host.
func (s *System) Adapter(h topology.NodeID) *Adapter { return s.adapters[h] }

// SendUnicast injects a unicast message from src (implements the traffic
// generator's sink interface).
func (s *System) SendUnicast(src, dst topology.NodeID, payload int) error {
	a := s.adapters[src]
	if a == nil {
		return fmt.Errorf("adapter: %d is not a host", src)
	}
	return a.SendUnicast(dst, payload)
}

// SendMulticast originates a multicast from src (implements the traffic
// generator's sink interface).
func (s *System) SendMulticast(src topology.NodeID, group, payload int) error {
	a := s.adapters[src]
	if a == nil {
		return fmt.Errorf("adapter: %d is not a host", src)
	}
	_, err := a.SendMulticast(group, payload)
	return err
}

// AddGroup registers a multicast group, building its structure under the
// configured mode.  All members must be hosts of the topology.
func (s *System) AddGroup(g *multicast.Group) (*Structure, error) {
	if _, dup := s.groups[g.ID]; dup {
		return nil, fmt.Errorf("adapter: duplicate group %d", g.ID)
	}
	for _, m := range g.Members {
		if s.adapters[m] == nil {
			return nil, fmt.Errorf("adapter: group %d member %d is not a host", g.ID, m)
		}
	}
	st := &Structure{Group: g, orig: g}
	switch s.Cfg.Mode {
	case ModeCircuit:
		st.Circuit = multicast.NewCircuitByID(g)
	case ModeTreeRooted, ModeTreeFlood:
		// Topology-aware construction over the host-connectivity hop
		// metric (Figure 8): tree edges are much shorter than random
		// member pairs, which is why the paper's tree loads the network
		// less than the ID-ordered circuit (Section 7.1).  The greedy
		// builder still respects the child-above-parent ID rule.
		tr, err := multicast.NewTreeGreedy(s.F.G, g, 2)
		if err != nil {
			return nil, err
		}
		st.Tree = tr
	default:
		return nil, fmt.Errorf("adapter: unknown mode %v", s.Cfg.Mode)
	}
	s.groups[g.ID] = st
	return st, nil
}

// Group returns a registered group structure.
func (s *System) Group(id int) *Structure { return s.groups[id] }

// Reroute installs a recomputed route table after a topology change and
// prunes protocol state that references unreachable peers: every multicast
// structure is rebuilt over the surviving part of its registered
// membership (marked dead below two members, restored when hosts heal),
// and outstanding hops whose destination has no surviving route become
// immediate GiveUps instead of retry loops.  reachable reports whether a
// host can currently be routed to (updown.Routing.Reachable).
func (s *System) Reroute(tbl *updown.Table, reachable func(topology.NodeID) bool) {
	s.T = tbl
	// Group structures, in ID order for determinism.
	ids := make([]int, 0, len(s.groups))
	for id := range s.groups {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		st := s.groups[id]
		orig := st.origGroup()
		var live []topology.NodeID
		for _, m := range orig.Members {
			if reachable(m) {
				live = append(live, m)
			}
		}
		switch {
		case len(live) == len(orig.Members):
			if st.Dead || len(st.Group.Members) != len(orig.Members) {
				s.rebuildStructure(st, orig) // fully healed
			}
		case len(live) < 2:
			if !st.Dead {
				st.Dead = true
				s.stats.GroupsDead++
			}
		case len(live) != len(st.Group.Members) || st.Dead:
			ng, err := multicast.NewGroup(orig.ID, live)
			if err != nil {
				st.Dead = true
				s.stats.GroupsDead++
				continue
			}
			s.rebuildStructure(st, ng)
			s.stats.GroupsPruned++
		}
	}
	// Outstanding hops, in deterministic (host, transfer, destination)
	// order: give-up processing re-originates queued transfers, which
	// draws worm IDs, so the order must not depend on map iteration.
	for _, hn := range s.F.G.Hosts() {
		a := s.adapters[hn]
		var doomed []hopKey
		for key := range a.outstanding {
			if !tbl.HasRoute(a.Host, key.dst) {
				doomed = append(doomed, key)
			}
		}
		sort.Slice(doomed, func(i, j int) bool {
			if doomed[i].xfer != doomed[j].xfer {
				return doomed[i].xfer < doomed[j].xfer
			}
			return doomed[i].dst < doomed[j].dst
		})
		for _, key := range doomed {
			o := a.outstanding[key]
			s.K.Cancel(o.timer)
			delete(a.outstanding, key)
			s.stats.PrunedHops++
			s.stats.GiveUps++
			a.hopFinished(o.info.Transfer)
		}
	}
}

// rebuildStructure recomputes a group's multicast structure over the given
// membership.
func (s *System) rebuildStructure(st *Structure, g *multicast.Group) {
	st.Group = g
	st.Dead = false
	switch s.Cfg.Mode {
	case ModeCircuit:
		st.Circuit = multicast.NewCircuitByID(g)
	case ModeTreeRooted, ModeTreeFlood:
		tr, err := multicast.NewTreeGreedy(s.F.G, g, 2)
		if err != nil {
			st.Dead = true
			s.stats.GroupsDead++
			return
		}
		st.Tree = tr
	}
}

func (s *System) newWormID() int64 { s.nextWorm++; return s.nextWorm }

// sendWorm builds and injects a unicast worm from src to dst with the
// given Meta.  When no surviving route exists the send is abandoned and
// counted (returns nil); callers must tolerate a nil worm.
func (s *System) sendWorm(src, dst topology.NodeID, payload int, meta any, pace *flit.Worm) *flit.Worm {
	if !s.T.HasRoute(src, dst) {
		s.stats.RouteLost++
		return nil
	}
	rt := s.T.Lookup(src, dst)
	hdr, err := route.EncodeUnicast(rt.Ports)
	if err != nil {
		panic(fmt.Sprintf("adapter: unroutable hop %d->%d: %v", src, dst, err))
	}
	w := &flit.Worm{
		ID: s.newWormID(), Src: src, Dst: dst, Mode: flit.Unicast,
		Group: -1, Header: hdr, PayloadLen: payload, Meta: meta, PaceFrom: pace,
	}
	if mi, ok := meta.(*mcInfo); ok {
		w.Group = mi.Transfer.Group
	}
	if err := s.F.Inject(src, w); err != nil {
		panic(fmt.Sprintf("adapter: inject: %v", err))
	}
	return w
}

// classFor returns the buffer class for a hop src->dst: class 0 toward a
// higher host ID, class 1 toward a lower one; reversed keeps a circuit
// worm in class 1 for the rest of its lap after the wrap (Figure 7).
// Under the SingleClass ablation every hop uses class 0.
func (s *System) classFor(src, dst topology.NodeID, reversed bool) int {
	if s.Cfg.SingleClass {
		return 0
	}
	if reversed || dst < src {
		return 1
	}
	return 0
}

// hopKey identifies an outstanding (unACKed) hop.
type hopKey struct {
	xfer int64
	dst  topology.NodeID
}

// outstanding is a sent data worm awaiting ACK/NACK.
type outstanding struct {
	info    *mcInfo
	dst     topology.NodeID
	timer   eventq.Handle
	retries int
}

// holding is a buffered transfer copy whose reservation is pinned until
// every forward out of this adapter has been ACKed.
type holding struct {
	res      Reservation
	forwards int
}

// arrival is the accept/reject decision made when a worm's head reaches an
// adapter.
type arrival struct {
	accepted  bool
	duplicate bool
	res       Reservation
	forwarded bool // cut-through forward already queued
}

// Adapter is the per-host protocol engine.
type Adapter struct {
	sys  *System
	Host topology.NodeID

	class [2]*Pool
	dma   *Pool

	outstanding map[hopKey]*outstanding
	held        map[int64]*holding // transfer ID -> pinned buffer
	arriving    map[*flit.Worm]*arrival
	seen        map[int64]bool // transfer IDs accepted here
	seenOrder   []int64

	// originateQ holds locally originated transfers waiting for buffer
	// space.
	originateQ []*Transfer
}

func newAdapter(s *System, h topology.NodeID) *Adapter {
	a := &Adapter{
		sys: s, Host: h,
		outstanding: make(map[hopKey]*outstanding),
		held:        make(map[int64]*holding),
		arriving:    make(map[*flit.Worm]*arrival),
		seen:        make(map[int64]bool),
	}
	a.class[0] = &Pool{Name: fmt.Sprintf("h%d/class1", h), Cap: s.Cfg.ClassBytes}
	a.class[1] = &Pool{Name: fmt.Sprintf("h%d/class2", h), Cap: s.Cfg.ClassBytes}
	if s.Cfg.DMABytes > 0 {
		a.dma = &Pool{Name: fmt.Sprintf("h%d/dma", h), Cap: s.Cfg.DMABytes}
	}
	return a
}

// Pools exposes the buffer pools for occupancy studies (class 1, class 2,
// DMA extension which may be nil).
func (a *Adapter) Pools() (c1, c2, dma *Pool) { return a.class[0], a.class[1], a.dma }

// SendUnicast injects a plain unicast message (the background traffic of
// Section 7); delivery is reported through OnAppDeliver at the receiver.
func (a *Adapter) SendUnicast(dst topology.NodeID, payload int) error {
	if dst == a.Host {
		return fmt.Errorf("adapter: unicast to self")
	}
	if a.sys.adapters[dst] == nil {
		return fmt.Errorf("adapter: destination %d is not a host", dst)
	}
	a.sys.stats.UnicastsSent++
	// An unreachable destination (partitioned away by failures) is a
	// counted loss, not an error: traffic generation must go on.
	a.sys.sendWorm(a.Host, dst, payload, nil, nil)
	return nil
}

// SendMulticast originates a multicast transfer to the given group.  The
// local copy is delivered according to the ordering rules: immediately for
// unordered modes, in circuit/tree order for ordered ones.
func (a *Adapter) SendMulticast(groupID, payload int) (*Transfer, error) {
	st := a.sys.groups[groupID]
	if st == nil {
		return nil, fmt.Errorf("adapter: unknown group %d", groupID)
	}
	if st.Dead || !st.Group.Contains(a.Host) {
		if st.origGroup().Contains(a.Host) {
			// The group (or this host's membership) was pruned away by
			// failures: a counted loss, not a generation error.
			a.sys.stats.RouteLost++
			return nil, nil
		}
		return nil, fmt.Errorf("adapter: host %d not in group %d", a.Host, groupID)
	}
	if payload <= 0 || payload+16 > flit.MaxWormSize {
		return nil, fmt.Errorf("adapter: payload %d out of range", payload)
	}
	a.sys.nextXfer++
	t := &Transfer{
		ID: a.sys.nextXfer, Origin: a.Host, Group: groupID,
		Payload: payload, Created: a.sys.K.Now(),
	}
	a.sys.stats.MulticastsSent++
	if a.sys.rec != nil {
		a.sys.emit(trace.EvOriginate, a.Host, t.ID, int64(payload))
	}
	a.originate(t)
	return t, nil
}

// originate starts (or queues) a locally created transfer.
func (a *Adapter) originate(t *Transfer) {
	st := a.sys.groups[t.Group]
	if st.Dead || !st.Group.Contains(a.Host) {
		// The group (or this host's place in it) was pruned away by
		// failures while the transfer waited: a counted loss.
		a.sys.stats.RouteLost++
		return
	}
	succs, toStarter := a.successorsForOrigin(st)
	if len(succs) == 0 {
		// Degenerate: sole effective recipient is the local host.
		a.deliverLocal(t)
		return
	}
	var h *holding
	if !a.sys.Cfg.PlainForwarding {
		// The originator's own copy occupies the class of its first hop:
		// class 1 when the first hop descends in ID (the pre-hop to the
		// serializer or a flood hop toward the root), class 0 otherwise.
		cls := a.sys.classFor(a.Host, succs[0], false)
		res, ok := reserve(a.class[cls], a.dma, t.Payload)
		if !ok {
			a.originateQ = append(a.originateQ, t)
			return
		}
		a.sys.stats.DMASpillBytes += int64(res.Spilled())
		h = &holding{res: res}
		a.held[t.ID] = h
	}
	if !toStarter {
		// The originator's own copy: unordered modes deliver it at send
		// time; in ordered modes the originator is the serializer itself
		// here (otherwise toStarter would be true), so sending IS the
		// serialization point.
		a.deliverLocal(t)
	}
	for _, dst := range succs {
		info := &mcInfo{
			Transfer:  t,
			Class:     a.sys.classFor(a.Host, dst, false),
			ToStarter: toStarter,
			From:      a.Host,
		}
		if st.Circuit != nil && !toStarter {
			info.HopsLeft = a.initialHops(st)
		}
		if h != nil {
			h.forwards++
		}
		a.transmit(info, dst, nil)
	}
}

// ordered reports whether the configured mode delivers in total order.
func (a *Adapter) ordered(st *Structure) bool {
	switch a.sys.Cfg.Mode {
	case ModeCircuit:
		return a.sys.Cfg.TotalOrdering
	case ModeTreeRooted:
		return true
	default:
		return false
	}
}

// successorsForOrigin returns where the originator sends first, and
// whether that is an ordering pre-hop to the structure's starter.
func (a *Adapter) successorsForOrigin(st *Structure) ([]topology.NodeID, bool) {
	switch a.sys.Cfg.Mode {
	case ModeCircuit:
		if a.sys.Cfg.TotalOrdering && a.Host != st.Group.Lowest() {
			return []topology.NodeID{st.Group.Lowest()}, true
		}
		succ, err := st.Circuit.Successor(a.Host)
		if err != nil {
			panic(err)
		}
		return []topology.NodeID{succ}, false
	case ModeTreeRooted:
		if a.Host != st.Tree.Root {
			return []topology.NodeID{st.Tree.Root}, true
		}
		return st.Tree.Children(a.Host), false
	case ModeTreeFlood:
		return st.Tree.Neighbours(a.Host), false
	}
	panic("adapter: unknown mode")
}

// initialHops is the circuit hop budget set by the (effective) originator.
func (a *Adapter) initialHops(st *Structure) int {
	n := st.Circuit.Len()
	if a.sys.Cfg.TotalOrdering {
		// The serializer covers the other N-1 members.
		return n - 1
	}
	if a.sys.Cfg.ReturnToSender {
		return n // full lap, back to the originator
	}
	return n - 1 // stop at the originator's predecessor
}

// transmit sends one data-worm hop and arms its retransmission timer.
// Under PlainForwarding the hop is fire-and-forget.
func (a *Adapter) transmit(info *mcInfo, dst topology.NodeID, pace *flit.Worm) {
	if a.sys.Cfg.PlainForwarding {
		a.sys.sendWorm(a.Host, dst, info.Transfer.Payload, info, pace)
		return
	}
	if !a.sys.T.HasRoute(a.Host, dst) {
		// The successor is unreachable under the current map: a permanent
		// give-up, not an endless retry loop.
		a.sys.stats.RouteLost++
		a.sys.stats.GiveUps++
		a.hopFinished(info.Transfer)
		return
	}
	key := hopKey{info.Transfer.ID, dst}
	o := a.outstanding[key]
	if o == nil {
		o = &outstanding{info: info, dst: dst}
		a.outstanding[key] = o
	}
	a.sys.sendWorm(a.Host, dst, info.Transfer.Payload, info, pace)
	a.armTimer(key, o)
}

// armTimer arms the per-hop retry timer: exponential backoff on the fixed
// part (doubling with each retry, capped), an adaptive 8x-wire-size share,
// and deterministic seeded jitter so synchronized losses don't retry in
// lockstep.  This timer is the only recovery for losses that produce no
// NACK — a worm black-holed by a dead link vanishes without feedback, so
// the hop retries on timeout until the detector reroutes around the
// failure or MaxRetries converts it into a counted give-up.
func (a *Adapter) armTimer(key hopKey, o *outstanding) {
	a.sys.K.Cancel(o.timer)
	wire := des.Time(o.info.Transfer.Payload + 16)
	backoff := a.sys.Cfg.AckTimeoutBase << uint(min(o.retries, 3))
	timeout := backoff + 8*wire + des.Time(a.sys.r.Intn(int(a.sys.Cfg.AckTimeoutBase/8)+1))
	if a.sys.rec != nil {
		a.sys.rec.Record(trace.Event{At: a.sys.K.Now(), Kind: trace.EvRetransmitBackoff,
			Node: a.Host, Port: 0, Worm: o.info.Transfer.ID, Arg: int64(timeout)})
	}
	o.timer = a.sys.K.After(timeout, func() { a.onTimeout(key) })
}

func (a *Adapter) onTimeout(key hopKey) {
	o := a.outstanding[key]
	if o == nil {
		return
	}
	o.retries++
	if o.retries > a.sys.Cfg.MaxRetries {
		a.sys.stats.GiveUps++
		delete(a.outstanding, key)
		a.hopFinished(o.info.Transfer)
		return
	}
	a.sys.stats.Retransmits++
	a.sys.stats.TimeoutRetransmits++
	if a.sys.rec != nil {
		a.sys.emit(trace.EvRetransmit, a.Host, 0, o.info.Transfer.ID)
	}
	a.sys.sendWorm(a.Host, o.dst, o.info.Transfer.Payload, o.info, nil)
	a.armTimer(key, o)
}

// onAck clears the hop and unpins the held buffer when it was the last
// outstanding forward of the transfer at this adapter.
func (a *Adapter) onAck(t *Transfer) {
	a.hopFinished(t)
}

func (a *Adapter) onNack(t *Transfer, from topology.NodeID) {
	key := hopKey{t.ID, from}
	o := a.outstanding[key]
	if o == nil {
		return // ACK already arrived (stale NACK from a duplicate)
	}
	o.retries++
	if o.retries > a.sys.Cfg.MaxRetries {
		a.sys.stats.GiveUps++
		delete(a.outstanding, key)
		a.hopFinished(t)
		return
	}
	a.sys.stats.Retransmits++
	// Back off before retrying: the successor's buffer needs time to
	// drain (Figure 5: "resume transmission after a time out").
	a.sys.K.Cancel(o.timer)
	base := a.sys.Cfg.NackBackoff << uint(min(o.retries, 4))
	delay := base/2 + des.Time(a.sys.r.Intn(int(base)))
	if a.sys.rec != nil {
		a.sys.rec.Record(trace.Event{At: a.sys.K.Now(), Kind: trace.EvRetransmitBackoff,
			Node: a.Host, Port: 1, Worm: t.ID, Arg: int64(delay)})
	}
	o.timer = a.sys.K.After(delay, func() {
		o2 := a.outstanding[key]
		if o2 == nil {
			return
		}
		if a.sys.rec != nil {
			a.sys.emit(trace.EvRetransmit, a.Host, 0, t.ID)
		}
		a.sys.sendWorm(a.Host, o2.dst, t.Payload, o2.info, nil)
		a.armTimer(key, o2)
	})
}

// hopFinished decrements the transfer's pinned-forward count and releases
// the buffer copy when the last forward completes.
func (a *Adapter) hopFinished(t *Transfer) {
	h := a.held[t.ID]
	if h == nil {
		return
	}
	h.forwards--
	if h.forwards > 0 {
		return
	}
	h.res.release()
	delete(a.held, t.ID)
	a.kickOriginateQ()
}

func (a *Adapter) kickOriginateQ() {
	if len(a.originateQ) == 0 {
		return
	}
	q := a.originateQ
	a.originateQ = nil
	for _, t := range q {
		a.originate(t)
	}
}

func (a *Adapter) markSeen(xfer int64) {
	a.seen[xfer] = true
	a.seenOrder = append(a.seenOrder, xfer)
	if len(a.seenOrder) > 8192 {
		old := a.seenOrder[0]
		a.seenOrder = a.seenOrder[1:]
		delete(a.seen, old)
	}
}

func (a *Adapter) deliverLocal(t *Transfer) {
	a.sys.stats.Deliveries++
	if a.sys.OnAppDeliver != nil {
		a.sys.OnAppDeliver(AppDelivery{Transfer: t, Host: a.Host, At: a.sys.K.Now()})
	}
}
