package network

import (
	"testing"

	"wormlan/internal/des"
	"wormlan/internal/topology"
)

// countSink records hello arrivals and ticks.
type countSink struct {
	seen  int64
	ticks int64
	last  des.Time
}

func (s *countSink) HelloSeen(topology.NodeID, topology.PortID, des.Time, des.Time) { s.seen++ }
func (s *countSink) HelloTick(now des.Time)                                         { s.ticks++; s.last = now }

func TestEnableHelloValidation(t *testing.T) {
	g := topology.Line(2, 1)
	sink := &countSink{}
	cases := []struct {
		name string
		cfg  HelloConfig
	}{
		{"zero interval", HelloConfig{Jitter: 1, Until: 100, Sink: sink}},
		{"negative jitter", HelloConfig{Interval: 64, Jitter: -1, Until: 100, Sink: sink}},
		{"no horizon", HelloConfig{Interval: 64, Jitter: 1, Sink: sink}},
		{"no sink", HelloConfig{Interval: 64, Jitter: 1, Until: 100}},
	}
	for _, tc := range cases {
		r := newRig(t, g, Config{})
		if err := r.f.EnableHello(tc.cfg); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	r := newRig(t, g, Config{})
	good := HelloConfig{Interval: 64, Jitter: 8, Until: 100, Sink: sink}
	if err := r.f.EnableHello(good); err != nil {
		t.Fatal(err)
	}
	if err := r.f.EnableHello(good); err == nil {
		t.Error("double enable accepted")
	}
}

func TestHelloEngineDeliversAndDrains(t *testing.T) {
	g := topology.Torus(2, 2, 1, 1)
	r := newRig(t, g, Config{})
	sink := &countSink{}
	until := des.Time(2000)
	err := r.f.EnableHello(HelloConfig{Interval: 64, Jitter: 8, Seed: 9, Until: until, Sink: sink})
	if err != nil {
		t.Fatal(err)
	}
	r.run(t, 0)

	// The fabric must go fully idle once the horizon passes: the drain-based
	// invariants of the chaos tests depend on it.
	if n := r.k.Pending(); n != 0 {
		t.Fatalf("fabric did not drain after hello horizon: %d events pending", n)
	}
	ctr := r.f.Counters()
	if ctr.HellosSent == 0 {
		t.Fatal("no hellos sent")
	}
	// An idle fabric drops and defers nothing: every hello sent before the
	// horizon is seen (the last few may still be in flight when transmission
	// stops, so allow that small tail).
	if ctr.HellosLost != 0 || ctr.HellosDeferred != 0 {
		t.Fatalf("idle fabric lost %d / deferred %d hellos", ctr.HellosLost, ctr.HellosDeferred)
	}
	if ctr.HellosSeen != ctr.HellosSent && ctr.HellosSeen < ctr.HellosSent-int64(len(r.f.HelloEndpoints())) {
		t.Fatalf("sent %d hellos, saw %d", ctr.HellosSent, ctr.HellosSeen)
	}
	if sink.seen != ctr.HellosSeen {
		t.Fatalf("sink saw %d, counter %d", sink.seen, ctr.HellosSeen)
	}
	if sink.ticks == 0 || sink.last > until {
		t.Fatalf("sink ticked %d times, last at %d (horizon %d)", sink.ticks, sink.last, until)
	}
	// Hellos live outside the worm conservation law.
	if ctr.Injected != 0 || ctr.Delivered != 0 || ctr.FlitsDropped != 0 {
		t.Fatalf("hello traffic leaked into worm counters: %+v", ctr)
	}
}

func TestHelloDeterministicSchedule(t *testing.T) {
	run := func() (Counters, int64) {
		g := topology.Torus(2, 2, 1, 1)
		r := newRig(t, g, Config{})
		sink := &countSink{}
		if err := r.f.EnableHello(HelloConfig{Interval: 64, Jitter: 8, Seed: 9, Until: 2000, Sink: sink}); err != nil {
			t.Fatal(err)
		}
		r.run(t, 0)
		return r.f.Counters(), sink.seen
	}
	c1, s1 := run()
	c2, s2 := run()
	if c1 != c2 || s1 != s2 {
		t.Fatalf("hello schedule not deterministic:\n%+v (%d)\n%+v (%d)", c1, s1, c2, s2)
	}
}

func TestHelloDefersToData(t *testing.T) {
	// A long worm monopolizes the host link's single pipeline slot; a hello
	// due mid-worm must wait rather than corrupt the wire.
	g := topology.Line(2, 1)
	r := newRig(t, g, Config{})
	sink := &countSink{}
	if err := r.f.EnableHello(HelloConfig{Interval: 4, Jitter: 0, Seed: 3, Until: 4000, Sink: sink}); err != nil {
		t.Fatal(err)
	}
	hosts := g.Hosts()
	w := r.unicast(t, hosts[0], hosts[1], 600)
	if err := r.f.Inject(hosts[0], w); err != nil {
		t.Fatal(err)
	}
	r.run(t, 0)
	if len(r.deliveries) != 1 {
		t.Fatalf("worm not delivered alongside hellos: %d deliveries", len(r.deliveries))
	}
	ctr := r.f.Counters()
	if ctr.HellosDeferred == 0 {
		t.Fatalf("no hello deferred to the 600-byte worm: %+v", ctr)
	}
	if ctr.HellosSent == 0 || ctr.HellosSeen != ctr.HellosSent {
		t.Fatalf("hello delivery broken under data traffic: %+v", ctr)
	}
}

func TestHelloBlackHoledByDeadLink(t *testing.T) {
	g := topology.Line(2, 1)
	r := newRig(t, g, Config{})
	sink := &countSink{}
	if err := r.f.EnableHello(HelloConfig{Interval: 16, Jitter: 0, Seed: 3, Until: 2000, Sink: sink}); err != nil {
		t.Fatal(err)
	}
	// Kill the switch-switch cable; its hellos (both directions) are eaten.
	sw := g.Switches()[0]
	var port topology.PortID = -1
	for pi, p := range g.Node(sw).Ports {
		if p.Wired() && g.Node(p.Peer).Kind == topology.Switch {
			port = topology.PortID(pi)
			break
		}
	}
	if port < 0 {
		t.Fatal("no switch-switch cable")
	}
	if err := r.f.FailLink(sw, port); err != nil {
		t.Fatal(err)
	}
	if r.f.LinkAlive(sw, port) {
		t.Fatal("LinkAlive reports a dead link as alive")
	}
	r.run(t, 0)
	ctr := r.f.Counters()
	if ctr.HellosLost == 0 {
		t.Fatalf("dead link ate no hellos: %+v", ctr)
	}
	if ctr.HellosSeen+ctr.HellosLost < ctr.HellosSent {
		t.Fatalf("hello accounting leak: %+v", ctr)
	}
}
