package network

import (
	"testing"

	"wormlan/internal/flit"
	"wormlan/internal/route"
	"wormlan/internal/topology"
)

// adaptiveRig builds a rig with the Duato adaptive table installed.
func adaptiveRig(t *testing.T, g *topology.Graph, nvc int) *rig {
	t.Helper()
	r := newRig(t, g, Config{NumVCs: nvc, VCHeaders: true})
	at, err := NewAdaptiveTable(g, r.ud)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.f.SetAdaptive(at); err != nil {
		t.Fatal(err)
	}
	return r
}

// adaptiveWorm builds a unicast worm carrying only the route-anywhere
// marker; every switch decides the next hop itself.
func adaptiveWorm(src, dst topology.NodeID, payload int) *flit.Worm {
	wormIDs++
	return &flit.Worm{ID: wormIDs, Src: src, Dst: dst, Mode: flit.Unicast,
		Group: -1, Header: []byte{route.AdaptivePort}, PayloadLen: payload}
}

// TestAdaptiveMarkerDelivers: the marker worm crosses the dumbbell and
// lands intact, with conservation and no held channels.
func TestAdaptiveMarkerDelivers(t *testing.T) {
	g, _, _, hosts := vcGraph()
	r := adaptiveRig(t, g, 2)
	w := adaptiveWorm(hosts["a"], hosts["c"], 80)
	if err := r.f.Inject(hosts["a"], w); err != nil {
		t.Fatal(err)
	}
	r.run(t, 0)
	if len(r.deliveries) != 1 || r.deliveries[0].Host != hosts["c"] {
		t.Fatalf("deliveries %+v", r.deliveries)
	}
	if d := r.deliveries[0]; d.Worm.PayloadLen != 80 {
		t.Fatalf("payload %d delivered, want 80", d.Worm.PayloadLen)
	}
	c := r.f.Counters()
	if c.Injected != 1 || c.Delivered != 1 || c.WormsDropped != 0 {
		t.Fatalf("counters %+v", c)
	}
	if held := r.f.HeldChannels(); len(held) != 0 {
		t.Fatalf("%d held channels after drain", len(held))
	}
}

// TestAdaptiveFallsBackToEscape: with every adaptive lane of the trunk
// held by a streaming worm, the marker worm takes the lane-0 escape route
// instead of waiting forever on an adaptive lane.
func TestAdaptiveFallsBackToEscape(t *testing.T) {
	g, _, _, hosts := vcGraph()
	r := adaptiveRig(t, g, 2)
	// Long worm pinned to the trunk's lane 1 (the only adaptive lane).
	long := vcWorm(t, hosts["b"], hosts["d"], 600, [2]int{0, 1}, [2]int{2, 0})
	if err := r.f.Inject(hosts["b"], long); err != nil {
		t.Fatal(err)
	}
	probe := adaptiveWorm(hosts["a"], hosts["c"], 40)
	r.k.At(10, func() {
		if err := r.f.Inject(hosts["a"], probe); err != nil {
			t.Fatal(err)
		}
	})
	r.run(t, 0)
	if len(r.deliveries) != 2 {
		t.Fatalf("%d deliveries, want 2", len(r.deliveries))
	}
	at := r.deliveryTime(hosts["c"])
	if at < 0 {
		t.Fatal("probe never delivered")
	}
	// Escape shares the wire flit-by-flit with the lane-1 stream, so the
	// probe lands long before the 600-byte worm would have drained.
	if at > 250 {
		t.Fatalf("probe delivered at t=%d: escape lane did not engage", at)
	}
	c := r.f.Counters()
	if c.Injected != 2 || c.Delivered != 2 {
		t.Fatalf("counters %+v", c)
	}
}

// TestAdaptiveRoutesAroundDeadLink: on a 4-ring both directions from the
// source's switch are minimal-ish; killing the escape direction's first
// link before injection makes the candidate scan pick the surviving side,
// with no table rebuild at all.
func TestAdaptiveRoutesAroundDeadLink(t *testing.T) {
	g := topology.Ring(4, 1)
	r := adaptiveRig(t, g, 2)
	hosts := g.Hosts()
	src, dst := hosts[0], hosts[2]
	// Find the two switch-to-switch ports of the source's attach switch and
	// kill one of them; the other still leads to dst two hops the long way
	// round is equal distance on a 4-ring, so candidates hold both.
	sw, _ := g.HostAttachment(src)
	var swPorts []topology.PortID
	for pi, p := range g.Node(sw).Ports {
		if p.Wired() && g.Node(p.Peer).Kind == topology.Switch {
			swPorts = append(swPorts, topology.PortID(pi))
		}
	}
	if len(swPorts) != 2 {
		t.Fatalf("attach switch has %d switch ports, want 2", len(swPorts))
	}
	if err := r.f.FailLink(sw, swPorts[0]); err != nil {
		t.Fatal(err)
	}
	w := adaptiveWorm(src, dst, 60)
	if err := r.f.Inject(src, w); err != nil {
		t.Fatal(err)
	}
	r.run(t, 0)
	c := r.f.Counters()
	if len(r.deliveries) != 1 || r.deliveries[0].Host != dst {
		t.Fatalf("deliveries %+v (counters %+v)", r.deliveries, c)
	}
	if c.Injected != 1 || c.Delivered != 1 || c.WormsDropped != 0 {
		t.Fatalf("counters %+v", c)
	}
}

// TestAdaptiveUnreachableDropCounted: a marker worm whose destination got
// cut off is drained and attributed, preserving conservation.
func TestAdaptiveUnreachableDropCounted(t *testing.T) {
	g, _, s1, hosts := vcGraph()
	r := adaptiveRig(t, g, 2)
	// Kill every port of s1: c and d become unreachable mid-flight.
	w := adaptiveWorm(hosts["a"], hosts["c"], 200)
	if err := r.f.Inject(hosts["a"], w); err != nil {
		t.Fatal(err)
	}
	r.k.At(15, func() {
		if err := r.f.FailSwitch(s1); err != nil {
			t.Fatal(err)
		}
	})
	r.run(t, 0)
	c := r.f.Counters()
	if c.Delivered != 0 || c.WormsDropped != 1 {
		t.Fatalf("counters %+v", c)
	}
	if c.Injected != c.Delivered+c.WormsDropped {
		t.Fatalf("conservation violated: %+v", c)
	}
	if held := r.f.HeldChannels(); len(held) != 0 {
		t.Fatalf("%d held channels after kill", len(held))
	}
}
