package network

import (
	"fmt"

	"wormlan/internal/des"
	"wormlan/internal/flit"
	"wormlan/internal/topology"
	"wormlan/internal/trace"
)

// hostIf is a host adapter's network interface: it serializes injected
// worms onto the host link and reassembles arriving worms.
//
// Following the paper's simulator ("does not propagate backpressure from
// the host adapter to the network", Section 7), the receive side always
// accepts flits; adapter buffer contention is handled one level up by the
// worm-granularity ACK/NACK protocol of internal/adapter (or, in the
// prototype emulation, by dropping on a finite input ring).
type hostIf struct {
	node    topology.NodeID
	f       *Fabric
	outLink *dlink

	// queue[qhead:] holds the worms waiting for transmission; qhead is
	// advanced instead of re-slicing so the backing array is reused once
	// the queue drains (zero-alloc steady state).
	queue []*flit.Worm
	qhead int
	cur   *flit.Stream
	// stream is cur's backing storage, reused across worms so starting a
	// transmission does not allocate.
	stream flit.Stream

	// active mirrors the host's presence in Fabric.hostAct (see active.go);
	// it covers the transmit side only.  The receive side is accounted by
	// Fabric.rxBusy.
	active bool

	rx flit.Reassembler

	// stalledUntil freezes the transmit side (a host-adapter stall fault);
	// reception continues normally.
	stalledUntil des.Time
}

func (h *hostIf) receive(fl flit.Flit, now des.Time) {
	if fl.Kind == flit.Tail && fl.Bad {
		// Forward reset: the worm was truncated by a failure upstream.
		// Discard whatever arrived (possibly nothing).
		w := h.rx.Worm()
		if w == nil {
			w = fl.W
		}
		h.discardRx(w, now, &h.f.ctr.TruncatedDrops)
		return
	}
	if h.rx.Worm() == nil && fl.W.RxAborted {
		// Leftover flits of a worm already torn down (e.g. a sender resumed
		// onto a revived link mid-worm).  Not a fresh arrival.
		h.f.ctr.FlitsDropped++
		return
	}
	first := h.rx.Worm() == nil
	done, err := h.rx.Feed(fl)
	if err != nil {
		panic(fmt.Sprintf("network: host %d: %v", h.node, err))
	}
	if first {
		h.f.rxBusy++
	}
	h.f.ctr.FlitsDelivered++
	if first && h.f.Cfg.OnHeadArrival != nil {
		h.f.Cfg.OnHeadArrival(fl.W, h.node, now)
	}
	if fl.Kind == flit.Payload {
		fl.W.RxProgress++
	}
	if !done {
		return
	}
	// A tail arrived: either the worm is complete, or this was a fragment
	// (SchemeInterrupt) and the remainder will follow.
	if !h.rx.Complete() {
		return
	}
	if h.rx.Corrupt {
		// Checksum failure: a flit was damaged on the wire.
		h.discardRx(h.rx.Worm(), now, &h.f.ctr.CorruptDrops)
		return
	}
	w := h.rx.Worm()
	w.RxDone = true
	frags := h.rx.Fragments
	h.resetRx()
	h.f.ctr.Delivered++
	h.f.ctr.Fragments += int64(frags - 1)
	if h.f.rec != nil {
		h.f.emit(now, trace.EvDelivered, h.node, -1, w.ID, int64(frags))
	}
	if h.f.Cfg.OnDeliver != nil {
		h.f.Cfg.OnDeliver(Delivery{Worm: w, Host: h.node, At: now, Fragments: frags})
	}
}

// discardRx abandons the in-progress reception of w, bumping the given
// drop-reason counter and notifying the adapter layer.
func (h *hostIf) discardRx(w *flit.Worm, now des.Time, reason *int64) {
	*reason++
	h.f.dropWorm(w)
	h.resetRx()
	if h.f.Cfg.OnDiscard != nil {
		h.f.Cfg.OnDiscard(w, h.node, now)
	}
}

// resetRx clears the reassembler, keeping the fabric's count of in-progress
// receptions in step.
func (h *hostIf) resetRx() {
	if h.rx.Worm() != nil {
		h.f.rxBusy--
	}
	h.rx.Reset()
}

func (h *hostIf) transmit(now des.Time) {
	if now < h.stalledUntil {
		return // adapter stalled: transmit side frozen
	}
	if h.cur == nil {
		if h.qlen() == 0 {
			return
		}
		w := h.qpop()
		if w.Injected == 0 {
			w.Injected = now
		}
		h.stream.Reset(w, w.Header)
		h.cur = &h.stream
		if h.f.rec != nil {
			h.f.emit(now, trace.EvInject, h.node, -1, w.ID, int64(len(w.Header)+w.PayloadLen))
		}
	}
	if from := h.cur.W.PaceFrom; from != nil && from.RxAborted {
		// Cut-through forward of a reception that was aborted: the stream
		// can never finish.  Terminate it with a forward reset if any of it
		// is already on the wire (waiting out backpressure first), or just
		// drop it if nothing has been sent.
		h.abortTx(now)
		return
	}
	if h.outLink.stopped(0) {
		h.outLink.stalled++
		return
	}
	if !h.cur.CanSend(h.cur.W.PaceFrom) {
		// Cut-through pacing: the upstream copy of this worm has not yet
		// delivered the byte we would transmit next.
		return
	}
	fl, ok := h.cur.Next()
	if !ok {
		h.cur = nil
		return
	}
	h.outLink.send(now, fl)
	h.f.moved = true
	h.f.ctr.FlitsCarried++
	if h.cur.Remaining() == 0 {
		h.cur = nil
	}
}

// qlen returns the number of worms waiting in the injection queue.
func (h *hostIf) qlen() int { return len(h.queue) - h.qhead }

// qpop removes and returns the head of the injection queue.
func (h *hostIf) qpop() *flit.Worm {
	w := h.queue[h.qhead]
	h.queue[h.qhead] = nil
	h.qhead++
	if h.qhead == len(h.queue) {
		h.queue = h.queue[:0]
		h.qhead = 0
	}
	return w
}

// abortTx terminates the current outgoing stream after its pacing source
// was aborted.
func (h *hostIf) abortTx(now des.Time) {
	switch {
	case !h.cur.Started() || h.outLink.dead:
		// Nothing on the wire (or the wire is gone): silent drop.
		h.f.dropWorm(h.cur.W)
		h.cur = nil
	case !h.outLink.stopped(0):
		h.outLink.send(now, flit.Flit{W: h.cur.W, Kind: flit.Tail, Bad: true})
		h.f.moved = true
		h.f.ctr.FlitsCarried++
		h.f.dropWorm(h.cur.W)
		h.cur = nil
	}
	// Backpressured: retry the reset next tick.
}
