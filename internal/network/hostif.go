package network

import (
	"fmt"

	"wormlan/internal/des"
	"wormlan/internal/flit"
	"wormlan/internal/topology"
)

// hostIf is a host adapter's network interface: it serializes injected
// worms onto the host link and reassembles arriving worms.
//
// Following the paper's simulator ("does not propagate backpressure from
// the host adapter to the network", Section 7), the receive side always
// accepts flits; adapter buffer contention is handled one level up by the
// worm-granularity ACK/NACK protocol of internal/adapter (or, in the
// prototype emulation, by dropping on a finite input ring).
type hostIf struct {
	node    topology.NodeID
	f       *Fabric
	outLink *dlink

	queue []*flit.Worm
	cur   *flit.Stream

	rx flit.Reassembler
}

func (h *hostIf) receive(fl flit.Flit, now des.Time) {
	first := h.rx.Worm() == nil
	done, err := h.rx.Feed(fl)
	if err != nil {
		panic(fmt.Sprintf("network: host %d: %v", h.node, err))
	}
	h.f.ctr.FlitsDelivered++
	if first && h.f.Cfg.OnHeadArrival != nil {
		h.f.Cfg.OnHeadArrival(fl.W, h.node, now)
	}
	if fl.Kind == flit.Payload {
		fl.W.RxProgress++
	}
	if !done {
		return
	}
	// A tail arrived: either the worm is complete, or this was a fragment
	// (SchemeInterrupt) and the remainder will follow.
	if !h.rx.Complete() {
		return
	}
	w := h.rx.Worm()
	w.RxDone = true
	frags := h.rx.Fragments
	h.rx.Reset()
	h.f.ctr.Delivered++
	h.f.ctr.Fragments += int64(frags - 1)
	if h.f.Cfg.OnDeliver != nil {
		h.f.Cfg.OnDeliver(Delivery{Worm: w, Host: h.node, At: now, Fragments: frags})
	}
}

func (h *hostIf) transmit(now des.Time) {
	if h.cur == nil {
		if len(h.queue) == 0 {
			return
		}
		w := h.queue[0]
		h.queue = h.queue[1:]
		if w.Injected == 0 {
			w.Injected = now
		}
		h.cur = flit.NewStream(w, w.Header)
	}
	if h.outLink.stopAtSender {
		return
	}
	if !h.cur.CanSend(h.cur.W.PaceFrom) {
		// Cut-through pacing: the upstream copy of this worm has not yet
		// delivered the byte we would transmit next.
		return
	}
	fl, ok := h.cur.Next()
	if !ok {
		h.cur = nil
		return
	}
	h.outLink.send(now, fl)
	h.f.moved = true
	h.f.ctr.FlitsCarried++
	if h.cur.Remaining() == 0 {
		h.cur = nil
	}
}
