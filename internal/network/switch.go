package network

import (
	"fmt"

	"wormlan/internal/arb"
	"wormlan/internal/des"
	"wormlan/internal/flit"
	"wormlan/internal/route"
	"wormlan/internal/topology"
	"wormlan/internal/trace"
)

// portMode is the routing state of a switch input port.
type portMode uint8

const (
	// pmIdle: no worm in progress; the next flit must be a header flit.
	pmIdle portMode = iota
	// pmCollect: consuming the multicast tree header, one byte per tick.
	pmCollect
	// pmWait: route decoded; waiting to be granted all requested outputs.
	pmWait
	// pmBoundUni: streaming a unicast worm to a single output.
	pmBoundUni
	// pmBoundMC: streaming a replicated worm to several outputs.
	pmBoundMC
	// pmFlush: discarding the remainder of a flushed worm (Backward Reset
	// under SchemeFlushUnicast).
	pmFlush
	// pmDrop: draining a worm lost to a failure (stale route into a dead
	// link); drained flits are counted as dropped.
	pmDrop
)

// outPhase is the per-branch transmission phase of a multicast binding.
type outPhase uint8

const (
	opFree outPhase = iota
	// opPrefix: stamping the branch header onto the exiting copy.
	opPrefix
	// opPayload: relaying shared payload flits from the input slack.
	opPayload
	// opInterrupted: SchemeInterrupt sent a fragment tail on this branch
	// and released the downstream path; waiting for blocking to cease.
	opInterrupted
)

// inPort is a crossbar input lane with its slack buffer and routing state.
// A physical switch port owns Fabric.nvc consecutive lanes (idx = physical
// port * nvc + vc); with NumVCs == 1 lane and port indices coincide.
type inPort struct {
	f   *Fabric
	sw  *swState
	idx int
	// vc is this lane's virtual-channel id within its physical port.
	vc uint8

	// Slack ring buffer (Figure 1).
	slack []flit.Flit
	head  int
	fill  int
	cap   int

	// stopMark/goMark cache Config.StopMark/GoMark: receive and pop compare
	// fill against them on every flit, and a config chase there is hot.
	stopMark, goMark int

	//wormlint:keep reset callers clear it themselves, paired with the sw.wishPorts accounting only they can see
	stopWish bool
	inLink   *dlink

	mode portMode
	worm *flit.Worm

	// blocked marks a pmWait input whose EvBlocked has been emitted, so a
	// blocking episode traces as one Blocked/Resumed pair, not one event
	// per retried tick.
	blocked bool

	// adaptive marks a pmWait head holding the route.AdaptivePort marker:
	// its output request is recomputed from live lane occupancy every tick
	// (adaptiveSelect) instead of being fixed at decode time.  Only
	// meaningful in pmWait; setMode clears it on every other transition.
	adaptive bool

	// Multicast header collection parser state.
	mcBuf       []byte
	mcSkip      int
	mcExpectPtr bool

	// Requested/bound outputs and the header to stamp on each branch
	// (nil for host delivery).
	reqOuts   []int
	reqStamps [][]byte
	outs      []int

	// ou caches &sw.out[outs[0]] while the port is pmBoundUni: the unicast
	// relay reads it once per tick, and the outs[0] double-index is hot.
	// Only meaningful in pmBoundUni; left stale otherwise.
	//wormlint:keep only read in pmBoundUni, where bind just wrote it
	ou *outPort
}

func (in *inPort) receive(fl flit.Flit) {
	// The switch can only be inactive if every port is empty and idle, so
	// an arrival at a non-empty or non-idle port never needs the wakeup —
	// skipping it avoids a load of the (cold) swState header per flit.
	if in.fill == 0 && in.mode == pmIdle {
		in.f.activateSwitch(in.sw)
	}
	if in.fill >= in.cap {
		panic(fmt.Sprintf("network: slack overflow at switch %d port %d (cap %d): STOP/GO sizing bug",
			in.sw.node, in.idx, in.cap))
	}
	i := in.head + in.fill
	if i >= in.cap {
		i -= in.cap
	}
	in.slack[i] = fl
	in.fill++
	// The STOP wish can only flip to set when the fill climbs to the STOP
	// mark while the wish is clear; any other fill change leaves the publish
	// phase a provable no-op, so the port is not marked dirty for it.
	if in.fill >= in.stopMark && !in.stopWish {
		in.sw.dirtyIns.set(in.idx)
	}
	if in.mode == pmIdle {
		in.sw.routeIns.set(in.idx)
	}
}

func (in *inPort) peek() flit.Flit { return in.slack[in.head] }

func (in *inPort) pop() flit.Flit {
	fl := in.slack[in.head]
	in.slack[in.head] = flit.Flit{}
	in.head++
	if in.head == in.cap {
		in.head = 0
	}
	in.fill--
	// Mirror of receive: only a drain to the GO mark with a standing STOP
	// wish can flip the wish at the next publish.
	if in.fill <= in.goMark && in.stopWish {
		in.sw.dirtyIns.set(in.idx)
	}
	if in.fill == 0 && in.mode == pmIdle {
		in.sw.routeIns.clear(in.idx)
	}
	return fl
}

// setMode transitions the port's routing state, keeping the switch's
// route/transmit port masks in step.  Every mode assignment after
// construction must go through here.
func (in *inPort) setMode(m portMode) {
	in.mode = m
	if m != pmWait {
		in.adaptive = false
	}
	sw := in.sw
	switch {
	case m == pmBoundUni || m == pmBoundMC:
		sw.routeIns.clear(in.idx)
		sw.boundIns.set(in.idx)
	case m == pmIdle:
		sw.boundIns.clear(in.idx)
		if in.fill > 0 {
			sw.routeIns.set(in.idx)
		} else {
			sw.routeIns.clear(in.idx)
		}
	default:
		sw.boundIns.clear(in.idx)
		sw.routeIns.set(in.idx)
	}
}

// outPort is a crossbar output lane; sibling lanes of one physical port
// share the same link, whose wire the lane scheduler multiplexes (see
// swState.laneGrant).
type outPort struct {
	link    *dlink
	boundIn int // input lane index, -1 when free

	// vc is the lane id within the physical port; base is the lane index
	// of the port's lane 0 (so base+vc is this lane's own index).
	vc   uint8
	base int

	phase     outPhase
	prefix    []byte // branch header still to stamp
	prefixPos int
	stamp     []byte // full branch header, kept for SchemeInterrupt resume

	// idleTicks counts consecutive ticks this output was held by a
	// multicast worm but transmitted IDLE fill; SchemeFlushUnicast flags
	// the port 'multicast-IDLE' past Config.IdleFlagTicks.
	idleTicks int
}

func (o *outPort) bind(inIdx int, stamp []byte) {
	o.boundIn = inIdx
	o.stamp = stamp
	o.prefix = stamp
	o.prefixPos = 0
	o.idleTicks = 0
	if len(stamp) == 0 {
		o.phase = opPayload
	} else {
		o.phase = opPrefix
	}
}

func (o *outPort) unbind() {
	o.boundIn = -1
	o.phase = opFree
	o.prefix = nil
	o.stamp = nil
	o.prefixPos = 0
	o.idleTicks = 0
}

// swState is the per-switch simulation state.
type swState struct {
	node topology.NodeID
	f    *Fabric
	in   []inPort
	out  []outPort

	// active mirrors the switch's presence in Fabric.swAct (see active.go).
	active bool

	// dead marks a crashed switch: it routes nothing, transmits nothing,
	// and all its port state was wiped when it went down.
	dead bool

	// Incremental port-state indexes (see DESIGN.md §12).  routeIns holds
	// ports where routeInput would do work (a buffered header, or a worm in
	// a pre-bound routing state); boundIns holds ports streaming through
	// the crossbar (pmBoundUni/pmBoundMC).  Both are maintained by
	// setMode/receive/pop so route and transmit touch only live ports.
	routeIns bitset
	boundIns bitset
	// dirtyIns marks ports whose STOP wish may need to flip at the next
	// publish phase: receive/pop set it only when the fill crosses the
	// STOP mark (wish clear) or the GO mark (wish set) — any other fill
	// change provably leaves the wish alone, so streaming ports stay out
	// of the publish scan entirely.  pendIns marks ports whose reverse-
	// channel ring is not yet uniformly equal to the current wish and
	// still needs per-tick writes.  deadIns marks ports whose arrival
	// link is dead (excluded from the fabric work OR, as in the full-scan
	// code).
	dirtyIns bitset
	pendIns  bitset
	deadIns  bitset
	// wishPorts counts ports with stopWish set; nBoundOuts counts bound
	// crossbar outputs.  Both replace per-tick port scans in phase 4.
	wishPorts  int
	nBoundOuts int

	// arb is the iSLIP arbiter under Config.Arb == ArbISLIP (nil under the
	// scan policy).  arbLanes collects the input lanes whose single-output
	// grants were deferred to the post-scan scheduling cell this tick;
	// arbMark mirrors membership so results apply in ascending lane order
	// regardless of the rotated collection order.
	arb      *arb.ISLIP
	arbLanes []int
	arbMark  []bool
}

// route advances the head-of-worm state machines of every input port:
// header consumption, route decoding, and output arbitration.
func (s *swState) route(now des.Time) {
	n := len(s.in)
	if n == 0 {
		return
	}
	// Rotating scan order provides round-robin fairness between inputs
	// contending for the same outputs.  routeIns holds exactly the ports
	// for which routeInput is not a no-op (bound/idle-empty ports are
	// excluded), so iterating the mask in rotated order visits the same
	// ports in the same order as the full rotating scan did.  The start
	// index rotates over physical ports (scaled to lane 0), so a multi-VC
	// fabric carrying lane-0-only traffic visits ports in exactly the
	// NumVCs == 1 order.
	if s.routeIns.empty() {
		return
	}
	if s.arb != nil {
		s.arbLanes = s.arbLanes[:0]
	}
	nvc := s.f.nvc
	start := int(now%int64(n/nvc)) * nvc
	s.routeIns.forEachFrom(start, func(pi int) {
		s.routeInput(&s.in[pi], now)
	})
	if s.arb != nil && len(s.arbLanes) > 0 {
		s.islipArbitrate(now)
	}
}

// laneFor maps a unicast route byte to an output lane index: a plain port
// byte lands on the port's lane 0, and a VC-headered fabric
// (Config.VCHeaders) unpacks vc<<6|port pairs.
func (s *swState) laneFor(b byte) int {
	f := s.f
	if f.Cfg.VCHeaders {
		port, vc := route.DecodeVCPort(b)
		return port*f.nvc + vc
	}
	return int(b) * f.nvc
}

func (s *swState) routeInput(in *inPort, now des.Time) {
	switch in.mode {
	case pmIdle:
		if in.fill == 0 {
			return
		}
		fl := in.peek()
		if fl.Kind != flit.Header {
			if fl.W.RxAborted || (fl.Kind == flit.Tail && fl.Bad) {
				// Leftovers of a worm torn down by a failure (a headerless
				// stub, or a sender that resumed onto a revived link
				// mid-worm): drain them without routing.
				in.pop()
				s.f.ctr.FlitsDropped++
				s.f.dropWorm(fl.W)
				return
			}
			panic(fmt.Sprintf("network: switch %d port %d: worm %d starts with %s flit",
				s.node, in.idx, fl.W.ID, fl.Kind))
		}
		in.worm = fl.W
		if s.f.rec != nil {
			s.f.emit(now, trace.EvHeadAtSwitch, s.node, in.idx, fl.W.ID, 0)
		}
		switch fl.W.Mode {
		case flit.Unicast:
			b := in.pop()
			if s.f.adaptive != nil && b.B == route.AdaptivePort {
				// Duato marker: the output is chosen per-hop from live lane
				// occupancy, re-evaluated each tick by adaptiveSelect (which
				// grantOrDefer dispatches to while the flag is set).
				in.setMode(pmWait)
				in.adaptive = true
			} else {
				in.reqOuts = append(in.reqOuts[:0], s.laneFor(b.B))
				in.reqStamps = append(in.reqStamps[:0], nil)
				in.setMode(pmWait)
			}
		case flit.Broadcast:
			b := in.pop()
			if b.B == route.BroadcastPort {
				in.reqOuts, in.reqStamps = s.broadcastBranches(in.idx)
				if len(in.reqOuts) == 0 {
					// Leaf switch whose only connection is the arrival
					// port: the worm dies here; drain it.
					in.setMode(pmFlush)
					return
				}
			} else {
				// Still on the unicast prefix toward the root; broadcast
				// prefixes are plain port bytes on lane 0.
				in.reqOuts = append(in.reqOuts[:0], int(b.B)*s.f.nvc)
				in.reqStamps = append(in.reqStamps[:0], nil)
			}
			in.setMode(pmWait)
		case flit.MulticastTree:
			in.setMode(pmCollect)
			in.mcBuf = in.mcBuf[:0]
			in.mcSkip = 0
			in.mcExpectPtr = false
			s.collect(in) // consume the first byte this tick
			return
		}
		if in.mode == pmWait {
			s.grantOrDefer(in, now)
		}
	case pmCollect:
		s.collect(in)
		if in.mode == pmWait {
			s.grantOrDefer(in, now)
		}
	case pmWait:
		s.grantOrDefer(in, now)
	case pmFlush:
		// Drain everything available; a Backward Reset clears the path
		// without per-byte pacing.
		for in.fill > 0 {
			fl := in.pop()
			if fl.Kind == flit.Tail {
				in.setMode(pmIdle)
				in.worm = nil
				break
			}
		}
	case pmDrop:
		s.drainDrop(in)
	}
}

// drainDrop drains a worm lost to a failure, counting every flit dropped,
// until its (possibly synthetic) tail arrives.
func (s *swState) drainDrop(in *inPort) {
	for in.fill > 0 {
		fl := in.pop()
		s.f.ctr.FlitsDropped++
		if fl.Kind == flit.Tail {
			in.setMode(pmIdle)
			in.worm = nil
			break
		}
	}
}

// collect consumes one multicast header byte per tick and decodes the
// branch list when the header is complete.
func (s *swState) collect(in *inPort) {
	if in.fill == 0 {
		return
	}
	fl := in.peek()
	if fl.Kind != flit.Header {
		if fl.Kind == flit.Tail && fl.Bad {
			// The header was truncated by an upstream failure: abort the
			// parse and drop the stub.
			in.pop()
			s.f.ctr.FlitsDropped += int64(len(in.mcBuf)) + 1
			s.f.dropWorm(in.worm)
			in.setMode(pmIdle)
			in.worm = nil
			in.mcBuf = in.mcBuf[:0]
			return
		}
		panic(fmt.Sprintf("network: switch %d port %d: %s flit inside multicast header of worm %d",
			s.node, in.idx, fl.Kind, fl.W.ID))
	}
	in.pop()
	b := fl.B
	in.mcBuf = append(in.mcBuf, b)
	complete := false
	switch {
	case in.mcSkip > 0:
		in.mcSkip--
	case in.mcExpectPtr:
		if b == 0 {
			panic(fmt.Sprintf("network: zero pointer in multicast header of worm %d", fl.W.ID))
		}
		in.mcExpectPtr = false
		in.mcSkip = int(b) - 1
	case b == route.End:
		complete = true
	default:
		in.mcExpectPtr = true
	}
	if !complete {
		return
	}
	splits, err := route.SplitHeader(in.mcBuf)
	if err != nil {
		panic(fmt.Sprintf("network: corrupt multicast header of worm %d: %v", fl.W.ID, err))
	}
	in.reqOuts = in.reqOuts[:0]
	in.reqStamps = in.reqStamps[:0]
	for _, sp := range splits {
		stamp := sp.Header
		if len(stamp) == 1 && stamp[0] == route.End {
			stamp = nil // host delivery: no header on the exiting copy
		}
		// Branch bytes decode exactly like unicast route bytes: VC-headered
		// fabrics unpack vc<<6|port so each fork branch carries its own lane;
		// plain port bytes land on lane 0 either way.
		in.reqOuts = append(in.reqOuts, s.laneFor(byte(sp.Port)))
		in.reqStamps = append(in.reqStamps, stamp)
	}
	in.setMode(pmWait)
}

// broadcastBranches returns the replication set for a broadcast worm that
// has reached this switch: every attached host and every 'down' spanning-
// tree link (Section 3's simplified broadcast).  Copies travel strictly
// down the tree, so no arrival-port exclusion is needed: the link to the
// parent is an 'up' link here and is never selected, and the flood
// terminates at the leaves.  Every host receives the broadcast, including
// the sender.
//
//wormlint:alloc per-broadcast fan-out set; broadcasts are rare control worms outside the zero-alloc pin
func (s *swState) broadcastBranches(arrival int) (outs []int, stamps [][]byte) {
	ud := s.f.UD
	g := s.f.G
	nvc := s.f.nvc
	for pi, p := range g.Node(s.node).Ports {
		if !p.Wired() || s.out[pi*nvc].link.dead {
			continue
		}
		if g.Node(p.Peer).Kind == topology.Host {
			outs = append(outs, pi*nvc)
			stamps = append(stamps, nil)
			continue
		}
		if ud.InTree(s.node, topology.PortID(pi)) && !ud.IsUp(s.node, topology.PortID(pi)) {
			outs = append(outs, pi*nvc)
			stamps = append(stamps, []byte{route.BroadcastPort})
		}
	}
	return outs, stamps
}

// pruneStale drops request branches whose output link has died since the
// route was computed (a stale source route), and reports false when the
// worm lost every branch and was drained.
func (s *swState) pruneStale(in *inPort) bool {
	pruned := false
	liveOuts := in.reqOuts[:0]
	liveStamps := in.reqStamps[:0]
	for i, oi := range in.reqOuts {
		if oi >= len(s.out) || s.out[oi].link == nil {
			panic(fmt.Sprintf("network: worm %d routed to nonexistent port %d of switch %d",
				in.worm.ID, oi, s.node))
		}
		if s.out[oi].link.dead {
			s.f.ctr.StaleRouteDrops++
			pruned = true
			continue
		}
		liveOuts = append(liveOuts, oi)
		liveStamps = append(liveStamps, in.reqStamps[i])
	}
	in.reqOuts, in.reqStamps = liveOuts, liveStamps
	if pruned {
		if in.worm.Epoch != s.f.epoch {
			s.f.ctr.EpochMismatches++
		}
		if len(in.reqOuts) == 0 {
			s.f.dropWorm(in.worm)
			in.setMode(pmDrop)
			in.blocked = false
			s.drainDrop(in)
			return false
		}
	}
	return true
}

// bindRequested commits a granted request: binds every requested output to
// the input lane and moves the lane to its streaming mode.
func (s *swState) bindRequested(in *inPort) {
	for i, oi := range in.reqOuts {
		s.out[oi].bind(in.idx, in.reqStamps[i])
	}
	s.nBoundOuts += len(in.reqOuts)
	in.outs = append(in.outs[:0], in.reqOuts...)
	if len(in.outs) == 1 && in.worm.Mode == flit.Unicast {
		in.ou = &s.out[in.outs[0]]
		in.setMode(pmBoundUni)
	} else {
		in.setMode(pmBoundMC)
	}
}

// flushIfMCIdle applies the SchemeFlushUnicast rule: a unicast worm
// blocked by an output that has been idle-filling on behalf of a multicast
// past the flag threshold is flushed (Backward Reset).  Reports whether
// the worm was flushed.
func (s *swState) flushIfMCIdle(in *inPort, now des.Time) bool {
	if s.f.Cfg.Scheme != SchemeFlushUnicast || in.worm.Mode != flit.Unicast {
		return false
	}
	for _, oi := range in.reqOuts {
		o := &s.out[oi]
		if o.boundIn >= 0 &&
			s.in[o.boundIn].mode == pmBoundMC &&
			o.idleTicks >= s.f.Cfg.IdleFlagTicks {
			s.flush(in, now)
			return true
		}
	}
	return false
}

// grantOrDefer arbitrates a pmWait input.  Under the scan policy (and for
// every multi-output request, which needs the scan's atomic all-or-nothing
// grant) it grants immediately in scan order; under ArbISLIP single-output
// requests are deferred to the post-scan iSLIP scheduling cell.
func (s *swState) grantOrDefer(in *inPort, now des.Time) {
	if in.adaptive {
		// Adaptive heads re-decide their request from current occupancy and
		// grab free lanes immediately; deferring to iSLIP would arbitrate a
		// request that is stale by the time the scheduling cell runs.
		s.adaptiveSelect(in, now)
		return
	}
	if s.arb != nil && len(in.reqOuts) == 1 {
		// Prune every tick even while deferred, so stale routes into dead
		// links are noticed as promptly as under the scan.
		if !s.pruneStale(in) || len(in.reqOuts) != 1 {
			if in.mode == pmWait {
				s.tryGrant(in, now)
			}
			return
		}
		s.arbLanes = append(s.arbLanes, in.idx)
		s.arbMark[in.idx] = true
		return
	}
	s.tryGrant(in, now)
}

// tryGrant performs all-or-nothing output arbitration for the input's
// request.  Granting atomically prevents partial-hold deadlocks between
// replicating worms within one switch.
func (s *swState) tryGrant(in *inPort, now des.Time) {
	if !s.pruneStale(in) {
		return
	}
	free := true
	for _, oi := range in.reqOuts {
		if s.out[oi].boundIn >= 0 {
			free = false
			break
		}
	}
	if !free {
		if s.flushIfMCIdle(in, now) {
			return
		}
		if !in.blocked {
			in.blocked = true
			if s.f.rec != nil {
				s.f.emit(now, trace.EvBlocked, s.node, in.idx, in.worm.ID, int64(len(in.reqOuts)))
			}
		}
		return
	}
	if in.blocked {
		in.blocked = false
		if s.f.rec != nil {
			s.f.emit(now, trace.EvResumed, s.node, in.idx, in.worm.ID, int64(len(in.reqOuts)))
		}
	}
	s.bindRequested(in)
}

// islipArbitrate runs one iSLIP scheduling cell over the input lanes whose
// grants were deferred this tick, then applies the matching in ascending
// lane order (binds, Blocked/Resumed bookkeeping) so the observable event
// order is independent of the rotated collection order.
func (s *swState) islipArbitrate(now des.Time) {
	a := s.arb
	a.Begin()
	for _, li := range s.arbLanes {
		a.Request(li, s.in[li].reqOuts)
	}
	m := a.Match(func(o int) bool {
		op := &s.out[o]
		return op.boundIn < 0 && !op.link.dead
	})
	n := len(s.arbLanes)
	for li := 0; n > 0 && li < len(s.in); li++ {
		if !s.arbMark[li] {
			continue
		}
		s.arbMark[li] = false
		n--
		in := &s.in[li]
		if m[li] < 0 {
			if s.flushIfMCIdle(in, now) {
				continue
			}
			if !in.blocked {
				in.blocked = true
				if s.f.rec != nil {
					s.f.emit(now, trace.EvBlocked, s.node, in.idx, in.worm.ID, 1)
				}
			}
			continue
		}
		if in.blocked {
			in.blocked = false
			if s.f.rec != nil {
				s.f.emit(now, trace.EvResumed, s.node, in.idx, in.worm.ID, 1)
			}
		}
		s.bindRequested(in)
	}
}

// flush discards the worm currently heading the input port and notifies
// the fabric (SchemeFlushUnicast).
func (s *swState) flush(in *inPort, now des.Time) {
	w := in.worm
	in.setMode(pmFlush)
	in.blocked = false
	in.reqOuts = in.reqOuts[:0]
	in.reqStamps = in.reqStamps[:0]
	s.f.ctr.Flushed++
	if s.f.rec != nil {
		s.f.emit(now, trace.EvFlushed, s.node, in.idx, w.ID, 0)
	}
	if s.f.Cfg.OnFlush != nil {
		s.f.Cfg.OnFlush(w, now)
	}
	// Drain whatever has already arrived.
	for in.fill > 0 {
		fl := in.pop()
		if fl.Kind == flit.Tail {
			in.setMode(pmIdle)
			in.worm = nil
			break
		}
	}
}

// transmit moves one flit per bound output: branch prefixes first, then
// shared payload gated on every branch being ready (the IDLE-fill rule of
// Section 3), with SchemeInterrupt's fragment/resume logic layered on top.
func (s *swState) transmit(now des.Time) {
	// boundIns holds exactly the ports in pmBoundUni/pmBoundMC, in index
	// order — the same ports the full scan would act on.
	f := s.f
	s.boundIns.forEach(func(ii int) {
		in := &s.in[ii]
		// boundIns holds only pmBoundUni and pmBoundMC ports.
		switch in.mode {
		case pmBoundUni:
			o := in.ou
			if f.nvc > 1 && s.laneGrant(o.link, o.base, now) != int8(o.vc) {
				// A sibling lane owns the wire this tick (or none is
				// ready); a stopped lane's wait still counts as a stall.
				if o.link.stopped(o.vc) {
					o.link.stalled++
				}
				return
			}
			if o.link.stopped(o.vc) {
				o.link.stalled++
				return
			}
			if o.phase == opPrefix {
				// Stamping a header onto the exiting copy (adaptive marker
				// or escape-route bytes); payload follows once it is out.
				b := o.prefix[o.prefixPos]
				o.prefixPos++
				o.link.send(now, flit.Flit{W: in.worm, Kind: flit.Header, B: b, VC: o.vc})
				f.moved = true
				f.ctr.FlitsCarried++
				if o.prefixPos == len(o.prefix) {
					o.phase = opPayload
				}
				return
			}
			if in.fill == 0 {
				return
			}
			fl := in.pop()
			// Re-tag with the outgoing lane: a VC-switching route (e.g.
			// dateline crossing) may move the worm between lanes.
			fl.VC = o.vc
			o.link.send(now, fl)
			f.moved = true
			f.ctr.FlitsCarried++
			if fl.Kind == flit.Tail {
				if f.rec != nil {
					f.emit(now, trace.EvTailDrained, s.node, in.idx, fl.W.ID, 1)
				}
				o.unbind()
				s.nBoundOuts--
				in.setMode(pmIdle)
				in.worm = nil
			}
		case pmBoundMC:
			s.transmitMC(in, now)
		}
	})
}

// laneGrant returns the lane granted the physical wire of link l this
// tick, computing the decision once per link per tick (cached on the
// link).  The scheduler is a stateless rotating priority: starting from
// now % nvc, the first ready bound lane wins.  Ready means unstopped with
// a flit (or prefix byte) to send.  Multicast branch lanes compete like
// unicast ones; a granted branch that cannot send (a sibling branch of
// its fork is blocked) idles the wire, which models IDLE fill.
// Statelessness matters: replay and fast-forward need no scheduler state
// to repair.
func (s *swState) laneGrant(l *dlink, base int, now des.Time) int8 {
	if l.grantTick == now {
		return l.grantVC
	}
	l.grantTick = now
	nvc := s.f.nvc
	start := int(now % int64(nvc))
	for k := 0; k < nvc; k++ {
		v := start + k
		if v >= nvc {
			v -= nvc
		}
		o := &s.out[base+v]
		if o.boundIn < 0 || o.phase == opInterrupted || l.stopped(uint8(v)) {
			continue
		}
		if o.phase == opPayload && s.in[o.boundIn].fill == 0 {
			continue
		}
		l.grantVC = int8(v)
		return l.grantVC
	}
	l.grantVC = -1
	return -1
}

// wireHeld reports whether, on a multi-lane fabric, the physical wire of
// output lane o belongs to a sibling lane this tick (rotating lane grant).
// Single-lane fabrics have no multiplexing, so the wire is always o's.
func (s *swState) wireHeld(o *outPort, now des.Time) bool {
	return s.f.nvc > 1 && s.laneGrant(o.link, o.base, now) != int8(o.vc)
}

func (s *swState) transmitMC(in *inPort, now des.Time) {
	// Stage 1: branches still stamping their headers send prefix bytes
	// independently.  Shared payload cannot advance until every branch has
	// finished its prefix.  Each branch rides its own lane (o.vc; lane 0
	// unless the fork decoded VC-headered branch bytes), so backpressure
	// and wire multiplexing are checked per lane.
	anyPrefix := false
	for _, oi := range in.outs {
		o := &s.out[oi]
		if o.phase != opPrefix {
			continue
		}
		anyPrefix = true
		if o.link.stopped(o.vc) {
			o.link.stalled++
		} else if !s.wireHeld(o, now) {
			b := o.prefix[o.prefixPos]
			o.prefixPos++
			o.link.send(now, flit.Flit{W: in.worm, Kind: flit.Header, B: b, VC: o.vc})
			s.f.moved = true
			s.f.ctr.FlitsCarried++
			if o.prefixPos == len(o.prefix) {
				o.phase = opPayload
			}
		}
	}
	if anyPrefix {
		return
	}
	// Stage 2: is any streaming branch backpressured?  Every stalled
	// branch counts toward its link's stall time, so no early break.  A
	// branch whose wire a sibling lane holds this tick is not blocked in
	// the scheme sense (that is transient multiplexing, not congestion) but
	// the shared pop must still wait for it.
	anyStopped := false
	wireLost := false
	for _, oi := range in.outs {
		o := &s.out[oi]
		if o.phase != opPayload {
			continue
		}
		if o.link.stopped(o.vc) {
			anyStopped = true
			o.link.stalled++
		} else if s.wireHeld(o, now) {
			wireLost = true
		}
	}
	if anyStopped {
		switch s.f.Cfg.Scheme {
		case SchemeInterrupt:
			// Non-blocked branches interrupt: emit a fragment tail,
			// releasing the downstream path, and remember the header for
			// resumption (Section 3, scheme (b)/(c)).
			for _, oi := range in.outs {
				o := &s.out[oi]
				if o.phase == opPayload && !o.link.stopped(o.vc) && !s.wireHeld(o, now) {
					o.link.send(now, flit.Flit{W: in.worm, Kind: flit.Tail, VC: o.vc})
					s.f.moved = true
					s.f.ctr.FlitsCarried++
					s.f.ctr.Fragments++
					o.phase = opInterrupted
					if s.f.rec != nil {
						s.f.emit(now, trace.EvInterrupt, s.node, oi, in.worm.ID, 0)
					}
				}
			}
		default:
			// IDLE fill: the ready branches hold their ports and transmit
			// IDLE symbols (modelled as silence).
			for _, oi := range in.outs {
				o := &s.out[oi]
				if o.phase == opPayload && !o.link.stopped(o.vc) {
					o.idleTicks++
					if o.idleTicks == s.f.Cfg.IdleFlagTicks && s.f.rec != nil {
						s.f.emit(now, trace.EvMCIdle, s.node, oi, in.worm.ID, int64(o.idleTicks))
					}
				}
			}
		}
		return
	}
	if wireLost {
		return // a sibling lane owns some branch's wire; retry next tick
	}
	// Stage 3: blocking has ceased; resume interrupted branches by
	// re-stamping their stored headers, which costs the prefix bytes again.
	resumed := false
	for _, oi := range in.outs {
		o := &s.out[oi]
		if o.phase == opInterrupted {
			o.prefix = o.stamp
			o.prefixPos = 0
			if len(o.stamp) == 0 {
				// Host-delivery branch: nothing to re-stamp.
				o.phase = opPayload
			} else {
				o.phase = opPrefix
				resumed = true
			}
			if s.f.rec != nil {
				s.f.emit(now, trace.EvResume, s.node, oi, in.worm.ID, 0)
			}
		}
	}
	if resumed {
		return // prefixes flow next tick
	}
	// Stage 4: every branch streaming and ready — advance the shared worm.
	if in.fill == 0 {
		return
	}
	fl := in.pop()
	for _, oi := range in.outs {
		o := &s.out[oi]
		// Re-tag with the branch's outgoing lane, as the unicast relay does.
		bf := fl
		bf.VC = o.vc
		o.link.send(now, bf)
		o.idleTicks = 0
		s.f.ctr.FlitsCarried++
	}
	s.f.moved = true
	if fl.Kind == flit.Tail {
		if s.f.rec != nil {
			s.f.emit(now, trace.EvTailDrained, s.node, in.idx, fl.W.ID, int64(len(in.outs)))
		}
		for _, oi := range in.outs {
			s.out[oi].unbind()
		}
		s.nBoundOuts -= len(in.outs)
		in.setMode(pmIdle)
		in.worm = nil
		in.outs = in.outs[:0]
	}
}
