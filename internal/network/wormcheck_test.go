//go:build wormcheck

package network

import (
	"strings"
	"testing"

	"wormlan/internal/topology"
)

// mustWormfail runs fn and asserts wormcheckTick panics with a message
// containing frag.
func mustWormfail(t *testing.T, r *rig, frag string, fn func()) {
	t.Helper()
	defer func() {
		p := recover()
		if p == nil {
			t.Fatalf("wormcheck did not detect corruption (want panic containing %q)", frag)
		}
		msg, ok := p.(string)
		if !ok || !strings.Contains(msg, frag) {
			t.Fatalf("wormcheck panic = %v, want message containing %q", p, frag)
		}
	}()
	fn()
	r.f.wormcheckTick(r.k.Now())
}

// TestWormcheckDetectsCorruption deliberately desynchronizes each class of
// derived state and asserts the checker catches it: a checker that cannot
// fail proves nothing.
func TestWormcheckDetectsCorruption(t *testing.T) {
	build := func() *rig {
		r := newRig(t, topology.Line(2, 1), Config{})
		hosts := r.g.Hosts()
		if err := r.f.Inject(hosts[0], r.unicast(t, hosts[0], hosts[1], 64)); err != nil {
			t.Fatal(err)
		}
		r.run(t, 10) // mid-flight: links occupied, a switch lane streaming
		return r
	}

	t.Run("clean", func(t *testing.T) {
		r := build()
		r.f.wormcheckTick(r.k.Now()) // must not panic
	})
	t.Run("link-inflight", func(t *testing.T) {
		r := build()
		mustWormfail(t, r, "occupied slots", func() { r.f.links[0].inFlight++ })
	})
	t.Run("ctrl-ones", func(t *testing.T) {
		r := build()
		mustWormfail(t, r, "ctrlOnes", func() { r.f.links[0].ctrlOnes[0]++ })
	})
	t.Run("wish-count", func(t *testing.T) {
		r := build()
		var s *swState
		for _, c := range r.f.sw {
			if c != nil {
				s = c
				break
			}
		}
		mustWormfail(t, r, "wishPorts", func() { s.wishPorts++ })
	})
	t.Run("bound-count", func(t *testing.T) {
		r := build()
		var s *swState
		for _, c := range r.f.sw {
			if c != nil && s == nil {
				s = c
			}
		}
		mustWormfail(t, r, "nBoundOuts", func() { s.nBoundOuts++ })
	})
	t.Run("rx-busy", func(t *testing.T) {
		r := build()
		mustWormfail(t, r, "rxBusy", func() { r.f.rxBusy++ })
	})
	t.Run("slack-window", func(t *testing.T) {
		r := build()
		var in *inPort
		for _, c := range r.f.sw {
			if c == nil {
				continue
			}
			for pi := range c.in {
				if c.in[pi].cap > 0 {
					in = &c.in[pi]
					break
				}
			}
			if in != nil {
				break
			}
		}
		if in == nil {
			t.Fatal("no slack-backed lane found")
		}
		mustWormfail(t, r, "not zeroed", func() {
			i := in.head + in.fill
			if i >= in.cap {
				i -= in.cap
			}
			in.slack[i].B = 0xAA
		})
	})
}
