package network

import (
	"fmt"

	"wormlan/internal/flit"
	"wormlan/internal/topology"
)

// dlink is one direction of a full-duplex cable.  The forward channel is a
// pipeline of delay byte-slots; the reverse channel carries the STOP/GO
// state of the downstream slack buffer with the same propagation delay
// (Myrinet sends STOP and GO control symbols on the paired return line).
// With virtual channels (Config.NumVCs > 1) the same physical wire is
// time-multiplexed between lanes: each forward slot carries one flit tagged
// with its lane, and each reverse slot carries a per-lane STOP bitmask.
// The field order groups everything the per-tick hot paths touch — flags,
// the pipeline slices, the slot class, and the flit counters — at the
// front, so delivery and send stay within the first cachelines; the
// identity fields used only for construction, stats snapshots, and traces
// sit at the end.
type dlink struct {
	f *Fabric

	// active mirrors the link's presence in Fabric.linkAct (see active.go).
	active bool
	// dead marks a failed link (explicitly, or because an endpoint switch
	// crashed).  A dead link black-holes everything sent into it: flits are
	// counted as dropped rather than delivered, and senders drain their
	// worms instead of wedging behind a STOP that would never clear.
	dead bool
	// stopMask is the delayed view of the downstream per-lane STOP state,
	// as currently visible at the sending end: bit v set means lane v is
	// stopped.  With NumVCs == 1 only bit 0 is ever used and the mask is
	// exactly the scalar stop-at-sender flag of the VC-free fabric.
	stopMask uint8

	// grantTick/grantVC cache the lane-scheduler decision for this link at
	// grantTick (see swState.laneGrant): the wire carries at most one flit
	// per tick, so the granted lane is computed once and shared by every
	// lane's transmit visit.  The grant is a pure function of the current
	// tick and port state, so it needs no repair on fast-forward or replay.
	grantTick int64
	grantVC   int8

	// dc indexes Fabric.delaySlots: the link's pipeline slot for the
	// current tick, computed once per distinct delay value per tick
	// instead of a 64-bit modulo at every use.
	dc    int
	delay int

	// pipe[s]/occ[s] hold the flit written at a tick with now%delay == s;
	// it is delivered exactly delay ticks later when the slot index comes
	// around again.
	pipe []flit.Flit
	occ  []bool
	// ctrl[s] carries the downstream per-lane STOP wishes written at slot
	// s (bit v = lane v), read by the sender delay ticks later.
	ctrl []uint8
	// ctrlOnes[v] counts STOP bits for lane v currently in the ctrl ring;
	// ctrlTrues is their sum.  The link must keep ticking until the ring
	// is uniformly GO again (ctrlTrues == 0), or a stale STOP could be
	// (mis)read after an idle period; a lane's reverse channel has settled
	// when its count is 0 or delay.
	ctrlOnes  [4]int32
	ctrlTrues int
	// inFlight counts occupied pipeline slots, so the fabric knows the
	// link still holds data even when no slot is due for delivery.
	inFlight int

	// Exactly one of dstIns/dstHost is non-nil: the resolved delivery
	// target, cached at construction so the per-flit delivery path skips
	// the node-indexed lookups.  dstIns holds the NumVCs input-port lanes
	// of the receiving switch port; a flit is delivered to dstIns[fl.VC].
	dstIns  []inPort
	dstHost *hostIf

	// carried counts flits that have crossed this link (utilization);
	// stalled counts ticks a bound sender was held by STOP backpressure.
	carried int64
	stalled int64

	// id is the link's index in Fabric.links (and its active-bitmap bit).
	id int

	srcNode topology.NodeID
	srcPort topology.PortID
	dstNode topology.NodeID
	dstPort topology.PortID
}

// stopped reports whether lane vc is STOP-backpressured as seen from the
// sending end.
func (l *dlink) stopped(vc uint8) bool { return l.stopMask>>vc&1 != 0 }

// send places a flit on the wire at the given tick.  The caller must send
// at most one flit per link per tick — across all lanes; a second send is
// a model bug.
func (l *dlink) send(now int64, fl flit.Flit) {
	if l.dead {
		// Black hole: the flit falls off the broken cable.  When the tail
		// goes in, the whole worm copy is gone.
		l.f.ctr.FlitsDropped++
		if fl.Kind == flit.Tail {
			l.f.dropWorm(fl.W)
		}
		return
	}
	slot := l.f.delaySlots[l.dc]
	if l.occ[slot] {
		panic(fmt.Sprintf("network: double send on link %d.%d->%d.%d at t=%d",
			l.srcNode, l.srcPort, l.dstNode, l.dstPort, now))
	}
	l.pipe[slot] = fl
	l.occ[slot] = true
	l.carried++
	l.inFlight++
	l.f.activateLink(l)
}

// LinkStat reports per-link utilization.
type LinkStat struct {
	Src     topology.NodeID
	SrcPort topology.PortID
	Dst     topology.NodeID
	DstPort topology.PortID
	Carried int64
}

// LinkStats returns a snapshot of per-directional-link flit counts, in
// deterministic construction order.
//
//wormlint:alloc end-of-run statistics snapshot, not on the tick path
func (f *Fabric) LinkStats() []LinkStat {
	out := make([]LinkStat, len(f.links))
	for i, l := range f.links {
		out[i] = LinkStat{
			Src: l.srcNode, SrcPort: l.srcPort,
			Dst: l.dstNode, DstPort: l.dstPort,
			Carried: l.carried,
		}
	}
	return out
}
