package network

import (
	"fmt"

	"wormlan/internal/flit"
	"wormlan/internal/topology"
)

// dlink is one direction of a full-duplex cable.  The forward channel is a
// pipeline of delay byte-slots; the reverse channel carries the STOP/GO
// state of the downstream slack buffer with the same propagation delay
// (Myrinet sends STOP and GO control symbols on the paired return line).
// The field order groups everything the per-tick hot paths touch — flags,
// the pipeline slices, the slot class, and the flit counters — at the
// front, so delivery and send stay within the first cachelines; the
// identity fields used only for construction, stats snapshots, and traces
// sit at the end.
type dlink struct {
	f *Fabric

	// active mirrors the link's presence in Fabric.linkAct (see active.go).
	active bool
	// dead marks a failed link (explicitly, or because an endpoint switch
	// crashed).  A dead link black-holes everything sent into it: flits are
	// counted as dropped rather than delivered, and senders drain their
	// worms instead of wedging behind a STOP that would never clear.
	dead bool
	// stopAtSender is the delayed view of the downstream STOP state, as
	// currently visible at the sending end.
	stopAtSender bool

	// dc indexes Fabric.delaySlots: the link's pipeline slot for the
	// current tick, computed once per distinct delay value per tick
	// instead of a 64-bit modulo at every use.
	dc    int
	delay int

	// pipe[s]/occ[s] hold the flit written at a tick with now%delay == s;
	// it is delivered exactly delay ticks later when the slot index comes
	// around again.
	pipe []flit.Flit
	occ  []bool
	// ctrl[s] carries the downstream STOP wish written at slot s, read by
	// the sender delay ticks later.
	ctrl []bool
	// ctrlTrues counts STOP entries currently in the ctrl ring; the link
	// must keep ticking until the ring is uniformly GO again, or a stale
	// STOP could be (mis)read after an idle period.
	ctrlTrues int
	// inFlight counts occupied pipeline slots, so the fabric knows the
	// link still holds data even when no slot is due for delivery.
	inFlight int

	// Exactly one of dstIn/dstHost is non-nil: the resolved delivery target,
	// cached at construction so the per-flit delivery path skips the
	// node-indexed lookups.
	dstIn   *inPort
	dstHost *hostIf

	// carried counts flits that have crossed this link (utilization);
	// stalled counts ticks a bound sender was held by STOP backpressure.
	carried int64
	stalled int64

	// id is the link's index in Fabric.links (and its active-bitmap bit).
	id int

	srcNode topology.NodeID
	srcPort topology.PortID
	dstNode topology.NodeID
	dstPort topology.PortID
}

// send places a flit on the wire at the given tick.  The caller must send
// at most one flit per link per tick; a second send is a model bug.
func (l *dlink) send(now int64, fl flit.Flit) {
	if l.dead {
		// Black hole: the flit falls off the broken cable.  When the tail
		// goes in, the whole worm copy is gone.
		l.f.ctr.FlitsDropped++
		if fl.Kind == flit.Tail {
			l.f.dropWorm(fl.W)
		}
		return
	}
	slot := l.f.delaySlots[l.dc]
	if l.occ[slot] {
		panic(fmt.Sprintf("network: double send on link %d.%d->%d.%d at t=%d",
			l.srcNode, l.srcPort, l.dstNode, l.dstPort, now))
	}
	l.pipe[slot] = fl
	l.occ[slot] = true
	l.carried++
	l.inFlight++
	l.f.activateLink(l)
}

// LinkStat reports per-link utilization.
type LinkStat struct {
	Src     topology.NodeID
	SrcPort topology.PortID
	Dst     topology.NodeID
	DstPort topology.PortID
	Carried int64
}

// LinkStats returns a snapshot of per-directional-link flit counts, in
// deterministic construction order.
//
//wormlint:alloc end-of-run statistics snapshot, not on the tick path
func (f *Fabric) LinkStats() []LinkStat {
	out := make([]LinkStat, len(f.links))
	for i, l := range f.links {
		out[i] = LinkStat{
			Src: l.srcNode, SrcPort: l.srcPort,
			Dst: l.dstNode, DstPort: l.dstPort,
			Carried: l.carried,
		}
	}
	return out
}
