package network

import (
	"fmt"

	"wormlan/internal/flit"
	"wormlan/internal/topology"
)

// dlink is one direction of a full-duplex cable.  The forward channel is a
// pipeline of delay byte-slots; the reverse channel carries the STOP/GO
// state of the downstream slack buffer with the same propagation delay
// (Myrinet sends STOP and GO control symbols on the paired return line).
type dlink struct {
	f     *Fabric
	delay int

	// pipe[s]/occ[s] hold the flit written at a tick with now%delay == s;
	// it is delivered exactly delay ticks later when the slot index comes
	// around again.
	pipe []flit.Flit
	occ  []bool
	// ctrl[s] carries the downstream STOP wish written at slot s, read by
	// the sender delay ticks later.
	ctrl []bool

	srcNode topology.NodeID
	srcPort topology.PortID
	dstNode topology.NodeID
	dstPort topology.PortID

	// stopAtSender is the delayed view of the downstream STOP state, as
	// currently visible at the sending end.
	stopAtSender bool

	// carried counts flits that have crossed this link (utilization);
	// stalled counts ticks a bound sender was held by STOP backpressure.
	carried int64
	stalled int64
	// inFlight counts occupied pipeline slots, so the fabric knows the
	// link still holds data even when no slot is due for delivery.
	inFlight int

	// dead marks a failed link (explicitly, or because an endpoint switch
	// crashed).  A dead link black-holes everything sent into it: flits are
	// counted as dropped rather than delivered, and senders drain their
	// worms instead of wedging behind a STOP that would never clear.
	dead bool
}

// send places a flit on the wire at the given tick.  The caller must send
// at most one flit per link per tick; a second send is a model bug.
func (l *dlink) send(now int64, fl flit.Flit) {
	if l.dead {
		// Black hole: the flit falls off the broken cable.  When the tail
		// goes in, the whole worm copy is gone.
		l.f.ctr.FlitsDropped++
		if fl.Kind == flit.Tail {
			l.f.dropWorm(fl.W)
		}
		return
	}
	slot := int(now % int64(l.delay))
	if l.occ[slot] {
		panic(fmt.Sprintf("network: double send on link %d.%d->%d.%d at t=%d",
			l.srcNode, l.srcPort, l.dstNode, l.dstPort, now))
	}
	l.pipe[slot] = fl
	l.occ[slot] = true
	l.carried++
	l.inFlight++
}

// LinkStat reports per-link utilization.
type LinkStat struct {
	Src     topology.NodeID
	SrcPort topology.PortID
	Dst     topology.NodeID
	DstPort topology.PortID
	Carried int64
}

// LinkStats returns a snapshot of per-directional-link flit counts, in
// deterministic construction order.
func (f *Fabric) LinkStats() []LinkStat {
	out := make([]LinkStat, len(f.links))
	for i, l := range f.links {
		out[i] = LinkStat{
			Src: l.srcNode, SrcPort: l.srcPort,
			Dst: l.dstNode, DstPort: l.dstPort,
			Carried: l.carried,
		}
	}
	return out
}
