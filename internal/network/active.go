package network

import "math/bits"

// Active-element tracking for the fabric hot path.
//
// The fabric tick historically scanned every link, switch, and host each
// byte-time; on large topologies almost all of that scan is idle elements
// whose per-tick phase body is a provable no-op.  Each element class now
// carries a bitmap of indices with pending work, and Fabric.Tick iterates
// only set bits, in ascending index order — the same order as the full
// scan, so determinism is unaffected.
//
// The membership rules are chosen so that an element *outside* its set is
// exactly a no-op under the original full scan:
//
//   - link: no flit in flight, reverse-channel ring uniformly GO
//     (ctrlTrues == 0), and the sender-side delayed STOP view already GO.
//     Such a link delivers nothing, and its per-tick ctrl read would
//     assign false over false.
//   - switch: every input port empty, idle, with no STOP wish, every
//     live input link's ctrl ring clean, and no bound outputs.  route,
//     transmit, and the STOP/GO publish phase are all no-ops.
//   - host: no current stream and an empty inject queue; transmit
//     returns immediately.  The receive side is passive (driven by link
//     deliveries), so a receiving-only host needs no bit; the fabric
//     tracks in-progress receptions in the rxBusy counter instead.
//
// Elements re-enter their set at the state transitions that falsify the
// rules: dlink.send, a STOP written into a clean ring, inPort.receive,
// and Fabric.Inject.  Fault paths (kill/revive/wipe) maintain the sets
// explicitly.  A STOP episode keeps its link and downstream switch active
// for up to one extra propagation delay after traffic ceases — the
// cooldown during which the original scan was still overwriting stale
// STOP values in the ring — which preserves byte-identical behaviour even
// across fabric idle periods that freeze a ring mid-flight.
type bitset struct {
	words []uint64
}

func newBitset(n int) bitset { return bitset{words: make([]uint64, (n+63)/64)} }

func (b *bitset) set(i int)   { b.words[i>>6] |= 1 << uint(i&63) }
func (b *bitset) clear(i int) { b.words[i>>6] &^= 1 << uint(i&63) }

// forEach calls fn for every set bit in ascending order.  fn may clear the
// current bit or set bits in *other* bitsets; mutations of later words of
// the same bitset during iteration are visible, mutations within the word
// being iterated are not (the word is walked from a snapshot).  All Tick
// phases only clear the current element's own bit, so the snapshot is safe.
func (b *bitset) forEach(fn func(i int)) {
	for wi, w := range b.words {
		for w != 0 {
			fn(wi<<6 + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// has reports whether bit i is set.
func (b *bitset) has(i int) bool { return b.words[i>>6]&(1<<uint(i&63)) != 0 }

// empty reports whether no bit is set.
func (b *bitset) empty() bool {
	for _, w := range b.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// anyAndNot reports whether (b | c) &^ d has any set bit.  Used for the
// per-switch "any live port occupied" test in the STOP/GO publish phase.
func anyAndNot(b, c, d *bitset) bool {
	for wi := range b.words {
		if (b.words[wi]|c.words[wi])&^d.words[wi] != 0 {
			return true
		}
	}
	return false
}

// anyOr reports whether b | c has any set bit.
func anyOr(b, c *bitset) bool {
	for wi := range b.words {
		if b.words[wi]|c.words[wi] != 0 {
			return true
		}
	}
	return false
}

// forEachFrom calls fn for every set bit, starting at bit `start` and
// wrapping around — the rotated scan order used by switch arbitration.
// Same snapshot semantics as forEach.
func (b *bitset) forEachFrom(start int, fn func(i int)) {
	sw := start >> 6
	mask := ^uint64(0) << uint(start&63)
	for wi := sw; wi < len(b.words); wi++ {
		w := b.words[wi] & mask
		mask = ^uint64(0)
		for w != 0 {
			fn(wi<<6 + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
	if start == 0 {
		return
	}
	for wi := 0; wi <= sw && wi < len(b.words); wi++ {
		w := b.words[wi]
		if wi == sw {
			w &= (1 << uint(start&63)) - 1
		}
		for w != 0 {
			fn(wi<<6 + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

func (f *Fabric) activateLink(l *dlink) {
	if !l.active {
		l.active = true
		f.linkAct.set(l.id)
	}
}

func (f *Fabric) deactivateLink(l *dlink) {
	if l.active {
		l.active = false
		f.linkAct.clear(l.id)
	}
}

func (f *Fabric) activateSwitch(s *swState) {
	if !s.active {
		s.active = true
		f.swAct.set(int(s.node))
	}
}

func (f *Fabric) activateHost(h *hostIf) {
	if !h.active {
		h.active = true
		f.hostAct.set(int(h.node))
	}
}
