package network

import (
	"fmt"
	"strings"

	"wormlan/internal/flit"
	"wormlan/internal/topology"
)

// StallReport renders a human-readable snapshot of every port holding or
// waiting for resources — the first thing to look at when the fabric
// deadlocks.  Deadlocked configurations show a cycle of pmWait inputs whose
// requested outputs are bound to worms that are themselves backpressured.
func (f *Fabric) StallReport() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fabric stall report at t=%d (last movement t=%d)\n", f.K.Now(), f.lastMove)
	for _, s := range f.sw {
		if s == nil {
			continue
		}
		for pi := range s.in {
			in := &s.in[pi]
			if in.mode == pmIdle && in.fill == 0 {
				continue
			}
			fmt.Fprintf(&b, "  switch %d in[%d]: mode=%v fill=%d", s.node, pi, in.mode, in.fill)
			if in.worm != nil {
				fmt.Fprintf(&b, " worm=%d(%s)", in.worm.ID, in.worm.Mode)
			}
			if in.mode == pmWait {
				fmt.Fprintf(&b, " wants=%v", in.reqOuts)
			}
			if len(in.outs) > 0 && (in.mode == pmBoundUni || in.mode == pmBoundMC) {
				fmt.Fprintf(&b, " holds=%v", in.outs)
			}
			b.WriteByte('\n')
		}
		for oi := range s.out {
			o := &s.out[oi]
			if o.boundIn < 0 {
				continue
			}
			fmt.Fprintf(&b, "  switch %d out[%d]: bound to in[%d] phase=%d stopped=%v idle=%d\n",
				s.node, oi, o.boundIn, o.phase, o.link.stopped(o.vc), o.idleTicks)
		}
	}
	for _, h := range f.hosts {
		if h == nil {
			continue
		}
		if h.cur != nil || h.qlen() > 0 {
			fmt.Fprintf(&b, "  host %d: sending=%v queued=%d stopped=%v\n",
				h.node, h.cur != nil, h.qlen(), h.outLink.stopped(0))
		}
	}
	return b.String()
}

// String names the port mode for diagnostics.
func (m portMode) String() string {
	switch m {
	case pmIdle:
		return "idle"
	case pmCollect:
		return "collect"
	case pmWait:
		return "wait"
	case pmBoundUni:
		return "unicast"
	case pmBoundMC:
		return "multicast"
	case pmFlush:
		return "flush"
	case pmDrop:
		return "drop"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}

// HeldChannels returns, for diagnosis and deadlock tests, the set of
// (switch, output port) pairs currently bound to each in-flight worm.
//
//wormlint:alloc diagnostic snapshot, built on demand, never on the tick path
func (f *Fabric) HeldChannels() map[*flit.Worm][]struct {
	Switch topology.NodeID
	Port   topology.PortID
} {
	out := make(map[*flit.Worm][]struct {
		Switch topology.NodeID
		Port   topology.PortID
	})
	for _, s := range f.sw {
		if s == nil {
			continue
		}
		for oi := range s.out {
			o := &s.out[oi]
			if o.boundIn < 0 {
				continue
			}
			w := s.in[o.boundIn].worm
			if w == nil {
				continue
			}
			// Report the physical port (lane index / nvc), the unit the
			// topology and the deadlock tests reason about.
			out[w] = append(out[w], struct {
				Switch topology.NodeID
				Port   topology.PortID
			}{s.node, topology.PortID(oi / f.nvc)})
		}
	}
	return out
}
