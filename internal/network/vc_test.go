package network

import (
	"testing"

	"wormlan/internal/des"
	"wormlan/internal/flit"
	"wormlan/internal/route"
	"wormlan/internal/topology"
)

// vcGraph builds the two-switch dumbbell used by the VC conformance
// tests: hosts a, b, e attach to s0 (ports 1..3), hosts c, d to s1
// (ports 1..2), and port 0 of each switch is the shared trunk.
func vcGraph() (g *topology.Graph, s0, s1 topology.NodeID, hosts map[string]topology.NodeID) {
	g = topology.New()
	s0 = g.AddSwitch("s0")
	s1 = g.AddSwitch("s1")
	g.Connect(s0, s1, 1)
	hosts = map[string]topology.NodeID{}
	for _, n := range []string{"a", "b", "e"} {
		hosts[n] = g.AddHost(n)
		g.Connect(s0, hosts[n], 1)
	}
	for _, n := range []string{"c", "d"} {
		hosts[n] = g.AddHost(n)
		g.Connect(s1, hosts[n], 1)
	}
	return g, s0, s1, hosts
}

// vcWorm builds a unicast worm whose hop bytes carry explicit (port, vc)
// pairs, bypassing the routing table.
func vcWorm(t *testing.T, src, dst topology.NodeID, payload int, hops ...[2]int) *flit.Worm {
	t.Helper()
	ports := make([]topology.PortID, len(hops))
	for i, h := range hops {
		b, err := route.EncodeVCPort(topology.PortID(h[0]), h[1])
		if err != nil {
			t.Fatal(err)
		}
		ports[i] = topology.PortID(b)
	}
	h, err := route.EncodeUnicast(ports)
	if err != nil {
		t.Fatal(err)
	}
	wormIDs++
	return &flit.Worm{ID: wormIDs, Src: src, Dst: dst, Mode: flit.Unicast,
		Group: -1, Header: h, PayloadLen: payload}
}

// deliveryTime returns when the worm addressed to dst landed, or -1.
func (r *rig) deliveryTime(dst topology.NodeID) des.Time {
	for _, d := range r.deliveries {
		if d.Host == dst {
			return d.At
		}
	}
	return -1
}

// runVCContention drives the shared-trunk contention scenario at a given
// lane count and returns the delivery time of the short e->c worm.  Worm 1
// (a->d) streams first; worm 2 (b->d) queues behind it for the d port and
// backpressures the trunk's lane 0; worm 3 (e->c) rides the lane given by
// lane3 and is the probe.
func runVCContention(t *testing.T, nvc, lane3 int) (cAt des.Time, r *rig) {
	t.Helper()
	g, _, _, hosts := vcGraph()
	r = newRig(t, g, Config{NumVCs: nvc, VCHeaders: true})
	w1 := vcWorm(t, hosts["a"], hosts["d"], 300, [2]int{0, 0}, [2]int{2, 0})
	w2 := vcWorm(t, hosts["b"], hosts["d"], 300, [2]int{0, 0}, [2]int{2, 0})
	w3 := vcWorm(t, hosts["e"], hosts["c"], 50, [2]int{0, lane3}, [2]int{1, 0})
	if err := r.f.Inject(hosts["a"], w1); err != nil {
		t.Fatal(err)
	}
	r.k.At(5, func() {
		if err := r.f.Inject(hosts["b"], w2); err != nil {
			t.Fatal(err)
		}
	})
	r.k.At(10, func() {
		if err := r.f.Inject(hosts["e"], w3); err != nil {
			t.Fatal(err)
		}
	})
	r.run(t, 0)
	if len(r.deliveries) != 3 {
		t.Fatalf("nvc=%d: %d deliveries, want 3", nvc, len(r.deliveries))
	}
	if got := r.f.Counters(); got.Injected != 3 || got.Delivered != 3 {
		t.Fatalf("nvc=%d: counters %+v", nvc, got)
	}
	return r.deliveryTime(hosts["c"]), r
}

// TestVCLaneBypassesBlockedSibling is the core per-VC STOP/GO conformance
// check: when lane 0 of the trunk is backpressured by a worm blocked on
// the far switch, a short worm on lane 1 still cuts through promptly,
// whereas with a single lane it serializes behind the whole pile-up.
func TestVCLaneBypassesBlockedSibling(t *testing.T) {
	fast, _ := runVCContention(t, 2, 1)
	slow, _ := runVCContention(t, 1, 0)
	// The lane-1 probe shares the trunk wire flit-by-flit with worm 1, so
	// it lands within a few hundred byte-times; the single-lane probe
	// waits for both 300-byte worms to clear the d port first.
	if fast >= slow {
		t.Fatalf("lane-1 probe at t=%d, single-lane probe at t=%d: VCs bought nothing", fast, slow)
	}
	if slow-fast < 250 {
		t.Fatalf("probe separation only %d byte-times (fast=%d slow=%d): lane 0 backpressure did not stall the single-lane probe", slow-fast, fast, slow)
	}
}

// TestVCLaneZeroStillBlocks: the same probe on lane 0 of a 2-lane fabric
// behaves like the single-lane run — per-lane STOP applies to the lane the
// worm actually rides, not to the physical wire.
func TestVCLaneZeroStillBlocks(t *testing.T) {
	onZero, _ := runVCContention(t, 2, 0)
	single, _ := runVCContention(t, 1, 0)
	if onZero != single {
		t.Fatalf("lane-0 probe on 2-lane fabric at t=%d, single-lane at t=%d: want identical", onZero, single)
	}
}

// TestVCInterleavedWormsBothDeliver: two worms streaming concurrently on
// different lanes of one wire both arrive intact, and the wire carries at
// most one flit per tick (FlitsCarried accounts each hop once).
func TestVCInterleavedWormsBothDeliver(t *testing.T) {
	g, _, _, hosts := vcGraph()
	r := newRig(t, g, Config{NumVCs: 2, VCHeaders: true})
	w1 := vcWorm(t, hosts["a"], hosts["c"], 120, [2]int{0, 0}, [2]int{1, 0})
	w2 := vcWorm(t, hosts["b"], hosts["d"], 120, [2]int{0, 1}, [2]int{2, 0})
	if err := r.f.Inject(hosts["a"], w1); err != nil {
		t.Fatal(err)
	}
	if err := r.f.Inject(hosts["b"], w2); err != nil {
		t.Fatal(err)
	}
	r.run(t, 0)
	if len(r.deliveries) != 2 {
		t.Fatalf("%d deliveries, want 2", len(r.deliveries))
	}
	for _, d := range r.deliveries {
		if d.Worm.PayloadLen != 120 {
			t.Fatalf("payload %d delivered, want 120", d.Worm.PayloadLen)
		}
	}
	// Both worms alone would take ~(2 header + 120 + tail) + crossings;
	// sharing one wire flit-by-flit roughly doubles the stream time, so
	// the later delivery must land well past the solo latency.
	solo := des.Time(123 + 3)
	last := r.deliveries[1].At
	if r.deliveries[0].At > last {
		last = r.deliveries[0].At
	}
	if last <= solo+60 {
		t.Fatalf("last delivery at t=%d: lanes did not share the wire (solo latency %d)", last, solo)
	}
}

// TestKillLinkDropsWormOnUpperLane is the regression test for in-flight
// attribution under VCs: a worm streaming on lane 1 when its link dies
// must be dropped and counted, exactly once, even though lane 0 is idle.
func TestKillLinkDropsWormOnUpperLane(t *testing.T) {
	g, s0, _, hosts := vcGraph()
	r := newRig(t, g, Config{NumVCs: 2, VCHeaders: true})
	w := vcWorm(t, hosts["b"], hosts["d"], 100, [2]int{0, 1}, [2]int{2, 0})
	if err := r.f.Inject(hosts["b"], w); err != nil {
		t.Fatal(err)
	}
	r.k.At(20, func() {
		if err := r.f.FailLink(s0, 0); err != nil {
			t.Fatal(err)
		}
	})
	r.run(t, 0)
	c := r.f.Counters()
	if c.WormsDropped != 1 {
		t.Fatalf("WormsDropped = %d, want 1 (counters %+v)", c.WormsDropped, c)
	}
	if c.Delivered != 0 || len(r.deliveries) != 0 {
		t.Fatalf("worm delivered through a dead link: %+v", c)
	}
	if c.Injected != c.Delivered+c.WormsDropped {
		t.Fatalf("conservation violated: %+v", c)
	}
	if held := r.f.HeldChannels(); len(held) != 0 {
		t.Fatalf("%d held channels after kill", len(held))
	}
}

// TestKillLinkDropsBothLanes: worms mid-flight on BOTH lanes of the dying
// link are each attributed — the per-physical-pipe accounting bug dropped
// only lane 0's copy.
func TestKillLinkDropsBothLanes(t *testing.T) {
	g, s0, _, hosts := vcGraph()
	r := newRig(t, g, Config{NumVCs: 2, VCHeaders: true})
	w1 := vcWorm(t, hosts["a"], hosts["c"], 100, [2]int{0, 0}, [2]int{1, 0})
	w2 := vcWorm(t, hosts["b"], hosts["d"], 100, [2]int{0, 1}, [2]int{2, 0})
	if err := r.f.Inject(hosts["a"], w1); err != nil {
		t.Fatal(err)
	}
	if err := r.f.Inject(hosts["b"], w2); err != nil {
		t.Fatal(err)
	}
	r.k.At(20, func() {
		if err := r.f.FailLink(s0, 0); err != nil {
			t.Fatal(err)
		}
	})
	r.run(t, 0)
	c := r.f.Counters()
	if c.WormsDropped != 2 {
		t.Fatalf("WormsDropped = %d, want 2 (counters %+v)", c.WormsDropped, c)
	}
	if c.Injected != c.Delivered+c.WormsDropped {
		t.Fatalf("conservation violated: %+v", c)
	}
	if held := r.f.HeldChannels(); len(held) != 0 {
		t.Fatalf("%d held channels after kill", len(held))
	}
}

// TestVCMulticastForkPerBranchLanes: a VC-headered fabric carries tree
// worms, with every fork branch riding its own (port, lane) pair.  The
// multicast forks at s0 toward local host b (lane 0) and across the trunk
// on lane 1 toward d, while a concurrent unicast holds the trunk's lane 0 —
// per-branch lane state keeps the copies independent and all three
// deliveries land intact.
func TestVCMulticastForkPerBranchLanes(t *testing.T) {
	g, _, _, hosts := vcGraph()
	r := newRig(t, g, Config{NumVCs: 2, VCHeaders: true})
	trunkL1, err := route.EncodeVCPort(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	tree := &route.Tree{Branches: []route.Branch{
		{Port: 2}, // host b: same-switch leaf, lane 0
		{Port: topology.PortID(trunkL1), Sub: &route.Tree{Branches: []route.Branch{
			{Port: 2}, // host d: leaf at s1, lane 0
		}}},
	}}
	h, err := route.Encode(tree)
	if err != nil {
		t.Fatal(err)
	}
	wormIDs++
	mc := &flit.Worm{ID: wormIDs, Src: hosts["a"], Dst: topology.None, Group: 0,
		Mode: flit.MulticastTree, Header: h, PayloadLen: 200}
	uni := vcWorm(t, hosts["e"], hosts["c"], 200, [2]int{0, 0}, [2]int{1, 0})
	if err := r.f.Inject(hosts["a"], mc); err != nil {
		t.Fatal(err)
	}
	if err := r.f.Inject(hosts["e"], uni); err != nil {
		t.Fatal(err)
	}
	r.run(t, 0)
	got := r.deliveredHosts()
	for _, n := range []string{"b", "c", "d"} {
		if got[hosts[n]] != 1 {
			t.Fatalf("host %s received %d copies (all: %v)", n, got[hosts[n]], got)
		}
	}
	for _, d := range r.deliveries {
		if d.Worm.PayloadLen != 200 {
			t.Fatalf("payload %d delivered, want 200", d.Worm.PayloadLen)
		}
	}
	c := r.f.Counters()
	if c.Injected != 2 || c.Delivered != 3 || c.WormsDropped != 0 {
		t.Fatalf("counters %+v", c)
	}
	if held := r.f.HeldChannels(); len(held) != 0 {
		t.Fatalf("%d held channels after drain", len(held))
	}
}

// ffRun drives one long worm through the dumbbell with a mid-route lane
// switch (trunk on lane 1, host hop on lane 0 — the dateline shape) and
// returns the delivery time, counters, and skip diagnostics.
func ffRun(t *testing.T, disable bool) (at des.Time, c Counters, skips, skipped int64) {
	t.Helper()
	g, _, _, hosts := vcGraph()
	r := newRig(t, g, Config{NumVCs: 2, VCHeaders: true, DisableFastForward: disable})
	w := vcWorm(t, hosts["a"], hosts["c"], 4000, [2]int{0, 1}, [2]int{1, 0})
	if err := r.f.Inject(hosts["a"], w); err != nil {
		t.Fatal(err)
	}
	r.run(t, 0)
	if len(r.deliveries) != 1 {
		t.Fatalf("deliveries=%d", len(r.deliveries))
	}
	skips, skipped = r.f.SkipStats()
	return r.deliveries[0].At, r.f.Counters(), skips, skipped
}

// TestFastForwardExactOnLaneSwitchingWorm: a steady multi-VC stream whose
// route switches lanes mid-path fast-forwards, and the skipping run is
// indistinguishable from the tick-by-tick run.
func TestFastForwardExactOnLaneSwitchingWorm(t *testing.T) {
	atFF, cFF, skips, skipped := ffRun(t, false)
	atSlow, cSlow, s2, _ := ffRun(t, true)
	if skips == 0 || skipped == 0 {
		t.Fatal("fast-forward never engaged on a 4000-byte steady stream")
	}
	if s2 != 0 {
		t.Fatalf("DisableFastForward run skipped %d times", s2)
	}
	if atFF != atSlow {
		t.Fatalf("delivery at t=%d skipping, t=%d tick-by-tick", atFF, atSlow)
	}
	if cFF != cSlow {
		t.Fatalf("counters diverged:\nff:   %+v\nslow: %+v", cFF, cSlow)
	}
}

// TestFastForwardDeclinesOnInterleavedLanes: while two lanes share one
// wire flit-by-flit, the pipe is never lane-uniform and Skip must decline
// every time — fast-forwarding an interleaved wire would corrupt the
// round-robin multiplexing.
func TestFastForwardDeclinesOnInterleavedLanes(t *testing.T) {
	g, _, _, hosts := vcGraph()
	r := newRig(t, g, Config{NumVCs: 2, VCHeaders: true})
	w1 := vcWorm(t, hosts["a"], hosts["c"], 2000, [2]int{0, 0}, [2]int{1, 0})
	w2 := vcWorm(t, hosts["b"], hosts["d"], 2000, [2]int{0, 1}, [2]int{2, 0})
	if err := r.f.Inject(hosts["a"], w1); err != nil {
		t.Fatal(err)
	}
	if err := r.f.Inject(hosts["b"], w2); err != nil {
		t.Fatal(err)
	}
	r.run(t, 0)
	if len(r.deliveries) != 2 {
		t.Fatalf("deliveries=%d", len(r.deliveries))
	}
	if skips, _ := r.f.SkipStats(); skips != 0 {
		t.Fatalf("fast-forward engaged %d times on an interleaved wire", skips)
	}
}
