package network

import (
	"strings"
	"testing"

	"wormlan/internal/des"
	"wormlan/internal/flit"
	"wormlan/internal/topology"
)

// TestSchemeInterruptDeepTree forces an interruption at the first switch
// of a two-level multicast tree: the resumed branch must re-establish its
// downstream bindings through the second switch, and every destination
// must still assemble a complete worm.
func TestSchemeInterruptDeepTree(t *testing.T) {
	// s0 - s1 - s2 chain; hA,hB on s0; hC on s1; hD,hE on s2.
	g := topology.New()
	s0 := g.AddSwitch("s0")
	s1 := g.AddSwitch("s1")
	s2 := g.AddSwitch("s2")
	g.Connect(s0, s1, 1)
	g.Connect(s1, s2, 1)
	hA := g.AddHost("hA")
	hB := g.AddHost("hB")
	hC := g.AddHost("hC")
	hD := g.AddHost("hD")
	hE := g.AddHost("hE")
	g.Connect(s0, hA, 1)
	g.Connect(s0, hB, 1)
	g.Connect(s1, hC, 1)
	g.Connect(s2, hD, 1)
	g.Connect(s2, hE, 1)
	r := newRig(t, g, Config{Scheme: SchemeInterrupt, StopMark: 8, GoMark: 4})

	// Blocker: long unicast hC -> hD occupying s2's port toward hD.
	blocker := r.unicast(t, hC, hD, 800)
	r.f.Inject(hC, blocker)
	// Multicast hA -> {hB, hD, hE}: the hB branch at s0 will be
	// interrupted when the deep branch backpressures through s1.
	mc := r.multicast(t, hA, []topology.NodeID{hB, hD, hE}, 400)
	r.k.At(20, func() { r.f.Inject(hA, mc) })
	r.run(t, 0)

	got := r.deliveredHosts()
	if got[hB] != 1 || got[hD] != 2 || got[hE] != 1 {
		t.Fatalf("deliveries %v", got)
	}
	for _, d := range r.deliveries {
		if d.Worm == mc && d.Host == hB && d.Fragments < 2 {
			t.Fatalf("hB copy not fragmented: %+v", d)
		}
	}
	if r.f.Counters().Fragments == 0 {
		t.Fatal("no fragments counted")
	}
}

// TestTwoMulticastsSequentialOverSharedPorts checks atomic output granting:
// two multicasts wanting overlapping output sets at one switch serialize
// cleanly instead of partially holding each other's ports.
func TestTwoMulticastsSequentialOverSharedPorts(t *testing.T) {
	g := topology.Star(5)
	r := newRig(t, g, Config{})
	hosts := g.Hosts()
	m1 := r.multicast(t, hosts[0], []topology.NodeID{hosts[2], hosts[3], hosts[4]}, 200)
	m2 := r.multicast(t, hosts[1], []topology.NodeID{hosts[2], hosts[3], hosts[4]}, 200)
	r.f.Inject(hosts[0], m1)
	r.f.Inject(hosts[1], m2)
	r.run(t, 0)
	got := r.deliveredHosts()
	for _, h := range hosts[2:] {
		if got[h] != 2 {
			t.Fatalf("host %d received %d copies", h, got[h])
		}
	}
	if r.f.Stalled(100) {
		t.Fatal("overlapping multicasts stalled")
	}
}

func TestHeldChannelsDiagnostic(t *testing.T) {
	g := topology.Star(3)
	r := newRig(t, g, Config{})
	hosts := g.Hosts()
	w1 := r.unicast(t, hosts[0], hosts[2], 400)
	w2 := r.unicast(t, hosts[1], hosts[2], 400)
	r.f.Inject(hosts[0], w1)
	r.f.Inject(hosts[1], w2)
	// Stop mid-flight and inspect who holds what.
	r.run(t, 50)
	held := r.f.HeldChannels()
	if len(held) != 1 {
		t.Fatalf("held worms = %d, want 1 (the granted one)", len(held))
	}
	for w, chans := range held {
		if w != w1 && w != w2 {
			t.Fatal("unknown worm holds a channel")
		}
		if len(chans) != 1 {
			t.Fatalf("worm holds %d channels, want 1", len(chans))
		}
	}
	// Drain fully; nothing should remain held.
	r.run(t, 0)
	if len(r.f.HeldChannels()) != 0 {
		t.Fatal("channels still held after drain")
	}
}

func TestStallReportContents(t *testing.T) {
	g := topology.Star(3)
	r := newRig(t, g, Config{})
	hosts := g.Hosts()
	r.f.Inject(hosts[0], r.unicast(t, hosts[0], hosts[2], 400))
	r.f.Inject(hosts[1], r.unicast(t, hosts[1], hosts[2], 400))
	r.run(t, 40)
	rep := r.f.StallReport()
	for _, want := range []string{"fabric stall report", "holds", "wants"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("stall report missing %q:\n%s", want, rep)
		}
	}
}

func TestFlitConservation(t *testing.T) {
	// Every payload flit injected must be delivered to exactly one host
	// (unicast) with none lost in the fabric.
	g := topology.Torus(3, 3, 1, 1)
	r := newRig(t, g, Config{})
	hosts := g.Hosts()
	wantPayload := 0
	for i := range hosts {
		w := r.unicast(t, hosts[i], hosts[(i+4)%len(hosts)], 100+i*13)
		wantPayload += w.PayloadLen
		r.f.Inject(hosts[i], w)
	}
	r.run(t, 0)
	gotPayload := 0
	for _, d := range r.deliveries {
		gotPayload += d.Worm.PayloadLen
	}
	if gotPayload != wantPayload {
		t.Fatalf("payload delivered %d, injected %d", gotPayload, wantPayload)
	}
	c := r.f.Counters()
	if c.Delivered != int64(len(hosts)) || c.Injected != int64(len(hosts)) {
		t.Fatalf("counters %+v", c)
	}
}

func TestBackToBackMulticastAndUnicastInterleave(t *testing.T) {
	// A host's interface alternating multicast and unicast worms must keep
	// FIFO order per destination and complete everything.
	g := topology.FatTreeish(2, 2, false)
	r := newRig(t, g, Config{})
	hosts := g.Hosts()
	r.f.Inject(hosts[0], r.multicast(t, hosts[0], []topology.NodeID{hosts[1], hosts[2]}, 150))
	r.f.Inject(hosts[0], r.unicast(t, hosts[0], hosts[3], 80))
	r.f.Inject(hosts[0], r.multicast(t, hosts[0], []topology.NodeID{hosts[2], hosts[3]}, 150))
	r.run(t, 0)
	got := r.deliveredHosts()
	if got[hosts[1]] != 1 || got[hosts[2]] != 2 || got[hosts[3]] != 2 {
		t.Fatalf("deliveries %v", got)
	}
}

func TestLongWormMaxSize(t *testing.T) {
	// A 9 KB worm (the LANai limit) crosses a multi-hop path intact.
	g := topology.Line(3, 1)
	r := newRig(t, g, Config{})
	hosts := g.Hosts()
	w := r.unicast(t, hosts[0], hosts[2], flit.MaxWormSize-10)
	if err := r.f.Inject(hosts[0], w); err != nil {
		t.Fatal(err)
	}
	r.run(t, 0)
	if len(r.deliveries) != 1 {
		t.Fatal("max-size worm lost")
	}
	over := r.unicast(t, hosts[0], hosts[2], flit.MaxWormSize)
	if err := r.f.Inject(hosts[0], over); err == nil {
		t.Fatal("worm above the LANai limit accepted")
	}
}

func TestKernelTimeMonotoneThroughDeliveries(t *testing.T) {
	g := topology.Star(4)
	r := newRig(t, g, Config{})
	hosts := g.Hosts()
	for i := 0; i < 3; i++ {
		r.f.Inject(hosts[0], r.unicast(t, hosts[0], hosts[1+i], 60))
	}
	r.run(t, 0)
	var last des.Time
	for _, d := range r.deliveries {
		if d.At < last {
			t.Fatal("deliveries out of time order")
		}
		last = d.At
	}
}
