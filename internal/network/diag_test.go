package network

import (
	"strings"
	"testing"

	"wormlan/internal/topology"
)

func TestHeldChannelsAndStallReportMidFlight(t *testing.T) {
	// A long worm crossing Line(2): freeze the simulation mid-transit and
	// the diagnostics must show exactly the channels the worm holds; after
	// the drain they must be clean.
	g := topology.Line(2, 1)
	r := newRig(t, g, Config{})
	hosts := g.Hosts()
	w := r.unicast(t, hosts[0], hosts[1], 200)
	if err := r.f.Inject(hosts[0], w); err != nil {
		t.Fatal(err)
	}
	r.run(t, 30) // the 203-flit worm is still streaming

	held := r.f.HeldChannels()
	chans := held[w]
	if len(chans) != 2 {
		t.Fatalf("worm holds %d channels mid-flight, want 2 (one per switch): %v", len(chans), chans)
	}
	for _, c := range chans {
		if g.Node(c.Switch).Kind != topology.Switch {
			t.Fatalf("held channel on non-switch node %d", c.Switch)
		}
	}

	rep := r.f.StallReport()
	for _, want := range []string{"mode=unicast", "bound to in[", "sending=true"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("stall report missing %q:\n%s", want, rep)
		}
	}

	r.run(t, 0)
	if held := r.f.HeldChannels(); len(held) != 0 {
		t.Fatalf("channels leaked after drain: %v", held)
	}
	if len(r.deliveries) != 1 {
		t.Fatalf("deliveries = %d", len(r.deliveries))
	}
}

func TestStallReportShowsBlockedWorm(t *testing.T) {
	// Two worms racing for the same output: the loser parks in pmWait and
	// the report must say what it wants.
	g := topology.Star(3)
	r := newRig(t, g, Config{})
	hosts := g.Hosts()
	w1 := r.unicast(t, hosts[0], hosts[2], 300)
	w2 := r.unicast(t, hosts[1], hosts[2], 300)
	if err := r.f.Inject(hosts[0], w1); err != nil {
		t.Fatal(err)
	}
	if err := r.f.Inject(hosts[1], w2); err != nil {
		t.Fatal(err)
	}
	r.run(t, 50) // w1 owns the output to hosts[2]; w2 is waiting

	rep := r.f.StallReport()
	if !strings.Contains(rep, "mode=wait") || !strings.Contains(rep, "wants=") {
		t.Fatalf("stall report does not show the blocked worm:\n%s", rep)
	}
	if len(r.f.HeldChannels()) == 0 {
		t.Fatal("no held channels while a worm owns an output")
	}

	r.run(t, 0)
	if len(r.f.HeldChannels()) != 0 {
		t.Fatal("channels leaked after drain")
	}
	if len(r.deliveries) != 2 {
		t.Fatalf("deliveries = %d", len(r.deliveries))
	}
}

func TestPortModeStrings(t *testing.T) {
	for m, want := range map[portMode]string{
		pmIdle: "idle", pmCollect: "collect", pmWait: "wait",
		pmBoundUni: "unicast", pmBoundMC: "multicast",
		pmFlush: "flush", pmDrop: "drop",
	} {
		if got := m.String(); got != want {
			t.Errorf("portMode %d = %q, want %q", m, got, want)
		}
	}
	if got := portMode(99).String(); got != "mode(99)" {
		t.Errorf("unknown mode = %q", got)
	}
}
