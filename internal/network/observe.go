package network

import (
	"wormlan/internal/des"
	"wormlan/internal/topology"
	"wormlan/internal/trace"
)

// emit forwards one event to the configured recorder.  Callers guard with
// `if f.rec != nil` at the instrumentation site so the disabled path costs
// exactly one predictable branch.
func (f *Fabric) emit(now des.Time, k trace.Kind, node topology.NodeID, port int, worm, arg int64) {
	f.rec.Record(trace.Event{At: now, Kind: k, Node: node, Port: port, Worm: worm, Arg: arg})
}

// wormID returns the ID of the worm the input port is carrying, or 0 when
// the port is between worms (STOP/GO events can fire on an idle port whose
// slack is draining).
func (in *inPort) wormID() int64 {
	if in.worm == nil {
		return 0
	}
	return in.worm.ID
}

// Metrics snapshots the fabric's channel and switch counters.  Channel
// busy/stall counters accumulate unconditionally; the crossbar occupancy
// integral (SwitchStat.BoundTicks and Ticks) is sampled only while
// Config.Metrics is set and reads zero otherwise.  Order is the
// deterministic link construction order and node-ID order.
//
//wormlint:alloc end-of-run metrics snapshot, not on the tick path
func (f *Fabric) Metrics() *trace.Metrics {
	m := &trace.Metrics{Ticks: f.mticks}
	m.Channels = make([]trace.ChannelStat, len(f.links))
	for i, l := range f.links {
		m.Channels[i] = trace.ChannelStat{
			Src: l.srcNode, SrcPort: l.srcPort,
			Dst: l.dstNode, DstPort: l.dstPort,
			Busy: l.carried, Stalled: l.stalled,
		}
	}
	for _, s := range f.sw {
		if s == nil {
			continue
		}
		st := trace.SwitchStat{Node: s.node}
		if f.swBound != nil {
			st.BoundTicks = f.swBound[s.node]
			st.PeakBound = f.swPeak[s.node]
		}
		m.Switches = append(m.Switches, st)
	}
	return m
}
