//go:build wormcheck

// Runtime invariant checker: `go test -tags wormcheck` re-runs the whole
// suite with wormcheckTick auditing the fabric's redundant state at the
// end of every tick.  The static analyzers (internal/lint) prove shape
// properties of the code; this checker proves the incremental indexes the
// hot path trusts — active sets, STOP/GO wish counts, crossbar binding
// counts, ring-buffer occupancy counters — actually agree with the ground
// truth they summarize, on every tick of every scenario the tests drive.
// A divergence panics immediately, at the tick it first exists, instead
// of surfacing thousands of ticks later as a wedged worm or a drifted
// counter.
package network

import (
	"fmt"

	"wormlan/internal/des"
	"wormlan/internal/flit"
)

const wormcheckEnabled = true

// wormcheckTick validates the fabric's derived state against first
// principles.  It runs after phase 4, when every per-tick settling rule
// has had its chance; all checks therefore hold unconditionally here.
func (f *Fabric) wormcheckTick(now des.Time) {
	f.checkLinks(now)
	f.checkSwitches(now)
	f.checkHosts(now)
}

func (f *Fabric) wormfail(now des.Time, format string, args ...any) {
	panic(fmt.Sprintf("network: wormcheck t=%d: %s", now, fmt.Sprintf(format, args...)))
}

// checkLinks: pipeline occupancy counters and reverse-channel STOP counts
// must equal direct recounts of the rings, empty slots must be zeroed,
// and a link still holding state must be in the active set.
func (f *Fabric) checkLinks(now des.Time) {
	for _, l := range f.links {
		if l.dead {
			// killLink wipes everything; reconfirm so a flit can never ride
			// a dead wire into a later revive.
			if l.inFlight != 0 || l.ctrlTrues != 0 || l.stopMask != 0 {
				f.wormfail(now, "dead link %d.%d->%d.%d holds state: inFlight=%d ctrlTrues=%d stopMask=%#x",
					l.srcNode, l.srcPort, l.dstNode, l.dstPort, l.inFlight, l.ctrlTrues, l.stopMask)
			}
			continue
		}
		occ := 0
		var ones [4]int32
		for s := 0; s < l.delay; s++ {
			if l.occ[s] {
				occ++
			} else if l.pipe[s] != (flit.Flit{}) {
				f.wormfail(now, "link %d.%d->%d.%d slot %d unoccupied but not zeroed",
					l.srcNode, l.srcPort, l.dstNode, l.dstPort, s)
			}
			for v := uint8(0); v < 4; v++ {
				if l.ctrl[s]>>v&1 != 0 {
					ones[v]++
				}
			}
		}
		if occ != l.inFlight {
			f.wormfail(now, "link %d.%d->%d.%d inFlight=%d but %d occupied slots",
				l.srcNode, l.srcPort, l.dstNode, l.dstPort, l.inFlight, occ)
		}
		trues := 0
		for v := 0; v < 4; v++ {
			if ones[v] != l.ctrlOnes[v] {
				f.wormfail(now, "link %d.%d->%d.%d ctrlOnes[%d]=%d but %d STOP bits in ring",
					l.srcNode, l.srcPort, l.dstNode, l.dstPort, v, l.ctrlOnes[v], ones[v])
			}
			trues += int(ones[v])
		}
		if trues != l.ctrlTrues {
			f.wormfail(now, "link %d.%d->%d.%d ctrlTrues=%d but %d STOP bits in ring",
				l.srcNode, l.srcPort, l.dstNode, l.dstPort, l.ctrlTrues, trues)
		}
		if (l.inFlight > 0 || l.ctrlTrues > 0 || l.stopMask != 0) && !f.linkAct.has(l.id) {
			f.wormfail(now, "link %d.%d->%d.%d holds state (inFlight=%d ctrlTrues=%d stopMask=%#x) but is not active: lost wakeup",
				l.srcNode, l.srcPort, l.dstNode, l.dstPort, l.inFlight, l.ctrlTrues, l.stopMask)
		}
		if l.active != f.linkAct.has(l.id) {
			f.wormfail(now, "link %d.%d->%d.%d active flag %v disagrees with bitmap",
				l.srcNode, l.srcPort, l.dstNode, l.dstPort, l.active)
		}
	}
}

// checkSwitches: slack occupancy windows, post-publish STOP/GO wish
// consistency, the wishPorts count, the route/bound/pend/dead port
// indexes, and crossbar reservation-release balance.
func (f *Fabric) checkSwitches(now des.Time) {
	for _, s := range f.sw {
		if s == nil {
			continue
		}
		wishes := 0
		for pi := range s.in {
			in := &s.in[pi]
			if in.stopWish {
				wishes++
			}
			f.checkSlack(now, s, in)
			dead := in.inLink != nil && in.inLink.dead
			if s.deadIns.has(pi) != dead {
				f.wormfail(now, "switch %d lane %d deadIns=%v but link dead=%v",
					s.node, pi, s.deadIns.has(pi), dead)
			}
			if dead && s.pendIns.has(pi) {
				f.wormfail(now, "switch %d lane %d pending STOP/GO settle on a dead link", s.node, pi)
			}
			if s.dead {
				continue
			}
			f.checkPortIndexes(now, s, in, pi)
			// Post-publish STOP/GO: a live lane's wish is a pure function of
			// fill with hysteresis, re-evaluated by phase 4 whenever it could
			// have flipped.  Dead upstream links freeze the wish by design
			// (the publish phase skips them until revival).
			if in.inLink != nil && !in.inLink.dead {
				if in.fill >= in.stopMark && !in.stopWish {
					f.wormfail(now, "switch %d lane %d fill=%d at STOP mark %d without a STOP wish",
						s.node, pi, in.fill, in.stopMark)
				}
				if in.fill <= in.goMark && in.stopWish {
					f.wormfail(now, "switch %d lane %d fill=%d at GO mark %d with a standing STOP wish",
						s.node, pi, in.fill, in.goMark)
				}
			}
		}
		if wishes != s.wishPorts {
			f.wormfail(now, "switch %d wishPorts=%d but %d lanes wish STOP", s.node, s.wishPorts, wishes)
		}
		f.checkCrossbar(now, s)
		if !s.dead {
			busy := s.wishPorts > 0 || !s.pendIns.empty() ||
				anyOr(&s.routeIns, &s.boundIns) || s.nBoundOuts > 0
			if busy && !f.swAct.has(int(s.node)) {
				f.wormfail(now, "switch %d has pending work but is not active: lost wakeup", s.node)
			}
		}
		if s.active != f.swAct.has(int(s.node)) {
			f.wormfail(now, "switch %d active flag %v disagrees with bitmap", s.node, s.active)
		}
	}
}

// checkSlack: fill within bounds and every slot outside the occupied
// window zeroed, so recycled ring slots can never leak a stale flit.
func (f *Fabric) checkSlack(now des.Time, s *swState, in *inPort) {
	if in.cap == 0 {
		if in.fill != 0 {
			f.wormfail(now, "switch %d lane %d fill=%d with no slack ring", s.node, in.idx, in.fill)
		}
		return
	}
	if in.fill < 0 || in.fill > in.cap {
		f.wormfail(now, "switch %d lane %d fill=%d outside [0,%d]", s.node, in.idx, in.fill, in.cap)
	}
	for k := in.fill; k < in.cap; k++ {
		i := in.head + k
		if i >= in.cap {
			i -= in.cap
		}
		if in.slack[i] != (flit.Flit{}) {
			f.wormfail(now, "switch %d lane %d slack slot %d outside the occupied window is not zeroed (head=%d fill=%d)",
				s.node, in.idx, i, in.head, in.fill)
		}
	}
}

// checkPortIndexes: routeIns/boundIns membership must match the port mode
// exactly — these bitmaps are what lets route and transmit skip the scan.
func (f *Fabric) checkPortIndexes(now des.Time, s *swState, in *inPort, pi int) {
	bound := in.mode == pmBoundUni || in.mode == pmBoundMC
	if s.boundIns.has(pi) != bound {
		f.wormfail(now, "switch %d lane %d mode=%d but boundIns=%v", s.node, pi, in.mode, s.boundIns.has(pi))
	}
	wantRoute := false
	switch in.mode {
	case pmIdle:
		wantRoute = in.fill > 0
	case pmCollect, pmWait, pmFlush, pmDrop:
		wantRoute = true
	}
	if s.routeIns.has(pi) != wantRoute {
		f.wormfail(now, "switch %d lane %d mode=%d fill=%d but routeIns=%v",
			s.node, pi, in.mode, in.fill, s.routeIns.has(pi))
	}
	if bound && in.worm == nil {
		f.wormfail(now, "switch %d lane %d bound with no worm", s.node, pi)
	}
}

// checkCrossbar: every output binding pairs with a streaming input lane,
// nBoundOuts equals the recount, and a pmBoundUni lane's cached output
// pointer is its own single binding — reservation and release balance.
func (f *Fabric) checkCrossbar(now des.Time, s *swState) {
	bound := 0
	for oi := range s.out {
		o := &s.out[oi]
		if o.boundIn < 0 {
			if o.phase != opFree {
				f.wormfail(now, "switch %d out %d free but phase=%d", s.node, oi, o.phase)
			}
			continue
		}
		bound++
		in := &s.in[o.boundIn]
		if in.mode != pmBoundUni && in.mode != pmBoundMC {
			f.wormfail(now, "switch %d out %d bound to lane %d which is in mode %d, not streaming: leaked reservation",
				s.node, oi, o.boundIn, in.mode)
		}
		found := false
		for _, x := range in.outs {
			if x == oi {
				found = true
				break
			}
		}
		if !found {
			f.wormfail(now, "switch %d out %d bound to lane %d but absent from its outs list", s.node, oi, o.boundIn)
		}
	}
	if bound != s.nBoundOuts {
		f.wormfail(now, "switch %d nBoundOuts=%d but %d outputs bound", s.node, s.nBoundOuts, bound)
	}
	s.boundIns.forEach(func(pi int) {
		in := &s.in[pi]
		for _, oi := range in.outs {
			if s.out[oi].boundIn != pi {
				f.wormfail(now, "switch %d lane %d claims out %d which is bound to %d: dangling release",
					s.node, pi, oi, s.out[oi].boundIn)
			}
		}
		if in.mode == pmBoundUni {
			if len(in.outs) != 1 {
				f.wormfail(now, "switch %d lane %d pmBoundUni with %d outputs", s.node, pi, len(in.outs))
			}
			if in.ou != &s.out[in.outs[0]] {
				f.wormfail(now, "switch %d lane %d cached output pointer does not match outs[0]=%d",
					s.node, pi, in.outs[0])
			}
		}
	})
}

// checkHosts: the rxBusy reception count and transmit-side active set.
func (f *Fabric) checkHosts(now des.Time) {
	rx := 0
	for _, h := range f.hosts {
		if h == nil {
			continue
		}
		if h.rx.Worm() != nil {
			rx++
		}
		if (h.cur != nil || h.qlen() > 0) && !f.hostAct.has(int(h.node)) {
			f.wormfail(now, "host %d has queued transmission but is not active: lost wakeup", h.node)
		}
		if h.active != f.hostAct.has(int(h.node)) {
			f.wormfail(now, "host %d active flag %v disagrees with bitmap", h.node, h.active)
		}
	}
	if rx != f.rxBusy {
		f.wormfail(now, "rxBusy=%d but %d hosts mid-reception", f.rxBusy, rx)
	}
}
