package network

// In-band liveness hellos.
//
// When enabled, every directional link carries a periodic hello flit with
// seeded per-link jitter.  Hellos obey the same physics as data: a hello
// waits while the sender's pipeline slot is occupied by a data flit or the
// link's delayed STOP state holds the sending end, and it is black-holed by
// a dead link.  A congested link therefore starves hellos exactly as it
// starves data — which is what makes false positives and flapping at the
// detector (internal/liveness) a property of the fabric rather than a
// modelling knob.
//
// Hellos are consumed at the receiving end of the link, before slack
// buffers and reassemblers: they are control symbols, not worm flits, and
// never occupy downstream buffer space (Myrinet's STOP/GO symbols have the
// same out-of-band-in-band character).

import (
	"fmt"

	"wormlan/internal/des"
	"wormlan/internal/flit"
	"wormlan/internal/rng"
	"wormlan/internal/topology"
	"wormlan/internal/trace"
)

// HelloSink consumes hello protocol events from the fabric.  Implemented
// by liveness.Monitor; defined here so network need not import it.
type HelloSink interface {
	// HelloSeen reports a hello arrival at the receiving end of a link.
	HelloSeen(node topology.NodeID, port topology.PortID, delay des.Time, now des.Time)
	// HelloTick runs once per fabric tick while the protocol is active, so
	// the sink can expire hello deadlines.
	HelloTick(now des.Time)
}

// HelloConfig parameterizes the hello wire engine.
type HelloConfig struct {
	// Interval is the per-link hello period; Jitter the maximum seeded
	// extra delay per hello.  Both must be positive.
	Interval des.Time
	Jitter   des.Time
	// Seed feeds the per-link jitter rngs.
	Seed uint64
	// Until stops hello transmission (and sink ticks): the fabric must be
	// able to go idle for drain-based invariant checks, so the protocol
	// runs over a bounded horizon rather than forever.
	Until des.Time
	// Sink receives arrivals and ticks.
	Sink HelloSink
}

// HelloEndpoint describes the receiving end of one directional link, in
// the fabric's deterministic link construction order.
type HelloEndpoint struct {
	Node  topology.NodeID
	Port  topology.PortID
	Delay des.Time
}

// HelloEndpoints lists the receiving end of every directional link, in
// construction order — the endpoint set a liveness monitor should watch.
//
//wormlint:alloc setup-time snapshot for monitor wiring, not on the tick path
func (f *Fabric) HelloEndpoints() []HelloEndpoint {
	out := make([]HelloEndpoint, len(f.links))
	for i, l := range f.links {
		out[i] = HelloEndpoint{Node: l.dstNode, Port: l.dstPort, Delay: des.Time(l.delay)}
	}
	return out
}

// LinkAlive reports ground-truth liveness of the directional link arriving
// at port p of node n (i.e. whether the cable is actually usable).  It is
// the false-positive classifier for detection statistics; no protocol
// decision may depend on it.
func (f *Fabric) LinkAlive(n topology.NodeID, p topology.PortID) bool {
	return !f.fail.LinkDead(f.G, n, p)
}

// EnableHello starts the hello engine.  Call once, before the kernel runs.
//
//wormlint:alloc one-time engine setup; sizes the per-link due/rng tables
func (f *Fabric) EnableHello(cfg HelloConfig) error {
	if f.hello != nil {
		return fmt.Errorf("network: hello engine already enabled")
	}
	if cfg.Interval <= 0 || cfg.Jitter < 0 {
		return fmt.Errorf("network: hello interval %d / jitter %d out of range", cfg.Interval, cfg.Jitter)
	}
	if cfg.Until <= 0 {
		return fmt.Errorf("network: hello engine needs a positive Until horizon")
	}
	if cfg.Sink == nil {
		return fmt.Errorf("network: hello engine needs a sink")
	}
	f.hello = &cfg
	f.helloDue = make([]des.Time, len(f.links))
	f.helloRng = make([]*rng.Source, len(f.links))
	now := f.K.Now()
	for i := range f.links {
		// Stream index offsets the hello stream space away from other
		// subsystems; each link gets its own jittered phase.
		f.helloRng[i] = rng.New(cfg.Seed, helloStreamBase+uint64(i))
		f.helloDue[i] = now + 1 + des.Time(f.helloRng[i].Intn(int(cfg.Interval)))
	}
	f.activate()
	return nil
}

// helloStreamBase namespaces the per-link hello rng streams.
const helloStreamBase uint64 = 0x4e11_0000_0000

// helloNext schedules link i's next hello.
func (f *Fabric) helloNext(i int) {
	jit := des.Time(0)
	if f.hello.Jitter > 0 {
		jit = des.Time(f.helloRng[i].Intn(int(f.hello.Jitter) + 1))
	}
	f.helloDue[i] += f.hello.Interval + jit
}

// helloPhase runs after the transmit phases of Fabric.Tick: every link
// whose hello is due sends one if the wire will take it.  A slot already
// carrying a data flit or a STOP-held sending end defers the hello (it
// stays due and retries next tick); a dead link eats it silently.
func (f *Fabric) helloPhase(now des.Time) {
	if f.hello == nil || now > f.hello.Until {
		return
	}
	// The protocol keeps the fabric clocked until its horizon, even when no
	// data is in flight — liveness probing is perpetual activity.
	f.work = true
	for i, l := range f.links {
		if now < f.helloDue[i] {
			continue
		}
		if l.dead {
			// Black hole: the receiver will miss this hello.  The schedule
			// still advances so a revived link resumes its normal cadence
			// instead of bursting.
			f.ctr.HellosLost++
			f.helloNext(i)
			continue
		}
		slot := f.delaySlots[l.dc]
		if l.occ[slot] || l.stopMask != 0 {
			// Congestion: data owns the wire (or the delayed STOP state
			// holds the sending end).  The hello waits — this is the
			// mechanism by which saturation mimics death.
			f.ctr.HellosDeferred++
			continue
		}
		l.send(int64(now), flit.Flit{Kind: flit.Hello})
		f.ctr.HellosSent++
		if f.rec != nil {
			f.emit(now, trace.EvHelloSent, l.srcNode, int(l.srcPort), 0, int64(i))
		}
		f.helloNext(i)
	}
	f.hello.Sink.HelloTick(now)
}

// helloRecv consumes a hello flit arriving at the receiving end of l.
func (f *Fabric) helloRecv(l *dlink, now des.Time) {
	f.ctr.HellosSeen++
	f.hello.Sink.HelloSeen(l.dstNode, l.dstPort, des.Time(l.delay), now)
}
