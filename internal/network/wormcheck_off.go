//go:build !wormcheck

package network

import "wormlan/internal/des"

// wormcheckEnabled gates the per-tick runtime invariant checker (see
// wormcheck_on.go).  In normal builds the constant-false guard lets the
// compiler delete the call site, so the hot path carries no overhead —
// the zero-alloc and determinism pins run with the tag off.
const wormcheckEnabled = false

func (f *Fabric) wormcheckTick(now des.Time) {}
