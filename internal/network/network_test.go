package network

import (
	"testing"

	"wormlan/internal/des"
	"wormlan/internal/flit"
	"wormlan/internal/route"
	"wormlan/internal/topology"
	"wormlan/internal/updown"
)

// rig bundles a kernel, routing, and fabric over a topology with a
// delivery log.
type rig struct {
	k  *des.Kernel
	g  *topology.Graph
	ud *updown.Routing
	f  *Fabric

	deliveries []Delivery
	flushes    []*flit.Worm
}

func newRig(t *testing.T, g *topology.Graph, cfg Config) *rig {
	t.Helper()
	r := &rig{k: des.NewKernel(), g: g}
	ud, err := updown.New(g, topology.None)
	if err != nil {
		t.Fatal(err)
	}
	r.ud = ud
	base := cfg
	base.OnDeliver = func(d Delivery) { r.deliveries = append(r.deliveries, d) }
	base.OnFlush = func(w *flit.Worm, at des.Time) { r.flushes = append(r.flushes, w) }
	f, err := New(r.k, g, ud, base)
	if err != nil {
		t.Fatal(err)
	}
	r.f = f
	return r
}

var wormIDs int64

func (r *rig) unicast(t *testing.T, src, dst topology.NodeID, payload int) *flit.Worm {
	t.Helper()
	rt, err := r.ud.Route(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	h, err := route.EncodeUnicast(rt.Ports)
	if err != nil {
		t.Fatal(err)
	}
	wormIDs++
	return &flit.Worm{ID: wormIDs, Src: src, Dst: dst, Mode: flit.Unicast,
		Group: -1, Header: h, PayloadLen: payload}
}

func (r *rig) multicast(t *testing.T, src topology.NodeID, dsts []topology.NodeID, payload int) *flit.Worm {
	t.Helper()
	var routes []updown.Route
	for _, d := range dsts {
		rt, err := r.ud.Route(src, d)
		if err != nil {
			t.Fatal(err)
		}
		routes = append(routes, rt)
	}
	tree, err := route.BuildTree(routes)
	if err != nil {
		t.Fatal(err)
	}
	h, err := route.Encode(tree)
	if err != nil {
		t.Fatal(err)
	}
	wormIDs++
	return &flit.Worm{ID: wormIDs, Src: src, Mode: flit.MulticastTree,
		Dst: topology.None, Group: 0, Header: h, PayloadLen: payload}
}

func (r *rig) run(t *testing.T, deadline des.Time) {
	t.Helper()
	if err := r.k.Run(deadline); err != nil {
		t.Fatal(err)
	}
}

func (r *rig) deliveredHosts() map[topology.NodeID]int {
	m := map[topology.NodeID]int{}
	for _, d := range r.deliveries {
		m[d.Host]++
	}
	return m
}

func TestUnicastLatencyPinned(t *testing.T) {
	// Two switches in a line, all link delays 1.  Worm: 2 header bytes,
	// 10 payload, 1 tail = 13 flits.  First flit leaves at t=1; the
	// pipeline adds 3 link crossings; the tail lands at t = 13 + 3 = 16.
	g := topology.Line(2, 1)
	r := newRig(t, g, Config{})
	hosts := g.Hosts()
	w := r.unicast(t, hosts[0], hosts[1], 10)
	if err := r.f.Inject(hosts[0], w); err != nil {
		t.Fatal(err)
	}
	r.run(t, 0)
	if len(r.deliveries) != 1 {
		t.Fatalf("deliveries = %d", len(r.deliveries))
	}
	d := r.deliveries[0]
	if d.Host != hosts[1] || d.Worm != w {
		t.Fatalf("wrong delivery %+v", d)
	}
	if d.At != 16 {
		t.Fatalf("delivered at t=%d, want 16", d.At)
	}
	if d.Fragments != 1 {
		t.Fatalf("fragments = %d", d.Fragments)
	}
	if w.Injected != 1 {
		t.Fatalf("injected at %d, want 1", w.Injected)
	}
}

func TestUnicastSingleSwitchLatency(t *testing.T) {
	// Star: 1 header byte + 5 payload + tail = 7 flits, 2 link crossings:
	// tail lands at t = 7 + 2 = 9.
	g := topology.Star(3)
	r := newRig(t, g, Config{})
	hosts := g.Hosts()
	w := r.unicast(t, hosts[0], hosts[1], 5)
	if err := r.f.Inject(hosts[0], w); err != nil {
		t.Fatal(err)
	}
	r.run(t, 0)
	if len(r.deliveries) != 1 || r.deliveries[0].At != 9 {
		t.Fatalf("deliveries %+v", r.deliveries)
	}
}

func TestUnicastLongDelayLink(t *testing.T) {
	// 1000 byte-time backbone link (the shufflenet setting of Figure 11).
	g := topology.Line(2, 1000)
	r := newRig(t, g, Config{})
	hosts := g.Hosts()
	w := r.unicast(t, hosts[0], hosts[1], 10)
	if err := r.f.Inject(hosts[0], w); err != nil {
		t.Fatal(err)
	}
	r.run(t, 0)
	// 13 flits + crossings (1 + 1000 + 1).
	if len(r.deliveries) != 1 || r.deliveries[0].At != 13+1002 {
		t.Fatalf("deliveries %+v", r.deliveries)
	}
}

func TestContentionRoundTrip(t *testing.T) {
	// Two senders to one destination: both worms must arrive intact, the
	// second delayed behind the first (no drops in a backpressured LAN).
	g := topology.Star(3)
	r := newRig(t, g, Config{})
	hosts := g.Hosts()
	w1 := r.unicast(t, hosts[0], hosts[2], 50)
	w2 := r.unicast(t, hosts[1], hosts[2], 50)
	r.f.Inject(hosts[0], w1)
	r.f.Inject(hosts[1], w2)
	r.run(t, 0)
	if len(r.deliveries) != 2 {
		t.Fatalf("deliveries = %d", len(r.deliveries))
	}
	if r.deliveries[0].Host != hosts[2] || r.deliveries[1].Host != hosts[2] {
		t.Fatal("wrong hosts")
	}
	// Second delivery at least a worm-length after the first.
	gap := r.deliveries[1].At - r.deliveries[0].At
	if gap < 50 {
		t.Fatalf("second delivery only %d byte-times after first", gap)
	}
	if got := r.f.Counters().Delivered; got != 2 {
		t.Fatalf("counter Delivered = %d", got)
	}
}

func TestBackpressureNoOverflowTightBuffers(t *testing.T) {
	// Small STOP/GO marks and many contending worms: the slack-overflow
	// panic in inPort.receive is the invariant under test.
	g := topology.Line(3, 1)
	r := newRig(t, g, Config{StopMark: 8, GoMark: 4})
	hosts := g.Hosts()
	for i := 0; i < 5; i++ {
		r.f.Inject(hosts[0], r.unicast(t, hosts[0], hosts[2], 300))
		r.f.Inject(hosts[1], r.unicast(t, hosts[1], hosts[2], 300))
	}
	r.run(t, 0)
	if len(r.deliveries) != 10 {
		t.Fatalf("deliveries = %d, want 10", len(r.deliveries))
	}
}

func TestBackpressureLongDelayNoOverflow(t *testing.T) {
	// STOP takes 200 byte-times to reach the sender; the slack must absorb
	// 2x that in-flight data.
	g := topology.Line(2, 200)
	r := newRig(t, g, Config{StopMark: 8, GoMark: 4})
	hosts := g.Hosts()
	for i := 0; i < 3; i++ {
		r.f.Inject(hosts[0], r.unicast(t, hosts[0], hosts[1], 1000))
	}
	// A cross worm competing for the same destination port.
	r.run(t, 0)
	if len(r.deliveries) != 3 {
		t.Fatalf("deliveries = %d", len(r.deliveries))
	}
}

func TestPipelinedWormsBackToBack(t *testing.T) {
	// Worms queued at one interface leave back to back; deliveries are in
	// FIFO order.
	g := topology.Star(2)
	r := newRig(t, g, Config{})
	hosts := g.Hosts()
	var worms []*flit.Worm
	for i := 0; i < 4; i++ {
		w := r.unicast(t, hosts[0], hosts[1], 20)
		worms = append(worms, w)
		r.f.Inject(hosts[0], w)
	}
	if got := r.f.QueueLen(hosts[0]); got != 4 {
		t.Fatalf("QueueLen = %d", got)
	}
	if !r.f.Busy(hosts[0]) {
		t.Fatal("interface not busy")
	}
	r.run(t, 0)
	for i, d := range r.deliveries {
		if d.Worm != worms[i] {
			t.Fatalf("delivery %d out of order", i)
		}
	}
	if r.f.Busy(hosts[0]) {
		t.Fatal("interface still busy after drain")
	}
}

func TestMulticastTreeDelivery(t *testing.T) {
	// Multicast across the fat tree: every member receives exactly one
	// complete copy; non-members receive nothing.
	g := topology.FatTreeish(3, 2, false)
	r := newRig(t, g, Config{})
	hosts := g.Hosts()
	dsts := []topology.NodeID{hosts[1], hosts[2], hosts[4], hosts[5]}
	w := r.multicast(t, hosts[0], dsts, 100)
	if err := r.f.Inject(hosts[0], w); err != nil {
		t.Fatal(err)
	}
	r.run(t, 0)
	got := r.deliveredHosts()
	if len(got) != len(dsts) {
		t.Fatalf("delivered to %d hosts, want %d: %v", len(got), len(dsts), got)
	}
	for _, d := range dsts {
		if got[d] != 1 {
			t.Fatalf("host %d received %d copies", d, got[d])
		}
	}
	c := r.f.Counters()
	if c.Delivered != int64(len(dsts)) || c.Fragments != 0 {
		t.Fatalf("counters %+v", c)
	}
}

func TestMulticastSameSwitchFanout(t *testing.T) {
	g := topology.Star(5)
	r := newRig(t, g, Config{})
	hosts := g.Hosts()
	w := r.multicast(t, hosts[0], []topology.NodeID{hosts[1], hosts[2], hosts[3], hosts[4]}, 40)
	r.f.Inject(hosts[0], w)
	r.run(t, 0)
	if len(r.deliveries) != 4 {
		t.Fatalf("deliveries = %d", len(r.deliveries))
	}
	// Replication is simultaneous in the crossbar: all copies land at the
	// same byte-time.
	for _, d := range r.deliveries[1:] {
		if d.At != r.deliveries[0].At {
			t.Fatalf("copies landed at %d and %d", r.deliveries[0].At, d.At)
		}
	}
}

// blockedMulticastRig builds the two-switch scenario used by the scheme
// tests: hA, hB on s0; hC, hD on s1.  A long unicast hD->hC holds s1's
// output to hC; a multicast hA->{hB, hC} then blocks at s1, backpressures
// across the s0-s1 link, and stalls its hB branch at s0.
type blockedMulticastRig struct {
	*rig
	hA, hB, hC, hD topology.NodeID
	mc             *flit.Worm
}

func newBlockedMulticastRig(t *testing.T, cfg Config) *blockedMulticastRig {
	g := topology.New()
	s0 := g.AddSwitch("s0")
	s1 := g.AddSwitch("s1")
	g.Connect(s0, s1, 1)
	hA := g.AddHost("hA")
	hB := g.AddHost("hB")
	hC := g.AddHost("hC")
	hD := g.AddHost("hD")
	g.Connect(s0, hA, 1)
	g.Connect(s0, hB, 1)
	g.Connect(s1, hC, 1)
	g.Connect(s1, hD, 1)
	cfg.StopMark = 8
	cfg.GoMark = 4
	b := &blockedMulticastRig{rig: newRig(t, g, cfg), hA: hA, hB: hB, hC: hC, hD: hD}
	blocker := b.unicast(t, hD, hC, 600)
	b.f.Inject(hD, blocker)
	b.mc = b.multicast(t, hA, []topology.NodeID{hB, hC}, 300)
	// Give the blocker a head start so it owns s1's port to hC.
	b.k.At(20, func() { b.f.Inject(hA, b.mc) })
	return b
}

func TestSchemeIdleFillBlockedMulticast(t *testing.T) {
	b := newBlockedMulticastRig(t, Config{Scheme: SchemeIdleFill})
	b.run(t, 0)
	got := b.deliveredHosts()
	if got[b.hB] != 1 || got[b.hC] != 2 { // hC gets blocker + multicast
		t.Fatalf("deliveries %v", got)
	}
	for _, d := range b.deliveries {
		if d.Fragments != 1 {
			t.Fatalf("idle-fill produced fragments: %+v", d)
		}
	}
	// The hB copy is gated by the slowest branch: it cannot complete until
	// after the blocker (600+ bytes) has drained.
	var hBAt, blockerAt des.Time
	for _, d := range b.deliveries {
		if d.Host == b.hB {
			hBAt = d.At
		}
		if d.Host == b.hC && d.Worm.Mode == flit.Unicast {
			blockerAt = d.At
		}
	}
	if hBAt < blockerAt {
		t.Fatalf("hB copy (t=%d) completed before the blocking unicast drained (t=%d)", hBAt, blockerAt)
	}
}

func TestSchemeInterruptFragments(t *testing.T) {
	b := newBlockedMulticastRig(t, Config{Scheme: SchemeInterrupt})
	b.run(t, 0)
	got := b.deliveredHosts()
	if got[b.hB] != 1 || got[b.hC] != 2 {
		t.Fatalf("deliveries %v", got)
	}
	var hBFrags int
	for _, d := range b.deliveries {
		if d.Host == b.hB && d.Worm == b.mc {
			hBFrags = d.Fragments
		}
	}
	if hBFrags < 2 {
		t.Fatalf("interrupt scheme delivered hB copy in %d fragments, want >= 2", hBFrags)
	}
	if b.f.Counters().Fragments == 0 {
		t.Fatal("no fragment tails counted")
	}
}

func TestSchemeFlushUnicast(t *testing.T) {
	b := newBlockedMulticastRig(t, Config{Scheme: SchemeFlushUnicast, IdleFlagTicks: 16})
	// A victim unicast that wants s0's port to hB, which the blocked
	// multicast is holding and idle-filling.
	victim := b.unicast(t, b.hC, b.hB, 50)
	b.k.At(120, func() { b.f.Inject(b.hC, victim) })
	b.run(t, 0)
	if len(b.flushes) != 1 || b.flushes[0] != victim {
		t.Fatalf("flushes = %v", b.flushes)
	}
	if b.f.Counters().Flushed != 1 {
		t.Fatalf("Flushed = %d", b.f.Counters().Flushed)
	}
	for _, d := range b.deliveries {
		if d.Worm == victim {
			t.Fatal("flushed worm was delivered")
		}
	}
	// The multicast still completes everywhere.
	got := b.deliveredHosts()
	if got[b.hB] != 1 || got[b.hC] != 2 {
		t.Fatalf("deliveries %v", got)
	}
	// Retransmission (as the source adapter would do on flush notice).
	k2 := b.k
	retrans := b.unicast(t, b.hC, b.hB, 50)
	b.f.Inject(b.hC, retrans)
	if err := k2.Run(0); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range b.deliveries {
		if d.Worm == retrans && d.Host == b.hB {
			found = true
		}
	}
	if !found {
		t.Fatal("retransmission not delivered")
	}
}

func TestBroadcastReachesAllHosts(t *testing.T) {
	g := topology.FatTreeish(2, 2, false)
	r := newRig(t, g, Config{})
	hosts := g.Hosts()
	src := hosts[0]
	// Route prefix: ports from the source's switch up to the root.
	sw, _ := g.HostAttachment(src)
	var prefix []topology.PortID
	for sw != r.ud.Root {
		parent := r.ud.Parent[sw]
		var port topology.PortID = topology.NoPort
		for pi, p := range g.Node(sw).Ports {
			if p.Wired() && p.Peer == parent {
				port = topology.PortID(pi)
			}
		}
		prefix = append(prefix, port)
		sw = parent
	}
	h, err := route.Broadcast(prefix)
	if err != nil {
		t.Fatal(err)
	}
	wormIDs++
	w := &flit.Worm{ID: wormIDs, Src: src, Dst: topology.None, Mode: flit.Broadcast,
		Group: -1, Header: h, PayloadLen: 64}
	if err := r.f.Inject(src, w); err != nil {
		t.Fatal(err)
	}
	r.run(t, 0)
	got := r.deliveredHosts()
	if len(got) != len(hosts) {
		t.Fatalf("broadcast reached %d of %d hosts: %v", len(got), len(hosts), got)
	}
	for _, hst := range hosts {
		if got[hst] != 1 {
			t.Fatalf("host %d received %d copies", hst, got[hst])
		}
	}
}

func TestBroadcastRequiresUpDown(t *testing.T) {
	g := topology.Star(2)
	k := des.NewKernel()
	f, err := New(k, g, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	w := &flit.Worm{ID: 1, Src: g.Hosts()[0], Mode: flit.Broadcast,
		Header: []byte{route.BroadcastPort}, PayloadLen: 1}
	if err := f.Inject(g.Hosts()[0], w); err == nil {
		t.Fatal("broadcast without up/down routing accepted")
	}
}

func TestInjectValidation(t *testing.T) {
	g := topology.Star(2)
	r := newRig(t, g, Config{})
	hosts := g.Hosts()
	if err := r.f.Inject(g.Switches()[0], &flit.Worm{Header: []byte{0}}); err == nil {
		t.Fatal("inject at switch accepted")
	}
	if err := r.f.Inject(hosts[0], &flit.Worm{}); err == nil {
		t.Fatal("headerless worm accepted")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (Counters, des.Time, int) {
		g := topology.Torus(3, 3, 1, 1)
		k := des.NewKernel()
		ud, _ := updown.New(g, topology.None)
		var deliveries int
		f, _ := New(k, g, ud, Config{OnDeliver: func(Delivery) { deliveries++ }})
		hosts := g.Hosts()
		id := int64(0)
		for i, src := range hosts {
			for j := 1; j <= 3; j++ {
				dst := hosts[(i+j*2)%len(hosts)]
				if dst == src {
					continue
				}
				rt, _ := ud.Route(src, dst)
				h, _ := route.EncodeUnicast(rt.Ports)
				id++
				f.Inject(src, &flit.Worm{ID: id, Src: src, Dst: dst, Mode: flit.Unicast,
					Group: -1, Header: h, PayloadLen: 50 + i*3 + j})
			}
		}
		k.Run(0)
		return f.Counters(), k.Now(), deliveries
	}
	c1, t1, d1 := run()
	c2, t2, d2 := run()
	if c1 != c2 || t1 != t2 || d1 != d2 {
		t.Fatalf("nondeterministic: %+v@%d(%d) vs %+v@%d(%d)", c1, t1, d1, c2, t2, d2)
	}
	if d1 == 0 {
		t.Fatal("no deliveries")
	}
}

func TestStalledFalseWhenIdle(t *testing.T) {
	g := topology.Star(2)
	r := newRig(t, g, Config{})
	hosts := g.Hosts()
	r.f.Inject(hosts[0], r.unicast(t, hosts[0], hosts[1], 10))
	r.run(t, 0)
	if r.f.Stalled(100) {
		t.Fatal("idle fabric reported stalled")
	}
}

func TestLinkStatsCountFlits(t *testing.T) {
	g := topology.Star(2)
	r := newRig(t, g, Config{})
	hosts := g.Hosts()
	r.f.Inject(hosts[0], r.unicast(t, hosts[0], hosts[1], 10))
	r.run(t, 0)
	total := int64(0)
	for _, ls := range r.f.LinkStats() {
		total += ls.Carried
	}
	// 12 flits from host (1 hdr + 10 + tail), 11 to destination.
	if total != 23 {
		t.Fatalf("total carried = %d, want 23", total)
	}
}

func TestSchemeStrings(t *testing.T) {
	if SchemeIdleFill.String() != "idle-fill" ||
		SchemeInterrupt.String() != "interrupt-resume" ||
		SchemeFlushUnicast.String() != "flush-unicast" {
		t.Fatal("scheme strings")
	}
}

func BenchmarkTorusUnicastSaturation(b *testing.B) {
	g := topology.Torus(4, 4, 1, 1)
	k := des.NewKernel()
	ud, _ := updown.New(g, topology.None)
	f, _ := New(k, g, ud, Config{})
	hosts := g.Hosts()
	id := int64(0)
	for i, src := range hosts {
		dst := hosts[(i+5)%len(hosts)]
		rt, _ := ud.Route(src, dst)
		h, _ := route.EncodeUnicast(rt.Ports)
		for j := 0; j < 4; j++ {
			id++
			f.Inject(src, &flit.Worm{ID: id, Src: src, Dst: dst, Mode: flit.Unicast,
				Group: -1, Header: h, PayloadLen: 400})
		}
	}
	b.ResetTimer()
	k.Run(des.Time(b.N))
}
