package network

// Duato-style adaptive routing support.
//
// An adaptive fabric routes unicast worms whose header is the single
// route.AdaptivePort marker byte.  At every switch the marker is consumed
// and re-decided locally:
//
//   - destination attached here: deliver on the host port (lane 0);
//   - otherwise, if an adaptive lane (vc >= 1) of a minimal productive port
//     is free, alive, and unstopped right now, take it and re-stamp the
//     marker on the exiting copy;
//   - otherwise fall back to the escape path: the precomputed up*/down*
//     route from this switch to the destination, stamped as plain lane-0
//     port bytes, which downstream switches consume like any explicit
//     source route.
//
// Deadlock freedom is Duato's argument specialized to this fabric: adaptive
// lanes are acquired only when immediately free, so no worm ever *waits* on
// one — a blocked head waits either on the escape output (lane 0) or on a
// host port.  Lane-0 switch-to-switch channels carry only escape traffic,
// and every escape route is a legal up*/down* walk, so the waits-for
// relation among them embeds in the acyclic up-before-down channel order;
// host ports always drain.  Hence no cycle, with no restriction on how far
// a worm wandered adaptively before bailing out.
//
// The decision is re-evaluated every tick while the head waits, so a worm
// blocked toward its escape route still grabs an adaptive lane the moment
// one frees up.
//
// AdaptiveTable is rebuilt from the surviving topology on every remap
// (fault recovery) and installed with Fabric.SetAdaptive; candidate ports
// additionally check link liveness at selection time, so a kill is routed
// around immediately, before the mapper has even noticed.

import (
	"fmt"

	"wormlan/internal/des"
	"wormlan/internal/route"
	"wormlan/internal/topology"
	"wormlan/internal/updown"
)

// adaptiveMarker is the one-byte header stamped on adaptively forwarded
// copies.  Shared and never mutated, so re-stamping allocates nothing.
var adaptiveMarker = []byte{route.AdaptivePort}

// AdaptiveTable holds the per-(switch, destination-host) routing state of
// an adaptive fabric: minimal productive ports and the escape route.  All
// lookups are dense-slice indexing — the switch hot path touches no maps.
type AdaptiveTable struct {
	nh       int
	hostIdx  []int32           // NodeID -> host index, -1 for non-hosts
	attach   []topology.NodeID // host index -> attachment switch
	hostPort []topology.PortID // host index -> host port on that switch

	// cands[sw*nh+hi] lists the productive switch ports at sw toward host
	// hi: wired, live at build time, one hop closer by BFS distance over
	// the surviving switch graph.  Ascending port order for determinism.
	cands [][]topology.PortID
	// escape[sw*nh+hi] is the up*/down* route from sw to host hi as plain
	// port bytes (ending with the host port); nil when unreachable.
	escape [][]byte
}

// NewAdaptiveTable computes adaptive routing state over the component of g
// that ud routes (its failure set, if any, is honoured: dead links and
// switches contribute neither candidates nor escape routes).
func NewAdaptiveTable(g *topology.Graph, ud *updown.Routing) (*AdaptiveTable, error) {
	hosts := g.Hosts()
	fail := ud.Failures()
	t := &AdaptiveTable{
		nh:       len(hosts),
		hostIdx:  make([]int32, len(g.Nodes)),
		attach:   make([]topology.NodeID, len(hosts)),
		hostPort: make([]topology.PortID, len(hosts)),
		cands:    make([][]topology.PortID, len(g.Nodes)*len(hosts)),
		escape:   make([][]byte, len(g.Nodes)*len(hosts)),
	}
	for i := range t.hostIdx {
		t.hostIdx[i] = -1
	}
	for hi, h := range hosts {
		t.hostIdx[h] = int32(hi)
		sw, swPort := g.HostAttachment(h)
		if sw == topology.None {
			return nil, fmt.Errorf("network: host %d has no attachment switch", h)
		}
		t.attach[hi] = sw
		t.hostPort[hi] = swPort
	}
	// Per destination host: BFS switch distances over surviving links, then
	// candidates (strictly distance-decreasing ports) and escape routes.
	dist := make([]int, len(g.Nodes))
	queue := make([]topology.NodeID, 0, len(g.Nodes))
	for hi, h := range hosts {
		if !ud.Reachable(h) {
			continue // no candidates, no escapes: senders drop or prune
		}
		for i := range dist {
			dist[i] = -1
		}
		root := t.attach[hi]
		dist[root] = 0
		queue = queue[:0]
		queue = append(queue, root)
		for qi := 0; qi < len(queue); qi++ {
			u := queue[qi]
			for pi, p := range g.Node(u).Ports {
				if !p.Wired() || g.Node(p.Peer).Kind != topology.Switch {
					continue
				}
				if fail.SwitchDead(p.Peer) || fail.LinkDead(g, u, topology.PortID(pi)) {
					continue
				}
				if dist[p.Peer] < 0 {
					dist[p.Peer] = dist[u] + 1
					queue = append(queue, p.Peer)
				}
			}
		}
		for _, sw := range g.Switches() {
			if dist[sw] <= 0 || fail.SwitchDead(sw) {
				continue // the attach switch delivers; cut-off switches drop
			}
			var cs []topology.PortID
			for pi, p := range g.Node(sw).Ports {
				if !p.Wired() || g.Node(p.Peer).Kind != topology.Switch {
					continue
				}
				if fail.LinkDead(g, sw, topology.PortID(pi)) {
					continue
				}
				if dist[p.Peer] >= 0 && dist[p.Peer] == dist[sw]-1 {
					cs = append(cs, topology.PortID(pi))
				}
			}
			slot := int(sw)*t.nh + hi
			t.cands[slot] = cs
			rt, err := ud.RouteFromSwitch(sw, h)
			if err != nil {
				continue // unreachable by up/down: escape stays nil
			}
			for _, p := range rt.Ports {
				if int(p) > route.MaxVCPort {
					// Escape bytes ride a VC-headered fabric as plain lane-0
					// bytes, so they must stay below the vc<<6 encoding space.
					return nil, fmt.Errorf("network: escape route %d->%d uses port %d > %d",
						sw, h, p, route.MaxVCPort)
				}
			}
			esc, err := route.EncodeUnicast(rt.Ports)
			if err != nil {
				return nil, fmt.Errorf("network: escape route %d->%d: %w", sw, h, err)
			}
			t.escape[slot] = esc
		}
	}
	return t, nil
}

// hostIndexOf returns the dense host index of n, or -1.
func (t *AdaptiveTable) hostIndexOf(n topology.NodeID) int {
	if int(n) >= len(t.hostIdx) {
		return -1
	}
	return int(t.hostIdx[n])
}

// SetAdaptive installs (or replaces, after a remap) the adaptive routing
// table.  The fabric then interprets route.AdaptivePort header bytes as the
// route-anywhere marker; worms already in flight keep working, since the
// marker's meaning is positional, not table-versioned.  VCHeaders fabrics
// with NumVCs >= 2 are required: lane 0 is the escape lane and lanes >= 1
// the adaptive ones.
func (f *Fabric) SetAdaptive(t *AdaptiveTable) error {
	if t != nil && (f.nvc < 2 || !f.Cfg.VCHeaders) {
		return fmt.Errorf("network: adaptive routing needs VCHeaders and NumVCs >= 2 (have VCHeaders=%v NumVCs=%d)",
			f.Cfg.VCHeaders, f.nvc)
	}
	f.adaptive = t
	return nil
}

// adaptiveSelect makes (or re-makes) the per-hop routing decision for a
// pmWait head holding the adaptive marker, then attempts the grant.  Runs
// every tick until the head binds or drops, so the choice always reflects
// current lane occupancy and liveness.
func (s *swState) adaptiveSelect(in *inPort, now des.Time) {
	t := s.f.adaptive
	hi := t.hostIndexOf(in.worm.Dst)
	if hi < 0 {
		s.adaptiveDrop(in)
		return
	}
	nvc := s.f.nvc
	if t.attach[hi] == s.node {
		// Destination attached here: deliver on the host port's lane 0.
		// Waiting on a busy host port is safe — host channels always drain.
		in.reqOuts = append(in.reqOuts[:0], int(t.hostPort[hi])*nvc)
		in.reqStamps = append(in.reqStamps[:0], nil)
		s.tryGrant(in, now)
		return
	}
	slot := int(s.node)*t.nh + hi
	// Adaptive lanes: any vc >= 1 of a minimal productive port, taken only
	// when immediately usable, so nothing ever waits on an adaptive lane.
	for _, p := range t.cands[slot] {
		base := int(p) * nvc
		o := &s.out[base]
		if o.link.dead {
			continue
		}
		for v := 1; v < nvc; v++ {
			ov := &s.out[base+v]
			if ov.boundIn < 0 && !ov.link.stopped(uint8(v)) {
				in.reqOuts = append(in.reqOuts[:0], base+v)
				in.reqStamps = append(in.reqStamps[:0], adaptiveMarker)
				s.tryGrant(in, now)
				return
			}
		}
	}
	// Escape: the deadlock-free lane-0 up*/down* route.  The first byte is
	// consumed here (it is this switch's output port); the rest is stamped
	// on the exiting copy.  Blocking here is the one legal wait.
	esc := t.escape[slot]
	if len(esc) == 0 {
		s.adaptiveDrop(in)
		return
	}
	in.reqOuts = append(in.reqOuts[:0], int(esc[0])*nvc)
	in.reqStamps = append(in.reqStamps[:0], esc[1:])
	s.tryGrant(in, now)
}

// adaptiveDrop drains a marker worm with no way forward (destination
// unreachable under the current map).
func (s *swState) adaptiveDrop(in *inPort) {
	s.f.ctr.StaleRouteDrops++
	if in.worm.Epoch != s.f.epoch {
		s.f.ctr.EpochMismatches++
	}
	s.f.dropWorm(in.worm)
	in.setMode(pmDrop)
	in.blocked = false
	s.drainDrop(in)
}
