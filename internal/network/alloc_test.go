package network

// Zero-alloc discipline pin (DESIGN.md §12): delivering a worm through the
// fabric must not allocate.  The rig below ping-pongs a pooled worm between
// two hosts — every injection takes a worm from a flit.WormPool and every
// delivery puts it back — so the measured allocations are exactly the
// fabric's own steady-state cost: stream start, queueing, routing,
// arbitration, relay, and reassembly.  TestDeliveredWormZeroAlloc pins that
// cost at zero; BenchmarkDeliveredWormAllocs reports it (with ns per
// delivered worm) for the tracked BENCH trajectory and is enforced at zero
// allocs/op in CI.

import (
	"fmt"
	"testing"

	"wormlan/internal/des"
	"wormlan/internal/flit"
	"wormlan/internal/route"
	"wormlan/internal/topology"
	"wormlan/internal/updown"
)

// allocPayload is the payload size used by the pin: long enough that the
// per-flit relay cost dominates the per-worm setup cost in the benchmark.
const allocPayload = 256

// newAllocRig builds a two-switch line fabric with nvc lanes per link and
// returns a step function that injects one pooled worm from the first host
// to the second and runs the kernel until it is delivered (and its pooled
// storage reclaimed).  Plain port-byte routes ride lane 0, so the same pin
// holds at every lane count: extra lanes must cost state, not allocations.
// With adaptive set, the worm instead carries the route-anywhere marker
// byte and every hop runs the per-tick adaptive output selection — the
// pin extends to the Duato escape-lane path.
func newAllocRig(tb testing.TB, nvc int, adaptive bool) func() {
	tb.Helper()
	k := des.NewKernel()
	g := topology.Line(2, 1)
	ud, err := updown.New(g, topology.None)
	if err != nil {
		tb.Fatal(err)
	}
	var pool flit.WormPool
	delivered := 0
	cfg := Config{NumVCs: nvc, OnDeliver: func(d Delivery) {
		delivered++
		pool.Put(d.Worm)
	}}
	if adaptive {
		cfg.VCHeaders = true
	}
	f, err := New(k, g, ud, cfg)
	if err != nil {
		tb.Fatal(err)
	}
	hosts := g.Hosts()
	var hdr []byte
	if adaptive {
		at, aerr := NewAdaptiveTable(g, ud)
		if aerr != nil {
			tb.Fatal(aerr)
		}
		if aerr := f.SetAdaptive(at); aerr != nil {
			tb.Fatal(aerr)
		}
		hdr = []byte{route.AdaptivePort}
	} else {
		rt, rerr := ud.Route(hosts[0], hosts[1])
		if rerr != nil {
			tb.Fatal(rerr)
		}
		hdr, err = route.EncodeUnicast(rt.Ports)
		if err != nil {
			tb.Fatal(err)
		}
	}
	var id int64
	return func() {
		id++
		w := pool.Get()
		w.ID = id
		w.Src, w.Dst = hosts[0], hosts[1]
		w.Mode, w.Group = flit.Unicast, -1
		w.Header, w.PayloadLen = hdr, allocPayload
		if err := f.Inject(hosts[0], w); err != nil {
			panic(err)
		}
		if err := k.Run(0); err != nil {
			panic(err)
		}
		if int64(delivered) != id {
			panic("network: alloc rig worm not delivered")
		}
	}
}

func TestDeliveredWormZeroAlloc(t *testing.T) {
	for _, nvc := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("vcs=%d", nvc), func(t *testing.T) {
			step := newAllocRig(t, nvc, false)
			// Warm the one-time capacities (host queue, port request
			// slices, event wheel) that legitimately allocate on first use.
			for i := 0; i < 8; i++ {
				step()
			}
			if avg := testing.AllocsPerRun(100, step); avg != 0 {
				t.Fatalf("delivering a worm allocated %v times, want 0", avg)
			}
		})
	}
	// The escape-lane path: marker-byte routing through adaptiveSelect at
	// every hop must stay allocation-free too.
	t.Run("adaptive", func(t *testing.T) {
		step := newAllocRig(t, 2, true)
		for i := 0; i < 8; i++ {
			step()
		}
		if avg := testing.AllocsPerRun(100, step); avg != 0 {
			t.Fatalf("delivering an adaptive worm allocated %v times, want 0", avg)
		}
	})
}

func BenchmarkDeliveredWormAllocs(b *testing.B) {
	for _, nvc := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("vcs=%d", nvc), func(b *testing.B) {
			step := newAllocRig(b, nvc, false)
			for i := 0; i < 8; i++ {
				step()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				step()
			}
		})
	}
	// Named "adaptive" (not "vcs=N") so benchreport's per-lane regex keeps
	// tracking only the deterministic-route trajectory.
	b.Run("adaptive", func(b *testing.B) {
		step := newAllocRig(b, 2, true)
		for i := 0; i < 8; i++ {
			step()
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			step()
		}
	})
}
