package network

// Fault injection and teardown.
//
// The failure model (see DESIGN.md §Failure model) is a *forward reset*
// discipline rather than the literal assert-STOP-forever a broken Myrinet
// cable would produce: asserting STOP forever on a wormhole path wedges
// every worm behind it into a permanent deadlock, which is exactly the
// state the mapper daemon exists to clear.  Instead:
//
//   - A dead link black-holes flits sent into it (dlink.send), so upstream
//     worm sources drain instead of wedging.  In-flight flits are dropped
//     at fail time.
//   - The downstream stub of a worm truncated by the failure is terminated
//     by a synthetic Bad tail, which propagates through bound switch ports
//     tearing down their bindings, and is discarded at the receiving host
//     (TruncatedDrops).
//   - A dead switch additionally wipes its own port state, counting every
//     worm copy held in its slack buffers as dropped.
//
// Every worm copy lost this way passes through dropWorm exactly once
// (deduplicated by worm pointer), preserving the conservation law
// Injected == Delivered + WormsDropped for unicast traffic.

import (
	"fmt"

	"wormlan/internal/des"
	"wormlan/internal/flit"
	"wormlan/internal/topology"
	"wormlan/internal/trace"
	"wormlan/internal/updown"
)

// TopologyEpoch returns the current topology epoch.  It starts at zero and
// is bumped by every FailLink/RestoreLink/FailSwitch/RestoreSwitch, and
// worms are stamped with it at injection; a worm whose epoch is behind the
// fabric's carries a route computed against a stale map.
func (f *Fabric) TopologyEpoch() int64 { return f.epoch }

// Failures returns a snapshot of the current failure set, suitable as
// input to updown.WithoutEdges / mapper.RunSurviving.
func (f *Fabric) Failures() *updown.Failures { return f.fail.Clone() }

// SetRouting installs a (re)computed up/down labelling, used by Broadcast
// worms and by diagnostics.  Unicast and multicast-tree routes are carried
// in worm headers and are re-derived by callers from the same labelling.
func (f *Fabric) SetRouting(ud *updown.Routing) { f.UD = ud }

// dropWorm records the loss of a worm copy, exactly once per copy.
func (f *Fabric) dropWorm(w *flit.Worm) {
	if w == nil || f.dropped[w] {
		return
	}
	f.dropped[w] = true
	w.RxAborted = true
	f.ctr.WormsDropped++
	if f.rec != nil {
		f.emit(f.K.Now(), trace.EvDropped, topology.None, -1, w.ID, 0)
	}
}

// FailLink kills the full-duplex cable attached to port p of node n: both
// directions stop carrying data, in-flight flits are lost, and worms cut
// in half by the failure are terminated with a forward reset.
func (f *Fabric) FailLink(n topology.NodeID, p topology.PortID) error {
	port := f.G.Node(n).Ports[p]
	if !port.Wired() {
		return fmt.Errorf("network: port %d of node %d is not wired", p, n)
	}
	if f.fail.Links[updown.Edge{Node: n, Port: p}] {
		return fmt.Errorf("network: link at port %d of node %d already failed", p, n)
	}
	f.fail.FailLink(f.G, n, p)
	f.applyLiveness()
	f.epoch++
	f.activate()
	return nil
}

// RestoreLink revives the cable attached to port p of node n.  The cable
// only actually carries data again once both endpoint switches are alive.
func (f *Fabric) RestoreLink(n topology.NodeID, p topology.PortID) error {
	port := f.G.Node(n).Ports[p]
	if !port.Wired() {
		return fmt.Errorf("network: port %d of node %d is not wired", p, n)
	}
	if !f.fail.Links[updown.Edge{Node: n, Port: p}] {
		return fmt.Errorf("network: link at port %d of node %d is not failed", p, n)
	}
	delete(f.fail.Links, updown.Edge{Node: n, Port: p})
	delete(f.fail.Links, updown.Edge{Node: port.Peer, Port: port.PeerPort})
	f.applyLiveness()
	f.epoch++
	f.activate()
	return nil
}

// FailSwitch crashes switch n: every attached cable goes dead and every
// worm copy held in the switch is lost.
func (f *Fabric) FailSwitch(n topology.NodeID) error {
	s := f.sw[n]
	if s == nil {
		return fmt.Errorf("network: node %d is not a switch", n)
	}
	if s.dead {
		return fmt.Errorf("network: switch %d already failed", n)
	}
	f.fail.FailSwitch(n)
	s.dead = true
	f.wipeSwitch(s)
	f.applyLiveness()
	f.epoch++
	f.activate()
	return nil
}

// RestoreSwitch restarts switch n with empty buffers.  Cables to other
// dead switches (or explicitly failed cables) stay dead.
func (f *Fabric) RestoreSwitch(n topology.NodeID) error {
	s := f.sw[n]
	if s == nil {
		return fmt.Errorf("network: node %d is not a switch", n)
	}
	if !s.dead {
		return fmt.Errorf("network: switch %d is not failed", n)
	}
	delete(f.fail.Switches, n)
	s.dead = false
	f.applyLiveness()
	f.epoch++
	f.activate()
	return nil
}

// StallHost suspends the transmit side of host h's interface until the
// given time (a host-adapter stall: DMA engine wedged, driver busy).  The
// receive side keeps accepting flits — the paper's simulator propagates no
// backpressure from the host adapter into the network.
func (f *Fabric) StallHost(h topology.NodeID, until des.Time) error {
	hi := f.hosts[h]
	if hi == nil {
		return fmt.Errorf("network: node %d is not a host", h)
	}
	if until > hi.stalledUntil {
		hi.stalledUntil = until
	}
	f.activate()
	return nil
}

// CorruptOnLink damages one in-flight payload flit, scanning links from
// index hint (mod the link count) for determinism.  It returns false when
// no link currently carries a payload flit to corrupt.  The receiving host
// detects the damage on checksum at reassembly and discards the worm.
func (f *Fabric) CorruptOnLink(hint int) bool {
	n := len(f.links)
	if n == 0 {
		return false
	}
	if hint < 0 {
		hint = -hint
	}
	for k := 0; k < n; k++ {
		l := f.links[(hint+k)%n]
		if l.dead {
			continue
		}
		for s := 0; s < l.delay; s++ {
			if l.occ[s] && l.pipe[s].Kind == flit.Payload && !l.pipe[s].Bad {
				l.pipe[s].Bad = true
				return true
			}
		}
	}
	return false
}

// applyLiveness reconciles every directional link's dead flag with the
// failure set, killing newly-dead links and reviving newly-live ones.
func (f *Fabric) applyLiveness() {
	for _, l := range f.links {
		want := f.fail.LinkDead(f.G, l.srcNode, l.srcPort)
		switch {
		case want && !l.dead:
			f.killLink(l)
		case !want && l.dead:
			f.reviveLink(l)
		}
	}
}

// killLink marks one direction dead, drops its in-flight flits, clears its
// reverse channel (the sender must drain, not wedge), and terminates the
// truncated worm stub at the downstream end with a forward reset.
func (f *Fabric) killLink(l *dlink) {
	l.dead = true
	for s := 0; s < l.delay; s++ {
		if l.occ[s] {
			f.ctr.FlitsDropped++
			// A worm with any flit still in flight here has lost its tail:
			// the downstream copy can never complete.  On long links a whole
			// worm can sit in the pipeline with the sender already done and
			// the receiver still unaware, so neither endpoint path would
			// attribute the loss.
			f.dropWorm(l.pipe[s].W)
			l.occ[s] = false
			l.pipe[s] = flit.Flit{}
		}
		l.ctrl[s] = 0
	}
	l.ctrlOnes = [4]int32{}
	l.ctrlTrues = 0
	l.inFlight = 0
	l.stopMask = 0
	f.deactivateLink(l)
	// Mark the sender's in-progress worm copies as lost right away (not
	// only when their tails hit the black hole): if the link revives
	// mid-worm, the remaining flits must be recognized downstream as a
	// torn-down stub.  Every lane of the port can hold an independent copy
	// (the physical pipe is shared, the bindings are not), so attribution
	// walks all of them — counting per physical pipe would miss the worms
	// on sibling lanes.
	nvc := f.nvc
	if s := f.sw[l.srcNode]; s != nil {
		base := int(l.srcPort) * nvc
		for v := 0; v < nvc; v++ {
			if o := &s.out[base+v]; o.boundIn >= 0 && s.in[o.boundIn].mode == pmBoundUni {
				f.dropWorm(s.in[o.boundIn].worm)
			}
		}
	} else if h := f.hosts[l.srcNode]; h.cur != nil {
		f.dropWorm(h.cur.W)
	}
	if s := f.sw[l.dstNode]; s != nil {
		// The publish phase skips dead-link ports, so every lane leaves the
		// settling set and joins the dead index until the link revives.
		base := int(l.dstPort) * nvc
		for v := 0; v < nvc; v++ {
			s.deadIns.set(base + v)
			s.pendIns.clear(base + v)
			if !s.dead {
				f.poisonInput(&s.in[base+v])
			}
		}
	} else {
		f.poisonHost(f.hosts[l.dstNode])
	}
}

// reviveLink returns a direction to service with an empty pipeline.
func (f *Fabric) reviveLink(l *dlink) {
	l.dead = false
	for s := 0; s < l.delay; s++ {
		l.pipe[s] = flit.Flit{}
		l.occ[s] = false
		l.ctrl[s] = 0
	}
	l.ctrlOnes = [4]int32{}
	l.ctrlTrues = 0
	l.inFlight = 0
	l.stopMask = 0
	f.deactivateLink(l)
	// The downstream switch resumes publishing on this reverse channel next
	// tick (its lanes may hold stale STOP wishes to clear), so make sure it
	// is scheduled.
	if s := f.sw[l.dstNode]; s != nil {
		base := int(l.dstPort) * f.nvc
		for v := 0; v < f.nvc; v++ {
			s.deadIns.clear(base + v)
			// The ring was wiped to uniform GO: a lane with a standing STOP
			// wish must publish until the ring matches it (or the wish
			// clears).
			if s.in[base+v].stopWish {
				s.pendIns.set(base + v)
			}
		}
		if !s.dead {
			f.activateSwitch(s)
		}
	}
}

// poisonInput terminates the worm stub at a switch input port whose
// upstream link just died.
//
//   - A port already streaming downstream (pmBoundUni/pmBoundMC) gets a
//     synthetic Bad tail appended to its slack: the remaining buffered
//     flits flow out normally and the Bad tail tears the path down through
//     every switch it crosses, ending in a host-side discard.
//   - A port still decoding or waiting for arbitration aborts in place —
//     nothing has been forwarded, so there is no downstream state to clear.
//   - An idle port with a truncated arrival gets the Bad tail appended so
//     the stub routes, drains, and terminates instead of waiting forever
//     for header bytes that were lost.
func (f *Fabric) poisonInput(in *inPort) {
	switch in.mode {
	case pmBoundUni, pmBoundMC:
		f.dropWorm(in.worm)
		f.appendBadTail(in, in.worm)
	case pmCollect, pmWait:
		f.ctr.FlitsDropped += int64(in.fill)
		f.dropWorm(in.worm)
		in.reset()
	case pmFlush, pmDrop:
		// Already draining; give the drain a terminator in case the real
		// tail was lost upstream.
		if in.fill == 0 || in.newest().Kind != flit.Tail {
			f.appendBadTail(in, in.worm)
		}
	case pmIdle:
		if in.fill == 0 {
			return
		}
		if nw := in.newest(); nw.Kind != flit.Tail {
			f.appendBadTail(in, nw.W)
		}
	}
}

// appendBadTail pushes a synthetic Bad tail for worm w into the slack
// buffer, overwriting the newest flit when the buffer is full (that flit
// belonged to the truncated worm anyway).
func (f *Fabric) appendBadTail(in *inPort, w *flit.Worm) {
	bad := flit.Flit{W: w, Kind: flit.Tail, Bad: true}
	if in.fill >= in.cap {
		f.ctr.FlitsDropped++
		in.slack[(in.head+in.fill-1)%in.cap] = bad
		return
	}
	in.receive(bad)
}

// poisonHost terminates the partially-received worm at a host interface
// whose incoming link just died.
func (f *Fabric) poisonHost(h *hostIf) {
	if w := h.rx.Worm(); w != nil {
		h.discardRx(w, f.K.Now(), &f.ctr.TruncatedDrops)
	}
}

// wipeSwitch drops every worm copy held by a crashed switch and resets all
// of its port state.
func (f *Fabric) wipeSwitch(s *swState) {
	for pi := range s.in {
		in := &s.in[pi]
		if in.inLink == nil {
			continue
		}
		f.dropWorm(in.worm)
		for k := 0; k < in.fill; k++ {
			fl := in.slack[(in.head+k)%in.cap]
			f.ctr.FlitsDropped++
			f.dropWorm(fl.W)
		}
		in.reset()
		if in.stopWish {
			in.stopWish = false
			s.wishPorts--
		}
	}
	for oi := range s.out {
		s.out[oi].unbind()
	}
	s.nBoundOuts = 0
	// Dead and empty: nothing to tick until a restore puts traffic back
	// through (arrivals re-activate via inPort.receive).
	if s.active {
		s.active = false
		f.swAct.clear(int(s.node))
	}
}

// reset returns an input port to idle with an empty slack buffer.
func (in *inPort) reset() {
	for i := range in.slack {
		in.slack[i] = flit.Flit{}
	}
	in.head = 0
	in.fill = 0
	in.setMode(pmIdle)
	// The fill changed without going through pop: re-evaluate the STOP
	// wish at the next publish phase.
	in.sw.dirtyIns.set(in.idx)
	in.worm = nil
	// A port wiped mid-blocked-episode must not suppress the next
	// EvBlocked/EvResumed trace pair after a restore.
	in.blocked = false
	in.mcBuf = in.mcBuf[:0]
	in.mcSkip = 0
	in.mcExpectPtr = false
	in.reqOuts = in.reqOuts[:0]
	in.reqStamps = in.reqStamps[:0]
	in.outs = in.outs[:0]
}

// newest returns the most recently received slack flit (fill must be >0).
func (in *inPort) newest() flit.Flit {
	return in.slack[(in.head+in.fill-1)%in.cap]
}
