// Package network implements the wormhole-routing switching fabric at the
// byte level: crossbar switches with slack-buffered input ports, STOP/GO
// backpressure flow control (Figure 1 of the paper), round-robin output
// arbitration, links with propagation delay, and host network interfaces.
//
// The model follows Section 2 of the paper (the Myrinet protocols):
//
//   - Wormhole routing: a switch forwards a worm toward its output port as
//     soon as the head is routed; a worm may stretch across several links.
//   - Backpressure: each input port has a small slack buffer with a STOP
//     threshold Ks and a GO threshold Kg; STOP/GO symbols travel on the
//     reverse channel with the same propagation delay as data.
//   - Source routing: unicast worms carry a list of output-port bytes, one
//     stripped per switch.
//
// Switch-level multicasting (Section 3) is implemented in three flavours
// selected by Config.Scheme; see the MulticastScheme constants.
//
// Config.NumVCs splits every link into that many virtual-channel lanes:
// each lane has its own slack buffer and STOP/GO state, and the physical
// wire is multiplexed between ready lanes one flit per tick by a rotating-
// priority lane scheduler.  Crossbar arbitration is either the classic
// rotated port scan or an iSLIP request/grant/accept arbiter
// (Config.Arb); with NumVCs == 1 and the scan the fabric is byte-for-byte
// the VC-free model.  See DESIGN.md §13.
//
// The fabric is driven by a des.Kernel and advances one byte-time per tick.
// Everything is deterministic: ports, switches, and links are always
// scanned in index order, and arbitration uses a rotating round-robin
// pointer.
package network

import (
	"fmt"
	"math/bits"

	"wormlan/internal/arb"
	"wormlan/internal/des"
	"wormlan/internal/flit"
	"wormlan/internal/rng"
	"wormlan/internal/topology"
	"wormlan/internal/trace"
	"wormlan/internal/updown"
)

// MulticastScheme selects how switches treat replicated worms (Section 3).
type MulticastScheme uint8

const (
	// SchemeIdleFill: when any branch of a multicast is blocked, the other
	// branches transmit IDLE fill (modelled as silence while the bindings
	// stay held).  Deadlock-free only when all worms are restricted to the
	// up/down spanning tree.
	SchemeIdleFill MulticastScheme = iota
	// SchemeInterrupt: blocked multicasts interrupt transmission on their
	// non-blocked branches (sending a fragment tail and releasing the
	// downstream path); on resume each interrupted branch prepends its
	// stored header.  Destinations reassemble the fragments.
	SchemeInterrupt
	// SchemeFlushUnicast: like SchemeIdleFill, but an output that has been
	// idle-filling for IdleFlagTicks is flagged 'multicast-IDLE', and a
	// unicast worm blocked by such an output is flushed from the network
	// (modelling a Backward Reset); its source is notified and must
	// retransmit after a timeout.
	SchemeFlushUnicast
)

// String names the scheme.
func (s MulticastScheme) String() string {
	switch s {
	case SchemeIdleFill:
		return "idle-fill"
	case SchemeInterrupt:
		return "interrupt-resume"
	case SchemeFlushUnicast:
		return "flush-unicast"
	default:
		return fmt.Sprintf("scheme(%d)", uint8(s))
	}
}

// ArbPolicy selects the crossbar output-arbitration discipline.
type ArbPolicy uint8

const (
	// ArbScan: the classic rotated port scan — inputs are visited in
	// rotated ascending order and grab their outputs first-come.
	ArbScan ArbPolicy = iota
	// ArbISLIP: single-output (unicast) requests are arbitrated by a
	// per-switch iSLIP request/grant/accept arbiter (internal/arb) after
	// the routing scan; multi-output (replicating) requests keep the
	// atomic all-or-nothing scan grant.
	ArbISLIP
)

// String names the policy.
func (a ArbPolicy) String() string {
	switch a {
	case ArbScan:
		return "scan"
	case ArbISLIP:
		return "islip"
	default:
		return fmt.Sprintf("arb(%d)", uint8(a))
	}
}

// Delivery describes one worm (or worm fragment set) fully received by a
// host interface.
type Delivery struct {
	Worm      *flit.Worm
	Host      topology.NodeID
	At        des.Time
	Fragments int // 1 unless SchemeInterrupt split the worm
}

// Config parameterizes the fabric.
type Config struct {
	// StopMark (Ks) is the slack fill at which an input port sends STOP;
	// GoMark (Kg) is the fill at which it sends GO.  Slack capacity is
	// automatically Ks + 2*linkDelay per port, the minimum that guarantees
	// no overflow.  Defaults: Ks=56, Kg=24 (Myrinet-like, see DESIGN.md).
	StopMark, GoMark int

	// Scheme selects the switch-level multicast flavour.
	Scheme MulticastScheme

	// NumVCs is the number of virtual-channel lanes per link (1..4,
	// default 1).  Each lane gets an independent slack buffer and STOP/GO
	// reverse-channel bit; the physical wire carries one flit per tick,
	// shared between ready lanes by a rotating-priority lane scheduler.
	NumVCs int

	// VCHeaders, when set, makes switches interpret source-route bytes as
	// vc<<6|port pairs (see internal/route.EncodeVCPort), so a route can
	// steer each hop onto a chosen lane (e.g. dateline VC switching on a
	// torus).  Multicast tree headers decode the same way, giving each
	// fork branch its own lane; plain port bytes (< 0x40) land on lane 0
	// either way.  When clear, route bytes are plain ports and all traffic
	// rides lane 0, whatever NumVCs is.
	VCHeaders bool

	// Arb selects the crossbar arbitration policy; ArbIters is the iSLIP
	// iteration count (default 1) and ArbSeed seeds the per-switch
	// grant/accept pointer positions.  Ignored under ArbScan.
	Arb      ArbPolicy
	ArbIters int
	ArbSeed  uint64

	// DisableFastForward turns off the quiescent-steady-state Skip
	// optimization (see fastforward.go), forcing tick-by-tick execution.
	// The fast-forward exactness tests use it to compare both executions
	// of one scenario; simulations never need it.
	DisableFastForward bool

	// IdleFlagTicks is the idle-fill duration after which an output port is
	// flagged multicast-IDLE under SchemeFlushUnicast.  Default 64.
	IdleFlagTicks int

	// OnDeliver is invoked when a host interface completes reassembly of a
	// worm.  It runs inside the simulation tick; callees may inject.
	OnDeliver func(d Delivery)

	// OnHeadArrival is invoked when the first flit of a worm reaches a
	// host interface — the moment a cut-through host adapter can begin
	// forwarding (Section 4).  The worm's header carries its size, so the
	// adapter can make its buffer-reservation decision here.
	OnHeadArrival func(w *flit.Worm, host topology.NodeID, at des.Time)

	// OnFlush is invoked when a unicast worm is flushed from the network
	// under SchemeFlushUnicast.  The source should retransmit after a
	// random timeout.
	OnFlush func(w *flit.Worm, at des.Time)

	// OnDiscard is invoked when a host interface discards an incoming worm
	// — truncated by a failure upstream or corrupted on the wire — instead
	// of delivering it.  Adapters use it to release reservations made at
	// head arrival.  It runs inside the simulation tick.
	OnDiscard func(w *flit.Worm, host topology.NodeID, at des.Time)

	// Recorder, when non-nil, receives the worm-lifecycle and flow-control
	// event stream (see internal/trace).  Every instrumentation site is
	// behind a nil check, so a nil Recorder costs one predictable branch.
	Recorder trace.Recorder

	// Metrics enables per-switch crossbar-occupancy sampling; per-channel
	// busy/stall counters are always on (they are one increment on paths
	// that already count flits).  Snapshot via Fabric.Metrics.
	Metrics bool
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.StopMark == 0 {
		out.StopMark = 56
	}
	if out.GoMark == 0 {
		out.GoMark = 24
	}
	if out.IdleFlagTicks == 0 {
		out.IdleFlagTicks = 64
	}
	if out.NumVCs == 0 {
		out.NumVCs = 1
	}
	if out.ArbIters == 0 {
		out.ArbIters = 1
	}
	if out.GoMark > out.StopMark {
		panic(fmt.Sprintf("network: GoMark %d above StopMark %d", out.GoMark, out.StopMark))
	}
	if out.NumVCs < 1 || out.NumVCs > 4 {
		panic(fmt.Sprintf("network: NumVCs %d outside [1,4]", out.NumVCs))
	}
	return out
}

// Counters aggregates fabric-wide statistics.
type Counters struct {
	Injected       int64 // worms injected by hosts
	Delivered      int64 // worm deliveries completed (multicast counts each leaf)
	Flushed        int64 // unicast worms flushed under SchemeFlushUnicast
	FlitsDelivered int64 // flits handed to host interfaces
	FlitsCarried   int64 // flit-hops across all links
	Fragments      int64 // fragment tails beyond the first per delivery

	// Failure accounting.  Each worm copy lost to a failure is counted in
	// WormsDropped exactly once, whichever path noticed the loss first, so
	// for unicast traffic the conservation law
	//
	//	Injected == Delivered + WormsDropped
	//
	// holds once the fabric quiesces.
	WormsDropped    int64 // worm copies lost to link/switch failures or corruption
	FlitsDropped    int64 // individual flits lost (black-holed, wiped, or drained)
	StaleRouteDrops int64 // route branches pointing at a dead output link
	EpochMismatches int64 // stale-route worms injected before the last topology change
	TruncatedDrops  int64 // worms discarded at a host after a forward reset
	CorruptDrops    int64 // worms discarded at a host for flit corruption

	// Hello-protocol accounting (see hello.go).  Hello flits are control
	// symbols outside the worm conservation law, so they get their own
	// counters: Sent + Lost + Deferred-resolutions happen on the sending
	// end, Seen on the receiving end; Sent - Seen is the in-flight or
	// black-holed residue.
	HellosSent     int64 // hello flits placed on live links
	HellosSeen     int64 // hello flits consumed at receiving ends
	HellosLost     int64 // hellos eaten by dead links
	HellosDeferred int64 // tick-level deferrals to data traffic or STOP
}

// Fabric is the switching fabric of one wormhole LAN.
type Fabric struct {
	K   *des.Kernel
	G   *topology.Graph
	Cfg Config
	// UD provides the spanning tree for Broadcast worms; may be nil if no
	// broadcast traffic is injected.
	UD *updown.Routing

	links []*dlink
	sw    []*swState // indexed by NodeID; nil for hosts
	hosts []*hostIf  // indexed by NodeID; nil for switches

	// nvc caches Cfg.NumVCs: lane index = port*nvc + vc everywhere a
	// switch port array is indexed, and the hot paths branch on nvc > 1.
	nvc int

	// adaptive, when non-nil, makes switches interpret route.AdaptivePort
	// header bytes as the Duato route-anywhere marker (see adaptive.go).
	adaptive *AdaptiveTable

	// Active-element sets (see active.go): Tick visits only these indices.
	linkAct bitset // indices into links
	swAct   bitset // switch NodeIDs
	hostAct bitset // host NodeIDs (transmit side)
	rxBusy  int    // hosts with a reception in progress

	// delays holds the distinct link propagation delays; delaySlots[i] is
	// now % delays[i], refreshed once at the top of each Tick so the per-
	// link/per-port hot paths index a table instead of dividing.
	delays     []int64
	delaySlots []int

	lastMove des.Time // last tick at which any flit moved
	work     bool     // any activity (movement or held state) this tick
	moved    bool     // any flit actually moved this tick
	skipHold des.Time // fast-forward backoff: no Skip attempt before this tick
	// Fast-forward diagnostics, deliberately outside Counters: a skipping
	// and a non-skipping run must compare equal on every Counters field.
	skips, skippedTicks int64
	ctr                 Counters

	// Failure state (see fault.go).
	epoch   int64               // topology epoch, bumped on every fail/restore
	fail    *updown.Failures    // current dead links and switches
	dropped map[*flit.Worm]bool // worm copies already counted in WormsDropped

	// Hello engine state (see hello.go); nil when the protocol is off.
	hello    *HelloConfig
	helloDue []des.Time    // per-link next hello transmission time
	helloRng []*rng.Source // per-link jitter streams

	// Observability (see observe.go).
	rec     trace.Recorder // nil when tracing is disabled
	swBound []int64        // per-node crossbar occupancy integral, nil when metrics off
	swPeak  []int          // per-node peak bound outputs
	mticks  int64          // active fabric ticks observed while metrics on
}

// New builds a fabric over the topology.  ud may be nil when broadcast
// worms will not be used.
func New(k *des.Kernel, g *topology.Graph, ud *updown.Routing, cfg Config) (*Fabric, error) {
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("network: %w", err)
	}
	f := &Fabric{K: k, G: g, Cfg: cfg.withDefaults(), UD: ud,
		fail: updown.NewFailures(), dropped: make(map[*flit.Worm]bool)}
	f.rec = f.Cfg.Recorder
	if f.Cfg.Metrics {
		f.swBound = make([]int64, len(g.Nodes))
		f.swPeak = make([]int, len(g.Nodes))
	}
	f.sw = make([]*swState, len(g.Nodes))
	f.hosts = make([]*hostIf, len(g.Nodes))
	f.nvc = f.Cfg.NumVCs
	nvc := f.nvc

	// One directional link per wired (node, port); destination resolved to
	// the peer's input side.  Switch port arrays are lane-flattened: index
	// port*nvc + vc, so with NumVCs == 1 lane indices are port indices and
	// the whole model reduces to the VC-free fabric.
	for ni := range g.Nodes {
		n := &g.Nodes[ni]
		switch n.Kind {
		case topology.Switch:
			s := &swState{node: n.ID, f: f}
			lanes := len(n.Ports) * nvc
			s.in = make([]inPort, lanes)
			s.out = make([]outPort, lanes)
			s.routeIns = newBitset(lanes)
			s.boundIns = newBitset(lanes)
			s.dirtyIns = newBitset(lanes)
			s.pendIns = newBitset(lanes)
			s.deadIns = newBitset(lanes)
			for li := range s.in {
				s.out[li].boundIn = -1
				s.out[li].vc = uint8(li % nvc)
				s.out[li].base = li - li%nvc
				s.in[li].f = f
				s.in[li].sw = s
				s.in[li].idx = li
				s.in[li].vc = uint8(li % nvc)
			}
			if cfg.Arb == ArbISLIP {
				s.arb = arb.New(lanes, lanes, f.Cfg.ArbIters,
					f.Cfg.ArbSeed+uint64(n.ID))
				s.arbLanes = make([]int, 0, lanes)
				s.arbMark = make([]bool, lanes)
			}
			f.sw[ni] = s
		case topology.Host:
			f.hosts[ni] = &hostIf{node: n.ID, f: f}
		}
	}
	// The per-link pipeline rings and per-lane slack rings are carved from
	// shared slabs: one allocation each instead of several per link, and
	// the rings end up cache-adjacent in construction order.
	var pipeFlits, boolSlots, ctrlSlots, slackFlits int
	for ni := range g.Nodes {
		for _, p := range g.Nodes[ni].Ports {
			if !p.Wired() {
				continue
			}
			pipeFlits += int(p.Delay)
			boolSlots += int(p.Delay)
			ctrlSlots += int(p.Delay)
			if f.sw[p.Peer] != nil {
				slackFlits += nvc * (f.Cfg.StopMark + 2*int(p.Delay))
			}
		}
	}
	pipeSlab := make([]flit.Flit, pipeFlits)
	boolSlab := make([]bool, boolSlots)
	ctrlSlab := make([]uint8, ctrlSlots)
	slackSlab := make([]flit.Flit, slackFlits)

	for ni := range g.Nodes {
		n := &g.Nodes[ni]
		for pi, p := range n.Ports {
			if !p.Wired() {
				continue
			}
			l := &dlink{
				f:       f,
				id:      len(f.links),
				delay:   int(p.Delay),
				srcNode: n.ID, srcPort: topology.PortID(pi),
				dstNode: p.Peer, dstPort: p.PeerPort,
			}
			l.grantTick = -1
			l.pipe, pipeSlab = pipeSlab[:l.delay:l.delay], pipeSlab[l.delay:]
			l.occ, boolSlab = boolSlab[:l.delay:l.delay], boolSlab[l.delay:]
			l.ctrl, ctrlSlab = ctrlSlab[:l.delay:l.delay], ctrlSlab[l.delay:]
			l.dc = -1
			for i, d := range f.delays {
				if d == int64(l.delay) {
					l.dc = i
					break
				}
			}
			if l.dc < 0 {
				l.dc = len(f.delays)
				f.delays = append(f.delays, int64(l.delay))
				f.delaySlots = append(f.delaySlots, 0)
			}
			f.links = append(f.links, l)
			if s := f.sw[ni]; s != nil {
				for v := 0; v < nvc; v++ {
					s.out[pi*nvc+v].link = l
				}
			} else {
				f.hosts[ni].outLink = l
			}
			// Destination side bookkeeping: every lane of the receiving
			// port gets its own slack ring on the shared arrival link.
			if s := f.sw[p.Peer]; s != nil {
				base := int(p.PeerPort) * nvc
				l.dstIns = s.in[base : base+nvc : base+nvc]
				for v := 0; v < nvc; v++ {
					in := &s.in[base+v]
					in.inLink = l
					in.cap = f.Cfg.StopMark + 2*l.delay
					in.slack, slackSlab = slackSlab[:in.cap:in.cap], slackSlab[in.cap:]
					in.stopMark = f.Cfg.StopMark
					in.goMark = f.Cfg.GoMark
				}
			} else {
				l.dstHost = f.hosts[p.Peer]
			}
		}
	}
	f.linkAct = newBitset(len(f.links))
	f.swAct = newBitset(len(g.Nodes))
	f.hostAct = newBitset(len(g.Nodes))
	return f, nil
}

// Counters returns a snapshot of the fabric-wide counters.
func (f *Fabric) Counters() Counters { return f.ctr }

// Inject hands a worm to the host's network interface for transmission.
// The interface sends one worm at a time; others wait in its queue (the
// paper: "the worm can be injected whenever the interface is free").
func (f *Fabric) Inject(host topology.NodeID, w *flit.Worm) error {
	h := f.hosts[host]
	if h == nil {
		return fmt.Errorf("network: node %d is not a host", host)
	}
	if err := w.Validate(); err != nil {
		return err
	}
	if w.Mode == flit.Broadcast && f.UD == nil {
		return fmt.Errorf("network: broadcast worm without up/down routing")
	}
	w.Created = f.K.Now()
	w.Epoch = f.epoch
	h.queue = append(h.queue, w)
	f.ctr.Injected++
	f.activateHost(h)
	f.activate()
	return nil
}

// QueueLen returns the number of worms waiting (or in transmission) at the
// host interface.
func (f *Fabric) QueueLen(host topology.NodeID) int {
	h := f.hosts[host]
	n := h.qlen()
	if h.cur != nil {
		n++
	}
	return n
}

// Busy reports whether the host interface is currently transmitting.
func (f *Fabric) Busy(host topology.NodeID) bool {
	h := f.hosts[host]
	return h.cur != nil || h.qlen() > 0
}

func (f *Fabric) activate() {
	f.K.Activate(f)
	f.lastMove = f.K.Now()
}

// Tick advances the fabric one byte-time.  It implements des.Ticker.
//
// Each phase visits only the elements in its active set (see active.go);
// an element outside its set is provably a no-op under the full scan this
// loop replaces, so the visit order — ascending index — and every
// observable effect are identical to scanning everything.
func (f *Fabric) Tick(now des.Time) bool {
	f.work = false
	f.moved = false
	for i, d := range f.delays {
		f.delaySlots[i] = int(now % d)
	}

	// Phase 1: links deliver the flits and control state that have been in
	// flight for one full propagation delay.
	f.linkAct.forEach(func(li int) {
		l := f.links[li]
		if l.dead {
			return // a dead link delivers nothing, in either direction
		}
		slot := f.delaySlots[l.dc]
		l.stopMask = l.ctrl[slot]
		if l.occ[slot] {
			f.work = true
			f.moved = true
			fl := l.pipe[slot]
			l.occ[slot] = false
			l.inFlight--
			l.pipe[slot] = flit.Flit{}
			switch {
			case fl.Kind == flit.Hello:
				// Control symbol: consumed here, never enters slack buffers
				// or reassemblers.
				f.helloRecv(l, now)
			case l.dstIns != nil:
				l.dstIns[fl.VC].receive(fl)
			default:
				l.dstHost.receive(fl, now)
			}
		}
		if l.inFlight > 0 {
			f.work = true
		} else if l.ctrlTrues == 0 && l.stopMask == 0 {
			// Empty pipe, clean reverse channel: every future tick is a
			// no-op until the next send or STOP write re-activates.
			l.active = false
			f.linkAct.clear(li)
		}
	})

	// Phase 2: switches route worm heads and arbitrate output ports.
	f.swAct.forEach(func(ni int) {
		if s := f.sw[ni]; !s.dead {
			s.route(now)
		}
	})

	// Phase 3: bound outputs and host interfaces transmit one flit each.
	f.swAct.forEach(func(ni int) {
		if s := f.sw[ni]; !s.dead {
			s.transmit(now)
		}
	})
	f.hostAct.forEach(func(ni int) {
		h := f.hosts[ni]
		h.transmit(now)
		if h.cur != nil || h.qlen() > 0 {
			f.work = true
		} else {
			// Nothing queued: transmit stays a no-op until the next Inject.
			h.active = false
			f.hostAct.clear(ni)
		}
	})

	// Phase 3b: due liveness hellos go out on links the data phases left
	// free this tick (no-op unless EnableHello was called).
	f.helloPhase(now)

	// Phase 4: input ports publish STOP/GO onto the reverse channels.
	//
	// Only two kinds of port can differ from a no-op under the full scan:
	// one whose slack fill crossed a STOP/GO threshold since the last
	// publish (dirtyIns — the wish is a pure function of fill with
	// hysteresis, so any other fill history cannot flip it) and one whose
	// reverse ring is still settling toward the current wish (pendIns —
	// the conditional ctrl write is a no-op once the ring is uniform).
	// Everything else is summarized by the aggregate indexes.
	f.swAct.forEach(func(ni int) {
		s := f.sw[ni]
		if s.dead {
			return
		}
		stopMark, goMark := f.Cfg.StopMark, f.Cfg.GoMark
		for wi := range s.dirtyIns.words {
			w := s.dirtyIns.words[wi] | s.pendIns.words[wi]
			s.dirtyIns.words[wi] = 0
			for w != 0 {
				pi := wi<<6 + bits.TrailingZeros64(w)
				w &= w - 1
				in := &s.in[pi]
				l := in.inLink
				if l == nil || l.dead {
					continue
				}
				fill := in.fill
				switch {
				case fill >= stopMark:
					if !in.stopWish {
						in.stopWish = true
						s.wishPorts++
						if f.rec != nil {
							f.emit(now, trace.EvStop, s.node, pi, in.wormID(), int64(fill))
						}
					}
				case fill <= goMark:
					if in.stopWish {
						in.stopWish = false
						s.wishPorts--
						if f.rec != nil {
							f.emit(now, trace.EvGo, s.node, pi, in.wormID(), int64(fill))
						}
					}
				}
				slot := f.delaySlots[l.dc]
				bit := uint8(1) << in.vc
				if (l.ctrl[slot]&bit != 0) != in.stopWish {
					if in.stopWish {
						l.ctrl[slot] |= bit
						l.ctrlOnes[in.vc]++
						l.ctrlTrues++
						f.activateLink(l)
					} else {
						l.ctrl[slot] &^= bit
						l.ctrlOnes[in.vc]--
						l.ctrlTrues--
					}
				}
				if (in.stopWish && int(l.ctrlOnes[in.vc]) == l.delay) ||
					(!in.stopWish && l.ctrlOnes[in.vc] == 0) {
					s.pendIns.clear(pi)
				} else {
					s.pendIns.set(pi)
				}
			}
		}
		// Work and liveness, from the aggregates.  Equivalences with the
		// full scan: routeIns|boundIns is exactly "fill > 0 or mode not
		// idle" (a flush/drop port stays in routeIns until it re-idles);
		// wishPorts covers both standing STOP wishes and rings pinned
		// uniformly-STOP (old criterion ctrlTrues > 0 with a true wish);
		// pendIns covers settling rings (ctrlTrues > 0 with a false wish).
		if anyAndNot(&s.routeIns, &s.boundIns, &s.deadIns) {
			f.work = true
		}
		busy := s.wishPorts > 0 || !s.pendIns.empty() || anyOr(&s.routeIns, &s.boundIns)
		if s.nBoundOuts > 0 {
			f.work = true
			busy = true
			if f.swBound != nil {
				f.swBound[s.node] += int64(s.nBoundOuts)
				if s.nBoundOuts > f.swPeak[s.node] {
					f.swPeak[s.node] = s.nBoundOuts
				}
			}
		}
		if !busy {
			s.active = false
			f.swAct.clear(ni)
		}
	})
	if f.swBound != nil {
		f.mticks++
	}
	if f.rxBusy > 0 {
		f.work = true
	}
	if f.moved {
		f.lastMove = now
	}
	if wormcheckEnabled {
		f.wormcheckTick(now)
	}
	return f.work
}

// Stalled reports whether the fabric holds blocked worms that have made no
// progress for the given number of byte-times — the observable symptom of
// a wormhole deadlock.
func (f *Fabric) Stalled(window des.Time) bool {
	if !f.anythingHeld() {
		return false
	}
	return f.K.Now()-f.lastMove >= window
}

func (f *Fabric) anythingHeld() bool {
	for _, s := range f.sw {
		if s == nil || s.dead {
			continue
		}
		for pi := range s.in {
			if s.in[pi].fill > 0 || s.in[pi].mode != pmIdle {
				return true
			}
		}
	}
	for _, h := range f.hosts {
		if h != nil && (h.cur != nil || h.qlen() > 0) {
			return true
		}
	}
	return false
}
