package network

// Contention-free worm fast-forward.
//
// When every active element of the fabric is in a *steady streaming* state,
// one tick is a pure shift: every active link delivers one clean payload
// flit and is refilled with one, every bound crossbar port pops one and
// sends one, every transmitting host emits one, every receiving host
// absorbs one.  Payload flits carry no modelled content (Flit{W, Payload}),
// so the post-tick state is bit-identical to the pre-tick state except for
// a handful of monotone counters — which means a run of such ticks can be
// applied as one multiplication instead of being simulated byte by byte.
//
// Fabric.Skip implements des.Skipper on that observation.  It validates the
// steady shape across all active elements, and if anything at all deviates
// — a header or tail in flight, a partially filled pipeline, a STOP
// anywhere (standing, in flight, or settling), a port still routing or
// arbitrating, a host between worms, paced by a cut-through reception, or
// stalled, a hello engine running — it declines, and the fabric falls back
// to byte-accurate ticking.  The kernel only asks when no discrete event
// would interleave, so declining is the only safety valve Skip needs.
//
// Exactness argument, per element class, for each skipped tick:
//
//   - link (validated: alive, inFlight == delay, reverse ring uniformly GO,
//     sender view GO, every slot a clean payload): phase 1 delivers
//     pipe[slot] and phase 3 writes an identical payload flit of the same
//     worm back into the same slot, so pipe/occ/inFlight are unchanged;
//     carried += 1 per tick.
//   - switch port (validated: pmBound*, pure-payload slack, feeding link
//     full, every branch opPayload with idleTicks == 0 on a full live
//     link): receives one payload and pops one, so fill, the head-relative
//     window contents, and the STOP wish (a pure function of fill) are
//     unchanged — including the common fill == 0 standing state, where
//     the lane is a pure relay of the flit arriving that same tick; the
//     publish phase re-clears the dirty bit and writes nothing (ring already uniform, pendIns empty).  The slack ring's
//     head index is deliberately left in place: the occupied window holds
//     fill copies of one flit value and the vacated cells are zero on both
//     paths, so the rotation is unobservable — every read is head-relative.
//   - transmitting host (validated: unstalled, unpaced, mid-payload-run):
//     Stream.Advance replaces n Next() calls that would each have produced
//     Flit{W, Payload}; FlitsCarried += 1 per send, as in hostIf.transmit.
//   - receiving host (validated: mid-reassembly of exactly the worm whose
//     payload fills the arrival link): Reassembler.AdvancePayload replaces
//     n Feed calls; no head, tail, or Bad flit can arrive inside the
//     window, so no completion, delivery callback, discard, or rxBusy
//     transition is lost.  RxProgress advances as in hostIf.receive —
//     and any host cut-through-paced *against* this worm is either idle
//     (not ticking) or declines the skip via its PaceFrom check, so no
//     pacing decision is perturbed.
//
// Feeder closure: a full pipe does NOT by itself imply its sender will
// refill it — the validation must prove every active link is fed this
// tick.  Every validated feeder (a bound output branch, a transmitting
// host) feeds exactly one distinct link, and every fed link is active
// (inFlight > 0 keeps it in linkAct), so feeders ≤ active links with
// equality exactly when every active link is refilled; Skip counts both
// sides and declines on mismatch.  Symmetrically, every active link's
// delivery must land where the steady shape expects it: on a bound port of
// an active switch (an idle port would route — new work) or on a host
// mid-reassembly of that worm.
//
// Virtual channels: the steady shape additionally requires every active
// wire to stream exactly one lane (a uniform-VC pipe), every bound lane to
// be fed by its own arrival wire, and every bound output lane to own its
// wire exclusively (no bound sibling).  Under those conditions the
// rotating lane grant has a single candidate every tick, so multiplexing
// decisions cannot diverge inside the window; any lane interleaving
// declines the skip instead.  A worm switching lanes mid-route (dateline
// crossing) is still steady: each wire on its path carries one lane's
// flits, just not the same lane on every hop.
//
// No trace events fire on any of these paths (EvStop/EvGo need a wish
// flip, EvInject a stream start, EvTailDrained/EvDelivered a tail,
// EvBlocked an arbitration), so the skip is exact even with a Recorder
// attached.  The skip length is capped by the kernel (next queue event,
// deadline) and by every transmitting stream's remaining payload run, so
// the first non-steady tick — a tail entering the wire, an arbitration, a
// STOP crossing — is always simulated byte-accurately.

import (
	"wormlan/internal/des"
	"wormlan/internal/flit"
)

// skipRetryTicks is how long Skip holds off after a failed validation.
// Congested stretches would otherwise pay the full validation scan every
// tick for nothing; the hold is deterministic, and delaying a skip is
// unobservable (the skipped ticks are state-identical whenever they start).
const skipRetryTicks = 64

// Skip implements des.Skipper: it advances the fabric by up to max whole
// ticks in one step when the current state is provably steady, returning
// the number of ticks applied (0 when the fabric must keep byte-ticking).
func (f *Fabric) Skip(now des.Time, max des.Time) des.Time {
	if f.hello != nil || f.Cfg.DisableFastForward || now < f.skipHold {
		// The hello engine does per-tick work (due checks, deferrals) that
		// fast-forward does not model; detection runs tick for real.
		return 0
	}
	if f.rxBusy == 0 && f.linkAct.empty() && f.swAct.empty() && f.hostAct.empty() {
		// Nothing is active: the next tick pass returns false and
		// deactivates the fabric.  Skipping here would count idle ticks
		// (and fire kernel Observe callbacks) that a non-skipping run
		// never executes, breaking the ticks/dispatched equivalence.
		return 0
	}
	n := max
	steady := true
	nLinks, nFed := 0, 0

	// Links: every active link must be a full pipeline of clean payload
	// (necessarily all of one worm: a second worm would be separated by a
	// tail and a header) with a clean reverse channel, delivering into a
	// bound switch port or a matching host reassembly.
	f.linkAct.forEach(func(li int) {
		if !steady {
			return
		}
		l := f.links[li]
		if l.dead || l.inFlight != l.delay || l.ctrlTrues != 0 || l.stopMask != 0 {
			steady = false
			return
		}
		// Every slot a clean payload, all on one lane: a wire interleaving
		// lanes is not a pure shift (the lane scheduler alternates), so a
		// mixed pipe declines rather than risking a wrong fast-forward.
		vc := l.pipe[0].VC
		for s := 0; s < l.delay; s++ {
			if !l.occ[s] || l.pipe[s].Kind != flit.Payload || l.pipe[s].Bad ||
				l.pipe[s].VC != vc {
				steady = false
				return
			}
		}
		if s := f.sw[l.dstNode]; s != nil {
			// An idle destination lane would start routing on arrival;
			// only a bound lane of an active switch absorbs a payload
			// flit steadily.
			if !s.active || s.dead || !s.boundIns.has(int(l.dstPort)*f.nvc+int(vc)) {
				steady = false
				return
			}
		} else if f.hosts[l.dstNode].rx.Worm() != l.pipe[0].W {
			// The receiving host must already be mid-reassembly of exactly
			// this worm (its header preceded the payload in flight).
			steady = false
			return
		}
		nLinks++
	})
	if !steady {
		f.skipHold = now + skipRetryTicks
		return 0
	}

	// Switches: no port may be routing, arbitrating, draining, or settling
	// a reverse channel; bound ports must be pure payload relays with every
	// branch streaming into a full live link.
	f.swAct.forEach(func(ni int) {
		if !steady {
			return
		}
		s := f.sw[ni]
		if s.dead || !s.routeIns.empty() || !s.pendIns.empty() {
			steady = false
			return
		}
		s.boundIns.forEach(func(pi int) {
			if !steady {
				return
			}
			in := &s.in[pi]
			il := in.inLink
			// fill == 0 is the common standing state of an uncontended
			// relay: the arrival (phase 1) and the pop (phase 3) cancel
			// within each tick, so the boundary fill sits at zero and the
			// lane forwards the flit that arrived that same tick.  That is
			// still a pure shift as long as the arrival wire is full and
			// live — which the next check demands regardless of fill.
			if il == nil || il.dead || il.inFlight != il.delay {
				steady = false
				return
			}
			if il.pipe[0].VC != in.vc {
				// The shared arrival wire is streaming a sibling lane: this
				// lane receives nothing during the window, so its fill would
				// drain, not hold.
				steady = false
				return
			}
			for k := 0; k < in.fill; k++ {
				i := in.head + k
				if i >= in.cap {
					i -= in.cap
				}
				if in.slack[i].Kind != flit.Payload || in.slack[i].Bad {
					steady = false
					return
				}
			}
			for _, oi := range in.outs {
				o := &s.out[oi]
				if o.phase != opPayload || o.idleTicks != 0 ||
					o.link.dead || o.link.inFlight != o.link.delay {
					steady = false
					return
				}
				if f.nvc > 1 {
					// The outgoing wire must be exclusively this lane's:
					// a bound sibling lane would contend for the wire and
					// the rotating lane grant would interleave them.
					for v := 0; v < f.nvc; v++ {
						if o.base+v != oi && s.out[o.base+v].boundIn >= 0 {
							steady = false
							return
						}
					}
				}
			}
			nFed += len(in.outs)
		})
	})
	if !steady {
		f.skipHold = now + skipRetryTicks
		return 0
	}

	// Transmitting hosts: unstalled, unpaced, and inside a payload run
	// long enough that no tail or header byte enters the window.
	f.hostAct.forEach(func(ni int) {
		if !steady {
			return
		}
		h := f.hosts[ni]
		if h.stalledUntil > now || h.cur == nil || h.cur.W.PaceFrom != nil {
			steady = false
			return
		}
		run := h.cur.PayloadRun()
		if run < 1 || h.outLink.dead || h.outLink.inFlight != h.outLink.delay {
			steady = false
			return
		}
		if des.Time(run) < n {
			n = des.Time(run)
		}
		nFed++
	})
	// Feeder closure: each feeder feeds one distinct active link, so
	// equality means every active link is refilled every tick.  Any
	// streaming state must be rooted at a transmitting host (payload has no
	// other source), whose remaining run then caps n; a linkful fabric with
	// no active host cannot be steady, and the guard keeps n finite.
	if !steady || nFed != nLinks || (nLinks > 0 && f.hostAct.empty()) {
		f.skipHold = now + skipRetryTicks
		return 0
	}

	// Steady: apply n ticks' worth of monotone counter movement.  Nothing
	// else changes — that is the definition the validation just proved.
	f.linkAct.forEach(func(li int) {
		l := f.links[li]
		l.carried += n
		if h := f.hosts[l.dstNode]; h != nil {
			h.rx.AdvancePayload(int(n))
			h.rx.Worm().RxProgress += int(n)
			f.ctr.FlitsDelivered += n
		}
	})
	f.hostAct.forEach(func(ni int) {
		f.hosts[ni].cur.Advance(int(n))
	})
	f.ctr.FlitsCarried += n * int64(nLinks)
	if f.swBound != nil {
		f.swAct.forEach(func(ni int) {
			s := f.sw[ni]
			f.swBound[s.node] += n * int64(s.nBoundOuts)
		})
		f.mticks += n
	}
	if nLinks > 0 {
		f.lastMove = now + n - 1
	}
	f.skips++
	f.skippedTicks += int64(n)
	return n
}

// SkipStats reports how many times fast-forward engaged and how many ticks
// it absorbed in total — a diagnostic for tests and benchmarks, kept out
// of Counters so skipping and non-skipping runs stay comparable.
func (f *Fabric) SkipStats() (skips, ticks int64) { return f.skips, f.skippedTicks }
