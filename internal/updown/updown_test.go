package updown

import (
	"testing"
	"testing/quick"

	"wormlan/internal/topology"
)

func mustRouting(t *testing.T, g *topology.Graph) *Routing {
	t.Helper()
	r, err := New(g, topology.None)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func allPairRoutes(t *testing.T, r *Routing, treeOnly bool) []Route {
	t.Helper()
	hosts := r.G.Hosts()
	var routes []Route
	for _, a := range hosts {
		for _, b := range hosts {
			if a == b {
				continue
			}
			var rt Route
			var err error
			if treeOnly {
				rt, err = r.RouteTreeOnly(a, b)
			} else {
				rt, err = r.Route(a, b)
			}
			if err != nil {
				t.Fatalf("route %d->%d: %v", a, b, err)
			}
			if err := r.VerifyRoute(rt); err != nil {
				t.Fatalf("route %d->%d invalid: %v", a, b, err)
			}
			routes = append(routes, rt)
		}
	}
	return routes
}

func TestLevelsOnLine(t *testing.T) {
	g := topology.Line(4, 1)
	r := mustRouting(t, g)
	sw := g.Switches()
	for i, s := range sw {
		if r.Level[s] != i {
			t.Fatalf("switch %d level = %d, want %d", s, r.Level[s], i)
		}
	}
	if r.Parent[sw[0]] != topology.None {
		t.Fatal("root has a parent")
	}
	for i := 1; i < len(sw); i++ {
		if r.Parent[sw[i]] != sw[i-1] {
			t.Fatalf("parent of s%d = %d", i, r.Parent[sw[i]])
		}
	}
}

func TestRouteSingleSwitch(t *testing.T) {
	g := topology.Star(4)
	r := mustRouting(t, g)
	hosts := g.Hosts()
	rt, err := r.Route(hosts[0], hosts[2])
	if err != nil {
		t.Fatal(err)
	}
	if rt.Hops() != 1 {
		t.Fatalf("star route hops = %d, want 1", rt.Hops())
	}
	if err := r.VerifyRoute(rt); err != nil {
		t.Fatal(err)
	}
}

func TestRouteToSelfFails(t *testing.T) {
	g := topology.Star(2)
	r := mustRouting(t, g)
	h := g.Hosts()[0]
	if _, err := r.Route(h, h); err == nil {
		t.Fatal("route to self succeeded")
	}
}

func TestRouteEndpointsMustBeHosts(t *testing.T) {
	g := topology.Line(2, 1)
	r := mustRouting(t, g)
	if _, err := r.Route(g.Switches()[0], g.Hosts()[0]); err == nil {
		t.Fatal("switch endpoint accepted")
	}
}

func TestRouteLine(t *testing.T) {
	g := topology.Line(4, 1)
	r := mustRouting(t, g)
	hosts := g.Hosts()
	rt, err := r.Route(hosts[0], hosts[3])
	if err != nil {
		t.Fatal(err)
	}
	if rt.Hops() != 4 { // 3 switch-switch hops + final host port
		t.Fatalf("line route hops = %d, want 4", rt.Hops())
	}
}

func TestAllPairsLegalOnAllTopologies(t *testing.T) {
	cases := map[string]*topology.Graph{
		"torus4x4":   topology.Torus(4, 4, 1, 1),
		"torus8x8":   topology.Torus(8, 8, 1, 1),
		"shufflenet": topology.BidirShufflenet(2, 3, 1000),
		"myrinet4":   topology.Myrinet4(),
		"fattree":    topology.FatTreeish(4, 2, true),
		"random":     topology.Random(12, 4, 5),
	}
	for name, g := range cases {
		t.Run(name, func(t *testing.T) {
			r := mustRouting(t, g)
			routes := allPairRoutes(t, r, false)
			if err := VerifyDeadlockFree(g, routes); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		})
	}
}

func TestTreeOnlyRoutesAvoidCrosslinks(t *testing.T) {
	g := topology.FatTreeish(4, 2, true)
	r := mustRouting(t, g)
	routes := allPairRoutes(t, r, true)
	for _, rt := range routes {
		for i, port := range rt.Ports {
			if !r.InTree(rt.Switches[i], port) {
				t.Fatalf("tree-only route %d->%d uses crosslink at switch %d port %d",
					rt.Src, rt.Dst, rt.Switches[i], port)
			}
		}
	}
	if err := VerifyDeadlockFree(g, routes); err != nil {
		t.Fatal(err)
	}
}

func TestTreeOnlyNoLongerThanNecessary(t *testing.T) {
	// On a tree topology, tree-only and unrestricted routes coincide.
	g := topology.FatTreeish(3, 2, false)
	r := mustRouting(t, g)
	hosts := g.Hosts()
	for _, a := range hosts {
		for _, b := range hosts {
			if a == b {
				continue
			}
			free, _ := r.Route(a, b)
			tree, _ := r.RouteTreeOnly(a, b)
			if free.Hops() != tree.Hops() {
				t.Fatalf("route %d->%d: free %d hops, tree %d hops", a, b, free.Hops(), tree.Hops())
			}
		}
	}
}

func TestUpDownComplementary(t *testing.T) {
	g := topology.Torus(4, 4, 1, 1)
	r := mustRouting(t, g)
	for _, sw := range g.Switches() {
		for pi, p := range g.Node(sw).Ports {
			if !p.Wired() || g.Node(p.Peer).Kind != topology.Switch {
				continue
			}
			here := r.IsUp(sw, topology.PortID(pi))
			back := r.IsUp(p.Peer, p.PeerPort)
			if here == back {
				t.Fatalf("link %d<->%d is up in both directions (or neither)", sw, p.Peer)
			}
		}
	}
}

func TestRouteTable(t *testing.T) {
	g := topology.Myrinet4()
	r := mustRouting(t, g)
	tbl, err := r.NewTable(false)
	if err != nil {
		t.Fatal(err)
	}
	hosts := g.Hosts()
	rt := tbl.Lookup(hosts[0], hosts[7])
	if err := r.VerifyRoute(rt); err != nil {
		t.Fatal(err)
	}
	if tbl.MeanHops() <= 0 {
		t.Fatal("mean hops not positive")
	}
	direct, _ := r.Route(hosts[0], hosts[7])
	if rt.Hops() != direct.Hops() {
		t.Fatal("table route differs from direct route")
	}
}

func TestUpDownLongerThanShortest(t *testing.T) {
	// The paper notes up/down paths are generally not shortest paths.  On a
	// 5-ring rooted at s0, the clockwise path h2->h4 needs a down->up
	// transition, so the route must detour through the root: 3 switch hops
	// where the shortest path has 2.
	g := topology.Ring(5, 1)
	r := mustRouting(t, g)
	hosts := g.Hosts()
	longer := 0
	for _, a := range hosts {
		for _, b := range hosts {
			if a == b {
				continue
			}
			rt, err := r.Route(a, b)
			if err != nil {
				t.Fatal(err)
			}
			min := g.SwitchHops(a, b) + 1 // + final host port
			if rt.Hops() < min {
				t.Fatalf("route %d->%d shorter than shortest path", a, b)
			}
			if rt.Hops() > min {
				longer++
			}
		}
	}
	if longer == 0 {
		t.Fatal("up/down routing never exceeded shortest path on a 5-ring; labelling suspect")
	}
}

func TestRootCongestion(t *testing.T) {
	// Links near the root should carry a disproportionate share of routes
	// ("links near the root may get congested", Section 2).
	g := topology.Torus(4, 4, 1, 1)
	r := mustRouting(t, g)
	routes := allPairRoutes(t, r, false)
	counts := map[topology.NodeID]int{}
	for _, rt := range routes {
		for _, sw := range rt.Switches {
			counts[sw]++
		}
	}
	max := 0
	var busiest topology.NodeID
	for sw, c := range counts {
		if c > max {
			max, busiest = c, sw
		}
	}
	if r.Level[busiest] > 1 {
		t.Fatalf("busiest switch %d is at level %d; expected near root", busiest, r.Level[busiest])
	}
}

func TestVerifyRouteCatchesCorruption(t *testing.T) {
	g := topology.Line(3, 1)
	r := mustRouting(t, g)
	hosts := g.Hosts()
	rt, _ := r.Route(hosts[0], hosts[2])
	bad := rt
	bad.Ports = append([]topology.PortID(nil), rt.Ports...)
	bad.Ports[0] = topology.PortID(99)
	if err := r.VerifyRoute(bad); err == nil {
		t.Fatal("corrupted route verified")
	}
	bad2 := rt
	bad2.Dst = hosts[1]
	if err := r.VerifyRoute(bad2); err == nil {
		t.Fatal("route with wrong destination verified")
	}
}

func TestFindCycleDetectsCycle(t *testing.T) {
	a := Channel{1, 0}
	b := Channel{2, 0}
	c := Channel{3, 0}
	dep := map[Channel][]Channel{a: {b}, b: {c}, c: {a}}
	cycle := FindCycle(dep)
	if len(cycle) != 3 {
		t.Fatalf("cycle = %v", cycle)
	}
	acyclic := map[Channel][]Channel{a: {b}, b: {c}}
	if FindCycle(acyclic) != nil {
		t.Fatal("false positive cycle")
	}
}

func TestDeadlockFreedomProperty(t *testing.T) {
	// Property: for any random connected topology, the all-pairs up/down
	// routes induce an acyclic channel dependency graph.
	err := quick.Check(func(seed uint64, nRaw, dRaw uint8) bool {
		n := int(nRaw%14) + 3
		d := int(dRaw%3) + 2
		g := topology.Random(n, d, seed)
		r, err := New(g, topology.None)
		if err != nil {
			return false
		}
		hosts := g.Hosts()
		var routes []Route
		for _, a := range hosts {
			for _, b := range hosts {
				if a == b {
					continue
				}
				rt, err := r.Route(a, b)
				if err != nil || r.VerifyRoute(rt) != nil {
					return false
				}
				routes = append(routes, rt)
			}
		}
		return VerifyDeadlockFree(g, routes) == nil
	}, &quick.Config{MaxCount: 25})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMinimalRoutesWouldDeadlockOnRing(t *testing.T) {
	// Negative control: unrestricted shortest-path routing on a ring (all
	// going clockwise) has a cyclic channel dependency.  This is the
	// textbook wormhole deadlock that up/down routing exists to avoid.
	g := topology.New()
	n := 4
	sws := make([]topology.NodeID, n)
	for i := 0; i < n; i++ {
		sws[i] = g.AddSwitch("")
	}
	ports := make([]topology.PortID, n) // clockwise output port of switch i
	for i := 0; i < n; i++ {
		pa, _ := g.Connect(sws[i], sws[(i+1)%n], 1)
		ports[i] = pa
	}
	hosts := make([]topology.NodeID, n)
	hostPorts := make([]topology.PortID, n)
	for i := 0; i < n; i++ {
		hosts[i] = g.AddHost("")
		hp, _ := g.Connect(sws[i], hosts[i], 1)
		hostPorts[i] = hp
	}
	// Hand-build clockwise 2-hop routes i -> i+2.
	var routes []Route
	for i := 0; i < n; i++ {
		j := (i + 2) % n
		routes = append(routes, Route{
			Src: hosts[i], Dst: hosts[j],
			Switches: []topology.NodeID{sws[i], sws[(i+1)%n], sws[j]},
			Ports:    []topology.PortID{ports[i], ports[(i+1)%n], hostPorts[j]},
		})
	}
	if err := VerifyDeadlockFree(g, routes); err == nil {
		t.Fatal("clockwise ring routing reported deadlock-free")
	}
}

func TestNewRejectsBadRoot(t *testing.T) {
	g := topology.Star(2)
	if _, err := New(g, g.Hosts()[0]); err == nil {
		t.Fatal("host accepted as up/down root")
	}
}

func TestExplicitRoot(t *testing.T) {
	g := topology.Torus(4, 4, 1, 1)
	root := g.Switches()[5]
	r, err := New(g, root)
	if err != nil {
		t.Fatal(err)
	}
	if r.Root != root || r.Level[root] != 0 {
		t.Fatal("explicit root not honoured")
	}
}

func BenchmarkRouteTable8x8(b *testing.B) {
	g := topology.Torus(8, 8, 1, 1)
	r, err := New(g, topology.None)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.NewTable(false); err != nil {
			b.Fatal(err)
		}
	}
}
