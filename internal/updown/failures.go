package updown

import (
	"fmt"

	"wormlan/internal/topology"
)

// Edge identifies one side of a full-duplex cable by the node and port it
// leaves from.  A failure of either side kills the whole cable.
type Edge struct {
	Node topology.NodeID
	Port topology.PortID
}

// Failures is the set of dead cables and dead switches a routing must
// avoid — the surviving-subgraph input to WithoutEdges and Recompute.
// A nil *Failures means a healthy fabric everywhere it is accepted.
type Failures struct {
	// Links holds the failed cables; FailLink records both directed sides
	// so lookups need no peer resolution.
	Links map[Edge]bool
	// Switches holds crashed switches; every cable touching a crashed
	// switch is implicitly dead.
	Switches map[topology.NodeID]bool
}

// NewFailures returns an empty failure set.
func NewFailures() *Failures {
	return &Failures{
		Links:    make(map[Edge]bool),
		Switches: make(map[topology.NodeID]bool),
	}
}

// Empty reports whether the set records no failures.
func (f *Failures) Empty() bool {
	return f == nil || (len(f.Links) == 0 && len(f.Switches) == 0)
}

// FailLink records the cable out of port p of node n (both sides) as dead.
func (f *Failures) FailLink(g *topology.Graph, n topology.NodeID, p topology.PortID) {
	port := g.Node(n).Ports[p]
	if !port.Wired() {
		panic(fmt.Sprintf("updown: failing unwired port %d of node %d", p, n))
	}
	f.Links[Edge{n, p}] = true
	f.Links[Edge{port.Peer, port.PeerPort}] = true
}

// FailSwitch records switch n as crashed.
func (f *Failures) FailSwitch(n topology.NodeID) { f.Switches[n] = true }

// SwitchDead reports whether switch n has crashed.
func (f *Failures) SwitchDead(n topology.NodeID) bool {
	return f != nil && f.Switches[n]
}

// LinkDead reports whether the cable out of port p of node n is unusable:
// explicitly failed, or touching a crashed switch on either end.
func (f *Failures) LinkDead(g *topology.Graph, n topology.NodeID, p topology.PortID) bool {
	if f == nil {
		return false
	}
	if f.Links[Edge{n, p}] {
		return true
	}
	node := g.Node(n)
	if node.Kind == topology.Switch && f.Switches[n] {
		return true
	}
	peer := node.Ports[p].Peer
	return g.Node(peer).Kind == topology.Switch && f.Switches[peer]
}

// Clone returns an independent copy of the set (nil clones to an empty set).
func (f *Failures) Clone() *Failures {
	out := NewFailures()
	if f == nil {
		return out
	}
	//wormlint:ordered set copied into a set; insertion order is invisible
	for e := range f.Links {
		out.Links[e] = true
	}
	//wormlint:ordered set copied into a set; insertion order is invisible
	for s := range f.Switches {
		out.Switches[s] = true
	}
	return out
}

// WithoutEdges computes the up/down labelling of the surviving subgraph of
// g: the BFS spanning tree simply never crosses dead links or enters dead
// switches, reusing the machinery of New.  If root is topology.None the
// lowest-numbered live switch is used (the same election rule as the
// distributed mapper, so a re-map after the old root dies converges to the
// same choice).  Switches cut off from the root keep Level -1 and the
// hosts behind them are reported unreachable by Reachable; routing to them
// fails rather than mis-delivering.
func WithoutEdges(g *topology.Graph, root topology.NodeID, fail *Failures) (*Routing, error) {
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("updown: invalid topology: %w", err)
	}
	var live []topology.NodeID
	for _, sw := range g.Switches() {
		if !fail.SwitchDead(sw) {
			live = append(live, sw)
		}
	}
	if len(live) == 0 {
		return nil, fmt.Errorf("updown: no surviving switches")
	}
	if root == topology.None {
		root = live[0]
	}
	if g.Node(root).Kind != topology.Switch {
		return nil, fmt.Errorf("updown: root %d is not a switch", root)
	}
	if fail.SwitchDead(root) {
		return nil, fmt.Errorf("updown: root switch %d is dead", root)
	}
	r := &Routing{
		G:          g,
		Root:       root,
		Level:      make([]int, len(g.Nodes)),
		Parent:     make([]topology.NodeID, len(g.Nodes)),
		ParentPort: make([]topology.PortID, len(g.Nodes)),
		inTree:     make([][]bool, len(g.Nodes)),
		fail:       fail,
	}
	for i := range g.Nodes {
		r.Level[i] = -1
		r.Parent[i] = topology.None
		r.ParentPort[i] = topology.NoPort
		r.inTree[i] = make([]bool, len(g.Nodes[i].Ports))
	}
	r.Level[root] = 0
	queue := []topology.NodeID{root}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for pi, p := range g.Node(u).Ports {
			if !p.Wired() || g.Node(p.Peer).Kind != topology.Switch {
				continue
			}
			if fail.SwitchDead(p.Peer) || fail.LinkDead(g, u, topology.PortID(pi)) {
				continue
			}
			if r.Level[p.Peer] < 0 {
				r.Level[p.Peer] = r.Level[u] + 1
				r.Parent[p.Peer] = u
				r.ParentPort[p.Peer] = p.PeerPort
				r.inTree[u][pi] = true
				r.inTree[p.Peer][p.PeerPort] = true
				queue = append(queue, p.Peer)
			}
		}
	}
	for i := range g.Nodes {
		for pi, p := range g.Nodes[i].Ports {
			if !p.Wired() {
				continue
			}
			hostSide := g.Nodes[i].Kind == topology.Host || g.Node(p.Peer).Kind == topology.Host
			if hostSide && !fail.LinkDead(g, topology.NodeID(i), topology.PortID(pi)) {
				r.inTree[i][pi] = true
			}
		}
	}
	return r, nil
}

// Recompute rebuilds the routing after (additional) failures, keeping the
// current root when it survived and re-electing the lowest live switch
// when it did not — what the Myrinet mapper daemon does after it detects a
// dead link or switch.
func (r *Routing) Recompute(fail *Failures) (*Routing, error) {
	root := r.Root
	if fail.SwitchDead(root) {
		root = topology.None
	}
	return WithoutEdges(r.G, root, fail)
}

// Failures returns the failure set the routing was computed against (nil
// for a healthy-fabric routing from New).
func (r *Routing) Failures() *Failures { return r.fail }

// Reachable reports whether host h can be routed to under this labelling:
// its attachment switch survives in the root's component and its host link
// is alive.
func (r *Routing) Reachable(h topology.NodeID) bool {
	if r.G.Node(h).Kind != topology.Host {
		return false
	}
	sw, swPort := r.G.HostAttachment(h)
	if sw == topology.None || r.Level[sw] < 0 {
		return false
	}
	return !r.fail.LinkDead(r.G, sw, swPort)
}

// NewTableSurviving precomputes routes between every ordered pair of
// mutually reachable hosts, leaving unroutable pairs empty instead of
// failing the whole table the way NewTable does.  Use Table.HasRoute to
// test a pair before Lookup.
func (r *Routing) NewTableSurviving(treeOnly bool) (*Table, error) {
	hosts := r.G.Hosts()
	t := &Table{Hosts: hosts, index: make(map[topology.NodeID]int, len(hosts))}
	for i, h := range hosts {
		t.index[h] = i
	}
	t.routes = make([][]Route, len(hosts))
	for i, src := range hosts {
		t.routes[i] = make([]Route, len(hosts))
		if !r.Reachable(src) {
			continue
		}
		for j, dst := range hosts {
			if i == j || !r.Reachable(dst) {
				continue
			}
			rt, err := r.route(src, dst, treeOnly)
			if err != nil {
				// Reachable endpoints in the same component always route
				// (up to the common root works); cross-component pairs are
				// simply absent.
				continue
			}
			t.routes[i][j] = rt
		}
	}
	return t, nil
}

// HasRoute reports whether the table holds a route from src to dst.
func (t *Table) HasRoute(src, dst topology.NodeID) bool {
	i, oki := t.index[src]
	j, okj := t.index[dst]
	return oki && okj && len(t.routes[i][j].Ports) > 0
}
