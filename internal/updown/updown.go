// Package updown implements the deadlock-free up*/down* routing scheme
// introduced by Autonet [SBB+91] and employed by Myrinet, as described in
// Section 2 of the paper.
//
// One switch is chosen as the root of a spanning tree (computed here by
// breadth-first search; Myrinet computes it with a background "mapping"
// algorithm).  Every directed switch-to-switch link is labelled 'up' if it
// points from a lower to a higher level in the tree — i.e. toward a node at
// a smaller distance from the root — with node IDs breaking ties between
// same-level nodes.  A legal route traverses zero or more 'up' links
// followed by zero or more 'down' links.  Because every cycle in the
// network would need a down->up transition somewhere, circular waits are
// impossible and the routing is deadlock-free.
//
// The package also provides the tree-restricted variant used by the
// switch-level multicast scheme of Section 3, in which worms may only use
// links of the spanning tree itself (crosslinks are excluded entirely).
package updown

import (
	"fmt"

	"wormlan/internal/topology"
)

// Routing holds the up/down labelling of a topology and computes routes.
type Routing struct {
	G    *topology.Graph
	Root topology.NodeID

	// Level is the BFS distance of each switch from the root
	// (only meaningful for switch nodes; hosts get -1).
	Level []int
	// Parent is each switch's spanning-tree parent (root and hosts: None).
	Parent []topology.NodeID
	// ParentPort is the output port on the switch leading to its parent.
	ParentPort []topology.PortID

	// inTree[n][p] reports whether the directed link out of port p of node
	// n is part of the spanning tree (host links are always in tree).
	inTree [][]bool

	// fail is the failure set the labelling was computed against; nil for a
	// healthy fabric (New).  Routes never cross links it marks dead.
	fail *Failures
}

// New computes the up/down labelling of g rooted at the given switch.
// If root is topology.None, the lowest-numbered switch is used.
func New(g *topology.Graph, root topology.NodeID) (*Routing, error) {
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("updown: invalid topology: %w", err)
	}
	switches := g.Switches()
	if len(switches) == 0 {
		return nil, fmt.Errorf("updown: no switches")
	}
	if root == topology.None {
		root = switches[0]
	}
	if g.Node(root).Kind != topology.Switch {
		return nil, fmt.Errorf("updown: root %d is not a switch", root)
	}
	r := &Routing{
		G:          g,
		Root:       root,
		Level:      make([]int, len(g.Nodes)),
		Parent:     make([]topology.NodeID, len(g.Nodes)),
		ParentPort: make([]topology.PortID, len(g.Nodes)),
		inTree:     make([][]bool, len(g.Nodes)),
	}
	for i := range g.Nodes {
		r.Level[i] = -1
		r.Parent[i] = topology.None
		r.ParentPort[i] = topology.NoPort
		r.inTree[i] = make([]bool, len(g.Nodes[i].Ports))
	}
	// BFS over switches only; deterministic because ports are scanned in
	// index order and the queue is FIFO.
	r.Level[root] = 0
	queue := []topology.NodeID{root}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for pi, p := range g.Node(u).Ports {
			if !p.Wired() || g.Node(p.Peer).Kind != topology.Switch {
				continue
			}
			if r.Level[p.Peer] < 0 {
				r.Level[p.Peer] = r.Level[u] + 1
				r.Parent[p.Peer] = u
				r.ParentPort[p.Peer] = p.PeerPort
				r.inTree[u][pi] = true
				r.inTree[p.Peer][p.PeerPort] = true
				queue = append(queue, p.Peer)
			}
		}
	}
	// Host links belong to the tree by definition.
	for i := range g.Nodes {
		for pi, p := range g.Nodes[i].Ports {
			if p.Wired() && (g.Nodes[i].Kind == topology.Host || g.Node(p.Peer).Kind == topology.Host) {
				r.inTree[i][pi] = true
			}
		}
	}
	return r, nil
}

// IsUp reports whether traversing the link out of port p of switch n is an
// 'up' traversal: toward a strictly lower level, or toward an equal-level
// switch with a lower node ID.
func (r *Routing) IsUp(n topology.NodeID, p topology.PortID) bool {
	port := r.G.Node(n).Ports[p]
	peer := port.Peer
	if r.G.Node(peer).Kind != topology.Switch {
		return false
	}
	lu, lv := r.Level[n], r.Level[peer]
	if lv != lu {
		return lv < lu
	}
	return peer < n
}

// InTree reports whether the link out of port p of node n is part of the
// up/down spanning tree.
func (r *Routing) InTree(n topology.NodeID, p topology.PortID) bool {
	return r.inTree[n][p]
}

// Route is a Myrinet-style source route: the output port to take at each
// switch on the path, in order.  The final port delivers the worm to the
// destination host adapter.
type Route struct {
	Src, Dst topology.NodeID
	Ports    []topology.PortID
	// Switches visited, parallel to Ports (Switches[i] takes Ports[i]).
	Switches []topology.NodeID
}

// Hops returns the number of switch traversals on the route.
func (rt Route) Hops() int { return len(rt.Ports) }

// routeState is a node plus the "have we gone down yet" phase of the
// up*/down* walk.
type routeState struct {
	node topology.NodeID
	down bool
}

// Route computes a shortest legal up*/down* route from host src to host
// dst.  Among equal-length routes the choice is deterministic (the paper's
// simulation likewise fixes one path per source-destination pair).
// treeOnly restricts the walk to spanning-tree links, the crosslink-free
// discipline required by the switch-level multicast scheme of Section 3.
func (r *Routing) route(src, dst topology.NodeID, treeOnly bool) (Route, error) {
	g := r.G
	if g.Node(src).Kind != topology.Host || g.Node(dst).Kind != topology.Host {
		return Route{}, fmt.Errorf("updown: route endpoints must be hosts (got %s, %s)",
			g.Node(src).Kind, g.Node(dst).Kind)
	}
	sSrc, _ := g.HostAttachment(src)
	if src == dst {
		return Route{}, fmt.Errorf("updown: route to self (host %d)", src)
	}
	if r.fail != nil && (!r.Reachable(src) || !r.Reachable(dst)) {
		return Route{}, fmt.Errorf("updown: no surviving route from host %d to host %d", src, dst)
	}
	rt, err := r.routeFrom(sSrc, dst, treeOnly)
	if err != nil {
		return Route{}, fmt.Errorf("updown: no legal route from host %d to host %d (treeOnly=%v)",
			src, dst, treeOnly)
	}
	rt.Src = src
	return rt, nil
}

// RouteFromSwitch computes a shortest legal up*/down* route from a switch to
// a host, starting in the up phase exactly as a freshly injected worm's walk
// would.  Adaptive routing uses these as escape routes: a worm that wandered
// off the up/down order on the adaptive lanes re-enters it here, and because
// every escape-resident worm then only holds and waits on lane-0 channels of
// one legal walk, the union of waits stays acyclic.  The returned Route has
// Src set to the switch, so it must not be fed to VerifyRoute (which expects
// host endpoints).
func (r *Routing) RouteFromSwitch(sw, dst topology.NodeID) (Route, error) {
	g := r.G
	if g.Node(sw).Kind != topology.Switch || g.Node(dst).Kind != topology.Host {
		return Route{}, fmt.Errorf("updown: RouteFromSwitch wants (switch, host), got (%s, %s)",
			g.Node(sw).Kind, g.Node(dst).Kind)
	}
	if r.Level[sw] < 0 {
		return Route{}, fmt.Errorf("updown: switch %d is not in the routed component", sw)
	}
	if r.fail != nil && !r.Reachable(dst) {
		return Route{}, fmt.Errorf("updown: host %d unreachable", dst)
	}
	return r.routeFrom(sw, dst, false)
}

// routeFrom is the BFS core shared by host-to-host routing and escape-route
// computation: a shortest legal up*/down* walk from switch start to host dst.
func (r *Routing) routeFrom(start, dst topology.NodeID, treeOnly bool) (Route, error) {
	g := r.G
	sSrc := start
	sDst, dstPortOnSwitch := g.HostAttachment(dst)
	if sSrc == sDst {
		// Single-switch route: one port, straight to the destination host.
		return Route{Src: start, Dst: dst,
			Ports:    []topology.PortID{dstPortOnSwitch},
			Switches: []topology.NodeID{sSrc}}, nil
	}
	// BFS over (switch, phase).  Phase false = still allowed to go up.
	// States index a flat array (node*2 + phase) instead of a map: the
	// state space is dense and small, and route runs once per injected
	// worm, so hashing dominated it.
	type prevHop struct {
		state routeState
		port  topology.PortID
	}
	idx := func(s routeState) int {
		i := int(s.node) * 2
		if s.down {
			i++
		}
		return i
	}
	prev := make([]prevHop, 2*len(g.Nodes))
	seen := make([]bool, 2*len(g.Nodes))
	origin := routeState{sSrc, false}
	seen[idx(origin)] = true
	queue := make([]routeState, 0, len(g.Nodes))
	queue = append(queue, origin)
	var goal routeState
	found := false
	for qi := 0; qi < len(queue) && !found; qi++ {
		cur := queue[qi]
		for pi, p := range g.Node(cur.node).Ports {
			if !p.Wired() || g.Node(p.Peer).Kind != topology.Switch {
				continue
			}
			if treeOnly && !r.inTree[cur.node][pi] {
				continue
			}
			if r.fail.LinkDead(g, cur.node, topology.PortID(pi)) {
				continue
			}
			up := r.IsUp(cur.node, topology.PortID(pi))
			if cur.down && up {
				continue // down->up transition is illegal
			}
			next := routeState{p.Peer, cur.down || !up}
			if seen[idx(next)] {
				continue
			}
			seen[idx(next)] = true
			prev[idx(next)] = prevHop{state: cur, port: topology.PortID(pi)}
			if p.Peer == sDst {
				goal = next
				found = true
				break
			}
			queue = append(queue, next)
		}
	}
	if !found {
		return Route{}, fmt.Errorf("updown: no legal route from switch %d to host %d (treeOnly=%v)",
			start, dst, treeOnly)
	}
	// Walk back from goal to start.
	var ports []topology.PortID
	var sws []topology.NodeID
	for cur := goal; cur != origin; {
		h := prev[idx(cur)]
		ports = append(ports, h.port)
		sws = append(sws, h.state.node)
		cur = h.state
	}
	// Reverse into forward order.
	for i, j := 0, len(ports)-1; i < j; i, j = i+1, j-1 {
		ports[i], ports[j] = ports[j], ports[i]
		sws[i], sws[j] = sws[j], sws[i]
	}
	ports = append(ports, dstPortOnSwitch)
	sws = append(sws, sDst)
	return Route{Src: start, Dst: dst, Ports: ports, Switches: sws}, nil
}

// Route computes a shortest legal up*/down* route between two hosts.
func (r *Routing) Route(src, dst topology.NodeID) (Route, error) {
	return r.route(src, dst, false)
}

// RouteTreeOnly computes a shortest route restricted to spanning-tree links.
func (r *Routing) RouteTreeOnly(src, dst topology.NodeID) (Route, error) {
	return r.route(src, dst, true)
}

// Table precomputes routes between every ordered pair of hosts.
type Table struct {
	Hosts  []topology.NodeID
	index  map[topology.NodeID]int
	routes [][]Route
}

// NewTable builds a route table over all hosts of the topology.
func (r *Routing) NewTable(treeOnly bool) (*Table, error) {
	hosts := r.G.Hosts()
	t := &Table{Hosts: hosts, index: make(map[topology.NodeID]int, len(hosts))}
	for i, h := range hosts {
		t.index[h] = i
	}
	t.routes = make([][]Route, len(hosts))
	for i, src := range hosts {
		t.routes[i] = make([]Route, len(hosts))
		for j, dst := range hosts {
			if i == j {
				continue
			}
			rt, err := r.route(src, dst, treeOnly)
			if err != nil {
				return nil, err
			}
			t.routes[i][j] = rt
		}
	}
	return t, nil
}

// NewCustomTable wraps externally computed routes (an alternative routing
// scheme — e.g. VC-partitioned minimal torus routing or full-mesh direct
// routing, see internal/vcroute) in a Table, so the adapter and simulation
// layers consume every scheme through one type.  routes must be square
// over hosts, with routes[i][j] the route from hosts[i] to hosts[j].
func NewCustomTable(hosts []topology.NodeID, routes [][]Route) (*Table, error) {
	if len(routes) != len(hosts) {
		return nil, fmt.Errorf("updown: %d route rows for %d hosts", len(routes), len(hosts))
	}
	t := &Table{Hosts: hosts, index: make(map[topology.NodeID]int, len(hosts))}
	for i, h := range hosts {
		t.index[h] = i
		if len(routes[i]) != len(hosts) {
			return nil, fmt.Errorf("updown: route row %d has %d entries for %d hosts",
				i, len(routes[i]), len(hosts))
		}
	}
	t.routes = routes
	return t, nil
}

// Lookup returns the precomputed route from src to dst.
func (t *Table) Lookup(src, dst topology.NodeID) Route {
	return t.routes[t.index[src]][t.index[dst]]
}

// MeanHops returns the average switch-hop count over all ordered host
// pairs; the paper notes up/down paths "are generally not shortest paths".
func (t *Table) MeanHops() float64 {
	total, n := 0, 0
	for i := range t.routes {
		for j := range t.routes[i] {
			if i == j {
				continue
			}
			total += t.routes[i][j].Hops()
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return float64(total) / float64(n)
}

// VerifyRoute checks that a route is a legal up*/down* walk through the
// topology ending at the destination host.  Used by tests and by the
// deadlock-freedom property checks.
func (r *Routing) VerifyRoute(rt Route) error {
	g := r.G
	sw, _ := g.HostAttachment(rt.Src)
	goneDown := false
	for i, port := range rt.Ports {
		if rt.Switches[i] != sw {
			return fmt.Errorf("hop %d: route says switch %d, walk is at %d", i, rt.Switches[i], sw)
		}
		if int(port) >= len(g.Node(sw).Ports) {
			return fmt.Errorf("hop %d: port %d out of range at switch %d", i, port, sw)
		}
		p := g.Node(sw).Ports[port]
		if !p.Wired() {
			return fmt.Errorf("hop %d: port %d of switch %d unwired", i, port, sw)
		}
		if r.fail.LinkDead(g, sw, port) {
			return fmt.Errorf("hop %d: port %d of switch %d crosses a failed link", i, port, sw)
		}
		if g.Node(p.Peer).Kind == topology.Switch {
			up := r.IsUp(sw, port)
			if goneDown && up {
				return fmt.Errorf("hop %d: illegal down->up transition at switch %d", i, sw)
			}
			if !up {
				goneDown = true
			}
			sw = p.Peer
		} else {
			if i != len(rt.Ports)-1 {
				return fmt.Errorf("hop %d: reached host %d before end of route", i, p.Peer)
			}
			if p.Peer != rt.Dst {
				return fmt.Errorf("route delivers to host %d, want %d", p.Peer, rt.Dst)
			}
			return nil
		}
	}
	return fmt.Errorf("route ends at switch %d without reaching host %d", sw, rt.Dst)
}
