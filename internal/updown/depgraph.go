package updown

import (
	"fmt"

	"wormlan/internal/topology"
)

// Channel identifies a directed link: the output side of port Port on node
// Node.  Wormhole deadlock analysis [DS87] works on channels: a set of
// routes is deadlock-free if the "waits-for" relation between consecutive
// channels on the routes is acyclic.
type Channel struct {
	Node topology.NodeID
	Port topology.PortID
}

// DependencyGraph builds the channel dependency graph induced by a set of
// routes: there is an edge c1 -> c2 whenever some route acquires channel c2
// immediately after c1 (so a worm holding c1 may wait for c2).
func DependencyGraph(g *topology.Graph, routes []Route) map[Channel][]Channel {
	dep := make(map[Channel][]Channel)
	seen := make(map[[2]Channel]bool)
	add := func(a, b Channel) {
		k := [2]Channel{a, b}
		if seen[k] {
			return
		}
		seen[k] = true
		dep[a] = append(dep[a], b)
	}
	for _, rt := range routes {
		// First channel: host adapter -> first switch.
		prev := Channel{Node: rt.Src, Port: 0}
		for i, port := range rt.Ports {
			cur := Channel{Node: rt.Switches[i], Port: port}
			add(prev, cur)
			prev = cur
		}
	}
	return dep
}

// FindCycle returns a cycle in the dependency graph, or nil if it is
// acyclic.  The cycle is returned as the sequence of channels involved.
func FindCycle(dep map[Channel][]Channel) []Channel {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[Channel]int, len(dep))
	parent := make(map[Channel]Channel)
	// Deterministic iteration: collect and sort keys.
	keys := make([]Channel, 0, len(dep))
	for k := range dep {
		keys = append(keys, k)
	}
	sortChannels(keys)

	var cycleStart, cycleEnd Channel
	var dfs func(u Channel) bool
	dfs = func(u Channel) bool {
		color[u] = grey
		for _, v := range dep[u] {
			switch color[v] {
			case white:
				parent[v] = u
				if dfs(v) {
					return true
				}
			case grey:
				cycleStart, cycleEnd = v, u
				return true
			}
		}
		color[u] = black
		return false
	}
	for _, k := range keys {
		if color[k] == white && dfs(k) {
			cycle := []Channel{cycleStart}
			for v := cycleEnd; v != cycleStart; v = parent[v] {
				cycle = append(cycle, v)
			}
			// Reverse for forward order.
			for i, j := 0, len(cycle)-1; i < j; i, j = i+1, j-1 {
				cycle[i], cycle[j] = cycle[j], cycle[i]
			}
			return cycle
		}
	}
	return nil
}

func sortChannels(cs []Channel) {
	// Insertion sort is fine for the sizes involved; avoids importing sort
	// with a custom Less closure allocation in a hot test path.
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && channelLess(cs[j], cs[j-1]); j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
}

func channelLess(a, b Channel) bool {
	if a.Node != b.Node {
		return a.Node < b.Node
	}
	return a.Port < b.Port
}

// VerifyDeadlockFree checks that the channel dependency graph induced by
// the given routes is acyclic, and returns a descriptive error naming the
// offending channel cycle otherwise.
func VerifyDeadlockFree(g *topology.Graph, routes []Route) error {
	if cycle := FindCycle(DependencyGraph(g, routes)); cycle != nil {
		return fmt.Errorf("updown: channel dependency cycle of length %d: %v", len(cycle), cycle)
	}
	return nil
}
