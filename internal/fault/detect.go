package fault

// Hello detection mode: instead of the injector telling the recovery
// pipeline the topology changed (the oracle), an in-band liveness protocol
// (internal/liveness) watches every directional link and its local up/down
// verdicts drive the same mapper-rerun -> relabel -> route-rebuild ->
// adapter.Reroute pipeline.
//
// The crucial difference from the oracle: recovery acts on the *detected*
// failure set, not the true one.  A congestion-starved link that missed its
// hellos is genuinely routed around (a false positive costs capacity), and
// a failure the detector has not yet noticed keeps black-holing worms (the
// adapter's retransmit timers carry the traffic until detection catches
// up).  Detection latency, false positives, and flap counts come out as
// DetectionStats.

import (
	"fmt"

	"wormlan/internal/des"
	"wormlan/internal/liveness"
	"wormlan/internal/mapper"
	"wormlan/internal/network"
	"wormlan/internal/topology"
	"wormlan/internal/trace"
	"wormlan/internal/updown"
)

// DetectMode selects how topology changes are noticed.
type DetectMode uint8

const (
	// DetectOracle is the paper's setting: the fault injector itself
	// triggers recovery RemapDelay after each change.  The default.
	DetectOracle DetectMode = iota
	// DetectHello runs the in-band hello/liveness protocol; recovery acts
	// on its verdicts.
	DetectHello
)

// String names the mode.
func (m DetectMode) String() string {
	switch m {
	case DetectOracle:
		return "oracle"
	case DetectHello:
		return "hello"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}

// ParseDetectMode parses a -detect flag value.
func ParseDetectMode(s string) (DetectMode, error) {
	switch s {
	case "", "oracle":
		return DetectOracle, nil
	case "hello":
		return DetectHello, nil
	default:
		return 0, fmt.Errorf("fault: unknown detection mode %q (want oracle or hello)", s)
	}
}

// DefaultConvergeDelay is the hello mode's verdict-to-reroute latency: the
// mapper re-run and table distribution the oracle's RemapDelay also covers,
// minus the detection share the protocol now measures for real.
const DefaultConvergeDelay des.Time = 128

// DetectionStats summarizes one run of the hello detection mode.  All
// fields are comparable, so two byte-identical runs produce equal values.
type DetectionStats struct {
	// Liveness is the detector's own accounting (misses, verdicts, false
	// positives, flaps).
	Liveness liveness.Stats
	// DetectToReroute measures verdict-to-recovery latency: for every
	// verdict, the time until the remap acting on it completed.
	DetectToReroute trace.Histogram
	// FaultToDetect measures true detection latency: for every correct
	// down verdict, the time since the link actually died.
	FaultToDetect trace.Histogram
	// Remaps counts verdict-driven recoveries that completed.
	Remaps int64
}

// detState is the injector's hello-mode bookkeeping.
type detState struct {
	mon *liveness.Monitor
	// down is the detected failure set: both directed sides of every cable
	// the protocol currently believes dead.
	down map[updown.Edge]bool
	// downSince is ground truth from applied plan events: when each directed
	// edge actually died.  Statistics only — recovery never reads it.
	downSince map[updown.Edge]des.Time
	// pending holds verdict times awaiting the next completed remap.
	pending      []des.Time
	remapPending bool

	detectToReroute trace.Histogram
	faultToDetect   trace.Histogram
	remaps          int64
}

// setupHello builds the liveness monitor over every directional link and
// starts the fabric's hello engine.
func (inj *Injector) setupHello() error {
	cfg := &inj.Cfg
	if err := cfg.Hello.Validate(); err != nil {
		return err
	}
	cfg.Hello = cfg.Hello.WithDefaults()
	if cfg.ConvergeDelay <= 0 {
		cfg.ConvergeDelay = DefaultConvergeDelay
	}
	if cfg.HelloUntil <= 0 {
		return fmt.Errorf("fault: hello detection needs a positive HelloUntil horizon")
	}
	wire := inj.F.HelloEndpoints()
	eps := make([]liveness.Endpoint, len(wire))
	for i, w := range wire {
		eps[i] = liveness.Endpoint{Node: w.Node, Port: w.Port, Delay: w.Delay}
	}
	mon, err := liveness.New(cfg.Hello, eps, inj.F.LinkAlive, cfg.Recorder)
	if err != nil {
		return err
	}
	mon.OnVerdict = inj.onVerdict
	if err := inj.F.EnableHello(network.HelloConfig{
		Interval: cfg.Hello.Interval,
		Jitter:   cfg.Hello.Jitter,
		Seed:     cfg.Hello.Seed,
		Until:    cfg.HelloUntil,
		Sink:     mon,
	}); err != nil {
		return err
	}
	inj.det = &detState{
		mon:             mon,
		down:            make(map[updown.Edge]bool),
		downSince:       make(map[updown.Edge]des.Time),
		detectToReroute: trace.Histogram{Name: "detect-to-reroute"},
		faultToDetect:   trace.Histogram{Name: "fault-to-detect"},
	}
	return nil
}

// Detection returns a snapshot of the hello mode's statistics, nil in
// oracle mode.
func (inj *Injector) Detection() *DetectionStats {
	if inj.det == nil {
		return nil
	}
	return &DetectionStats{
		Liveness:        inj.det.mon.Stats(),
		DetectToReroute: inj.det.detectToReroute,
		FaultToDetect:   inj.det.faultToDetect,
		Remaps:          inj.det.remaps,
	}
}

// edgePair returns both directed sides of the cable at (n, p).
func edgePair(g *topology.Graph, n topology.NodeID, p topology.PortID) (updown.Edge, updown.Edge) {
	port := g.Node(n).Ports[p]
	return updown.Edge{Node: n, Port: p}, updown.Edge{Node: port.Peer, Port: port.PeerPort}
}

// trackTruth records when edges actually die and revive, so FaultToDetect
// can be measured.  Recovery never reads this state.
func (d *detState) trackTruth(inj *Injector, e Event) {
	g := inj.F.G
	now := inj.K.Now()
	mark := func(n topology.NodeID, p topology.PortID) {
		a, b := edgePair(g, n, p)
		if inj.F.LinkAlive(n, p) {
			delete(d.downSince, a)
			delete(d.downSince, b)
			return
		}
		if _, ok := d.downSince[a]; !ok {
			d.downSince[a] = now
			d.downSince[b] = now
		}
	}
	//wormlint:partial CorruptFlit and HostStall never change link aliveness, so the oracle has nothing to mark
	switch e.Kind {
	case LinkDown, LinkUp:
		mark(e.Node, e.Port)
	case SwitchDown, SwitchUp:
		for pi, p := range g.Node(e.Node).Ports {
			if p.Wired() {
				mark(e.Node, topology.PortID(pi))
			}
		}
	}
}

// onVerdict feeds one liveness decision into the detected failure set and
// schedules a recovery pass.
func (inj *Injector) onVerdict(v liveness.Verdict) {
	d := inj.det
	a, b := edgePair(inj.F.G, v.Node, v.Port)
	if v.Up {
		delete(d.down, a)
		delete(d.down, b)
	} else {
		d.down[a] = true
		d.down[b] = true
		if t, ok := d.downSince[a]; ok && !v.FalsePositive {
			d.faultToDetect.Add(float64(v.At - t))
		}
	}
	d.pending = append(d.pending, v.At)
	inj.scheduleDetectRemap()
}

// scheduleDetectRemap coalesces verdicts the way scheduleRemap coalesces
// oracle events: one recovery pass runs ConvergeDelay after the first
// verdict of a burst, over whatever the detector believes by then.
func (inj *Injector) scheduleDetectRemap() {
	d := inj.det
	if d.remapPending {
		return
	}
	d.remapPending = true
	inj.K.After(inj.Cfg.ConvergeDelay, func() {
		d.remapPending = false
		inj.remapDetected()
	})
}

// remapDetected runs the recovery pipeline over the *detected* failure set:
// mapper re-run, up/down relabel, route table rebuild, OnRemap.  False
// positives really are routed around; undetected failures really are still
// routed into.
func (inj *Injector) remapDetected() {
	d := inj.det
	fail := updown.NewFailures()
	//wormlint:ordered set copied into a set; insertion order is invisible
	for e := range d.down {
		fail.Links[e] = true
	}
	failedLinks := make(map[mapper.LinkID]bool, len(fail.Links))
	//wormlint:ordered set re-keyed into a set; insertion order is invisible
	for e := range fail.Links {
		failedLinks[mapper.LinkID{Node: e.Node, Port: e.Port}] = true
	}
	res, err := mapper.RunSurviving(inj.F.G, failedLinks, fail.Switches)
	if err != nil {
		inj.ctr.RemapFailures++
		return
	}
	for _, st := range res.Unmapped {
		fail.FailSwitch(st.Switch)
	}
	ud, err := updown.WithoutEdges(inj.F.G, res.Root, fail)
	if err != nil {
		inj.ctr.RemapFailures++
		return
	}
	tbl, err := ud.NewTableSurviving(false)
	if err != nil {
		inj.ctr.RemapFailures++
		return
	}
	inj.F.SetRouting(ud)
	inj.ctr.Remaps++
	d.remaps++
	now := inj.K.Now()
	for _, tv := range d.pending {
		d.detectToReroute.Add(float64(now - tv))
	}
	d.pending = d.pending[:0]
	if inj.Cfg.OnRemap != nil {
		inj.Cfg.OnRemap(ud, tbl)
	}
}
