package fault

import (
	"fmt"
	"sort"

	"wormlan/internal/topology"
	"wormlan/internal/updown"
)

// Validate rejects malformed plans before anything is scheduled, instead
// of the silent per-event no-op the injector's apply path would produce:
//
//   - events scheduled at time <= 0 (the fabric starts at t=0; a fault
//     "before the beginning" is a plan bug, not a scenario),
//   - out-of-range or wrong-kind Node/Port targets,
//   - LinkUp/SwitchUp events with no matching earlier Down — reviving
//     something that was never killed,
//   - negative HostStall durations.
//
// Repeated Downs of the same target without an intervening Up are allowed
// (RandomPlan draws targets with replacement and the injector treats the
// duplicate as a no-op); an Up is valid as long as Downs of its target
// outnumber earlier Ups.  Events are checked in the order the kernel will
// fire them: by time, ties in plan order.
func (p *Plan) Validate(g *topology.Graph) error {
	if p == nil {
		return nil
	}
	order := make([]int, len(p.Events))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return p.Events[order[a]].At < p.Events[order[b]].At
	})

	// Down-minus-Up balance per cable (keyed by the directed edge as
	// written; the injector applies events by that same key) and per
	// switch.
	linkDowns := map[updown.Edge]int{}
	switchDowns := map[topology.NodeID]int{}

	for _, i := range order {
		e := p.Events[i]
		fail := func(format string, args ...any) error {
			return fmt.Errorf("fault: plan event %d (%s at t=%d): %s",
				i, e.Kind, e.At, fmt.Sprintf(format, args...))
		}
		if e.At <= 0 {
			return fail("scheduled at or before time 0")
		}
		if e.Node < 0 || int(e.Node) >= len(g.Nodes) {
			if e.Kind == CorruptFlit {
				// Node is a scan hint for corruption events, not a target.
				continue
			}
			return fail("node %d out of range [0, %d)", e.Node, len(g.Nodes))
		}
		node := g.Node(e.Node)
		switch e.Kind {
		case LinkDown, LinkUp:
			if e.Port < 0 || int(e.Port) >= len(node.Ports) {
				return fail("port %d out of range [0, %d) on node %d", e.Port, len(node.Ports), e.Node)
			}
			if !node.Ports[e.Port].Wired() {
				return fail("port %d of node %d is not wired", e.Port, e.Node)
			}
			edge := updown.Edge{Node: e.Node, Port: e.Port}
			if e.Kind == LinkDown {
				linkDowns[edge]++
			} else if linkDowns[edge] <= 0 {
				return fail("LinkUp without a prior LinkDown of port %d on node %d", e.Port, e.Node)
			} else {
				linkDowns[edge]--
			}
		case SwitchDown, SwitchUp:
			if node.Kind != topology.Switch {
				return fail("node %d is not a switch", e.Node)
			}
			if e.Kind == SwitchDown {
				switchDowns[e.Node]++
			} else if switchDowns[e.Node] <= 0 {
				return fail("SwitchUp without a prior SwitchDown of switch %d", e.Node)
			} else {
				switchDowns[e.Node]--
			}
		case HostStall:
			if node.Kind != topology.Host {
				return fail("node %d is not a host", e.Node)
			}
			if e.Dur < 0 {
				return fail("negative stall duration %d", e.Dur)
			}
		case CorruptFlit:
			// Node is a deterministic scan hint; any value is meaningful.
		default:
			return fail("unknown event kind %d", uint8(e.Kind))
		}
	}
	return nil
}
