// Package fault schedules deterministic failure events against a running
// fabric and drives recovery: when the topology changes it re-runs the
// distributed mapper over the surviving subgraph, recomputes the up*/down*
// labelling (updown.WithoutEdges), rebuilds the route table, and hands the
// result to the adapter layer via a callback.
//
// The paper's Myrinet setting assumes exactly this division of labour: the
// fabric detects nothing, worms in flight at the moment of a failure are
// simply lost, and a background mapper daemon notices the change and
// re-maps.  InjectorConfig.RemapDelay models the daemon's detection plus
// convergence latency.
package fault

import (
	"fmt"
	"sort"

	"wormlan/internal/des"
	"wormlan/internal/liveness"
	"wormlan/internal/mapper"
	"wormlan/internal/network"
	"wormlan/internal/rng"
	"wormlan/internal/topology"
	"wormlan/internal/trace"
	"wormlan/internal/updown"
)

// Kind classifies a scheduled fault event.
type Kind uint8

// Fault event kinds.
const (
	// LinkDown kills the full-duplex cable at (Node, Port).
	LinkDown Kind = iota
	// LinkUp revives the cable at (Node, Port).
	LinkUp
	// SwitchDown crashes switch Node.
	SwitchDown
	// SwitchUp restarts switch Node.
	SwitchUp
	// CorruptFlit damages one in-flight payload flit (Node is the scan
	// hint into the link array).
	CorruptFlit
	// HostStall freezes host Node's transmit side for Dur byte-times.
	HostStall
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case LinkDown:
		return "link-down"
	case LinkUp:
		return "link-up"
	case SwitchDown:
		return "switch-down"
	case SwitchUp:
		return "switch-up"
	case CorruptFlit:
		return "corrupt-flit"
	case HostStall:
		return "host-stall"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Event is one scheduled fault.
type Event struct {
	At   des.Time
	Kind Kind
	// Node/Port identify the target (see the Kind constants).
	Node topology.NodeID
	Port topology.PortID
	// Dur is the stall duration for HostStall.
	Dur des.Time
}

// Plan is a deterministic fault schedule.
type Plan struct {
	Events []Event
}

// Add appends an event.
func (p *Plan) Add(e Event) *Plan { p.Events = append(p.Events, e); return p }

// LinkDown schedules a cable kill at time t.
func (p *Plan) LinkDown(t des.Time, n topology.NodeID, port topology.PortID) *Plan {
	return p.Add(Event{At: t, Kind: LinkDown, Node: n, Port: port})
}

// LinkUp schedules a cable revival at time t.
func (p *Plan) LinkUp(t des.Time, n topology.NodeID, port topology.PortID) *Plan {
	return p.Add(Event{At: t, Kind: LinkUp, Node: n, Port: port})
}

// SwitchDown schedules a switch crash at time t.
func (p *Plan) SwitchDown(t des.Time, n topology.NodeID) *Plan {
	return p.Add(Event{At: t, Kind: SwitchDown, Node: n})
}

// SwitchUp schedules a switch restart at time t.
func (p *Plan) SwitchUp(t des.Time, n topology.NodeID) *Plan {
	return p.Add(Event{At: t, Kind: SwitchUp, Node: n})
}

// Corrupt schedules a flit corruption at time t (hint selects the link
// scan start for determinism).
func (p *Plan) Corrupt(t des.Time, hint int) *Plan {
	return p.Add(Event{At: t, Kind: CorruptFlit, Node: topology.NodeID(hint)})
}

// Stall schedules a host-adapter stall of duration d at time t.
func (p *Plan) Stall(t des.Time, h topology.NodeID, d des.Time) *Plan {
	return p.Add(Event{At: t, Kind: HostStall, Node: h, Dur: d})
}

// Options parameterizes RandomPlan.
type Options struct {
	// Seed makes the plan deterministic.
	Seed uint64
	// LinkDowns / SwitchDowns / Corruptions / Stalls are the number of
	// events of each kind to draw.
	LinkDowns   int
	SwitchDowns int
	Corruptions int
	Stalls      int
	// Window is the time span [1, Window] over which fault times are
	// drawn.
	Window des.Time
	// Heal, when positive, schedules the matching LinkUp/SwitchUp this
	// many byte-times after each down event.
	Heal des.Time
	// StallDur is the host-stall duration (default Window/8).
	StallDur des.Time
}

// RandomPlan draws a deterministic random fault schedule against g.  Link
// faults are drawn over switch-to-switch cables only (killing a host link
// just isolates the host; the interesting recovery dynamics are in the
// fabric core), switch faults over all switches.
func RandomPlan(g *topology.Graph, o Options) *Plan {
	r := rng.New(o.Seed, 0x5eed_fa17)
	if o.Window <= 0 {
		o.Window = 1 << 16
	}
	if o.StallDur <= 0 {
		o.StallDur = o.Window / 8
	}
	at := func() des.Time { return 1 + des.Time(r.Intn(int(o.Window))) }

	// Candidate switch-switch cables, one entry per cable (lower node ID
	// side), in deterministic order.
	type cable struct {
		n topology.NodeID
		p topology.PortID
	}
	var cables []cable
	for _, sw := range g.Switches() {
		for pi, p := range g.Node(sw).Ports {
			if !p.Wired() || g.Node(p.Peer).Kind != topology.Switch {
				continue
			}
			if p.Peer > sw || (p.Peer == sw && p.PeerPort > topology.PortID(pi)) {
				cables = append(cables, cable{sw, topology.PortID(pi)})
			}
		}
	}
	switches := g.Switches()
	hosts := g.Hosts()
	plan := &Plan{}
	for i := 0; i < o.LinkDowns && len(cables) > 0; i++ {
		c := cables[r.Intn(len(cables))]
		t := at()
		plan.LinkDown(t, c.n, c.p)
		if o.Heal > 0 {
			plan.LinkUp(t+o.Heal, c.n, c.p)
		}
	}
	for i := 0; i < o.SwitchDowns && len(switches) > 0; i++ {
		sw := switches[r.Intn(len(switches))]
		t := at()
		plan.SwitchDown(t, sw)
		if o.Heal > 0 {
			plan.SwitchUp(t+o.Heal, sw)
		}
	}
	for i := 0; i < o.Corruptions; i++ {
		plan.Corrupt(at(), r.Intn(1<<16))
	}
	for i := 0; i < o.Stalls && len(hosts) > 0; i++ {
		plan.Stall(at(), hosts[r.Intn(len(hosts))], o.StallDur)
	}
	plan.Sort()
	return plan
}

// Sort orders events by time (stable on insertion order for ties).
func (p *Plan) Sort() {
	sort.SliceStable(p.Events, func(i, j int) bool { return p.Events[i].At < p.Events[j].At })
}

// Counters aggregates injector activity.
type Counters struct {
	LinkDowns   int64
	LinkUps     int64
	SwitchDowns int64
	SwitchUps   int64
	Corruptions int64
	// CorruptMisses counts CorruptFlit events that found no payload flit
	// in flight to damage.
	CorruptMisses int64
	Stalls        int64
	// Remaps counts successful route recomputations; RemapFailures counts
	// recomputations that could not produce any routing (e.g. no surviving
	// switches).
	Remaps        int64
	RemapFailures int64
}

// DefaultRemapDelay is the oracle mode's modelled recovery latency: the
// time between a topology change and the completion of the mapper daemon's
// re-map, covering detection, mapper convergence, and route-table
// distribution in one lump.  512 byte-times is 6.4 µs at 640 Mb/s —
// optimistic for a real daemon, but the paper treats detection as free and
// this constant is exactly the knob DetectHello replaces with a measured
// quantity.  Surfaced through sim.Config.RemapDelay.
const DefaultRemapDelay des.Time = 512

// InjectorConfig parameterizes recovery behaviour.
type InjectorConfig struct {
	// RemapDelay is the oracle mode's detection-plus-convergence latency
	// (default DefaultRemapDelay).  Unused in hello mode, where detection
	// latency is a protocol outcome and only ConvergeDelay is modelled.
	RemapDelay des.Time
	// OnRemap receives each recomputed routing and route table; the
	// adapter layer installs them (see adapter.System.Reroute).
	OnRemap func(ud *updown.Routing, tbl *updown.Table)

	// Mode selects how topology changes are noticed: DetectOracle (the
	// default: the injector itself triggers recovery, as the paper's
	// mapper-daemon setting assumes) or DetectHello (the in-band liveness
	// protocol of internal/liveness discovers them).
	Mode DetectMode
	// Hello parameterizes the liveness protocol in hello mode; zero fields
	// take the liveness package defaults.
	Hello liveness.Config
	// HelloUntil bounds the hello protocol's horizon (required in hello
	// mode): hellos stop after this time so the fabric can drain for the
	// quiescence invariants.
	HelloUntil des.Time
	// ConvergeDelay is the verdict-to-reroute latency in hello mode: once
	// the detector speaks, the mapper re-run and table distribution still
	// take time (default DefaultConvergeDelay).
	ConvergeDelay des.Time
	// Recorder, when non-nil, receives the liveness event stream
	// (hello-missed, peer-down, peer-up, flap-suppressed).
	Recorder trace.Recorder
}

// Injector replays a Plan against a fabric on its kernel and performs
// route recovery after every topology change.
type Injector struct {
	K   *des.Kernel
	F   *network.Fabric
	Cfg InjectorConfig

	ctr          Counters
	remapPending bool

	// det holds the hello-mode detection state; nil in oracle mode.
	det *detState
}

// NewInjector validates the plan, schedules every event on the kernel, and
// returns the injector.  Call before running the kernel.  In hello mode it
// also builds the liveness monitor and starts the fabric's hello engine.
func NewInjector(k *des.Kernel, f *network.Fabric, plan *Plan, cfg InjectorConfig) (*Injector, error) {
	if cfg.RemapDelay <= 0 {
		cfg.RemapDelay = DefaultRemapDelay
	}
	if err := plan.Validate(f.G); err != nil {
		return nil, err
	}
	inj := &Injector{K: k, F: f, Cfg: cfg}
	if cfg.Mode == DetectHello {
		if err := inj.setupHello(); err != nil {
			return nil, err
		}
	}
	for _, e := range plan.Events {
		ev := e
		k.At(ev.At, func() { inj.apply(ev) })
	}
	return inj, nil
}

// Counters returns a snapshot of injector activity.
func (inj *Injector) Counters() Counters { return inj.ctr }

func (inj *Injector) apply(e Event) {
	switch e.Kind {
	case LinkDown:
		if err := inj.F.FailLink(e.Node, e.Port); err == nil {
			inj.ctr.LinkDowns++
			inj.topoChanged(e)
		}
	case LinkUp:
		if err := inj.F.RestoreLink(e.Node, e.Port); err == nil {
			inj.ctr.LinkUps++
			inj.topoChanged(e)
		}
	case SwitchDown:
		if err := inj.F.FailSwitch(e.Node); err == nil {
			inj.ctr.SwitchDowns++
			inj.topoChanged(e)
		}
	case SwitchUp:
		if err := inj.F.RestoreSwitch(e.Node); err == nil {
			inj.ctr.SwitchUps++
			inj.topoChanged(e)
		}
	case CorruptFlit:
		if inj.F.CorruptOnLink(int(e.Node)) {
			inj.ctr.Corruptions++
		} else {
			inj.ctr.CorruptMisses++
		}
	case HostStall:
		if err := inj.F.StallHost(e.Node, inj.K.Now()+e.Dur); err == nil {
			inj.ctr.Stalls++
		}
	}
}

// topoChanged reacts to a successfully applied topology event.  The oracle
// mode schedules recovery directly — the injector *is* the detector.  In
// hello mode recovery is the liveness protocol's job: the injector only
// records ground truth so detection latency can be measured.
func (inj *Injector) topoChanged(e Event) {
	if inj.det != nil {
		inj.det.trackTruth(inj, e)
		return
	}
	inj.scheduleRemap()
}

// scheduleRemap coalesces topology changes: one re-map fires RemapDelay
// after the first change of a burst (the mapper daemon converges once over
// whatever the fabric looks like then).
func (inj *Injector) scheduleRemap() {
	if inj.remapPending {
		return
	}
	inj.remapPending = true
	inj.K.After(inj.Cfg.RemapDelay, func() {
		inj.remapPending = false
		inj.Remap()
	})
}

// Remap runs the recovery pipeline now: distributed mapper over the
// surviving subgraph, up/down relabelling, route table rebuild, and the
// OnRemap callback.  Stranded switches (partitioned from the elected root)
// are treated as unreachable by adding them to the failure set used for
// the relabelling.
func (inj *Injector) Remap() {
	fail := inj.F.Failures()
	failedLinks := make(map[mapper.LinkID]bool, len(fail.Links))
	//wormlint:ordered set re-keyed into a set; insertion order is invisible
	for e := range fail.Links {
		failedLinks[mapper.LinkID{Node: e.Node, Port: e.Port}] = true
	}
	res, err := mapper.RunSurviving(inj.F.G, failedLinks, fail.Switches)
	if err != nil {
		inj.ctr.RemapFailures++
		return
	}
	for _, st := range res.Unmapped {
		fail.FailSwitch(st.Switch)
	}
	ud, err := updown.WithoutEdges(inj.F.G, res.Root, fail)
	if err != nil {
		inj.ctr.RemapFailures++
		return
	}
	tbl, err := ud.NewTableSurviving(false)
	if err != nil {
		inj.ctr.RemapFailures++
		return
	}
	inj.F.SetRouting(ud)
	inj.ctr.Remaps++
	if inj.Cfg.OnRemap != nil {
		inj.Cfg.OnRemap(ud, tbl)
	}
}
