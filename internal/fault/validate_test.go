package fault

import (
	"strings"
	"testing"

	"wormlan/internal/topology"
)

// pickCable returns one wired switch-to-switch (node, port) pair.
func pickCable(t *testing.T, g *topology.Graph) (topology.NodeID, topology.PortID) {
	t.Helper()
	for _, sw := range g.Switches() {
		for pi, p := range g.Node(sw).Ports {
			if p.Wired() && g.Node(p.Peer).Kind == topology.Switch {
				return sw, topology.PortID(pi)
			}
		}
	}
	t.Fatal("no switch-switch cable in graph")
	return 0, 0
}

func TestValidateAcceptsRandomPlans(t *testing.T) {
	g := topology.Torus(4, 4, 1, 1)
	for _, o := range []Options{
		{Seed: 99, LinkDowns: 3, SwitchDowns: 2, Corruptions: 2, Stalls: 2},
		{Seed: 7, LinkDowns: 4, SwitchDowns: 1, Corruptions: 3, Stalls: 1, Heal: 500},
	} {
		if err := RandomPlan(g, o).Validate(g); err != nil {
			t.Fatalf("random plan %+v failed validation: %v", o, err)
		}
	}
	var nilPlan *Plan
	if err := nilPlan.Validate(g); err != nil {
		t.Fatalf("nil plan: %v", err)
	}
}

func TestValidateChecksKernelFireOrder(t *testing.T) {
	// The Up precedes the Down in plan order but follows it in time; the
	// kernel fires by time, so the plan is well-formed.
	g := topology.Torus(4, 4, 1, 1)
	sw, port := pickCable(t, g)
	p := (&Plan{}).LinkUp(100, sw, port).LinkDown(50, sw, port)
	if err := p.Validate(g); err != nil {
		t.Fatalf("time-ordered up after down rejected: %v", err)
	}
	// Same events at the same time: ties fire in plan order, so the Up now
	// really does precede the Down.
	p = (&Plan{}).LinkUp(50, sw, port).LinkDown(50, sw, port)
	if err := p.Validate(g); err == nil {
		t.Fatal("tied up-before-down accepted")
	}
}

func TestValidateAllowsRepeatedDowns(t *testing.T) {
	g := topology.Torus(4, 4, 1, 1)
	sw, port := pickCable(t, g)
	p := (&Plan{}).LinkDown(10, sw, port).LinkDown(20, sw, port).LinkUp(30, sw, port).LinkUp(40, sw, port)
	if err := p.Validate(g); err != nil {
		t.Fatalf("balanced repeated downs rejected: %v", err)
	}
	p.LinkUp(50, sw, port)
	if err := p.Validate(g); err == nil {
		t.Fatal("third LinkUp against two LinkDowns accepted")
	}
}

func TestValidateRejectsMalformedPlans(t *testing.T) {
	g := topology.Torus(4, 4, 1, 1)
	sw, port := pickCable(t, g)
	host := g.Hosts()[0]
	cases := []struct {
		name string
		plan *Plan
		want string
	}{
		{"time zero", (&Plan{}).LinkDown(0, sw, port), "at or before time 0"},
		{"negative time", (&Plan{}).SwitchDown(-5, sw), "at or before time 0"},
		{"node out of range", (&Plan{}).SwitchDown(10, topology.NodeID(len(g.Nodes))), "out of range"},
		{"negative node", (&Plan{}).LinkDown(10, -1, 0), "out of range"},
		{"port out of range", (&Plan{}).LinkDown(10, sw, topology.PortID(len(g.Node(sw).Ports))), "port"},
		{"orphan link up", (&Plan{}).LinkUp(10, sw, port), "LinkUp without a prior LinkDown"},
		{"orphan switch up", (&Plan{}).SwitchUp(10, sw), "SwitchUp without a prior SwitchDown"},
		{"switch event on host", (&Plan{}).SwitchDown(10, host), "not a switch"},
		{"stall on switch", (&Plan{}).Stall(10, sw, 100), "not a host"},
		{"negative stall", (&Plan{}).Stall(10, host, -1), "negative stall duration"},
	}
	for _, tc := range cases {
		err := tc.plan.Validate(g)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestValidateIgnoresCorruptionHints(t *testing.T) {
	// CorruptFlit's Node is a scan hint, not a target: any value is valid.
	g := topology.Torus(4, 4, 1, 1)
	p := (&Plan{}).Corrupt(10, 1<<20)
	if err := p.Validate(g); err != nil {
		t.Fatalf("corruption hint rejected: %v", err)
	}
}
