package fault

import (
	"reflect"
	"testing"

	"wormlan/internal/topology"
)

func TestRandomPlanDeterministicAndSorted(t *testing.T) {
	g := topology.Torus(4, 4, 1, 1)
	opts := Options{Seed: 99, LinkDowns: 3, SwitchDowns: 2, Corruptions: 2, Stalls: 2, Heal: 500}
	p1 := RandomPlan(g, opts)
	p2 := RandomPlan(g, opts)
	if !reflect.DeepEqual(p1.Events, p2.Events) {
		t.Fatalf("same seed, different plans:\n%v\n%v", p1.Events, p2.Events)
	}
	if len(p1.Events) == 0 {
		t.Fatal("empty plan")
	}
	counts := map[Kind]int{}
	for i, e := range p1.Events {
		counts[e.Kind]++
		if i > 0 && e.At < p1.Events[i-1].At {
			t.Fatalf("plan not time-sorted at %d: %v", i, p1.Events)
		}
	}
	if counts[LinkDown] != 3 || counts[SwitchDown] != 2 ||
		counts[LinkUp] != 3 || counts[SwitchUp] != 2 ||
		counts[CorruptFlit] != 2 || counts[HostStall] != 2 {
		t.Fatalf("event mix %v", counts)
	}
	// Link faults must target switch-to-switch cables only.
	for _, e := range p1.Events {
		if e.Kind != LinkDown && e.Kind != LinkUp {
			continue
		}
		n := g.Node(e.Node)
		if n.Kind != topology.Switch || g.Node(n.Ports[e.Port].Peer).Kind != topology.Switch {
			t.Fatalf("link fault on non-cable %v", e)
		}
	}
}

func TestRandomPlanDifferentSeedsDiffer(t *testing.T) {
	g := topology.Torus(4, 4, 1, 1)
	p1 := RandomPlan(g, Options{Seed: 1, LinkDowns: 4, SwitchDowns: 2})
	p2 := RandomPlan(g, Options{Seed: 2, LinkDowns: 4, SwitchDowns: 2})
	if reflect.DeepEqual(p1.Events, p2.Events) {
		t.Fatal("different seeds produced identical plans")
	}
}

func TestKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{
		LinkDown: "link-down", LinkUp: "link-up",
		SwitchDown: "switch-down", SwitchUp: "switch-up",
		CorruptFlit: "corrupt-flit", HostStall: "host-stall",
	} {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", k, got, want)
		}
	}
	if got := Kind(42).String(); got != "kind(42)" {
		t.Errorf("unknown kind = %q", got)
	}
}
