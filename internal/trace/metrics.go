package trace

import (
	"fmt"
	"io"
	"math"
	"math/bits"

	"wormlan/internal/topology"
)

// HistBins is the number of log-spaced histogram bins.  Bin 0 holds values
// below 1; bin i (i >= 1) holds values in [2^(i-1), 2^i).  63 doubling
// bins cover every representable des.Time latency.
const HistBins = 64

// Histogram is a fixed log2-spaced histogram.  Unlike a quantile-only
// reservoir it is mergeable, has O(1) deterministic memory, and reports
// any quantile after the fact with bounded (factor-of-two bin) resolution
// refined by linear interpolation within the bin.
type Histogram struct {
	Name  string
	Count int64
	Sum   float64
	Min   float64
	Max   float64
	Bins  [HistBins]int64
}

// binOf returns the bin index for v.
func binOf(v float64) int {
	if v < 1 {
		return 0
	}
	u := uint64(v)
	b := bits.Len64(u) // v in [2^(b-1), 2^b)
	if b >= HistBins {
		return HistBins - 1
	}
	return b
}

// binRange returns the [lo, hi) value range of bin i.
func binRange(i int) (lo, hi float64) {
	if i == 0 {
		return 0, 1
	}
	return float64(int64(1) << (i - 1)), float64(int64(1) << i)
}

// Add records one observation.  Negative values clamp into bin 0.
func (h *Histogram) Add(v float64) {
	if h.Count == 0 || v < h.Min {
		h.Min = v
	}
	if h.Count == 0 || v > h.Max {
		h.Max = v
	}
	h.Count++
	h.Sum += v
	h.Bins[binOf(v)]++
}

// Merge folds other into h.
func (h *Histogram) Merge(other *Histogram) {
	if other.Count == 0 {
		return
	}
	if h.Count == 0 || other.Min < h.Min {
		h.Min = other.Min
	}
	if h.Count == 0 || other.Max > h.Max {
		h.Max = other.Max
	}
	h.Count += other.Count
	h.Sum += other.Sum
	for i := range h.Bins {
		h.Bins[i] += other.Bins[i]
	}
}

// Mean returns the sample mean, NaN when empty.
func (h *Histogram) Mean() float64 {
	if h.Count == 0 {
		return math.NaN()
	}
	return h.Sum / float64(h.Count)
}

// Quantile estimates the q-quantile (0 <= q <= 1) by locating the bin
// holding the rank and interpolating linearly inside it, clamped to the
// observed [Min, Max].  Returns NaN when empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h.Count == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return h.Min
	}
	if q >= 1 {
		return h.Max
	}
	rank := q * float64(h.Count)
	var cum float64
	for i, c := range h.Bins {
		if c == 0 {
			continue
		}
		fc := float64(c)
		if cum+fc >= rank {
			lo, hi := binRange(i)
			v := lo + (hi-lo)*(rank-cum)/fc
			if v < h.Min {
				v = h.Min
			}
			if v > h.Max {
				v = h.Max
			}
			return v
		}
		cum += fc
	}
	return h.Max
}

// String summarizes the distribution.
func (h *Histogram) String() string {
	if h.Count == 0 {
		return fmt.Sprintf("%s: n=0", h.Name)
	}
	return fmt.Sprintf("%s: n=%d mean=%.1f min=%.0f p50=%.0f p90=%.0f p99=%.0f max=%.0f",
		h.Name, h.Count, h.Mean(), h.Min,
		h.Quantile(0.5), h.Quantile(0.9), h.Quantile(0.99), h.Max)
}

// LatencyHists groups the distribution measurements of one run: multicast,
// unicast, and combined end-to-end latency over the measurement window,
// plus the kernel event-queue depth sampled after every dispatched event.
type LatencyHists struct {
	MC    Histogram
	Uni   Histogram
	All   Histogram
	Queue Histogram
}

// NewLatencyHists returns named empty histograms.
func NewLatencyHists() *LatencyHists {
	return &LatencyHists{
		MC:    Histogram{Name: "mc-latency"},
		Uni:   Histogram{Name: "uni-latency"},
		All:   Histogram{Name: "all-latency"},
		Queue: Histogram{Name: "event-queue-depth"},
	}
}

// ChannelStat is the per-directional-link utilization and stall record.
type ChannelStat struct {
	Src     topology.NodeID
	SrcPort topology.PortID
	Dst     topology.NodeID
	DstPort topology.PortID
	// Busy counts ticks a flit crossed the link's sending end.
	Busy int64
	// Stalled counts ticks a bound sender wanted to transmit into this
	// link but was held by STOP backpressure.
	Stalled int64
}

// Utilization returns Busy as a fraction of the given tick span.
func (c ChannelStat) Utilization(span int64) float64 {
	if span <= 0 {
		return 0
	}
	return float64(c.Busy) / float64(span)
}

// SwitchStat is the per-switch crossbar occupancy record.
type SwitchStat struct {
	Node topology.NodeID
	// BoundTicks is the time integral of bound output ports: the sum over
	// observed ticks of the number of outputs bound to a worm.
	BoundTicks int64
	// PeakBound is the largest number of simultaneously bound outputs.
	PeakBound int
}

// MeanOccupancy returns the average number of bound crossbar outputs over
// the given tick span.
func (s SwitchStat) MeanOccupancy(span int64) float64 {
	if span <= 0 {
		return 0
	}
	return float64(s.BoundTicks) / float64(span)
}

// Metrics is a snapshot of fabric-level metrics over one run.
type Metrics struct {
	// Channels is indexed in the fabric's deterministic link construction
	// order; Switches in node-ID order (hosts omitted).
	Channels []ChannelStat
	Switches []SwitchStat
	// Ticks is the number of byte-times the fabric was active (the
	// denominator for occupancy; links may also be normalized by the run's
	// EndTime for whole-run utilization).
	Ticks int64
}

// WriteSummary prints the busiest channels and switches, most-utilized
// first (ties broken by construction order, so output is deterministic).
func (m *Metrics) WriteSummary(w io.Writer, topN int, span int64) {
	if topN <= 0 {
		topN = 10
	}
	idx := make([]int, len(m.Channels))
	for i := range idx {
		idx[i] = i
	}
	// Insertion sort by Busy descending, stable on construction order:
	// len(channels) is small (a few hundred) and stability matters more
	// than asymptotics here.
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && m.Channels[idx[j]].Busy > m.Channels[idx[j-1]].Busy; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	fmt.Fprintf(w, "channels (top %d of %d by flits carried, span=%d):\n", topN, len(m.Channels), span)
	for i := 0; i < topN && i < len(idx); i++ {
		c := m.Channels[idx[i]]
		fmt.Fprintf(w, "  %3d.%d -> %3d.%d  busy=%8d (%.3f)  stalled=%8d\n",
			c.Src, c.SrcPort, c.Dst, c.DstPort, c.Busy, c.Utilization(span), c.Stalled)
	}
	fmt.Fprintf(w, "switches (crossbar occupancy over %d active ticks):\n", m.Ticks)
	for _, s := range m.Switches {
		fmt.Fprintf(w, "  switch %3d  mean-bound=%.3f peak=%d\n",
			s.Node, s.MeanOccupancy(m.Ticks), s.PeakBound)
	}
}
