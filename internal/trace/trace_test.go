package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"wormlan/internal/des"
)

func TestKindString(t *testing.T) {
	if EvHeadAtSwitch.String() != "head-at-switch" {
		t.Fatalf("EvHeadAtSwitch = %q", EvHeadAtSwitch.String())
	}
	if got := Kind(200).String(); got != "kind(200)" {
		t.Fatalf("unknown kind = %q", got)
	}
}

func TestRingUnderfill(t *testing.T) {
	r := NewRing(8)
	for i := 0; i < 5; i++ {
		r.Record(Event{At: des.Time(i), Worm: int64(i)})
	}
	evs := r.Events()
	if len(evs) != 5 || r.Total() != 5 || r.Dropped() != 0 {
		t.Fatalf("len=%d total=%d dropped=%d", len(evs), r.Total(), r.Dropped())
	}
	for i, e := range evs {
		if e.At != des.Time(i) {
			t.Fatalf("evs[%d].At = %d", i, e.At)
		}
	}
}

func TestRingWraparound(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 11; i++ {
		r.Record(Event{At: des.Time(i)})
	}
	evs := r.Events()
	if len(evs) != 4 || r.Total() != 11 || r.Dropped() != 7 {
		t.Fatalf("len=%d total=%d dropped=%d", len(evs), r.Total(), r.Dropped())
	}
	for i, e := range evs {
		if want := des.Time(7 + i); e.At != want {
			t.Fatalf("evs[%d].At = %d, want %d", i, e.At, want)
		}
	}
}

func TestRingPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRing(0) did not panic")
		}
	}()
	NewRing(0)
}

func TestHistogramBins(t *testing.T) {
	cases := []struct {
		v   float64
		bin int
	}{
		{-3, 0}, {0, 0}, {0.9, 0}, {1, 1}, {1.9, 1}, {2, 2}, {3, 2},
		{4, 3}, {7, 3}, {8, 4}, {1023, 10}, {1024, 11},
	}
	for _, c := range cases {
		if got := binOf(c.v); got != c.bin {
			t.Errorf("binOf(%v) = %d, want %d", c.v, got, c.bin)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	if !math.IsNaN(h.Quantile(0.5)) || !math.IsNaN(h.Mean()) {
		t.Fatal("empty histogram should report NaN")
	}
	for i := 0; i < 100; i++ {
		h.Add(float64(i))
	}
	if h.Count != 100 || h.Min != 0 || h.Max != 99 {
		t.Fatalf("count=%d min=%v max=%v", h.Count, h.Min, h.Max)
	}
	if got := h.Quantile(0); got != 0 {
		t.Errorf("q0 = %v", got)
	}
	if got := h.Quantile(1); got != 99 {
		t.Errorf("q1 = %v", got)
	}
	// Log-binned estimates carry factor-of-two bin resolution; check the
	// estimate lands in the right neighbourhood rather than exactly.
	if got := h.Quantile(0.5); got < 32 || got > 64 {
		t.Errorf("p50 = %v, want within [32,64]", got)
	}
	if got := h.Quantile(0.99); got < 64 || got > 99 {
		t.Errorf("p99 = %v, want within [64,99]", got)
	}
	if got := h.Mean(); got != 49.5 {
		t.Errorf("mean = %v", got)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 50; i++ {
		a.Add(float64(i))
	}
	for i := 50; i < 100; i++ {
		b.Add(float64(i))
	}
	a.Merge(&b)
	var whole Histogram
	for i := 0; i < 100; i++ {
		whole.Add(float64(i))
	}
	if a.Count != whole.Count || a.Sum != whole.Sum || a.Min != whole.Min || a.Max != whole.Max || a.Bins != whole.Bins {
		t.Fatalf("merge mismatch: %+v vs %+v", a, whole)
	}
}

func synthetic() []Event {
	return []Event{
		{At: 0, Kind: EvOriginate, Node: 4, Port: -1, Worm: 1, Arg: 1000},
		{At: 5, Kind: EvInject, Node: 4, Port: -1, Worm: 7, Arg: 1019},
		{At: 9, Kind: EvHeadAtSwitch, Node: 0, Port: 2, Worm: 7},
		{At: 9, Kind: EvBlocked, Node: 0, Port: 2, Worm: 7},
		{At: 40, Kind: EvResumed, Node: 0, Port: 2, Worm: 7},
		{At: 60, Kind: EvStop, Node: 1, Port: 0, Arg: 18},
		{At: 90, Kind: EvGo, Node: 1, Port: 0, Arg: 4},
		{At: 1100, Kind: EvTailDrained, Node: 0, Port: 2, Worm: 7},
		{At: 1120, Kind: EvDelivered, Node: 6, Port: -1, Worm: 7, Arg: 1},
	}
}

func TestWriteChromeDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := WriteChrome(&a, synthetic()); err != nil {
		t.Fatal(err)
	}
	if err := WriteChrome(&b, synthetic()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two exports of the same stream differ")
	}
	out := a.String()
	for _, want := range []string{
		`"ph":"X"`, `"name":"worm 7"`, `"ts":5`, `"dur":1115`,
		`"name":"stop"`, `"name":"delivered"`, `"pid":2`, `"displayTimeUnit"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %s:\n%s", want, out)
		}
	}
	// A worm seen only mid-flight (no EvInject, e.g. evicted from a ring)
	// must not produce a span.
	var c bytes.Buffer
	if err := WriteChrome(&c, []Event{{At: 3, Kind: EvBlocked, Worm: 9}}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(c.String(), `"ph":"X"`) {
		t.Error("span emitted for un-injected worm")
	}
}
