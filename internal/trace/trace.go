// Package trace is the simulator's deterministic observability layer:
// worm-lifecycle event tracing and fabric metrics, zero-cost when disabled.
//
// The paper's figures are aggregates (mean latency, throughput per host),
// but diagnosing *why* a worm stalled — STOP/GO backpressure, the
// serializing pre-hop of a totally ordered circuit, a reservation NACK —
// needs the event stream underneath the aggregate.  This package defines
// that stream.  Every event is keyed by the des.Time at which it happened
// and recorded synchronously from inside the simulation tick, so a trace
// is as reproducible as the run that produced it: two runs of the same
// seeded configuration yield byte-identical exported traces.
//
// Determinism rules for recorders (enforced for this package by wormlint,
// see DESIGN.md §10):
//
//   - A Recorder must not read the wall clock, draw randomness, or range
//     over a map while recording or exporting; order and content must be a
//     function of the recorded events alone.
//   - Record is called from inside the simulation tick and must not
//     mutate simulation state; recorders are passive sinks.
//   - Recorders are not safe for concurrent use.  The sweep engine runs
//     whole simulations in parallel: give each run its own recorder.
package trace

import (
	"fmt"

	"wormlan/internal/des"
	"wormlan/internal/topology"
)

// Kind classifies a trace event.
type Kind uint8

// Event kinds.  Span events open or close a worm's lifecycle interval;
// instant events mark protocol moments inside it.
const (
	// EvOriginate: a multicast transfer was created at its origin host
	// (Worm is the transfer ID; Arg is the payload length).
	EvOriginate Kind = iota
	// EvInject: a worm was handed to a host network interface for
	// transmission (Arg is the wire size in flits).  Opens the worm span.
	EvInject
	// EvHeadAtSwitch: a worm's header flit reached a switch input port and
	// route decoding began.
	EvHeadAtSwitch
	// EvBlocked: output arbitration failed for a routed worm head; the worm
	// holds its path and waits (wormhole blocking).
	EvBlocked
	// EvResumed: a previously blocked worm head was granted its outputs.
	EvResumed
	// EvTailDrained: the worm's tail left a switch; its crossbar bindings
	// were released.
	EvTailDrained
	// EvDelivered: a host interface completed reassembly of the worm
	// (Arg is the fragment count).  Closes the worm span at that leaf.
	EvDelivered
	// EvDropped: a worm copy was lost to a failure or corruption.  Closes
	// the worm span.
	EvDropped
	// EvFlushed: a unicast worm was flushed by a Backward Reset under
	// SchemeFlushUnicast.  Closes the worm span; the source retransmits.
	EvFlushed
	// EvStop: a switch input port's slack crossed the STOP mark and raised
	// STOP on its reverse channel (Arg is the slack fill).
	EvStop
	// EvGo: the slack drained to the GO mark and STOP was released
	// (Arg is the slack fill).
	EvGo
	// EvMCIdle: a multicast-held output port has transmitted IDLE fill for
	// Config.IdleFlagTicks and was flagged 'multicast-IDLE'.
	EvMCIdle
	// EvInterrupt: a non-blocked branch of a multicast was interrupted
	// (fragment tail sent, downstream path released) under SchemeInterrupt.
	EvInterrupt
	// EvResume: an interrupted branch resumed by re-stamping its stored
	// header.
	EvResume
	// EvAck: a host adapter accepted a data worm and sent an ACK
	// (Arg is the transfer ID).
	EvAck
	// EvNack: a host adapter rejected a data worm for lack of buffer space
	// and sent a NACK (Arg is the transfer ID).
	EvNack
	// EvRetransmit: a hop was retransmitted after a NACK backoff or an ACK
	// timeout (Worm is 0 — the retry draws a fresh worm ID at injection —
	// and Arg is the transfer ID).
	EvRetransmit
	// EvHelloSent: a liveness hello flit was placed on a directional link
	// (Node/Port are the sending end; Arg is the link index).
	EvHelloSent
	// EvHelloMissed: a liveness endpoint's hello deadline expired (Node/Port
	// are the receiving end; Arg is the consecutive-miss count).
	EvHelloMissed
	// EvPeerDown: the liveness monitor declared the peer behind (Node, Port)
	// down after the detect-multiplier of misses (Arg is 1 when the verdict
	// is a false positive — the link was merely congested, not dead).
	EvPeerDown
	// EvPeerUp: the liveness monitor re-admitted the peer behind (Node,
	// Port) after its hold-down window (Arg is the hold duration served).
	EvPeerUp
	// EvFlapSuppressed: hellos reappeared on a down endpoint but stopped
	// again before the hold-down matured; the re-admission was cancelled
	// (Node/Port are the receiving end).
	EvFlapSuppressed
	// EvRetransmitBackoff: a host adapter armed a retry timer (Worm is the
	// transfer ID, Arg is the backoff delay in byte-times; Port is 0 for an
	// ACK-timeout timer, 1 for a NACK backoff).
	EvRetransmitBackoff
)

var kindNames = [...]string{
	EvOriginate:         "originate",
	EvInject:            "inject",
	EvHeadAtSwitch:      "head-at-switch",
	EvBlocked:           "blocked",
	EvResumed:           "resumed",
	EvTailDrained:       "tail-drained",
	EvDelivered:         "delivered",
	EvDropped:           "dropped",
	EvFlushed:           "flushed",
	EvStop:              "stop",
	EvGo:                "go",
	EvMCIdle:            "mc-idle",
	EvInterrupt:         "interrupt",
	EvResume:            "resume",
	EvAck:               "ack",
	EvNack:              "nack",
	EvRetransmit:        "retransmit",
	EvHelloSent:         "hello-sent",
	EvHelloMissed:       "hello-missed",
	EvPeerDown:          "peer-down",
	EvPeerUp:            "peer-up",
	EvFlapSuppressed:    "flap-suppressed",
	EvRetransmitBackoff: "retransmit-backoff",
}

// String names the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one observation.  The zero NodeID-valued fields use
// topology.None / -1 when not applicable.
type Event struct {
	// At is the simulation time of the event in byte-times.
	At des.Time
	// Kind classifies the event.
	Kind Kind
	// Node is where it happened: a switch for port events, a host for
	// inject/deliver/ACK events, topology.None when unlocated (drops).
	Node topology.NodeID
	// Port is the switch port index, or -1 when not applicable.
	Port int
	// Worm is the worm ID the event concerns (EvOriginate: the transfer
	// ID), or 0 when none.
	Worm int64
	// Arg carries kind-specific detail; see the Kind constants.
	Arg int64
}

// String renders the event as one trace line.
func (e Event) String() string {
	return fmt.Sprintf("t=%d %s node=%d port=%d worm=%d arg=%d",
		e.At, e.Kind, e.Node, e.Port, e.Worm, e.Arg)
}

// Recorder receives the event stream of one simulation run.
//
// The fabric and adapters call Record synchronously from inside the
// simulation tick, so implementations must be cheap and must follow the
// package-level determinism rules.
type Recorder interface {
	Record(e Event)
}

// Nop is the no-op recorder: every instrumentation site treats a nil
// Recorder as disabled, but code that wants to pass a non-nil default can
// use Nop.
type Nop struct{}

// Record discards the event.
func (Nop) Record(Event) {}

// Func adapts a function to the Recorder interface.
type Func func(e Event)

// Record invokes the function.
func (f Func) Record(e Event) { f(e) }
