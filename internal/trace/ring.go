package trace

// Ring is an in-memory recorder with a bounded buffer: it keeps the most
// recent capacity events and counts everything it was offered.  A bounded
// buffer makes force-enabled tracing safe on arbitrarily long runs (CI
// runs the whole suite with tracing on) while still capturing the full
// stream on the short runs a human actually inspects.
type Ring struct {
	buf   []Event
	head  int // index of the oldest buffered event
	fill  int
	total int64
}

// NewRing returns a ring recorder holding up to capacity events.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		panic("trace: ring capacity must be positive")
	}
	return &Ring{buf: make([]Event, capacity)}
}

// Record buffers the event, evicting the oldest when full.
func (r *Ring) Record(e Event) {
	if r.fill < len(r.buf) {
		r.buf[(r.head+r.fill)%len(r.buf)] = e
		r.fill++
	} else {
		r.buf[r.head] = e
		r.head = (r.head + 1) % len(r.buf)
	}
	r.total++
}

// Events returns the buffered events in record order (oldest first).
func (r *Ring) Events() []Event {
	out := make([]Event, r.fill)
	for i := 0; i < r.fill; i++ {
		out[i] = r.buf[(r.head+i)%len(r.buf)]
	}
	return out
}

// Total returns how many events were offered, including evicted ones.
func (r *Ring) Total() int64 { return r.total }

// Dropped returns how many events were evicted by the bound.
func (r *Ring) Dropped() int64 { return r.total - int64(r.fill) }
