package trace

import (
	"bufio"
	"fmt"
	"io"

	"wormlan/internal/des"
)

// WriteChrome serializes an event stream in the Chrome trace-event JSON
// format, loadable in chrome://tracing and https://ui.perfetto.dev.
//
// Mapping:
//
//   - Every worm with an EvInject becomes a complete ("X") duration event
//     on process "worms", one track (tid) per worm ID, spanning injection
//     to its last lifecycle event (delivery, drop, or flush; multicast
//     worms close at the last leaf).
//   - Worm-scoped protocol moments (head-at-switch, blocked, resumed,
//     tail-drained, interrupt/resume, ACK/NACK, retransmit, originate)
//     become instant ("i") events on the same track.
//   - Fabric flow-control moments (STOP, GO, multicast-IDLE) become
//     instant events on process "fabric", one track per switch.
//
// Timestamps are emitted in the trace's microsecond unit but carry
// byte-times verbatim (1 µs shown = 1 byte-time = 12.5 ns of modelled
// wire time); traces compare across runs by byte content.
//
// The output is a pure function of evs: byte-identical for identical
// streams.  Events are expected in record order (as produced by a single
// deterministic run); the exporter preserves that order within each
// section and never consults maps in iteration order, the wall clock, or
// randomness.
func WriteChrome(w io.Writer, evs []Event) error {
	bw := bufio.NewWriter(w)

	// Pass 1: worm spans.  First-seen order keyed off the event stream
	// keeps the output deterministic without sorting.
	type span struct {
		id         int64
		start, end des.Time
		injected   bool
	}
	spanAt := make(map[int64]int)
	var spans []span
	for _, e := range evs {
		if e.Worm == 0 {
			continue
		}
		si, ok := spanAt[e.Worm]
		if !ok {
			si = len(spans)
			spanAt[e.Worm] = si
			spans = append(spans, span{id: e.Worm, start: e.At, end: e.At})
		}
		s := &spans[si]
		if e.At > s.end {
			s.end = e.At
		}
		if e.Kind == EvInject {
			s.injected = true
			s.start = e.At
		}
	}

	fmt.Fprint(bw, `{"displayTimeUnit":"ms","traceEvents":[`)
	first := true
	emit := func(format string, args ...any) {
		if !first {
			bw.WriteByte(',')
		}
		first = false
		fmt.Fprintf(bw, format, args...)
	}
	emit(`{"ph":"M","pid":1,"name":"process_name","args":{"name":"worms"}}`)
	emit(`{"ph":"M","pid":2,"name":"process_name","args":{"name":"fabric"}}`)

	for i := range spans {
		s := &spans[i]
		if !s.injected {
			continue // observed only mid-flight (ring eviction); no span
		}
		dur := s.end - s.start
		if dur < 1 {
			dur = 1 // zero-width spans are invisible in viewers
		}
		emit(`{"ph":"X","pid":1,"tid":%d,"ts":%d,"dur":%d,"cat":"worm","name":"worm %d"}`,
			s.id, s.start, dur, s.id)
	}
	for _, e := range evs {
		switch e.Kind {
		case EvInject:
			// Covered by the span.
		case EvStop, EvGo, EvMCIdle:
			emit(`{"ph":"i","s":"t","pid":2,"tid":%d,"ts":%d,"cat":"flow","name":%q,"args":{"port":%d,"worm":%d,"arg":%d}}`,
				e.Node, e.At, e.Kind.String(), e.Port, e.Worm, e.Arg)
		default:
			emit(`{"ph":"i","s":"t","pid":1,"tid":%d,"ts":%d,"cat":"worm","name":%q,"args":{"node":%d,"port":%d,"arg":%d}}`,
				e.Worm, e.At, e.Kind.String(), e.Node, e.Port, e.Arg)
		}
	}
	fmt.Fprint(bw, "]}\n")
	return bw.Flush()
}
