// Package profiling provides the file-based CPU and allocation profile
// plumbing shared by the CLI tools (the -cpuprofile/-memprofile flags).
// The HTTP pprof endpoints (-pprof) serve interactive inspection of a
// running process; these helpers capture whole-run profiles for offline
// `go tool pprof` analysis of the simulator hot path.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPU begins a CPU profile written to path.  The returned stop
// function ends the profile and closes the file; call it exactly once,
// after the workload finishes.
func StartCPU(path string) (stop func(), err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("cpu profile: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// WriteAllocs writes the cumulative allocation profile (alloc_space and
// friends) to path.  A garbage collection runs first so the profile also
// carries accurate live-heap numbers.
func WriteAllocs(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("alloc profile: %w", err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
		return fmt.Errorf("alloc profile: %w", err)
	}
	return nil
}
