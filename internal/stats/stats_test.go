package stats

import (
	"math"
	"testing"
	"testing/quick"

	"wormlan/internal/rng"
)

func TestWelfordKnownValues(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Fatalf("N = %d", w.N())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Fatalf("Mean = %v", w.Mean())
	}
	// Population variance is 4; sample variance = 32/7.
	if math.Abs(w.Var()-32.0/7) > 1e-12 {
		t.Fatalf("Var = %v", w.Var())
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Fatalf("extrema %v %v", w.Min(), w.Max())
	}
	if w.String() == "" {
		t.Fatal("empty String")
	}
}

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Var() != 0 || w.Min() != 0 || w.Max() != 0 {
		t.Fatal("empty collector not zero")
	}
}

func TestWelfordMatchesNaive(t *testing.T) {
	err := quick.Check(func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%100) + 2
		r := rng.New(seed, 1)
		var w Welford
		var xs []float64
		for i := 0; i < n; i++ {
			x := r.Float64()*1000 - 500
			xs = append(xs, x)
			w.Add(x)
		}
		sum := 0.0
		for _, x := range xs {
			sum += x
		}
		mean := sum / float64(n)
		ss := 0.0
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		return math.Abs(w.Mean()-mean) < 1e-9 && math.Abs(w.Var()-ss/float64(n-1)) < 1e-6
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReservoirSmallStream(t *testing.T) {
	rv := NewReservoir(100, 7)
	for i := 1; i <= 10; i++ {
		rv.Add(float64(i))
	}
	if rv.N() != 10 {
		t.Fatalf("N = %d", rv.N())
	}
	if rv.Quantile(0) != 1 || rv.Quantile(1) != 10 {
		t.Fatalf("quantiles %v %v", rv.Quantile(0), rv.Quantile(1))
	}
	if q := rv.Quantile(0.5); q < 5 || q > 6 {
		t.Fatalf("median %v", q)
	}
}

func TestReservoirLargeStreamApproximatesQuantiles(t *testing.T) {
	rv := NewReservoir(2000, 9)
	r := rng.New(3, 3)
	for i := 0; i < 100000; i++ {
		rv.Add(r.Float64())
	}
	if q := rv.Quantile(0.9); math.Abs(q-0.9) > 0.05 {
		t.Fatalf("p90 = %v", q)
	}
	if q := rv.Quantile(0.1); math.Abs(q-0.1) > 0.05 {
		t.Fatalf("p10 = %v", q)
	}
}

func TestReservoirEmptyAndBadCapacity(t *testing.T) {
	rv := NewReservoir(4, 1)
	if rv.Quantile(0.5) != 0 {
		t.Fatal("empty reservoir quantile")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("zero capacity accepted")
		}
	}()
	NewReservoir(0, 1)
}

func TestRateWindow(t *testing.T) {
	r := NewRate(100, 200)
	r.Add(50, 10)  // before window
	r.Add(100, 5)  // boundary in
	r.Add(150, 5)  // in
	r.Add(200, 5)  // boundary in
	r.Add(201, 99) // after
	if r.Total() != 15 {
		t.Fatalf("Total = %v", r.Total())
	}
	if r.PerTime() != 0.15 {
		t.Fatalf("PerTime = %v", r.PerTime())
	}
}

func TestRateBadWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty window accepted")
		}
	}()
	NewRate(5, 5)
}
