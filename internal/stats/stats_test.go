package stats

import (
	"math"
	"testing"
	"testing/quick"

	"wormlan/internal/rng"
)

func TestWelfordKnownValues(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Fatalf("N = %d", w.N())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Fatalf("Mean = %v", w.Mean())
	}
	// Population variance is 4; sample variance = 32/7.
	if math.Abs(w.Var()-32.0/7) > 1e-12 {
		t.Fatalf("Var = %v", w.Var())
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Fatalf("extrema %v %v", w.Min(), w.Max())
	}
	if w.String() == "" {
		t.Fatal("empty String")
	}
}

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if w.Valid() {
		t.Fatal("empty collector claims validity")
	}
	// An empty window is not a true zero: every moment must be NaN so
	// averaging an empty window fails loudly instead of plotting zero.
	for name, v := range map[string]float64{
		"Mean": w.Mean(), "Var": w.Var(), "Std": w.Std(),
		"Min": w.Min(), "Max": w.Max(),
	} {
		if !math.IsNaN(v) {
			t.Errorf("empty %s = %v, want NaN", name, v)
		}
	}
	w.Add(3)
	if !w.Valid() || w.Mean() != 3 || w.Min() != 3 || w.Max() != 3 {
		t.Fatalf("single sample: valid=%v mean=%v", w.Valid(), w.Mean())
	}
	if !math.IsNaN(w.Var()) {
		t.Fatalf("Var of one sample = %v, want NaN", w.Var())
	}
}

func TestWelfordMatchesNaive(t *testing.T) {
	err := quick.Check(func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%100) + 2
		r := rng.New(seed, 1)
		var w Welford
		var xs []float64
		for i := 0; i < n; i++ {
			x := r.Float64()*1000 - 500
			xs = append(xs, x)
			w.Add(x)
		}
		sum := 0.0
		for _, x := range xs {
			sum += x
		}
		mean := sum / float64(n)
		ss := 0.0
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		return math.Abs(w.Mean()-mean) < 1e-9 && math.Abs(w.Var()-ss/float64(n-1)) < 1e-6
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReservoirSmallStream(t *testing.T) {
	rv := NewReservoir(100, 7)
	for i := 1; i <= 10; i++ {
		rv.Add(float64(i))
	}
	if rv.N() != 10 {
		t.Fatalf("N = %d", rv.N())
	}
	if rv.Quantile(0) != 1 || rv.Quantile(1) != 10 {
		t.Fatalf("quantiles %v %v", rv.Quantile(0), rv.Quantile(1))
	}
	if q := rv.Quantile(0.5); q < 5 || q > 6 {
		t.Fatalf("median %v", q)
	}
}

func TestReservoirLargeStreamApproximatesQuantiles(t *testing.T) {
	rv := NewReservoir(2000, 9)
	r := rng.New(3, 3)
	for i := 0; i < 100000; i++ {
		rv.Add(r.Float64())
	}
	if q := rv.Quantile(0.9); math.Abs(q-0.9) > 0.05 {
		t.Fatalf("p90 = %v", q)
	}
	if q := rv.Quantile(0.1); math.Abs(q-0.1) > 0.05 {
		t.Fatalf("p10 = %v", q)
	}
}

// TestReservoirGoldenQuantiles feeds 0..99 into a reservoir large enough
// to keep everything: interpolated quantiles are then exact.  The old
// truncating nearest-rank index reported p50=49 and p99=98.
func TestReservoirGoldenQuantiles(t *testing.T) {
	rv := NewReservoir(200, 1)
	for i := 0; i < 100; i++ {
		rv.Add(float64(i))
	}
	for _, c := range []struct{ q, want float64 }{
		{0, 0}, {0.25, 24.75}, {0.5, 49.5}, {0.9, 89.1}, {0.99, 98.01}, {1, 99},
	} {
		if got := rv.Quantile(c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestReservoirEmptyAndBadCapacity(t *testing.T) {
	rv := NewReservoir(4, 1)
	if !math.IsNaN(rv.Quantile(0.5)) {
		t.Fatal("empty reservoir quantile should be NaN")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("zero capacity accepted")
		}
	}()
	NewReservoir(0, 1)
}

// TestRateWindow pins the half-open [start, stop) convention shared with
// sim.Run's latency recorders: the start boundary counts, the stop
// boundary does not.
func TestRateWindow(t *testing.T) {
	cases := []struct {
		name string
		t    int64
		in   bool
	}{
		{"start-1", 99, false},
		{"start", 100, true},
		{"mid", 150, true},
		{"stop-1", 199, true},
		{"stop", 200, false},
		{"stop+1", 201, false},
	}
	for _, c := range cases {
		r := NewRate(100, 200)
		r.Add(c.t, 5)
		want := 0.0
		if c.in {
			want = 5
		}
		if r.Total() != want {
			t.Errorf("%s: Add(%d) -> Total %v, want %v", c.name, c.t, r.Total(), want)
		}
	}
	r := NewRate(100, 200)
	for _, c := range cases {
		r.Add(c.t, 5)
	}
	if r.Total() != 15 {
		t.Fatalf("Total = %v, want 15", r.Total())
	}
	if r.PerTime() != 0.15 {
		t.Fatalf("PerTime = %v, want 0.15", r.PerTime())
	}
}

func TestRateBadWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty window accepted")
		}
	}()
	NewRate(5, 5)
}
