// Package stats provides the small set of statistics collectors the
// simulation experiments need: streaming mean/variance (Welford), min/max,
// a fixed-size reservoir for quantiles, and windowed rate counters.
package stats

import (
	"fmt"
	"math"
	"sort"

	"wormlan/internal/rng"
)

// Welford accumulates a streaming mean and variance.
type Welford struct {
	n          int64
	mean, m2   float64
	min, max   float64
	hasExtrema bool
}

// Add records one observation.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
	if !w.hasExtrema || x < w.min {
		w.min = x
	}
	if !w.hasExtrema || x > w.max {
		w.max = x
	}
	w.hasExtrema = true
}

// N returns the observation count.
func (w *Welford) N() int64 { return w.n }

// Mean returns the sample mean (0 with no samples).
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the unbiased sample variance.
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// Min and Max return the extrema (0 with no samples).
func (w *Welford) Min() float64 {
	if !w.hasExtrema {
		return 0
	}
	return w.min
}

// Max returns the largest observation.
func (w *Welford) Max() float64 {
	if !w.hasExtrema {
		return 0
	}
	return w.max
}

// String formats mean +/- std (n).
func (w *Welford) String() string {
	return fmt.Sprintf("%.1f±%.1f (n=%d)", w.Mean(), w.Std(), w.n)
}

// Reservoir keeps a uniform random sample of a stream for quantile
// estimates (Vitter's algorithm R, deterministic under the given source).
type Reservoir struct {
	cap    int
	seen   int64
	sample []float64
	r      *rng.Source
}

// NewReservoir returns a reservoir holding up to capacity samples.
func NewReservoir(capacity int, seed uint64) *Reservoir {
	if capacity <= 0 {
		panic("stats: reservoir capacity must be positive")
	}
	return &Reservoir{cap: capacity, r: rng.New(seed, 0x5A)}
}

// Add records one observation.
func (rv *Reservoir) Add(x float64) {
	rv.seen++
	if len(rv.sample) < rv.cap {
		rv.sample = append(rv.sample, x)
		return
	}
	if j := rv.r.Intn(int(rv.seen)); j < rv.cap {
		rv.sample[j] = x
	}
}

// Quantile returns the q-quantile (0 <= q <= 1) of the sampled stream, or
// 0 when empty.
func (rv *Reservoir) Quantile(q float64) float64 {
	if len(rv.sample) == 0 {
		return 0
	}
	s := append([]float64(nil), rv.sample...)
	sort.Float64s(s)
	idx := int(q * float64(len(s)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// N returns how many observations were offered.
func (rv *Reservoir) N() int64 { return rv.seen }

// Rate measures a quantity accumulated over a time window.
type Rate struct {
	total       float64
	start, stop int64
}

// NewRate returns a rate counter over [start, stop] (byte-times).
func NewRate(start, stop int64) *Rate {
	if stop <= start {
		panic("stats: empty rate window")
	}
	return &Rate{start: start, stop: stop}
}

// Add accumulates amount if t falls inside the window.
func (r *Rate) Add(t int64, amount float64) {
	if t >= r.start && t <= r.stop {
		r.total += amount
	}
}

// Total returns the accumulated amount.
func (r *Rate) Total() float64 { return r.total }

// PerTime returns the accumulated amount divided by the window length.
func (r *Rate) PerTime() float64 { return r.total / float64(r.stop-r.start) }
