// Package stats provides the small set of statistics collectors the
// simulation experiments need: streaming mean/variance (Welford), min/max,
// a fixed-size reservoir for quantiles, and windowed rate counters.
package stats

import (
	"fmt"
	"math"
	"sort"

	"wormlan/internal/rng"
)

// Welford accumulates a streaming mean and variance.
type Welford struct {
	n          int64
	mean, m2   float64
	min, max   float64
	hasExtrema bool
}

// Add records one observation.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
	if !w.hasExtrema || x < w.min {
		w.min = x
	}
	if !w.hasExtrema || x > w.max {
		w.max = x
	}
	w.hasExtrema = true
}

// N returns the observation count.
func (w *Welford) N() int64 { return w.n }

// Valid reports whether any observation has been recorded — i.e. whether
// Mean/Min/Max are meaningful.  Var and Std additionally need n >= 2.
func (w *Welford) Valid() bool { return w.n > 0 }

// Mean returns the sample mean, NaN with no samples.  An empty window must
// not masquerade as a true zero: figure code that averages an empty window
// now fails loudly (NaN propagates, and refuses to marshal as JSON)
// instead of plotting a spurious zero-latency point.
func (w *Welford) Mean() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.mean
}

// Var returns the unbiased sample variance, NaN for fewer than two
// samples (the estimator is undefined there, not zero).
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return math.NaN()
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the sample standard deviation (NaN for n < 2).
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// Min and Max return the extrema (NaN with no samples).
func (w *Welford) Min() float64 {
	if !w.hasExtrema {
		return math.NaN()
	}
	return w.min
}

// Max returns the largest observation (NaN with no samples).
func (w *Welford) Max() float64 {
	if !w.hasExtrema {
		return math.NaN()
	}
	return w.max
}

// String formats mean +/- std (n).
func (w *Welford) String() string {
	return fmt.Sprintf("%.1f±%.1f (n=%d)", w.Mean(), w.Std(), w.n)
}

// Reservoir keeps a uniform random sample of a stream for quantile
// estimates (Vitter's algorithm R, deterministic under the given source).
type Reservoir struct {
	cap    int
	seen   int64
	sample []float64
	r      *rng.Source
}

// NewReservoir returns a reservoir holding up to capacity samples.
func NewReservoir(capacity int, seed uint64) *Reservoir {
	if capacity <= 0 {
		panic("stats: reservoir capacity must be positive")
	}
	return &Reservoir{cap: capacity, r: rng.New(seed, 0x5A)}
}

// Add records one observation.  The replacement draw is 64-bit: on 32-bit
// platforms an int conversion of seen would overflow past 2^31 samples and
// panic (or bias) the draw.
func (rv *Reservoir) Add(x float64) {
	rv.seen++
	if len(rv.sample) < rv.cap {
		rv.sample = append(rv.sample, x)
		return
	}
	if j := rv.r.Int63n(rv.seen); j < int64(rv.cap) {
		rv.sample[int(j)] = x
	}
}

// Quantile returns the q-quantile (0 <= q <= 1) of the sampled stream by
// linear interpolation between order statistics (the "R-7" definition), or
// NaN when empty.  q=0 and q=1 return the exact extremes.  The former
// truncating nearest-rank index biased upper quantiles low: on 100 samples
// of 0..99, p99 reported 98 instead of 98.01, and p50 reported 49 instead
// of 49.5.
func (rv *Reservoir) Quantile(q float64) float64 {
	if len(rv.sample) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), rv.sample...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[lo]
	}
	return s[lo] + frac*(s[lo+1]-s[lo])
}

// N returns how many observations were offered.
func (rv *Reservoir) N() int64 { return rv.seen }

// Rate measures a quantity accumulated over a time window.
type Rate struct {
	total       float64
	start, stop int64
}

// NewRate returns a rate counter over the half-open window [start, stop)
// in byte-times — the same convention as sim.Run's latency recorders, so
// an event landing exactly at the window end is excluded by both.  (The
// window used to be closed here and half-open there, silently counting
// boundary events in throughput but not in latency.)
func NewRate(start, stop int64) *Rate {
	if stop <= start {
		panic("stats: empty rate window")
	}
	return &Rate{start: start, stop: stop}
}

// Add accumulates amount if t falls inside [start, stop).
func (r *Rate) Add(t int64, amount float64) {
	if t >= r.start && t < r.stop {
		r.total += amount
	}
}

// Total returns the accumulated amount.
func (r *Rate) Total() float64 { return r.total }

// PerTime returns the accumulated amount divided by the window length.
func (r *Rate) PerTime() float64 { return r.total / float64(r.stop-r.start) }
