package sim

import (
	"strings"
	"testing"

	"wormlan/internal/adapter"
	"wormlan/internal/fault"
	"wormlan/internal/liveness"
)

// helloConfig is smallConfig with the in-band detector in the recovery
// loop and a fault schedule for it to find.
func helloConfig(scheme Scheme, load float64) Config {
	cfg := smallConfig(scheme, load)
	cfg.Detect = fault.DetectHello
	cfg.FaultPlan = fault.RandomPlan(cfg.Graph, fault.Options{
		Seed: 3, LinkDowns: 1, SwitchDowns: 1, Window: 60_000,
	})
	cfg.Adapter = adapter.Config{
		MaxRetries:     3,
		AckTimeoutBase: 16384,
		NackBackoff:    2048,
	}
	return cfg
}

func TestRunWithHelloDetection(t *testing.T) {
	r, err := Run(helloConfig(TreeSF, 0.06))
	if err != nil {
		t.Fatal(err)
	}
	if r.Fault.LinkDowns != 1 || r.Fault.SwitchDowns != 1 {
		t.Fatalf("faults not applied: %+v", r.Fault)
	}
	d := r.Detection
	if d == nil {
		t.Fatal("Results.Detection nil in hello mode")
	}
	if d.Liveness.PeerDowns == 0 || d.Remaps == 0 {
		t.Fatalf("detection never drove recovery: %+v", d)
	}
	if d.DetectToReroute.Count == 0 || d.FaultToDetect.Count == 0 {
		t.Fatalf("detection latency histograms empty: %+v", d)
	}
	if r.Stalled {
		t.Fatal("run stalled under hello detection")
	}
	if !r.Drained {
		t.Fatal("run did not drain after hello horizon")
	}
	fc := r.Fabric
	if fc.Injected != fc.Delivered+fc.WormsDropped {
		t.Fatalf("conservation: %+v", fc)
	}
	if fc.HellosSent == 0 || fc.HellosSeen == 0 {
		t.Fatalf("no hello traffic on the wire: %+v", fc)
	}
}

func TestRunHelloDetectionDeterministic(t *testing.T) {
	a, err := Run(helloConfig(TreeSF, 0.06))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(helloConfig(TreeSF, 0.06))
	if err != nil {
		t.Fatal(err)
	}
	if *a.Detection != *b.Detection || a.Fabric != b.Fabric || a.Fault != b.Fault {
		t.Fatalf("hello run not deterministic:\n%+v\n%+v", a.Detection, b.Detection)
	}
}

func TestRunHelloWithoutFaultPlan(t *testing.T) {
	// Hello detection runs standalone: no fault plan, but the detector and
	// its wire traffic are live (measuring false positives under load).
	cfg := smallConfig(TreeSF, 0.06)
	cfg.Detect = fault.DetectHello
	cfg.Liveness = &liveness.Config{Interval: 128}
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Detection == nil {
		t.Fatal("Results.Detection nil in hello mode")
	}
	if r.Detection.Liveness.HellosSeen == 0 {
		t.Fatalf("detector saw no hellos: %+v", r.Detection.Liveness)
	}
	if r.Fabric.HellosSent == 0 {
		t.Fatalf("no hellos on the wire: %+v", r.Fabric)
	}
}

func TestRunOracleHasNoDetection(t *testing.T) {
	cfg := smallConfig(TreeSF, 0.06)
	cfg.FaultPlan = fault.RandomPlan(cfg.Graph, fault.Options{
		Seed: 3, LinkDowns: 1, Window: 60_000,
	})
	cfg.Adapter = adapter.Config{MaxRetries: 3, AckTimeoutBase: 16384, NackBackoff: 2048}
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Detection != nil {
		t.Fatalf("oracle run grew detection stats: %+v", r.Detection)
	}
	if r.Fabric.HellosSent != 0 {
		t.Fatalf("oracle run sent hellos: %+v", r.Fabric)
	}
}

func TestHelloRejectedForSwitchLevel(t *testing.T) {
	cfg := smallConfig(SwitchFabric, 0.06)
	cfg.Detect = fault.DetectHello
	if _, err := Run(cfg); err == nil || !strings.Contains(err.Error(), "switch-level") {
		t.Fatalf("switch-level + hello accepted: %v", err)
	}
}

func TestInvalidPlanRejectedByRun(t *testing.T) {
	cfg := smallConfig(TreeSF, 0.06)
	cfg.FaultPlan = (&fault.Plan{}).LinkUp(10, cfg.Graph.Switches()[0], 0)
	if _, err := Run(cfg); err == nil || !strings.Contains(err.Error(), "LinkUp without a prior LinkDown") {
		t.Fatalf("malformed plan accepted: %v", err)
	}
}
