// Package sim composes the full simulation stack — topology, up/down
// routing, byte-level fabric, host-adapter multicast protocol, Poisson
// traffic, and statistics — into single-call experiments, reproducing the
// setup of Section 7 of the paper.
package sim

import (
	"fmt"
	"os"
	"sort"
	"strings"

	"wormlan/internal/adapter"
	"wormlan/internal/des"
	"wormlan/internal/fault"
	"wormlan/internal/liveness"
	"wormlan/internal/multicast"
	"wormlan/internal/network"
	"wormlan/internal/stats"
	"wormlan/internal/switchmc"
	"wormlan/internal/topology"
	"wormlan/internal/trace"
	"wormlan/internal/traffic"
	"wormlan/internal/updown"
	"wormlan/internal/vcroute"
)

// forceTrace force-enables tracing (into a bounded ring) and metrics for
// every run when the WORMTRACE environment variable is non-empty.  CI sets
// it to run the whole tier-1 suite down the instrumented path; it must not
// change any result, which the replay tests verify.
var forceTrace = os.Getenv("WORMTRACE") != ""

// Scheme is a named multicast protocol configuration from the paper's
// evaluation.
type Scheme struct {
	Name       string
	Mode       adapter.Mode
	CutThrough bool
	// SwitchLevel selects fabric replication (Section 3, scheme A with
	// tree-restricted routing) instead of host-adapter forwarding.
	SwitchLevel bool
}

// The schemes compared in Figures 10 and 11.
var (
	// HamiltonianSF: Hamiltonian circuit with store-and-forward at each
	// node (the only option on real Myrinet hardware).
	HamiltonianSF = Scheme{Name: "hamiltonian", Mode: adapter.ModeCircuit}
	// HamiltonianCT: Hamiltonian circuit with immediate cut-through when
	// the output port is available.
	HamiltonianCT = Scheme{Name: "hamiltonian-cut-thru", Mode: adapter.ModeCircuit, CutThrough: true}
	// TreeSF: rooted tree with store-and-forward.
	TreeSF = Scheme{Name: "tree", Mode: adapter.ModeTreeRooted}
	// TreeCT: rooted tree with cut-through.
	TreeCT = Scheme{Name: "tree-cut-thru", Mode: adapter.ModeTreeRooted, CutThrough: true}
	// TreeFlood: flood-from-originator tree (unordered, lowest latency).
	TreeFlood = Scheme{Name: "tree-flood", Mode: adapter.ModeTreeFlood}
	// SwitchFabric: replication inside the crossbar switches with all
	// traffic restricted to the up/down spanning tree (Section 3).
	SwitchFabric = Scheme{Name: "switch-fabric", SwitchLevel: true}
)

// Config describes one simulation run.
type Config struct {
	// Graph is the topology under test.
	Graph *topology.Graph
	// Scheme selects the multicast protocol.
	Scheme Scheme
	// TotalOrdering serializes circuit multicasts via the lowest-ID member.
	TotalOrdering bool

	// OfferedLoad is the generated output-link utilization per host.
	OfferedLoad float64
	// MulticastProb is the probability a generated worm is multicast.
	MulticastProb float64
	// MeanWorm is the mean worm length in bytes (default 400).
	MeanWorm int

	// NumGroups random groups of GroupSize members each.
	NumGroups, GroupSize int
	// Groups, when non-nil, supplies explicit group memberships keyed by
	// group ID (e.g. from a configuration file) instead of random
	// assignment.
	Groups map[int][]topology.NodeID

	// Warmup is discarded; Measure is the sample window; Drain bounds how
	// long the run may continue past generation stop to let in-flight
	// worms land (default Measure/2).
	Warmup, Measure, Drain des.Time

	// Seed makes the whole run reproducible.
	Seed uint64

	// Adapter overrides the adapter protocol defaults (Mode/CutThrough
	// fields are overwritten from Scheme).
	Adapter adapter.Config
	// Network overrides the fabric defaults.
	Network network.Config

	// Route selects the unicast routing scheme: "" or "updown" (the
	// deadlock-free spanning-tree routing the paper assumes), "vcmin"
	// (VC-partitioned minimal torus routing with dateline lane switching;
	// needs TorusGeom and at least two virtual channels — see
	// internal/vcroute), "fullmesh" (direct routing over a pairwise-
	// adjacent switch mesh, deadlock-free without VCs), "adaptive"
	// (Duato escape-lane routing: adaptive lanes >= 1 chosen per hop from
	// local occupancy, lane-0 up*/down* escape), "clos" (spine-
	// deterministic leaf-spine direct routing; needs ClosGeom), or
	// "shufflenet" (forward-column routing with wrap-count lanes; needs
	// ShuffleGeom and three virtual channels).  Per-scheme capabilities —
	// multicast traffic, switch-level replication, topology-change
	// recovery — are declared in routeSchemes and enforced by Validate.
	Route string `json:"route,omitempty"`
	// TorusGeom supplies the torus geometry for Route == "vcmin"; build
	// the Graph with topology.TorusWithGeom to obtain it.
	TorusGeom *topology.TorusGeom `json:"-"`
	// ClosGeom supplies the leaf-spine geometry for Route == "clos"; build
	// the Graph with topology.ClosWithGeom to obtain it.
	ClosGeom *topology.ClosGeom `json:"-"`
	// ShuffleGeom supplies the shufflenet geometry for Route ==
	// "shufflenet"; build the Graph with topology.BidirShufflenetWithGeom.
	ShuffleGeom *topology.ShuffleGeom `json:"-"`

	// Tracer, when non-nil, receives the run's worm-lifecycle and protocol
	// event stream (see internal/trace).  Tracing observes; it never
	// changes results: a traced run's measurements are identical to an
	// untraced one's.  Excluded from serialized configurations.
	Tracer trace.Recorder `json:"-"`
	// Metrics enables per-switch crossbar occupancy sampling and latency
	// histograms, surfaced via Results.Channels / Results.Switches /
	// Results.Histograms.
	Metrics bool

	// FaultPlan, when non-nil, is a failure schedule injected against the
	// fabric during the run.  Topology changes trigger mapper re-runs and
	// route recomputation over the survivors (see internal/fault).  Only
	// supported with adapter-level schemes: switch-level replication has
	// no recovery protocol.
	FaultPlan *fault.Plan
	// RemapDelay is the oracle mode's detection-plus-convergence latency
	// after a topology change (default fault.DefaultRemapDelay, 512
	// byte-times); see that constant for what the lump models.  Ignored
	// under Detect == fault.DetectHello, where detection latency is
	// measured rather than assumed.
	RemapDelay des.Time

	// Detect selects the failure-detection mode: fault.DetectOracle (the
	// default — the injector triggers recovery directly, the paper's
	// mapper-daemon assumption) or fault.DetectHello (the in-band
	// hello/liveness protocol of internal/liveness; detection latency,
	// false positives, and flaps surface in Results.Detection).  Hello
	// detection may run without a FaultPlan: under congestion alone it
	// measures the protocol's false-positive behaviour.
	Detect fault.DetectMode `json:"detect,omitempty"`
	// Liveness overrides hello-protocol parameters in hello mode; nil
	// takes the liveness package defaults.
	Liveness *liveness.Config `json:"liveness,omitempty"`
}

// Results aggregates one run's measurements.
type Results struct {
	Config Config

	// MCLatency is the per-destination multicast latency (delivery time
	// minus origination time), over deliveries created in the window.
	MCLatency stats.Welford
	// UniLatency is unicast end-to-end latency over the window.
	UniLatency stats.Welford
	// AllLatency combines both (the "delay" of Figure 11).
	AllLatency stats.Welford

	// MCDeliveries / UniDeliveries count window deliveries.
	MCDeliveries, UniDeliveries int64
	// ThroughputPerHost is delivered payload bytes per byte-time per host
	// over the window (includes multicast copies).
	ThroughputPerHost float64

	// GeneratedWorms / GeneratedMC count worms created by the generator.
	GeneratedWorms, GeneratedMC int64

	Adapter adapter.Stats
	Fabric  network.Counters
	// Fault aggregates injector activity when Config.FaultPlan is set.
	Fault fault.Counters
	// Detection reports the hello protocol's outcomes (verdict counts,
	// false positives, flaps, detection-to-reroute latency quantiles) when
	// Config.Detect == fault.DetectHello; nil in oracle mode.
	Detection *fault.DetectionStats `json:",omitempty"`

	// Channels / Switches are the fabric's per-link utilization and
	// per-switch crossbar occupancy metrics; Histograms are the latency
	// distributions over the measurement window.  All nil/empty unless
	// Config.Metrics was set.
	Channels   []trace.ChannelStat `json:",omitempty"`
	Switches   []trace.SwitchStat  `json:",omitempty"`
	Histograms *trace.LatencyHists `json:",omitempty"`
	// FabricTicks is the active-tick denominator for Switches occupancy.
	FabricTicks int64 `json:",omitempty"`

	// EventsDispatched / MaxQueueDepth / EventsPerTick are kernel-level run
	// statistics (always collected; they cost nothing).  EventsPerTick is
	// the ratio of dispatched events to fabric tick passes: ~1.0 when the
	// byte-time clock dominates, higher when timers and arrivals do.
	EventsDispatched int64
	MaxQueueDepth    int
	EventsPerTick    float64

	// Stalled is set when worms remained frozen in the fabric at the end
	// of the run — the observable symptom of a deadlock.
	Stalled bool
	// Drained is set when the event queue emptied before the deadline:
	// traffic generation stopped, every retry resolved, and nothing is in
	// flight.  Only on a drained run do the quiescent invariants
	// (conservation, no held channels) have to hold exactly.
	Drained bool
	// HeldChannels counts switch outputs still bound to a worm when the
	// run stopped — the wormhole equivalent of leaked locks.  Zero on any
	// drained run.
	HeldChannels int
	// EndTime is the simulation time at which the run stopped.
	EndTime des.Time
}

// routeCaps declares what a routing scheme supports.  Every hard
// rejection in Validate traces back to one of these flags, so adding a
// scheme means declaring its capabilities here, not editing validation
// logic.
type routeCaps struct {
	// multicast: the adapter-level multicast embeddings (Hamiltonian
	// circuit, trees) may ride this scheme's unicast tables.
	multicast bool
	// switchMC: tree-restricted switch-level replication works — it
	// requires the routes to BE the up/down spanning tree, so only the
	// up/down scheme qualifies.
	switchMC bool
	// recovery: topology changes rebuild this scheme's table over the
	// survivors (fault plans with link/switch events and hello detection
	// are allowed).
	recovery bool
}

// routeSchemes is the capability registry of legal Config.Route values.
// All current schemes carry adapter multicast (the embeddings send plain
// unicast worms host-to-host) and rebuild-on-remap recovery; switch-level
// replication stays up/down-only.
var routeSchemes = map[string]routeCaps{
	"":           {multicast: true, switchMC: true, recovery: true},
	"updown":     {multicast: true, switchMC: true, recovery: true},
	"vcmin":      {multicast: true, recovery: true},
	"fullmesh":   {multicast: true, recovery: true},
	"adaptive":   {multicast: true, recovery: true},
	"clos":       {multicast: true, recovery: true},
	"shufflenet": {multicast: true, recovery: true},
}

// Routes returns the legal Config.Route values, sorted ("" is the updown
// default and is not listed separately).
func Routes() []string {
	names := make([]string, 0, len(routeSchemes))
	for n := range routeSchemes {
		if n != "" {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

// Validate checks the routing scheme and its capability combinations
// without running anything, so CLIs can reject a bad -route (or an
// unsupported combination) with the same error a Run would produce.
// Geometry requirements are only checked when a Graph is present, letting
// flag-level validation work on an otherwise zero Config.
func (cfg *Config) Validate() error {
	caps, ok := routeSchemes[cfg.Route]
	if !ok {
		return fmt.Errorf("sim: unknown route scheme %q (want one of %s)", cfg.Route, strings.Join(Routes(), ", "))
	}
	if cfg.Scheme.SwitchLevel && !caps.switchMC {
		return fmt.Errorf("sim: route %q is incompatible with switch-level replication (tree-restricted routing required)", cfg.Route)
	}
	if !caps.multicast && (cfg.MulticastProb != 0 || cfg.NumGroups > 0 || cfg.Groups != nil) {
		return fmt.Errorf("sim: route %q is unicast-only (multicast traffic configured)", cfg.Route)
	}
	if !caps.recovery {
		if cfg.FaultPlan != nil {
			for _, ev := range cfg.FaultPlan.Events {
				//wormlint:partial only topology-changing kinds are rejected; corruption and stalls need no route recovery
				switch ev.Kind {
				case fault.LinkDown, fault.LinkUp, fault.SwitchDown, fault.SwitchUp:
					return fmt.Errorf("sim: route %q has no topology-change recovery (fault plan schedules %s)", cfg.Route, ev.Kind)
				}
			}
		}
		if cfg.Detect == fault.DetectHello {
			return fmt.Errorf("sim: route %q does not support hello detection (suspicion recovery recomputes routes)", cfg.Route)
		}
	}
	if cfg.Graph != nil {
		switch {
		case cfg.Route == "vcmin" && cfg.TorusGeom == nil:
			return fmt.Errorf("sim: route vcmin needs the torus geometry (build the Graph with topology.TorusWithGeom)")
		case cfg.Route == "clos" && cfg.ClosGeom == nil:
			return fmt.Errorf("sim: route clos needs the leaf-spine geometry (build the Graph with topology.ClosWithGeom)")
		case cfg.Route == "shufflenet" && cfg.ShuffleGeom == nil:
			return fmt.Errorf("sim: route shufflenet needs the shufflenet geometry (build the Graph with topology.BidirShufflenetWithGeom)")
		}
	}
	return nil
}

// vcEncodedRoute reports whether the scheme's route bytes carry VC lane
// ids (vc<<6|port) rather than raw port numbers.
func vcEncodedRoute(route string) bool {
	switch route {
	case "vcmin", "adaptive", "shufflenet":
		return true
	}
	return false
}

// rebuildSchemeTable recomputes the Route scheme's table over the
// survivors after a remap: the recovery pipeline hands us the fresh
// up/down labelling (whose failure set is the detector's view), and each
// scheme derives its surviving table from it — pruning for the rigid
// schemes (vcmin, fullmesh), genuine rerouting for clos, shufflenet, and
// adaptive (which also reinstalls the fabric-side AdaptiveTable).
func rebuildSchemeTable(cfg *Config, fab *network.Fabric, ud *updown.Routing, tbl *updown.Table, nvc int) (*updown.Table, error) {
	switch cfg.Route {
	case "", "updown":
		return tbl, nil
	case "vcmin":
		return vcroute.TorusMinimalSurviving(cfg.Graph, cfg.TorusGeom, nvc, ud.Failures())
	case "fullmesh":
		return vcroute.FullMeshSurviving(cfg.Graph, ud.Failures())
	case "clos":
		return vcroute.Clos(cfg.Graph, cfg.ClosGeom, ud.Failures())
	case "shufflenet":
		return vcroute.Shufflenet(cfg.Graph, cfg.ShuffleGeom, nvc, ud.Failures())
	case "adaptive":
		at, err := network.NewAdaptiveTable(cfg.Graph, ud)
		if err != nil {
			return nil, err
		}
		if err := fab.SetAdaptive(at); err != nil {
			return nil, err
		}
		return vcroute.Adaptive(cfg.Graph, ud)
	}
	return nil, fmt.Errorf("sim: unknown route scheme %q", cfg.Route)
}

// Run executes one simulation.
func Run(cfg Config) (*Results, error) {
	if cfg.Graph == nil {
		return nil, fmt.Errorf("sim: nil topology")
	}
	if cfg.MeanWorm == 0 {
		cfg.MeanWorm = 400
	}
	if cfg.Measure == 0 {
		return nil, fmt.Errorf("sim: zero measure window")
	}
	if cfg.Drain == 0 {
		cfg.Drain = cfg.Measure / 2
	}
	if (cfg.FaultPlan != nil || cfg.Detect == fault.DetectHello) && cfg.Scheme.SwitchLevel {
		return nil, fmt.Errorf("sim: fault injection and hello detection are not supported with switch-level replication (no recovery protocol)")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	k := des.NewKernel()
	ud, err := updown.New(cfg.Graph, topology.None)
	if err != nil {
		return nil, err
	}
	// Observability: an explicit Tracer/Metrics request wins; otherwise the
	// WORMTRACE environment toggle forces both on, recording into a bounded
	// ring so arbitrarily long runs stay safe.
	tracer := cfg.Tracer
	metricsOn := cfg.Metrics
	if forceTrace {
		if tracer == nil {
			tracer = trace.NewRing(1 << 16)
		}
		metricsOn = true
	}
	// The network config must be settled before table construction: the
	// vcmin table encodes lane numbers that the fabric only understands
	// with VCHeaders on and enough lanes configured.
	ncfg := cfg.Network
	if ncfg.Recorder == nil {
		ncfg.Recorder = tracer
	}
	ncfg.Metrics = ncfg.Metrics || metricsOn
	var table *updown.Table
	switch cfg.Route {
	case "", "updown":
		table, err = ud.NewTable(false)
	case "vcmin":
		if ncfg.NumVCs < 2 {
			ncfg.NumVCs = 2
		}
		ncfg.VCHeaders = true
		table, err = vcroute.TorusMinimal(cfg.Graph, cfg.TorusGeom, ncfg.NumVCs)
	case "fullmesh":
		table, err = vcroute.FullMesh(cfg.Graph)
	case "adaptive":
		if ncfg.NumVCs < 2 {
			ncfg.NumVCs = 2
		}
		ncfg.VCHeaders = true
		table, err = vcroute.Adaptive(cfg.Graph, ud)
	case "clos":
		table, err = vcroute.Clos(cfg.Graph, cfg.ClosGeom, nil)
	case "shufflenet":
		if ncfg.NumVCs < 3 {
			ncfg.NumVCs = 3
		}
		ncfg.VCHeaders = true
		table, err = vcroute.Shufflenet(cfg.Graph, cfg.ShuffleGeom, ncfg.NumVCs, nil)
	}
	if err != nil {
		return nil, err
	}
	if cfg.Route != "" && cfg.Route != "updown" {
		// One pass over the fresh table reports every broken pair at once —
		// a miswired builder or geometry is diagnosable in a single run.
		if verr := vcroute.ValidateTable(cfg.Graph, table, vcEncodedRoute(cfg.Route), true); verr != nil {
			return nil, verr
		}
	}
	fab, err := network.New(k, cfg.Graph, ud, ncfg)
	if err != nil {
		return nil, err
	}
	if cfg.Route == "adaptive" {
		at, aerr := network.NewAdaptiveTable(cfg.Graph, ud)
		if aerr != nil {
			return nil, aerr
		}
		if aerr := fab.SetAdaptive(at); aerr != nil {
			return nil, aerr
		}
	}
	hosts := cfg.Graph.Hosts()
	res := &Results{Config: cfg}
	var hists *trace.LatencyHists
	if metricsOn {
		hists = trace.NewLatencyHists()
		res.Histograms = hists
		k.Observe = func(des.Time) {
			hists.Queue.Add(float64(k.Pending()))
		}
	}
	windowStart := cfg.Warmup
	windowEnd := cfg.Warmup + cfg.Measure
	var windowBytes int64
	recordMC := func(created, now des.Time, payload int) {
		if created >= windowStart && created < windowEnd {
			lat := float64(now - created)
			res.MCLatency.Add(lat)
			res.AllLatency.Add(lat)
			res.MCDeliveries++
			if hists != nil {
				hists.MC.Add(lat)
				hists.All.Add(lat)
			}
		}
		if now >= windowStart && now < windowEnd {
			windowBytes += int64(payload)
		}
	}
	recordUni := func(created, now des.Time, payload int) {
		if created >= windowStart && created < windowEnd {
			lat := float64(now - created)
			res.UniLatency.Add(lat)
			res.AllLatency.Add(lat)
			res.UniDeliveries++
			if hists != nil {
				hists.Uni.Add(lat)
				hists.All.Add(lat)
			}
		}
		if now >= windowStart && now < windowEnd {
			windowBytes += int64(payload)
		}
	}

	type groupDef struct {
		id  int
		set []topology.NodeID
	}
	var groupDefs []groupDef
	var groupsOf map[topology.NodeID][]int
	switch {
	case cfg.Groups != nil:
		groupsOf = make(map[topology.NodeID][]int)
		ids := make([]int, 0, len(cfg.Groups))
		for id := range cfg.Groups {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			groupDefs = append(groupDefs, groupDef{id, cfg.Groups[id]})
			for _, h := range cfg.Groups[id] {
				groupsOf[h] = append(groupsOf[h], id)
			}
		}
	case cfg.NumGroups > 0:
		ms, gof, err := traffic.AssignGroups(hosts, cfg.NumGroups, cfg.GroupSize, cfg.Seed)
		if err != nil {
			return nil, err
		}
		for gi, set := range ms {
			groupDefs = append(groupDefs, groupDef{gi, set})
		}
		groupsOf = gof
	}

	var sink traffic.Sink
	var sys *adapter.System
	if cfg.Scheme.SwitchLevel {
		swsys, err := switchmc.New(k, fab, ud, switchmc.Config{})
		if err != nil {
			return nil, err
		}
		swsys.SetRecorder(tracer)
		for _, gd := range groupDefs {
			grp, err := multicast.NewGroup(gd.id, gd.set)
			if err != nil {
				return nil, err
			}
			if err := swsys.AddGroup(grp); err != nil {
				return nil, err
			}
		}
		swsys.OnDeliver = func(d switchmc.Delivery) {
			if d.Multicast {
				recordMC(d.Worm.Created, d.At, d.Worm.PayloadLen)
			} else {
				recordUni(d.Worm.Created, d.At, d.Worm.PayloadLen)
			}
		}
		sink = swsys
	} else {
		acfg := cfg.Adapter
		acfg.Mode = cfg.Scheme.Mode
		acfg.CutThrough = cfg.Scheme.CutThrough
		acfg.TotalOrdering = cfg.TotalOrdering
		sys, err = adapter.NewSystem(k, fab, table, acfg, cfg.Seed)
		if err != nil {
			return nil, err
		}
		sys.SetRecorder(tracer)
		for _, gd := range groupDefs {
			grp, err := multicast.NewGroup(gd.id, gd.set)
			if err != nil {
				return nil, err
			}
			if _, err := sys.AddGroup(grp); err != nil {
				return nil, err
			}
		}
		sys.OnAppDeliver = func(d adapter.AppDelivery) {
			if d.Transfer != nil {
				recordMC(d.Transfer.Created, d.At, d.Transfer.Payload)
			} else {
				recordUni(d.Worm.Created, d.At, d.Worm.PayloadLen)
			}
		}
		sink = sys
	}

	var inj *fault.Injector
	if cfg.FaultPlan != nil || cfg.Detect == fault.DetectHello {
		icfg := fault.InjectorConfig{
			RemapDelay: cfg.RemapDelay,
			Mode:       cfg.Detect,
			OnRemap: func(rud *updown.Routing, tbl *updown.Table) {
				ntbl, rerr := rebuildSchemeTable(&cfg, fab, rud, tbl, ncfg.NumVCs)
				if rerr != nil {
					// Scheme rebuilds only fail on construction-level
					// errors (bad geometry), which Validate and the
					// initial build have already excluded.
					panic(fmt.Sprintf("sim: route %q rebuild after remap: %v", cfg.Route, rerr))
				}
				sys.Reroute(ntbl, rud.Reachable)
			},
		}
		if cfg.Detect == fault.DetectHello {
			if cfg.Liveness != nil {
				icfg.Hello = *cfg.Liveness
			}
			// Hellos stop with traffic generation: the drain phase then
			// empties the fabric so quiescence invariants stay checkable.
			icfg.HelloUntil = windowEnd
			icfg.Recorder = tracer
		}
		plan := cfg.FaultPlan
		if plan == nil {
			plan = &fault.Plan{}
		}
		inj, err = fault.NewInjector(k, fab, plan, icfg)
		if err != nil {
			return nil, err
		}
	}

	gen, err := traffic.New(k, traffic.Config{
		OfferedLoad:   cfg.OfferedLoad,
		MeanWorm:      cfg.MeanWorm,
		MulticastProb: cfg.MulticastProb,
		Until:         windowEnd,
	}, hosts, groupsOf, sink, cfg.Seed)
	if err != nil {
		return nil, err
	}
	gen.Start()

	if err := k.Run(windowEnd + cfg.Drain); err != nil {
		return nil, err
	}
	if gen.Err() != nil {
		return nil, gen.Err()
	}
	res.GeneratedWorms, res.GeneratedMC, _ = gen.Generated()
	res.ThroughputPerHost = float64(windowBytes) / float64(cfg.Measure) / float64(len(hosts))
	if sys != nil {
		res.Adapter = sys.Stats()
	}
	res.Fabric = fab.Counters()
	if inj != nil {
		res.Fault = inj.Counters()
		res.Detection = inj.Detection()
	}
	res.Stalled = fab.Stalled(10 * des.Time(cfg.MeanWorm))
	res.Drained = k.Pending() == 0
	res.HeldChannels = len(fab.HeldChannels())
	res.EndTime = k.Now()
	res.EventsDispatched = k.Dispatched()
	res.MaxQueueDepth = k.MaxQueue()
	res.EventsPerTick = k.EventsPerTick()
	if metricsOn {
		m := fab.Metrics()
		res.Channels = m.Channels
		res.Switches = m.Switches
		res.FabricTicks = m.Ticks
	}
	return res, nil
}

// Metrics reassembles the fabric metrics snapshot (nil unless the run was
// configured with Metrics).
func (r *Results) Metrics() *trace.Metrics {
	if r.Channels == nil && r.Switches == nil {
		return nil
	}
	return &trace.Metrics{Channels: r.Channels, Switches: r.Switches, Ticks: r.FabricTicks}
}

// String summarizes a result row (one line per load point, the shape of
// the paper's figures).
func (r *Results) String() string {
	return fmt.Sprintf("%-22s load=%.3f pMC=%.2f mcLat=%8.0f uniLat=%8.0f thpt=%.4f nMC=%d nUni=%d",
		r.Config.Scheme.Name, r.Config.OfferedLoad, r.Config.MulticastProb,
		r.MCLatency.Mean(), r.UniLatency.Mean(), r.ThroughputPerHost,
		r.MCDeliveries, r.UniDeliveries)
}
