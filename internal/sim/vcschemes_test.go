package sim

// End-to-end runs of the wider VC routing scheme family — adaptive
// escape-lane routing, Clos spine routing, shufflenet wrap-lane routing —
// plus the VC-multicast conservation sweep: multicast traffic riding
// VC-headered fabrics, mirroring conservation_test.go, with byte-identical
// reruns.

import (
	"fmt"
	"reflect"
	"testing"

	"wormlan/internal/adapter"
	"wormlan/internal/fault"
	"wormlan/internal/rng"
	"wormlan/internal/topology"
)

// adaptiveConfig is a run on a 4x4 torus under Duato-style adaptive
// routing: lane 0 the up/down escape lane, lanes >= 1 chosen per hop.
func adaptiveConfig(load float64) Config {
	g := topology.Torus(4, 4, 1, 1)
	return Config{
		Graph:       g,
		Route:       "adaptive",
		Scheme:      HamiltonianSF,
		OfferedLoad: load,
		Warmup:      5_000,
		Measure:     60_000,
		Drain:       60_000,
		Seed:        31,
	}
}

// closConfig is a run on a 4-leaf/2-spine Clos under deterministic spine
// routing.
func closConfig(load float64) Config {
	g, geo := topology.ClosWithGeom(4, 2, 4, 1)
	return Config{
		Graph:       g,
		ClosGeom:    geo,
		Route:       "clos",
		Scheme:      HamiltonianSF,
		OfferedLoad: load,
		Warmup:      5_000,
		Measure:     60_000,
		Drain:       60_000,
		Seed:        37,
	}
}

// shuffleConfig is a run on the (2,3) 24-host shufflenet under
// forward-column wrap-lane routing.
func shuffleConfig(load float64) Config {
	g, geo := topology.BidirShufflenetWithGeom(2, 3, 1)
	return Config{
		Graph:       g,
		ShuffleGeom: geo,
		Route:       "shufflenet",
		Scheme:      HamiltonianSF,
		OfferedLoad: load,
		Warmup:      5_000,
		Measure:     60_000,
		// Long multi-column routes keep the small shufflenet near
		// saturation at moderate load: give the queues time to empty.
		Drain: 400_000,
		Seed:  41,
	}
}

// TestVCSchemesHealthyAndDeterministic: each new scheme drains, conserves
// worms, delivers, and reruns byte-identically.
func TestVCSchemesHealthyAndDeterministic(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func(float64) Config
	}{
		{"adaptive", adaptiveConfig},
		{"clos", closConfig},
		{"shufflenet", shuffleConfig},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			a, err := Run(tc.mk(0.3))
			if err != nil {
				t.Fatal(err)
			}
			assertHealthy(t, a, tc.name)
			b, err := Run(tc.mk(0.3))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(stripResults(a), stripResults(b)) {
				t.Fatalf("%s rerun diverged:\na: %v\nb: %v", tc.name, a, b)
			}
		})
	}
}

// TestAdaptiveLinkKillRecovery: adaptive routing on a torus survives a
// mid-run link kill — the injector remap reinstalls a surviving adaptive
// table, the run drains, and conservation holds.
func TestAdaptiveLinkKillRecovery(t *testing.T) {
	mk := func() Config {
		g, geo := topology.TorusWithGeom(4, 4, 1, 1)
		cfg := Config{
			Graph:       g,
			Route:       "adaptive",
			Scheme:      HamiltonianSF,
			OfferedLoad: 0.2,
			Warmup:      5_000,
			Measure:     60_000,
			Drain:       400_000,
			Seed:        47,
			Adapter: adapter.Config{
				MaxRetries:     3,
				AckTimeoutBase: 16384,
				NackBackoff:    2048,
			},
		}
		// Kill a switch-to-switch cable in the middle of the measurement
		// window; the torus stays connected.
		cfg.FaultPlan = (&fault.Plan{}).LinkDown(20_000, geo.Sw[1][1], geo.XPlus[1][1])
		return cfg
	}
	a, err := Run(mk())
	if err != nil {
		t.Fatal(err)
	}
	if !a.Drained {
		t.Fatalf("adaptive link-kill run did not drain (held=%d)", a.HeldChannels)
	}
	f := a.Fabric
	if f.Injected != f.Delivered+f.WormsDropped {
		t.Fatalf("conservation violated: %+v", f)
	}
	if a.UniDeliveries == 0 {
		t.Fatal("no deliveries")
	}
	b, err := Run(mk())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripResults(a), stripResults(b)) {
		t.Fatalf("faulted adaptive rerun diverged:\na: %v\nb: %v", a, b)
	}
}

// drawVCMulticastCases mirrors drawConservationCases over the VC-headered
// schemes: multicast traffic (MulticastProb > 0, groups) on NumVCs >= 2
// fabrics, round-robined across schemes and adapter multicast modes.
func drawVCMulticastCases(n int) []conservationCase {
	r := rng.New(2026, 0xad)
	schemes := []Scheme{HamiltonianSF, HamiltonianCT, TreeSF, TreeCT, TreeFlood}
	routes := []string{"vcmin", "adaptive", "shufflenet", "clos"}
	var cases []conservationCase
	for i := 0; i < n; i++ {
		scheme := schemes[i%len(schemes)]
		rt := routes[i%len(routes)]
		cfg := Config{
			Route:         rt,
			Scheme:        scheme,
			OfferedLoad:   0.005 + 0.02*r.Float64(),
			MulticastProb: 0.1 + 0.2*r.Float64(),
			NumGroups:     2 + r.Intn(3),
			GroupSize:     3 + r.Intn(3),
			MeanWorm:      200 + r.Intn(300),
			Warmup:        5_000,
			Measure:       40_000,
			Drain:         400_000,
			Seed:          uint64(2000 + i),
			Adapter: adapter.Config{
				MaxRetries:     3,
				AckTimeoutBase: 16384,
				NackBackoff:    2048,
			},
		}
		switch rt {
		case "vcmin":
			cfg.Graph, cfg.TorusGeom = topology.TorusWithGeom(4, 4, 1, 1)
		case "adaptive":
			cfg.Graph = topology.Torus(4, 4, 1, 1)
		case "shufflenet":
			cfg.Graph, cfg.ShuffleGeom = topology.BidirShufflenetWithGeom(2, 2, 1)
		case "clos":
			cfg.Graph, cfg.ClosGeom = topology.ClosWithGeom(4, 2, 2, 1)
		}
		cases = append(cases, conservationCase{
			name: fmt.Sprintf("%02d-%s-%s", i, rt, scheme.Name),
			cfg:  cfg,
		})
	}
	return cases
}

// TestVCMulticastConservationSweep: multicast over the VC schemes — each
// case drains, conserves worms, delivers multicast copies, and reruns
// byte-identically (the acceptance bar for lifting the unicast-only
// restriction).
func TestVCMulticastConservationSweep(t *testing.T) {
	n := 12
	if testing.Short() {
		n = 4
	}
	sawMC := false
	for _, c := range drawVCMulticastCases(n) {
		c := c
		t.Run(c.name, func(t *testing.T) {
			res, err := Run(c.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Drained {
				t.Fatalf("run did not drain by t=%d", res.EndTime)
			}
			ctr := res.Fabric
			if ctr.Injected == 0 {
				t.Fatal("no worms injected — nothing verified")
			}
			if ctr.Injected != ctr.Delivered+ctr.WormsDropped {
				t.Fatalf("conservation violated: injected %d != delivered %d + dropped %d",
					ctr.Injected, ctr.Delivered, ctr.WormsDropped)
			}
			if res.HeldChannels != 0 {
				t.Fatalf("%d channels still held at drain", res.HeldChannels)
			}
			if ctr.WormsDropped != 0 {
				t.Fatalf("healthy run dropped %d worms", ctr.WormsDropped)
			}
			if res.MCDeliveries > 0 {
				sawMC = true
			}
			rerun, err := Run(c.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(stripResults(res), stripResults(rerun)) {
				t.Fatalf("rerun diverged:\na: %v\nb: %v", res, rerun)
			}
		})
	}
	if !sawMC {
		t.Error("no case delivered a multicast — the sweep exercised nothing")
	}
}
