package sim

import (
	"strings"
	"testing"

	"wormlan/internal/fault"
	"wormlan/internal/topology"
)

func smallConfig(scheme Scheme, load float64) Config {
	return Config{
		Graph:         topology.Torus(3, 3, 1, 1),
		Scheme:        scheme,
		OfferedLoad:   load,
		MulticastProb: 0.1,
		NumGroups:     2,
		GroupSize:     4,
		Warmup:        20_000,
		Measure:       120_000,
		Seed:          11,
	}
}

func TestRunProducesSamples(t *testing.T) {
	r, err := Run(smallConfig(HamiltonianSF, 0.06))
	if err != nil {
		t.Fatal(err)
	}
	if r.MCDeliveries == 0 || r.UniDeliveries == 0 {
		t.Fatalf("no samples: %+v", r)
	}
	if r.MCLatency.Mean() <= 0 || r.UniLatency.Mean() <= 0 {
		t.Fatalf("latencies: mc=%v uni=%v", r.MCLatency.Mean(), r.UniLatency.Mean())
	}
	if r.ThroughputPerHost <= 0 {
		t.Fatal("no throughput")
	}
	if r.Stalled {
		t.Fatal("run stalled")
	}
	if r.Adapter.GiveUps != 0 {
		t.Fatalf("protocol gave up: %+v", r.Adapter)
	}
	if r.String() == "" {
		t.Fatal("empty summary")
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(smallConfig(TreeSF, 0.06))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(smallConfig(TreeSF, 0.06))
	if err != nil {
		t.Fatal(err)
	}
	if a.MCLatency.Mean() != b.MCLatency.Mean() || a.MCDeliveries != b.MCDeliveries ||
		a.Fabric != b.Fabric {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
}

func TestLatencyGrowsWithLoad(t *testing.T) {
	lo, err := Run(smallConfig(HamiltonianSF, 0.03))
	if err != nil {
		t.Fatal(err)
	}
	hi, err := Run(smallConfig(HamiltonianSF, 0.16))
	if err != nil {
		t.Fatal(err)
	}
	if hi.MCLatency.Mean() <= lo.MCLatency.Mean() {
		t.Fatalf("multicast latency did not grow with load: %.0f -> %.0f",
			lo.MCLatency.Mean(), hi.MCLatency.Mean())
	}
}

func TestSwitchFabricScheme(t *testing.T) {
	r, err := Run(smallConfig(SwitchFabric, 0.04))
	if err != nil {
		t.Fatal(err)
	}
	if r.MCDeliveries == 0 || r.UniDeliveries == 0 {
		t.Fatalf("no deliveries: %v", r)
	}
	if r.Stalled {
		t.Fatal("switch-level run stalled")
	}
	// Crossbar replication skips per-hop reassembly entirely: multicast
	// latency should beat the store-and-forward adapter tree.
	tree, err := Run(smallConfig(TreeSF, 0.04))
	if err != nil {
		t.Fatal(err)
	}
	if r.MCLatency.Mean() >= tree.MCLatency.Mean() {
		t.Fatalf("switch-level mc latency %.0f not below adapter tree %.0f",
			r.MCLatency.Mean(), tree.MCLatency.Mean())
	}
}

func TestAllSchemesComplete(t *testing.T) {
	for _, s := range []Scheme{HamiltonianSF, HamiltonianCT, TreeSF, TreeCT, TreeFlood, SwitchFabric} {
		t.Run(s.Name, func(t *testing.T) {
			r, err := Run(smallConfig(s, 0.05))
			if err != nil {
				t.Fatal(err)
			}
			if r.MCDeliveries == 0 {
				t.Fatal("no multicast deliveries")
			}
			if r.Stalled {
				t.Fatal("stalled")
			}
		})
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("nil graph accepted")
	}
	cfg := smallConfig(TreeSF, 0.05)
	cfg.Measure = 0
	if _, err := Run(cfg); err == nil {
		t.Fatal("zero window accepted")
	}
	cfg = smallConfig(TreeSF, 0.05)
	cfg.GroupSize = 100
	if _, err := Run(cfg); err == nil {
		t.Fatal("oversized groups accepted")
	}
}

func TestExplicitGroupsFromConfig(t *testing.T) {
	// The paper's simulator takes groups from the same configuration file
	// as the topology; sim.Config.Groups is that path.
	g, groups, err := topology.ParseConfig(strings.NewReader(`
switch s0
switch s1
host h0 s0
host h1 s0
host h2 s1
host h3 s1
link s0 s1
group 7 h0 h2 h3
`))
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(Config{
		Graph:         g,
		Scheme:        TreeFlood,
		OfferedLoad:   0.05,
		MulticastProb: 0.4,
		Groups:        groups,
		Warmup:        10_000,
		Measure:       80_000,
		Seed:          3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.MCDeliveries == 0 {
		t.Fatal("explicit group carried no multicast")
	}
	if r.Stalled {
		t.Fatal("stalled")
	}
}

func TestTotalOrderingRun(t *testing.T) {
	cfg := smallConfig(HamiltonianSF, 0.05)
	cfg.TotalOrdering = true
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.MCDeliveries == 0 || r.Stalled {
		t.Fatalf("ordered run: %v", r)
	}
}

func TestRunWithFaultPlan(t *testing.T) {
	cfg := smallConfig(TreeSF, 0.06)
	cfg.FaultPlan = fault.RandomPlan(cfg.Graph, fault.Options{
		Seed: 3, LinkDowns: 1, SwitchDowns: 1, Window: 60_000,
	})
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Fault.LinkDowns != 1 || r.Fault.SwitchDowns != 1 {
		t.Fatalf("faults not applied: %+v", r.Fault)
	}
	if r.Fault.Remaps == 0 {
		t.Fatalf("no remap: %+v", r.Fault)
	}
	if r.Stalled {
		t.Fatal("run stalled under faults")
	}
	fc := r.Fabric
	if fc.Injected != fc.Delivered+fc.WormsDropped {
		t.Fatalf("conservation: %+v", fc)
	}
}

func TestFaultPlanRejectedForSwitchLevel(t *testing.T) {
	cfg := smallConfig(SwitchFabric, 0.06)
	cfg.FaultPlan = &fault.Plan{}
	if _, err := Run(cfg); err == nil || !strings.Contains(err.Error(), "switch-level") {
		t.Fatalf("switch-level + faults accepted: %v", err)
	}
}
