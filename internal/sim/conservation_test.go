package sim

// Conservation-law invariant sweep: the chaos harness's core invariant —
// Injected == Delivered + WormsDropped, and no held channels once the
// fabric drains — promoted to a cheap tier-1 test over a table of random
// small configurations spanning both reference topologies, every scheme,
// and runs with and without fault plans.

import (
	"fmt"
	"testing"

	"wormlan/internal/adapter"
	"wormlan/internal/fault"
	"wormlan/internal/rng"
	"wormlan/internal/topology"
)

// conservationCase is one randomly drawn configuration.
type conservationCase struct {
	name    string
	cfg     Config
	faulted bool
}

// drawConservationCases derives n deterministic pseudo-random small
// configs.  Schemes and topologies round-robin so every combination
// appears; loads, multicast proportions and group shapes are drawn from
// the seeded stream.
func drawConservationCases(n int) []conservationCase {
	r := rng.New(2026, 0xc0&0xff)
	schemes := []Scheme{HamiltonianSF, HamiltonianCT, TreeSF, TreeCT, TreeFlood, SwitchFabric}
	var cases []conservationCase
	for i := 0; i < n; i++ {
		scheme := schemes[i%len(schemes)]
		var g *topology.Graph
		topo := "torus4x4"
		if i%2 == 0 {
			g = topology.Torus(4, 4, 1, 1)
		} else {
			topo = "shufflenet8"
			g = topology.BidirShufflenet(2, 2, 200)
		}
		load := 0.005 + 0.02*r.Float64()
		mcProb := 0.05 + 0.15*r.Float64()
		groups := 2 + r.Intn(3)
		groupSize := 3 + r.Intn(3)
		cfg := Config{
			Graph:         g,
			Scheme:        scheme,
			OfferedLoad:   load,
			MulticastProb: mcProb,
			NumGroups:     groups,
			GroupSize:     groupSize,
			MeanWorm:      200 + r.Intn(300),
			Warmup:        5_000,
			Measure:       40_000,
			// Generous drain so every in-flight worm and capped retry
			// resolves: the conservation law is exact only at quiescence.
			Drain: 400_000,
			Seed:  uint64(1000 + i),
		}
		// The fabric-level 1:1 injected:delivered accounting assumes every
		// fabric worm is a unicast.  Adapter-level schemes replicate at the
		// hosts, so that holds for any traffic mix; switch-level replication
		// clones worms inside the crossbars, so its points run unicast-only.
		if scheme.SwitchLevel {
			cfg.MulticastProb = 0
			cfg.NumGroups = 0
			cfg.GroupSize = 0
		} else {
			// Reliable protocol with capped retries: give-ups are finite,
			// so the run still drains when a fault plan bites.
			cfg.Adapter = adapter.Config{
				MaxRetries:     3,
				AckTimeoutBase: 16384,
				NackBackoff:    2048,
			}
		}
		faulted := !scheme.SwitchLevel && i%2 == 1
		if faulted {
			cfg.FaultPlan = fault.RandomPlan(g, fault.Options{
				Seed:        uint64(7700 + i),
				LinkDowns:   1 + r.Intn(2),
				SwitchDowns: i % 3 % 2, // 0,1,0 pattern: some storms spare the switches
				Corruptions: r.Intn(3),
				Stalls:      r.Intn(2),
				Window:      30_000,
			})
		} else {
			// Keep the stream aligned so adding a case never re-draws
			// every later config.
			_, _, _, _ = r.Intn(2), r.Intn(2), r.Intn(3), r.Intn(2)
		}
		cases = append(cases, conservationCase{
			name:    fmt.Sprintf("%02d-%s-%s-faults=%v", i, scheme.Name, topo, faulted),
			cfg:     cfg,
			faulted: faulted,
		})
	}
	return cases
}

func TestConservationSweep(t *testing.T) {
	n := 20
	if testing.Short() {
		n = 8
	}
	sawFaultDrop := false
	for _, c := range drawConservationCases(n) {
		c := c
		t.Run(c.name, func(t *testing.T) {
			res, err := Run(c.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Drained {
				t.Fatalf("run did not drain by t=%d (deadlock or unbounded retry?)", res.EndTime)
			}
			ctr := res.Fabric
			if ctr.Injected == 0 {
				t.Fatal("no worms injected — nothing verified")
			}
			if ctr.Injected != ctr.Delivered+ctr.WormsDropped {
				t.Fatalf("conservation violated: injected %d != delivered %d + dropped %d",
					ctr.Injected, ctr.Delivered, ctr.WormsDropped)
			}
			if res.HeldChannels != 0 {
				t.Fatalf("%d channels still held at drain", res.HeldChannels)
			}
			if !c.faulted && ctr.WormsDropped != 0 {
				t.Fatalf("healthy run dropped %d worms", ctr.WormsDropped)
			}
			if ctr.WormsDropped > 0 {
				sawFaultDrop = true
			}
		})
	}
	// Only the full table guarantees a biting fault plan; the short-mode
	// prefix may draw storms that miss all in-flight traffic.
	if !sawFaultDrop && !testing.Short() {
		t.Error("no faulted case dropped a worm — the fault half of the table exercised nothing")
	}
}
