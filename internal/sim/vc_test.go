package sim

import (
	"reflect"
	"strings"
	"testing"

	"wormlan/internal/adapter"
	"wormlan/internal/des"
	"wormlan/internal/fault"
	"wormlan/internal/network"
	"wormlan/internal/route"
	"wormlan/internal/topology"
	"wormlan/internal/traffic"
	"wormlan/internal/updown"
	"wormlan/internal/vcroute"
)

// vcminConfig is a unicast-only run on a 4x4 torus under VC-partitioned
// minimal routing.
func vcminConfig(load float64) Config {
	g, geo := topology.TorusWithGeom(4, 4, 1, 1)
	return Config{
		Graph:       g,
		TorusGeom:   geo,
		Route:       "vcmin",
		Scheme:      HamiltonianSF, // mode is irrelevant for pure unicast
		OfferedLoad: load,
		Warmup:      5_000,
		Measure:     60_000,
		Drain:       60_000,
		Seed:        23,
	}
}

// stripResults zeroes the fields that legitimately differ between two
// runs being compared for identical fabric behaviour: the Config (carries
// pointers and the knob under test) and the kernel tick ratio (fast
// forward reduces tick passes by construction).
func stripResults(r *Results) *Results {
	c := *r
	c.Config = Config{}
	c.EventsPerTick = 0
	return &c
}

// assertHealthy asserts the quiescence invariants of a drained run.
func assertHealthy(t *testing.T, r *Results, name string) {
	t.Helper()
	if !r.Drained {
		t.Fatalf("%s: run did not drain (stalled=%v held=%d)", name, r.Stalled, r.HeldChannels)
	}
	if r.Stalled {
		t.Fatalf("%s: stalled", name)
	}
	if r.HeldChannels != 0 {
		t.Fatalf("%s: %d held channels", name, r.HeldChannels)
	}
	f := r.Fabric
	if f.Injected != f.Delivered+f.WormsDropped {
		t.Fatalf("%s: conservation violated: %+v", name, f)
	}
	if r.UniDeliveries == 0 {
		t.Fatalf("%s: no deliveries", name)
	}
}

// TestVCTransparency: with VCHeaders off, all traffic rides lane 0, and a
// fabric configured with extra lanes must produce byte-identical results
// to the single-lane fabric — virtual channels are invisible until a
// routing scheme assigns them.
func TestVCTransparency(t *testing.T) {
	base := smallConfig(TreeCT, 0.08)
	r1, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, nvc := range []int{2, 4} {
		cfg := smallConfig(TreeCT, 0.08)
		cfg.Network.NumVCs = nvc
		rn, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(stripResults(r1), stripResults(rn)) {
			t.Fatalf("NumVCs=%d changed results with no VC routing:\n1: %v\n%d: %v", nvc, r1, nvc, rn)
		}
	}
}

// stripLanes rebuilds a routing table with the VC bits cleared from every
// hop byte — minimal torus routing with NO dateline discipline, the
// textbook deadlocking configuration.
func stripLanes(t *testing.T, tab *updown.Table) *updown.Table {
	t.Helper()
	hosts := tab.Hosts
	routes := make([][]updown.Route, len(hosts))
	for i, src := range hosts {
		routes[i] = make([]updown.Route, len(hosts))
		for j, dst := range hosts {
			if i == j {
				continue
			}
			rt := tab.Lookup(src, dst)
			cp := updown.Route{Src: src, Dst: dst,
				Ports:    make([]topology.PortID, len(rt.Ports)),
				Switches: append([]topology.NodeID(nil), rt.Switches...)}
			for k, pb := range rt.Ports {
				p, _ := route.DecodeVCPort(byte(pb))
				cp.Ports[k] = topology.PortID(p)
			}
			routes[i][j] = cp
		}
	}
	out, err := updown.NewCustomTable(hosts, routes)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestTorusMinimalDeadlockPair is the control experiment for the dateline
// scheme: identical traffic over identical minimal routes deadlocks on a
// single-lane torus (cyclic ring dependencies) and drains cleanly under
// vcmin.  The deadlocking half is wired by hand because sim.Run refuses
// to build a known-deadlocking table.
func TestTorusMinimalDeadlockPair(t *testing.T) {
	// The healthy half: vcmin via the public API.  Moderate load — the
	// claim under test is freedom from deadlock, not infinite capacity;
	// at saturating loads the drain window closes on congestion, which
	// is a different (and expected) phenomenon.
	good, err := Run(vcminConfig(0.55))
	if err != nil {
		t.Fatal(err)
	}
	assertHealthy(t, good, "vcmin")

	// The control: same routes, lanes stripped, one VC.
	g, geo := topology.TorusWithGeom(4, 4, 1, 1)
	k := des.NewKernel()
	ud, err := updown.New(g, topology.None)
	if err != nil {
		t.Fatal(err)
	}
	vtab, err := vcroute.TorusMinimal(g, geo, 2)
	if err != nil {
		t.Fatal(err)
	}
	tab := stripLanes(t, vtab)
	fab, err := network.New(k, g, ud, network.Config{})
	if err != nil {
		t.Fatal(err)
	}
	acfg := adapter.Config{Mode: adapter.ModeCircuit}
	sys, err := adapter.NewSystem(k, fab, tab, acfg, 23)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := traffic.New(k, traffic.Config{
		OfferedLoad: 0.85, MeanWorm: 400, Until: 65_000,
	}, g.Hosts(), nil, sys, 23)
	if err != nil {
		t.Fatal(err)
	}
	gen.Start()
	if err := k.Run(130_000); err != nil {
		t.Fatal(err)
	}
	held := len(fab.HeldChannels())
	stalled := fab.Stalled(4_000)
	if !stalled && held == 0 {
		c := fab.Counters()
		t.Fatalf("no-dateline minimal routing did not deadlock (injected=%d delivered=%d): control is not controlling", c.Injected, c.Delivered)
	}
}

// TestFullMeshRun: direct routing on a full mesh drains without virtual
// channels — inter-switch channels only ever wait on host sinks.
func TestFullMeshRun(t *testing.T) {
	r, err := Run(Config{
		Graph:       topology.FullMesh(6, 2, 1),
		Route:       "fullmesh",
		Scheme:      HamiltonianSF,
		OfferedLoad: 0.5,
		Warmup:      5_000,
		Measure:     60_000,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	assertHealthy(t, r, "fullmesh")
}

// TestFastForwardExactnessVCMin: on a multi-VC run whose routes switch
// lanes at datelines, the fast-forward path must produce byte-identical
// results to tick-by-tick execution.  (Engagement is invisible here by
// design — skipped ticks are accounted exactly as if run — so the
// network-level suite asserts engagement via Fabric.SkipStats instead.)
func TestFastForwardExactnessVCMin(t *testing.T) {
	ff, err := Run(vcminConfig(0.25))
	if err != nil {
		t.Fatal(err)
	}
	cfg := vcminConfig(0.25)
	cfg.Network.DisableFastForward = true
	slow, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripResults(ff), stripResults(slow)) {
		t.Fatalf("fast-forward diverged from tick-by-tick:\nff:   %v\nslow: %v", ff, slow)
	}
}

// TestISLIPDeterministicAndSound: iSLIP arbitration on a multi-lane torus
// is bit-identical across reruns and preserves the quiescence invariants.
func TestISLIPDeterministicAndSound(t *testing.T) {
	mk := func() Config {
		cfg := vcminConfig(0.6)
		cfg.Network.Arb = network.ArbISLIP
		cfg.Network.ArbIters = 2
		cfg.Network.ArbSeed = 99
		return cfg
	}
	a, err := Run(mk())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(mk())
	if err != nil {
		t.Fatal(err)
	}
	assertHealthy(t, a, "islip")
	if !reflect.DeepEqual(stripResults(a), stripResults(b)) {
		t.Fatalf("iSLIP rerun diverged:\na: %v\nb: %v", a, b)
	}
}

// TestRouteValidation: the config combinations the alternative schemes
// cannot honour are rejected up front, with telling errors, and the ones
// the capability registry now grants (multicast, topology faults, hello)
// are accepted.
func TestRouteValidation(t *testing.T) {
	mk := vcminConfig
	cases := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"unknown", func(c *Config) { c.Route = "left-hand" }, "unknown route"},
		{"switch-level", func(c *Config) { c.Scheme = SwitchFabric }, "switch-level"},
		{"no-geom", func(c *Config) { c.TorusGeom = nil }, "geometry"},
		{"clos-no-geom", func(c *Config) { c.Route = "clos"; c.TorusGeom = nil }, "leaf-spine geometry"},
		{"shufflenet-no-geom", func(c *Config) { c.Route = "shufflenet"; c.TorusGeom = nil }, "shufflenet geometry"},
	}
	for _, tc := range cases {
		cfg := mk(0.2)
		tc.mut(&cfg)
		_, err := Run(cfg)
		if err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	// The unknown-route error spells out the full legal set, sorted, so
	// CLI users see their options; Validate on a bare Config (no Graph)
	// produces the same error a Run would.
	bare := Config{Route: "left-hand"}
	err := bare.Validate()
	if err == nil {
		t.Fatal("bare Validate accepted an unknown route")
	}
	const wantSet = "adaptive, clos, fullmesh, shufflenet, updown, vcmin"
	if !strings.Contains(err.Error(), wantSet) {
		t.Fatalf("unknown-route error %q does not list %q", err, wantSet)
	}
	// Corruption and host stalls change no routes: allowed.
	cfg := mk(0.2)
	cfg.FaultPlan = (&fault.Plan{}).Corrupt(20_000, 5).Stall(30_000, cfg.Graph.Hosts()[1], 2_000)
	if _, err := Run(cfg); err != nil {
		t.Fatalf("corruption+stall plan rejected under vcmin: %v", err)
	}
	// Formerly rejected, now capability-granted: multicast traffic on a
	// VC-headered scheme and topology-changing fault plans on vcmin.
	cfg = mk(0.15)
	cfg.MulticastProb = 0.2
	cfg.NumGroups = 2
	cfg.GroupSize = 3
	r, err := Run(cfg)
	if err != nil {
		t.Fatalf("multicast over vcmin rejected: %v", err)
	}
	assertHealthy(t, r, "vcmin-mc")
	if r.MCDeliveries == 0 {
		t.Fatal("vcmin multicast run produced no multicast deliveries")
	}
	cfg = mk(0.15)
	cfg.FaultPlan = (&fault.Plan{}).LinkDown(10_000, cfg.Graph.Hosts()[0], 0)
	if _, err := Run(cfg); err != nil {
		t.Fatalf("link-kill plan rejected under vcmin: %v", err)
	}
}
