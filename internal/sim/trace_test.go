package sim

import (
	"bytes"
	"testing"

	"wormlan/internal/trace"
)

// TestTracedRunMatchesUntraced pins the observer contract: attaching a
// recorder and enabling metrics must not perturb a single measurement.
func TestTracedRunMatchesUntraced(t *testing.T) {
	for _, scheme := range []Scheme{HamiltonianSF, TreeFlood, SwitchFabric} {
		plain, err := Run(smallConfig(scheme, 0.06))
		if err != nil {
			t.Fatal(err)
		}
		cfg := smallConfig(scheme, 0.06)
		cfg.Tracer = trace.NewRing(1 << 20)
		cfg.Metrics = true
		traced, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if fp, ft := fingerprint(plain), fingerprint(traced); fp != ft {
			t.Errorf("%s: tracing changed results:\n--- untraced ---\n%s--- traced ---\n%s",
				scheme.Name, fp, ft)
		}
	}
}

// TestTraceReplayByteIdentical runs the same traced configuration twice and
// demands byte-identical Chrome trace exports — the end-to-end determinism
// guarantee for the whole recording path, not just the synthetic streams
// covered in package trace.
func TestTraceReplayByteIdentical(t *testing.T) {
	export := func() []byte {
		cfg := smallConfig(TreeFlood, 0.06)
		ring := trace.NewRing(1 << 20)
		cfg.Tracer = ring
		if _, err := Run(cfg); err != nil {
			t.Fatal(err)
		}
		if ring.Total() == 0 {
			t.Fatal("traced run recorded no events")
		}
		if ring.Dropped() != 0 {
			t.Fatalf("ring dropped %d events; grow the test capacity", ring.Dropped())
		}
		var buf bytes.Buffer
		if err := trace.WriteChrome(&buf, ring.Events()); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := export(), export()
	if !bytes.Equal(a, b) {
		t.Fatalf("trace exports diverged between identical runs (%d vs %d bytes)", len(a), len(b))
	}
}

// TestMetricsSurface checks that a metrics-enabled run fills the Results
// metrics fields coherently.
func TestMetricsSurface(t *testing.T) {
	cfg := smallConfig(TreeFlood, 0.06)
	cfg.Metrics = true
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Channels) == 0 || len(r.Switches) == 0 || r.FabricTicks == 0 {
		t.Fatalf("metrics surface empty: %d channels, %d switches, %d ticks",
			len(r.Channels), len(r.Switches), r.FabricTicks)
	}
	var busy int64
	for _, c := range r.Channels {
		busy += c.Busy
	}
	if busy == 0 {
		t.Fatal("no channel ever carried a flit")
	}
	h := r.Histograms
	if h == nil {
		t.Fatal("nil histograms")
	}
	if h.MC.Count != r.MCDeliveries || h.Uni.Count != r.UniDeliveries {
		t.Fatalf("histogram counts (%d, %d) disagree with deliveries (%d, %d)",
			h.MC.Count, h.Uni.Count, r.MCDeliveries, r.UniDeliveries)
	}
	if m := r.Metrics(); m == nil || m.Ticks != r.FabricTicks {
		t.Fatalf("Metrics() reassembly broken: %+v", m)
	}
	if m := new(Results).Metrics(); m != nil {
		t.Fatal("Metrics() on a metrics-less run should be nil")
	}
}
