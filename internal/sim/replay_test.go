package sim

import (
	"fmt"
	"testing"
)

// fingerprint renders every observable of a run — latency accumulators,
// adapter and fabric counters, liveness flags, end time — as one string,
// so replay comparison is byte-exact rather than a spot check of a few
// fields.
func fingerprint(r *Results) string {
	return fmt.Sprintf(
		"%s\nmc=%+v\nuni=%+v\nall=%+v\nadapter=%+v\nfabric=%+v\nfault=%+v\n"+
			"gen=%d/%d stalled=%v drained=%v held=%d end=%d\n",
		r.String(), r.MCLatency, r.UniLatency, r.AllLatency,
		r.Adapter, r.Fabric, r.Fault,
		r.GeneratedWorms, r.GeneratedMC, r.Stalled, r.Drained,
		r.HeldChannels, r.EndTime)
}

// TestReplayByteCompare runs the same configuration twice and demands
// byte-identical fingerprints.  This is the regression test for map-order
// leaks inside a single process: Go re-randomizes iteration order on
// every range statement, so a run whose outcome passes through an
// unordered map walk diverges between back-to-back replays.
func TestReplayByteCompare(t *testing.T) {
	for _, scheme := range []Scheme{HamiltonianSF, TreeFlood} {
		cfg := smallConfig(scheme, 0.06)
		a, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		fa, fb := fingerprint(a), fingerprint(b)
		if fa != fb {
			t.Errorf("%s: replay diverged:\n--- first ---\n%s--- second ---\n%s",
				scheme.Name, fa, fb)
		}
	}
}
