package eventq

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestOrdering(t *testing.T) {
	var q Queue
	var got []int64
	times := []int64{5, 1, 9, 3, 3, 7, 0, 2}
	for _, tm := range times {
		tm := tm
		q.Schedule(tm, func() { got = append(got, tm) })
	}
	for q.Len() > 0 {
		q.Pop().Fire()
	}
	want := append([]int64(nil), times...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order %v, want %v", got, want)
		}
	}
}

func TestFIFOAmongSimultaneous(t *testing.T) {
	var q Queue
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		q.Schedule(42, func() { got = append(got, i) })
	}
	for q.Len() > 0 {
		q.Pop().Fire()
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("simultaneous events fired out of schedule order: %v", got)
		}
	}
}

func TestCancel(t *testing.T) {
	var q Queue
	fired := map[int]bool{}
	var handles []Handle
	for i := 0; i < 10; i++ {
		i := i
		handles = append(handles, q.Schedule(int64(i), func() { fired[i] = true }))
	}
	q.Cancel(handles[3])
	q.Cancel(handles[7])
	q.Cancel(handles[7]) // double-cancel is a no-op
	if q.Len() != 8 {
		t.Fatalf("Len = %d after cancels, want 8", q.Len())
	}
	if handles[3].Scheduled() {
		t.Fatal("canceled handle still reports Scheduled")
	}
	if !handles[5].Scheduled() {
		t.Fatal("live handle does not report Scheduled")
	}
	for q.Len() > 0 {
		q.Pop().Fire()
	}
	for i := 0; i < 10; i++ {
		want := i != 3 && i != 7
		if fired[i] != want {
			t.Fatalf("event %d fired=%v, want %v", i, fired[i], want)
		}
	}
}

func TestCancelZeroHandle(t *testing.T) {
	var q Queue
	q.Cancel(Handle{}) // must not panic
}

func TestCancelAfterPop(t *testing.T) {
	var q Queue
	h := q.Schedule(1, func() {})
	e := q.Pop()
	if e.Time != 1 {
		t.Fatal("popped wrong event")
	}
	q.Cancel(h) // canceling a fired event is a no-op
	if q.Len() != 0 {
		t.Fatalf("Len = %d", q.Len())
	}
}

// TestCancelRecycledEvent pins the pooling hazard the generation check
// exists for: a stale handle whose Event struct has been recycled for a
// different timer must not cancel the new owner's event.
func TestCancelRecycledEvent(t *testing.T) {
	var q Queue
	stale := q.Schedule(1, func() {})
	q.Free(q.Pop()) // fires and recycles the struct
	fired := false
	fresh := q.Schedule(2, func() { fired = true })
	q.Cancel(stale) // must not touch the recycled event
	if q.Len() != 1 {
		t.Fatalf("stale cancel removed the recycled event (Len = %d)", q.Len())
	}
	if !fresh.Scheduled() {
		t.Fatal("fresh handle lost its event to a stale cancel")
	}
	q.Pop().Fire()
	if !fired {
		t.Fatal("recycled event did not fire")
	}
}

func TestFreeRecycles(t *testing.T) {
	var q Queue
	q.Schedule(1, func() {})
	e := q.Pop()
	q.Free(e)
	h := q.Schedule(2, func() {})
	if h.e != e {
		t.Fatal("freed event was not recycled by the next schedule")
	}
}

func TestPeekTime(t *testing.T) {
	var q Queue
	q.Schedule(9, func() {})
	q.Schedule(2, func() {})
	q.Schedule(5, func() {})
	if got := q.PeekTime(); got != 2 {
		t.Fatalf("PeekTime = %d, want 2", got)
	}
}

// TestFarEventsCascade exercises multi-level placement and cascade: times
// spanning every wheel level still pop in order.
func TestFarEventsCascade(t *testing.T) {
	var q Queue
	times := []int64{0, 1, 255, 256, 257, 65535, 65536, 1 << 20, 1<<40 + 3, 1 << 62, 1<<62 + 1}
	perm := rand.New(rand.NewSource(7)).Perm(len(times))
	for _, i := range perm {
		q.Schedule(times[i], nil)
	}
	for i := 0; q.Len() > 0; i++ {
		if got := q.Pop().Time; got != times[i] {
			t.Fatalf("pop %d = %d, want %d", i, got, times[i])
		}
	}
}

// TestScheduleBelowHorizon pins the horizon-lowering path: a cascade can
// advance the horizon past a gap, and a later schedule into that gap (legal
// as long as it is not before the last pop) must still fire in order.
func TestScheduleBelowHorizon(t *testing.T) {
	var q Queue
	q.Schedule(10, nil)
	far := int64(100_000)
	q.Schedule(far, nil)
	if got := q.Pop().Time; got != 10 {
		t.Fatalf("pop = %d, want 10", got)
	}
	if got := q.PeekTime(); got != far { // cascades, advancing the horizon
		t.Fatalf("PeekTime = %d, want %d", got, far)
	}
	q.Schedule(50, nil) // below the cascaded horizon, after the last pop
	q.Schedule(far+1, nil)
	want := []int64{50, far, far + 1}
	for i, w := range want {
		if got := q.Pop().Time; got != w {
			t.Fatalf("pop %d = %d, want %d", i, got, w)
		}
	}
}

func TestScheduleBeforePopPanics(t *testing.T) {
	var q Queue
	q.Schedule(10, nil)
	q.Pop()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling before the last pop did not panic")
		}
	}()
	q.Schedule(9, nil)
}

func TestOrderingPropertyRandomized(t *testing.T) {
	// Property: popping always yields non-decreasing times regardless of the
	// interleaving of schedules and cancels.
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var q Queue
		var live []Handle
		now := int64(0)
		for i := 0; i < 500; i++ {
			switch {
			case q.Len() == 0 || r.Intn(3) > 0:
				live = append(live, q.Schedule(now+int64(r.Intn(1000)), func() {}))
			case r.Intn(2) == 0 && len(live) > 0:
				q.Cancel(live[r.Intn(len(live))])
			default:
				e := q.Pop()
				now = e.Time
				q.Free(e)
			}
		}
		last := now
		for q.Len() > 0 {
			e := q.Pop()
			if e.Time < last {
				return false
			}
			last = e.Time
			q.Free(e)
		}
		return true
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScheduleAndPop(b *testing.B) {
	b.ReportAllocs()
	var q Queue
	r := rand.New(rand.NewSource(1))
	now := int64(0)
	for i := 0; i < b.N; i++ {
		q.Schedule(now+int64(r.Intn(512)), nil)
		if q.Len() > 1024 {
			e := q.Pop()
			now = e.Time
			q.Free(e)
		}
	}
}

// BenchmarkLocalSchedulePop models the kernel's dominant pattern: one event
// a single byte-time ahead of a monotonically advancing clock.
func BenchmarkLocalSchedulePop(b *testing.B) {
	b.ReportAllocs()
	var q Queue
	q.Schedule(0, nil)
	for i := 0; i < b.N; i++ {
		e := q.Pop()
		q.Schedule(e.Time+1, nil)
		q.Free(e)
	}
}
