package eventq

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestOrdering(t *testing.T) {
	var q Queue
	var got []int64
	times := []int64{5, 1, 9, 3, 3, 7, 0, 2}
	for _, tm := range times {
		tm := tm
		q.Schedule(tm, func() { got = append(got, tm) })
	}
	for q.Len() > 0 {
		q.Pop().Fire()
	}
	want := append([]int64(nil), times...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order %v, want %v", got, want)
		}
	}
}

func TestFIFOAmongSimultaneous(t *testing.T) {
	var q Queue
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		q.Schedule(42, func() { got = append(got, i) })
	}
	for q.Len() > 0 {
		q.Pop().Fire()
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("simultaneous events fired out of schedule order: %v", got)
		}
	}
}

func TestCancel(t *testing.T) {
	var q Queue
	fired := map[int]bool{}
	var events []*Event
	for i := 0; i < 10; i++ {
		i := i
		events = append(events, q.Schedule(int64(i), func() { fired[i] = true }))
	}
	q.Cancel(events[3])
	q.Cancel(events[7])
	q.Cancel(events[7]) // double-cancel is a no-op
	if q.Len() != 8 {
		t.Fatalf("Len = %d after cancels, want 8", q.Len())
	}
	for q.Len() > 0 {
		q.Pop().Fire()
	}
	for i := 0; i < 10; i++ {
		want := i != 3 && i != 7
		if fired[i] != want {
			t.Fatalf("event %d fired=%v, want %v", i, fired[i], want)
		}
	}
	if !events[3].Canceled() {
		t.Fatal("canceled event does not report Canceled")
	}
}

func TestCancelNil(t *testing.T) {
	var q Queue
	q.Cancel(nil) // must not panic
}

func TestCancelAfterPop(t *testing.T) {
	var q Queue
	e := q.Schedule(1, func() {})
	popped := q.Pop()
	if popped != e {
		t.Fatal("popped wrong event")
	}
	q.Cancel(e) // canceling a fired event is a no-op
	if q.Len() != 0 {
		t.Fatalf("Len = %d", q.Len())
	}
}

func TestPeekTime(t *testing.T) {
	var q Queue
	q.Schedule(9, func() {})
	q.Schedule(2, func() {})
	q.Schedule(5, func() {})
	if got := q.PeekTime(); got != 2 {
		t.Fatalf("PeekTime = %d, want 2", got)
	}
}

func TestHeapPropertyRandomized(t *testing.T) {
	// Property: popping always yields non-decreasing times regardless of the
	// interleaving of schedules and cancels.
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var q Queue
		var live []*Event
		for i := 0; i < 500; i++ {
			switch {
			case q.Len() == 0 || r.Intn(3) > 0:
				live = append(live, q.Schedule(int64(r.Intn(1000)), func() {}))
			case r.Intn(2) == 0 && len(live) > 0:
				q.Cancel(live[r.Intn(len(live))])
			default:
				q.Pop()
			}
		}
		last := int64(-1)
		for q.Len() > 0 {
			e := q.Pop()
			if e.Time < last {
				return false
			}
			last = e.Time
		}
		return true
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScheduleAndPop(b *testing.B) {
	var q Queue
	r := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		q.Schedule(int64(r.Intn(1<<20)), nil)
		if q.Len() > 1024 {
			q.Pop()
		}
	}
}
