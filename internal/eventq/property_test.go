package eventq

import (
	"math/rand"
	"testing"

	"wormlan/internal/eventq/heapref"
)

// TestWheelMatchesHeapReference drives the timing wheel and the original
// binary heap (internal/eventq/heapref) with an identical random sequence
// of 10^5 schedule/cancel/pop operations and asserts identical pop order —
// including FIFO order among same-timestamp events, which is the kernel's
// determinism contract.  Operation ids travel in the Fire closure so the
// comparison identifies individual events, not just times.
func TestWheelMatchesHeapReference(t *testing.T) {
	const ops = 100_000
	for _, seed := range []int64{1, 2, 1996} {
		r := rand.New(rand.NewSource(seed))
		var wheel Queue
		var heap heapref.Queue
		var wheelOrder, heapOrder []int
		handles := make([]Handle, 0, ops)
		refs := make([]*heapref.Event, 0, ops)
		now := int64(0)
		for i := 0; i < ops; i++ {
			switch op := r.Intn(10); {
			case op < 6 || wheel.Len() == 0:
				// Mostly near-future times with occasional far outliers, and
				// a deliberately small range so same-timestamp collisions are
				// common.
				d := int64(r.Intn(64))
				if op == 0 {
					d = int64(r.Intn(1 << 20))
				}
				id := i
				handles = append(handles, wheel.Schedule(now+d, func() { wheelOrder = append(wheelOrder, id) }))
				refs = append(refs, heap.Schedule(now+d, func() { heapOrder = append(heapOrder, id) }))
			case op < 8 && len(handles) > 0:
				j := r.Intn(len(handles))
				wheel.Cancel(handles[j])
				heap.Cancel(refs[j])
			default:
				if wt, ht := wheel.PeekTime(), heap.PeekTime(); wt != ht {
					t.Fatalf("seed %d op %d: PeekTime wheel=%d heap=%d", seed, i, wt, ht)
				}
				we, he := wheel.Pop(), heap.Pop()
				now = we.Time
				we.Fire()
				he.Fire()
				wheel.Free(we)
			}
		}
		for wheel.Len() > 0 {
			we := wheel.Pop()
			we.Fire()
			wheel.Free(we)
			heap.Pop().Fire()
		}
		if heap.Len() != 0 {
			t.Fatalf("seed %d: heap has %d events left after wheel drained", seed, heap.Len())
		}
		if len(wheelOrder) != len(heapOrder) {
			t.Fatalf("seed %d: popped %d events from wheel, %d from heap", seed, len(wheelOrder), len(heapOrder))
		}
		for i := range wheelOrder {
			if wheelOrder[i] != heapOrder[i] {
				t.Fatalf("seed %d: pop %d: wheel fired event %d, heap fired event %d",
					seed, i, wheelOrder[i], heapOrder[i])
			}
		}
	}
}

// FuzzWheelVsHeapWithCancels extends the tape language with cancellation:
// each byte schedules, cancels a previously issued handle (possibly one
// that already fired — Cancel must be a no-op then), or pops.  Cancels
// stress the wheel's handle generation counters and free-list recycling;
// far-future deltas force level cascades whose buckets must drop canceled
// events without disturbing FIFO order among survivors.
func FuzzWheelVsHeapWithCancels(f *testing.F) {
	f.Add([]byte{0, 1, 2, 0x80, 0xFF})
	f.Add([]byte{7, 7, 0x81, 7, 0xFF, 0xFF, 0x80})
	f.Add([]byte{0x29, 3, 3, 0x82, 0xFF, 0x28, 0xFF, 0xFF})
	f.Add([]byte{1, 0x2F, 0x80, 0x81, 0x82, 0xFF, 2, 0xFF})
	f.Fuzz(func(t *testing.T, tape []byte) {
		var wheel Queue
		var heap heapref.Queue
		var wheelOrder, heapOrder []int
		var handles []Handle
		var refs []*heapref.Event
		now := int64(0)
		for i, b := range tape {
			switch {
			case b == 0xFF:
				if wheel.Len() == 0 {
					continue
				}
				if wt, ht := wheel.PeekTime(), heap.PeekTime(); wt != ht {
					t.Fatalf("op %d: PeekTime wheel=%d heap=%d", i, wt, ht)
				}
				we := wheel.Pop()
				now = we.Time
				we.Fire()
				heap.Pop().Fire()
				wheel.Free(we)
			case b&0xC0 == 0x80:
				if len(handles) == 0 {
					continue
				}
				j := int(b&0x3F) % len(handles)
				wheel.Cancel(handles[j])
				heap.Cancel(refs[j])
			default:
				// Near deltas for same-time pileups; bit 5 selects a
				// per-level far time to cross cascade boundaries.
				d := int64(b & 15)
				if b&0x20 != 0 {
					d = int64(1) << (8 * uint(b&3))
				}
				id := i
				handles = append(handles, wheel.Schedule(now+d, func() { wheelOrder = append(wheelOrder, id) }))
				refs = append(refs, heap.Schedule(now+d, func() { heapOrder = append(heapOrder, id) }))
			}
			if wheel.Len() != heap.Len() {
				t.Fatalf("op %d: Len wheel=%d heap=%d", i, wheel.Len(), heap.Len())
			}
		}
		for wheel.Len() > 0 {
			we := wheel.Pop()
			we.Fire()
			wheel.Free(we)
			heap.Pop().Fire()
		}
		if heap.Len() != 0 {
			t.Fatalf("heap holds %d events after wheel drained", heap.Len())
		}
		if len(wheelOrder) != len(heapOrder) {
			t.Fatalf("wheel fired %d events, heap fired %d", len(wheelOrder), len(heapOrder))
		}
		for i := range wheelOrder {
			if wheelOrder[i] != heapOrder[i] {
				t.Fatalf("pop %d: wheel fired event %d, heap fired event %d", i, wheelOrder[i], heapOrder[i])
			}
		}
	})
}

// FuzzSameTimestampFIFO feeds arbitrary byte strings as operation tapes:
// each byte either schedules at one of a handful of timestamps (forcing
// heavy same-timestamp collisions) or pops.  Both implementations must
// fire events in exactly the same order.
func FuzzSameTimestampFIFO(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{1, 2, 3, 0xFF, 0xFF, 1, 1, 0xFF})
	f.Add([]byte{7, 7, 7, 0xFF, 7, 7, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{0, 4, 0xFF, 4, 0, 0xFF, 2, 2, 2, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, tape []byte) {
		var wheel Queue
		var heap heapref.Queue
		var wheelOrder, heapOrder []int
		now := int64(0)
		for i, b := range tape {
			if b == 0xFF && wheel.Len() > 0 {
				we := wheel.Pop()
				now = we.Time
				we.Fire()
				heap.Pop().Fire()
				wheel.Free(we)
				continue
			}
			// Map the byte onto 8 timestamps near now (same-time pileups)
			// and one per-level far time (cascade boundaries).
			d := int64(b & 7)
			if b&8 != 0 {
				d = int64(1) << (8 * uint(b&7))
			}
			id := i
			wheel.Schedule(now+d, func() { wheelOrder = append(wheelOrder, id) })
			heap.Schedule(now+d, func() { heapOrder = append(heapOrder, id) })
		}
		for wheel.Len() > 0 {
			we := wheel.Pop()
			we.Fire()
			wheel.Free(we)
			heap.Pop().Fire()
		}
		if len(wheelOrder) != len(heapOrder) {
			t.Fatalf("wheel fired %d events, heap fired %d", len(wheelOrder), len(heapOrder))
		}
		for i := range wheelOrder {
			if wheelOrder[i] != heapOrder[i] {
				t.Fatalf("pop %d: wheel fired event %d, heap fired event %d", i, wheelOrder[i], heapOrder[i])
			}
		}
	})
}
