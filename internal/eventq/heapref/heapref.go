// Package heapref preserves the original binary min-heap pending-event set
// as a test-only reference implementation.  The live queue
// (internal/eventq) is a hierarchical timing wheel; the property tests
// drive both structures with identical random schedule/cancel sequences and
// assert identical pop order, which pins the wheel to the (time, sequence)
// total-order contract the heap defined.
//
// Nothing outside eventq's tests may import this package.
package heapref

// Event is a scheduled callback.
type Event struct {
	// Time is the simulation time at which the event fires, in byte-times.
	Time int64
	// Fire is invoked when the event is dispatched.
	Fire func()

	seq      uint64
	index    int // position in the heap, -1 if not queued
	canceled bool
}

// Canceled reports whether Cancel was called on the event.
func (e *Event) Canceled() bool { return e.canceled }

// Queue is a pending-event set ordered by (time, sequence number).
// The zero value is ready to use.
type Queue struct {
	heap []*Event
	seq  uint64
}

// Len returns the number of scheduled (non-canceled) events.
func (q *Queue) Len() int { return len(q.heap) }

// Schedule adds an event firing at time t and returns a handle that can be
// used to cancel it.
func (q *Queue) Schedule(t int64, fire func()) *Event {
	q.seq++
	e := &Event{Time: t, Fire: fire, seq: q.seq}
	q.push(e)
	return e
}

// Cancel removes the event from the queue.  Canceling an event that has
// already fired or been canceled is a no-op.
func (q *Queue) Cancel(e *Event) {
	if e == nil || e.canceled || e.index < 0 {
		e.markCanceled()
		return
	}
	e.canceled = true
	q.remove(e.index)
}

func (e *Event) markCanceled() {
	if e != nil {
		e.canceled = true
	}
}

// PeekTime returns the firing time of the earliest event.
// It panics if the queue is empty.
func (q *Queue) PeekTime() int64 {
	return q.heap[0].Time
}

// Pop removes and returns the earliest event.
// It panics if the queue is empty.
func (q *Queue) Pop() *Event {
	e := q.heap[0]
	q.remove(0)
	return e
}

func (q *Queue) push(e *Event) {
	e.index = len(q.heap)
	q.heap = append(q.heap, e)
	q.up(e.index)
}

func (q *Queue) remove(i int) {
	n := len(q.heap) - 1
	removed := q.heap[i]
	if i != n {
		q.swap(i, n)
	}
	q.heap[n] = nil
	q.heap = q.heap[:n]
	if i != n {
		q.down(i)
		q.up(i)
	}
	removed.index = -1
}

func (q *Queue) less(i, j int) bool {
	a, b := q.heap[i], q.heap[j]
	if a.Time != b.Time {
		return a.Time < b.Time
	}
	return a.seq < b.seq
}

func (q *Queue) swap(i, j int) {
	q.heap[i], q.heap[j] = q.heap[j], q.heap[i]
	q.heap[i].index = i
	q.heap[j].index = j
}

func (q *Queue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.swap(i, parent)
		i = parent
	}
}

func (q *Queue) down(i int) {
	n := len(q.heap)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		small := left
		if right := left + 1; right < n && q.less(right, left) {
			small = right
		}
		if !q.less(small, i) {
			return
		}
		q.swap(i, small)
		i = small
	}
}
