// Package eventq implements the pending-event set used by the discrete-event
// simulation kernel: a hierarchical timing wheel ordered by (time, sequence
// number).
//
// The structure is an aligned (Linux-style) 8-level wheel with 256 slots per
// level.  An event lands at the level of the highest byte in which its firing
// time differs from the queue's horizon `cur` (the lower bound of all pending
// times), in the slot addressed by that byte.  Byte-time locality — most
// events land within a few hundred byte-times of now — means nearly all
// traffic stays in level 0, where schedule and pop are O(1) bitmap
// operations.  Far events cascade down one level at a time as the horizon
// crosses their block boundary.
//
// Ordering is total and FIFO among simultaneous events, which is what makes
// simulations reproducible: two events scheduled for the same instant fire
// in the order they were scheduled.  The wheel preserves this without
// comparisons: same-time events always share a slot at every level, slot
// lists append at the tail, and cascades re-insert in traversal order, so
// list order is scheduling order.  (internal/eventq/heapref keeps the
// original binary-heap implementation as a test oracle for this contract.)
//
// Events are pooled on an internal free list; Schedule returns a
// generation-checked Handle so canceling an event that already fired — and
// whose Event struct may since have been recycled for an unrelated timer —
// is a safe no-op.
package eventq

import (
	"fmt"
	"math/bits"
)

const (
	levelBits = 8
	numSlots  = 1 << levelBits // 256 slots per level
	slotMask  = numSlots - 1
	numLevels = 8 // 8 levels x 8 bits covers the full int64 time range
	wordBits  = 64
	numWords  = numSlots / wordBits // occupancy-bitmap words per level
)

// Event is a scheduled callback.  Event structs are owned and recycled by
// the Queue; callers hold Handles, never long-lived *Event pointers.
type Event struct {
	// Time is the simulation time at which the event fires, in byte-times.
	Time int64
	// Fire is invoked when the event is dispatched.
	Fire func()

	seq  uint64 // scheduling order, documents the (time, seq) contract
	gen  uint64 // bumped on recycle; stale Handles no-op
	next *Event
	prev *Event
	// pos packs level<<levelBits|slot while queued; -1 when free or popped.
	pos int32
}

// Handle identifies one scheduled event for cancellation.  The zero Handle
// is inert.  A Handle to an event that has fired or been canceled no-ops on
// Cancel, even if the underlying Event struct has been recycled since.
type Handle struct {
	e   *Event
	gen uint64
}

// Scheduled reports whether the handle still refers to a pending event.
func (h Handle) Scheduled() bool {
	return h.e != nil && h.e.gen == h.gen && h.e.pos >= 0
}

type slotList struct{ head, tail *Event }

// Queue is a pending-event set.  The zero value is ready to use.
// Queue is not safe for concurrent use; the DES kernel is single-threaded.
type Queue struct {
	// cur is the horizon: no pending event fires before it.  It advances
	// as events pop and as cascades cross block boundaries, and is lowered
	// (never below popped) when a schedule lands in the gap a cascade
	// opened.
	cur int64
	// popped is the time of the most recent Pop: the hard floor below
	// which scheduling is a model bug.
	popped int64
	count  int
	seq    uint64

	slots [numLevels][numSlots]slotList
	occ   [numLevels][numWords]uint64

	free *Event
}

// Len returns the number of scheduled (non-canceled) events.
// Canceled events are removed eagerly, so Len is exact.
func (q *Queue) Len() int { return q.count }

// Schedule adds an event firing at time t and returns a handle that can be
// used to cancel it.  Scheduling before the time of the last Pop panics:
// the kernel never schedules in the past.  (The horizon can sit past the
// last pop when a cascade crossed a block boundary while the next pending
// event was still far away; scheduling into that gap is legal and lowers
// the horizon back, an O(n) re-place on a cold path.)
func (q *Queue) Schedule(t int64, fire func()) Handle {
	if t < q.cur {
		if t < q.popped {
			panic(fmt.Sprintf("eventq: scheduling at %d before last pop %d", t, q.popped))
		}
		q.lowerHorizon(t)
	}
	e := q.alloc()
	q.seq++
	e.Time, e.Fire, e.seq = t, fire, q.seq
	q.place(e)
	q.count++
	return Handle{e: e, gen: e.gen}
}

// Cancel removes the event from the queue.  Canceling a zero Handle, or one
// whose event has already fired or been canceled, is a no-op.
func (q *Queue) Cancel(h Handle) {
	e := h.e
	if e == nil || e.gen != h.gen || e.pos < 0 {
		return
	}
	q.unlink(e)
	q.count--
	q.recycle(e)
}

// PeekTime returns the firing time of the earliest event.
// It panics if the queue is empty.
func (q *Queue) PeekTime() int64 {
	return q.slots[0][q.front()].head.Time
}

// Pop removes and returns the earliest event.  It panics if the queue is
// empty.  The caller should pass the event to Free once done with it so the
// struct returns to the pool; an un-Freed event is simply garbage-collected.
func (q *Queue) Pop() *Event {
	s := q.front()
	e := q.slots[0][s].head
	q.cur = e.Time
	q.popped = e.Time
	q.unlink(e)
	q.count--
	return e
}

// Free returns a popped event to the pool.  The caller must drop every
// reference to it; outstanding Handles become inert.
func (q *Queue) Free(e *Event) {
	if e.pos >= 0 {
		panic("eventq: Free of a still-queued event")
	}
	q.recycle(e)
}

// place inserts e at the level of the highest byte where e.Time differs
// from the horizon, appending at the slot's tail (stable order).
func (q *Queue) place(e *Event) {
	lvl := 0
	if diff := uint64(e.Time ^ q.cur); diff != 0 {
		lvl = (bits.Len64(diff) - 1) / levelBits
	}
	slot := int(uint64(e.Time)>>(uint(lvl)*levelBits)) & slotMask
	e.pos = int32(lvl<<levelBits | slot)
	l := &q.slots[lvl][slot]
	e.prev = l.tail
	e.next = nil
	if l.tail == nil {
		l.head = e
		q.occ[lvl][slot>>6] |= 1 << uint(slot&63)
	} else {
		l.tail.next = e
	}
	l.tail = e
}

func (q *Queue) unlink(e *Event) {
	lvl, slot := int(e.pos)>>levelBits, int(e.pos)&slotMask
	l := &q.slots[lvl][slot]
	if e.prev == nil {
		l.head = e.next
	} else {
		e.prev.next = e.next
	}
	if e.next == nil {
		l.tail = e.prev
	} else {
		e.next.prev = e.prev
	}
	if l.head == nil {
		q.occ[lvl][slot>>6] &^= 1 << uint(slot&63)
	}
	e.next, e.prev = nil, nil
	e.pos = -1
}

// front returns the level-0 slot of the earliest event, cascading
// higher-level blocks down as the horizon advances.  The queue must be
// non-empty.  All events in one level-0 slot share one exact firing time.
func (q *Queue) front() int {
	for {
		if s := q.scan(0, int(uint64(q.cur))&slotMask); s >= 0 {
			return s
		}
		// Level 0 is empty at or after the horizon's slot: advance to the
		// next occupied block at the lowest non-empty level and pull its
		// events down (they re-place at strictly lower levels).
		cascaded := false
		for lvl := 1; lvl < numLevels; lvl++ {
			shift := uint(lvl) * levelBits
			cs := int(uint64(q.cur)>>shift) & slotMask
			// Slot cs itself cannot hold events (they would differ from
			// cur in a lower byte and live at a lower level).
			s := q.scan(lvl, cs+1)
			if s < 0 {
				continue
			}
			blockMask := (uint64(1) << (shift + levelBits)) - 1
			q.cur = int64(uint64(q.cur)&^blockMask | uint64(s)<<shift)
			l := &q.slots[lvl][s]
			head := l.head
			l.head, l.tail = nil, nil
			q.occ[lvl][s>>6] &^= 1 << uint(s&63)
			for e := head; e != nil; {
				nx := e.next
				q.place(e)
				e = nx
			}
			cascaded = true
			break
		}
		if !cascaded {
			panic("eventq: non-empty queue with no occupied slot")
		}
	}
}

// scan returns the first occupied slot index >= from at the given level,
// or -1.
func (q *Queue) scan(lvl, from int) int {
	if from >= numSlots {
		return -1
	}
	w := from >> 6
	word := q.occ[lvl][w] >> uint(from&63) << uint(from&63)
	for {
		if word != 0 {
			return w<<6 + bits.TrailingZeros64(word)
		}
		w++
		if w == numWords {
			return -1
		}
		word = q.occ[lvl][w]
	}
}

func (q *Queue) alloc() *Event {
	if e := q.free; e != nil {
		q.free = e.next
		e.next = nil
		return e
	}
	//wormlint:alloc pool miss: the event joins the free-list when popped or cancelled
	return &Event{pos: -1}
}

// lowerHorizon moves the horizon back to t and re-places every pending
// event: slot addressing is relative to the horizon's high bytes, so a
// backward move across a block boundary invalidates positions wholesale.
// Same-time events always share a slot, so draining slots in any order and
// re-placing each list in traversal order preserves FIFO.
func (q *Queue) lowerHorizon(t int64) {
	var head, tail *Event
	for lvl := 0; lvl < numLevels; lvl++ {
		for w := 0; w < numWords; w++ {
			word := q.occ[lvl][w]
			q.occ[lvl][w] = 0
			for word != 0 {
				slot := w<<6 + bits.TrailingZeros64(word)
				word &= word - 1
				l := &q.slots[lvl][slot]
				if tail == nil {
					head = l.head
				} else {
					tail.next = l.head
					l.head.prev = tail
				}
				tail = l.tail
				l.head, l.tail = nil, nil
			}
		}
	}
	q.cur = t
	for e := head; e != nil; {
		nx := e.next
		q.place(e)
		e = nx
	}
}

func (q *Queue) recycle(e *Event) {
	e.gen++
	e.Time = 0
	e.seq = 0
	e.Fire = nil
	e.pos = -1
	e.prev = nil
	e.next = q.free
	q.free = e
}
