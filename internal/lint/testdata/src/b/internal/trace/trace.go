// Package trace mirrors the real trace package's Recorder shape for the
// traceguard golden tests.
package trace

type Kind uint8

const (
	EvA Kind = iota
	EvB
)

type Event struct {
	Kind Kind
	Arg  int64
}

// Recorder is the emission interface traceguard keys on: a nil Recorder
// means tracing is disabled.
type Recorder interface {
	Record(Event)
}
