// Testdata for the -audit mode: a marker that suppresses a diagnostic is
// live, one that suppresses nothing is stale, and an unknown marker name
// is a typo.  Expectations live in TestAuditPackage, not in want comments,
// because audit diagnostics anchor at the marker line itself.
package updown

func UsedMarker(m map[int]int) int {
	t := 0
	//wormlint:ordered integer sum: addition is commutative
	for _, v := range m {
		t += v
	}
	return t
}

func StaleMarker(m map[int]int) []int {
	ks := make([]int, 0, len(m))
	//wormlint:ordered key collection needs no marker: maporder already allows it
	for k := range m {
		ks = append(ks, k)
	}
	return ks
}

//wormlint:bogus not a marker the tool knows
func Unknown() {}
