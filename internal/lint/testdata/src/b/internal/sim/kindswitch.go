// Golden tests for the kindswitch analyzer: switches over registered
// protocol enums must be exhaustive, carry a default, or justify the gap.
package sim

import "b/internal/flit"

func exhaustive(k flit.Kind) int {
	switch k {
	case flit.Header:
		return 1
	case flit.Payload:
		return 2
	case flit.Tail:
		return 3
	case flit.Hello:
		return 4
	}
	return 0
}

func withDefault(k flit.Kind) int {
	switch k {
	case flit.Header:
		return 1
	default:
		return 0
	}
}

func missing(k flit.Kind) int {
	switch k { // want `switch over flit\.Kind is not exhaustive: missing Hello`
	case flit.Header, flit.Payload, flit.Tail:
		return 1
	}
	return 0
}

func missingTwo(m flit.Mode) int {
	switch m { // want `switch over flit\.Mode is not exhaustive: missing Broadcast, MulticastTree`
	case flit.Unicast:
		return 1
	}
	return 0
}

func justified(m flit.Mode) int {
	//wormlint:partial broadcast is rejected upstream by config validation
	switch m {
	case flit.Unicast:
		return 1
	case flit.MulticastTree:
		return 2
	}
	return 0
}

func bare(m flit.Mode) int {
	//wormlint:partial
	switch m { // want `bare //wormlint:partial marker`
	case flit.Unicast:
		return 1
	}
	return 0
}

type local uint8

const (
	la local = iota
	lb
)

// Unregistered enums are out of contract: only flit/trace/fault kinds are.
func unregistered(l local) int {
	switch l {
	case la:
		return 1
	}
	return 0
}

// Non-identifier switch tags over a registered type still count.
type carrier struct{ k flit.Kind }

func viaField(c carrier) int {
	switch c.k { // want `switch over flit\.Kind is not exhaustive: missing Payload, Tail`
	case flit.Header, flit.Hello:
		return 1
	}
	return 0
}
