// Golden tests for the traceguard analyzer: every trace.Recorder emission
// must be dominated by a rec != nil guard, directly or at an emit helper's
// call sites.
package adapter

import "b/internal/trace"

type System struct {
	rec trace.Recorder
	n   int
}

// emit is the helper idiom: the unguarded receiver-rooted Record makes it
// an emit helper, so its own body is excused and callers must guard.
func (s *System) emit(k trace.Kind) {
	s.n++
	s.rec.Record(trace.Event{Kind: k, Arg: int64(s.n)})
}

func (s *System) guardedDirect() {
	if s.rec != nil {
		s.rec.Record(trace.Event{Kind: trace.EvA})
	}
}

// A plain function has no receiver to excuse: unguarded Record is flagged.
func report(r trace.Recorder) {
	r.Record(trace.Event{Kind: trace.EvA}) // want `trace\.Recorder emission is not dominated by a rec != nil guard`
}

func reportGuarded(r trace.Recorder) {
	if r != nil {
		r.Record(trace.Event{Kind: trace.EvA})
	}
}

type Agent struct {
	sys *System
}

func (a *Agent) sendGuarded() {
	if a.sys.rec != nil {
		a.sys.emit(trace.EvA)
	}
}

func (a *Agent) sendUnguarded() {
	a.sys.emit(trace.EvB) // want `call to emit helper emit is not dominated by a rec != nil guard`
}

func (a *Agent) conjunct(ok bool) {
	if ok && a.sys.rec != nil {
		a.sys.emit(trace.EvA)
	}
}

func (a *Agent) earlyReturn() {
	if a.sys.rec == nil {
		return
	}
	a.sys.emit(trace.EvA)
}

func (a *Agent) elseBranch() {
	if a.sys.rec == nil {
		a.sys.n = 0
	} else {
		a.sys.emit(trace.EvA)
	}
}

// The guard does not survive into a function literal: the closure may run
// after the recorder changes.
func (a *Agent) closure() func() {
	if a.sys.rec != nil {
		return func() {
			a.sys.emit(trace.EvA) // want `call to emit helper emit is not dominated by a rec != nil guard`
		}
	}
	return nil
}

// A guard over a different recorder path does not cover this one.
func crossGuard(a, b *System) {
	if a.rec != nil {
		b.emit(trace.EvA) // want `call to emit helper emit is not dominated by a rec != nil guard`
	}
}

func (a *Agent) annotated() {
	//wormlint:unguarded the harness wires a non-nil recorder at construction
	a.sys.emit(trace.EvA)
}

func (a *Agent) bare() {
	//wormlint:unguarded
	a.sys.emit(trace.EvA) // want `bare //wormlint:unguarded marker`
}
