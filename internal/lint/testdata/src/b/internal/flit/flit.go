// Package flit mirrors the real flit package's enum shapes for the
// kindswitch golden tests: the analyzer registers enums by (path suffix,
// type name), so this testdata package matches internal/flit.
package flit

type Kind uint8

const (
	Header Kind = iota
	Payload
	Tail
	Hello
)

type Mode uint8

const (
	Unicast Mode = iota
	MulticastTree
	Broadcast
)
