// Golden tests for the portbyte analyzer: vc<<6|port bit arithmetic on
// bytes belongs to internal/route alone.
package network

const vcShift = 6

func pack(port, vc byte) byte {
	return vc<<vcShift | port // want `shift by 6 on a byte`
}

func unpack(b byte) (port, vc int) {
	return int(b & 0x3f), int(b >> 6) // want `mask 0x3f on a byte` `shift by 6 on a byte`
}

func laneBits(b byte) byte {
	return b & 0xc0 // want `mask 0xc0 on a byte`
}

// Int-typed bitset math uses the same literals but is not VC packing.
func bitset(words []uint64, i int) bool {
	return words[i>>6]&(1<<uint(i&63)) != 0
}

func setBit(words []uint64, i int) {
	words[i>>6] |= 1 << uint(i&63)
}

// Other shift widths and masks on bytes are fine too.
func shift5(b byte) byte { return b << 5 }

func lowNibble(b byte) byte { return b & 0x0f }
