// Golden tests for the poolreset analyzer: functions named Reset/reset/
// Recycle/recycle/Get/get must assign every field the package mutates
// outside constructors, or the next pool occupant inherits stale state.
package eventq

type Item struct {
	Time int64
	Fire func()
	pos  int
	next *Item
	//wormlint:keep debug counter only: never read by the kernel, survives recycling by design
	hits int
}

type Pool struct {
	free *Item
}

// Place mutates Time/Fire/pos/next/hits outside any constructor, making
// them required state for Item's reset functions.
func (p *Pool) Place(it *Item, t int64, fire func()) {
	it.Time = t
	it.Fire = fire
	it.pos = 1
	it.next = nil
	it.hits++
}

func (p *Pool) recycle(it *Item) { // want `reset function recycle leaves field Time of Item unassigned`
	it.Fire = nil
	it.pos = -1
	it.next = p.free
	p.free = it
}

// A complete field-by-field reset, including indexed element writes.
type Buf struct {
	head int
	fill int
	data []byte
}

func (b *Buf) push(x byte) {
	b.data[b.fill] = x
	b.fill++
	b.head++
}

func (b *Buf) reset() {
	b.head = 0
	b.fill = 0
	for i := range b.data {
		b.data[i] = 0
	}
}

// A whole-struct assignment covers every field at once.
type Frame struct {
	a, b, c int
}

func (f *Frame) use() {
	f.a, f.b, f.c = 1, 2, 3
}

func (f *Frame) Reset() {
	*f = Frame{}
}

// Delegation: reset gets credit for fields its same-package callee assigns.
type Port struct {
	mode int
	fill int
}

func (p *Port) setMode(m int) {
	p.mode = m
}

func (p *Port) advance() {
	p.fill++
	p.setMode(2)
}

func (p *Port) reset() {
	p.fill = 0
	p.setMode(0)
}

// The pool-Get idiom: *t = T{} on the recycled object is a full reset.
type Thing struct {
	x, y int
}

func (t *Thing) mutate() {
	t.x++
	t.y++
}

type ThingPool struct {
	free []*Thing
}

func (p *ThingPool) Get() *Thing {
	if n := len(p.free); n > 0 {
		t := p.free[n-1]
		p.free = p.free[:n-1]
		*t = Thing{}
		return t
	}
	return new(Thing)
}

// A keep marker without justification is itself flagged, at the field.
type Slot struct {
	val int
	//wormlint:keep
	gen int // want `bare //wormlint:keep marker`
}

func (s *Slot) touch() {
	s.val++
	s.gen++
}

func (s *Slot) reset() {
	s.val = 0
}
