// The sanctioned codec package: portbyte exempts internal/route, so the
// very expressions flagged everywhere else produce no diagnostics here.
package route

const (
	VCShift   = 6
	MaxVCPort = 0x3f
)

func EncodeVCPort(vc, port uint8) byte {
	return vc<<VCShift | port
}

func DecodeVCPort(b byte) (vc, port uint8) {
	return b >> VCShift, b & MaxVCPort
}

func LaneBits(b byte) byte {
	return b & 0xc0
}
