// Package eventq exercises the nogoroutine analyzer inside the
// deterministic kernel scope.
package eventq

func concurrencyIsFlagged(ch chan int) {
	go drain(ch) // want `go statement in deterministic kernel`
	ch <- 1      // want `channel send in deterministic kernel`
	v := <-ch    // want `channel receive in deterministic kernel`
	_ = v
	close(ch) // want `close of channel in deterministic kernel`
}

func selectIsFlagged(a, b chan int) int {
	select { // want `select in deterministic kernel`
	case v := <-a: // want `channel receive in deterministic kernel`
		return v
	case v := <-b: // want `channel receive in deterministic kernel`
		return v
	}
}

func makeChanIsFlagged() {
	ch := make(chan int, 4) // want `make\(chan\) in deterministic kernel`
	_ = ch
}

func rangeOverChannelIsFlagged(ch chan int) int {
	total := 0
	for v := range ch { // want `range over channel in deterministic kernel`
		total += v
	}
	return total
}

func drain(ch chan int) {
	for range ch { // want `range over channel in deterministic kernel`
	}
}

func makeSliceAndMapAreFine() ([]int, map[int]int) {
	return make([]int, 4), make(map[int]int)
}
