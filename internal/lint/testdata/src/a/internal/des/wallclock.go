// Package des exercises the wallclock analyzer inside the deterministic
// scope.
package des

import "time"

func clockReadsAreFlagged() time.Duration {
	t0 := time.Now()             // want `time.Now reads the host clock`
	time.Sleep(time.Millisecond) // want `time.Sleep reads the host clock`
	elapsed := time.Since(t0)    // want `time.Since reads the host clock`
	return elapsed
}

func timersAreFlagged() {
	tm := time.NewTimer(time.Second) // want `time.NewTimer reads the host clock`
	tm.Stop()
	tk := time.NewTicker(time.Second) // want `time.NewTicker reads the host clock`
	tk.Stop()
	time.AfterFunc(time.Second, func() {}) // want `time.AfterFunc reads the host clock`
}

func durationArithmeticIsFine(n int) time.Duration {
	d := time.Duration(n) * time.Millisecond
	if d > 3*time.Second {
		d = 3 * time.Second
	}
	return d.Round(time.Microsecond)
}
