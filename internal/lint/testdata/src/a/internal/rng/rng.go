// Package rng is a stand-in for the simulator's sanctioned randomness
// package: its import path ends in internal/rng, which is what the
// seeddiscipline analyzer keys on.
package rng

// Source is a deterministic pseudo-random source.
type Source struct{ state uint64 }

// New returns a Source; the first argument is the seed, the second the
// stream selector.
func New(seed, stream uint64) *Source { return &Source{state: seed ^ stream<<1} }

// Intn draws from the source; method calls are never seed checks.
func (s *Source) Intn(n int) int {
	s.state = s.state*6364136223846793005 + 1
	return int(s.state % uint64(n))
}
