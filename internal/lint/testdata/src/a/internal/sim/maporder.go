// Package sim exercises the maporder analyzer: its import path suffix
// internal/sim places it inside the deterministic scope.
package sim

import "sort"

func plainWalkIsFlagged(m map[int]string) string {
	out := ""
	for k, v := range m { // want "range over map is nondeterministic"
		out += v
		_ = k
	}
	return out
}

func floatSumIsFlagged(m map[string]float64) float64 {
	sum := 0.0
	for _, v := range m { // want "range over map is nondeterministic"
		sum += v
	}
	return sum
}

func keyCollectIsAllowed(m map[int]string) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

func filteredKeyCollectIsAllowed(m map[int]string, cut int) []int {
	var big []int
	for k := range m {
		if k < cut {
			continue
		}
		if len(m[k]) > 0 {
			big = append(big, k)
		}
	}
	sort.Ints(big)
	return big
}

func clearByDeleteIsAllowed(m map[int]string) {
	for k := range m {
		delete(m, k)
	}
}

func deleteFromOtherMapIsFlagged(m, other map[int]string) {
	for k := range m { // want "range over map is nondeterministic"
		delete(other, k)
	}
}

func justifiedAnnotationIsAllowed(m map[int]int) int {
	total := 0
	//wormlint:ordered integer sum; addition is commutative
	for _, v := range m {
		total += v
	}
	return total
}

func inlineJustifiedAnnotationIsAllowed(dst, src map[int]int) {
	for k, v := range src { //wormlint:ordered map copied into map
		dst[k] = v
	}
}

func bareAnnotationIsFlagged(m map[int]int) int {
	total := 0
	//wormlint:ordered
	for _, v := range m { // want "bare //wormlint:ordered marker"
		total += v
	}
	return total
}

func sliceWalkIsFine(s []int) int {
	total := 0
	for _, v := range s {
		total += v
	}
	return total
}

type wrapped map[string]int

func namedMapTypeIsFlagged(m wrapped) int {
	n := 0
	for range m { // want "range over map is nondeterministic"
		n++
	}
	return n
}
