package sim

// Test files are exempt from the determinism contract: this map walk must
// produce no diagnostics.

func walkForAssertions(m map[int]string) int {
	n := 0
	for range m {
		n++
	}
	return n
}
