package traffic

import crand "crypto/rand" // want `import of crypto/rand breaks seed discipline`

func cryptoRandIsFlaggedViaImport(b []byte) {
	_, _ = crand.Read(b)
}
