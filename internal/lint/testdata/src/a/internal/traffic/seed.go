// Package traffic exercises the seeddiscipline analyzer inside the
// deterministic scope.
package traffic

import (
	"math/rand" // want `import of math/rand breaks seed discipline`

	"a/internal/rng"
)

func globalRandIsFlaggedViaImport() int { return rand.Int() }

func literalSeedsAreFlagged(seed uint64) {
	a := rng.New(12345, 7) // want `bare constant seed in rng.New call`
	_ = a
	const fixed = 99
	b := rng.New(fixed, 1) // want `bare constant seed in rng.New call`
	_ = b
	c := rng.New(uint64(42), 2) // want `bare constant seed in rng.New call`
	_ = c
}

func configSeedsAreFine(seed uint64, index int) {
	a := rng.New(seed, 0x6709) // literal stream selectors are idiomatic
	_ = a
	b := rng.New(seed+uint64(index)*0x9E3779B9, 0)
	_ = b
}

func drawsAreNeverSeedChecks(r *rng.Source) int {
	return r.Intn(400) // method on a seeded source: fine
}
