// Package network exercises the hotalloc analyzer inside the zero-alloc
// scope: per-call allocations are flagged, amortized reuse and
// constructors are not, and the //wormlint:alloc escape hatch works at
// line and function granularity.
package network

type fabric struct {
	buf   []int
	queue []int
}

func hotMake() []int {
	return make([]int, 4) // want `make allocates per call`
}

func hotNew() *fabric {
	return new(fabric) // want `new allocates per call`
}

func hotLiteralEscape() *fabric {
	return &fabric{} // want `composite literal escapes to the heap per call`
}

func hotSliceLit() []int {
	return []int{1, 2} // want `slice literal allocates per call`
}

func hotMapLit() map[int]int {
	return map[int]int{1: 2} // want `map literal allocates per call`
}

func hotAppendFresh() []int {
	var out []int
	out = append(out, 1) // want `append to a slice born empty in this function re-grows the heap per call`
	return out
}

func hotAppendNamedReturn() (out []int) {
	out = append(out, 1) // want `append to a slice born empty in this function re-grows the heap per call`
	return out
}

func hotAppendLit() []int {
	out := []int{}       // want `slice literal allocates per call`
	out = append(out, 1) // want `append to a slice born empty in this function re-grows the heap per call`
	return out
}

// amortizedAppends shows the three sanctioned append destinations: a
// struct field, a parameter, and a re-sliced buffer all reuse backing
// storage and are not flagged.
func amortizedAppends(f *fabric, in []int) {
	f.buf = append(f.buf, 1)
	in = append(in, 2)
	f.queue = append(f.queue[:0], 3)
	_ = in
}

// NewFabric is exempt by the constructor convention.
func NewFabric() *fabric {
	return &fabric{buf: make([]int, 0, 8)}
}

// newScratch is exempt by the constructor convention (unexported form).
func newScratch() []int {
	return make([]int, 8)
}

func justifiedSnapshot() []int {
	//wormlint:alloc end-of-run snapshot, not on the tick path
	return make([]int, 4)
}

//wormlint:alloc diagnostic dump, never on the tick path
func exemptWholeFunc() map[int][]int {
	out := make(map[int][]int)
	out[1] = append(out[1], 2)
	return out
}

func bareLineMarker() []int {
	//wormlint:alloc
	return make([]int, 4) // want `bare //wormlint:alloc marker`
}

//wormlint:alloc
func bareFuncMarker() []int { // want `bare //wormlint:alloc marker`
	return make([]int, 4) // want `make allocates per call`
}
