// Package sweep mirrors the real sweep engine's position OUTSIDE the
// deterministic scope: it runs whole (deterministic) simulations on
// worker goroutines and reports wall-clock progress.  Every construct in
// this file would be a diagnostic inside the scope; here the whole suite
// must stay silent — the allowlist is scoping, not suppression.
package sweep

import (
	"math/rand"
	"time"
)

// Progress times a fan-out and aggregates per-worker counts.
func Progress(counts map[string]int) time.Duration {
	start := time.Now()
	total := 0
	for _, v := range counts {
		total += v
	}
	done := make(chan int)
	go func() { done <- total + rand.Int() }()
	<-done
	time.Sleep(time.Microsecond)
	return time.Since(start)
}
