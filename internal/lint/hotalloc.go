package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// allocScope lists the package path suffixes covered by the zero-alloc
// pin (network.TestDeliveredWormZeroAlloc pins zero heap allocations per
// delivered worm): the DES kernel, the event queue, the flit layer, and
// the fabric itself.  Everything a worm touches between injection and
// delivery lives here.
var allocScope = []string{
	"internal/des",
	"internal/eventq",
	"internal/flit",
	"internal/network",
}

// inAllocScope reports whether the package at path is governed by the
// zero-alloc discipline.
func inAllocScope(path string) bool {
	if i := strings.IndexByte(path, ' '); i >= 0 {
		path = path[:i]
	}
	for _, s := range allocScope {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

// HotAlloc guards the zero-alloc discipline in the hot-path packages.  The
// AllocsPerRun pin proves the steady state allocates nothing, but it cannot
// point at the line that breaks it; this analyzer keeps each allocation
// site visible and justified so a regression is caught in review, not
// bisected out of a failing benchmark.
//
// Flagged constructs:
//
//   - make, new, and pointer-to-composite-literal expressions (&T{...}):
//     a heap allocation on every call.
//   - slice and map composite literals: same, under literal syntax.
//   - append whose destination slice was born empty in the enclosing
//     function (a `var x []T` declaration, an `x := []T{...}` literal, or
//     a named result parameter): such an append re-grows a fresh backing
//     array on every call.  Appending into a struct field, a parameter,
//     or a re-sliced buffer (`append(x[:0], ...)`) is amortized reuse and
//     is not flagged.
//
// Two escapes exist:
//
//   - Constructors — functions whose name starts with New or new — are
//     exempt wholesale: construction runs once per fabric or session,
//     never per worm.
//   - A `//wormlint:alloc <justification>` comment on (or immediately
//     above) the allocating line exempts that site; placed on the line
//     above a func declaration it exempts the whole function (snapshots,
//     diagnostics, fault paths).  The justification is mandatory: a bare
//     marker is itself flagged.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "flags per-call heap allocations in the zero-alloc packages",
	Run:  runHotAlloc,
}

func runHotAlloc(p *Pass) error {
	if !inAllocScope(p.Pkg.Path()) {
		return nil
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if isConstructorName(fd.Name.Name) {
				continue
			}
			m := p.markerAt(markerAlloc, fd.Pos())
			if m != nil && !m.justified() {
				p.reportBare(m, fd.Pos(), "a justification explaining why this function may allocate is required")
			} else if m != nil {
				// Function-level exemption: scan the body anyway with
				// reporting swallowed so -audit learns whether the marker
				// still excuses a real allocation (line-level markers
				// inside keep their own use bits).
				found := 0
				saved := p.Report
				p.Report = func(Diagnostic) { found++ }
				checkAllocBody(p, fd)
				p.Report = saved
				if found > 0 {
					m.use()
				}
				continue
			}
			checkAllocBody(p, fd)
		}
	}
	return nil
}

// isConstructorName reports whether name marks a constructor by the
// repo's convention (New*/new*): construction-time allocation is the
// sanctioned way to pre-size every buffer the hot path later reuses.
func isConstructorName(name string) bool {
	return strings.HasPrefix(name, "New") || strings.HasPrefix(name, "new")
}

func checkAllocBody(p *Pass, fd *ast.FuncDecl) {
	born := emptyBornSlices(p, fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.UnaryExpr:
			if e.Op == token.AND {
				if _, ok := e.X.(*ast.CompositeLit); ok {
					p.allocReport(e.Pos(), "composite literal escapes to the heap per call")
				}
			}
		case *ast.CompositeLit:
			t := p.TypesInfo.TypeOf(e)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Slice:
				p.allocReport(e.Pos(), "slice literal allocates per call")
			case *types.Map:
				p.allocReport(e.Pos(), "map literal allocates per call")
			}
		case *ast.CallExpr:
			switch {
			case isBuiltin(p, e.Fun, "make"):
				p.allocReport(e.Pos(), "make allocates per call")
			case isBuiltin(p, e.Fun, "new"):
				p.allocReport(e.Pos(), "new allocates per call")
			case isBuiltin(p, e.Fun, "append") && len(e.Args) >= 2:
				id, ok := e.Args[0].(*ast.Ident)
				if !ok {
					return true
				}
				if v, ok := p.TypesInfo.Uses[id].(*types.Var); ok && born[v] {
					p.allocReport(e.Pos(), "append to a slice born empty in this function re-grows the heap per call")
				}
			}
		}
		return true
	})
}

// allocReport reports an allocation finding at pos unless a justified
// `//wormlint:alloc` marker covers the line.
func (p *Pass) allocReport(pos token.Pos, what string) {
	m := p.markerAt(markerAlloc, pos)
	if m != nil && !m.justified() {
		p.reportBare(m, pos, "a justification for the allocation is required")
		return
	}
	if m != nil {
		m.use()
		return
	}
	p.Reportf(pos, "%s in a zero-alloc package: reuse a field, pooled buffer, or preallocated slab, or annotate with //wormlint:alloc <why>", what)
}

// emptyBornSlices collects the slice variables that start life empty
// inside fd: `var x []T` declarations, `x := []T{...}` literals, and
// named result parameters.  Appending to one of those allocates a fresh
// backing array on every call, unlike appending into a reused field,
// parameter, or re-sliced buffer.
func emptyBornSlices(p *Pass, fd *ast.FuncDecl) map[*types.Var]bool {
	born := make(map[*types.Var]bool)
	add := func(id *ast.Ident) {
		if v, ok := p.TypesInfo.Defs[id].(*types.Var); ok && v != nil {
			if _, isSlice := v.Type().Underlying().(*types.Slice); isSlice {
				born[v] = true
			}
		}
	}
	if fd.Type.Results != nil {
		for _, fld := range fd.Type.Results.List {
			for _, name := range fld.Names {
				add(name)
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.DeclStmt:
			gd, ok := s.Decl.(*ast.GenDecl)
			if !ok {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) > 0 {
					continue
				}
				for _, name := range vs.Names {
					add(name)
				}
			}
		case *ast.AssignStmt:
			if s.Tok != token.DEFINE || len(s.Lhs) != len(s.Rhs) {
				return true
			}
			for i, lhs := range s.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				if _, isLit := s.Rhs[i].(*ast.CompositeLit); isLit {
					add(id)
				}
			}
		}
		return true
	})
	return born
}
