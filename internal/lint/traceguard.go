package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// TraceGuard mechanizes the zero-cost-when-disabled tracing contract: a
// disabled recorder is a nil trace.Recorder, and every emission site in
// the deterministic packages pays for tracing only behind an explicit
// `rec != nil` check.  One unguarded Record call either panics with
// tracing off or — worse — forces the field to hold a non-nil no-op
// recorder, putting an interface call on the per-flit hot path that the
// benchmarks pinned out in PR 5.
//
// The analyzer flags:
//
//   - calls to Record on a value whose static type is the trace.Recorder
//     interface, unless dominated by a nil check of the same expression
//     (an enclosing `if x.rec != nil`, a conjunct of one, or a preceding
//     `if x.rec == nil { return }`), and
//   - calls to an emit helper — a method whose body performs an
//     unguarded Record on a recorder field of its own receiver, the
//     repo's idiom for centralizing Event construction — unless the call
//     is dominated by the matching nil check (caller of s.f.emit must
//     hold s.f.rec != nil).  The helper's internal Record call is the
//     helper's callers' responsibility and is not itself flagged.
//
// A `//wormlint:unguarded <justification>` comment on (or above) the
// call line exempts a site where the recorder is provably non-nil; the
// justification is mandatory.
var TraceGuard = &Analyzer{
	Name: "traceguard",
	Doc:  "requires rec != nil guards dominating every trace.Recorder emission",
	Run:  runTraceGuard,
}

func runTraceGuard(p *Pass) error {
	path := p.Pkg.Path()
	if !InScope(path) || isTracePkg(path) {
		return nil
	}
	tg := &traceguard{p: p, helpers: make(map[*types.Func]string)}

	// Phase 1: find the emit helpers — methods with an unguarded Record
	// on a recorder path rooted at their own receiver.  Their suffix
	// (".rec" for a Record on f.rec with receiver f) is what callers must
	// guard, prefixed with the callee expression.
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			recv := receiverObj(p, fd)
			if recv == nil {
				continue
			}
			fn, _ := p.TypesInfo.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			tg.collect = func(call *ast.CallExpr, root types.Object, suffix string) {
				if root == recv && tg.helpers[fn] == "" {
					tg.helpers[fn] = suffix
				}
			}
			tg.walkBody(fd, nil)
		}
	}

	// Phase 2: re-walk every function, flagging unguarded Record calls
	// (except a helper's own excused site) and unguarded helper calls.
	tg.collect = nil
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			tg.walkBody(fd, receiverObj(p, fd))
		}
	}
	return nil
}

// isTracePkg reports whether path is the tracing package itself, which
// owns the Recorder implementations and is exempt.
func isTracePkg(path string) bool {
	if i := strings.IndexByte(path, ' '); i >= 0 {
		path = path[:i]
	}
	return path == "internal/trace" || strings.HasSuffix(path, "/internal/trace")
}

type traceguard struct {
	p       *Pass
	helpers map[*types.Func]string // emit helper -> receiver-relative recorder suffix
	// collect, when set (phase 1), receives each unguarded Record call
	// instead of reporting it.
	collect func(call *ast.CallExpr, root types.Object, suffix string)
	// recv is the receiver of the function being walked (phase 2), whose
	// own unguarded receiver-rooted Record sites are the callers' duty.
	recv types.Object
}

// guardSet holds the path keys proven non-nil at the current point.
type guardSet map[string]bool

func (g guardSet) with(keys []string) guardSet {
	if len(keys) == 0 {
		return g
	}
	ng := make(guardSet, len(g)+len(keys))
	for k := range g {
		ng[k] = true
	}
	for _, k := range keys {
		ng[k] = true
	}
	return ng
}

func (tg *traceguard) walkBody(fd *ast.FuncDecl, recv types.Object) {
	tg.recv = recv
	tg.block(fd.Body.List, guardSet{})
}

func (tg *traceguard) block(stmts []ast.Stmt, g guardSet) {
	for _, s := range stmts {
		// `if x == nil { return }` guards the remainder of this block.
		if is, ok := s.(*ast.IfStmt); ok {
			if key, ok := tg.nilEqualCheck(is.Cond); ok && terminates(is.Body) {
				tg.stmt(s, g)
				g = g.with([]string{key})
				continue
			}
		}
		tg.stmt(s, g)
	}
}

func (tg *traceguard) stmt(s ast.Stmt, g guardSet) {
	switch st := s.(type) {
	case *ast.BlockStmt:
		tg.block(st.List, g)
	case *ast.IfStmt:
		if st.Init != nil {
			tg.stmt(st.Init, g)
		}
		tg.exprs(st.Cond, g)
		tg.block(st.Body.List, g.with(tg.nilNeqConjuncts(st.Cond)))
		if st.Else != nil {
			if key, ok := tg.nilEqualCheck(st.Cond); ok {
				// else of `x == nil` means x is non-nil.
				tg.stmt(st.Else, g.with([]string{key}))
			} else {
				tg.stmt(st.Else, g)
			}
		}
	case *ast.ForStmt:
		if st.Init != nil {
			tg.stmt(st.Init, g)
		}
		if st.Cond != nil {
			tg.exprs(st.Cond, g)
		}
		if st.Post != nil {
			tg.stmt(st.Post, g)
		}
		tg.block(st.Body.List, g)
	case *ast.RangeStmt:
		tg.exprs(st.X, g)
		tg.block(st.Body.List, g)
	case *ast.SwitchStmt:
		if st.Init != nil {
			tg.stmt(st.Init, g)
		}
		if st.Tag != nil {
			tg.exprs(st.Tag, g)
		}
		for _, cc := range st.Body.List {
			if c, ok := cc.(*ast.CaseClause); ok {
				for _, e := range c.List {
					tg.exprs(e, g)
				}
				tg.block(c.Body, g)
			}
		}
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			tg.stmt(st.Init, g)
		}
		tg.stmt(st.Assign, g)
		for _, cc := range st.Body.List {
			if c, ok := cc.(*ast.CaseClause); ok {
				tg.block(c.Body, g)
			}
		}
	case *ast.LabeledStmt:
		tg.stmt(st.Stmt, g)
	default:
		tg.exprs(s, g)
	}
}

// exprs inspects a leaf statement or expression for calls, checking each
// against the current guard set.  Function literal bodies start from an
// empty set: the literal may run after the guard's scope.
func (tg *traceguard) exprs(n ast.Node, g guardSet) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch e := x.(type) {
		case *ast.FuncLit:
			saved := tg.recv
			tg.block(e.Body.List, guardSet{})
			tg.recv = saved
			return false
		case *ast.CallExpr:
			tg.checkCall(e, g)
		}
		return true
	})
}

func (tg *traceguard) checkCall(call *ast.CallExpr, g guardSet) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	p := tg.p
	// Direct Record on a trace.Recorder value.
	if sel.Sel.Name == "Record" && isRecorderType(p.TypesInfo.TypeOf(sel.X)) {
		key, root, fields, ok := pathOf(p, sel.X)
		if !ok {
			tg.flag(call, "trace.Recorder emission")
			return
		}
		if g[key] {
			return
		}
		suffix := "." + strings.Join(fields, ".")
		if tg.collect != nil {
			tg.collect(call, root, suffix)
			return
		}
		if root != nil && root == tg.recv && len(fields) > 0 {
			// The helper's own excused site; callers must guard.
			return
		}
		tg.flag(call, "trace.Recorder emission")
		return
	}
	// Call to a known emit helper.
	fn, _ := p.TypesInfo.Uses[sel.Sel].(*types.Func)
	if fn == nil {
		return
	}
	suffix, isHelper := tg.helpers[fn]
	if !isHelper || tg.collect != nil {
		return
	}
	key, _, _, ok := pathOf(p, sel.X)
	if !ok || !g[key+suffix] {
		tg.flag(call, fmt.Sprintf("call to emit helper %s", fn.Name()))
	}
}

func (tg *traceguard) flag(call *ast.CallExpr, what string) {
	p := tg.p
	m := p.markerAt(markerUnguarded, call.Pos())
	if m != nil && !m.justified() {
		p.reportBare(m, call.Pos(), "a justification explaining why the recorder is provably non-nil here is required")
		return
	}
	if m != nil {
		m.use()
		return
	}
	p.Reportf(call.Pos(), "%s is not dominated by a rec != nil guard: wrap it in `if <rec> != nil { ... }` or annotate with //wormlint:unguarded <why>", what)
}

// nilNeqConjuncts returns the path keys of every `x != nil` conjunct of
// cond (split across &&).
func (tg *traceguard) nilNeqConjuncts(cond ast.Expr) []string {
	var keys []string
	var split func(e ast.Expr)
	split = func(e ast.Expr) {
		switch b := ast.Unparen(e).(type) {
		case *ast.BinaryExpr:
			if b.Op == token.LAND {
				split(b.X)
				split(b.Y)
				return
			}
			if key, neq, ok := tg.nilCheck(b); ok && neq {
				keys = append(keys, key)
			}
		}
	}
	split(cond)
	return keys
}

// nilEqualCheck reports cond being exactly `x == nil` and returns x's key.
func (tg *traceguard) nilEqualCheck(cond ast.Expr) (string, bool) {
	b, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return "", false
	}
	key, neq, ok := tg.nilCheck(b)
	return key, ok && !neq
}

// nilCheck decomposes `x != nil` / `x == nil` into x's path key.
func (tg *traceguard) nilCheck(b *ast.BinaryExpr) (key string, neq, ok bool) {
	if b.Op != token.NEQ && b.Op != token.EQL {
		return "", false, false
	}
	x, y := ast.Unparen(b.X), ast.Unparen(b.Y)
	if isNilIdent(tg.p, x) {
		x, y = y, x
	}
	if !isNilIdent(tg.p, y) {
		return "", false, false
	}
	key, _, _, pok := pathOf(tg.p, x)
	return key, b.Op == token.NEQ, pok
}

func isNilIdent(p *Pass, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := p.TypesInfo.Uses[id].(*types.Nil)
	return isNil
}

// pathOf renders a selector chain rooted at a plain identifier into a
// stable key (root object identity + field names), also returning the
// root object and field list.
func pathOf(p *Pass, e ast.Expr) (key string, root types.Object, fields []string, ok bool) {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := p.TypesInfo.Uses[x]
		if obj == nil {
			obj = p.TypesInfo.Defs[x]
		}
		if obj == nil {
			return "", nil, nil, false
		}
		return fmt.Sprintf("%p", obj), obj, nil, true
	case *ast.SelectorExpr:
		base, r, fs, bok := pathOf(p, x.X)
		if !bok {
			return "", nil, nil, false
		}
		fs = append(fs, x.Sel.Name)
		return base + "." + x.Sel.Name, r, fs, true
	}
	return "", nil, nil, false
}

// receiverObj returns the object of fd's receiver identifier, or nil for
// plain functions and anonymous receivers.
func receiverObj(p *Pass, fd *ast.FuncDecl) types.Object {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	return p.TypesInfo.Defs[fd.Recv.List[0].Names[0]]
}

// isRecorderType reports whether t is the trace.Recorder interface.
func isRecorderType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Recorder" || named.Obj().Pkg() == nil {
		return false
	}
	if _, isIface := named.Underlying().(*types.Interface); !isIface {
		return false
	}
	return isTracePkg(named.Obj().Pkg().Path())
}

// terminates reports whether a block's last statement unconditionally
// leaves the enclosing block (return, branch, or panic).
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		call, ok := last.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		return ok && id.Name == "panic"
	}
	return false
}
