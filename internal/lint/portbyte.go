package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// PortByte makes route.EncodeVCPort/DecodeVCPort the single authority for
// the vc<<6|port route-byte packing.  The encoding's bit layout (2 lane
// bits over 6 port bits, marker bytes 0xFE/0xFF excluded) is a wire
// contract; a second hand-rolled pack or unpack site is a latent
// divergence the moment the layout ever moves — the same "packet
// composition has a single authority" rule ROADMAP item 4 applies to the
// future wire codec.
//
// In deterministic packages other than internal/route itself, the
// analyzer flags bit arithmetic in the encoding's shape applied to byte
// (uint8) operands:
//
//   - x << 6 and x >> 6 (lane insert / extract, also via route.VCShift),
//   - x & 0x3f (port mask, also via route.MaxVCPort),
//   - x & 0xc0 (lane mask).
//
// Only byte-typed operands are considered: int-typed shift-by-6 bitset
// math (64-entry words) is everywhere in the kernel and is not a route
// byte.  There is deliberately no escape annotation — call the codec.
var PortByte = &Analyzer{
	Name: "portbyte",
	Doc:  "flags hand-rolled vc<<6|port route-byte packing outside internal/route",
	Run:  runPortByte,
}

func runPortByte(p *Pass) error {
	path := p.Pkg.Path()
	if !InScope(path) || isRoutePkg(path) {
		return nil
	}
	p.walk(func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch be.Op {
		case token.SHL, token.SHR:
			if isByteExpr(p, be.X) && constUintValue(p, be.Y) == 6 {
				verb := "packs a VC lane into"
				if be.Op == token.SHR {
					verb = "extracts the VC lane from"
				}
				p.Reportf(be.Pos(), "shift by 6 on a byte %s a route byte by hand: route.EncodeVCPort/DecodeVCPort is the single encoding authority", verb)
			}
		case token.AND:
			x, y := be.X, be.Y
			if !isByteExpr(p, x) {
				x, y = y, x
			}
			if !isByteExpr(p, x) {
				return true
			}
			switch constUintValue(p, y) {
			case 0x3f:
				p.Reportf(be.Pos(), "mask 0x3f on a byte extracts the port from a route byte by hand: route.DecodeVCPort is the single encoding authority")
			case 0xc0:
				p.Reportf(be.Pos(), "mask 0xc0 on a byte extracts the VC lane bits by hand: route.DecodeVCPort is the single encoding authority")
			}
		}
		return true
	})
	return nil
}

// isRoutePkg reports whether path is the sanctioned encoding package.
func isRoutePkg(path string) bool {
	if i := strings.IndexByte(path, ' '); i >= 0 {
		path = path[:i]
	}
	return path == "internal/route" || strings.HasSuffix(path, "/internal/route")
}

// isByteExpr reports whether e's static type is byte-sized unsigned
// (uint8 or a named type over it) — the carrier type of route bytes.
func isByteExpr(p *Pass, e ast.Expr) bool {
	t := p.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint8
}

// constUintValue returns e's constant integer value, or -1 if e is not an
// integer constant.
func constUintValue(p *Pass, e ast.Expr) int64 {
	tv, ok := p.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return -1
	}
	v, ok := constant.Int64Val(tv.Value)
	if !ok {
		return -1
	}
	return v
}
