package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// wormlint's escape hatches are `//wormlint:<name> <justification>`
// comments on (or immediately above) the construct they exempt.  The
// justification is mandatory everywhere: a bare marker is itself a
// diagnostic.  Every marker is tracked for use so `wormlint -audit` can
// flag annotations that no longer suppress anything.
const (
	// markerOrdered exempts a provably order-insensitive map iteration
	// from maporder.
	markerOrdered = "ordered"
	// markerAlloc exempts a justified allocation (line or whole function)
	// from hotalloc.
	markerAlloc = "alloc"
	// markerPartial exempts a deliberately non-exhaustive enum switch
	// from kindswitch.
	markerPartial = "partial"
	// markerKeep, on a struct field declaration, exempts the field from
	// poolreset's every-field reset requirement (state that deliberately
	// survives recycling).
	markerKeep = "keep"
	// markerUnguarded exempts a trace emission site from traceguard's
	// rec != nil dominance requirement.
	markerUnguarded = "unguarded"
)

// markerAnalyzer maps each marker name to the analyzer it suppresses,
// for audit messages.
var markerAnalyzer = map[string]string{
	markerOrdered:   "maporder",
	markerAlloc:     "hotalloc",
	markerPartial:   "kindswitch",
	markerKeep:      "poolreset",
	markerUnguarded: "traceguard",
}

// markerPrefix introduces every wormlint annotation comment.
const markerPrefix = "wormlint:"

// A marker is one parsed `//wormlint:<name> <justification>` comment,
// with a use bit the analyzers set when the marker actually suppresses a
// would-be diagnostic (or is itself reported as bare).  AuditPackage
// flags markers whose bit never sets.
type marker struct {
	name          string
	justification string
	pos           token.Pos
	line          int
	used          bool
}

func (m *marker) justified() bool { return m.justification != "" }

// use records that the marker earned its keep this run.
func (m *marker) use() { m.used = true }

// A markerSet indexes every wormlint marker of one package's non-test
// files.  It is built once per package and shared by all analyzer passes
// so use-tracking accumulates across the whole suite.
type markerSet struct {
	byFile map[*ast.File]map[int][]*marker
	all    []*marker
}

// collectMarkers parses the wormlint annotations out of files' comments.
// Unknown marker names are collected too (never usable, so audit flags
// them).
func collectMarkers(fset *token.FileSet, files []*ast.File) *markerSet {
	ms := &markerSet{byFile: make(map[*ast.File]map[int][]*marker)}
	for _, f := range files {
		idx := make(map[int][]*marker)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, markerPrefix) {
					continue
				}
				rest := strings.TrimPrefix(text, markerPrefix)
				name, just, _ := strings.Cut(rest, " ")
				m := &marker{
					name:          name,
					justification: strings.TrimSpace(just),
					pos:           c.Pos(),
					line:          fset.Position(c.Pos()).Line,
				}
				idx[m.line] = append(idx[m.line], m)
				ms.all = append(ms.all, m)
			}
		}
		ms.byFile[f] = idx
	}
	return ms
}

// markerAt returns the marker with the given name annotating the node at
// pos — on the same line or the line immediately above — or nil.  The
// caller decides whether a hit counts as use: call m.use() only when the
// marker suppresses (or replaces, for bare markers) a diagnostic.
func (p *Pass) markerAt(name string, pos token.Pos) *marker {
	f := p.fileOf(pos)
	if f == nil {
		return nil
	}
	idx := p.markers.byFile[f]
	line := p.Fset.Position(pos).Line
	for _, l := range [2]int{line, line - 1} {
		for _, m := range idx[l] {
			if m.name == name {
				return m
			}
		}
	}
	return nil
}

// reportBare emits the mandatory-justification diagnostic for a bare
// marker at the annotated construct's position and counts the marker as
// used (it is already surfacing a finding; audit must not flag it a
// second time).
func (p *Pass) reportBare(m *marker, pos token.Pos, what string) {
	m.use()
	p.Reportf(pos, "bare //wormlint:%s marker: %s", m.name, what)
}

// AuditPackage runs the analyzers over one package with reporting
// swallowed, purely for their marker-use side effects, then reports every
// marker that suppressed nothing: stale escape hatches that outlived the
// code they excused, and markers with unknown names.  The returned
// diagnostics carry the pseudo-analyzer name "audit".
func AuditPackage(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Diagnostic, error) {
	nonTest := dropTestFiles(fset, files)
	markers := collectMarkers(fset, nonTest)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     nonTest,
			Pkg:       pkg,
			TypesInfo: info,
			Report:    func(Diagnostic) {},
			markers:   markers,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	var diags []Diagnostic
	for _, m := range markers.all {
		if m.used {
			continue
		}
		an, known := markerAnalyzer[m.name]
		var msg string
		if !known {
			msg = "unknown //wormlint:" + m.name + " marker (known: " + knownMarkerList() + ")"
		} else {
			msg = "stale //wormlint:" + m.name + " marker: it no longer suppresses any " + an + " diagnostic — remove it"
		}
		diags = append(diags, Diagnostic{Analyzer: "audit", Pos: m.pos, Message: msg})
	}
	sortDiagnostics(fset, diags)
	return diags, nil
}

func knownMarkerList() string {
	names := make([]string, 0, len(markerAnalyzer))
	for n := range markerAnalyzer {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}
