package lint

import (
	"strings"
	"testing"
)

func TestMapOrderGolden(t *testing.T) {
	runAnalyzers(t, "a/internal/sim", MapOrder)
}

func TestWallClockGolden(t *testing.T) {
	runAnalyzers(t, "a/internal/des", WallClock)
}

func TestSeedDisciplineGolden(t *testing.T) {
	runAnalyzers(t, "a/internal/traffic", SeedDiscipline)
}

func TestNoGoroutineGolden(t *testing.T) {
	runAnalyzers(t, "a/internal/eventq", NoGoroutine)
}

func TestHotAllocGolden(t *testing.T) {
	runAnalyzers(t, "a/internal/network", HotAlloc)
}

func TestPoolResetGolden(t *testing.T) {
	runAnalyzers(t, "b/internal/eventq", PoolReset)
}

func TestPortByteGolden(t *testing.T) {
	runAnalyzers(t, "b/internal/network", PortByte)
}

func TestTraceGuardGolden(t *testing.T) {
	runAnalyzers(t, "b/internal/adapter", TraceGuard)
}

func TestKindSwitchGolden(t *testing.T) {
	runAnalyzers(t, "b/internal/sim", KindSwitch)
}

// TestRouteExemptFromPortByte: the codec package itself owns the bit
// layout; the same expressions that are contraband elsewhere are its
// implementation.
func TestRouteExemptFromPortByte(t *testing.T) {
	runAnalyzers(t, "b/internal/route", PortByte)
}

// TestAuditPackage runs the audit mode over a package holding one live
// marker, one stale marker, and one unknown marker name, and expects
// exactly the latter two flagged, at the marker lines, in line order.
func TestAuditPackage(t *testing.T) {
	l := newTestLoader(t)
	p := l.load("b/internal/updown")
	if p.err != nil {
		t.Fatalf("loading testdata: %v", p.err)
	}
	diags, err := AuditPackage(l.fset, p.files, p.pkg, p.info, Analyzers())
	if err != nil {
		t.Fatalf("AuditPackage: %v", err)
	}
	want := []struct {
		line int
		frag string
	}{
		{18, "stale //wormlint:ordered marker"},
		{25, "unknown //wormlint:bogus marker"},
	}
	if len(diags) != len(want) {
		t.Fatalf("got %d audit diagnostics, want %d: %v", len(diags), len(want), diags)
	}
	for i, w := range want {
		pos := l.fset.Position(diags[i].Pos)
		if pos.Line != w.line || !strings.Contains(diags[i].Message, w.frag) {
			t.Errorf("diag %d = %s:%d %q, want line %d containing %q",
				i, pos.Filename, pos.Line, diags[i].Message, w.line, w.frag)
		}
		if diags[i].Analyzer != "audit" {
			t.Errorf("diag %d analyzer = %q, want %q", i, diags[i].Analyzer, "audit")
		}
	}
}

// TestSweepAllowlist runs the ENTIRE suite over a package shaped like the
// real sweep engine — wall-clock timing, goroutines, channels, math/rand,
// unordered map walks — and expects zero diagnostics: concurrency and
// progress timing belong to the sweep layer by design, and the analyzers
// must stay scoped to the deterministic packages.
func TestSweepAllowlist(t *testing.T) {
	runAnalyzers(t, "a/internal/sweep", Analyzers()...)
}

// TestRngExemptFromSeedDiscipline: the sanctioned randomness package
// itself is where seeds terminate; it must not be flagged.
func TestRngExemptFromSeedDiscipline(t *testing.T) {
	runAnalyzers(t, "a/internal/rng", Analyzers()...)
}

func TestScope(t *testing.T) {
	for path, want := range map[string]bool{
		"wormlan/internal/sim":                    true,
		"wormlan/internal/des":                    true,
		"wormlan/internal/adapter":                true,
		"wormlan/internal/arb":                    true,
		"wormlan/internal/vcroute":                true,
		"wormlan/internal/sweep":                  false,
		"wormlan/internal/emu":                    false,
		"wormlan/internal/lint":                   false,
		"wormlan/cmd/mcbench":                     false,
		"internal/sim":                            true,
		"wormlan/internal/sim [wormlan/sim.test]": true,
		"wormlan/internal/simx":                   false,
		"example.com/other/internal/eventq":       true,
		"wormlan/internal/sweep [wormlan/s.test]": false,
	} {
		if got := InScope(path); got != want {
			t.Errorf("InScope(%q) = %v, want %v", path, got, want)
		}
	}
	if !rngScope("wormlan/internal/rng") || rngScope("wormlan/internal/rngx") || rngScope("wormlan/internal/sim") {
		t.Error("rngScope misclassifies")
	}
	for path, want := range map[string]bool{
		"wormlan/internal/network":  true,
		"wormlan/internal/flit":     true,
		"wormlan/internal/des":      true,
		"wormlan/internal/eventq":   true,
		"wormlan/internal/adapter":  false,
		"wormlan/internal/sweep":    false,
		"wormlan/internal/networkx": false,
	} {
		if got := inAllocScope(path); got != want {
			t.Errorf("inAllocScope(%q) = %v, want %v", path, got, want)
		}
	}
}
