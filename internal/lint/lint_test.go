package lint

import "testing"

func TestMapOrderGolden(t *testing.T) {
	runAnalyzers(t, "a/internal/sim", MapOrder)
}

func TestWallClockGolden(t *testing.T) {
	runAnalyzers(t, "a/internal/des", WallClock)
}

func TestSeedDisciplineGolden(t *testing.T) {
	runAnalyzers(t, "a/internal/traffic", SeedDiscipline)
}

func TestNoGoroutineGolden(t *testing.T) {
	runAnalyzers(t, "a/internal/eventq", NoGoroutine)
}

func TestHotAllocGolden(t *testing.T) {
	runAnalyzers(t, "a/internal/network", HotAlloc)
}

// TestSweepAllowlist runs the ENTIRE suite over a package shaped like the
// real sweep engine — wall-clock timing, goroutines, channels, math/rand,
// unordered map walks — and expects zero diagnostics: concurrency and
// progress timing belong to the sweep layer by design, and the analyzers
// must stay scoped to the deterministic packages.
func TestSweepAllowlist(t *testing.T) {
	runAnalyzers(t, "a/internal/sweep", Analyzers()...)
}

// TestRngExemptFromSeedDiscipline: the sanctioned randomness package
// itself is where seeds terminate; it must not be flagged.
func TestRngExemptFromSeedDiscipline(t *testing.T) {
	runAnalyzers(t, "a/internal/rng", Analyzers()...)
}

func TestScope(t *testing.T) {
	for path, want := range map[string]bool{
		"wormlan/internal/sim":                    true,
		"wormlan/internal/des":                    true,
		"wormlan/internal/adapter":                true,
		"wormlan/internal/sweep":                  false,
		"wormlan/internal/emu":                    false,
		"wormlan/internal/lint":                   false,
		"wormlan/cmd/mcbench":                     false,
		"internal/sim":                            true,
		"wormlan/internal/sim [wormlan/sim.test]": true,
		"wormlan/internal/simx":                   false,
		"example.com/other/internal/eventq":       true,
		"wormlan/internal/sweep [wormlan/s.test]": false,
	} {
		if got := InScope(path); got != want {
			t.Errorf("InScope(%q) = %v, want %v", path, got, want)
		}
	}
	if !rngScope("wormlan/internal/rng") || rngScope("wormlan/internal/rngx") || rngScope("wormlan/internal/sim") {
		t.Error("rngScope misclassifies")
	}
	for path, want := range map[string]bool{
		"wormlan/internal/network":  true,
		"wormlan/internal/flit":     true,
		"wormlan/internal/des":      true,
		"wormlan/internal/eventq":   true,
		"wormlan/internal/adapter":  false,
		"wormlan/internal/sweep":    false,
		"wormlan/internal/networkx": false,
	} {
		if got := inAllocScope(path); got != want {
			t.Errorf("inAllocScope(%q) = %v, want %v", path, got, want)
		}
	}
}
