package lint

import (
	"go/ast"
	"go/types"
)

// wallclockForbidden lists the package time functions that read or depend
// on the host clock.  Pure types and arithmetic (time.Duration,
// time.Millisecond, ...) remain legal: they describe durations without
// sampling the wall.
var wallclockForbidden = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"Tick":      true,
	"After":     true,
	"AfterFunc": true,
	"NewTimer":  true,
	"NewTicker": true,
}

// WallClock forbids reading the host clock inside the deterministic
// packages.  Simulation time is des.Time, advanced only by the event
// kernel; a wall-clock read anywhere in sim-core makes results depend on
// host speed and scheduling.  The sweep engine, the benchmark CLIs, and
// the real-time Myrinet emulation (internal/emu) are out of scope by
// construction and keep their progress/elapsed timing.
var WallClock = &Analyzer{
	Name: "wallclock",
	Doc:  "forbids time.Now/Since/Sleep and timers in deterministic packages",
	Run:  runWallClock,
}

func runWallClock(p *Pass) error {
	if !InScope(p.Pkg.Path()) {
		return nil
	}
	p.walk(func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := p.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
			return true
		}
		if wallclockForbidden[fn.Name()] {
			p.Reportf(sel.Pos(), "time.%s reads the host clock: deterministic code must use des.Time simulation time", fn.Name())
		}
		return true
	})
	return nil
}
