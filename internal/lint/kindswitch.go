package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// KindSwitch enforces exhaustiveness on switches over the simulator's
// grown-by-accretion enums.  Three separate PRs added flit kinds, trace
// event kinds, and fault plan kinds; nothing re-checks the consumers when
// a constant lands, so a new kind silently falls through every switch
// written before it existed.
//
// A switch whose tag is one of the registered enum types must either
//
//   - enumerate every declared constant of the type among its case
//     expressions,
//   - carry a `default:` clause (the author has decided what "anything
//     else" means, including future kinds), or
//   - carry a `//wormlint:partial <justification>` comment on (or above)
//     the switch, asserting the unlisted kinds cannot reach this point.
//
// The justification is mandatory: a bare marker is itself flagged.
// Constants are compared by value, so aliased constants count as
// covering each other.
var KindSwitch = &Analyzer{
	Name: "kindswitch",
	Doc:  "flags non-exhaustive switches over flit/trace/fault enum types",
	Run:  runKindSwitch,
}

// kindEnums registers the enum types whose switches must be exhaustive,
// as (package path suffix, type name) pairs.
var kindEnums = [][2]string{
	{"internal/flit", "Kind"},
	{"internal/flit", "Mode"},
	{"internal/trace", "Kind"},
	{"internal/fault", "Kind"},
}

func runKindSwitch(p *Pass) error {
	if !InScope(p.Pkg.Path()) {
		return nil
	}
	p.walk(func(n ast.Node) bool {
		sw, ok := n.(*ast.SwitchStmt)
		if !ok || sw.Tag == nil {
			return true
		}
		named := registeredEnum(p.TypesInfo.TypeOf(sw.Tag))
		if named == nil {
			return true
		}
		covered := make(map[string]bool)
		hasDefault := false
		for _, stmt := range sw.Body.List {
			cc, ok := stmt.(*ast.CaseClause)
			if !ok {
				continue
			}
			if cc.List == nil {
				hasDefault = true
				continue
			}
			for _, e := range cc.List {
				if tv, ok := p.TypesInfo.Types[e]; ok && tv.Value != nil {
					covered[tv.Value.ExactString()] = true
				}
			}
		}
		if hasDefault {
			return true
		}
		missing := missingConstants(named, covered)
		m := p.markerAt(markerPartial, sw.Pos())
		if m != nil && !m.justified() {
			p.reportBare(m, sw.Pos(), "a justification explaining why the unhandled kinds cannot reach this switch is required")
			return true
		}
		if len(missing) == 0 {
			// Exhaustive: a justified partial marker here is stale and
			// stays unused for -audit.
			return true
		}
		if m != nil {
			m.use()
			return true
		}
		p.Reportf(sw.Pos(), "switch over %s.%s is not exhaustive: missing %s; add the cases, a default clause, or //wormlint:partial <why>",
			named.Obj().Pkg().Name(), named.Obj().Name(), strings.Join(missing, ", "))
		return true
	})
	return nil
}

// registeredEnum returns t as a registered enum's *types.Named, or nil.
func registeredEnum(t types.Type) *types.Named {
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return nil
	}
	path := obj.Pkg().Path()
	for _, e := range kindEnums {
		if obj.Name() != e[1] {
			continue
		}
		if path == e[0] || strings.HasSuffix(path, "/"+e[0]) {
			return named
		}
	}
	return nil
}

// missingConstants returns the names of named's declared constants whose
// values are absent from covered, in declaration-scope name order.
func missingConstants(named *types.Named, covered map[string]bool) []string {
	scope := named.Obj().Pkg().Scope()
	var missing []string
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		if !covered[c.Val().ExactString()] {
			missing = append(missing, c.Name())
		}
	}
	sort.Strings(missing)
	return missing
}
