package lint

import (
	"strings"
)

// deterministicScope lists the package path suffixes whose code must obey
// the determinism contract: everything that executes between des.Kernel
// event dispatches, plus the harness code whose formatted output lands in
// golden files and test assertions.
//
// internal/sweep and the cmd/ binaries are deliberately absent: the sweep
// engine owns all concurrency and progress timing (it parallelizes whole
// simulations, each of which is deterministic), and the CLIs may report
// wall-clock elapsed time.  internal/emu is absent because it is a
// real-time Myrinet emulation — wall-clock time IS its simulation clock.
// internal/rng is absent from seed checks because it is the sanctioned
// randomness implementation.
var deterministicScope = []string{
	"internal/des",
	"internal/eventq",
	"internal/network",
	"internal/adapter",
	"internal/switchmc",
	"internal/multicast",
	"internal/sim",
	"internal/fault",
	"internal/liveness",
	"internal/updown",
	"internal/route",
	"internal/vcroute",
	"internal/arb",
	"internal/core",
	// Beyond the contract's original kernel list: these feed the kernel
	// deterministically (topology/route construction, traffic draws,
	// statistics, the distributed mapper) or assert over its state
	// (faulttest), so their output is equally golden.
	"internal/flit",
	"internal/topology",
	"internal/traffic",
	"internal/mapper",
	"internal/stats",
	"internal/ipmap",
	"internal/faulttest",
	// The observability layer records from inside the simulation tick and
	// its exported traces are compared byte-for-byte across runs.
	"internal/trace",
}

// InScope reports whether the package at path is governed by the
// determinism contract.
func InScope(path string) bool {
	// Strip the " [pkg.test]" suffix go vet appends to test variants of a
	// package: the non-test files of a test unit are still in scope.
	if i := strings.IndexByte(path, ' '); i >= 0 {
		path = path[:i]
	}
	for _, s := range deterministicScope {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

// rngScope reports whether path is the sanctioned randomness package.
func rngScope(path string) bool {
	return path == "internal/rng" || strings.HasSuffix(path, "/internal/rng")
}

// The //wormlint:* marker machinery lives in markers.go; escape hatches
// are tracked for use there so `wormlint -audit` can flag stale ones.
