package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// deterministicScope lists the package path suffixes whose code must obey
// the determinism contract: everything that executes between des.Kernel
// event dispatches, plus the harness code whose formatted output lands in
// golden files and test assertions.
//
// internal/sweep and the cmd/ binaries are deliberately absent: the sweep
// engine owns all concurrency and progress timing (it parallelizes whole
// simulations, each of which is deterministic), and the CLIs may report
// wall-clock elapsed time.  internal/emu is absent because it is a
// real-time Myrinet emulation — wall-clock time IS its simulation clock.
// internal/rng is absent from seed checks because it is the sanctioned
// randomness implementation.
var deterministicScope = []string{
	"internal/des",
	"internal/eventq",
	"internal/network",
	"internal/adapter",
	"internal/switchmc",
	"internal/multicast",
	"internal/sim",
	"internal/fault",
	"internal/liveness",
	"internal/updown",
	"internal/route",
	"internal/vcroute",
	"internal/arb",
	"internal/core",
	// Beyond the contract's original kernel list: these feed the kernel
	// deterministically (topology/route construction, traffic draws,
	// statistics, the distributed mapper) or assert over its state
	// (faulttest), so their output is equally golden.
	"internal/flit",
	"internal/topology",
	"internal/traffic",
	"internal/mapper",
	"internal/stats",
	"internal/ipmap",
	"internal/faulttest",
	// The observability layer records from inside the simulation tick and
	// its exported traces are compared byte-for-byte across runs.
	"internal/trace",
}

// InScope reports whether the package at path is governed by the
// determinism contract.
func InScope(path string) bool {
	// Strip the " [pkg.test]" suffix go vet appends to test variants of a
	// package: the non-test files of a test unit are still in scope.
	if i := strings.IndexByte(path, ' '); i >= 0 {
		path = path[:i]
	}
	for _, s := range deterministicScope {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

// rngScope reports whether path is the sanctioned randomness package.
func rngScope(path string) bool {
	return path == "internal/rng" || strings.HasSuffix(path, "/internal/rng")
}

// orderedMarker is the annotation that exempts a provably
// order-insensitive map iteration from the maporder analyzer.  It must be
// followed by a justification; a bare marker is itself a diagnostic.
const orderedMarker = "wormlint:ordered"

// allocMarker is the annotation that exempts a justified allocation from
// the hotalloc analyzer.  Like orderedMarker, a bare marker is itself a
// diagnostic.
const allocMarker = "wormlint:alloc"

// orderedIndex maps the line numbers carrying a marker comment to whether
// the marker has a non-empty justification.
type orderedIndex map[int]bool

// orderedAt reports whether the statement starting at pos is annotated
// with the ordered marker (same line or the line immediately above) and
// whether that annotation carries a justification.
func (p *Pass) orderedAt(pos token.Pos) (annotated, justified bool) {
	return p.markerAt(orderedMarker, &p.ordered, pos)
}

// allocAt is orderedAt for the `//wormlint:alloc` marker.
func (p *Pass) allocAt(pos token.Pos) (annotated, justified bool) {
	return p.markerAt(allocMarker, &p.alloc, pos)
}

// markerAt reports whether the node starting at pos is annotated with the
// given marker comment (same line or the line immediately above) and
// whether that annotation carries a non-empty justification.  cache holds
// the per-file line index, built on first use.
func (p *Pass) markerAt(marker string, cache *map[*ast.File]orderedIndex, pos token.Pos) (annotated, justified bool) {
	f := p.fileOf(pos)
	if f == nil {
		return false, false
	}
	if *cache == nil {
		*cache = make(map[*ast.File]orderedIndex)
	}
	idx, ok := (*cache)[f]
	if !ok {
		idx = make(orderedIndex)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, marker) {
					continue
				}
				just := strings.TrimSpace(strings.TrimPrefix(text, marker))
				idx[p.Fset.Position(c.Pos()).Line] = just != ""
			}
		}
		(*cache)[f] = idx
	}
	line := p.Fset.Position(pos).Line
	if j, ok := idx[line]; ok {
		return true, j
	}
	if j, ok := idx[line-1]; ok {
		return true, j
	}
	return false, false
}
