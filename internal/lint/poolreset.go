package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// PoolReset guards the object-pooling discipline the zero-alloc contract
// invites: Event structs cycle through the eventq free list, Worms
// through flit.WormPool, streams and input ports are reset in place.  A
// hand-written reset that misses one field leaks state from a previous
// occupant into the next — the classic stale-state bug, invisible to
// tests until a rare interleaving makes the leftover value load-bearing,
// and a direct threat to replay determinism.
//
// In the zero-alloc packages, a function or method named exactly Reset,
// reset, Recycle, recycle, Get, or get that performs field assignments on
// a pointer to a package-local struct is a whole-object reset by
// contract (partial resets must take other names, e.g. resetRx).  Its
// target is the variable receiving the most field writes (ties prefer
// the receiver).  The analyzer requires it to assign every field of the
// target's type that the package mutates outside its constructors
// (New*/new*) and outside the type's reset functions themselves — fields
// written only at construction are identity, not state.  Coverage
// follows same-package calls on the target, so a reset that delegates
// (in.setMode(pmIdle)) gets credit for the fields the callee assigns,
// and a whole-struct assignment `*x = T{...}` covers every field at
// once.
//
// A `//wormlint:keep <justification>` comment on the struct field's
// declaration exempts state that deliberately survives recycling; the
// justification is mandatory.
var PoolReset = &Analyzer{
	Name: "poolreset",
	Doc:  "verifies pool reset/recycle functions assign every mutated field",
	Run:  runPoolReset,
}

// resetNames are the exact function names the pooling contract reserves
// for whole-object resets.
var resetNames = map[string]bool{
	"Reset": true, "reset": true,
	"Recycle": true, "recycle": true,
	"Get": true, "get": true,
}

func runPoolReset(p *Pass) error {
	if !inAllocScope(p.Pkg.Path()) {
		return nil
	}
	pr := newPoolReset(p)

	// Identify every candidate: (reset function, target variable, type).
	type candidate struct {
		fd     *ast.FuncDecl
		target *types.Var
		typ    *types.Named
	}
	var candidates []candidate
	resetFuncs := make(map[*types.Named]map[*ast.FuncDecl]bool)
	for _, fd := range pr.funcs {
		if !resetNames[fd.Name.Name] {
			continue
		}
		target := pr.resetTarget(fd)
		if target == nil {
			continue
		}
		named := localStructType(p, target.Type())
		candidates = append(candidates, candidate{fd, target, named})
		if resetFuncs[named] == nil {
			resetFuncs[named] = make(map[*ast.FuncDecl]bool)
		}
		resetFuncs[named][fd] = true
	}

	for _, c := range candidates {
		required := pr.mutatedFields(c.typ, resetFuncs[c.typ])
		covered, all := pr.assignedFields(c.fd, c.target, nil)
		if all {
			continue
		}
		var missing []string
		for f := range required {
			if !covered[f] {
				missing = append(missing, f)
			}
		}
		sort.Strings(missing)
		var unexcused []string
		for _, f := range missing {
			pos := pr.fieldPos(c.typ, f)
			m := p.markerAt(markerKeep, pos)
			if m != nil && !m.justified() {
				p.reportBare(m, pos, "a justification explaining why the field may survive pool recycling is required")
				continue
			}
			if m != nil {
				m.use()
				continue
			}
			unexcused = append(unexcused, f)
		}
		if len(unexcused) > 0 {
			p.Reportf(c.fd.Pos(), "reset function %s leaves %s of %s unassigned: stale state survives pool recycling — assign the field(s) or annotate the declaration(s) with //wormlint:keep <why>",
				c.fd.Name.Name, fieldList(unexcused), c.typ.Obj().Name())
		}
	}
	return nil
}

func fieldList(names []string) string {
	quoted := make([]string, len(names))
	for i, n := range names {
		quoted[i] = "field " + n
	}
	if len(quoted) == 1 {
		return quoted[0]
	}
	return strings.Join(quoted[:len(quoted)-1], ", ") + " and " + quoted[len(quoted)-1]
}

type poolReset struct {
	p     *Pass
	funcs []*ast.FuncDecl
	// decl maps function objects to their declarations for transitive
	// coverage through same-package calls.
	decl map[*types.Func]*ast.FuncDecl
}

func newPoolReset(p *Pass) *poolReset {
	pr := &poolReset{p: p, decl: make(map[*types.Func]*ast.FuncDecl)}
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			pr.funcs = append(pr.funcs, fd)
			if fn, ok := p.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				pr.decl[fn] = fd
			}
		}
	}
	return pr
}

// resetTarget picks the variable a reset function resets: the receiver,
// parameter, or local of pointer-to-package-local-struct type with the
// most direct field writes in the body (ties prefer the receiver).
func (pr *poolReset) resetTarget(fd *ast.FuncDecl) *types.Var {
	p := pr.p
	writes := make(map[*types.Var]int)
	countLHS := func(e ast.Expr) {
		if v, _, ok := pr.fieldWrite(e); ok {
			writes[v]++
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				countLHS(lhs)
				// `*x = T{...}`: a whole-struct reset counts as writing
				// every field.
				if star, ok := ast.Unparen(lhs).(*ast.StarExpr); ok {
					if v := pr.identVar(star.X); v != nil {
						if named := localStructType(p, v.Type()); named != nil {
							writes[v] += named.Underlying().(*types.Struct).NumFields()
						}
					}
				}
			}
		case *ast.IncDecStmt:
			countLHS(s.X)
		}
		return true
	})
	var recv *types.Var
	if fd.Recv != nil && len(fd.Recv.List) > 0 && len(fd.Recv.List[0].Names) > 0 {
		recv, _ = p.TypesInfo.Defs[fd.Recv.List[0].Names[0]].(*types.Var)
	}
	// Deterministic selection: highest write count wins, the receiver
	// breaks ties, then the lexicographically smallest name.
	var best *types.Var
	better := func(v *types.Var) bool {
		if best == nil || writes[v] != writes[best] {
			return best == nil || writes[v] > writes[best]
		}
		if (v == recv) != (best == recv) {
			return v == recv
		}
		return v.Name() < best.Name()
	}
	for v := range writes { // order-insensitive: better() is a total order over candidates
		if localStructType(p, v.Type()) == nil {
			continue
		}
		if better(v) {
			best = v
		}
	}
	return best
}

// fieldWrite decomposes an assignable expression of the form id.f or
// id.f[i] into (root variable, field name).
func (pr *poolReset) fieldWrite(e ast.Expr) (*types.Var, string, bool) {
	e = ast.Unparen(e)
	if ix, ok := e.(*ast.IndexExpr); ok {
		e = ast.Unparen(ix.X)
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return nil, "", false
	}
	v := pr.identVar(sel.X)
	if v == nil {
		return nil, "", false
	}
	return v, sel.Sel.Name, true
}

func (pr *poolReset) identVar(e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := pr.p.TypesInfo.Uses[id].(*types.Var)
	if v == nil {
		v, _ = pr.p.TypesInfo.Defs[id].(*types.Var)
	}
	return v
}

// localStructType returns t (or *t) as a named struct type declared in
// the analyzed package, else nil.
func localStructType(p *Pass, t types.Type) *types.Named {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() != p.Pkg {
		return nil
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return nil
	}
	return named
}

// mutatedFields returns the fields of typ assigned anywhere in the
// package outside constructors and outside typ's own reset functions:
// the state a reset must restore.
func (pr *poolReset) mutatedFields(typ *types.Named, exclude map[*ast.FuncDecl]bool) map[string]bool {
	p := pr.p
	mutated := make(map[string]bool)
	note := func(e ast.Expr) {
		e = ast.Unparen(e)
		if ix, ok := e.(*ast.IndexExpr); ok {
			e = ast.Unparen(ix.X)
		}
		sel, ok := e.(*ast.SelectorExpr)
		if !ok {
			return
		}
		if localStructType(p, p.TypesInfo.TypeOf(sel.X)) != typ {
			return
		}
		mutated[sel.Sel.Name] = true
	}
	for _, fd := range pr.funcs {
		if exclude[fd] || isConstructorName(fd.Name.Name) {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				if s.Tok == token.DEFINE {
					return true
				}
				for _, lhs := range s.Lhs {
					note(lhs)
				}
			case *ast.IncDecStmt:
				note(s.X)
			}
			return true
		})
	}
	return mutated
}

// assignedFields returns the fields of v's type the function assigns,
// following same-package calls that receive v (as receiver or argument).
// all is true when a whole-struct assignment covers every field.
func (pr *poolReset) assignedFields(fd *ast.FuncDecl, v *types.Var, seen map[*ast.FuncDecl]bool) (fields map[string]bool, all bool) {
	if seen == nil {
		seen = make(map[*ast.FuncDecl]bool)
	}
	if seen[fd] {
		return nil, false
	}
	seen[fd] = true
	fields = make(map[string]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if all {
			return false
		}
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				if fv, name, ok := pr.fieldWrite(lhs); ok && fv == v {
					fields[name] = true
				}
				if star, ok := ast.Unparen(lhs).(*ast.StarExpr); ok {
					if pr.identVar(star.X) == v {
						all = true
					}
				}
			}
		case *ast.IncDecStmt:
			if fv, name, ok := pr.fieldWrite(s.X); ok && fv == v {
				fields[name] = true
			}
		case *ast.CallExpr:
			callee, argIdx := pr.resolveCall(s, v)
			if callee == nil {
				return true
			}
			inner := pr.calleeVar(callee, argIdx)
			if inner == nil {
				return true
			}
			sub, subAll := pr.assignedFields(callee, inner, seen)
			if subAll {
				all = true
				return false
			}
			for f := range sub {
				fields[f] = true
			}
		}
		return true
	})
	return fields, all
}

// resolveCall matches a call that hands v to a same-package function:
// v.m(...) (argIdx -1 for the receiver) or f(..., v, ...).
func (pr *poolReset) resolveCall(call *ast.CallExpr, v *types.Var) (*ast.FuncDecl, int) {
	p := pr.p
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if pr.identVar(fun.X) != v {
			return nil, 0
		}
		fn, _ := p.TypesInfo.Uses[fun.Sel].(*types.Func)
		if fn == nil {
			return nil, 0
		}
		return pr.decl[fn], -1
	case *ast.Ident:
		fn, _ := p.TypesInfo.Uses[fun].(*types.Func)
		if fn == nil {
			return nil, 0
		}
		for i, arg := range call.Args {
			if pr.identVar(arg) == v {
				return pr.decl[fn], i
			}
		}
	}
	return nil, 0
}

// calleeVar maps a call's target slot (receiver or i'th parameter) to the
// callee's corresponding variable.
func (pr *poolReset) calleeVar(fd *ast.FuncDecl, argIdx int) *types.Var {
	if argIdx < 0 {
		if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
			return nil
		}
		v, _ := pr.p.TypesInfo.Defs[fd.Recv.List[0].Names[0]].(*types.Var)
		return v
	}
	i := 0
	for _, fld := range fd.Type.Params.List {
		for _, name := range fld.Names {
			if i == argIdx {
				v, _ := pr.p.TypesInfo.Defs[name].(*types.Var)
				return v
			}
			i++
		}
	}
	return nil
}

// fieldPos locates the declaration position of typ's field, for keep
// markers; falls back to the type's position.
func (pr *poolReset) fieldPos(typ *types.Named, field string) token.Pos {
	p := pr.p
	for _, f := range p.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || ts.Name.Name != typ.Obj().Name() {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, fld := range st.Fields.List {
					for _, name := range fld.Names {
						if name.Name == field {
							return name.Pos()
						}
					}
				}
			}
		}
	}
	return typ.Obj().Pos()
}
