package lint

import (
	"go/ast"
	"go/types"
)

// MapOrder flags `for range` statements over map types in deterministic
// packages.  Go randomizes map iteration order per range statement, so any
// map walk whose body's effect depends on visit order is a determinism bug
// that single-process equivalence tests cannot reliably catch.
//
// Two escapes exist:
//
//   - The pure key-collect idiom is recognized and allowed: a loop that
//     only appends the key (or values derived from it) to slices, or
//     deletes the key from the ranged map, is order-insensitive by
//     construction because the collected slice is sorted before use (the
//     analyzer cannot see the sort, but an unsorted use of the collected
//     slice is exactly the same bug moved one statement down, and the
//     idiom makes it visible in review).
//   - A `//wormlint:ordered <justification>` comment on (or immediately
//     above) the range statement asserts the body is provably
//     order-insensitive — e.g. copying a map into a map, or summing
//     integers.  The justification is mandatory: a bare marker is itself
//     flagged.  Floating-point accumulation is NOT order-insensitive and
//     never qualifies.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "flags nondeterministic iteration over maps in deterministic packages",
	Run:  runMapOrder,
}

func runMapOrder(p *Pass) error {
	if !InScope(p.Pkg.Path()) {
		return nil
	}
	p.walk(func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := p.TypesInfo.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		m := p.markerAt(markerOrdered, rs.Pos())
		if m != nil && !m.justified() {
			p.reportBare(m, rs.Pos(), "a justification explaining why the loop body is order-insensitive is required")
			return true
		}
		// The key-collect idiom needs no annotation; a justified marker on
		// such a loop suppresses nothing and stays unused for -audit.
		if keyCollectLoop(p, rs) {
			return true
		}
		if m != nil {
			m.use()
			return true
		}
		p.Reportf(rs.Pos(), "range over map is nondeterministic: iterate sorted keys, use the key-collect idiom, or annotate an order-insensitive body with //wormlint:ordered <why>")
		return true
	})
	return nil
}

// keyCollectLoop reports whether rs is the sanctioned key-collect idiom:
// every statement in the body is an append of loop-derived values into a
// slice variable (possibly guarded by if/continue filtering), or a delete
// of the key from the ranged map.  Such a body's observable effect is a
// set, independent of visit order, provided the collected slice is sorted
// before any order-sensitive use.
func keyCollectLoop(p *Pass, rs *ast.RangeStmt) bool {
	return keyCollectBlock(p, rs, rs.Body.List)
}

func keyCollectBlock(p *Pass, rs *ast.RangeStmt, stmts []ast.Stmt) bool {
	for _, st := range stmts {
		if !keyCollectStmt(p, rs, st) {
			return false
		}
	}
	return true
}

func keyCollectStmt(p *Pass, rs *ast.RangeStmt, st ast.Stmt) bool {
	switch s := st.(type) {
	case *ast.AssignStmt:
		// x = append(x, ...): the only permitted mutation.
		if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
			return false
		}
		lhs, ok := s.Lhs[0].(*ast.Ident)
		if !ok {
			return false
		}
		call, ok := s.Rhs[0].(*ast.CallExpr)
		if !ok || !isBuiltin(p, call.Fun, "append") || len(call.Args) < 2 {
			return false
		}
		first, ok := call.Args[0].(*ast.Ident)
		return ok && first.Name == lhs.Name
	case *ast.ExprStmt:
		// delete(m, k) on the ranged map: map clearing/filtering.
		call, ok := s.X.(*ast.CallExpr)
		if !ok || !isBuiltin(p, call.Fun, "delete") || len(call.Args) != 2 {
			return false
		}
		m, ok := call.Args[0].(*ast.Ident)
		rx, okX := rs.X.(*ast.Ident)
		return ok && okX && p.TypesInfo.Uses[m] == p.TypesInfo.Uses[rx]
	case *ast.IfStmt:
		// Filtering: if <cond> { collect } — no else, no init statement.
		if s.Init != nil || s.Else != nil {
			return false
		}
		return keyCollectBlock(p, rs, s.Body.List)
	case *ast.BranchStmt:
		return s.Tok.String() == "continue" && s.Label == nil
	default:
		return false
	}
}

// isBuiltin reports whether fun is a use of the named Go builtin.
func isBuiltin(p *Pass, fun ast.Expr, name string) bool {
	id, ok := fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = p.TypesInfo.Uses[id].(*types.Builtin)
	return ok
}
