package lint

// A miniature analysistest: testdata/src holds GOPATH-style packages whose
// sources carry `// want "regexp"` comments on the lines where an analyzer
// must report (multiple quoted regexps on one line expect multiple
// diagnostics).  runAnalyzers loads and type-checks one such package —
// resolving testdata-local imports from testdata/src and everything else
// from the standard library's source — runs the given analyzers, and
// diffs actual diagnostics against the want comments.

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// testLoader loads testdata packages recursively with position info shared
// across the run.
type testLoader struct {
	fset   *token.FileSet
	root   string // testdata/src
	pkgs   map[string]*loadedPkg
	stdlib types.Importer
}

type loadedPkg struct {
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
	err   error
}

func newTestLoader(t *testing.T) *testLoader {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	return &testLoader{
		fset:   fset,
		root:   root,
		pkgs:   make(map[string]*loadedPkg),
		stdlib: importer.ForCompiler(fset, "source", nil),
	}
}

// Import implements types.Importer over testdata/src, falling back to the
// standard library for everything else.
func (l *testLoader) Import(path string) (*types.Package, error) {
	if dir := filepath.Join(l.root, filepath.FromSlash(path)); isDir(dir) {
		p := l.load(path)
		return p.pkg, p.err
	}
	return l.stdlib.Import(path)
}

func isDir(dir string) bool {
	st, err := os.Stat(dir)
	return err == nil && st.IsDir()
}

func (l *testLoader) load(path string) *loadedPkg {
	if p, ok := l.pkgs[path]; ok {
		return p
	}
	p := &loadedPkg{}
	l.pkgs[path] = p
	dir := filepath.Join(l.root, filepath.FromSlash(path))
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		p.err = err
		return p
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, name, nil, parser.ParseComments)
		if err != nil {
			p.err = err
			return p
		}
		// An external test package (package foo_test) would need its own
		// unit; the testdata corpus does not use them.
		p.files = append(p.files, f)
	}
	if len(p.files) == 0 {
		p.err = fmt.Errorf("no Go files in %s", dir)
		return p
	}
	info := newTypesInfo()
	tc := &types.Config{Importer: l}
	pkg, err := tc.Check(path, l.fset, p.files, info)
	if err != nil {
		p.err = err
		return p
	}
	p.pkg, p.info = pkg, info
	return p
}

// wantRx extracts the quoted regexps of a want comment; both Go string
// forms are accepted: want "..." and want `...`.
var wantRx = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// runAnalyzers loads pkgpath from testdata, runs the analyzers, and diffs
// diagnostics against the package's want comments.
func runAnalyzers(t *testing.T, pkgpath string, analyzers ...*Analyzer) {
	t.Helper()
	l := newTestLoader(t)
	p := l.load(pkgpath)
	if p.err != nil {
		t.Fatalf("loading %s: %v", pkgpath, p.err)
	}
	diags, err := RunPackage(l.fset, p.files, p.pkg, p.info, analyzers)
	if err != nil {
		t.Fatalf("running analyzers on %s: %v", pkgpath, err)
	}

	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*regexp.Regexp)
	for _, f := range p.files {
		fname := l.fset.Position(f.Package).Filename
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				k := key{fname, l.fset.Position(c.Pos()).Line}
				for _, m := range wantRx.FindAllStringSubmatch(text, -1) {
					expr := m[1]
					if expr == "" {
						expr = m[2]
					}
					rx, err := regexp.Compile(expr)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", fname, k.line, expr, err)
					}
					wants[k] = append(wants[k], rx)
				}
			}
		}
	}

	for _, d := range diags {
		pos := l.fset.Position(d.Pos)
		k := key{pos.Filename, pos.Line}
		matched := false
		for i, rx := range wants[k] {
			if rx.MatchString(d.Message) {
				wants[k] = append(wants[k][:i], wants[k][i+1:]...)
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic [%s] %s", pos, d.Analyzer, d.Message)
		}
	}
	for k, rxs := range wants {
		for _, rx := range rxs {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, rx)
		}
	}
}
