package lint

import (
	"go/ast"
	"go/types"
	"strconv"
)

// seedForbiddenImports are the randomness sources that bypass the
// simulator's seed discipline.  math/rand's global functions share hidden
// mutable state across call sites; crypto/rand is nondeterministic by
// design.  All simulator randomness flows through internal/rng, whose
// PCG streams are seeded from config/sweep identity.
var seedForbiddenImports = map[string]string{
	"math/rand":    "use internal/rng seeded from config/sweep identity",
	"math/rand/v2": "use internal/rng seeded from config/sweep identity",
	"crypto/rand":  "cryptographic randomness is nondeterministic and has no place in the simulator",
}

// SeedDiscipline enforces that all randomness flows through internal/rng
// with seeds derived from configuration, never hard-coded.  It flags
// imports of math/rand (v1 and v2) and crypto/rand in deterministic
// packages, and calls of internal/rng constructors whose seed argument is
// a bare compile-time constant: a literal seed hides a workload identity
// inside code where no sweep or config can vary it, and two call sites
// with the same literal silently correlate their streams.  (Literal
// stream selectors — the second rng.New argument — are fine and
// idiomatic: streams deliberately partition one seed's sequence space.)
var SeedDiscipline = &Analyzer{
	Name: "seeddiscipline",
	Doc:  "randomness must flow through internal/rng, seeded from config/sweep identity",
	Run:  runSeedDiscipline,
}

func runSeedDiscipline(p *Pass) error {
	if !InScope(p.Pkg.Path()) || rngScope(p.Pkg.Path()) {
		return nil
	}
	for _, f := range p.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if why, bad := seedForbiddenImports[path]; bad {
				p.Reportf(imp.Pos(), "import of %s breaks seed discipline: %s", path, why)
			}
		}
	}
	p.walk(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := p.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || !rngScope(fn.Pkg().Path()) {
			return true
		}
		// Constructors take the seed as their first argument; methods on an
		// already-seeded source draw from it and are always fine.
		if fn.Type().(*types.Signature).Recv() != nil {
			return true
		}
		seed := call.Args[0]
		if tv, ok := p.TypesInfo.Types[seed]; ok && tv.Value != nil {
			p.Reportf(seed.Pos(), "bare constant seed in rng.%s call: derive the seed from config/sweep identity so workloads stay addressable", fn.Name())
		}
		return true
	})
	return nil
}
