package lint

import (
	"go/ast"
	"go/types"
)

// NoGoroutine forbids concurrency primitives inside the deterministic
// kernel packages: `go` statements, channel sends/receives, select, range
// over a channel, close, and make(chan).  One simulation is one goroutine
// by design — event ordering is governed entirely by the DES kernel's
// (time, sequence) priority queue, and any intra-simulation concurrency
// would subject results to the scheduler.  Parallelism lives one layer
// up, in internal/sweep, which runs independent simulations on worker
// goroutines and is out of scope by construction.
var NoGoroutine = &Analyzer{
	Name: "nogoroutine",
	Doc:  "forbids go statements and channel operations in the deterministic kernel",
	Run:  runNoGoroutine,
}

func runNoGoroutine(p *Pass) error {
	if !InScope(p.Pkg.Path()) {
		return nil
	}
	p.walk(func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.GoStmt:
			p.Reportf(s.Pos(), "go statement in deterministic kernel: one simulation is one goroutine; parallelism belongs to internal/sweep")
		case *ast.SendStmt:
			p.Reportf(s.Pos(), "channel send in deterministic kernel: event ordering belongs to the DES kernel, not the scheduler")
		case *ast.UnaryExpr:
			if s.Op.String() == "<-" {
				p.Reportf(s.Pos(), "channel receive in deterministic kernel: event ordering belongs to the DES kernel, not the scheduler")
			}
		case *ast.SelectStmt:
			p.Reportf(s.Pos(), "select in deterministic kernel: event ordering belongs to the DES kernel, not the scheduler")
		case *ast.RangeStmt:
			if t := p.TypesInfo.TypeOf(s.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					p.Reportf(s.Pos(), "range over channel in deterministic kernel: event ordering belongs to the DES kernel, not the scheduler")
				}
			}
		case *ast.CallExpr:
			if isBuiltin(p, s.Fun, "close") {
				p.Reportf(s.Pos(), "close of channel in deterministic kernel: channels have no place in sim-core")
			}
			if isBuiltin(p, s.Fun, "make") && len(s.Args) > 0 {
				if t := p.TypesInfo.TypeOf(s.Args[0]); t != nil {
					if _, isChan := t.Underlying().(*types.Chan); isChan {
						p.Reportf(s.Pos(), "make(chan) in deterministic kernel: channels have no place in sim-core")
					}
				}
			}
		}
		return true
	})
	return nil
}
