package lint

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"strings"
)

// This file implements the command-line protocol 'go vet -vettool=...'
// requires of an analysis tool (the same contract as x/tools'
// unitchecker, reimplemented on the stdlib so the repo stays
// dependency-free):
//
//	-V=full    describe the executable for build caching
//	-flags     describe supported flags in JSON
//	foo.cfg    analyze the single compilation unit described by the
//	           JSON config file, type-checking against the export data
//	           the build system already produced
//
// Invoked with package patterns instead, wormlint re-execs itself through
// 'go vet -vettool=$self', which hands it one correctly type-checked
// compilation unit per package — no second package-loading path to
// maintain, and diagnostics come out in go vet's native format.

// vetConfig mirrors the JSON compilation-unit description go vet writes
// for a -vettool.  Field names are the protocol; unknown fields are
// ignored.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main is the wormlint entry point; it returns the process exit code.
func Main(args []string) int {
	audit := false
	var rest []string
	for _, a := range args {
		switch {
		case a == "-V=full" || a == "--V=full":
			return printVersion()
		case a == "-flags" || a == "--flags":
			// The JSON flag descriptor go vet reads to learn which
			// tool-specific flags it may forward to unit invocations.
			fmt.Println(`[{"Name":"audit","Bool":true,"Usage":"report stale //wormlint:* markers instead of contract diagnostics"}]`)
			return 0
		case a == "-audit" || a == "--audit" || a == "-audit=true" || a == "--audit=true":
			audit = true
		case a == "-audit=false" || a == "--audit=false":
			audit = false
		case a == "-h" || a == "-help" || a == "--help":
			usage()
			return 0
		default:
			rest = append(rest, a)
		}
	}
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return vetUnit(rest[0], audit)
	}
	return standalone(rest, audit)
}

func usage() {
	fmt.Fprintf(os.Stderr, `wormlint statically enforces the simulator's determinism contract.

Usage:
	wormlint [-audit] [packages]          analyze packages (default ./...)
	go vet -vettool=$(which wormlint) [-audit] [packages]

With -audit, wormlint reports stale //wormlint:* escape-hatch markers —
annotations that no longer suppress any diagnostic — instead of contract
diagnostics.

Analyzers:
`)
	for _, a := range Analyzers() {
		fmt.Fprintf(os.Stderr, "	%-16s %s\n", a.Name, a.Doc)
	}
}

// printVersion implements the -V=full build-caching handshake: the output
// must identify the tool's contents so 'go vet' can cache results.
func printVersion() int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "wormlint:", err)
		return 1
	}
	f, err := os.Open(exe)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wormlint:", err)
		return 1
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fmt.Fprintln(os.Stderr, "wormlint:", err)
		return 1
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", exe, string(h.Sum(nil)))
	return 0
}

// standalone re-execs through go vet so the build system loads and
// type-checks packages for us.
func standalone(patterns []string, audit bool) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "wormlint:", err)
		return 1
	}
	gocmd, err := exec.LookPath("go")
	if err != nil {
		fmt.Fprintln(os.Stderr, "wormlint: go command not found:", err)
		return 1
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	vetArgs := []string{"vet", "-vettool=" + exe}
	if audit {
		// go vet learned the flag from -flags and forwards it to every
		// compilation-unit invocation.
		vetArgs = append(vetArgs, "-audit")
	}
	cmd := exec.Command(gocmd, append(vetArgs, patterns...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintln(os.Stderr, "wormlint:", err)
		return 1
	}
	return 0
}

// vetUnit analyzes one compilation unit described by a go vet config file.
// With audit set it reports stale //wormlint:* markers instead of contract
// diagnostics.
func vetUnit(configFile string, audit bool) int {
	data, err := os.ReadFile(configFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wormlint:", err)
		return 1
	}
	cfg := new(vetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		fmt.Fprintf(os.Stderr, "wormlint: cannot decode config %s: %v\n", configFile, err)
		return 1
	}
	// The protocol requires the fact-output file to exist even though
	// wormlint's analyzers produce no cross-package facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "wormlint:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0 // the compiler will report it with better context
			}
			fmt.Fprintln(os.Stderr, "wormlint:", err)
			return 1
		}
		files = append(files, f)
	}

	// Resolve imports from the export data the build system already wrote:
	// ImportMap takes import paths to package paths (vendoring), and
	// PackageFile takes package paths to export-data files.
	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		return compilerImporter.Import(path)
	})
	tc := &types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor("gc", build.Default.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	info := newTypesInfo()
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "wormlint:", err)
		return 1
	}

	run := RunPackage
	if audit {
		run = AuditPackage
	}
	diags, err := run(fset, files, pkg, info, Analyzers())
	if err != nil {
		fmt.Fprintln(os.Stderr, "wormlint:", err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s [wormlint/%s]\n", fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// newTypesInfo allocates every map an analyzer may consult.
func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
}

// importerFunc adapts a function to the types.Importer interface.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
