// Package lint is wormlint: a suite of static analyzers that enforce the
// simulator's determinism contract.
//
// The whole reproduction rests on bit-for-bit determinism: the sweep
// engine promises byte-identical rows at any worker count, the chaos
// harness asserts that seeded failure storms replay exactly, and every
// golden result file is a hash of the simulator's behaviour.  That
// contract is easy to break silently — one `for range` over a Go map in a
// hot path, one wall-clock read in the DES kernel — and no amount of
// after-the-fact equivalence testing can prove its absence.  wormlint
// makes the contract machine-checked.
//
// Nine analyzers run; the first four guard determinism over the
// deterministic packages (see Scope), hotalloc and poolreset guard the
// zero-alloc pooling discipline, and the remaining three enforce
// repo-specific API contracts:
//
//   - maporder: flags `for range` over map types unless the loop is a
//     pure key-collect (append keys to a slice, to be sorted) or carries
//     a `//wormlint:ordered <justification>` comment for loops whose
//     bodies are provably order-insensitive.
//   - wallclock: forbids time.Now/Since/Sleep and timers in sim-core;
//     simulation time is des.Time, never the host clock.  The sweep
//     engine and benchmark CLIs keep their progress timing (out of
//     scope by construction).
//   - seeddiscipline: all randomness flows through internal/rng, seeded
//     from config/sweep identity.  Imports of math/rand (v1 or v2) and
//     crypto/rand are flagged, as are rng constructors called with a
//     bare literal seed.
//   - nogoroutine: the deterministic kernel is single-threaded; `go`
//     statements, channel operations, and select have no place in it.
//     Concurrency belongs to internal/sweep, which runs whole
//     simulations in parallel, never one simulation concurrently.
//   - hotalloc: guards the zero-alloc discipline
//     (network.TestDeliveredWormZeroAlloc) in the hot-path packages:
//     per-call heap allocations — make/new, escaping composite literals,
//     append growth on slices born empty in the function — must sit in a
//     constructor or carry a `//wormlint:alloc <justification>` comment.
//   - poolreset: a pooled object's reset/recycle function must assign
//     every field the package mutates elsewhere, or annotate the skipped
//     field with `//wormlint:keep <justification>` — stale state must
//     not survive pool recycling.
//   - portbyte: VC route bytes are encoded and decoded only by
//     internal/route (EncodeVCPort/DecodeVCPort); hand-rolled `<<6`,
//     `>>6`, `&0x3f`, `&0xc0` arithmetic on bytes elsewhere is flagged.
//   - traceguard: every trace.Recorder emission (direct Record call or
//     call to an emit helper) must be dominated by a `rec != nil` guard
//     on the same recorder, so tracing stays free when disabled.
//   - kindswitch: switches over the registered enum types (flit.Kind,
//     flit.Mode, trace.Kind, fault.Kind) must be exhaustive, carry a
//     default, or carry `//wormlint:partial <justification>`.
//
// Every //wormlint:* escape hatch is tracked: `wormlint -audit` inverts
// the suite and reports markers that no longer suppress any diagnostic
// (plus unknown marker names), so the annotations cannot rot.
//
// The suite is stdlib-only (go/ast + go/types); it deliberately does not
// depend on golang.org/x/tools so the repo stays dependency-free.
// cmd/wormlint exposes it standalone and as a `go vet -vettool`.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer describes one static check.  The shape deliberately mirrors
// golang.org/x/tools/go/analysis.Analyzer so the suite could be rebased
// onto x/tools without touching the checks themselves.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// A Pass provides one analyzer with one type-checked package and a sink
// for diagnostics.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files holds the package's non-test source files.  Test files are
	// type-checked as part of the unit but never analyzed: the contract
	// governs the simulator, not its test harnesses.
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)

	// markers indexes the package's //wormlint:* annotations, shared by
	// every pass over the package so use-tracking (for -audit)
	// accumulates across the whole suite.
	markers *markerSet
}

// A Diagnostic is one finding, positioned for file:line:col display.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Message  string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Analyzer: p.Analyzer.Name, Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Analyzers is the full wormlint suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		MapOrder, WallClock, SeedDiscipline, NoGoroutine, HotAlloc,
		PoolReset, PortByte, TraceGuard, KindSwitch,
	}
}

// Lookup returns the analyzer with the given name, or nil.
func Lookup(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// RunPackage runs the given analyzers over one type-checked package and
// returns the diagnostics sorted by position.  files must belong to fset;
// test files (name ending in _test.go) are filtered out here.
func RunPackage(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Diagnostic, error) {
	nonTest := dropTestFiles(fset, files)
	markers := collectMarkers(fset, nonTest)
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     nonTest,
			Pkg:       pkg,
			TypesInfo: info,
			Report:    func(d Diagnostic) { diags = append(diags, d) },
			markers:   markers,
		}
		if err := a.Run(pass); err != nil {
			return diags, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	sortDiagnostics(fset, diags)
	return diags, nil
}

// dropTestFiles filters out _test.go files: the contract governs the
// simulator, not its test harnesses.
func dropTestFiles(fset *token.FileSet, files []*ast.File) []*ast.File {
	var nonTest []*ast.File
	for _, f := range files {
		name := fset.Position(f.Package).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		nonTest = append(nonTest, f)
	}
	return nonTest
}

func sortDiagnostics(fset *token.FileSet, diags []Diagnostic) {
	// Insertion sort by (file, offset, analyzer): diagnostic counts are
	// tiny and this keeps the package free of sort-interface boilerplate.
	less := func(a, b Diagnostic) bool {
		pa, pb := fset.Position(a.Pos), fset.Position(b.Pos)
		if pa.Filename != pb.Filename {
			return pa.Filename < pb.Filename
		}
		if pa.Offset != pb.Offset {
			return pa.Offset < pb.Offset
		}
		return a.Analyzer < b.Analyzer
	}
	for i := 1; i < len(diags); i++ {
		for j := i; j > 0 && less(diags[j], diags[j-1]); j-- {
			diags[j], diags[j-1] = diags[j-1], diags[j]
		}
	}
}

// walk applies fn to every node of every (non-test) file of the pass.
func (p *Pass) walk(fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}

// fileOf returns the *ast.File containing pos.
func (p *Pass) fileOf(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}
