package faulttest

import (
	"context"
	"fmt"

	"wormlan/internal/adapter"
	"wormlan/internal/des"
	"wormlan/internal/fault"
	"wormlan/internal/liveness"
	"wormlan/internal/network"
	"wormlan/internal/sweep"
	"wormlan/internal/topology"
	"wormlan/internal/traffic"
	"wormlan/internal/updown"
	"wormlan/internal/vcroute"
)

// StormSpec declares one chaos scenario: a topology, a random fault
// schedule, and the traffic offered while the storm runs.  A spec is
// plain data (JSON-marshalable), so a matrix of specs forms a sweep grid
// and storms fan out across workers like any other figure.
type StormSpec struct {
	Name string `json:"name"`
	// Topo names the fabric: "torus8x8" or "shufflenet24".
	Topo string `json:"topo"`
	// Faults parameterizes fault.RandomPlan.  A zero Seed is replaced by
	// the sweep's derived per-point seed.
	Faults fault.Options `json:"faults"`
	// Traffic offered during the storm (defaults: load 0.02, mean worm
	// 300 bytes, 20% multicast, generator seed 5).
	OfferedLoad   float64 `json:"load,omitempty"`
	MulticastProb float64 `json:"mcProb,omitempty"`
	MeanWorm      int     `json:"meanWorm,omitempty"`
	TrafficSeed   uint64  `json:"trafficSeed,omitempty"`

	// Detect selects the detection mode: "" or "oracle" (default), or
	// "hello" to run the storm with the in-band liveness protocol in the
	// recovery loop.  All fields below are omitempty so pre-existing
	// oracle specs keep their serialized form — and therefore their
	// sweep-derived seeds — bit-identical.
	Detect string `json:"detect,omitempty"`
	// HelloInterval / DetectMult override the liveness defaults in hello
	// mode (zero keeps the package defaults).
	HelloInterval des.Time `json:"helloInterval,omitempty"`
	DetectMult    int      `json:"detectMult,omitempty"`

	// Route selects the routing scheme: "" or "updown" (default), or
	// "vcmin"/"fullmesh"/"adaptive" for the alternative deadlock-free
	// schemes.  All schemes take the full fault repertoire — topology
	// changes rebuild the scheme's table over the survivors (pruning for
	// vcmin/fullmesh, genuine rerouting for adaptive).
	// Omitempty, like the detection knobs: the default matrix's specs —
	// and therefore their derived storm seeds — serialize unchanged.
	Route  string `json:"route,omitempty"`
	NumVCs int    `json:"nvc,omitempty"`
	Arb    string `json:"arb,omitempty"` // "" = port scan, "islip"
}

// BuildTopo constructs the fabric a spec names.
func BuildTopo(name string) (*topology.Graph, error) {
	switch name {
	case "torus8x8":
		return topology.Torus(8, 8, 1, 1), nil
	case "shufflenet24":
		return topology.BidirShufflenet(2, 3, 1000), nil
	default:
		return nil, fmt.Errorf("faulttest: unknown topology %q", name)
	}
}

// StormAdapterConfig keeps retries finite and timeouts short so give-ups
// resolve well before the drain deadline.
func StormAdapterConfig() adapter.Config {
	return adapter.Config{
		Mode:           adapter.ModeCircuit,
		CutThrough:     true,
		MaxRetries:     3,
		AckTimeoutBase: 16384,
		NackBackoff:    2048,
	}
}

// RunStorm executes one chaos scenario to quiescence and verifies the
// system-wide invariants: the schedule actually hit the fabric, traffic
// survived, worms were conserved, no channels leaked, and the recovered
// routes verify.  It returns the run's comparable Outcome; two calls with
// the same spec return identical outcomes (the determinism the storm
// matrix test pins across worker counts).
func RunStorm(spec StormSpec) (Outcome, error) {
	var zero Outcome
	if spec.Route != "" && spec.Route != "updown" {
		return runVCStorm(spec)
	}
	g, err := BuildTopo(spec.Topo)
	if err != nil {
		return zero, err
	}
	if spec.OfferedLoad == 0 {
		spec.OfferedLoad = 0.02
	}
	if spec.MulticastProb == 0 {
		spec.MulticastProb = 0.2
	}
	if spec.MeanWorm == 0 {
		spec.MeanWorm = 300
	}
	if spec.TrafficSeed == 0 {
		spec.TrafficSeed = 5
	}
	plan := fault.RandomPlan(g, spec.Faults)
	mode, err := fault.ParseDetectMode(spec.Detect)
	if err != nil {
		return zero, err
	}
	icfg := fault.InjectorConfig{Mode: mode}
	if mode == fault.DetectHello {
		icfg.Hello = liveness.Config{
			Interval:   spec.HelloInterval,
			DetectMult: spec.DetectMult,
			Seed:       spec.Faults.Seed,
		}
		// Hellos outlive the fault window and the traffic horizon so late
		// failures are still detected, then stop well before the drain
		// deadline so quiescence invariants stay checkable.
		icfg.HelloUntil = des.Time(spec.Faults.Window) * 4
	}
	b, err := NewBench(g, StormAdapterConfig(), plan, icfg)
	if err != nil {
		return zero, err
	}

	hosts := g.Hosts()
	grpA, err := b.AddGroupErr(0, hosts[:len(hosts)/2])
	if err != nil {
		return zero, err
	}
	grpB, err := b.AddGroupErr(1, hosts[len(hosts)/3:])
	if err != nil {
		return zero, err
	}
	groupsOf := map[topology.NodeID][]int{}
	for _, h := range grpA.Members {
		groupsOf[h] = append(groupsOf[h], 0)
	}
	for _, h := range grpB.Members {
		groupsOf[h] = append(groupsOf[h], 1)
	}
	gen, err := traffic.New(b.K, traffic.Config{
		OfferedLoad:   spec.OfferedLoad,
		MeanWorm:      spec.MeanWorm,
		MulticastProb: spec.MulticastProb,
		Until:         des.Time(spec.Faults.Window) * 2,
	}, hosts, groupsOf, b.Sys, spec.TrafficSeed)
	if err != nil {
		return zero, err
	}
	gen.Start()

	if err := b.RunErr(des.Time(spec.Faults.Window) * 40); err != nil {
		return zero, err
	}

	// The schedule must actually have hit the fabric mid-run.
	ic := b.Inj.Counters()
	if spec.Faults.LinkDowns > 0 && ic.LinkDowns < 1 {
		return zero, fmt.Errorf("chaos plan killed no links: %+v", ic)
	}
	if spec.Faults.SwitchDowns > 0 && ic.SwitchDowns < 1 {
		return zero, fmt.Errorf("chaos plan killed no switches: %+v", ic)
	}
	if (spec.Faults.LinkDowns > 0 || spec.Faults.SwitchDowns > 0) && ic.Remaps < 1 {
		return zero, fmt.Errorf("no remap completed: %+v", ic)
	}
	if mode == fault.DetectHello && spec.Faults.LinkDowns+spec.Faults.SwitchDowns > 0 {
		// Detection, not the oracle, must have driven those remaps.
		d := b.Inj.Detection()
		if d.Liveness.PeerDowns < 1 {
			return zero, fmt.Errorf("hello detection issued no down verdicts: %+v", d.Liveness)
		}
		if d.Remaps < 1 {
			return zero, fmt.Errorf("no detection-driven remap completed: %+v", d)
		}
		if d.DetectToReroute.Count < 1 {
			return zero, fmt.Errorf("no detection-to-reroute latency recorded: %+v", d)
		}
	}
	worms, _, _ := gen.Generated()
	if worms == 0 {
		return zero, fmt.Errorf("no traffic generated")
	}
	if b.UniDelivered == 0 {
		return zero, fmt.Errorf("no unicast deliveries survived the storm")
	}

	if err := b.ConservationErr(); err != nil {
		return zero, err
	}
	if err := b.HeldChannelsErr(); err != nil {
		return zero, err
	}
	if err := b.RoutesErr(); err != nil {
		return zero, err
	}
	return b.Outcome(), nil
}

// StormGrid expresses a storm matrix as a sweep grid.  Specs with a zero
// fault seed get the derived per-point seed, so the matrix is collision-
// free by construction and stable under reordering.
func StormGrid(specs []StormSpec, baseSeed uint64) sweep.Grid[Outcome] {
	g := sweep.Grid[Outcome]{Name: "storm-matrix", BaseSeed: baseSeed}
	for _, spec := range specs {
		spec := spec
		g.Add(spec, func(_ context.Context, seed uint64) (Outcome, error) {
			s := spec
			if s.Faults.Seed == 0 {
				s.Faults.Seed = seed
			}
			return RunStorm(s)
		})
	}
	return g
}

// DetectionStormMatrix is the published detection-in-the-loop storm grid:
// the default matrix re-run with the hello/liveness protocol replacing the
// oracle, so every recovery is driven by in-band detection.  Verdict
// counts, false positives, flaps, and detection-to-reroute latency land in
// each Outcome's Detection field.
func DetectionStormMatrix() []StormSpec {
	specs := DefaultStormMatrix()
	for i := range specs {
		specs[i].Name += "-hello"
		specs[i].Detect = "hello"
	}
	return specs
}

// runVCStorm is the alternative-routing storm path: chaos against traffic
// on a VC-partitioned minimal torus, an adaptively routed torus, or a
// direct-routed full mesh.  The full fault repertoire applies — every
// topology change re-runs the mapper and the scheme rebuilds its table
// over the survivors (Bench.Rebuild).  The usual invariants hold: the
// schedule must hit, traffic must survive, worms are conserved, the
// fabric drains with no held channels, and the rebuilt table walks the
// topology (vcroute.ValidateTable; the up/down RoutesErr check does not
// apply to scheme tables).
func runVCStorm(spec StormSpec) (Outcome, error) {
	var zero Outcome
	if spec.OfferedLoad == 0 {
		spec.OfferedLoad = 0.02
	}
	if spec.MeanWorm == 0 {
		spec.MeanWorm = 300
	}
	if spec.TrafficSeed == 0 {
		spec.TrafficSeed = 5
	}

	var (
		g         *topology.Graph
		ncfg      network.Config
		mkTable   func(ud *updown.Routing) (*updown.Table, error)
		rebuild   func(b *Bench, ud *updown.Routing, tbl *updown.Table) (*updown.Table, error)
		vcEncoded bool
	)
	switch spec.Route {
	case "vcmin":
		if spec.Topo != "torus8x8" {
			return zero, fmt.Errorf("faulttest: vcmin storms run on torus8x8, not %q", spec.Topo)
		}
		var geo *topology.TorusGeom
		g, geo = topology.TorusWithGeom(8, 8, 1, 1)
		ncfg.NumVCs = spec.NumVCs
		if ncfg.NumVCs < 2 {
			ncfg.NumVCs = 2
		}
		ncfg.VCHeaders = true
		vcEncoded = true
		nvc := ncfg.NumVCs
		mkTable = func(*updown.Routing) (*updown.Table, error) {
			return vcroute.TorusMinimal(g, geo, nvc)
		}
		rebuild = func(_ *Bench, ud *updown.Routing, _ *updown.Table) (*updown.Table, error) {
			return vcroute.TorusMinimalSurviving(g, geo, nvc, ud.Failures())
		}
	case "fullmesh":
		if spec.Topo != "fullmesh8x4" {
			return zero, fmt.Errorf("faulttest: fullmesh storms run on fullmesh8x4, not %q", spec.Topo)
		}
		g = topology.FullMesh(8, 4, 1)
		ncfg.NumVCs = spec.NumVCs
		mkTable = func(*updown.Routing) (*updown.Table, error) {
			return vcroute.FullMesh(g)
		}
		rebuild = func(_ *Bench, ud *updown.Routing, _ *updown.Table) (*updown.Table, error) {
			return vcroute.FullMeshSurviving(g, ud.Failures())
		}
	case "adaptive":
		if spec.Topo != "torus8x8" {
			return zero, fmt.Errorf("faulttest: adaptive storms run on torus8x8, not %q", spec.Topo)
		}
		g = topology.Torus(8, 8, 1, 1)
		ncfg.NumVCs = spec.NumVCs
		if ncfg.NumVCs < 2 {
			ncfg.NumVCs = 2
		}
		ncfg.VCHeaders = true
		vcEncoded = true
		mkTable = func(ud *updown.Routing) (*updown.Table, error) {
			return vcroute.Adaptive(g, ud)
		}
		rebuild = func(b *Bench, ud *updown.Routing, _ *updown.Table) (*updown.Table, error) {
			at, err := network.NewAdaptiveTable(g, ud)
			if err != nil {
				return nil, err
			}
			if err := b.F.SetAdaptive(at); err != nil {
				return nil, err
			}
			return vcroute.Adaptive(g, ud)
		}
	default:
		return zero, fmt.Errorf("faulttest: unknown route scheme %q", spec.Route)
	}
	switch spec.Arb {
	case "":
	case "islip":
		ncfg.Arb = network.ArbISLIP
		ncfg.ArbIters = 2
	default:
		return zero, fmt.Errorf("faulttest: unknown arbiter %q", spec.Arb)
	}

	plan := fault.RandomPlan(g, spec.Faults)
	mode, err := fault.ParseDetectMode(spec.Detect)
	if err != nil {
		return zero, err
	}
	icfg := fault.InjectorConfig{Mode: mode}
	if mode == fault.DetectHello {
		icfg.Hello = liveness.Config{
			Interval:   spec.HelloInterval,
			DetectMult: spec.DetectMult,
			Seed:       spec.Faults.Seed,
		}
		icfg.HelloUntil = des.Time(spec.Faults.Window) * 4
	}
	b, err := NewBenchRouted(g, StormAdapterConfig(), plan, icfg, ncfg, mkTable)
	if err != nil {
		return zero, err
	}
	b.Rebuild = rebuild
	if spec.Route == "adaptive" {
		at, aerr := network.NewAdaptiveTable(g, b.UD)
		if aerr != nil {
			return zero, aerr
		}
		if aerr := b.F.SetAdaptive(at); aerr != nil {
			return zero, aerr
		}
	}

	hosts := g.Hosts()
	var groupsOf map[topology.NodeID][]int
	if spec.MulticastProb > 0 {
		grpA, gerr := b.AddGroupErr(0, hosts[:len(hosts)/2])
		if gerr != nil {
			return zero, gerr
		}
		grpB, gerr := b.AddGroupErr(1, hosts[len(hosts)/3:])
		if gerr != nil {
			return zero, gerr
		}
		groupsOf = map[topology.NodeID][]int{}
		for _, h := range grpA.Members {
			groupsOf[h] = append(groupsOf[h], 0)
		}
		for _, h := range grpB.Members {
			groupsOf[h] = append(groupsOf[h], 1)
		}
	}
	gen, err := traffic.New(b.K, traffic.Config{
		OfferedLoad:   spec.OfferedLoad,
		MeanWorm:      spec.MeanWorm,
		MulticastProb: spec.MulticastProb,
		Until:         des.Time(spec.Faults.Window) * 2,
	}, hosts, groupsOf, b.Sys, spec.TrafficSeed)
	if err != nil {
		return zero, err
	}
	gen.Start()

	if err := b.RunErr(des.Time(spec.Faults.Window) * 40); err != nil {
		return zero, err
	}

	ic := b.Inj.Counters()
	if spec.Faults.LinkDowns > 0 && ic.LinkDowns < 1 {
		return zero, fmt.Errorf("chaos plan killed no links: %+v", ic)
	}
	if spec.Faults.SwitchDowns > 0 && ic.SwitchDowns < 1 {
		return zero, fmt.Errorf("chaos plan killed no switches: %+v", ic)
	}
	if (spec.Faults.LinkDowns > 0 || spec.Faults.SwitchDowns > 0) && ic.Remaps < 1 {
		return zero, fmt.Errorf("no remap completed: %+v", ic)
	}
	if spec.Faults.Corruptions > 0 && ic.Corruptions < 1 {
		return zero, fmt.Errorf("chaos plan corrupted nothing: %+v", ic)
	}
	if spec.Faults.Stalls > 0 && ic.Stalls < 1 {
		return zero, fmt.Errorf("chaos plan stalled no hosts: %+v", ic)
	}
	worms, _, _ := gen.Generated()
	if worms == 0 {
		return zero, fmt.Errorf("no traffic generated")
	}
	if b.UniDelivered == 0 {
		return zero, fmt.Errorf("no unicast deliveries survived the storm")
	}
	if err := b.ConservationErr(); err != nil {
		return zero, err
	}
	if err := b.HeldChannelsErr(); err != nil {
		return zero, err
	}
	// The surviving scheme table must still walk the topology; pruned
	// pairs (empty routes) are fine, so completeness is not required.
	if err := vcroute.ValidateTable(g, b.Tbl, vcEncoded, false); err != nil {
		return zero, fmt.Errorf("rebuilt %s table invalid after storm: %w", spec.Route, err)
	}
	return b.Outcome(), nil
}

// VCStormMatrix is the alternative-routing storm grid: the dateline torus
// (both arbiters) and the direct-routed full mesh under corruption/stall
// chaos — their specs predate topology-change recovery and serialize
// unchanged, keeping derived seeds stable — plus link-kill storms against
// vcmin (prune recovery) and adaptive routing (reroute recovery, with
// multicast riding the VC fabric).
func VCStormMatrix() []StormSpec {
	return []StormSpec{
		{Name: "vcmin-storm", Topo: "torus8x8", Route: "vcmin", NumVCs: 2,
			Faults: fault.Options{Seed: 17, Corruptions: 4, Stalls: 2, Window: 30_000}},
		{Name: "vcmin-islip-storm", Topo: "torus8x8", Route: "vcmin", NumVCs: 4, Arb: "islip",
			Faults: fault.Options{Seed: 29, Corruptions: 3, Stalls: 2, Window: 30_000}},
		{Name: "fullmesh-storm", Topo: "fullmesh8x4", Route: "fullmesh",
			Faults: fault.Options{Seed: 31, Corruptions: 4, Stalls: 2, Window: 30_000}},
		{Name: "vcmin-linkkill", Topo: "torus8x8", Route: "vcmin", NumVCs: 2,
			Faults: fault.Options{Seed: 41, LinkDowns: 2, Corruptions: 2, Stalls: 1, Window: 30_000}},
		{Name: "adaptive-storm", Topo: "torus8x8", Route: "adaptive", MulticastProb: 0.2,
			Faults: fault.Options{Seed: 43, LinkDowns: 2, Corruptions: 3, Stalls: 2, Window: 30_000}},
	}
}

// DefaultStormMatrix is the storm matrix exercised by tests and
// `mcbench`-adjacent tooling: both reference fabrics under storms of
// varying severity, with and without healing.
func DefaultStormMatrix() []StormSpec {
	return []StormSpec{
		{Name: "torus-storm", Topo: "torus8x8",
			Faults: fault.Options{Seed: 42, LinkDowns: 3, SwitchDowns: 1, Corruptions: 4, Stalls: 2, Window: 30_000}},
		{Name: "torus-healing", Topo: "torus8x8",
			Faults: fault.Options{Seed: 1234, LinkDowns: 3, SwitchDowns: 1, Corruptions: 2, Stalls: 1, Window: 30_000, Heal: 20_000}},
		{Name: "shufflenet-storm", Topo: "shufflenet24",
			Faults: fault.Options{Seed: 7, LinkDowns: 2, SwitchDowns: 1, Corruptions: 4, Stalls: 2, Window: 30_000}},
		{Name: "shufflenet-light", Topo: "shufflenet24",
			Faults: fault.Options{Seed: 11, LinkDowns: 1, SwitchDowns: 1, Corruptions: 1, Stalls: 1, Window: 30_000}},
	}
}
