package faulttest

import (
	"testing"

	"wormlan/internal/fault"
)

// detectStormSpec is the reference hello-mode chaos scenario: the torus
// storm from the default matrix with in-band detection in the recovery
// loop.
func detectStormSpec() StormSpec {
	return StormSpec{
		Name: "torus-storm-hello",
		Topo: "torus8x8",
		Faults: fault.Options{
			Seed: 42, LinkDowns: 3, SwitchDowns: 1, Corruptions: 4, Stalls: 2,
			Window: 30_000,
		},
		Detect: "hello",
	}
}

// TestDetectionStormDeterministic runs the reference hello storm twice and
// requires byte-identical outcomes: the detector, the hello wire engine,
// and the detection-driven recovery pipeline must all be deterministic.
func TestDetectionStormDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full detection storm in -short mode")
	}
	o1, err := RunStorm(detectStormSpec())
	if err != nil {
		t.Fatal(err)
	}
	o2, err := RunStorm(detectStormSpec())
	if err != nil {
		t.Fatal(err)
	}
	if o1 != o2 {
		t.Fatalf("detection storm not deterministic:\nrun1: %+v\nrun2: %+v", o1, o2)
	}
	d := o1.Detection
	if d.Liveness.PeerDowns == 0 || d.Remaps == 0 || d.DetectToReroute.Count == 0 {
		t.Fatalf("detection never drove recovery: %+v", d)
	}
	if d.FaultToDetect.Count == 0 {
		t.Fatalf("no true failure was detected: %+v", d)
	}
}

// TestDetectionStormMatrix runs the published detection matrix (the torus
// subset under -short, so the -race CI job stays fast) and checks every
// storm survives with detection in the loop.
func TestDetectionStormMatrix(t *testing.T) {
	specs := DetectionStormMatrix()
	if testing.Short() {
		torus := specs[:0]
		for _, s := range specs {
			if s.Topo == "torus8x8" {
				torus = append(torus, s)
			}
		}
		specs = torus
	}
	for _, spec := range specs {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			o, err := RunStorm(spec)
			if err != nil {
				t.Fatal(err)
			}
			if o.Detection.Liveness.PeerDowns == 0 {
				t.Fatalf("no down verdicts: %+v", o.Detection)
			}
		})
	}
}

// TestCongestionFalsePositivesPinned pins the congestion-confusion rate of
// the default detector: a fault-free fabric under heavy load starves
// hellos until links are declared dead.  Every down verdict here is a
// false positive by construction.  The exact counts are part of the
// protocol's measured behaviour — a change in flap damping, hello
// scheduling, or STOP/GO interaction moves them and must be reviewed, not
// absorbed.
func TestCongestionFalsePositivesPinned(t *testing.T) {
	if testing.Short() {
		t.Skip("congestion pin in -short mode")
	}
	// Load 0.05 is above the hello-starvation threshold for this fabric but
	// below the regime where repeated mid-flight remaps wedge the torus.
	spec := StormSpec{
		Name:        "torus-congestion-only",
		Topo:        "torus8x8",
		Faults:      fault.Options{Seed: 13, Window: 10_000},
		OfferedLoad: 0.05,
		Detect:      "hello",
	}
	o, err := RunStorm(spec)
	if err != nil {
		t.Fatal(err)
	}
	d := o.Detection
	if o.Inject.LinkDowns != 0 || o.Inject.SwitchDowns != 0 {
		t.Fatalf("congestion-only run injected faults: %+v", o.Inject)
	}
	// No fault ever happens, so every down verdict is a false positive and
	// no true detection latency is recorded.
	if d.Liveness.PeerDowns != d.Liveness.FalsePositives {
		t.Fatalf("down verdicts %d != false positives %d in fault-free run",
			d.Liveness.PeerDowns, d.Liveness.FalsePositives)
	}
	if d.FaultToDetect.Count != 0 {
		t.Fatalf("true-failure detections in a fault-free run: %+v", d.FaultToDetect)
	}
	const (
		wantFalsePositives = 391
		wantFlaps          = 130
	)
	if d.Liveness.FalsePositives != wantFalsePositives || d.Liveness.Flaps != wantFlaps {
		t.Fatalf("congestion false-positive pin moved: got fp=%d flaps=%d, want fp=%d flaps=%d\nfull stats: %+v",
			d.Liveness.FalsePositives, d.Liveness.Flaps, wantFalsePositives, wantFlaps, d.Liveness)
	}
}
