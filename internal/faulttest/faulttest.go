// Package faulttest wires a full stack (distributed mapper, up*/down*
// routing, byte-level fabric, host adapters) together with a fault
// injector, so chaos tests can run a deterministic failure schedule
// against live traffic and then check the system-wide invariants:
// conservation of worms, route validity after recovery, absence of
// deadlock, and no leaked held channels.
package faulttest

import (
	"testing"

	"wormlan/internal/adapter"
	"wormlan/internal/des"
	"wormlan/internal/fault"
	"wormlan/internal/mapper"
	"wormlan/internal/multicast"
	"wormlan/internal/network"
	"wormlan/internal/topology"
	"wormlan/internal/updown"
)

// Bench is one fully wired LAN plus its fault injector.
type Bench struct {
	TB  testing.TB
	K   *des.Kernel
	G   *topology.Graph
	F   *network.Fabric
	Sys *adapter.System
	Inj *fault.Injector

	// UD/Tbl track the routing currently installed (replaced on every
	// successful remap).
	UD  *updown.Routing
	Tbl *updown.Table

	// Delivery observations.
	UniDelivered int64
	McDelivered  map[int64]int // transfer ID -> copies delivered
}

// New builds the stack over g and schedules plan against it.  The injector
// is wired so that every topology change re-runs the mapper and installs
// the recomputed routing into both the fabric and the adapter layer.
func New(tb testing.TB, g *topology.Graph, acfg adapter.Config, plan *fault.Plan, icfg fault.InjectorConfig) *Bench {
	tb.Helper()
	b := &Bench{TB: tb, K: des.NewKernel(), G: g, McDelivered: map[int64]int{}}

	m, err := mapper.Run(g, nil)
	if err != nil {
		tb.Fatal(err)
	}
	b.UD, err = updown.New(g, m.Root)
	if err != nil {
		tb.Fatal(err)
	}
	b.Tbl, err = b.UD.NewTable(false)
	if err != nil {
		tb.Fatal(err)
	}
	b.F, err = network.New(b.K, g, b.UD, network.Config{})
	if err != nil {
		tb.Fatal(err)
	}
	b.Sys, err = adapter.NewSystem(b.K, b.F, b.Tbl, acfg, 77)
	if err != nil {
		tb.Fatal(err)
	}
	b.Sys.OnAppDeliver = func(d adapter.AppDelivery) {
		if d.Transfer != nil {
			b.McDelivered[d.Transfer.ID]++
		} else {
			b.UniDelivered++
		}
	}
	if icfg.OnRemap == nil {
		icfg.OnRemap = func(ud *updown.Routing, tbl *updown.Table) {
			b.UD, b.Tbl = ud, tbl
			b.Sys.Reroute(tbl, ud.Reachable)
		}
	}
	b.Inj = fault.NewInjector(b.K, b.F, plan, icfg)
	return b
}

// AddGroup registers a multicast group over the given members.
func (b *Bench) AddGroup(id int, members []topology.NodeID) *multicast.Group {
	b.TB.Helper()
	grp, err := multicast.NewGroup(id, members)
	if err != nil {
		b.TB.Fatal(err)
	}
	if _, err := b.Sys.AddGroup(grp); err != nil {
		b.TB.Fatal(err)
	}
	return grp
}

// Run drives the kernel and fails the test if the simulation does not
// drain before the deadline: with capped retries every protocol activity
// is finite, so hitting the deadline means the fabric (or a retry loop)
// wedged.
func (b *Bench) Run(deadline des.Time) {
	b.TB.Helper()
	if err := b.K.Run(deadline); err != nil {
		b.TB.Fatalf("kernel error: %v", err)
	}
	if n := b.K.Pending(); n != 0 {
		b.TB.Fatalf("simulation did not drain by t=%d: %d events pending (deadlock?)\n%s",
			deadline, n, b.F.StallReport())
	}
}

// CheckConservation asserts the fabric-level worm conservation law: every
// injected worm was either delivered or counted as dropped.  (Valid for
// adapter-level protocols, where every fabric worm is a unicast.)
func (b *Bench) CheckConservation() {
	b.TB.Helper()
	ctr := b.F.Counters()
	if ctr.Injected != ctr.Delivered+ctr.WormsDropped {
		b.TB.Fatalf("conservation violated: injected %d != delivered %d + dropped %d",
			ctr.Injected, ctr.Delivered, ctr.WormsDropped)
	}
}

// CheckNoHeldChannels asserts that no switch output is still bound to a
// worm — the wormhole equivalent of a leaked lock.
func (b *Bench) CheckNoHeldChannels() {
	b.TB.Helper()
	if held := b.F.HeldChannels(); len(held) != 0 {
		for w, chans := range held {
			b.TB.Errorf("worm %d still holds %v", w.ID, chans)
		}
		b.TB.Fatalf("%d worms hold channels after drain\n%s", len(held), b.F.StallReport())
	}
}

// CheckRoutes verifies, for every ordered pair of reachable hosts, that
// the surviving route table has a route and that it is valid over the
// surviving subgraph (crosses no failed link, respects up*/down*).
func (b *Bench) CheckRoutes() {
	b.TB.Helper()
	hosts := b.G.Hosts()
	checked := 0
	for _, src := range hosts {
		for _, dst := range hosts {
			if src == dst || !b.UD.Reachable(src) || !b.UD.Reachable(dst) {
				continue
			}
			rt := b.Tbl.Lookup(src, dst)
			if len(rt.Ports) == 0 {
				b.TB.Fatalf("no surviving route %d -> %d", src, dst)
			}
			if err := b.UD.VerifyRoute(rt); err != nil {
				b.TB.Fatalf("route %d -> %d invalid after recovery: %v", src, dst, err)
			}
			checked++
		}
	}
	if checked == 0 {
		b.TB.Fatal("no reachable host pairs survived — nothing verified")
	}
}

// Outcome is a comparable summary of one chaos run, for determinism
// checks (two runs with the same seed must produce identical outcomes).
type Outcome struct {
	Fabric  network.Counters
	Adapter adapter.Stats
	Inject  fault.Counters
	Epoch   int64
	Uni     int64
	McCount int
	McSum   int
}

// Outcome snapshots the run's observable state.
func (b *Bench) Outcome() Outcome {
	o := Outcome{
		Fabric:  b.F.Counters(),
		Adapter: b.Sys.Stats(),
		Inject:  b.Inj.Counters(),
		Epoch:   b.F.TopologyEpoch(),
		Uni:     b.UniDelivered,
		McCount: len(b.McDelivered),
	}
	for _, c := range b.McDelivered {
		o.McSum += c
	}
	return o
}
