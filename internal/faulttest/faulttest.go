// Package faulttest wires a full stack (distributed mapper, up*/down*
// routing, byte-level fabric, host adapters) together with a fault
// injector, so chaos tests can run a deterministic failure schedule
// against live traffic and then check the system-wide invariants:
// conservation of worms, route validity after recovery, absence of
// deadlock, and no leaked held channels.
//
// The invariant checks come in two flavours: error-returning (ConservationErr
// and friends, usable from non-test code such as the storm matrix consumed
// by the sweep engine) and testing.TB wrappers that Fatal on violation.
package faulttest

import (
	"fmt"
	"sort"
	"testing"

	"wormlan/internal/adapter"
	"wormlan/internal/des"
	"wormlan/internal/fault"
	"wormlan/internal/flit"
	"wormlan/internal/mapper"
	"wormlan/internal/multicast"
	"wormlan/internal/network"
	"wormlan/internal/topology"
	"wormlan/internal/updown"
)

// Bench is one fully wired LAN plus its fault injector.
type Bench struct {
	// TB is set only by New; the error-returning methods never touch it.
	TB  testing.TB
	K   *des.Kernel
	G   *topology.Graph
	F   *network.Fabric
	Sys *adapter.System
	Inj *fault.Injector

	// UD/Tbl track the routing currently installed (replaced on every
	// successful remap).
	UD  *updown.Routing
	Tbl *updown.Table

	// Rebuild, when set before the kernel runs, recomputes the routing
	// table after each remap from the fresh up*/down* labelling (whose
	// failure set reflects the detector's view).  Alternative schemes use
	// it to reroute over the survivors; nil keeps the remap's own up/down
	// table.  A rebuild error is a construction-level bug (bad geometry),
	// pre-excluded by the initial build, so it panics.
	Rebuild func(b *Bench, ud *updown.Routing, tbl *updown.Table) (*updown.Table, error)

	// Delivery observations.
	UniDelivered int64
	McDelivered  map[int64]int // transfer ID -> copies delivered
}

// NewBench builds the stack over g and schedules plan against it.  The
// injector is wired so that every topology change re-runs the mapper and
// installs the recomputed routing into both the fabric and the adapter
// layer.  Unlike New it needs no testing.TB, so sweep grids can build
// benches from worker goroutines.
func NewBench(g *topology.Graph, acfg adapter.Config, plan *fault.Plan, icfg fault.InjectorConfig) (*Bench, error) {
	return NewBenchRouted(g, acfg, plan, icfg, network.Config{}, nil)
}

// NewBenchRouted is NewBench with a custom fabric config and routing
// scheme: mkTable, when non-nil, builds the initial table from the fresh
// up*/down* labelling (up/down's own table is used otherwise).  Set
// b.Rebuild before running to reroute the scheme after remaps.
func NewBenchRouted(g *topology.Graph, acfg adapter.Config, plan *fault.Plan, icfg fault.InjectorConfig,
	ncfg network.Config, mkTable func(ud *updown.Routing) (*updown.Table, error)) (*Bench, error) {
	b := &Bench{K: des.NewKernel(), G: g, McDelivered: map[int64]int{}}

	m, err := mapper.Run(g, nil)
	if err != nil {
		return nil, err
	}
	b.UD, err = updown.New(g, m.Root)
	if err != nil {
		return nil, err
	}
	if mkTable != nil {
		b.Tbl, err = mkTable(b.UD)
	} else {
		b.Tbl, err = b.UD.NewTable(false)
	}
	if err != nil {
		return nil, err
	}
	b.F, err = network.New(b.K, g, b.UD, ncfg)
	if err != nil {
		return nil, err
	}
	b.Sys, err = adapter.NewSystem(b.K, b.F, b.Tbl, acfg, 77)
	if err != nil {
		return nil, err
	}
	b.Sys.OnAppDeliver = func(d adapter.AppDelivery) {
		if d.Transfer != nil {
			b.McDelivered[d.Transfer.ID]++
		} else {
			b.UniDelivered++
		}
	}
	if icfg.OnRemap == nil {
		icfg.OnRemap = func(ud *updown.Routing, tbl *updown.Table) {
			ntbl := tbl
			if b.Rebuild != nil {
				var rerr error
				ntbl, rerr = b.Rebuild(b, ud, tbl)
				if rerr != nil {
					panic(fmt.Sprintf("faulttest: scheme rebuild after remap: %v", rerr))
				}
			}
			b.UD, b.Tbl = ud, ntbl
			b.Sys.Reroute(ntbl, ud.Reachable)
		}
	}
	b.Inj, err = fault.NewInjector(b.K, b.F, plan, icfg)
	if err != nil {
		return nil, err
	}
	return b, nil
}

// New is NewBench for tests: construction errors Fatal tb.
func New(tb testing.TB, g *topology.Graph, acfg adapter.Config, plan *fault.Plan, icfg fault.InjectorConfig) *Bench {
	tb.Helper()
	b, err := NewBench(g, acfg, plan, icfg)
	if err != nil {
		tb.Fatal(err)
	}
	b.TB = tb
	return b
}

// AddGroupErr registers a multicast group over the given members.
func (b *Bench) AddGroupErr(id int, members []topology.NodeID) (*multicast.Group, error) {
	grp, err := multicast.NewGroup(id, members)
	if err != nil {
		return nil, err
	}
	if _, err := b.Sys.AddGroup(grp); err != nil {
		return nil, err
	}
	return grp, nil
}

// AddGroup registers a multicast group, Fataling on error.
func (b *Bench) AddGroup(id int, members []topology.NodeID) *multicast.Group {
	b.TB.Helper()
	grp, err := b.AddGroupErr(id, members)
	if err != nil {
		b.TB.Fatal(err)
	}
	return grp
}

// RunErr drives the kernel and reports an error if the simulation does
// not drain before the deadline: with capped retries every protocol
// activity is finite, so hitting the deadline means the fabric (or a
// retry loop) wedged.
func (b *Bench) RunErr(deadline des.Time) error {
	if err := b.K.Run(deadline); err != nil {
		return fmt.Errorf("kernel error: %w", err)
	}
	if n := b.K.Pending(); n != 0 {
		return fmt.Errorf("simulation did not drain by t=%d: %d events pending (deadlock?)\n%s",
			deadline, n, b.F.StallReport())
	}
	return nil
}

// Run drives the kernel, Fataling if the simulation does not drain.
func (b *Bench) Run(deadline des.Time) {
	b.TB.Helper()
	if err := b.RunErr(deadline); err != nil {
		b.TB.Fatal(err)
	}
}

// ConservationErr checks the fabric-level worm conservation law: every
// injected worm was either delivered or counted as dropped.  (Valid for
// adapter-level protocols, where every fabric worm is a unicast.)
func (b *Bench) ConservationErr() error {
	ctr := b.F.Counters()
	if ctr.Injected != ctr.Delivered+ctr.WormsDropped {
		return fmt.Errorf("conservation violated: injected %d != delivered %d + dropped %d",
			ctr.Injected, ctr.Delivered, ctr.WormsDropped)
	}
	return nil
}

// CheckConservation asserts the conservation law, Fataling on violation.
func (b *Bench) CheckConservation() {
	b.TB.Helper()
	if err := b.ConservationErr(); err != nil {
		b.TB.Fatal(err)
	}
}

// HeldChannelsErr checks that no switch output is still bound to a worm —
// the wormhole equivalent of a leaked lock.  The report lists worms in ID
// order: the message is asserted byte-for-byte by determinism replays, so
// its wording must not depend on map iteration order.
func (b *Bench) HeldChannelsErr() error {
	held := b.F.HeldChannels()
	if len(held) == 0 {
		return nil
	}
	worms := make([]*flit.Worm, 0, len(held))
	for w := range held {
		worms = append(worms, w)
	}
	sort.Slice(worms, func(i, j int) bool { return worms[i].ID < worms[j].ID })
	msg := ""
	for _, w := range worms {
		msg += fmt.Sprintf("worm %d still holds %v; ", w.ID, held[w])
	}
	return fmt.Errorf("%d worms hold channels after drain: %s\n%s",
		len(held), msg, b.F.StallReport())
}

// CheckNoHeldChannels asserts no held channels, Fataling on violation.
func (b *Bench) CheckNoHeldChannels() {
	b.TB.Helper()
	if err := b.HeldChannelsErr(); err != nil {
		b.TB.Fatal(err)
	}
}

// RoutesErr verifies, for every ordered pair of reachable hosts, that the
// surviving route table has a route and that it is valid over the
// surviving subgraph (crosses no failed link, respects up*/down*).
func (b *Bench) RoutesErr() error {
	hosts := b.G.Hosts()
	checked := 0
	for _, src := range hosts {
		for _, dst := range hosts {
			if src == dst || !b.UD.Reachable(src) || !b.UD.Reachable(dst) {
				continue
			}
			rt := b.Tbl.Lookup(src, dst)
			if len(rt.Ports) == 0 {
				return fmt.Errorf("no surviving route %d -> %d", src, dst)
			}
			if err := b.UD.VerifyRoute(rt); err != nil {
				return fmt.Errorf("route %d -> %d invalid after recovery: %w", src, dst, err)
			}
			checked++
		}
	}
	if checked == 0 {
		return fmt.Errorf("no reachable host pairs survived — nothing verified")
	}
	return nil
}

// CheckRoutes asserts route validity, Fataling on violation.
func (b *Bench) CheckRoutes() {
	b.TB.Helper()
	if err := b.RoutesErr(); err != nil {
		b.TB.Fatal(err)
	}
}

// Outcome is a comparable summary of one chaos run, for determinism
// checks (two runs with the same seed must produce identical outcomes).
type Outcome struct {
	Fabric  network.Counters
	Adapter adapter.Stats
	Inject  fault.Counters
	// Detection is the hello mode's summary (zero value under the oracle).
	// Histograms are fixed arrays, so the whole struct stays comparable.
	Detection fault.DetectionStats
	Epoch     int64
	Uni       int64
	McCount   int
	McSum     int
}

// Outcome snapshots the run's observable state.
func (b *Bench) Outcome() Outcome {
	o := Outcome{
		Fabric:  b.F.Counters(),
		Adapter: b.Sys.Stats(),
		Inject:  b.Inj.Counters(),
		Epoch:   b.F.TopologyEpoch(),
		Uni:     b.UniDelivered,
		McCount: len(b.McDelivered),
	}
	if d := b.Inj.Detection(); d != nil {
		o.Detection = *d
	}
	//wormlint:ordered integer sum over all values; addition is commutative
	for _, c := range b.McDelivered {
		o.McSum += c
	}
	return o
}
