package faulttest

import (
	"testing"

	"wormlan/internal/adapter"
	"wormlan/internal/fault"
	"wormlan/internal/topology"
)

// heldChannelsReport freezes a line network with several worms in flight
// and returns the held-channels diagnostic.  Before HeldChannelsErr
// sorted its report by worm ID, the text followed Go's randomized map
// iteration order, so two identical runs could disagree byte-for-byte.
func heldChannelsReport(t *testing.T) string {
	t.Helper()
	b := New(t, topology.Line(4, 1), adapter.Config{PlainForwarding: true},
		&fault.Plan{}, fault.InjectorConfig{})
	hosts := b.G.Hosts()
	send := func(src, dst topology.NodeID) {
		t.Helper()
		if err := b.Sys.SendUnicast(src, dst, 800); err != nil {
			t.Fatal(err)
		}
	}
	send(hosts[0], hosts[3])
	send(hosts[3], hosts[0])
	send(hosts[1], hosts[2])
	// Stop long before the 800-byte worms can drain, so several of them
	// are frozen holding switch output channels.
	b.K.Run(60)
	if got := len(b.F.HeldChannels()); got < 2 {
		t.Fatalf("scenario needs >= 2 in-flight worms to exercise report ordering, got %d", got)
	}
	err := b.HeldChannelsErr()
	if err == nil {
		t.Fatal("expected a held-channels error mid-flight")
	}
	return err.Error()
}

// TestHeldChannelsReportDeterministic replays the frozen scenario and
// byte-compares the diagnostic across runs: each call re-ranges the
// held-channels map from scratch, so any dependence on map iteration
// order shows up as diverging report text.
func TestHeldChannelsReportDeterministic(t *testing.T) {
	first := heldChannelsReport(t)
	for i := 1; i < 5; i++ {
		if got := heldChannelsReport(t); got != first {
			t.Fatalf("replay %d diverged:\n first: %s\n   got: %s", i, first, got)
		}
	}
}
