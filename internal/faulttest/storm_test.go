package faulttest

// Storm-matrix tests: the chaos scenarios expressed as a sweep grid and
// fanned out across workers.  This is the concurrency proving ground for
// the whole repo — each worker runs a full DES kernel, mapper, fabric and
// adapter stack, so `go test -race ./internal/faulttest/` sweeps the
// entire simulator for shared mutable state.

import (
	"context"
	"reflect"
	"testing"

	"wormlan/internal/fault"
	"wormlan/internal/sweep"
)

// TestStormMatrixParallelEquivalence runs the default storm matrix
// sequentially and with 4 workers: the outcome rows must be identical, so
// parallel chaos sweeps can never silently change what a storm observes.
func TestStormMatrixParallelEquivalence(t *testing.T) {
	specs := DefaultStormMatrix()
	if testing.Short() {
		specs = specs[:2]
	}
	seq, err := sweep.Run(context.Background(), &sweep.Engine{Workers: 1}, StormGrid(specs, 1996))
	if err != nil {
		t.Fatal(err)
	}
	par, err := sweep.Run(context.Background(), &sweep.Engine{Workers: 4}, StormGrid(specs, 1996))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("storm matrix not worker-count invariant:\n seq=%+v\n par=%+v", seq, par)
	}
	for i, o := range seq {
		if o.Fabric.Injected == 0 || o.Uni == 0 {
			t.Errorf("storm %s saw no traffic: %+v", specs[i].Name, o)
		}
	}
}

// TestStormDerivedSeeds: specs with a zero fault seed draw their schedule
// from the sweep-derived per-point seed — distinct specs must get distinct
// storms, and the same matrix must reproduce exactly.
func TestStormDerivedSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: covered by TestStormMatrixParallelEquivalence")
	}
	specs := []StormSpec{
		{Name: "a", Topo: "torus8x8",
			Faults: fault.Options{LinkDowns: 2, SwitchDowns: 1, Corruptions: 2, Stalls: 1, Window: 30_000}},
		{Name: "b", Topo: "torus8x8",
			Faults: fault.Options{LinkDowns: 2, SwitchDowns: 1, Corruptions: 2, Stalls: 1, Window: 30_000}},
	}
	run := func() []Outcome {
		t.Helper()
		out, err := sweep.Run(context.Background(), &sweep.Engine{Workers: 2}, StormGrid(specs, 7))
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	first := run()
	if first[0] == first[1] {
		t.Fatal("distinct specs derived identical storms")
	}
	if second := run(); !reflect.DeepEqual(first, second) {
		t.Fatal("derived-seed storms not reproducible")
	}
}

// TestVCStormMatrix: the alternative-routing storms (dateline torus under
// both arbiters, direct-routed full mesh) drain with every invariant
// runVCStorm checks — conservation, no held channels, schedule actually
// hit — and rerun bit-identically, including across worker counts.
func TestVCStormMatrix(t *testing.T) {
	specs := VCStormMatrix()
	if testing.Short() {
		specs = specs[:2]
	}
	seq, err := sweep.Run(context.Background(), &sweep.Engine{Workers: 1}, StormGrid(specs, 1996))
	if err != nil {
		t.Fatal(err)
	}
	par, err := sweep.Run(context.Background(), &sweep.Engine{Workers: 3}, StormGrid(specs, 1996))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("vc storm matrix not worker-count invariant:\n seq=%+v\n par=%+v", seq, par)
	}
	for i, o := range seq {
		if o.Fabric.Injected == 0 || o.Uni == 0 {
			t.Errorf("vc storm %s saw no traffic: %+v", specs[i].Name, o)
		}
		if o.Inject.Corruptions == 0 {
			t.Errorf("vc storm %s corrupted nothing: %+v", specs[i].Name, o.Inject)
		}
	}
}

// TestVCStormLinkKillRecovers: a vcmin spec that schedules link kills now
// runs the full recovery path — the remap prunes the minimal-torus table
// over the survivors and every invariant still holds.
func TestVCStormLinkKillRecovers(t *testing.T) {
	o, err := RunStorm(StormSpec{
		Name: "vcmin-kill", Topo: "torus8x8", Route: "vcmin", NumVCs: 2,
		Faults: fault.Options{Seed: 3, LinkDowns: 1, Window: 30_000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if o.Inject.LinkDowns < 1 || o.Inject.Remaps < 1 {
		t.Fatalf("link kill did not drive a remap: %+v", o.Inject)
	}
}
