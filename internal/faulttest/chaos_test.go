package faulttest

// Chaos tests: seeded random failure schedules (link kills, switch
// crashes, flit corruption, host stalls) against live reliable traffic on
// the paper's two reference fabrics.  After the storm the system must
// have recomputed valid up*/down* routes over the survivors, conserved
// every worm (delivered or counted dropped), drained to quiescence with
// no held channels, and behaved identically across reruns of the same
// seed.

import (
	"testing"

	"wormlan/internal/adapter"
	"wormlan/internal/des"
	"wormlan/internal/fault"
	"wormlan/internal/topology"
	"wormlan/internal/traffic"
)

// chaosConfig keeps retries finite and timeouts short so give-ups resolve
// well before the drain deadline.
func chaosConfig() adapter.Config {
	return adapter.Config{
		Mode:           adapter.ModeCircuit,
		CutThrough:     true,
		MaxRetries:     3,
		AckTimeoutBase: 16384,
		NackBackoff:    2048,
	}
}

// runChaos executes one full chaos scenario and returns its outcome.
func runChaos(t *testing.T, build func() *topology.Graph, opts fault.Options) Outcome {
	t.Helper()
	g := build()
	plan := fault.RandomPlan(g, opts)
	b := New(t, g, chaosConfig(), plan, fault.InjectorConfig{})

	hosts := g.Hosts()
	grpA := b.AddGroup(0, hosts[:len(hosts)/2])
	grpB := b.AddGroup(1, hosts[len(hosts)/3:])
	groupsOf := map[topology.NodeID][]int{}
	for _, h := range grpA.Members {
		groupsOf[h] = append(groupsOf[h], 0)
	}
	for _, h := range grpB.Members {
		groupsOf[h] = append(groupsOf[h], 1)
	}
	gen, err := traffic.New(b.K, traffic.Config{
		OfferedLoad:   0.02,
		MeanWorm:      300,
		MulticastProb: 0.2,
		Until:         des.Time(opts.Window) * 2,
	}, hosts, groupsOf, b.Sys, 5)
	if err != nil {
		t.Fatal(err)
	}
	gen.Start()

	b.Run(des.Time(opts.Window) * 40)

	// The schedule must actually have hit the fabric mid-run.
	ic := b.Inj.Counters()
	if ic.LinkDowns < 1 {
		t.Fatalf("chaos plan killed no links: %+v", ic)
	}
	if ic.SwitchDowns < 1 {
		t.Fatalf("chaos plan killed no switches: %+v", ic)
	}
	if ic.Remaps < 1 {
		t.Fatalf("no remap completed: %+v", ic)
	}
	worms, _, _ := gen.Generated()
	if worms == 0 {
		t.Fatal("no traffic generated")
	}
	if b.UniDelivered == 0 {
		t.Fatal("no unicast deliveries survived the storm")
	}

	b.CheckConservation()
	b.CheckNoHeldChannels()
	b.CheckRoutes()
	return b.Outcome()
}

// assertDeterministic reruns the scenario and compares outcomes.
func assertDeterministic(t *testing.T, build func() *topology.Graph, opts fault.Options) {
	t.Helper()
	first := runChaos(t, build, opts)
	second := runChaos(t, build, opts)
	if first != second {
		t.Fatalf("chaos run not deterministic:\n first=%+v\nsecond=%+v", first, second)
	}
	fc := first.Fabric
	if fc.WormsDropped == 0 {
		t.Fatalf("storm dropped no worms — faults never touched traffic: %+v", fc)
	}
	// Bounded loss: the storm may cost worms, but most traffic survives.
	if fc.Delivered <= fc.WormsDropped {
		t.Fatalf("unbounded loss: delivered %d <= dropped %d", fc.Delivered, fc.WormsDropped)
	}
}

func TestChaosTorus(t *testing.T) {
	assertDeterministic(t,
		func() *topology.Graph { return topology.Torus(8, 8, 1, 1) },
		fault.Options{
			Seed:        42,
			LinkDowns:   3,
			SwitchDowns: 1,
			Corruptions: 4,
			Stalls:      2,
			Window:      30_000,
		})
}

func TestChaosShufflenet(t *testing.T) {
	assertDeterministic(t,
		func() *topology.Graph { return topology.BidirShufflenet(2, 3, 1000) },
		fault.Options{
			Seed:        7,
			LinkDowns:   2,
			SwitchDowns: 1,
			Corruptions: 4,
			Stalls:      2,
			Window:      30_000,
		})
}

func TestChaosTorusWithHealing(t *testing.T) {
	// Downs heal after a delay: the injector must restore links and
	// switches, trigger re-maps back toward the full topology, and the
	// adapter layer must re-admit healed group members.
	assertDeterministic(t,
		func() *topology.Graph { return topology.Torus(8, 8, 1, 1) },
		fault.Options{
			Seed:        1234,
			LinkDowns:   3,
			SwitchDowns: 1,
			Corruptions: 2,
			Stalls:      1,
			Window:      30_000,
			Heal:        20_000,
		})
}

// TestChaosTargeted pins an explicit schedule: kill a known cable and a
// known switch, then verify the counters attribute the damage.
func TestChaosTargeted(t *testing.T) {
	g := topology.Torus(8, 8, 1, 1)
	sw := g.Switches()
	victim := sw[len(sw)/2]
	plan := (&fault.Plan{}).
		LinkDown(5_000, sw[3], 0).
		SwitchDown(9_000, victim)
	b := New(t, g, chaosConfig(), plan, fault.InjectorConfig{})

	hosts := g.Hosts()
	gen, err := traffic.New(b.K, traffic.Config{
		OfferedLoad: 0.02,
		MeanWorm:    300,
		Until:       40_000,
	}, hosts, nil, b.Sys, 9)
	if err != nil {
		t.Fatal(err)
	}
	gen.Start()
	b.Run(1_500_000)

	if e := b.F.TopologyEpoch(); e != 2 {
		t.Fatalf("epoch %d after two topology changes", e)
	}
	fail := b.F.Failures()
	if !fail.Switches[victim] {
		t.Fatalf("switch %d not recorded as failed", victim)
	}
	ic := b.Inj.Counters()
	if ic.LinkDowns != 1 || ic.SwitchDowns != 1 || ic.Remaps < 1 {
		t.Fatalf("injector counters: %+v", ic)
	}
	b.CheckConservation()
	b.CheckNoHeldChannels()
	b.CheckRoutes()

	// The dead switch's hosts are unreachable, everyone else routable.
	for _, h := range hosts {
		att := g.Node(h).Ports[0].Peer
		if att == victim && b.UD.Reachable(h) {
			t.Fatalf("host %d on dead switch %d still reachable", h, victim)
		}
	}
}
