package faulttest

// Chaos tests: seeded random failure schedules (link kills, switch
// crashes, flit corruption, host stalls) against live reliable traffic on
// the paper's two reference fabrics.  After the storm the system must
// have recomputed valid up*/down* routes over the survivors, conserved
// every worm (delivered or counted dropped), drained to quiescence with
// no held channels, and behaved identically across reruns of the same
// seed.

import (
	"testing"

	"wormlan/internal/fault"
	"wormlan/internal/topology"
	"wormlan/internal/traffic"
)

// assertDeterministic runs the spec twice and compares outcomes, then
// checks that the storm actually cost worms without unbounded loss.
func assertDeterministic(t *testing.T, spec StormSpec) Outcome {
	t.Helper()
	first, err := RunStorm(spec)
	if err != nil {
		t.Fatal(err)
	}
	second, err := RunStorm(spec)
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Fatalf("chaos run not deterministic:\n first=%+v\nsecond=%+v", first, second)
	}
	fc := first.Fabric
	if fc.WormsDropped == 0 {
		t.Fatalf("storm dropped no worms — faults never touched traffic: %+v", fc)
	}
	// Bounded loss: the storm may cost worms, but most traffic survives.
	if fc.Delivered <= fc.WormsDropped {
		t.Fatalf("unbounded loss: delivered %d <= dropped %d", fc.Delivered, fc.WormsDropped)
	}
	return first
}

func TestChaosTorus(t *testing.T) {
	assertDeterministic(t, StormSpec{
		Topo: "torus8x8",
		Faults: fault.Options{
			Seed:        42,
			LinkDowns:   3,
			SwitchDowns: 1,
			Corruptions: 4,
			Stalls:      2,
			Window:      30_000,
		}})
}

func TestChaosShufflenet(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: torus chaos and the storm matrix cover the invariants")
	}
	assertDeterministic(t, StormSpec{
		Topo: "shufflenet24",
		Faults: fault.Options{
			Seed:        7,
			LinkDowns:   2,
			SwitchDowns: 1,
			Corruptions: 4,
			Stalls:      2,
			Window:      30_000,
		}})
}

func TestChaosTorusWithHealing(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: the storm matrix includes a healing spec")
	}
	// Downs heal after a delay: the injector must restore links and
	// switches, trigger re-maps back toward the full topology, and the
	// adapter layer must re-admit healed group members.
	assertDeterministic(t, StormSpec{
		Topo: "torus8x8",
		Faults: fault.Options{
			Seed:        1234,
			LinkDowns:   3,
			SwitchDowns: 1,
			Corruptions: 2,
			Stalls:      1,
			Window:      30_000,
			Heal:        20_000,
		}})
}

// TestChaosAdaptive: the Duato-style adaptive scheme on the 8x8 torus
// survives a seeded corruption + link-kill storm — zero deadlocks (the
// drain check), conservation, a completed remap that reinstalled a
// surviving adaptive table, and bit-identical reruns.
func TestChaosAdaptive(t *testing.T) {
	o := assertDeterministic(t, StormSpec{
		Topo:  "torus8x8",
		Route: "adaptive",
		Faults: fault.Options{
			Seed:        99,
			LinkDowns:   2,
			Corruptions: 3,
			Stalls:      1,
			Window:      30_000,
		}})
	if o.Inject.LinkDowns < 1 || o.Inject.Remaps < 1 {
		t.Fatalf("storm killed no links or completed no remap: %+v", o.Inject)
	}
}

// TestChaosTargeted pins an explicit schedule: kill a known cable and a
// known switch, then verify the counters attribute the damage.
func TestChaosTargeted(t *testing.T) {
	g := topology.Torus(8, 8, 1, 1)
	sw := g.Switches()
	victim := sw[len(sw)/2]
	plan := (&fault.Plan{}).
		LinkDown(5_000, sw[3], 0).
		SwitchDown(9_000, victim)
	b := New(t, g, StormAdapterConfig(), plan, fault.InjectorConfig{})

	hosts := g.Hosts()
	gen, err := traffic.New(b.K, traffic.Config{
		OfferedLoad: 0.02,
		MeanWorm:    300,
		Until:       40_000,
	}, hosts, nil, b.Sys, 9)
	if err != nil {
		t.Fatal(err)
	}
	gen.Start()
	b.Run(1_500_000)

	if e := b.F.TopologyEpoch(); e != 2 {
		t.Fatalf("epoch %d after two topology changes", e)
	}
	fail := b.F.Failures()
	if !fail.Switches[victim] {
		t.Fatalf("switch %d not recorded as failed", victim)
	}
	ic := b.Inj.Counters()
	if ic.LinkDowns != 1 || ic.SwitchDowns != 1 || ic.Remaps < 1 {
		t.Fatalf("injector counters: %+v", ic)
	}
	b.CheckConservation()
	b.CheckNoHeldChannels()
	b.CheckRoutes()

	// The dead switch's hosts are unreachable, everyone else routable.
	for _, h := range hosts {
		att := g.Node(h).Ports[0].Peer
		if att == victim && b.UD.Reachable(h) {
			t.Fatalf("host %d on dead switch %d still reachable", h, victim)
		}
	}
}
