// Package traffic generates the workload of Section 7 of the paper: each
// host produces worms by a Poisson process with geometrically distributed
// lengths (mean 400 bytes); a configurable proportion of generated worms
// are multicast, each choosing uniformly among the groups its host belongs
// to; unicast worms pick a uniform random destination.
//
// "Offered load" follows the paper's definition: the output-link
// utilization per host due to generated (not forwarded) traffic, so the
// per-host generation rate is OfferedLoad / MeanWorm worms per byte-time.
package traffic

import (
	"fmt"

	"wormlan/internal/des"
	"wormlan/internal/rng"
	"wormlan/internal/topology"
)

// Sink consumes generated traffic (implemented by the adapter system in
// simulations and by test doubles in unit tests).
type Sink interface {
	SendUnicast(src, dst topology.NodeID, payload int) error
	SendMulticast(src topology.NodeID, group, payload int) error
}

// Config parameterizes the generator.
type Config struct {
	// OfferedLoad is the generated output-link utilization per host,
	// 0 < load < 1 (Figure 10 sweeps 0.04-0.12).
	OfferedLoad float64
	// MeanWorm is the mean worm length in bytes (the paper uses 400).
	MeanWorm int
	// MaxWorm caps individual draws (the 9 KB LANai limit minus header
	// headroom).  Default 8 KB.
	MaxWorm int
	// MulticastProb is the probability that a generated worm is a
	// multicast worm, for hosts that belong to at least one group.
	MulticastProb float64
	// Until stops generation at this simulation time (0: never stops —
	// callers must then bound the kernel run themselves).
	Until des.Time
}

// Generator drives per-host Poisson worm generation.
type Generator struct {
	K     *des.Kernel
	Cfg   Config
	Sink  Sink
	hosts []topology.NodeID
	// groupsOf maps a host to the groups it belongs to.
	groupsOf map[topology.NodeID][]int
	r        map[topology.NodeID]*rng.Source

	generated       int64
	generatedMC     int64
	generatedBytes  int64
	generationError error
}

// New builds a generator over the given hosts.  groupsOf lists each host's
// group memberships (hosts absent from the map generate only unicast).
func New(k *des.Kernel, cfg Config, hosts []topology.NodeID,
	groupsOf map[topology.NodeID][]int, sink Sink, seed uint64) (*Generator, error) {
	if cfg.OfferedLoad <= 0 || cfg.OfferedLoad >= 1 {
		return nil, fmt.Errorf("traffic: offered load %v out of (0,1)", cfg.OfferedLoad)
	}
	if cfg.MeanWorm <= 0 {
		return nil, fmt.Errorf("traffic: mean worm %d", cfg.MeanWorm)
	}
	if cfg.MaxWorm == 0 {
		cfg.MaxWorm = 8 * 1024
	}
	if cfg.MulticastProb < 0 || cfg.MulticastProb > 1 {
		return nil, fmt.Errorf("traffic: multicast probability %v", cfg.MulticastProb)
	}
	if len(hosts) < 2 {
		return nil, fmt.Errorf("traffic: need at least 2 hosts")
	}
	g := &Generator{
		K: k, Cfg: cfg, Sink: sink, hosts: hosts,
		groupsOf: groupsOf,
		r:        make(map[topology.NodeID]*rng.Source, len(hosts)),
	}
	for _, h := range hosts {
		// One independent stream per host: adding hosts or reordering
		// events does not perturb another host's draws.
		g.r[h] = rng.New(seed, uint64(h)+1)
	}
	return g, nil
}

// Start schedules the first arrival at every host.
func (g *Generator) Start() {
	for _, h := range g.hosts {
		g.scheduleNext(h)
	}
}

// Generated returns (worms, multicast worms, payload bytes) generated.
func (g *Generator) Generated() (worms, multicasts, bytes int64) {
	return g.generated, g.generatedMC, g.generatedBytes
}

// Err returns the first sink error, if any (generation stops on error).
func (g *Generator) Err() error { return g.generationError }

func (g *Generator) interarrival(h topology.NodeID) des.Time {
	mean := float64(g.Cfg.MeanWorm) / g.Cfg.OfferedLoad
	d := des.Time(g.r[h].Exp(mean))
	if d < 1 {
		d = 1
	}
	return d
}

func (g *Generator) scheduleNext(h topology.NodeID) {
	if g.generationError != nil {
		return
	}
	next := g.K.Now() + g.interarrival(h)
	if g.Cfg.Until > 0 && next > g.Cfg.Until {
		return
	}
	g.K.At(next, func() { g.arrive(h) })
}

func (g *Generator) arrive(h topology.NodeID) {
	r := g.r[h]
	payload := r.Geometric(float64(g.Cfg.MeanWorm))
	if payload > g.Cfg.MaxWorm {
		payload = g.Cfg.MaxWorm
	}
	groups := g.groupsOf[h]
	var err error
	if len(groups) > 0 && r.Float64() < g.Cfg.MulticastProb {
		grp := groups[r.Intn(len(groups))]
		g.generatedMC++
		err = g.Sink.SendMulticast(h, grp, payload)
	} else {
		dst := h
		for dst == h {
			dst = g.hosts[r.Intn(len(g.hosts))]
		}
		err = g.Sink.SendUnicast(h, dst, payload)
	}
	if err != nil {
		g.generationError = fmt.Errorf("traffic: host %d at t=%d: %w", h, g.K.Now(), err)
		return
	}
	g.generated++
	g.generatedBytes += int64(payload)
	g.scheduleNext(h)
}

// AssignGroups builds nGroups random groups of groupSize members each from
// the host list (deterministic in seed), returning the member sets and the
// per-host membership map.  This mirrors the paper's "members chosen at
// random" setup (Section 7.1).
func AssignGroups(hosts []topology.NodeID, nGroups, groupSize int, seed uint64) (
	members [][]topology.NodeID, groupsOf map[topology.NodeID][]int, err error) {
	if groupSize > len(hosts) {
		return nil, nil, fmt.Errorf("traffic: group size %d exceeds %d hosts", groupSize, len(hosts))
	}
	if groupSize < 2 {
		return nil, nil, fmt.Errorf("traffic: group size %d < 2", groupSize)
	}
	r := rng.New(seed, 0x6709)
	groupsOf = make(map[topology.NodeID][]int)
	for gi := 0; gi < nGroups; gi++ {
		perm := r.Perm(len(hosts))
		set := make([]topology.NodeID, groupSize)
		for i := 0; i < groupSize; i++ {
			set[i] = hosts[perm[i]]
			groupsOf[set[i]] = append(groupsOf[set[i]], gi)
		}
		members = append(members, set)
	}
	return members, groupsOf, nil
}
