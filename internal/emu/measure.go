package emu

import (
	"fmt"
	"time"
)

// Point is one measured point of Figures 12/13: per-host throughput and
// per-host input loss at a given packet size.
type Point struct {
	PacketSize int
	AllSend    bool

	// ThroughputMbps is the mean received data rate per receiving host in
	// Mb/s (the y-axis of Figure 12).  Lost packets are not counted,
	// matching the paper's accounting.
	ThroughputMbps float64
	// LossRate is the mean per-host probability that an incoming packet
	// found the input ring full (the y-axis of Figure 13).
	LossRate float64

	// Sent / Received / Dropped are the totals behind the rates.
	Sent, Received, Dropped int64
}

// String renders the point as a figure row.
func (p Point) String() string {
	mode := "single"
	if p.AllSend {
		mode = "all-send"
	}
	return fmt.Sprintf("%5d B  %-8s  %7.1f Mb/s  loss %5.1f%%",
		p.PacketSize, mode, p.ThroughputMbps, p.LossRate*100)
}

// Measure runs one measurement: a Hamiltonian circuit over cfg.Hosts
// cards, with either one host or every host blasting packets of the given
// size for the given duration ("the application simply sent as many
// packets as possible out to the network", Section 8.2).
// The duration is wall-clock run time; with the default TimeScale of 50, a
// one-second run covers 20 ms of modelled Myrinet time (enough for tens of
// packets per sender at 8 KB).
func Measure(cfg Config, size int, allSend bool, duration time.Duration) Point {
	l := New(cfg)
	defer l.Close()
	const group = 1
	l.SetupCircuit(group)

	senders := l.Cards[:1]
	if allSend {
		senders = l.Cards
	}
	stop := make(chan struct{})
	done := make(chan int64, len(senders))
	for _, c := range senders {
		c := c
		go func() {
			var sent int64
			defer func() { done <- sent }()
			for {
				select {
				case <-stop:
					return
				default:
					if c.Originate(group, size) != nil {
						return // LAN closed under us
					}
					sent++
				}
			}
		}()
	}
	time.Sleep(duration)
	close(stop)
	var sent int64
	for range senders {
		sent += <-done
	}
	// Let the circuit drain so in-flight packets reach their counters.
	time.Sleep(50 * time.Millisecond)

	var rxBytes, rxPkts, drops int64
	receivers := 0
	for _, cs := range l.Stats() {
		rxBytes += cs.RxBytes
		rxPkts += cs.RxPackets
		drops += cs.Drops
		if cs.RxPackets > 0 || cs.Drops > 0 {
			receivers++
		}
	}
	p := Point{PacketSize: size, AllSend: allSend, Sent: sent, Received: rxPkts, Dropped: drops}
	if receivers > 0 {
		perHostBytesPerSec := float64(rxBytes) / float64(receivers) / duration.Seconds()
		// Scale back from dilated wall-clock time to modelled Myrinet time.
		p.ThroughputMbps = perHostBytesPerSec * 8 / 1e6 * l.Cfg.TimeScale
	}
	if rxPkts+drops > 0 {
		p.LossRate = float64(drops) / float64(rxPkts+drops)
	}
	return p
}

// Sweep measures a series of packet sizes for one sender mode — a full
// curve of Figure 12 (and its Figure 13 loss counterpart).
func Sweep(cfg Config, sizes []int, allSend bool, perPoint time.Duration) []Point {
	out := make([]Point, 0, len(sizes))
	for _, s := range sizes {
		out = append(out, Measure(cfg, s, allSend, perPoint))
	}
	return out
}
