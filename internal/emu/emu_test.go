package emu

import (
	"testing"
	"time"
)

// cfg8 is the calibrated 8-host configuration at a reduced time dilation
// (10x instead of the default 50x) so tests finish quickly; stage ratios —
// and therefore the measured shapes — are preserved.
func cfg8() Config {
	return Config{Hosts: 8, TimeScale: 10}
}

func TestCircuitDeliversToAllOthers(t *testing.T) {
	l := New(cfg8())
	defer l.Close()
	l.SetupCircuit(1)
	if err := l.Cards[3].Originate(1, 1000); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	st := l.Stats()
	for _, cs := range st {
		want := int64(1)
		if cs.ID == 3 {
			want = 0 // the circuit stops at the originator's predecessor
		}
		if cs.RxPackets != want {
			t.Fatalf("card %d received %d packets, want %d", cs.ID, cs.RxPackets, want)
		}
		if cs.Drops != 0 {
			t.Fatalf("card %d dropped %d", cs.ID, cs.Drops)
		}
	}
}

func TestUnknownGroupErrors(t *testing.T) {
	l := New(cfg8())
	defer l.Close()
	if err := l.Cards[0].Originate(9, 100); err == nil {
		t.Fatal("unknown group accepted")
	}
}

func TestSetGroupCustomChain(t *testing.T) {
	l := New(cfg8())
	defer l.Close()
	// Chain 0 -> 2 -> 4 only.
	l.Cards[0].SetGroup(7, l.Cards[2], 2)
	l.Cards[2].SetGroup(7, l.Cards[4], 2)
	l.Cards[4].SetGroup(7, nil, 0)
	if err := l.Cards[0].Originate(7, 500); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	st := l.Stats()
	if st[2].RxPackets != 1 || st[4].RxPackets != 1 {
		t.Fatalf("chain deliveries: %+v", st)
	}
	for _, cs := range st {
		if cs.ID != 2 && cs.ID != 4 && cs.RxPackets != 0 {
			t.Fatalf("unexpected delivery at card %d", cs.ID)
		}
	}
}

func TestSingleSenderNoLoss(t *testing.T) {
	// "In the single source case no loss of packets due to input buffer
	// overflow was observed" — forwarding outpaces origination.
	p := Measure(cfg8(), 4096, false, 400*time.Millisecond)
	if p.LossRate != 0 {
		t.Fatalf("single-sender loss %.2f%%", p.LossRate*100)
	}
	if p.ThroughputMbps <= 0 {
		t.Fatalf("no throughput: %+v", p)
	}
}

func TestThroughputGrowsWithPacketSize(t *testing.T) {
	// Per-packet overhead amortizes: the Figure 12 curves rise with size.
	small := Measure(cfg8(), 1024, false, 400*time.Millisecond)
	large := Measure(cfg8(), 8192, false, 400*time.Millisecond)
	if large.ThroughputMbps <= small.ThroughputMbps {
		t.Fatalf("throughput did not grow: %v -> %v", small, large)
	}
	// The gain should be substantial (the prototype tripled between 1 KB
	// and 8 KB); allow a wide margin for scheduler noise.
	if large.ThroughputMbps < 1.5*small.ThroughputMbps {
		t.Fatalf("gain too small: %v -> %v", small, large)
	}
}

func TestAllSendLosesAndDegradesPerHost(t *testing.T) {
	// "Packet loss was only significant if hosts were originating
	// multicast packets as well as forwarding."
	single := Measure(cfg8(), 8192, false, 500*time.Millisecond)
	all := Measure(cfg8(), 8192, true, 500*time.Millisecond)
	if all.LossRate == 0 {
		t.Fatalf("all-send produced no loss: %+v", all)
	}
	if all.Dropped == 0 {
		t.Fatal("no drops counted")
	}
	// Per-host goodput in the all-send case sits below the single-sender
	// curve (Figure 12's dashed line under the solid one).
	if all.ThroughputMbps >= single.ThroughputMbps {
		t.Fatalf("all-send per-host throughput %v not below single-sender %v",
			all.ThroughputMbps, single.ThroughputMbps)
	}
}

func TestLossGrowsWithPacketSize(t *testing.T) {
	// Figure 13: bigger packets fit fewer-deep in the ~25 KB input buffer,
	// so bursts overflow it more readily.
	small := Measure(cfg8(), 1024, true, 500*time.Millisecond)
	large := Measure(cfg8(), 8192, true, 500*time.Millisecond)
	if large.LossRate <= small.LossRate {
		t.Fatalf("loss did not grow with size: %.1f%% -> %.1f%%",
			small.LossRate*100, large.LossRate*100)
	}
}

func TestSweepShape(t *testing.T) {
	pts := Sweep(cfg8(), []int{1024, 8192}, false, 300*time.Millisecond)
	if len(pts) != 2 {
		t.Fatalf("points %d", len(pts))
	}
	if pts[0].PacketSize != 1024 || pts[1].PacketSize != 8192 {
		t.Fatal("sizes out of order")
	}
	if pts[0].String() == "" {
		t.Fatal("empty row")
	}
}

func TestCloseStopsOriginate(t *testing.T) {
	l := New(cfg8())
	l.SetupCircuit(1)
	l.Close()
	// After close, originate must not hang forever: the firmware is gone,
	// so once the request queue fills, Originate returns the closed error.
	deadline := time.After(2 * time.Second)
	donec := make(chan error, 1)
	go func() {
		var err error
		for i := 0; i < 10 && err == nil; i++ {
			err = l.Cards[0].Originate(1, 100)
		}
		donec <- err
	}()
	select {
	case err := <-donec:
		if err == nil {
			t.Fatal("originate kept succeeding after close")
		}
	case <-deadline:
		t.Fatal("originate hung after close")
	}
	if len(l.Stats()) != 8 {
		t.Fatal("stats after close")
	}
}
