// Package emu emulates the paper's Myrinet prototype (Section 8): the
// Hamiltonian-circuit multicast implemented entirely in the network
// interface cards, measured on eight hosts across a four-switch Myrinet.
//
// Unlike internal/sim — a deterministic byte-level simulator — this is a
// concurrent emulation: every host adapter card runs as a goroutine, links
// are bounded rings, and time is real (wall-clock) time.  That reproduces
// the *measurement* character of Section 8.2: numbers vary slightly run to
// run, loss occurs exactly where the prototype lost packets (the card's
// finite input buffer, "the only place that loss can occur in this
// scheme"), and throughput is limited by per-packet host/LANai processing
// rather than the 640 Mb/s wire.
//
// What the paper had -> what this package builds:
//
//   - The LANai: a single 16-bit CPU that serializes origination DMA,
//     packet reception, and retransmission -> one firmware goroutine per
//     card that multiplexes a host send-request channel and the input
//     ring; every operation occupies the engine for its modelled cost.
//   - SPARCstation 5 hosts with slow peripheral buses -> reception charges
//     a host-DMA transfer at half wire speed on top of a fixed per-packet
//     cost; origination charges the large fixed cost that capped the
//     prototype near 120 Mb/s at 8 KB packets.
//   - The LANai's ~25 KB of packet SRAM -> a byte-bounded input ring.
//     Big packets fit only ~3 deep, so bursts overflow it — which is why
//     the prototype's Figure 13 loss grows with packet size.
//   - The four-switch fabric at 640 Mb/s, faster than any host -> links
//     are direct handoffs; wire time is charged at the sending interface.
//   - The multicast group manager informing the card of the (group, next
//     hop, hop count) triple via the device driver -> Card.SetGroup.
package emu

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Packet is one multicast worm on the emulated network.  The header
// mirrors Section 5: multicast group ID and a hop count decremented at
// each retransmission.
type Packet struct {
	Origin int
	Group  uint8
	Hops   int
	Size   int
}

// groupEntry is the (next hop, hop length) of the paper's group table.
type groupEntry struct {
	next   *Card
	hopLen int
}

// Config parameterizes the emulation; zero values take the calibrated
// defaults (chosen so the single-sender curve tops out near the
// prototype's ~120 Mb/s at 8 KB packets, see DESIGN.md).
type Config struct {
	// Hosts is the number of cards (the paper measured 8).
	Hosts int
	// RingBytes is the card's input buffer capacity in bytes (the LANai
	// has ~25 KB of packet memory).
	RingBytes int
	// SendOverhead is the fixed per-packet origination cost (application,
	// driver, and host-to-LANai DMA setup).
	SendOverhead time.Duration
	// ForwardOverhead is the fixed per-packet store-and-forward cost.
	ForwardOverhead time.Duration
	// RecvOverhead is the fixed per-packet reception/delivery cost.
	RecvOverhead time.Duration
	// WireBytesPerMicro is the link transmission rate charged at the
	// output (Myrinet: 80 B/us = 640 Mb/s).
	WireBytesPerMicro float64
	// DMABytesPerMicro is the LANai-to-host delivery rate charged on
	// reception (the SPARC peripheral bus, slower than the wire).
	DMABytesPerMicro float64

	// TimeScale dilates every modelled duration by this factor at
	// execution time; measured throughput is scaled back so results are
	// reported in modelled (Myrinet) terms.  Wall-clock sleep granularity
	// on commodity kernels is ~1 ms, far above the microsecond-scale
	// constants above; running 50x slowed keeps the granularity error a
	// few percent.  Default 50.
	TimeScale float64
}

func (c Config) withDefaults() Config {
	if c.Hosts == 0 {
		c.Hosts = 8
	}
	if c.RingBytes == 0 {
		c.RingBytes = 25 * 1024
	}
	if c.SendOverhead == 0 {
		c.SendOverhead = 440 * time.Microsecond
	}
	if c.ForwardOverhead == 0 {
		c.ForwardOverhead = 110 * time.Microsecond
	}
	if c.RecvOverhead == 0 {
		c.RecvOverhead = 60 * time.Microsecond
	}
	if c.WireBytesPerMicro == 0 {
		c.WireBytesPerMicro = 80
	}
	if c.DMABytesPerMicro == 0 {
		c.DMABytesPerMicro = 40
	}
	if c.TimeScale == 0 {
		c.TimeScale = 50
	}
	return c
}

// scale dilates a modelled duration into wall-clock time.
func (l *LAN) scale(d time.Duration) time.Duration {
	return time.Duration(float64(d) * l.Cfg.TimeScale)
}

// Card is one emulated LANai network interface card.
type Card struct {
	ID int

	lan     *LAN
	in      chan Packet // input ring (byte-bounded via ringBytes)
	sendReq chan Packet // origination requests from the host application
	groups  map[uint8]groupEntry
	mu      sync.RWMutex // guards groups against concurrent SetGroup

	ringBytes atomic.Int64

	// Counters (atomic: read while the emulation runs).
	rxPackets atomic.Int64 // packets accepted into the input ring
	rxBytes   atomic.Int64 // payload bytes delivered to the local host
	drops     atomic.Int64 // packets lost to input-ring overflow
	txPackets atomic.Int64 // packets transmitted (originated + forwarded)
}

// LAN is the emulated Myrinet: a set of cards joined into Hamiltonian
// circuits by their group tables.
type LAN struct {
	Cfg   Config
	Cards []*Card

	stop chan struct{}
	wg   sync.WaitGroup
}

// New builds the LAN and starts one firmware goroutine per card.
func New(cfg Config) *LAN {
	cfg = cfg.withDefaults()
	l := &LAN{Cfg: cfg, stop: make(chan struct{})}
	for i := 0; i < cfg.Hosts; i++ {
		c := &Card{
			ID:      i,
			lan:     l,
			in:      make(chan Packet, 1024), // count cap is generous; bytes bound for real
			sendReq: make(chan Packet, 2),
			groups:  make(map[uint8]groupEntry),
		}
		l.Cards = append(l.Cards, c)
	}
	for _, c := range l.Cards {
		l.wg.Add(1)
		go c.firmware()
	}
	return l
}

// SetupCircuit installs group g as the Hamiltonian circuit over all cards
// in ID order — what the multicast group manager does via the device
// driver in Section 8 ("the triple of multicast group, next hop address
// and hop count").
func (l *LAN) SetupCircuit(g uint8) {
	n := len(l.Cards)
	for i, c := range l.Cards {
		c.SetGroup(g, l.Cards[(i+1)%n], n-1)
	}
}

// SetGroup installs one card's group-table entry.
func (c *Card) SetGroup(g uint8, next *Card, hopLen int) {
	c.mu.Lock()
	c.groups[g] = groupEntry{next: next, hopLen: hopLen}
	c.mu.Unlock()
}

func (c *Card) lookup(g uint8) (groupEntry, bool) {
	c.mu.RLock()
	e, ok := c.groups[g]
	c.mu.RUnlock()
	return e, ok
}

// wireTime is the output-serialization cost of size bytes.
func (l *LAN) wireTime(size int) time.Duration {
	return time.Duration(float64(size) / l.Cfg.WireBytesPerMicro * float64(time.Microsecond))
}

// dmaTime is the LANai-to-host delivery cost of size bytes.
func (l *LAN) dmaTime(size int) time.Duration {
	return time.Duration(float64(size) / l.Cfg.DMABytesPerMicro * float64(time.Microsecond))
}

// push attempts to place a packet in a card's input ring, dropping it when
// the ring's byte budget is exhausted (the prototype's only loss point).
func (c *Card) push(p Packet) {
	for {
		cur := c.ringBytes.Load()
		if cur+int64(p.Size) > int64(c.lan.Cfg.RingBytes) {
			c.drops.Add(1)
			return
		}
		if c.ringBytes.CompareAndSwap(cur, cur+int64(p.Size)) {
			break
		}
	}
	c.in <- p // count capacity is far above any byte-feasible depth
}

// firmware is the card's single processing engine: it multiplexes host
// origination requests and inbound packets, charging each operation its
// modelled time.  Myrinet cards cannot cut through, so forwarding happens
// only after full reception (Section 8: "worms are stored and forwarded at
// each host").
func (c *Card) firmware() {
	defer c.lan.wg.Done()
	cfg := &c.lan.Cfg
	for {
		select {
		case <-c.lan.stop:
			return
		case p := <-c.sendReq:
			// Origination: host DMA + header build + wire transmission.
			time.Sleep(c.lan.scale(cfg.SendOverhead + c.lan.wireTime(p.Size)))
			c.txPackets.Add(1)
			if e, ok := c.lookup(p.Group); ok && e.next != nil && p.Hops >= 1 {
				e.next.push(p)
			}
		case p := <-c.in:
			c.ringBytes.Add(-int64(p.Size))
			// Reception: copy the worm to the host over the peripheral
			// bus; if the hop count permits, retransmit to the successor.
			// The engine time for both is charged as one interval so that
			// wall-clock sleep overshoot (which affects every sleep once)
			// biases the sender and forwarder stages equally.
			busy := cfg.RecvOverhead + c.lan.dmaTime(p.Size)
			var fwd *Card
			if p.Hops > 1 {
				if e, ok := c.lookup(p.Group); ok && e.next != nil {
					fwd = e.next
					busy += cfg.ForwardOverhead + c.lan.wireTime(p.Size)
				}
			}
			time.Sleep(c.lan.scale(busy))
			c.rxPackets.Add(1)
			c.rxBytes.Add(int64(p.Size))
			if fwd != nil {
				p.Hops--
				c.txPackets.Add(1)
				fwd.push(p)
			}
		}
	}
}

// Originate asks the card to send one multicast packet of the given size
// on group g, blocking until the card's request queue has room (the
// application-space interface of Section 8.2 blasting "as many packets as
// possible").  It reports an error for an unknown group.
func (c *Card) Originate(g uint8, size int) error {
	e, ok := c.lookup(g)
	if !ok {
		return fmt.Errorf("emu: card %d has no entry for group %d", c.ID, g)
	}
	p := Packet{Origin: c.ID, Group: g, Hops: e.hopLen, Size: size}
	select {
	case c.sendReq <- p:
		return nil
	case <-c.lan.stop:
		return fmt.Errorf("emu: LAN closed")
	}
}

// Close stops all card goroutines and waits for them to exit.
func (l *LAN) Close() {
	close(l.stop)
	l.wg.Wait()
}

// CardStats is a snapshot of one card's counters.
type CardStats struct {
	ID        int
	RxPackets int64
	RxBytes   int64
	Drops     int64
	TxPackets int64
}

// Stats snapshots every card.
func (l *LAN) Stats() []CardStats {
	out := make([]CardStats, len(l.Cards))
	for i, c := range l.Cards {
		out[i] = CardStats{
			ID:        c.ID,
			RxPackets: c.rxPackets.Load(),
			RxBytes:   c.rxBytes.Load(),
			Drops:     c.drops.Load(),
			TxPackets: c.txPackets.Load(),
		}
	}
	return out
}
