// Package des provides the discrete-event simulation kernel used by the
// wormhole network simulator.
//
// The paper's original simulator was written in Maisie, a C-based
// discrete-event simulation language, and modelled the network "at the byte
// level" (Section 7).  This kernel reproduces that abstraction: simulation
// time advances in byte-times (the time to transfer one byte on a 640 Mb/s
// Myrinet link, 12.5 ns), and components schedule callbacks on a shared
// event queue.  Execution is single-threaded and strictly deterministic:
// events with equal timestamps fire in scheduling order.
//
// Components that advance in lock-step with the wire clock (switch ports
// shifting one byte per byte-time) register Tickers instead of scheduling
// per-byte events; the kernel coalesces all tickers into a single event per
// occupied byte-time, which keeps the event queue small even though the
// model is byte-accurate.
package des

import (
	"fmt"

	"wormlan/internal/eventq"
)

// Time is a simulation timestamp in byte-times.
type Time = int64

// Ticker is a component that needs to run once per byte-time while active.
// Tick is called with the current simulation time.  It returns false when
// the ticker has gone idle and wants to be descheduled; it can re-arm itself
// later via Kernel.Activate.
type Ticker interface {
	Tick(now Time) bool
}

// Kernel is a deterministic discrete-event simulation kernel.
type Kernel struct {
	now    Time
	queue  eventq.Queue
	halted bool
	err    error

	tickers    []Ticker
	tickerOn   map[Ticker]bool
	tickSched  bool
	nextTicker []Ticker // staging to keep tick order stable

	// Trace, if non-nil, receives a line per dispatched event when tracing
	// is enabled.  It exists for debugging protocol interleavings.
	Trace func(format string, args ...any)

	// Observe, if non-nil, runs after every dispatched event with the
	// current time.  Metrics collectors use it to sample kernel state
	// (queue depth, progress) at deterministic points; the hook must not
	// schedule events or mutate simulation state.
	Observe func(now Time)

	dispatched int64
	maxQueue   int
}

// NewKernel returns an empty kernel at time zero.
func NewKernel() *Kernel {
	return &Kernel{tickerOn: make(map[Ticker]bool)}
}

// Now returns the current simulation time in byte-times.
func (k *Kernel) Now() Time { return k.now }

// At schedules fn to run at absolute time t.  Scheduling in the past panics:
// it is always a model bug.
func (k *Kernel) At(t Time, fn func()) *eventq.Event {
	if t < k.now {
		panic(fmt.Sprintf("des: scheduling at %d before now %d", t, k.now))
	}
	return k.queue.Schedule(t, fn)
}

// After schedules fn to run d byte-times from now.
func (k *Kernel) After(d Time, fn func()) *eventq.Event {
	if d < 0 {
		panic(fmt.Sprintf("des: negative delay %d", d))
	}
	return k.queue.Schedule(k.now+d, fn)
}

// Cancel cancels a previously scheduled event.
func (k *Kernel) Cancel(e *eventq.Event) { k.queue.Cancel(e) }

// Activate arms a ticker so that its Tick method runs once per byte-time
// starting at the next byte-time boundary.  Activating an already-active
// ticker is a no-op.  Tick order among tickers follows first-activation
// order, which keeps runs reproducible.
func (k *Kernel) Activate(t Ticker) {
	if k.tickerOn[t] {
		return
	}
	k.tickerOn[t] = true
	k.tickers = append(k.tickers, t)
	k.scheduleTick()
}

func (k *Kernel) scheduleTick() {
	if k.tickSched || len(k.tickers) == 0 {
		return
	}
	k.tickSched = true
	k.queue.Schedule(k.now+1, k.runTick)
}

func (k *Kernel) runTick() {
	k.tickSched = false
	live := k.nextTicker[:0]
	for _, t := range k.tickers {
		if !k.tickerOn[t] {
			continue
		}
		if t.Tick(k.now) {
			live = append(live, t)
		} else {
			delete(k.tickerOn, t)
		}
	}
	k.nextTicker = k.tickers[:0]
	k.tickers = live
	k.scheduleTick()
}

// Halt stops the run loop after the current event.  err may be nil for a
// clean stop (e.g. a stop condition reached).
func (k *Kernel) Halt(err error) {
	k.halted = true
	if k.err == nil {
		k.err = err
	}
}

// Halted reports whether Halt has been called.
func (k *Kernel) Halted() bool { return k.halted }

// Run dispatches events until the queue drains, Halt is called, or the
// simulation clock passes deadline (0 means no deadline).  It returns the
// error passed to Halt, if any.
func (k *Kernel) Run(deadline Time) error {
	for !k.halted && k.queue.Len() > 0 {
		t := k.queue.PeekTime()
		if deadline > 0 && t > deadline {
			k.now = deadline
			break
		}
		if n := k.queue.Len(); n > k.maxQueue {
			k.maxQueue = n
		}
		e := k.queue.Pop()
		k.now = t
		if e.Fire != nil {
			e.Fire()
		}
		k.dispatched++
		if k.Observe != nil {
			k.Observe(k.now)
		}
	}
	if !k.halted && deadline > 0 && k.now < deadline && k.queue.Len() == 0 {
		k.now = deadline
	}
	return k.err
}

// Pending returns the number of scheduled events (diagnostic).
func (k *Kernel) Pending() int { return k.queue.Len() }

// Dispatched returns the number of events fired so far.
func (k *Kernel) Dispatched() int64 { return k.dispatched }

// MaxQueue returns the high-water mark of the event queue.
func (k *Kernel) MaxQueue() int { return k.maxQueue }
