// Package des provides the discrete-event simulation kernel used by the
// wormhole network simulator.
//
// The paper's original simulator was written in Maisie, a C-based
// discrete-event simulation language, and modelled the network "at the byte
// level" (Section 7).  This kernel reproduces that abstraction: simulation
// time advances in byte-times (the time to transfer one byte on a 640 Mb/s
// Myrinet link, 12.5 ns), and components schedule callbacks on a shared
// event queue.  Execution is single-threaded and strictly deterministic:
// events with equal timestamps fire in scheduling order.
//
// Components that advance in lock-step with the wire clock (switch ports
// shifting one byte per byte-time) register Tickers instead of scheduling
// per-byte events; the kernel coalesces all tickers into a single event per
// occupied byte-time, which keeps the event queue small even though the
// model is byte-accurate.
package des

import (
	"fmt"

	"wormlan/internal/eventq"
)

// Time is a simulation timestamp in byte-times.
type Time = int64

// Ticker is a component that needs to run once per byte-time while active.
// Tick is called with the current simulation time.  It returns false when
// the ticker has gone idle and wants to be descheduled; it can re-arm itself
// later via Kernel.Activate.
type Ticker interface {
	Tick(now Time) bool
}

// Skipper is an optional Ticker extension for fast-forwarding: a component
// that can prove its next ticks are state-identical repeats may apply up to
// max of them in one step and return how many it applied (0 = none).
//
// The contract is strict — this is an optimization, never a semantic knob:
// after Skip(now, max) returns n, the component's observable state must be
// byte-identical to having received Tick(now), Tick(now+1), …, Tick(now+n-1)
// with no interleaved events.  The kernel only calls Skip when that premise
// holds: the component is the sole live ticker, no queue event is due before
// now+n+1, and the run deadline is not crossed.  Skip must not schedule
// events or activate tickers.
type Skipper interface {
	Ticker
	Skip(now Time, max Time) Time
}

// Kernel is a deterministic discrete-event simulation kernel.
type Kernel struct {
	now    Time
	queue  eventq.Queue
	halted bool
	err    error

	// The ticker registry is an append-only slice with parallel active
	// flags (no map: registration order is iteration order, and the flag
	// flip is branch-predictable on the hot path).  activeSince records
	// when each ticker was last armed so a ticker activated in the middle
	// of a tick pass first runs at the next byte-time, exactly as when
	// every tick was its own queue event.
	tickers     []Ticker
	skippers    []Skipper // tickers[i] as Skipper, nil when not implemented
	active      []bool
	activeSince []Time
	tickSched   bool
	runTickFn   func() // k.runTick, bound once to avoid per-tick closures
	deadline    Time   // current Run's deadline; bounds tick batching

	// Trace, if non-nil, receives a line per dispatched event when tracing
	// is enabled.  It exists for debugging protocol interleavings.
	Trace func(format string, args ...any)

	// Observe, if non-nil, runs after every dispatched event with the
	// current time.  Metrics collectors use it to sample kernel state
	// (queue depth, progress) at deterministic points; the hook must not
	// schedule events or mutate simulation state.
	Observe func(now Time)

	dispatched int64
	ticks      int64
	maxQueue   int
}

// NewKernel returns an empty kernel at time zero.
func NewKernel() *Kernel {
	k := &Kernel{}
	// Bind the tick dispatcher once: a method value allocates a closure,
	// and scheduleTick runs once per occupied byte-time.
	k.runTickFn = k.runTick
	return k
}

// Now returns the current simulation time in byte-times.
func (k *Kernel) Now() Time { return k.now }

// At schedules fn to run at absolute time t.  Scheduling in the past panics:
// it is always a model bug.
func (k *Kernel) At(t Time, fn func()) eventq.Handle {
	if t < k.now {
		panic(fmt.Sprintf("des: scheduling at %d before now %d", t, k.now))
	}
	return k.queue.Schedule(t, fn)
}

// After schedules fn to run d byte-times from now.
func (k *Kernel) After(d Time, fn func()) eventq.Handle {
	if d < 0 {
		panic(fmt.Sprintf("des: negative delay %d", d))
	}
	return k.queue.Schedule(k.now+d, fn)
}

// Cancel cancels a previously scheduled event.  Canceling a zero or
// already-fired handle is a no-op.
func (k *Kernel) Cancel(h eventq.Handle) { k.queue.Cancel(h) }

// Activate arms a ticker so that its Tick method runs once per byte-time
// starting at the next byte-time boundary.  Activating an already-active
// ticker is a no-op.  Tick order among tickers follows first-activation
// order, which keeps runs reproducible.
func (k *Kernel) Activate(t Ticker) {
	ix := -1
	for i, r := range k.tickers {
		if r == t {
			ix = i
			break
		}
	}
	if ix < 0 {
		ix = len(k.tickers)
		k.tickers = append(k.tickers, t)
		sk, _ := t.(Skipper)
		k.skippers = append(k.skippers, sk)
		k.active = append(k.active, false)
		k.activeSince = append(k.activeSince, 0)
	} else if k.active[ix] {
		return
	}
	k.active[ix] = true
	k.activeSince[ix] = k.now
	k.scheduleTick()
}

func (k *Kernel) scheduleTick() {
	if k.tickSched {
		return
	}
	k.tickSched = true
	k.queue.Schedule(k.now+1, k.runTickFn)
}

// runTick dispatches one tick pass over the active tickers, then keeps
// ticking inline — advancing the clock directly — for as long as no queue
// event is due at or before the next byte-time.  Batching is unobservable
// by construction: a tick consumed from the queue and a tick run inline see
// identical kernel state, and the loop falls back to the queue the moment
// an event (including one scheduled by a ticker during the pass) would
// interleave.  During long uncontended stretches this turns the
// pop/push-per-byte-time cycle into a plain loop.
func (k *Kernel) runTick() {
	k.tickSched = false
	for {
		k.ticks++
		nLive, liveIdx := 0, -1
		pending := false
		for i, t := range k.tickers {
			if !k.active[i] {
				continue
			}
			// Tickers armed during this pass start next byte-time, as if
			// the tick event had been re-queued before their activation.
			if k.activeSince[i] >= k.now {
				pending = true
				continue
			}
			if t.Tick(k.now) {
				nLive++
				liveIdx = i
			} else {
				k.active[i] = false
			}
		}
		if nLive == 0 {
			// Idle: a ticker armed mid-pass has already scheduled the
			// next tick event via Activate.
			return
		}
		if k.halted ||
			(k.queue.Len() > 0 && k.queue.PeekTime() <= k.now+1) ||
			(k.deadline > 0 && k.now+1 > k.deadline) {
			k.scheduleTick()
			return
		}
		// Account the inline tick like the queue event it replaces; the
		// final pass of the loop is accounted by Run itself.
		k.dispatched++
		if k.Observe != nil {
			k.Observe(k.now)
		}
		k.now++
		// Fast-forward: a sole live skipper may apply a run of provably
		// state-identical ticks in one step.  Bounds keep the premise
		// airtight: no queue event may be due at or before the tick pass
		// that follows the skipped run, and the deadline is not crossed.
		// Skipped ticks are accounted (ticks, dispatched, Observe) exactly
		// as if they had been run, so every derived statistic matches a
		// non-skipping run byte for byte.
		if nLive == 1 && !pending && k.skippers[liveIdx] != nil {
			max := Time(1) << 40
			if k.queue.Len() > 0 {
				max = k.queue.PeekTime() - k.now - 1
			}
			if k.deadline > 0 {
				if d := k.deadline - k.now; d < max {
					max = d
				}
			}
			if max > 0 {
				if n := k.skippers[liveIdx].Skip(k.now, max); n > 0 {
					k.ticks += n
					k.dispatched += n
					if k.Observe != nil {
						for i := Time(0); i < n; i++ {
							k.Observe(k.now + i)
						}
					}
					k.now += n
				}
			}
		}
	}
}

// Halt stops the run loop after the current event.  err may be nil for a
// clean stop (e.g. a stop condition reached).
func (k *Kernel) Halt(err error) {
	k.halted = true
	if k.err == nil {
		k.err = err
	}
}

// Halted reports whether Halt has been called.
func (k *Kernel) Halted() bool { return k.halted }

// Run dispatches events until the queue drains, Halt is called, or the
// simulation clock passes deadline (0 means no deadline).  It returns the
// error passed to Halt, if any.
func (k *Kernel) Run(deadline Time) error {
	k.deadline = deadline
	for !k.halted && k.queue.Len() > 0 {
		t := k.queue.PeekTime()
		if deadline > 0 && t > deadline {
			k.now = deadline
			break
		}
		e := k.queue.Pop()
		k.now = t
		// The event struct returns to the pool before firing so callbacks
		// that schedule immediately can reuse it; `fire` keeps the closure.
		fire := e.Fire
		k.queue.Free(e)
		if fire != nil {
			fire()
		}
		// Sample the high-water mark after the callback: the tick-coalescing
		// event has re-queued itself by then, so the reading reflects the
		// true pending-set size instead of systematically missing it.
		if n := k.queue.Len(); n > k.maxQueue {
			k.maxQueue = n
		}
		k.dispatched++
		if k.Observe != nil {
			k.Observe(k.now)
		}
	}
	if !k.halted && deadline > 0 && k.now < deadline && k.queue.Len() == 0 {
		k.now = deadline
	}
	return k.err
}

// Pending returns the number of scheduled events (diagnostic).
func (k *Kernel) Pending() int { return k.queue.Len() }

// Dispatched returns the number of events fired so far.
func (k *Kernel) Dispatched() int64 { return k.dispatched }

// MaxQueue returns the high-water mark of the event queue, sampled after
// each event fires (so the self-re-queuing tick event is counted).
func (k *Kernel) MaxQueue() int { return k.maxQueue }

// Ticks returns the number of tick passes run over the active tickers.
func (k *Kernel) Ticks() int64 { return k.ticks }

// EventsPerTick returns the ratio of dispatched events to tick passes: ~1.0
// for a purely ticker-driven load (every event is a byte-time tick), higher
// when discrete events (timers, traffic arrivals) dominate.  Zero before
// the first tick.
func (k *Kernel) EventsPerTick() float64 {
	if k.ticks == 0 {
		return 0
	}
	return float64(k.dispatched) / float64(k.ticks)
}
