package des

import (
	"errors"
	"testing"
)

func TestEventOrderAndClock(t *testing.T) {
	k := NewKernel()
	var order []int
	k.At(10, func() { order = append(order, 1) })
	k.At(5, func() {
		order = append(order, 0)
		if k.Now() != 5 {
			t.Fatalf("Now = %d inside event at 5", k.Now())
		}
	})
	k.At(10, func() { order = append(order, 2) })
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("order = %v", order)
	}
	if k.Now() != 10 {
		t.Fatalf("final Now = %d", k.Now())
	}
}

func TestAfter(t *testing.T) {
	k := NewKernel()
	var at Time
	k.After(7, func() {
		k.After(3, func() { at = k.Now() })
	})
	k.Run(0)
	if at != 10 {
		t.Fatalf("nested After fired at %d, want 10", at)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	k := NewKernel()
	k.At(5, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		k.At(2, func() {})
	})
	k.Run(0)
}

func TestNegativeAfterPanics(t *testing.T) {
	k := NewKernel()
	defer func() {
		if recover() == nil {
			t.Fatal("negative After did not panic")
		}
	}()
	k.After(-1, func() {})
}

func TestHalt(t *testing.T) {
	k := NewKernel()
	sentinel := errors.New("stop")
	ran := 0
	k.At(1, func() { ran++; k.Halt(sentinel) })
	k.At(2, func() { ran++ })
	if err := k.Run(0); !errors.Is(err, sentinel) {
		t.Fatalf("Run returned %v", err)
	}
	if ran != 1 {
		t.Fatalf("ran %d events after halt", ran)
	}
	if !k.Halted() {
		t.Fatal("Halted() = false")
	}
}

func TestDeadline(t *testing.T) {
	k := NewKernel()
	ran := false
	k.At(100, func() { ran = true })
	k.Run(50)
	if ran {
		t.Fatal("event past deadline ran")
	}
	if k.Now() != 50 {
		t.Fatalf("Now = %d, want deadline 50", k.Now())
	}
}

func TestDeadlineAdvancesIdleClock(t *testing.T) {
	k := NewKernel()
	k.At(5, func() {})
	k.Run(500)
	if k.Now() != 500 {
		t.Fatalf("Now = %d, want 500", k.Now())
	}
}

type countTicker struct {
	k     *Kernel
	ticks []Time
	limit int
}

func (c *countTicker) Tick(now Time) bool {
	c.ticks = append(c.ticks, now)
	return len(c.ticks) < c.limit
}

func TestTickerRunsPerByteTime(t *testing.T) {
	k := NewKernel()
	c := &countTicker{k: k, limit: 5}
	k.At(10, func() { k.Activate(c) })
	k.Run(0)
	if len(c.ticks) != 5 {
		t.Fatalf("ticker ran %d times", len(c.ticks))
	}
	for i, tm := range c.ticks {
		if want := Time(11 + i); tm != want {
			t.Fatalf("tick %d at %d, want %d", i, tm, want)
		}
	}
}

func TestTickerReactivation(t *testing.T) {
	k := NewKernel()
	c := &countTicker{k: k, limit: 2}
	k.At(0, func() { k.Activate(c) })
	k.At(100, func() {
		c.limit = 4
		k.Activate(c)
	})
	k.Run(0)
	if len(c.ticks) != 4 {
		t.Fatalf("ticker ran %d times, want 4", len(c.ticks))
	}
	if c.ticks[2] != 101 {
		t.Fatalf("reactivated tick at %d, want 101", c.ticks[2])
	}
}

func TestActivateIdempotent(t *testing.T) {
	k := NewKernel()
	c := &countTicker{k: k, limit: 3}
	k.At(0, func() {
		k.Activate(c)
		k.Activate(c) // must not double-tick
	})
	k.Run(0)
	if len(c.ticks) != 3 {
		t.Fatalf("ticks = %v", c.ticks)
	}
	// ticks must be at distinct consecutive times
	for i := 1; i < len(c.ticks); i++ {
		if c.ticks[i] != c.ticks[i-1]+1 {
			t.Fatalf("non-consecutive ticks %v", c.ticks)
		}
	}
}

type orderTicker struct {
	id  int
	log *[]int
}

func (o *orderTicker) Tick(now Time) bool {
	*o.log = append(*o.log, o.id)
	return false
}

func TestTickerOrderIsActivationOrder(t *testing.T) {
	k := NewKernel()
	var log []int
	k.At(0, func() {
		k.Activate(&orderTicker{2, &log})
		k.Activate(&orderTicker{5, &log})
		k.Activate(&orderTicker{1, &log})
	})
	k.Run(0)
	if len(log) != 3 || log[0] != 2 || log[1] != 5 || log[2] != 1 {
		t.Fatalf("tick order %v, want [2 5 1]", log)
	}
}

func TestCancelEvent(t *testing.T) {
	k := NewKernel()
	ran := false
	e := k.At(5, func() { ran = true })
	k.At(1, func() { k.Cancel(e) })
	k.Run(0)
	if ran {
		t.Fatal("canceled event ran")
	}
}

func BenchmarkKernelTicker(b *testing.B) {
	k := NewKernel()
	c := &countTicker{limit: b.N}
	k.At(0, func() { k.Activate(c) })
	b.ResetTimer()
	k.Run(0)
}
