// Package switchmc implements multicast in the switching fabric (Section 3
// of the paper): the worm itself is replicated inside the crossbar
// switches, guided by the linearized tree header of Figure 2, instead of
// being forwarded by host adapters.
//
// Deadlock discipline: replicating worms introduce flow-control
// dependencies between tree branches, so up/down routing alone is not
// sufficient (Figure 3).  The paper's scheme A restricts *all* worms —
// unicast too — to the links of the up/down spanning tree; crosslinks go
// unused.  That is this package's safe default.  Config.UnrestrictedRoutes
// disables the restriction to reproduce the Figure 3 deadlock in demos and
// tests; production use should leave it off or select the fabric's
// interrupt/flush schemes (network.Config.Scheme).
//
// The package also provides the broadcast special case: a unicast prefix
// to the up/down root followed by the broadcast pseudo-port, flooded down
// the spanning tree by the switches themselves.
package switchmc

import (
	"fmt"

	"wormlan/internal/des"
	"wormlan/internal/flit"
	"wormlan/internal/multicast"
	"wormlan/internal/network"
	"wormlan/internal/route"
	"wormlan/internal/topology"
	"wormlan/internal/trace"
	"wormlan/internal/updown"
)

// Config parameterizes the switch-level multicast system.
type Config struct {
	// UnrestrictedRoutes lifts the spanning-tree route restriction.
	// Multicast worms can then deadlock against unicast worms exactly as
	// in Figure 3 — only enable this to study that failure mode, or in
	// combination with a fabric-level scheme that handles it.
	UnrestrictedRoutes bool
}

// Delivery reports one completed worm at a host.
type Delivery struct {
	Worm      *flit.Worm
	Host      topology.NodeID
	At        des.Time
	Multicast bool
}

// System injects unicast and switch-replicated multicast worms.  It
// implements the traffic generator's sink interface.
type System struct {
	K   *des.Kernel
	F   *network.Fabric
	UD  *updown.Routing
	Cfg Config

	// OnDeliver is invoked per completed worm per destination host.
	OnDeliver func(d Delivery)

	table *updown.Table
	// headers caches the encoded multicast header per (group, source).
	headers map[int]map[topology.NodeID][]byte
	// members caches group membership for delivery accounting.
	members map[int]*multicast.Group
	// rootPrefix caches each host's unicast route to the up/down root.
	rootPrefix map[topology.NodeID][]topology.PortID
	nextID     int64
	rec        trace.Recorder
}

// SetRecorder attaches a trace recorder for originate events; nil
// disables them.
func (s *System) SetRecorder(r trace.Recorder) { s.rec = r }

// New builds the system over an existing fabric.  It takes ownership of
// the fabric's OnDeliver callback.
func New(k *des.Kernel, f *network.Fabric, ud *updown.Routing, cfg Config) (*System, error) {
	table, err := ud.NewTable(!cfg.UnrestrictedRoutes)
	if err != nil {
		return nil, err
	}
	s := &System{
		K: k, F: f, UD: ud, Cfg: cfg,
		table:      table,
		headers:    make(map[int]map[topology.NodeID][]byte),
		members:    make(map[int]*multicast.Group),
		rootPrefix: make(map[topology.NodeID][]topology.PortID),
	}
	f.Cfg.OnDeliver = s.onDeliver
	return s, nil
}

func (s *System) onDeliver(d network.Delivery) {
	if s.OnDeliver == nil {
		return
	}
	s.OnDeliver(Delivery{
		Worm: d.Worm, Host: d.Host, At: d.At,
		Multicast: d.Worm.Mode != flit.Unicast,
	})
}

// AddGroup precomputes, for every member, the multicast tree header that
// reaches all other members — the source route a sending host stamps on
// its multicast worms.
func (s *System) AddGroup(g *multicast.Group) error {
	if _, dup := s.headers[g.ID]; dup {
		return fmt.Errorf("switchmc: duplicate group %d", g.ID)
	}
	perSrc := make(map[topology.NodeID][]byte, len(g.Members))
	for _, src := range g.Members {
		var routes []updown.Route
		for _, dst := range g.Members {
			if dst == src {
				continue
			}
			routes = append(routes, s.table.Lookup(src, dst))
		}
		tree, err := route.BuildTree(routes)
		if err != nil {
			return fmt.Errorf("switchmc: group %d source %d: %w", g.ID, src, err)
		}
		hdr, err := route.Encode(tree)
		if err != nil {
			return fmt.Errorf("switchmc: group %d source %d: %w", g.ID, src, err)
		}
		perSrc[src] = hdr
	}
	s.headers[g.ID] = perSrc
	s.members[g.ID] = g
	return nil
}

// SendUnicast injects one unicast worm (background traffic).
func (s *System) SendUnicast(src, dst topology.NodeID, payload int) error {
	rt := s.table.Lookup(src, dst)
	hdr, err := route.EncodeUnicast(rt.Ports)
	if err != nil {
		return err
	}
	s.nextID++
	return s.F.Inject(src, &flit.Worm{
		ID: s.nextID, Src: src, Dst: dst, Mode: flit.Unicast,
		Group: -1, Header: hdr, PayloadLen: payload,
	})
}

// SendMulticast injects one switch-replicated multicast worm from src to
// all other members of the group.
func (s *System) SendMulticast(src topology.NodeID, group, payload int) error {
	perSrc, ok := s.headers[group]
	if !ok {
		return fmt.Errorf("switchmc: unknown group %d", group)
	}
	hdr, ok := perSrc[src]
	if !ok {
		return fmt.Errorf("switchmc: host %d not in group %d", src, group)
	}
	s.nextID++
	if s.rec != nil {
		s.rec.Record(trace.Event{At: s.K.Now(), Kind: trace.EvOriginate,
			Node: src, Port: -1, Worm: s.nextID, Arg: int64(payload)})
	}
	return s.F.Inject(src, &flit.Worm{
		ID: s.nextID, Src: src, Dst: topology.None, Mode: flit.MulticastTree,
		Group: group, Header: hdr, PayloadLen: payload,
	})
}

// GroupSize returns the number of members of a group (0 if unknown), for
// delivery accounting.
func (s *System) GroupSize(group int) int {
	g := s.members[group]
	if g == nil {
		return 0
	}
	return len(g.Members)
}

// SendBroadcast injects a broadcast worm: a unicast prefix from the
// source's switch up to the up/down root, then the broadcast pseudo-port,
// flooded down the spanning tree by the switches (Section 3).  Every host
// in the LAN receives a copy, including the sender.
func (s *System) SendBroadcast(src topology.NodeID, payload int) error {
	prefix, err := s.prefixToRoot(src)
	if err != nil {
		return err
	}
	hdr, err := route.Broadcast(prefix)
	if err != nil {
		return err
	}
	s.nextID++
	if s.rec != nil {
		s.rec.Record(trace.Event{At: s.K.Now(), Kind: trace.EvOriginate,
			Node: src, Port: -1, Worm: s.nextID, Arg: int64(payload)})
	}
	return s.F.Inject(src, &flit.Worm{
		ID: s.nextID, Src: src, Dst: topology.None, Mode: flit.Broadcast,
		Group: -1, Header: hdr, PayloadLen: payload,
	})
}

// prefixToRoot returns the output ports from the host's switch up the
// spanning tree to the root.
func (s *System) prefixToRoot(src topology.NodeID) ([]topology.PortID, error) {
	if cached, ok := s.rootPrefix[src]; ok {
		return cached, nil
	}
	g := s.F.G
	sw, _ := g.HostAttachment(src)
	var prefix []topology.PortID
	for sw != s.UD.Root {
		parent := s.UD.Parent[sw]
		if parent == topology.None {
			return nil, fmt.Errorf("switchmc: switch %d has no path to root", sw)
		}
		port := topology.NoPort
		for pi, p := range g.Node(sw).Ports {
			if p.Wired() && p.Peer == parent && s.UD.InTree(sw, topology.PortID(pi)) {
				port = topology.PortID(pi)
				break
			}
		}
		if port == topology.NoPort {
			return nil, fmt.Errorf("switchmc: no tree port from %d to parent %d", sw, parent)
		}
		prefix = append(prefix, port)
		sw = parent
	}
	s.rootPrefix[src] = prefix
	return prefix, nil
}
