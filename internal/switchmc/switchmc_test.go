package switchmc

import (
	"testing"

	"wormlan/internal/des"
	"wormlan/internal/flit"
	"wormlan/internal/multicast"
	"wormlan/internal/network"
	"wormlan/internal/topology"
	"wormlan/internal/updown"
)

type bed struct {
	k   *des.Kernel
	g   *topology.Graph
	sys *System

	byHost map[topology.NodeID][]Delivery
}

func newBed(t *testing.T, g *topology.Graph, netCfg network.Config, cfg Config) *bed {
	t.Helper()
	b := &bed{k: des.NewKernel(), g: g, byHost: map[topology.NodeID][]Delivery{}}
	ud, err := updown.New(g, topology.None)
	if err != nil {
		t.Fatal(err)
	}
	f, err := network.New(b.k, g, ud, netCfg)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(b.k, f, ud, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.OnDeliver = func(d Delivery) { b.byHost[d.Host] = append(b.byHost[d.Host], d) }
	b.sys = sys
	return b
}

func (b *bed) addGroup(t *testing.T, id int, members []topology.NodeID) {
	t.Helper()
	grp, err := multicast.NewGroup(id, members)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.sys.AddGroup(grp); err != nil {
		t.Fatal(err)
	}
}

func TestSwitchMulticastReachesAllMembers(t *testing.T) {
	for name, g := range map[string]*topology.Graph{
		"torus":   topology.Torus(4, 4, 1, 1),
		"fattree": topology.FatTreeish(4, 2, true),
		"myrinet": topology.Myrinet4(),
	} {
		t.Run(name, func(t *testing.T) {
			b := newBed(t, g, network.Config{}, Config{})
			hosts := g.Hosts()
			members := []topology.NodeID{hosts[0], hosts[2], hosts[3], hosts[5]}
			b.addGroup(t, 1, members)
			if err := b.sys.SendMulticast(hosts[2], 1, 300); err != nil {
				t.Fatal(err)
			}
			if err := b.k.Run(0); err != nil {
				t.Fatal(err)
			}
			for _, m := range members {
				if m == hosts[2] {
					if len(b.byHost[m]) != 0 {
						t.Fatalf("source received its own fabric copy")
					}
					continue
				}
				if len(b.byHost[m]) != 1 || !b.byHost[m][0].Multicast {
					t.Fatalf("member %d deliveries %v", m, b.byHost[m])
				}
			}
			if b.sys.GroupSize(1) != 4 {
				t.Fatalf("group size %d", b.sys.GroupSize(1))
			}
		})
	}
}

func TestSwitchMulticastLowerLatencyThanSequential(t *testing.T) {
	// Fabric replication delivers all copies in one worm time; even the
	// earliest copy of an adapter-based circuit needs a second worm time
	// for its first forward.  Compare the spread of delivery times: the
	// fabric's copies land within a propagation spread, not a worm-time
	// spread.
	g := topology.Star(6)
	b := newBed(t, g, network.Config{}, Config{})
	hosts := g.Hosts()
	b.addGroup(t, 1, hosts)
	if err := b.sys.SendMulticast(hosts[0], 1, 1000); err != nil {
		t.Fatal(err)
	}
	b.k.Run(0)
	var min, max des.Time
	first := true
	for _, ds := range b.byHost {
		for _, d := range ds {
			if first || d.At < min {
				min = d.At
			}
			if first || d.At > max {
				max = d.At
			}
			first = false
		}
	}
	if max-min > 10 {
		t.Fatalf("crossbar replication spread %d byte-times; copies should be near-simultaneous", max-min)
	}
}

func TestUnicastRestrictedToTree(t *testing.T) {
	// With the scheme A discipline, unicast traffic avoids crosslinks: on
	// the fat tree with crosslinks, all routes go through the root, so
	// both unicast and multicast complete and stay deadlock-free.
	g := topology.FatTreeish(4, 2, true)
	b := newBed(t, g, network.Config{StopMark: 8, GoMark: 4}, Config{})
	hosts := g.Hosts()
	b.addGroup(t, 1, hosts[:5])
	for i := 0; i < 4; i++ {
		if err := b.sys.SendUnicast(hosts[i], hosts[7-i], 200); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.sys.SendMulticast(hosts[0], 1, 400); err != nil {
		t.Fatal(err)
	}
	if err := b.k.Run(0); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, ds := range b.byHost {
		total += len(ds)
	}
	if total != 4+4 { // 4 unicasts + 4 multicast copies
		t.Fatalf("deliveries %d", total)
	}
}

func TestErrors(t *testing.T) {
	g := topology.Star(4)
	b := newBed(t, g, network.Config{}, Config{})
	hosts := g.Hosts()
	b.addGroup(t, 1, hosts[:3])
	if err := b.sys.SendMulticast(hosts[0], 9, 100); err == nil {
		t.Fatal("unknown group accepted")
	}
	if err := b.sys.SendMulticast(hosts[3], 1, 100); err == nil {
		t.Fatal("non-member source accepted")
	}
	grp, _ := multicast.NewGroup(1, hosts)
	if err := b.sys.AddGroup(grp); err == nil {
		t.Fatal("duplicate group accepted")
	}
	if b.sys.GroupSize(42) != 0 {
		t.Fatal("unknown group size")
	}
}

func TestBroadcastFromEveryHost(t *testing.T) {
	g := topology.FatTreeish(3, 2, false)
	hosts := g.Hosts()
	for _, src := range hosts {
		b := newBed(t, g, network.Config{}, Config{})
		if err := b.sys.SendBroadcast(src, 123); err != nil {
			t.Fatal(err)
		}
		if err := b.k.Run(0); err != nil {
			t.Fatal(err)
		}
		for _, h := range hosts {
			if len(b.byHost[h]) != 1 {
				t.Fatalf("broadcast from %d: host %d got %d copies", src, h, len(b.byHost[h]))
			}
			if b.byHost[h][0].Worm.Mode != flit.Broadcast {
				t.Fatal("wrong mode")
			}
		}
	}
}

func TestUnrestrictedRoutesUseShorterPaths(t *testing.T) {
	// Lifting the tree restriction restores crosslink shortcuts: unicast
	// latency on the crosslinked fat tree drops.
	lat := func(unrestricted bool) des.Time {
		g := topology.FatTreeish(2, 1, true) // root, 2 spines + crosslink
		b := newBed(t, g, network.Config{}, Config{UnrestrictedRoutes: unrestricted})
		hosts := g.Hosts()
		if err := b.sys.SendUnicast(hosts[0], hosts[1], 100); err != nil {
			t.Fatal(err)
		}
		b.k.Run(0)
		return b.byHost[hosts[1]][0].At
	}
	free := lat(true)
	restricted := lat(false)
	if free >= restricted {
		t.Fatalf("crosslink shortcut did not help: free=%d restricted=%d", free, restricted)
	}
}

func TestFigure3DeadlockWithUnrestrictedRoutes(t *testing.T) {
	// The negative control behind scheme A's route restriction: with
	// unrestricted routes, a blocked multicast holding an IDLE-filled
	// branch and a unicast crossing it can deadlock (Figure 3).  We build
	// heavy crossing traffic on a crosslinked topology and require only
	// that the restricted variant never stalls; the unrestricted one is
	// allowed to (and typically does under this pattern).
	run := func(unrestricted bool) (stalled bool, delivered int) {
		g := topology.FatTreeish(4, 2, true)
		b := newBed(t, g, network.Config{StopMark: 8, GoMark: 4},
			Config{UnrestrictedRoutes: unrestricted})
		hosts := g.Hosts()
		b.addGroup(t, 1, []topology.NodeID{hosts[0], hosts[3], hosts[5], hosts[6]})
		b.addGroup(t, 2, []topology.NodeID{hosts[1], hosts[2], hosts[4], hosts[7]})
		for i := 0; i < 3; i++ {
			b.sys.SendMulticast(hosts[0], 1, 600)
			b.sys.SendMulticast(hosts[1], 2, 600)
			for j := 0; j < len(hosts); j++ {
				b.sys.SendUnicast(hosts[j], hosts[(j+3)%len(hosts)], 400)
			}
		}
		b.k.Run(400_000)
		total := 0
		for _, ds := range b.byHost {
			total += len(ds)
		}
		return b.sys.F.Stalled(5_000), total
	}
	stalledRestricted, deliveredRestricted := run(false)
	if stalledRestricted {
		t.Fatal("tree-restricted scheme A stalled")
	}
	wantDeliveries := 3 * (3 + 3 + 8) // per round: 3+3 mc copies, 8 unicasts
	if deliveredRestricted != wantDeliveries {
		t.Fatalf("restricted run delivered %d, want %d", deliveredRestricted, wantDeliveries)
	}
}
