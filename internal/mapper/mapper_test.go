package mapper

import (
	"testing"
	"testing/quick"

	"wormlan/internal/topology"
	"wormlan/internal/updown"
)

func TestConvergesToLowestRootBFSLevels(t *testing.T) {
	for name, g := range map[string]*topology.Graph{
		"torus":      topology.Torus(4, 4, 1, 1),
		"shufflenet": topology.BidirShufflenet(2, 3, 1000),
		"myrinet4":   topology.Myrinet4(),
		"ring":       topology.Ring(7, 1),
		"fattree":    topology.FatTreeish(4, 2, true),
	} {
		t.Run(name, func(t *testing.T) {
			r, err := Run(g, nil)
			if err != nil {
				t.Fatal(err)
			}
			if err := r.Verify(g, nil); err != nil {
				t.Fatal(err)
			}
			if r.Root != g.Switches()[0] {
				t.Fatalf("root = %d, want lowest switch %d", r.Root, g.Switches()[0])
			}
			// Levels must equal BFS distances: compare against the
			// centralized computation used by the routing layer.
			ud, err := updown.New(g, r.Root)
			if err != nil {
				t.Fatal(err)
			}
			for _, sw := range g.Switches() {
				if r.Level[sw] != ud.Level[sw] {
					t.Fatalf("switch %d: mapper level %d, BFS level %d",
						sw, r.Level[sw], ud.Level[sw])
				}
			}
			if r.Messages == 0 {
				t.Fatal("no messages exchanged")
			}
		})
	}
}

func TestConvergenceTimeScalesWithDelay(t *testing.T) {
	fast, err := Run(topology.Ring(6, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Run(topology.Ring(6, 500), nil)
	if err != nil {
		t.Fatal(err)
	}
	if slow.ConvergedAt < 100*fast.ConvergedAt {
		t.Fatalf("convergence %d vs %d did not scale with link delay",
			fast.ConvergedAt, slow.ConvergedAt)
	}
}

func TestRemapAfterLinkFailure(t *testing.T) {
	// Fail one ring link: the map must route the tree the long way round.
	g := topology.Ring(6, 1)
	sws := g.Switches()
	var failPort topology.PortID = topology.NoPort
	for pi, p := range g.Node(sws[0]).Ports {
		if p.Wired() && p.Peer == sws[1] {
			failPort = topology.PortID(pi)
		}
	}
	failed := map[LinkID]bool{{sws[0], failPort}: true}
	r, err := Run(g, failed)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Verify(g, failed); err != nil {
		t.Fatal(err)
	}
	// s1 can now only be reached the long way: level 5.
	if r.Level[sws[1]] != 5 {
		t.Fatalf("level of s1 after failure = %d, want 5", r.Level[sws[1]])
	}
	// The healthy map reaches it directly.
	healthy, err := Run(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if healthy.Level[sws[1]] != 1 {
		t.Fatalf("healthy level of s1 = %d", healthy.Level[sws[1]])
	}
}

func TestDisconnectionDetected(t *testing.T) {
	// Fail both links of a line's middle: the protocol must report the
	// partition instead of returning a bogus tree.
	g := topology.Line(3, 1)
	sws := g.Switches()
	failed := map[LinkID]bool{}
	for pi, p := range g.Node(sws[1]).Ports {
		if p.Wired() && g.Node(p.Peer).Kind == topology.Switch {
			failed[LinkID{sws[1], topology.PortID(pi)}] = true
		}
	}
	if _, err := Run(g, failed); err == nil {
		t.Fatal("partitioned topology produced a map")
	}
}

func TestFailureSpecifiedFromEitherEnd(t *testing.T) {
	g := topology.Ring(4, 1)
	sws := g.Switches()
	// Find the directed link s0 -> s1 and fail it from s1's side.
	var reversePort topology.PortID = topology.NoPort
	for pi, p := range g.Node(sws[1]).Ports {
		if p.Wired() && p.Peer == sws[0] {
			reversePort = topology.PortID(pi)
		}
	}
	r, err := Run(g, map[LinkID]bool{{sws[1], reversePort}: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.Level[sws[1]] != 3 {
		t.Fatalf("level of s1 = %d, want 3 (the long way)", r.Level[sws[1]])
	}
}

func TestMapperMatchesCentralizedOnRandomTopologies(t *testing.T) {
	err := quick.Check(func(seed uint64, nRaw, dRaw uint8) bool {
		n := int(nRaw%20) + 3
		d := int(dRaw%3) + 2
		g := topology.Random(n, d, seed)
		r, err := Run(g, nil)
		if err != nil {
			return false
		}
		if r.Verify(g, nil) != nil {
			return false
		}
		ud, err := updown.New(g, r.Root)
		if err != nil {
			return false
		}
		for _, sw := range g.Switches() {
			if r.Level[sw] != ud.Level[sw] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMapTorus8x8(b *testing.B) {
	g := topology.Torus(8, 8, 1, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(g, nil); err != nil {
			b.Fatal(err)
		}
	}
}
