// Package mapper simulates the distributed "mapping" algorithm that
// Autonet [SBB+91] and Myrinet run in the background to compute the
// up/down spanning tree (Section 2 of the paper: "the 'up'/'down' state of
// a link is relative to a spanning tree computed in the background by a
// distributed algorithm").
//
// The algorithm is an asynchronous distributed breadth-first search with
// root election: every switch initially claims to be the root; switches
// exchange (root, distance) claims with their neighbours over the real
// link delays; a switch adopts a claim that names a lower root ID, or the
// same root at a shorter distance, and re-propagates.  The protocol
// converges to a spanning tree rooted at the lowest-numbered switch.
// The package also recomputes the map after link failures — the scenario
// the paper raises when it calls crosslinks "back-ups in case of failure".
package mapper

import (
	"fmt"

	"wormlan/internal/des"
	"wormlan/internal/topology"
)

// claim is one mapping message: "my best known root is Root, and I sit
// Dist hops from it".
type claim struct {
	Root topology.NodeID
	Dist int
}

// better reports whether c should replace cur.
func (c claim) better(cur claim) bool {
	if c.Root != cur.Root {
		return c.Root < cur.Root
	}
	return c.Dist < cur.Dist
}

// LinkID identifies a directed switch-to-switch link for failure
// injection.
type LinkID struct {
	Node topology.NodeID
	Port topology.PortID
}

// Result is the converged map.
type Result struct {
	Root   topology.NodeID
	Parent []topology.NodeID // per node; None for the root and for hosts
	Level  []int             // per node; -1 for hosts

	// Messages is the total number of claims exchanged; ConvergedAt is
	// the simulation time of the last state change.
	Messages    int
	ConvergedAt des.Time

	// Unmapped lists live switches partitioned away from the elected
	// root's component (RunSurviving only; each entry carries the root its
	// component converged to).  Their Level stays -1.
	Unmapped []Stranded
}

// Stranded is a live switch cut off from the elected root.
type Stranded struct {
	Switch topology.NodeID
	Root   topology.NodeID
}

// node is the per-switch protocol state.
type node struct {
	id     topology.NodeID
	best   claim
	parent topology.NodeID
	pport  topology.PortID // port toward parent
}

// Run executes the mapping protocol on a fresh kernel over the switches of
// g, treating links in failed as unusable (both directions fail together;
// passing either direction suffices).  It returns an error if the
// surviving topology is disconnected.
func Run(g *topology.Graph, failed map[LinkID]bool) (*Result, error) {
	res, err := RunSurviving(g, failed, nil)
	if err != nil {
		return nil, err
	}
	if len(res.Unmapped) > 0 {
		return nil, fmt.Errorf("mapper: switch %d converged to root %d, not %d (disconnected?)",
			res.Unmapped[0].Switch, res.Unmapped[0].Root, res.Root)
	}
	return res, nil
}

// RunSurviving runs the mapping protocol over the surviving subgraph:
// switches in deadSwitch neither claim nor relay (a crashed switch is
// silent on every port), and failed links carry no claims.  Unlike Run it
// tolerates partitions — the returned map is rooted in the component of
// the lowest-numbered live switch, and live switches stranded in other
// components are reported in Result.Unmapped with Level -1 rather than
// failing the whole mapping.
func RunSurviving(g *topology.Graph, failed map[LinkID]bool,
	deadSwitch map[topology.NodeID]bool) (*Result, error) {
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("mapper: %w", err)
	}
	k := des.NewKernel()
	res := &Result{
		Parent: make([]topology.NodeID, len(g.Nodes)),
		Level:  make([]int, len(g.Nodes)),
	}
	nodes := make([]*node, len(g.Nodes))
	for i := range g.Nodes {
		res.Parent[i] = topology.None
		res.Level[i] = -1
		if g.Nodes[i].Kind == topology.Switch && !deadSwitch[topology.NodeID(i)] {
			nodes[i] = &node{
				id:     topology.NodeID(i),
				best:   claim{Root: topology.NodeID(i), Dist: 0},
				parent: topology.None,
				pport:  topology.NoPort,
			}
		}
	}
	linkDown := func(n topology.NodeID, p topology.PortID) bool {
		if failed == nil {
			return false
		}
		if failed[LinkID{n, p}] {
			return true
		}
		peer := g.Node(n).Ports[p]
		return failed[LinkID{peer.Peer, peer.PeerPort}]
	}

	// send schedules delivery of a claim across a link after its delay.
	var deliver func(to topology.NodeID, viaPort topology.PortID, c claim)
	send := func(from *node) {
		for pi, p := range g.Node(from.id).Ports {
			if !p.Wired() || g.Node(p.Peer).Kind != topology.Switch {
				continue
			}
			if nodes[p.Peer] == nil { // crashed switch: claims fall on deaf ears
				continue
			}
			if linkDown(from.id, topology.PortID(pi)) {
				continue
			}
			res.Messages++
			peer, peerPort := p.Peer, p.PeerPort
			c := claim{Root: from.best.Root, Dist: from.best.Dist + 1}
			k.After(p.Delay, func() { deliver(peer, peerPort, c) })
		}
	}
	deliver = func(to topology.NodeID, viaPort topology.PortID, c claim) {
		n := nodes[to]
		if !c.better(n.best) {
			return
		}
		n.best = c
		n.parent = g.Node(to).Ports[viaPort].Peer
		n.pport = viaPort
		res.ConvergedAt = k.Now()
		send(n)
	}

	// Kick off: everyone announces its own claim.
	for _, n := range nodes {
		if n != nil {
			send(n)
		}
	}
	if err := k.Run(0); err != nil {
		return nil, err
	}

	// Extract and validate the converged tree.
	root := topology.None
	for _, n := range nodes {
		if n == nil {
			continue
		}
		if root == topology.None || n.best.Root < root {
			root = n.best.Root
		}
	}
	if root == topology.None {
		return nil, fmt.Errorf("mapper: no surviving switches")
	}
	for _, n := range nodes {
		if n == nil {
			continue
		}
		if n.best.Root != root {
			// A live switch in another partition: mappable locally but cut
			// off from the elected root.  Leave it at Level -1.
			res.Unmapped = append(res.Unmapped, Stranded{Switch: n.id, Root: n.best.Root})
			continue
		}
		res.Parent[n.id] = n.parent
		res.Level[n.id] = n.best.Dist
	}
	res.Root = root
	return res, nil
}

// Verify checks the structural invariants of the converged map: a single
// root at level 0, every other switch with a parent one level up across a
// live link.
func (r *Result) Verify(g *topology.Graph, failed map[LinkID]bool) error {
	if r.Level[r.Root] != 0 || r.Parent[r.Root] != topology.None {
		return fmt.Errorf("mapper: root %d has level %d / parent %d",
			r.Root, r.Level[r.Root], r.Parent[r.Root])
	}
	for _, sw := range g.Switches() {
		if sw == r.Root {
			continue
		}
		if r.Level[sw] < 0 {
			continue // dead or stranded switch: not part of this map
		}
		p := r.Parent[sw]
		if p == topology.None {
			return fmt.Errorf("mapper: switch %d has no parent", sw)
		}
		if r.Level[sw] != r.Level[p]+1 {
			return fmt.Errorf("mapper: switch %d level %d, parent %d level %d",
				sw, r.Level[sw], p, r.Level[p])
		}
		wired := false
		for pi, port := range g.Node(sw).Ports {
			if port.Wired() && port.Peer == p {
				if failed == nil || (!failed[LinkID{sw, topology.PortID(pi)}] &&
					!failed[LinkID{p, port.PeerPort}]) {
					wired = true
				}
			}
		}
		if !wired {
			return fmt.Errorf("mapper: switch %d's parent %d not reachable over a live link", sw, p)
		}
	}
	return nil
}
