// Package multicast builds the predefined structures over which host-
// adapter multicasting operates (Sections 4-6 of the paper): the
// Hamiltonian circuit and the rooted tree, both formed on the complete
// host-connectivity graph whose edge weights are unicast path hop counts
// (Figure 8).
//
// Deadlock prevention shapes both structures:
//
//   - Circuit: members are ordered by increasing host ID; a multicast
//     starting at an arbitrary member ascends the ring, reverses exactly
//     once when it wraps past the highest ID, and switches from buffer
//     class 1 to buffer class 2 at the reversal (Figure 7).
//   - Rooted tree: the root is the lowest ID and children always have
//     higher IDs than their parent (Figure 9), so a root-started multicast
//     only ever propagates toward higher IDs and needs one buffer class.
//     The flood variant (start anywhere, forward to all tree neighbours
//     except the arrival link) climbs with class 1 and descends with
//     class 2.
package multicast

import (
	"fmt"
	"sort"

	"wormlan/internal/topology"
)

// Group is a multicast group: a set of member hosts.
type Group struct {
	ID      int
	Members []topology.NodeID // always sorted ascending
}

// NewGroup returns a group with the members sorted by ID.  Duplicate
// members are rejected.
func NewGroup(id int, members []topology.NodeID) (*Group, error) {
	if len(members) < 2 {
		return nil, fmt.Errorf("multicast: group %d needs at least 2 members", id)
	}
	ms := append([]topology.NodeID(nil), members...)
	sort.Slice(ms, func(i, j int) bool { return ms[i] < ms[j] })
	for i := 1; i < len(ms); i++ {
		if ms[i] == ms[i-1] {
			return nil, fmt.Errorf("multicast: group %d has duplicate member %d", id, ms[i])
		}
	}
	return &Group{ID: id, Members: ms}, nil
}

// Contains reports whether h is a member.
func (g *Group) Contains(h topology.NodeID) bool {
	i := sort.Search(len(g.Members), func(i int) bool { return g.Members[i] >= h })
	return i < len(g.Members) && g.Members[i] == h
}

// Lowest returns the lowest-ID member (the serializer for total ordering
// and the root of the rooted tree).
func (g *Group) Lowest() topology.NodeID { return g.Members[0] }

// Circuit is a Hamiltonian circuit over the group members.
type Circuit struct {
	Group *Group
	// Order is the circuit visiting order starting at the lowest ID.  For
	// the canonical ID-ordered circuit this equals Group.Members.
	Order []topology.NodeID

	next map[topology.NodeID]topology.NodeID
	pos  map[topology.NodeID]int
}

// NewCircuitByID builds the paper's canonical circuit: members in
// ascending ID order, wrapping from highest back to lowest.  Exactly one
// ID reversal occurs per lap, so the two-buffer-class rule applies.
func NewCircuitByID(g *Group) *Circuit {
	return newCircuit(g, append([]topology.NodeID(nil), g.Members...))
}

// NewCircuitGreedy builds a shorter circuit with a nearest-neighbour
// heuristic over the host-connectivity hop metric, starting at the lowest
// ID.  Such circuits can have more than one ID reversal; Reversals()
// reports how many buffer classes deadlock-free operation would need
// (reversals + 1).  The paper uses the ID-ordered circuit; this variant
// exists to quantify the path-length cost of the ID-ordering rule.
func NewCircuitGreedy(topo *topology.Graph, g *Group) *Circuit {
	order := []topology.NodeID{g.Lowest()}
	used := map[topology.NodeID]bool{g.Lowest(): true}
	for len(order) < len(g.Members) {
		cur := order[len(order)-1]
		best := topology.None
		bestHops := 0
		for _, m := range g.Members {
			if used[m] {
				continue
			}
			h := topo.SwitchHops(cur, m)
			if best == topology.None || h < bestHops || (h == bestHops && m < best) {
				best, bestHops = m, h
			}
		}
		order = append(order, best)
		used[best] = true
	}
	return newCircuit(g, order)
}

func newCircuit(g *Group, order []topology.NodeID) *Circuit {
	c := &Circuit{Group: g, Order: order,
		next: make(map[topology.NodeID]topology.NodeID, len(order)),
		pos:  make(map[topology.NodeID]int, len(order))}
	for i, h := range order {
		c.next[h] = order[(i+1)%len(order)]
		c.pos[h] = i
	}
	return c
}

// Successor returns the next host on the circuit after h.
func (c *Circuit) Successor(h topology.NodeID) (topology.NodeID, error) {
	n, ok := c.next[h]
	if !ok {
		return topology.None, fmt.Errorf("multicast: host %d not in group %d", h, c.Group.ID)
	}
	return n, nil
}

// Len returns the number of members on the circuit.
func (c *Circuit) Len() int { return len(c.Order) }

// HopLen returns the total switch-hop length of the circuit over the given
// topology — the metric of Figure 8.
func (c *Circuit) HopLen(topo *topology.Graph) int {
	total := 0
	for i, h := range c.Order {
		total += topo.SwitchHops(h, c.Order[(i+1)%len(c.Order)])
	}
	return total
}

// Reversals returns the number of ID-order reversals along one lap of the
// circuit.  The ID-ordered circuit always has exactly 1 (the wrap); each
// additional reversal would require one more buffer class to stay
// deadlock-free.
func (c *Circuit) Reversals() int {
	n := 0
	for i, h := range c.Order {
		if c.Order[(i+1)%len(c.Order)] < h {
			n++
		}
	}
	return n
}

// Tree is a rooted multicast tree over the group members, ID-ordered from
// the root down (every child has a higher ID than its parent).
type Tree struct {
	Group *Group
	Root  topology.NodeID

	parent   map[topology.NodeID]topology.NodeID
	children map[topology.NodeID][]topology.NodeID
}

// NewTreeByID builds a balanced arity-k tree over the ID-sorted members
// using the heap layout: the member at sorted position i has children at
// positions k*i+1 .. k*i+k.  Positions increase with IDs, so the child-ID
// rule holds by construction.
func NewTreeByID(g *Group, arity int) (*Tree, error) {
	if arity < 1 {
		return nil, fmt.Errorf("multicast: tree arity %d < 1", arity)
	}
	t := &Tree{Group: g, Root: g.Lowest(),
		parent:   make(map[topology.NodeID]topology.NodeID, len(g.Members)),
		children: make(map[topology.NodeID][]topology.NodeID, len(g.Members))}
	for i, h := range g.Members {
		for j := 1; j <= arity; j++ {
			ci := arity*i + j
			if ci >= len(g.Members) {
				break
			}
			child := g.Members[ci]
			t.children[h] = append(t.children[h], child)
			t.parent[child] = h
		}
	}
	t.parent[t.Root] = topology.None
	return t, nil
}

// NewTreeGreedy builds an ID-respecting tree that favours short unicast
// paths: members are inserted in ascending ID order, each attaching to the
// already-inserted node with the fewest switch hops that still has fewer
// than arity children.  Children necessarily have higher IDs than parents.
func NewTreeGreedy(topo *topology.Graph, g *Group, arity int) (*Tree, error) {
	if arity < 1 {
		return nil, fmt.Errorf("multicast: tree arity %d < 1", arity)
	}
	t := &Tree{Group: g, Root: g.Lowest(),
		parent:   make(map[topology.NodeID]topology.NodeID, len(g.Members)),
		children: make(map[topology.NodeID][]topology.NodeID, len(g.Members))}
	t.parent[t.Root] = topology.None
	placed := []topology.NodeID{t.Root}
	for _, m := range g.Members[1:] {
		best := topology.None
		bestHops := 0
		for _, p := range placed {
			if len(t.children[p]) >= arity {
				continue
			}
			h := topo.SwitchHops(p, m)
			if best == topology.None || h < bestHops {
				best, bestHops = p, h
			}
		}
		if best == topology.None {
			return nil, fmt.Errorf("multicast: no eligible parent for %d (arity %d too small)", m, arity)
		}
		t.children[best] = append(t.children[best], m)
		t.parent[m] = best
		placed = append(placed, m)
	}
	return t, nil
}

// Children returns the children of h in the tree (nil for leaves).
func (t *Tree) Children(h topology.NodeID) []topology.NodeID { return t.children[h] }

// Parent returns the parent of h, or topology.None for the root.
func (t *Tree) Parent(h topology.NodeID) (topology.NodeID, error) {
	p, ok := t.parent[h]
	if !ok {
		return topology.None, fmt.Errorf("multicast: host %d not in group %d", h, t.Group.ID)
	}
	return p, nil
}

// Neighbours returns the tree-adjacent hosts of h (parent plus children),
// used by the flood variant.
func (t *Tree) Neighbours(h topology.NodeID) []topology.NodeID {
	var out []topology.NodeID
	if p := t.parent[h]; p != topology.None {
		out = append(out, p)
	}
	return append(out, t.children[h]...)
}

// Depth returns the maximum number of forwarding hops from the root.
func (t *Tree) Depth() int {
	var depth func(h topology.NodeID) int
	depth = func(h topology.NodeID) int {
		d := 0
		for _, c := range t.children[h] {
			if cd := 1 + depth(c); cd > d {
				d = cd
			}
		}
		return d
	}
	return depth(t.Root)
}

// Validate checks the structural invariants: every member present exactly
// once, child IDs above parent IDs, single root.
func (t *Tree) Validate() error {
	seen := map[topology.NodeID]bool{}
	var walk func(h topology.NodeID) error
	walk = func(h topology.NodeID) error {
		if seen[h] {
			return fmt.Errorf("multicast: host %d visited twice", h)
		}
		seen[h] = true
		for _, c := range t.children[h] {
			if c <= h {
				return fmt.Errorf("multicast: child %d not above parent %d", c, h)
			}
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.Root); err != nil {
		return err
	}
	if len(seen) != len(t.Group.Members) {
		return fmt.Errorf("multicast: tree covers %d of %d members", len(seen), len(t.Group.Members))
	}
	return nil
}

// WireHops returns the total switch-hop count of all tree edges; the paper
// notes the tree's average hop length per link is below the all-pairs
// average, which is why it achieves higher total throughput (Section 7.1).
func (t *Tree) WireHops(topo *topology.Graph) int {
	total := 0
	// Iterate the (sorted) membership rather than the parent map: the sum
	// itself is order-insensitive, but member order keeps any future
	// instrumentation of this walk deterministic for free.
	for _, c := range t.Group.Members {
		p, err := t.Parent(c)
		if err != nil || p == topology.None {
			continue
		}
		total += topo.SwitchHops(p, c)
	}
	return total
}
