package multicast

import (
	"testing"
	"testing/quick"

	"wormlan/internal/rng"
	"wormlan/internal/topology"
)

func ids(ns ...int) []topology.NodeID {
	out := make([]topology.NodeID, len(ns))
	for i, n := range ns {
		out[i] = topology.NodeID(n)
	}
	return out
}

func TestNewGroupSortsAndValidates(t *testing.T) {
	g, err := NewGroup(1, ids(9, 3, 7))
	if err != nil {
		t.Fatal(err)
	}
	if g.Members[0] != 3 || g.Members[1] != 7 || g.Members[2] != 9 {
		t.Fatalf("members %v", g.Members)
	}
	if g.Lowest() != 3 {
		t.Fatal("Lowest")
	}
	if !g.Contains(7) || g.Contains(8) {
		t.Fatal("Contains")
	}
	if _, err := NewGroup(2, ids(1)); err == nil {
		t.Fatal("singleton group accepted")
	}
	if _, err := NewGroup(3, ids(1, 1, 2)); err == nil {
		t.Fatal("duplicate member accepted")
	}
}

func TestCircuitByID(t *testing.T) {
	g, _ := NewGroup(1, ids(5, 2, 8, 3))
	c := NewCircuitByID(g)
	wantNext := map[int]int{2: 3, 3: 5, 5: 8, 8: 2}
	for from, to := range wantNext {
		got, err := c.Successor(topology.NodeID(from))
		if err != nil {
			t.Fatal(err)
		}
		if got != topology.NodeID(to) {
			t.Fatalf("Successor(%d) = %d, want %d", from, got, to)
		}
	}
	if _, err := c.Successor(99); err == nil {
		t.Fatal("non-member successor")
	}
	if c.Reversals() != 1 {
		t.Fatalf("ID circuit reversals = %d, want 1", c.Reversals())
	}
	if c.Len() != 4 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestCircuitGreedyShorterOrEqual(t *testing.T) {
	topo := topology.Torus(4, 4, 1, 1)
	hosts := topo.Hosts()
	r := rng.New(11, 0)
	for trial := 0; trial < 10; trial++ {
		perm := r.Perm(len(hosts))
		var members []topology.NodeID
		for _, p := range perm[:8] {
			members = append(members, hosts[p])
		}
		g, err := NewGroup(trial, members)
		if err != nil {
			t.Fatal(err)
		}
		byID := NewCircuitByID(g)
		greedy := NewCircuitGreedy(topo, g)
		if greedy.HopLen(topo) > byID.HopLen(topo) {
			t.Fatalf("trial %d: greedy circuit %d hops > ID circuit %d hops",
				trial, greedy.HopLen(topo), byID.HopLen(topo))
		}
		// Both circuits must visit every member exactly once.
		for _, c := range []*Circuit{byID, greedy} {
			seen := map[topology.NodeID]bool{}
			cur := g.Lowest()
			for i := 0; i < c.Len(); i++ {
				if seen[cur] {
					t.Fatal("circuit revisits a member")
				}
				seen[cur] = true
				cur, _ = c.Successor(cur)
			}
			if cur != g.Lowest() {
				t.Fatal("circuit does not close")
			}
		}
		if greedy.Reversals() < 1 {
			t.Fatal("closed circuit must have at least one reversal")
		}
	}
}

func TestTreeByIDHeapLayout(t *testing.T) {
	g, _ := NewGroup(1, ids(10, 36, 12, 49, 19, 23, 27, 52, 41))
	tr, err := NewTreeByID(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Root != 10 {
		t.Fatalf("root = %d", tr.Root)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Heap layout over sorted members [10 12 19 23 27 36 41 49 52]:
	// children of 10 are 12, 19.
	c := tr.Children(10)
	if len(c) != 2 || c[0] != 12 || c[1] != 19 {
		t.Fatalf("children of root: %v", c)
	}
	p, err := tr.Parent(52)
	if err != nil || p != 23 {
		t.Fatalf("parent of 52 = %d, %v", p, err)
	}
	if _, err := tr.Parent(99); err == nil {
		t.Fatal("non-member parent")
	}
	if d := tr.Depth(); d != 3 {
		t.Fatalf("depth = %d, want 3", d)
	}
}

func TestTreeByIDArity(t *testing.T) {
	g, _ := NewGroup(1, ids(1, 2, 3, 4, 5, 6, 7))
	if _, err := NewTreeByID(g, 0); err == nil {
		t.Fatal("arity 0 accepted")
	}
	tr, err := NewTreeByID(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tr.Children(1)) != 3 {
		t.Fatalf("root children %v", tr.Children(1))
	}
	// Chain (arity 1) degenerates to the Hamiltonian order.
	chain, err := NewTreeByID(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if chain.Depth() != 6 {
		t.Fatalf("chain depth = %d", chain.Depth())
	}
}

func TestTreeGreedyValidAndCheaper(t *testing.T) {
	topo := topology.Torus(4, 4, 1, 1)
	hosts := topo.Hosts()
	var members []topology.NodeID
	for i := 0; i < 10; i++ {
		members = append(members, hosts[i*3%len(hosts)])
	}
	g, err := NewGroup(1, members)
	if err != nil {
		t.Fatal(err)
	}
	byID, _ := NewTreeByID(g, 2)
	greedy, err := NewTreeGreedy(topo, g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := greedy.Validate(); err != nil {
		t.Fatal(err)
	}
	if greedy.WireHops(topo) > byID.WireHops(topo) {
		t.Fatalf("greedy tree %d hops > heap tree %d hops",
			greedy.WireHops(topo), byID.WireHops(topo))
	}
}

func TestTreeNeighbours(t *testing.T) {
	g, _ := NewGroup(1, ids(1, 2, 3, 4, 5))
	tr, _ := NewTreeByID(g, 2)
	// sorted [1 2 3 4 5]: children(1)={2,3}, children(2)={4,5}
	n := tr.Neighbours(2)
	if len(n) != 3 || n[0] != 1 || n[1] != 4 || n[2] != 5 {
		t.Fatalf("neighbours of 2: %v", n)
	}
	rootN := tr.Neighbours(1)
	if len(rootN) != 2 {
		t.Fatalf("root neighbours: %v", rootN)
	}
}

func TestTreeInvariantProperty(t *testing.T) {
	// Property: for random member sets and arities, NewTreeByID always
	// produces a valid ID-ordered tree covering all members.
	err := quick.Check(func(seed uint64, sizeRaw, arityRaw uint8) bool {
		r := rng.New(seed, 3)
		size := int(sizeRaw%30) + 2
		arity := int(arityRaw%4) + 1
		seen := map[int]bool{}
		var members []topology.NodeID
		for len(members) < size {
			v := r.Intn(1000)
			if !seen[v] {
				seen[v] = true
				members = append(members, topology.NodeID(v))
			}
		}
		g, err := NewGroup(1, members)
		if err != nil {
			return false
		}
		tr, err := NewTreeByID(g, arity)
		if err != nil {
			return false
		}
		return tr.Validate() == nil
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCircuitHopLenExample(t *testing.T) {
	// Figure 8's shape: a 4-host group on a line; the ID circuit
	// 0-1-2-3-0 has hop length 1+1+1+3 = 6.
	topo := topology.Line(4, 1)
	hosts := topo.Hosts()
	g, _ := NewGroup(1, hosts)
	c := NewCircuitByID(g)
	if got := c.HopLen(topo); got != 6 {
		t.Fatalf("HopLen = %d, want 6", got)
	}
}
