package vcroute

import (
	"testing"

	"wormlan/internal/route"
	"wormlan/internal/topology"
)

// walkTorus follows a VC-encoded route through the graph, checking every
// byte names a wired port and returning the lanes used per hop alongside
// whether each hop crossed its ring's wrap edge.
func walkTorus(t *testing.T, g *topology.Graph, geo *topology.TorusGeom,
	src, dst topology.NodeID) (lanes []int, wraps []bool) {
	t.Helper()
	node := g.Node(src).Ports[0].Peer // attach switch
	tab, err := TorusMinimal(g, geo, 2)
	if err != nil {
		t.Fatalf("TorusMinimal: %v", err)
	}
	rt := tab.Lookup(src, dst)
	if len(rt.Ports) == 0 {
		t.Fatalf("no route %d->%d", src, dst)
	}
	// Coordinates per switch, for wrap detection.
	coord := map[topology.NodeID][2]int{}
	for r := range geo.Sw {
		for c := range geo.Sw[r] {
			coord[geo.Sw[r][c]] = [2]int{r, c}
		}
	}
	for hop, pb := range rt.Ports {
		p, vc := route.DecodeVCPort(byte(pb))
		if rt.Switches[hop] != node {
			t.Fatalf("route %d->%d hop %d: recorded switch %d, walk is at %d",
				src, dst, hop, rt.Switches[hop], node)
		}
		ports := g.Node(node).Ports
		if p >= len(ports) || !ports[p].Wired() {
			t.Fatalf("route %d->%d hop %d: port %d not wired at switch %d", src, dst, hop, p, node)
		}
		next := ports[p].Peer
		lanes = append(lanes, vc)
		wrapped := false
		if nc, ok := coord[next]; ok {
			cc := coord[node]
			if cc[0] == nc[0] { // x hop
				wrapped = (cc[1] == geo.Cols-1 && nc[1] == 0) || (cc[1] == 0 && nc[1] == geo.Cols-1)
			} else {
				wrapped = (cc[0] == geo.Rows-1 && nc[0] == 0) || (cc[0] == 0 && nc[0] == geo.Rows-1)
			}
		}
		wraps = append(wraps, wrapped)
		node = next
	}
	if node != dst {
		t.Fatalf("route %d->%d ends at node %d", src, dst, node)
	}
	return lanes, wraps
}

// TestTorusMinimalRoutesReachAndStayMinimal walks every host pair of a
// 4x4 torus: routes terminate at the destination and take exactly the
// minimal switch-hop count (ring distance x + ring distance y).
func TestTorusMinimalRoutesReachAndStayMinimal(t *testing.T) {
	g, geo := topology.TorusWithGeom(4, 4, 1, 2)
	tab, err := TorusMinimal(g, geo, 2)
	if err != nil {
		t.Fatalf("TorusMinimal: %v", err)
	}
	hosts := g.Hosts()
	at := map[topology.NodeID][2]int{}
	for r := range geo.Hosts {
		for c := range geo.Hosts[r] {
			for _, id := range geo.Hosts[r][c] {
				at[id] = [2]int{r, c}
			}
		}
	}
	ringDist := func(a, b, n int) int {
		d := (b - a + n) % n
		if n-d < d {
			d = n - d
		}
		return d
	}
	for _, src := range hosts {
		for _, dst := range hosts {
			if src == dst {
				continue
			}
			walkTorus(t, g, geo, src, dst)
			sc, dc := at[src], at[dst]
			want := ringDist(sc[1], dc[1], geo.Cols) + ringDist(sc[0], dc[0], geo.Rows) + 1
			if got := tab.Lookup(src, dst).Hops(); got != want {
				t.Errorf("%d->%d: %d hops, minimal is %d", src, dst, got, want)
			}
		}
	}
}

// TestTorusDatelineDiscipline checks the deadlock-freedom invariants on
// every route of a 5x3 torus (odd sizes exercise both directions and
// asymmetric ties): lane 1 is entered exactly after a wrap crossing, a
// wrap edge is never traversed on lane 1, and the host hop rides lane 0.
func TestTorusDatelineDiscipline(t *testing.T) {
	g, geo := topology.TorusWithGeom(5, 3, 1, 1)
	hosts := g.Hosts()
	sawLane1 := false
	for _, src := range hosts {
		for _, dst := range hosts {
			if src == dst {
				continue
			}
			lanes, wraps := walkTorus(t, g, geo, src, dst)
			last := len(lanes) - 1
			if lanes[last] != 0 {
				t.Fatalf("%d->%d: host hop on lane %d", src, dst, lanes[last])
			}
			crossed := false
			for hop := 0; hop < last; hop++ {
				if wraps[hop] && lanes[hop] == 1 {
					t.Fatalf("%d->%d hop %d: wrap edge traversed on lane 1", src, dst, hop)
				}
				// Lane is 1 iff this dimension's wrap was already crossed.
				want := 0
				if crossed {
					want = 1
				}
				// Dimension change resets the lane; detect it by a lane-0
				// hop after a crossing, which must be a y hop following
				// x-dimension completion.
				if lanes[hop] != want {
					if !(crossed && lanes[hop] == 0) {
						t.Fatalf("%d->%d hop %d: lane %d, want %d", src, dst, hop, lanes[hop], want)
					}
					crossed = false
				}
				if lanes[hop] == 1 {
					sawLane1 = true
				}
				if wraps[hop] {
					crossed = true
				}
			}
		}
	}
	if !sawLane1 {
		t.Fatal("no route ever used lane 1: dateline switching untested")
	}
}

// TestTorusMinimalNeedsTwoLanes: the scheme refuses nvc < 2.
func TestTorusMinimalNeedsTwoLanes(t *testing.T) {
	g, geo := topology.TorusWithGeom(3, 3, 1, 1)
	if _, err := TorusMinimal(g, geo, 1); err == nil {
		t.Fatal("TorusMinimal accepted a single lane")
	}
	if _, err := TorusMinimal(g, nil, 2); err == nil {
		t.Fatal("TorusMinimal accepted a nil geometry")
	}
}

// TestFullMeshRoutes: every pair routes in at most two switch hops plus
// host delivery, through a port actually wired to the destination's
// attach switch.
func TestFullMeshRoutes(t *testing.T) {
	g := topology.FullMesh(6, 2, 1)
	tab, err := FullMesh(g)
	if err != nil {
		t.Fatalf("FullMesh: %v", err)
	}
	hosts := g.Hosts()
	for _, src := range hosts {
		for _, dst := range hosts {
			if src == dst {
				continue
			}
			rt := tab.Lookup(src, dst)
			if rt.Hops() > 2 {
				t.Fatalf("%d->%d: %d hops on a full mesh", src, dst, rt.Hops())
			}
			// Walk it.
			node := g.Node(src).Ports[0].Peer
			for hop, pb := range rt.Ports {
				ports := g.Node(node).Ports
				if int(pb) >= len(ports) || !ports[pb].Wired() {
					t.Fatalf("%d->%d hop %d: bad port %d at %d", src, dst, hop, pb, node)
				}
				node = ports[pb].Peer
			}
			if node != dst {
				t.Fatalf("%d->%d: route ends at %d", src, dst, node)
			}
		}
	}
}

// TestFullMeshRejectsNonMesh: a torus is not a full mesh; distant switch
// pairs must be reported, not silently misrouted.
func TestFullMeshRejectsNonMesh(t *testing.T) {
	g := topology.Torus(4, 4, 1, 1)
	if _, err := FullMesh(g); err == nil {
		t.Fatal("FullMesh accepted a torus")
	}
}
