package vcroute

// Additional routing schemes over the updown.Table interface: the Duato
// adaptive marker table (paired with network.AdaptiveTable on the fabric
// side), spine-deterministic Clos direct routing, forward-column shufflenet
// routing with wrap-count lanes, and failure-aware ("surviving") variants
// of every static scheme so topology-change recovery can rebuild them over
// the survivors.

import (
	"fmt"
	"sort"

	"wormlan/internal/route"
	"wormlan/internal/topology"
	"wormlan/internal/updown"
)

// Adaptive builds the source-route table for Duato-style adaptive routing:
// every route is the single route.AdaptivePort marker byte, which a fabric
// with a network.AdaptiveTable installed re-decides per hop from local
// lane occupancy (adaptive lanes >= 1, lane-0 up*/down* escape).  Pairs
// the up/down labelling cannot reach get empty routes, so senders give up
// at the adapter instead of injecting doomed worms.
func Adaptive(g *topology.Graph, ud *updown.Routing) (*updown.Table, error) {
	hosts := g.Hosts()
	routes := make([][]updown.Route, len(hosts))
	for i, src := range hosts {
		routes[i] = make([]updown.Route, len(hosts))
		srcOK := ud.Reachable(src)
		sw, _ := g.HostAttachment(src)
		for j, dst := range hosts {
			if i == j || !srcOK || !ud.Reachable(dst) {
				continue
			}
			routes[i][j] = updown.Route{Src: src, Dst: dst,
				Ports:    []topology.PortID{route.AdaptivePort},
				Switches: []topology.NodeID{sw}}
		}
	}
	return updown.NewCustomTable(hosts, routes)
}

// hostCut reports whether h's attachment link or switch is dead.
func hostCut(g *topology.Graph, fail *updown.Failures, h topology.NodeID) bool {
	if fail == nil {
		return false
	}
	sw, _ := g.HostAttachment(h)
	p := g.Node(h).Ports[0]
	return fail.SwitchDead(sw) || fail.LinkDead(g, h, topology.PortID(0)) ||
		fail.LinkDead(g, sw, p.PeerPort)
}

// routeDead reports whether rt crosses a failed switch or link.  vcEncoded
// selects whether the route bytes carry lane ids (route.DecodeVCPort) or
// are raw port numbers.
func routeDead(g *topology.Graph, fail *updown.Failures, rt updown.Route, vcEncoded bool) bool {
	if fail == nil {
		return false
	}
	for i, pb := range rt.Ports {
		sw := rt.Switches[i]
		if fail.SwitchDead(sw) {
			return true
		}
		port := topology.PortID(pb)
		if vcEncoded {
			p, _ := route.DecodeVCPort(byte(pb))
			port = topology.PortID(p)
		}
		if fail.LinkDead(g, sw, port) {
			return true
		}
	}
	return false
}

// TorusMinimalSurviving is TorusMinimal restricted to the surviving
// topology: pairs whose (unique) dimension-order route crosses a failed
// link or switch get empty routes.  Minimal torus routing has no legal
// detour — the dateline argument fixes the path — so recovery here is
// pruning, with drops counted at the sender.
func TorusMinimalSurviving(g *topology.Graph, geo *topology.TorusGeom, nvc int, fail *updown.Failures) (*updown.Table, error) {
	if geo == nil {
		return nil, fmt.Errorf("vcroute: torus geometry required (build with topology.TorusWithGeom)")
	}
	if nvc < 2 {
		return nil, fmt.Errorf("vcroute: dateline routing needs >= 2 virtual channels, have %d", nvc)
	}
	hosts := g.Hosts()
	type coord struct{ r, c, h int }
	at := make(map[topology.NodeID]coord, len(hosts))
	for r := range geo.Hosts {
		for c := range geo.Hosts[r] {
			for h, id := range geo.Hosts[r][c] {
				at[id] = coord{r, c, h}
			}
		}
	}
	routes := make([][]updown.Route, len(hosts))
	for i, src := range hosts {
		routes[i] = make([]updown.Route, len(hosts))
		sc, ok := at[src]
		if !ok {
			return nil, fmt.Errorf("vcroute: host %d not in torus geometry", src)
		}
		srcCut := hostCut(g, fail, src)
		for j, dst := range hosts {
			if i == j || srcCut || hostCut(g, fail, dst) {
				continue
			}
			dc := at[dst]
			rt, err := torusRoute(geo, src, dst, sc.r, sc.c, dc.r, dc.c, dc.h)
			if err != nil {
				return nil, err
			}
			if routeDead(g, fail, rt, true) {
				continue
			}
			routes[i][j] = rt
		}
	}
	return updown.NewCustomTable(hosts, routes)
}

// FullMeshSurviving is FullMesh restricted to the surviving topology:
// pairs whose direct leaf-to-leaf cable (or endpoint switch) died get
// empty routes.  The scheme has no multi-hop detours by construction, so
// recovery is pruning.
func FullMeshSurviving(g *topology.Graph, fail *updown.Failures) (*updown.Table, error) {
	hosts := g.Hosts()
	routes := make([][]updown.Route, len(hosts))
	for i, src := range hosts {
		routes[i] = make([]updown.Route, len(hosts))
		sa, _ := hostAttach(g, src)
		srcCut := hostCut(g, fail, src)
		for j, dst := range hosts {
			if i == j || srcCut || hostCut(g, fail, dst) {
				continue
			}
			da, dp := hostAttach(g, dst)
			rt := updown.Route{Src: src, Dst: dst}
			if sa != da {
				// First live port on the source attach switch wired to the
				// destination attach switch, in ascending port order.
				found := topology.PortID(-1)
				for pi, p := range g.Node(sa).Ports {
					if !p.Wired() || p.Peer != da {
						continue
					}
					if fail != nil && fail.LinkDead(g, sa, topology.PortID(pi)) {
						continue
					}
					found = topology.PortID(pi)
					break
				}
				if found < 0 {
					if fail != nil {
						continue // direct cable dead: pair unroutable
					}
					return nil, fmt.Errorf("vcroute: switches %d and %d not adjacent (full mesh required)", sa, da)
				}
				rt.Ports = append(rt.Ports, found)
				rt.Switches = append(rt.Switches, sa)
			}
			rt.Ports = append(rt.Ports, dp)
			rt.Switches = append(rt.Switches, da)
			routes[i][j] = rt
		}
	}
	return updown.NewCustomTable(hosts, routes)
}

// Clos builds the spine-deterministic direct routing table for a
// leaf-spine fabric built by topology.ClosWithGeom.  Inter-leaf pairs ride
// leaf -> spine -> leaf with the spine chosen as (srcLeaf+dstLeaf) mod
// nSpine — a deterministic function of the pair that spreads load across
// the spine tier.  Like the full mesh, up channels wait only on down
// channels and down channels only on host deliveries, so no virtual
// channels are needed.
//
// fail, when non-nil, restricts routing to the survivors: the spine scan
// starts at the deterministic spine and advances to the next live one, so
// a spine kill genuinely reroutes instead of pruning.  Pairs with no live
// spine (or a dead endpoint) get empty routes.
func Clos(g *topology.Graph, geo *topology.ClosGeom, fail *updown.Failures) (*updown.Table, error) {
	if geo == nil {
		return nil, fmt.Errorf("vcroute: clos geometry required (build with topology.ClosWithGeom)")
	}
	hosts := g.Hosts()
	type loc struct{ l, h int }
	at := make(map[topology.NodeID]loc, len(hosts))
	for l := range geo.Hosts {
		for h, id := range geo.Hosts[l] {
			at[id] = loc{l, h}
		}
	}
	spineLive := func(li, s, lj int) bool {
		if fail == nil {
			return true
		}
		return !fail.SwitchDead(geo.Spine[s]) &&
			!fail.LinkDead(g, geo.Leaf[li], geo.Up[li][s]) &&
			!fail.LinkDead(g, geo.Leaf[lj], geo.Up[lj][s])
	}
	routes := make([][]updown.Route, len(hosts))
	for i, src := range hosts {
		routes[i] = make([]updown.Route, len(hosts))
		sl, ok := at[src]
		if !ok {
			return nil, fmt.Errorf("vcroute: host %d not in clos geometry", src)
		}
		srcCut := hostCut(g, fail, src)
		for j, dst := range hosts {
			if i == j || srcCut || hostCut(g, fail, dst) {
				continue
			}
			dl := at[dst]
			rt := updown.Route{Src: src, Dst: dst}
			if sl.l != dl.l {
				spine := -1
				for t := 0; t < geo.NSpine; t++ {
					s := (sl.l + dl.l + t) % geo.NSpine
					if spineLive(sl.l, s, dl.l) {
						spine = s
						break
					}
				}
				if spine < 0 {
					continue // no surviving spine: pair unroutable
				}
				rt.Ports = append(rt.Ports, geo.Up[sl.l][spine], geo.Down[spine][dl.l])
				rt.Switches = append(rt.Switches, geo.Leaf[sl.l], geo.Spine[spine])
			}
			rt.Ports = append(rt.Ports, geo.HostPort[dl.l][dl.h])
			rt.Switches = append(rt.Switches, geo.Leaf[dl.l])
			routes[i][j] = rt
		}
	}
	return updown.NewCustomTable(hosts, routes)
}

// Shufflenet builds the forward-column routing table for a bidirectional
// shufflenet built by topology.BidirShufflenetWithGeom.  Every route moves
// strictly forward (column c to c+1 mod k), taking m hops with m in
// {d, d+k} for column distance d: the free digits of the row arithmetic
// pick the intermediate rows.  The virtual-channel lane of each hop is the
// number of column-wrap crossings so far, so the channel order
//
//	(lane, column) lexicographic, host sinks last
//
// strictly increases along every path — acyclic, hence deadlock-free.  A
// route crosses the wrap at most twice (m <= 2k-1), so nvc must be at
// least 3.  Route bytes are VC-encoded: the fabric must run VCHeaders with
// NumVCs >= nvc.
//
// fail, when non-nil, restricts routing to the survivors: for each pair
// the candidate paths (shorter m first, then ascending digit strings) are
// scanned for one that avoids dead links and switches — genuine path
// diversity for m > k.  Pairs with no surviving candidate get empty
// routes.
func Shufflenet(g *topology.Graph, geo *topology.ShuffleGeom, nvc int, fail *updown.Failures) (*updown.Table, error) {
	if geo == nil {
		return nil, fmt.Errorf("vcroute: shufflenet geometry required (build with topology.BidirShufflenetWithGeom)")
	}
	if nvc < 3 {
		return nil, fmt.Errorf("vcroute: forward-column shufflenet routing needs >= 3 virtual channels (wrap count reaches 2), have %d", nvc)
	}
	hosts := g.Hosts()
	type loc struct{ c, r int }
	at := make(map[topology.NodeID]loc, len(hosts))
	for c := range geo.Hosts {
		for r, id := range geo.Hosts[c] {
			at[id] = loc{c, r}
		}
	}
	pow := make([]int, 2*geo.K)
	pow[0] = 1
	for i := 1; i < len(pow); i++ {
		pow[i] = pow[i-1] * geo.P
	}
	routes := make([][]updown.Route, len(hosts))
	for i, src := range hosts {
		routes[i] = make([]updown.Route, len(hosts))
		sl, ok := at[src]
		if !ok {
			return nil, fmt.Errorf("vcroute: host %d not in shufflenet geometry", src)
		}
		srcCut := hostCut(g, fail, src)
		for j, dst := range hosts {
			if i == j || srcCut || hostCut(g, fail, dst) {
				continue
			}
			dl := at[dst]
			rt, err := shuffleRoute(g, geo, fail, pow, src, dst, sl.c, sl.r, dl.c, dl.r)
			if err != nil {
				return nil, err
			}
			routes[i][j] = rt
		}
	}
	return updown.NewCustomTable(hosts, routes)
}

// shuffleRoute computes one forward-column route, scanning candidate paths
// (shorter first, then ascending digit strings) for the first that
// survives fail.  An all-dead candidate set yields an empty route.
func shuffleRoute(g *topology.Graph, geo *topology.ShuffleGeom, fail *updown.Failures, pow []int,
	src, dst topology.NodeID, c1, r1, c2, r2 int) (updown.Route, error) {
	d := (c2 - c1 + geo.K) % geo.K
	var ms []int
	switch {
	case d == 0 && r1 == r2:
		// Same switch: host hop only.
	case d == 0:
		ms = []int{geo.K}
	default:
		ms = []int{d, d + geo.K}
	}
	tryPath := func(m, x int) (updown.Route, bool, error) {
		rt := updown.Route{Src: src, Dst: dst}
		cc, rr, lane := c1, r1, 0
		for h := 0; h < m; h++ {
			sw := geo.Sw[cc][rr]
			if fail.SwitchDead(sw) {
				return rt, false, nil
			}
			digit := (x / pow[m-1-h]) % geo.P
			p := geo.Fwd[cc][rr][digit]
			if fail.LinkDead(g, sw, p) {
				return rt, false, nil
			}
			b, err := route.EncodeVCPort(p, lane)
			if err != nil {
				return rt, false, fmt.Errorf("vcroute: %d->%d: %w", src, dst, err)
			}
			rt.Ports = append(rt.Ports, topology.PortID(b))
			rt.Switches = append(rt.Switches, sw)
			if cc == geo.K-1 {
				lane++ // wrap crossing: later hops ride the next lane
			}
			cc = (cc + 1) % geo.K
			rr = (rr*geo.P + digit) % geo.Rows
		}
		if cc != c2 || rr != r2 || fail.SwitchDead(geo.Sw[c2][r2]) {
			return rt, false, nil
		}
		// Final hop into the host, on lane 0 (hosts speak lane 0; host
		// channels always drain, so the lane reset is safe).
		b, err := route.EncodeVCPort(geo.HostPort[c2][r2], 0)
		if err != nil {
			return rt, false, fmt.Errorf("vcroute: %d->%d: %w", src, dst, err)
		}
		rt.Ports = append(rt.Ports, topology.PortID(b))
		rt.Switches = append(rt.Switches, geo.Sw[c2][r2])
		return rt, true, nil
	}
	if len(ms) == 0 {
		return tryFinal(tryPath(0, 0))
	}
	for _, m := range ms {
		// The digit string X must satisfy X = r2 - r1*p^m (mod p^k); the
		// quotient digits above p^k are free — each choice is a distinct
		// physical path, enumerated ascending for determinism.
		base := ((r2-r1*pow[m]%geo.Rows)%geo.Rows + geo.Rows) % geo.Rows
		if m < geo.K && base >= pow[m] {
			continue // too few digits to absorb the row delta
		}
		for x := base; x < pow[m]; x += geo.Rows {
			rt, ok, err := tryPath(m, x)
			if err != nil {
				return rt, err
			}
			if ok {
				return rt, nil
			}
			if fail == nil {
				break // without failures the first candidate always works
			}
		}
	}
	return updown.Route{Src: src, Dst: dst}, nil // no surviving path: pruned
}

// tryFinal adapts tryPath's 3-tuple to Shufflenet's (Route, error) shape
// for the same-switch case, where the single candidate must succeed.
func tryFinal(rt updown.Route, ok bool, err error) (updown.Route, error) {
	if err != nil {
		return rt, err
	}
	if !ok {
		return updown.Route{Src: rt.Src, Dst: rt.Dst}, nil
	}
	return rt, nil
}

// ValidateTable walks every route in tbl through the topology and reports
// ALL invalid pairs in one error — sorted by (src, dst), deterministic —
// instead of stopping at the first, so a broken builder is diagnosable in
// a single run.  vcEncoded selects VC route-byte decoding; when
// requireComplete is set, missing routes between distinct hosts are also
// reported (use it on fresh full-topology tables, not on failure-pruned
// rebuilds).
func ValidateTable(g *topology.Graph, tbl *updown.Table, vcEncoded, requireComplete bool) error {
	var bad []string
	for _, src := range tbl.Hosts {
		for _, dst := range tbl.Hosts {
			if src == dst {
				continue
			}
			if !tbl.HasRoute(src, dst) {
				if requireComplete {
					bad = append(bad, fmt.Sprintf("%d->%d: no route", src, dst))
				}
				continue
			}
			if msg := checkRoute(g, tbl.Lookup(src, dst), vcEncoded); msg != "" {
				bad = append(bad, fmt.Sprintf("%d->%d: %s", src, dst, msg))
			}
		}
	}
	if len(bad) == 0 {
		return nil
	}
	sort.Strings(bad)
	return fmt.Errorf("vcroute: %d invalid route(s):\n  %s", len(bad), joinLines(bad))
}

func joinLines(ss []string) string {
	out := ss[0]
	for _, s := range ss[1:] {
		out += "\n  " + s
	}
	return out
}

// checkRoute walks one route and returns a description of the first
// inconsistency ("" when the route is sound).  The adaptive marker route
// is accepted as-is: its hops are decided at the switches.
func checkRoute(g *topology.Graph, rt updown.Route, vcEncoded bool) string {
	if len(rt.Ports) == 1 && rt.Ports[0] == route.AdaptivePort {
		return ""
	}
	if len(rt.Ports) != len(rt.Switches) {
		return fmt.Sprintf("%d ports for %d switches", len(rt.Ports), len(rt.Switches))
	}
	sw, _ := g.HostAttachment(rt.Src)
	for i, pb := range rt.Ports {
		if rt.Switches[i] != sw {
			return fmt.Sprintf("hop %d: route says switch %d, walk is at %d", i, rt.Switches[i], sw)
		}
		port := topology.PortID(pb)
		if vcEncoded {
			p, vc := route.DecodeVCPort(byte(pb))
			if vc > 0 && i == len(rt.Ports)-1 {
				return fmt.Sprintf("hop %d: host delivery on lane %d (hosts speak lane 0)", i, vc)
			}
			port = topology.PortID(p)
		}
		if int(port) >= len(g.Node(sw).Ports) {
			return fmt.Sprintf("hop %d: port %d out of range at switch %d", i, port, sw)
		}
		p := g.Node(sw).Ports[port]
		if !p.Wired() {
			return fmt.Sprintf("hop %d: port %d of switch %d unwired", i, port, sw)
		}
		if i < len(rt.Ports)-1 {
			if g.Node(p.Peer).Kind != topology.Switch {
				return fmt.Sprintf("hop %d: left the switch fabric early (port %d of switch %d)", i, port, sw)
			}
			sw = p.Peer
		} else if p.Peer != rt.Dst {
			return fmt.Sprintf("final hop lands on node %d, not destination %d", p.Peer, rt.Dst)
		}
	}
	return ""
}
