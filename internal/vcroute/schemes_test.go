package vcroute

import (
	"strings"
	"testing"

	"wormlan/internal/route"
	"wormlan/internal/topology"
	"wormlan/internal/updown"
)

// TestClosTableSound: every route of the 8-leaf/4-spine fabric walks the
// topology to its destination, and inter-leaf pairs use the deterministic
// (srcLeaf+dstLeaf) mod nSpine spine.
func TestClosTableSound(t *testing.T) {
	g, geo := topology.ClosWithGeom(8, 4, 8, 1)
	tbl, err := Clos(g, geo, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateTable(g, tbl, false, true); err != nil {
		t.Fatal(err)
	}
	// Spot-check spine determinism: leaf 1 -> leaf 6 must ride spine 3.
	src, dst := geo.Hosts[1][0], geo.Hosts[6][0]
	rt := tbl.Lookup(src, dst)
	if len(rt.Switches) != 3 || rt.Switches[1] != geo.Spine[(1+6)%4] {
		t.Fatalf("route %d->%d rides %v, want spine %d", src, dst, rt.Switches, geo.Spine[3])
	}
}

// TestClosSpineFailover: killing the deterministic spine's uplink reroutes
// the affected pairs onto the next live spine instead of pruning them.
func TestClosSpineFailover(t *testing.T) {
	g, geo := topology.ClosWithGeom(4, 2, 2, 1)
	fail := updown.NewFailures()
	// Kill leaf0's cable to spine 0.
	fail.Links[updown.Edge{Node: geo.Leaf[0], Port: geo.Up[0][0]}] = true
	fail.Links[updown.Edge{Node: geo.Spine[0], Port: geo.Down[0][0]}] = true
	tbl, err := Clos(g, geo, fail)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateTable(g, tbl, false, true); err != nil {
		t.Fatal(err)
	}
	// leaf0 -> leaf2 would deterministically ride spine (0+2)%2 = 0; the
	// dead uplink forces spine 1.
	rt := tbl.Lookup(geo.Hosts[0][0], geo.Hosts[2][0])
	if len(rt.Switches) != 3 || rt.Switches[1] != geo.Spine[1] {
		t.Fatalf("failover route rides %v, want spine %d", rt.Switches, geo.Spine[1])
	}
}

// TestShufflenetTableSound: the (2,4) 64-host shufflenet routes every pair
// strictly forward with wrap-count lanes, and no route needs a lane above
// 2 or more than 2k-1 backbone hops.
func TestShufflenetTableSound(t *testing.T) {
	g, geo := topology.BidirShufflenetWithGeom(2, 4, 1)
	tbl, err := Shufflenet(g, geo, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateTable(g, tbl, true, true); err != nil {
		t.Fatal(err)
	}
	hosts := g.Hosts()
	maxHops := 2*geo.K - 1
	for _, src := range hosts {
		for _, dst := range hosts {
			if src == dst {
				continue
			}
			rt := tbl.Lookup(src, dst)
			if len(rt.Ports)-1 > maxHops {
				t.Fatalf("%d->%d takes %d backbone hops (max %d)", src, dst, len(rt.Ports)-1, maxHops)
			}
			prevLane := 0
			for i, pb := range rt.Ports[:len(rt.Ports)-1] {
				_, vc := route.DecodeVCPort(byte(pb))
				if vc > 2 {
					t.Fatalf("%d->%d hop %d rides lane %d (max 2)", src, dst, i, vc)
				}
				if vc < prevLane {
					t.Fatalf("%d->%d hop %d drops from lane %d to %d", src, dst, i, prevLane, vc)
				}
				prevLane = vc
			}
		}
	}
}

// TestShufflenetFailover: with a forward link dead, pairs that can absorb
// the detour in their free digits reroute (m = d+k has p^(m-k) candidate
// paths); the rebuilt table stays sound.
func TestShufflenetFailover(t *testing.T) {
	g, geo := topology.BidirShufflenetWithGeom(2, 3, 1)
	full, err := Shufflenet(g, geo, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Kill switch (0,0)'s forward arc for digit 0.
	sw := geo.Sw[0][0]
	p := geo.Fwd[0][0][0]
	peer := g.Node(sw).Ports[p].Peer
	peerPort := g.Node(sw).Ports[p].PeerPort
	fail := updown.NewFailures()
	fail.Links[updown.Edge{Node: sw, Port: p}] = true
	fail.Links[updown.Edge{Node: peer, Port: peerPort}] = true
	tbl, err := Shufflenet(g, geo, 3, fail)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateTable(g, tbl, true, false); err != nil {
		t.Fatal(err)
	}
	// Every surviving route must genuinely avoid the dead arc.
	hosts := g.Hosts()
	rerouted, pruned := 0, 0
	for _, src := range hosts {
		for _, dst := range hosts {
			if src == dst {
				continue
			}
			rt := tbl.Lookup(src, dst)
			if len(rt.Ports) == 0 {
				pruned++
				continue
			}
			for i, pb := range rt.Ports {
				port, _ := route.DecodeVCPort(byte(pb))
				if rt.Switches[i] == sw && topology.PortID(port) == p {
					t.Fatalf("%d->%d still crosses the dead arc", src, dst)
				}
			}
			old := full.Lookup(src, dst)
			if len(old.Ports) > 0 && old.Switches[0] == rt.Switches[0] && len(old.Ports) != len(rt.Ports) {
				rerouted++
			}
		}
	}
	if rerouted == 0 {
		t.Fatal("no pair took a longer detour: path diversity unused")
	}
}

// TestAdaptiveTableMarkers: every reachable pair's route is the single
// route-anywhere marker byte, accepted by ValidateTable.
func TestAdaptiveTableMarkers(t *testing.T) {
	g := topology.Torus(4, 4, 1, 1)
	ud, err := updown.New(g, topology.None)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := Adaptive(g, ud)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateTable(g, tbl, true, true); err != nil {
		t.Fatal(err)
	}
	hosts := g.Hosts()
	rt := tbl.Lookup(hosts[0], hosts[5])
	if len(rt.Ports) != 1 || rt.Ports[0] != route.AdaptivePort {
		t.Fatalf("route %v, want the single marker byte", rt.Ports)
	}
}

// TestValidateTableReportsAllPairs: a table with several broken routes is
// diagnosed in one pass — every bad pair named, sorted, not just the
// first.
func TestValidateTableReportsAllPairs(t *testing.T) {
	g := topology.Line(3, 1)
	hosts := g.Hosts()
	routes := make([][]updown.Route, len(hosts))
	for i := range routes {
		routes[i] = make([]updown.Route, len(hosts))
	}
	// Two deliberately broken routes and one missing pair; the rest stay
	// missing too, so requireComplete also fires.
	sw0, _ := g.HostAttachment(hosts[0])
	routes[0][1] = updown.Route{Src: hosts[0], Dst: hosts[1],
		Ports: []topology.PortID{99}, Switches: []topology.NodeID{sw0}}
	routes[1][0] = updown.Route{Src: hosts[1], Dst: hosts[0],
		Ports: []topology.PortID{0}, Switches: []topology.NodeID{sw0}} // wrong switch
	tbl, err := updown.NewCustomTable(hosts, routes)
	if err != nil {
		t.Fatal(err)
	}
	err = ValidateTable(g, tbl, false, true)
	if err == nil {
		t.Fatal("broken table validated")
	}
	msg := err.Error()
	for _, want := range []string{"out of range", "walk is at", "no route"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("error misses %q:\n%s", want, msg)
		}
	}
	lines := strings.Split(msg, "\n")
	if len(lines) < 4 {
		t.Fatalf("expected all bad pairs listed, got:\n%s", msg)
	}
	if !sortedLines(lines[1:]) {
		t.Fatalf("findings not sorted:\n%s", msg)
	}
}

func sortedLines(ss []string) bool {
	for i := 1; i < len(ss); i++ {
		if ss[i] < ss[i-1] {
			return false
		}
	}
	return true
}

// TestTorusTieBreakDeterministic is the even-ring tie-break audit: when
// both ring directions are minimal (distance n/2), the chosen direction
// must be a pure function of (src, dst) — independent of map iteration or
// build order.  Rebuilding the table many times must give byte-identical
// routes, and the tie itself must always resolve to the + direction.
func TestTorusTieBreakDeterministic(t *testing.T) {
	g, geo := topology.TorusWithGeom(4, 4, 1, 1)
	ref, err := TorusMinimal(g, geo, 2)
	if err != nil {
		t.Fatal(err)
	}
	hosts := g.Hosts()
	for rebuild := 0; rebuild < 5; rebuild++ {
		tbl, err := TorusMinimal(g, geo, 2)
		if err != nil {
			t.Fatal(err)
		}
		for _, src := range hosts {
			for _, dst := range hosts {
				if src == dst {
					continue
				}
				a, b := ref.Lookup(src, dst), tbl.Lookup(src, dst)
				if len(a.Ports) != len(b.Ports) {
					t.Fatalf("%d->%d: route length diverged across rebuilds", src, dst)
				}
				for i := range a.Ports {
					if a.Ports[i] != b.Ports[i] || a.Switches[i] != b.Switches[i] {
						t.Fatalf("%d->%d hop %d: %d@%d vs %d@%d across rebuilds",
							src, dst, i, a.Ports[i], a.Switches[i], b.Ports[i], b.Switches[i])
					}
				}
			}
		}
	}
	// The equal-distance pair (0,0) -> (0,2) on the 4-ring: both ways are
	// 2 hops; the tie must go +, i.e. the first hop leaves on XPlus.
	src, dst := geo.Hosts[0][0][0], geo.Hosts[0][2][0]
	rt := ref.Lookup(src, dst)
	p, _ := route.DecodeVCPort(byte(rt.Ports[0]))
	if topology.PortID(p) != geo.XPlus[0][0] {
		t.Fatalf("tie-break took port %d, want XPlus %d", p, geo.XPlus[0][0])
	}
	// And the same in Y: (0,0) -> (2,0) must leave on YPlus.
	src, dst = geo.Hosts[0][0][0], geo.Hosts[2][0][0]
	rt = ref.Lookup(src, dst)
	p, _ = route.DecodeVCPort(byte(rt.Ports[0]))
	if topology.PortID(p) != geo.YPlus[0][0] {
		t.Fatalf("Y tie-break took port %d, want YPlus %d", p, geo.YPlus[0][0])
	}
}

// TestRingStepsTieBreak pins the tie-break rule itself on even rings of
// several sizes: equal distances always resolve to +1.
func TestRingStepsTieBreak(t *testing.T) {
	for _, n := range []int{2, 4, 6, 8} {
		for a := 0; a < n; a++ {
			b := (a + n/2) % n
			steps, dir := ringSteps(a, b, n)
			if steps != n/2 || dir != +1 {
				t.Fatalf("ringSteps(%d, %d, %d) = (%d, %d), want (%d, +1)", a, b, n, steps, dir, n/2)
			}
		}
	}
}
