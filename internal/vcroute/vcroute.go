// Package vcroute computes routing tables for the two non-up/down schemes
// the fabric supports: VC-partitioned minimal (dimension-order) routing on
// a torus, and direct routing on a full mesh.
//
// Up/down routing buys deadlock freedom by detouring through the spanning
// tree root.  Minimal torus routing keeps every path shortest but its ring
// wrap-around closes a channel-dependency cycle; the classic fix (Dally &
// Seitz) partitions each ring's channels into two virtual-channel lanes
// with a *dateline*: a worm travels on lane 0 until its path crosses the
// ring's wrap edge and on lane 1 after, so the combined channel order
//
//	(x, lane0) < (x, lane1) < (y, lane0) < (y, lane1) < host sink
//
// is acyclic — lane 1 never re-crosses the wrap edge (minimal paths are
// shorter than the ring), x-before-y is dimension order, and host links
// always drain.  The lane of every hop is packed into the source-route
// byte (route.EncodeVCPort) for a fabric running with Config.VCHeaders.
//
// Full-mesh direct routing needs no virtual channels at all: every route
// is attach-switch -> peer-switch -> host, so an inter-switch channel only
// ever waits on a host delivery channel, which always drains.  The
// observation that mesh-like all-to-all fabrics admit VC-free deadlock
// freedom in exchange for switch degree is the trade studied by the
// full-mesh datacenter-topology line of work (arXiv 2510.14730); this
// package provides its LAN-scale analogue as a comparison point.
//
// Both schemes return an updown.Table so the adapter and sim layers are
// scheme-agnostic.
package vcroute

import (
	"fmt"

	"wormlan/internal/route"
	"wormlan/internal/topology"
	"wormlan/internal/updown"
)

// hostAttach resolves a host's attach switch and the switch-side port
// leading back to the host.
func hostAttach(g *topology.Graph, h topology.NodeID) (sw topology.NodeID, port topology.PortID) {
	p := g.Node(h).Ports[0]
	return p.Peer, p.PeerPort
}

// TorusMinimal builds the VC-partitioned minimal routing table for a torus
// built by topology.TorusWithGeom.  Routes are dimension-order (X then Y),
// take the shorter ring direction (ties go the + way), and switch from
// lane 0 to lane 1 after crossing each ring's wrap edge.  The table's
// route bytes are VC-encoded: the fabric must run with Config.VCHeaders
// and Config.NumVCs >= nvc.  nvc must be at least 2 (the dateline needs a
// second lane).
func TorusMinimal(g *topology.Graph, geo *topology.TorusGeom, nvc int) (*updown.Table, error) {
	return TorusMinimalSurviving(g, geo, nvc, nil)
}

// ringSteps returns the hop count and direction (+1/-1) of the shorter way
// from a to b around a ring of size n; ties go +.
func ringSteps(a, b, n int) (steps, dir int) {
	plus := (b - a + n) % n
	minus := (a - b + n) % n
	if plus <= minus {
		return plus, +1
	}
	return minus, -1
}

// torusRoute computes one VC-encoded dimension-order route.
func torusRoute(geo *topology.TorusGeom, src, dst topology.NodeID, r1, c1, r2, c2, hostIdx int) (updown.Route, error) {
	rt := updown.Route{Src: src, Dst: dst}
	appendHop := func(sw topology.NodeID, p topology.PortID, vc int) error {
		b, err := route.EncodeVCPort(p, vc)
		if err != nil {
			return fmt.Errorf("vcroute: %d->%d: %w", src, dst, err)
		}
		rt.Ports = append(rt.Ports, topology.PortID(b))
		rt.Switches = append(rt.Switches, sw)
		return nil
	}
	r, c := r1, c1
	// X dimension: walk the column ring of row r.
	steps, dir := ringSteps(c, c2, geo.Cols)
	vc := 0
	for k := 0; k < steps; k++ {
		var p topology.PortID
		var next int
		if dir > 0 {
			p = geo.XPlus[r][c]
			next = (c + 1) % geo.Cols
		} else {
			p = geo.XMinus[r][c]
			next = (c - 1 + geo.Cols) % geo.Cols
		}
		if err := appendHop(geo.Sw[r][c], p, vc); err != nil {
			return rt, err
		}
		// Dateline: crossing the ring's wrap edge moves later hops of this
		// dimension to lane 1.
		if (dir > 0 && c == geo.Cols-1) || (dir < 0 && c == 0) {
			vc = 1
		}
		c = next
	}
	// Y dimension: lanes restart at 0 — y channels are disjoint from x
	// channels, and dimension order keeps all x-holds before y-waits.
	steps, dir = ringSteps(r, r2, geo.Rows)
	vc = 0
	for k := 0; k < steps; k++ {
		var p topology.PortID
		var next int
		if dir > 0 {
			p = geo.YPlus[r][c]
			next = (r + 1) % geo.Rows
		} else {
			p = geo.YMinus[r][c]
			next = (r - 1 + geo.Rows) % geo.Rows
		}
		if err := appendHop(geo.Sw[r][c], p, vc); err != nil {
			return rt, err
		}
		if (dir > 0 && r == geo.Rows-1) || (dir < 0 && r == 0) {
			vc = 1
		}
		r = next
	}
	// Final hop into the destination host, on lane 0 (hosts speak lane 0).
	if err := appendHop(geo.Sw[r][c], geo.HostPort[r][c][hostIdx], 0); err != nil {
		return rt, err
	}
	return rt, nil
}

// FullMesh builds the direct routing table for a topology whose attach
// switches are pairwise adjacent (topology.FullMesh): same-switch pairs
// take the one-hop host route, everything else goes source switch -> peer
// switch -> host.  Route bytes are plain ports — no virtual channels are
// needed for deadlock freedom, so the table works with any NumVCs and
// with VCHeaders on or off.
func FullMesh(g *topology.Graph) (*updown.Table, error) {
	return FullMeshSurviving(g, nil)
}
