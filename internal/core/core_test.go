package core

import (
	"strings"
	"testing"
	"time"
)

func TestFig10QuickShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: TestFig10ParallelEquivalence exercises the grid")
	}
	rows, err := Fig10(Quick, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Fig10Schemes)*len(Fig10Loads(Quick)) {
		t.Fatalf("rows %d", len(rows))
	}
	byScheme := map[string][]Fig10Row{}
	for _, r := range rows {
		if r.Samples == 0 {
			t.Fatalf("no samples at %+v", r)
		}
		byScheme[r.Scheme] = append(byScheme[r.Scheme], r)
	}
	// Shape criteria from the paper: every curve rises with load, and the
	// cut-through circuit is the cheapest at the lightest load.
	for name, rs := range byScheme {
		if rs[len(rs)-1].MCLatency <= rs[0].MCLatency {
			t.Errorf("%s latency did not rise with load: %v -> %v",
				name, rs[0].MCLatency, rs[len(rs)-1].MCLatency)
		}
	}
	ct := byScheme["hamiltonian-cut-thru"][0].MCLatency
	sf := byScheme["hamiltonian"][0].MCLatency
	tree := byScheme["tree-flood"][0].MCLatency
	if ct >= sf || ct >= tree {
		t.Errorf("cut-through not cheapest at light load: ct=%v sf=%v tree=%v", ct, sf, tree)
	}
	var sb strings.Builder
	PrintFig10(&sb, rows)
	if !strings.Contains(sb.String(), "Figure 10") {
		t.Fatal("print output")
	}
}

func TestFig11QuickShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: the full shufflenet grid is minutes under -race")
	}
	rows, err := Fig11(Quick, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Tree delay below the Hamiltonian's at matching (prop, load) cells.
	type key struct {
		prop, load float64
	}
	tree := map[key]float64{}
	hc := map[key]float64{}
	for _, r := range rows {
		k := key{r.Prop, r.Load}
		if r.Scheme == "tree-flood" {
			tree[k] = r.MCLat
		} else {
			hc[k] = r.MCLat
		}
	}
	better := 0
	for k, tv := range tree {
		if hv, ok := hc[k]; ok && tv < hv {
			better++
		}
	}
	if better < len(tree)*2/3 {
		t.Errorf("tree beat hamiltonian in only %d of %d cells", better, len(tree))
	}
	var sb strings.Builder
	PrintFig11(&sb, rows)
	if !strings.Contains(sb.String(), "shufflenet") {
		t.Fatal("print output")
	}
}

func TestFig12And13Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: wall-clock emulation points are not race-job material")
	}
	single, all := Fig12And13(Quick, 250*time.Millisecond)
	if len(single) != len(Fig12Sizes(Quick)) || len(all) != len(single) {
		t.Fatalf("points %d/%d", len(single), len(all))
	}
	for _, p := range single {
		if p.LossRate != 0 {
			t.Errorf("single-sender loss at %d B: %v", p.PacketSize, p.LossRate)
		}
	}
	if single[len(single)-1].ThroughputMbps <= single[0].ThroughputMbps {
		t.Error("single-sender throughput did not rise with size")
	}
	lossSeen := false
	for _, p := range all {
		if p.LossRate > 0 {
			lossSeen = true
		}
	}
	if !lossSeen {
		t.Error("all-send produced no loss anywhere")
	}
	var sb strings.Builder
	PrintFig12And13(&sb, single, all)
	if !strings.Contains(sb.String(), "Figure 12") {
		t.Fatal("print output")
	}
}

func TestAblationBufferClasses(t *testing.T) {
	r, err := AblationBufferClasses(3)
	if err != nil {
		t.Fatal(err)
	}
	if r[0].SingleClass || !r[1].SingleClass {
		t.Fatal("row order")
	}
	if r[0].GiveUps != 0 {
		t.Errorf("two-class gave up %d times", r[0].GiveUps)
	}
	if r[1].GiveUps == 0 {
		t.Error("single-class did not livelock")
	}
	if r[0].Delivered <= r[1].Delivered {
		t.Errorf("two-class delivered %d <= single-class %d", r[0].Delivered, r[1].Delivered)
	}
	var sb strings.Builder
	PrintBufferClasses(&sb, r)
	if !strings.Contains(sb.String(), "single-class") {
		t.Fatal("print output")
	}
}

func TestAblationOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: ordering ablation is a long paired run")
	}
	r, err := AblationOrdering(4)
	if err != nil {
		t.Fatal(err)
	}
	if r[1].MCLatency <= r[0].MCLatency {
		t.Errorf("total ordering came for free: unordered=%v ordered=%v",
			r[0].MCLatency, r[1].MCLatency)
	}
	var sb strings.Builder
	PrintOrdering(&sb, r)
	if !strings.Contains(sb.String(), "ordered") {
		t.Fatal("print output")
	}
}

func TestAblationTreeConstruction(t *testing.T) {
	r, err := AblationTreeConstruction(5)
	if err != nil {
		t.Fatal(err)
	}
	if r[1].WireHops >= r[0].WireHops {
		t.Errorf("greedy tree (%d hops) not cheaper than heap tree (%d hops)",
			r[1].WireHops, r[0].WireHops)
	}
	var sb strings.Builder
	PrintTreeConstruction(&sb, r)
	if !strings.Contains(sb.String(), "greedy") {
		t.Fatal("print output")
	}
}

func TestAblationFabricVsAdapter(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: three full simulation runs")
	}
	r, err := AblationFabricVsAdapter(6)
	if err != nil {
		t.Fatal(err)
	}
	if r[0].Scheme != "switch-fabric" {
		t.Fatal("row order")
	}
	// The paper: "switch fabric based solutions provide the lowest
	// latency" for multicast...
	if r[0].MCLatency >= r[1].MCLatency || r[0].MCLatency >= r[2].MCLatency {
		t.Errorf("fabric mc latency %.0f not lowest (tree %.0f, hc %.0f)",
			r[0].MCLatency, r[1].MCLatency, r[2].MCLatency)
	}
	// ...at the cost of unicast performance under tree-restricted routing.
	if r[0].UniLat <= r[1].UniLat {
		t.Errorf("tree-restricted unicast latency %.0f not above free routing %.0f",
			r[0].UniLat, r[1].UniLat)
	}
	var sb strings.Builder
	PrintFabricVsAdapter(&sb, r)
	if !strings.Contains(sb.String(), "switch-fabric") {
		t.Fatal("print output")
	}
}

func TestAblationRouting(t *testing.T) {
	r, err := AblationRouting()
	if err != nil {
		t.Fatal(err)
	}
	if r[1].MeanHops <= r[0].MeanHops {
		t.Errorf("tree-only routing (%v) not longer than up/down (%v)",
			r[1].MeanHops, r[0].MeanHops)
	}
	var sb strings.Builder
	PrintRouting(&sb, r)
	if !strings.Contains(sb.String(), "tree-only") {
		t.Fatal("print output")
	}
}

func TestBufferOccupancyStudy(t *testing.T) {
	rows, err := BufferOccupancyStudy(7, []float64{0.01, 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows %d", len(rows))
	}
	for _, r := range rows {
		if r.Deliveries == 0 {
			t.Fatalf("no deliveries at load %v", r.Load)
		}
		if r.GiveUps != 0 {
			t.Fatalf("protocol gave up at load %v", r.Load)
		}
		if r.PeakClass1 == 0 {
			t.Fatalf("class-1 pool untouched at load %v", r.Load)
		}
	}
	// Contention grows with load: both peak occupancy and NACK rate.
	if rows[1].PeakClass1 < rows[0].PeakClass1 {
		t.Errorf("peak occupancy fell with load: %d -> %d",
			rows[0].PeakClass1, rows[1].PeakClass1)
	}
	var sb strings.Builder
	PrintBufferStudy(&sb, rows)
	if !strings.Contains(sb.String(), "nackRate") {
		t.Fatal("print output")
	}
}
