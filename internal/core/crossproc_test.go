package core

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"wormlan/internal/sweep"
)

const (
	crossProcEnv = "WORMLAN_CROSSPROC_CHILD"
	crossProcOut = "WORMLAN_CROSSPROC_OUT"
)

// TestCrossProcChild is the child half of TestCrossProcessDeterminism:
// it runs one Figure 10 point and writes the row, full float precision,
// to the file named by WORMLAN_CROSSPROC_OUT.  It is inert unless the
// parent sets WORMLAN_CROSSPROC_CHILD=1.
func TestCrossProcChild(t *testing.T) {
	if os.Getenv(crossProcEnv) != "1" {
		t.Skip("helper for TestCrossProcessDeterminism")
	}
	g := fig10Grid(Quick, 7, 0)
	g.Points = g.Points[:1] // one (scheme, load) cell is enough to detect divergence
	eng, err := sequential.engine()
	if err != nil {
		t.Fatal(err)
	}
	rows, err := sweep.Run(context.Background(), eng, g)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	for _, r := range rows {
		fmt.Fprintf(&out, "%s %v %v %v %v %d\n",
			r.Scheme, r.Load, r.MCLatency, r.Uni, r.Thpt, r.Samples)
	}
	if err := os.WriteFile(os.Getenv(crossProcOut), out.Bytes(), 0o666); err != nil {
		t.Fatal(err)
	}
}

// TestCrossProcessDeterminism runs one Fig10 point in two separate
// processes and byte-compares their output.  Each process gets its own
// map hash seed, so map-order dependence that in-process replay happens
// to miss (iteration orders that collide within one process) still shows
// up here.
func TestCrossProcessDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping cross-process run")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	run := func(name string) []byte {
		t.Helper()
		out := filepath.Join(dir, name)
		cmd := exec.Command(exe, "-test.run=^TestCrossProcChild$", "-test.count=1")
		cmd.Env = append(os.Environ(), crossProcEnv+"=1", crossProcOut+"="+out)
		if o, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("child process: %v\n%s", err, o)
		}
		b, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a := run("a")
	b := run("b")
	if len(a) == 0 {
		t.Fatal("child produced no output")
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("cross-process runs diverged:\n--- first ---\n%s--- second ---\n%s", a, b)
	}
}
