package core

import (
	"context"
	"fmt"
	"io"

	"wormlan/internal/adapter"
	"wormlan/internal/des"
	"wormlan/internal/multicast"
	"wormlan/internal/network"
	"wormlan/internal/rng"
	"wormlan/internal/sim"
	"wormlan/internal/sweep"
	"wormlan/internal/topology"
	"wormlan/internal/updown"
)

// ablationPoint is the declarative identity of one ablation cell.  The
// base seed is part of the identity (not replaced by the derived per-point
// seed): ablations are paired comparisons, so every variant must see the
// same stochastic workload and the cache must still distinguish seeds.
type ablationPoint struct {
	Ablation string  `json:"ablation"`
	Variant  string  `json:"variant"`
	Load     float64 `json:"load,omitempty"`
	Seed     uint64  `json:"seed"`
}

// runPaired runs a grid whose result slice has exactly n entries and
// copies it into the caller's fixed-size row array.
func runPaired[R any](ctx context.Context, o Options, g sweep.Grid[R], out []R) error {
	eng, err := o.engine()
	if err != nil {
		return err
	}
	rows, err := sweep.Run(ctx, eng, g)
	if err != nil {
		return err
	}
	copy(out, rows)
	return nil
}

// BufferClassResult compares the two-buffer-class rule (Figure 7) against
// the single-class negative control under crossing multicasts with
// one-worm buffers.
type BufferClassResult struct {
	SingleClass bool
	Delivered   int64
	GiveUps     int64
	Nacks       int64
	Retransmits int64
}

// runBufferClass executes one variant of the Figure 6 scenario.
func runBufferClass(single bool, seed uint64) (BufferClassResult, error) {
	var out BufferClassResult
	g := topology.Star(6)
	k := des.NewKernel()
	ud, err := updown.New(g, topology.None)
	if err != nil {
		return out, err
	}
	tbl, err := ud.NewTable(false)
	if err != nil {
		return out, err
	}
	fab, err := network.New(k, g, ud, network.Config{})
	if err != nil {
		return out, err
	}
	sys, err := adapter.NewSystem(k, fab, tbl, adapter.Config{
		Mode:        adapter.ModeCircuit,
		ClassBytes:  400,
		NackBackoff: 1024,
		MaxRetries:  8,
		SingleClass: single,
	}, seed)
	if err != nil {
		return out, err
	}
	var delivered int64
	sys.OnAppDeliver = func(adapter.AppDelivery) { delivered++ }
	hosts := g.Hosts()
	grp, err := multicast.NewGroup(1, hosts)
	if err != nil {
		return out, err
	}
	if _, err := sys.AddGroup(grp); err != nil {
		return out, err
	}
	for _, h := range hosts {
		if _, err := sys.Adapter(h).SendMulticast(1, 400); err != nil {
			return out, err
		}
	}
	if err := k.Run(0); err != nil {
		return out, err
	}
	st := sys.Stats()
	return BufferClassResult{
		SingleClass: single,
		Delivered:   delivered,
		GiveUps:     st.GiveUps,
		Nacks:       st.Nacks,
		Retransmits: st.Retransmits,
	}, nil
}

// AblationBufferClasses runs the Figure 6 scenario at system scale: every
// member of a group originates simultaneously with buffers sized for
// exactly one worm.  With two classes everything completes; with one class
// the crossing reservations livelock into NACK storms and give-ups.
func AblationBufferClasses(seed uint64) ([2]BufferClassResult, error) {
	return AblationBufferClassesWith(context.Background(), seed, sequential)
}

// AblationBufferClassesWith runs the two variants as a sweep grid.
func AblationBufferClassesWith(ctx context.Context, seed uint64, o Options) ([2]BufferClassResult, error) {
	g := sweep.Grid[BufferClassResult]{Name: "ablation-buffer-classes", BaseSeed: seed}
	for _, single := range []bool{false, true} {
		single := single
		variant := "two-class"
		if single {
			variant = "single-class"
		}
		g.Add(ablationPoint{Ablation: "buffer-classes", Variant: variant, Seed: seed},
			func(context.Context, uint64) (BufferClassResult, error) {
				return runBufferClass(single, seed)
			})
	}
	var out [2]BufferClassResult
	err := runPaired(ctx, o, g, out[:])
	return out, err
}

// PrintBufferClasses renders the ablation.
func PrintBufferClasses(w io.Writer, r [2]BufferClassResult) {
	fmt.Fprintln(w, "Ablation: two buffer classes vs single class (Figure 6/7)")
	for _, row := range r {
		name := "two-class"
		if row.SingleClass {
			name = "single-class"
		}
		fmt.Fprintf(w, "  %-12s delivered=%d giveups=%d nacks=%d retransmits=%d\n",
			name, row.Delivered, row.GiveUps, row.Nacks, row.Retransmits)
	}
}

// OrderingResult compares circuit multicast with and without total
// ordering through the lowest-ID serializer (Section 5).
type OrderingResult struct {
	Ordered   bool
	MCLatency float64
}

// AblationOrdering measures the latency cost of total ordering on the 8x8
// torus at a moderate load.
func AblationOrdering(seed uint64) ([2]OrderingResult, error) {
	return AblationOrderingWith(context.Background(), seed, sequential)
}

// AblationOrderingWith runs the two variants as a sweep grid.
func AblationOrderingWith(ctx context.Context, seed uint64, o Options) ([2]OrderingResult, error) {
	g := sweep.Grid[OrderingResult]{Name: "ablation-ordering", BaseSeed: seed}
	for _, ordered := range []bool{false, true} {
		ordered := ordered
		variant := "unordered"
		if ordered {
			variant = "ordered"
		}
		g.Add(ablationPoint{Ablation: "ordering", Variant: variant, Seed: seed},
			func(context.Context, uint64) (OrderingResult, error) {
				r, err := sim.Run(sim.Config{
					Graph:         topology.Torus(8, 8, 1, 1),
					Scheme:        sim.HamiltonianSF,
					TotalOrdering: ordered,
					OfferedLoad:   0.02,
					MulticastProb: 0.1,
					NumGroups:     10,
					GroupSize:     10,
					Warmup:        40_000,
					Measure:       200_000,
					Seed:          seed,
					Adapter:       adapter.Config{PlainForwarding: true},
				})
				if err != nil {
					return OrderingResult{}, err
				}
				return OrderingResult{Ordered: ordered, MCLatency: r.MCLatency.Mean()}, nil
			})
	}
	var out [2]OrderingResult
	err := runPaired(ctx, o, g, out[:])
	return out, err
}

// PrintOrdering renders the ablation.
func PrintOrdering(w io.Writer, r [2]OrderingResult) {
	fmt.Fprintln(w, "Ablation: total-ordering cost (circuit via lowest-ID serializer)")
	for _, row := range r {
		name := "unordered"
		if row.Ordered {
			name = "ordered"
		}
		fmt.Fprintf(w, "  %-10s mcLatency=%.0f\n", name, row.MCLatency)
	}
}

// TreeBuildResult compares the topology-aware greedy tree against the
// ID-heap tree (the Figure 8 metric at work).
type TreeBuildResult struct {
	Builder  string
	WireHops int
	Depth    int
}

// AblationTreeConstruction quantifies why tree edges must be chosen over
// the host-connectivity hop metric: total wire cost of greedy vs heap
// layout for random groups on the torus.
func AblationTreeConstruction(seed uint64) ([2]TreeBuildResult, error) {
	g := topology.Torus(8, 8, 1, 1)
	hosts := g.Hosts()
	r := rng.New(seed, 99)
	perm := r.Perm(len(hosts))
	var members []topology.NodeID
	for _, p := range perm[:10] {
		members = append(members, hosts[p])
	}
	grp, err := multicast.NewGroup(1, members)
	if err != nil {
		return [2]TreeBuildResult{}, err
	}
	heap, err := multicast.NewTreeByID(grp, 2)
	if err != nil {
		return [2]TreeBuildResult{}, err
	}
	greedy, err := multicast.NewTreeGreedy(g, grp, 2)
	if err != nil {
		return [2]TreeBuildResult{}, err
	}
	return [2]TreeBuildResult{
		{Builder: "id-heap", WireHops: heap.WireHops(g), Depth: heap.Depth()},
		{Builder: "greedy", WireHops: greedy.WireHops(g), Depth: greedy.Depth()},
	}, nil
}

// PrintTreeConstruction renders the ablation.
func PrintTreeConstruction(w io.Writer, r [2]TreeBuildResult) {
	fmt.Fprintln(w, "Ablation: tree construction (Figure 8 hop metric)")
	for _, row := range r {
		fmt.Fprintf(w, "  %-8s wireHops=%d depth=%d\n", row.Builder, row.WireHops, row.Depth)
	}
}

// FabricVsAdapterResult compares switch-level multicast (Section 3) with
// host-adapter multicast (Sections 4-6) under identical workloads.
type FabricVsAdapterResult struct {
	Scheme    string
	MCLatency float64
	UniLat    float64
}

// AblationFabricVsAdapter runs the paper's central design comparison: the
// switch fabric gives the lowest multicast latency but taxes unicast
// traffic with tree-restricted routing; the adapter schemes leave unicast
// free and pay per-hop reassembly on multicast.
func AblationFabricVsAdapter(seed uint64) ([3]FabricVsAdapterResult, error) {
	return AblationFabricVsAdapterWith(context.Background(), seed, sequential)
}

// AblationFabricVsAdapterWith runs the three schemes as a sweep grid.
func AblationFabricVsAdapterWith(ctx context.Context, seed uint64, o Options) ([3]FabricVsAdapterResult, error) {
	g := sweep.Grid[FabricVsAdapterResult]{Name: "ablation-fabric-vs-adapter", BaseSeed: seed}
	for _, scheme := range []sim.Scheme{sim.SwitchFabric, sim.TreeSF, sim.HamiltonianSF} {
		scheme := scheme
		g.Add(ablationPoint{Ablation: "fabric-vs-adapter", Variant: scheme.Name, Seed: seed},
			func(context.Context, uint64) (FabricVsAdapterResult, error) {
				r, err := sim.Run(sim.Config{
					Graph:         topology.Torus(8, 8, 1, 1),
					Scheme:        scheme,
					OfferedLoad:   0.02,
					MulticastProb: 0.1,
					NumGroups:     10,
					GroupSize:     10,
					Warmup:        40_000,
					Measure:       200_000,
					Seed:          seed,
					Adapter:       adapter.Config{PlainForwarding: true},
				})
				if err != nil {
					return FabricVsAdapterResult{}, err
				}
				return FabricVsAdapterResult{
					Scheme:    scheme.Name,
					MCLatency: r.MCLatency.Mean(),
					UniLat:    r.UniLatency.Mean(),
				}, nil
			})
	}
	var out [3]FabricVsAdapterResult
	err := runPaired(ctx, o, g, out[:])
	return out, err
}

// PrintFabricVsAdapter renders the comparison.
func PrintFabricVsAdapter(w io.Writer, r [3]FabricVsAdapterResult) {
	fmt.Fprintln(w, "Ablation: switch-fabric vs host-adapter multicast")
	for _, row := range r {
		fmt.Fprintf(w, "  %-22s mcLatency=%8.0f uniLatency=%8.0f\n",
			row.Scheme, row.MCLatency, row.UniLat)
	}
}

// RoutingResult compares unrestricted up/down routing with the
// tree-restricted discipline required by switch-level multicast scheme A
// (Section 3).
type RoutingResult struct {
	Restricted bool
	MeanHops   float64
}

// AblationRouting measures the path-length cost of restricting all worms
// to the up/down spanning tree on a topology with crosslinks.
func AblationRouting() ([2]RoutingResult, error) {
	g := topology.Torus(8, 8, 1, 1)
	ud, err := updown.New(g, topology.None)
	if err != nil {
		return [2]RoutingResult{}, err
	}
	free, err := ud.NewTable(false)
	if err != nil {
		return [2]RoutingResult{}, err
	}
	restricted, err := ud.NewTable(true)
	if err != nil {
		return [2]RoutingResult{}, err
	}
	return [2]RoutingResult{
		{Restricted: false, MeanHops: free.MeanHops()},
		{Restricted: true, MeanHops: restricted.MeanHops()},
	}, nil
}

// PrintRouting renders the ablation.
func PrintRouting(w io.Writer, r [2]RoutingResult) {
	fmt.Fprintln(w, "Ablation: up/down routing vs spanning-tree-restricted routing")
	for _, row := range r {
		name := "up/down"
		if row.Restricted {
			name = "tree-only"
		}
		fmt.Fprintf(w, "  %-10s meanHops=%.2f\n", name, row.MeanHops)
	}
}
