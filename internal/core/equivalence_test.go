package core

// Determinism-equivalence tests: the figure grids must produce
// byte-identical rows no matter how many workers the sweep engine uses.
// Every point derives its seed from its identity (grid name, base seed,
// config) rather than from execution order, so workers=8 and workers=1
// must be indistinguishable in the output.

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"wormlan/internal/sweep"
)

// assertWorkerInvariant runs the grid sequentially and with 8 workers and
// byte-compares the JSON encodings of the row slices.
func assertWorkerInvariant[R any](t *testing.T, g sweep.Grid[R]) {
	t.Helper()
	seq, err := sweep.Run(context.Background(), &sweep.Engine{Workers: 1}, g)
	if err != nil {
		t.Fatal(err)
	}
	par, err := sweep.Run(context.Background(), &sweep.Engine{Workers: 8}, g)
	if err != nil {
		t.Fatal(err)
	}
	sj, err := json.Marshal(seq)
	if err != nil {
		t.Fatal(err)
	}
	pj, err := json.Marshal(par)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sj, pj) {
		t.Fatalf("grid %s not worker-count invariant:\n seq=%s\n par=%s", g.Name, sj, pj)
	}
}

func TestFig10ParallelEquivalence(t *testing.T) {
	g := fig10Grid(Quick, 1996, 0)
	if testing.Short() {
		// Point seeds depend only on point identity, never on position, so
		// a truncated grid exercises the same property at race-job cost.
		g.Points = g.Points[:4]
	}
	assertWorkerInvariant(t, g)
}

func TestFig11ParallelEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: the trimmed Figure 10 grid covers worker invariance")
	}
	assertWorkerInvariant(t, fig11Grid(Quick, 1996))
}
