// Package core exposes the paper's experiments as one-call presets: every
// figure of the evaluation (Figures 10-13) and the ablations listed in
// DESIGN.md.  cmd/mcbench and the top-level benchmarks are thin wrappers
// around this package.
package core

import (
	"context"
	"fmt"
	"io"
	"time"

	"wormlan/internal/adapter"
	"wormlan/internal/emu"
	"wormlan/internal/sim"
	"wormlan/internal/sweep"
	"wormlan/internal/topology"
)

// Scale selects experiment fidelity.
type Scale int

const (
	// Quick runs reduced load grids and shorter windows (seconds per
	// figure) — for CI and `go test -bench`.
	Quick Scale = iota
	// Full runs the DESIGN.md grids (minutes per figure).
	Full
)

// Fig10Row is one (scheme, load) cell of Figure 10: average multicast
// latency against network load on the 8x8 torus.
type Fig10Row struct {
	Scheme    string
	Load      float64
	MCLatency float64 // byte-times
	Uni       float64
	Thpt      float64
	Samples   int64
}

// Fig10Schemes are the three curves of Figure 10.  The "tree" curve uses
// the flood-from-originator variant of Section 6: both tree variants are
// store-and-forward, but the flood's parallelism (no serializing pre-hop
// through the group root) is what sustains the paper's claim that the tree
// wins at heavy load; the rooted/ordered variant is compared separately in
// the ordering ablation.
var Fig10Schemes = []sim.Scheme{sim.HamiltonianSF, sim.HamiltonianCT, sim.TreeFlood}

// Fig10Loads returns the offered-load grid.  The paper sweeps 0.04-0.12;
// our torus saturates at about 2.5x lower offered load (see
// EXPERIMENTS.md: the paper's axis is consistent with per-host utilization
// *including* forwarded multicast copies, ours counts generated traffic
// only), so the grid spans the same region of the latency curve.
func Fig10Loads(s Scale) []float64 {
	if s == Quick {
		return []float64{0.015, 0.03, 0.045}
	}
	return []float64{0.010, 0.015, 0.020, 0.025, 0.030, 0.035, 0.040, 0.045, 0.050, 0.055, 0.060}
}

func fig10Windows(s Scale) (warm, meas int64) {
	if s == Quick {
		return 30_000, 120_000
	}
	return 60_000, 400_000
}

// figPoint is the declarative identity of one figure cell: everything
// that determines the cell's simulation, and nothing else, so the sweep
// cache key and derived seed change exactly when the cell does.
type figPoint struct {
	Scheme        string  `json:"scheme"`
	Load          float64 `json:"load"`
	MulticastProb float64 `json:"mcProb"`
	Warmup        int64   `json:"warmup"`
	Measure       int64   `json:"measure"`
	// Routing-scheme comparison knobs (the routes grid).  omitempty keeps
	// the cache keys and derived seeds of the pre-VC figures byte-stable:
	// a fig10 point still serializes exactly as it did before these fields
	// existed.
	Route  string `json:"route,omitempty"`
	NumVCs int    `json:"nvc,omitempty"`
	Arb    string `json:"arb,omitempty"`
}

// fig10Grid expresses Figure 10 as a sweep grid: one point per
// (scheme, load) cell, each running an independent kernel under a derived
// per-point seed.  nvc > 1 runs the same figure on a multi-lane fabric —
// the rows are byte-identical (routes ride lane 0; see TestVCTransparency)
// but the timing records what the extra lanes cost, which is what the
// BENCH trajectory tracks.  nvc <= 1 leaves the point identity untouched.
func fig10Grid(s Scale, seed uint64, nvc int) sweep.Grid[Fig10Row] {
	warm, meas := fig10Windows(s)
	g := sweep.Grid[Fig10Row]{Name: "fig10", BaseSeed: seed}
	if nvc <= 1 {
		nvc = 0
	}
	for _, scheme := range Fig10Schemes {
		for _, load := range Fig10Loads(s) {
			scheme, load := scheme, load
			g.Add(figPoint{Scheme: scheme.Name, Load: load, MulticastProb: 0.1, Warmup: warm, Measure: meas, NumVCs: nvc},
				func(_ context.Context, pseed uint64) (Fig10Row, error) {
					cfg := sim.Config{
						Graph:         topology.Torus(8, 8, 1, 1),
						Scheme:        scheme,
						OfferedLoad:   load,
						MulticastProb: 0.1,
						NumGroups:     10,
						GroupSize:     10,
						Warmup:        warm,
						Measure:       meas,
						Seed:          pseed,
						Adapter:       adapter.Config{PlainForwarding: true},
					}
					cfg.Network.NumVCs = nvc
					r, err := sim.Run(cfg)
					if err != nil {
						return Fig10Row{}, fmt.Errorf("fig10 %s load %v: %w", scheme.Name, load, err)
					}
					return Fig10Row{
						Scheme:    scheme.Name,
						Load:      load,
						MCLatency: r.MCLatency.Mean(),
						Uni:       r.UniLatency.Mean(),
						Thpt:      r.ThroughputPerHost,
						Samples:   r.MCDeliveries,
					}, nil
				})
		}
	}
	return g
}

// Fig10 reproduces Figure 10: average multicast latency vs offered load on
// the 8x8 torus for the Hamiltonian circuit (store-and-forward), the
// Hamiltonian circuit with cut-through, and the rooted tree.
// 10 multicast groups of 10 members, 10% multicast probability, mean worm
// 400 bytes (Section 7.1).  Sequential; see Fig10With for parallel sweeps.
func Fig10(s Scale, seed uint64) ([]Fig10Row, error) {
	return Fig10With(context.Background(), s, seed, sequential)
}

// Fig10With runs the Figure 10 grid under the given sweep options.  Rows
// are identical for any worker count: every point owns its kernel and its
// seed is derived from the point identity alone.
func Fig10With(ctx context.Context, s Scale, seed uint64, o Options) ([]Fig10Row, error) {
	return Fig10VCsWith(ctx, s, seed, o, 0)
}

// Fig10VCsWith is Fig10With on a fabric with nvc lanes per link (nvc <= 1
// is the default single-lane fabric).  The rows do not depend on nvc —
// lane transparency is pinned by TestVCTransparency — so this exists for
// the BENCH trajectory, which times the figure at NumVCs of 1, 2, and 4.
func Fig10VCsWith(ctx context.Context, s Scale, seed uint64, o Options, nvc int) ([]Fig10Row, error) {
	eng, err := o.engine()
	if err != nil {
		return nil, err
	}
	return sweep.Run(ctx, eng, fig10Grid(s, seed, nvc))
}

// PrintFig10 renders the rows as the figure's series.
func PrintFig10(w io.Writer, rows []Fig10Row) {
	fmt.Fprintln(w, "Figure 10: average multicast latency vs offered load, 8x8 torus")
	fmt.Fprintln(w, "scheme                  load    mcLatency   uniLatency   thpt/host   n")
	for _, r := range rows {
		fmt.Fprintf(w, "%-22s %6.3f   %9.0f   %9.0f    %8.4f   %d\n",
			r.Scheme, r.Load, r.MCLatency, r.Uni, r.Thpt, r.Samples)
	}
}

// Fig11Row is one (scheme, proportion, load) cell of Figure 11: average
// delay on the 24-node bidirectional shufflenet.
type Fig11Row struct {
	Scheme string
	Prop   float64
	Load   float64
	Delay  float64 // combined mean delay over all worms, byte-times
	MCLat  float64
}

// Fig11Props are the multicast-proportion curves of Figure 11.
var Fig11Props = []float64{0.05, 0.10, 0.15, 0.20}

// Fig11Loads returns the offered-load grid for the shufflenet.
func Fig11Loads(s Scale) []float64 {
	if s == Quick {
		return []float64{0.01, 0.03}
	}
	return []float64{0.005, 0.010, 0.015, 0.020, 0.025, 0.030, 0.035, 0.040, 0.045}
}

// fig11Grid expresses Figure 11 as a sweep grid: one point per
// (scheme, proportion, load) cell.
func fig11Grid(s Scale, seed uint64) sweep.Grid[Fig11Row] {
	warm, meas := int64(100_000), int64(500_000)
	if s == Full {
		warm, meas = 150_000, 800_000
	}
	g := sweep.Grid[Fig11Row]{Name: "fig11", BaseSeed: seed}
	for _, scheme := range []sim.Scheme{sim.TreeFlood, sim.HamiltonianSF} {
		for _, prop := range Fig11Props {
			for _, load := range Fig11Loads(s) {
				scheme, prop, load := scheme, prop, load
				g.Add(figPoint{Scheme: scheme.Name, Load: load, MulticastProb: prop, Warmup: warm, Measure: meas},
					func(_ context.Context, pseed uint64) (Fig11Row, error) {
						r, err := sim.Run(sim.Config{
							Graph:         topology.BidirShufflenet(2, 3, 1000),
							Scheme:        scheme,
							OfferedLoad:   load,
							MulticastProb: prop,
							NumGroups:     4,
							GroupSize:     6,
							Warmup:        warm,
							Measure:       meas,
							Seed:          pseed,
							Adapter:       adapter.Config{PlainForwarding: true},
						})
						if err != nil {
							return Fig11Row{}, fmt.Errorf("fig11 %s prop %v load %v: %w", scheme.Name, prop, load, err)
						}
						return Fig11Row{
							Scheme: scheme.Name,
							Prop:   prop,
							Load:   load,
							Delay:  r.AllLatency.Mean(),
							MCLat:  r.MCLatency.Mean(),
						}, nil
					})
			}
		}
	}
	return g
}

// Fig11 reproduces Figure 11: average delay for varying proportions of
// multicast traffic on the 24-node bidirectional shufflenet (propagation
// delay 1000 byte-times), tree vs Hamiltonian circuit; 4 groups of 6.
// Sequential; see Fig11With for parallel sweeps.
func Fig11(s Scale, seed uint64) ([]Fig11Row, error) {
	return Fig11With(context.Background(), s, seed, sequential)
}

// Fig11With runs the Figure 11 grid under the given sweep options.
func Fig11With(ctx context.Context, s Scale, seed uint64, o Options) ([]Fig11Row, error) {
	eng, err := o.engine()
	if err != nil {
		return nil, err
	}
	return sweep.Run(ctx, eng, fig11Grid(s, seed))
}

// PrintFig11 renders the rows.
func PrintFig11(w io.Writer, rows []Fig11Row) {
	fmt.Fprintln(w, "Figure 11: average delay vs offered load, 24-node bidirectional shufflenet")
	fmt.Fprintln(w, "scheme                 prop    load      delay    mcLatency")
	for _, r := range rows {
		fmt.Fprintf(w, "%-22s %4.2f  %6.3f  %9.0f   %9.0f\n",
			r.Scheme, r.Prop, r.Load, r.Delay, r.MCLat)
	}
}

// Fig12Sizes is the packet-size grid of Figures 12 and 13.
func Fig12Sizes(s Scale) []int {
	if s == Quick {
		return []int{1024, 4096, 8192}
	}
	return []int{1024, 2048, 3072, 4096, 5120, 6144, 7168, 8192}
}

// Fig12Point carries both the throughput (Figure 12) and loss (Figure 13)
// of one measured point.
type Fig12Point = emu.Point

// Fig12And13 reproduces the prototype measurements: per-host throughput
// (Figure 12) and per-host input-buffer loss (Figure 13) for a Hamiltonian
// circuit of eight hosts, single-sender and all-send, across packet sizes.
// perPoint is wall-clock time per measurement (the emulation runs time-
// dilated; see internal/emu).
func Fig12And13(s Scale, perPoint time.Duration) (single, all []Fig12Point) {
	if perPoint == 0 {
		perPoint = 1200 * time.Millisecond
		if s == Quick {
			perPoint = 400 * time.Millisecond
		}
	}
	cfg := emu.Config{TimeScale: 25}
	if s == Quick {
		cfg.TimeScale = 10
	}
	single = emu.Sweep(cfg, Fig12Sizes(s), false, perPoint)
	all = emu.Sweep(cfg, Fig12Sizes(s), true, perPoint)
	return single, all
}

// PrintFig12And13 renders both figures' rows.
func PrintFig12And13(w io.Writer, single, all []Fig12Point) {
	fmt.Fprintln(w, "Figure 12: measured per-host throughput, 8-host Hamiltonian circuit")
	fmt.Fprintln(w, "Figure 13: per-host input-buffer loss (all-send case)")
	for _, p := range single {
		fmt.Fprintf(w, "  %s\n", p)
	}
	for _, p := range all {
		fmt.Fprintf(w, "  %s\n", p)
	}
}
