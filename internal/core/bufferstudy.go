package core

import (
	"context"
	"fmt"
	"io"

	"wormlan/internal/adapter"
	"wormlan/internal/des"
	"wormlan/internal/multicast"
	"wormlan/internal/network"
	"wormlan/internal/sweep"
	"wormlan/internal/topology"
	"wormlan/internal/traffic"
	"wormlan/internal/updown"
)

// BufferStudyRow is one load point of the buffer-contention study — the
// investigation the paper leaves as work in progress in Section 9
// ("evaluating (via simulation) the actual contention for buffers (and the
// probability of deadlocks) in various load and traffic pattern
// conditions").
type BufferStudyRow struct {
	Load float64

	// PeakClass1/PeakClass2 are the highest buffer occupancies observed
	// in any adapter's two classes, in bytes.
	PeakClass1, PeakClass2 int
	// NackRate is NACKs per multicast data-worm hop: the probability that
	// the optimistic reservation of Figure 5 fails and the worm must be
	// retried.
	NackRate float64
	// Deliveries and GiveUps summarize the outcome (give-ups stay zero
	// while the protocol is healthy).
	Deliveries, GiveUps int64
}

// BufferOccupancyStudy sweeps offered load under the full reliable
// protocol (ACK/NACK reservation, two buffer classes, LANai-sized pools)
// and reports buffer contention.  The paper's conjecture — that when NACK
// probability is low a cheaper, less reliable multicast might be
// preferable — becomes measurable here.
func BufferOccupancyStudy(seed uint64, loads []float64) ([]BufferStudyRow, error) {
	return BufferOccupancyStudyWith(context.Background(), seed, loads, sequential)
}

// BufferOccupancyStudyWith runs the load grid as a sweep.  Every load
// point reuses the base seed (same groups, same arrival streams) so the
// load axis is the only thing that varies across rows.
func BufferOccupancyStudyWith(ctx context.Context, seed uint64, loads []float64, o Options) ([]BufferStudyRow, error) {
	g := sweep.Grid[BufferStudyRow]{Name: "buffer-occupancy", BaseSeed: seed}
	for _, load := range loads {
		load := load
		g.Add(ablationPoint{Ablation: "buffer-occupancy", Load: load, Seed: seed},
			func(context.Context, uint64) (BufferStudyRow, error) {
				return bufferStudyPoint(seed, load)
			})
	}
	eng, err := o.engine()
	if err != nil {
		return nil, err
	}
	return sweep.Run(ctx, eng, g)
}

// bufferStudyPoint measures one load point of the study.
func bufferStudyPoint(seed uint64, load float64) (BufferStudyRow, error) {
	var row BufferStudyRow
	g := topology.Torus(4, 4, 1, 1)
	k := des.NewKernel()
	ud, err := updown.New(g, topology.None)
	if err != nil {
		return row, err
	}
	tbl, err := ud.NewTable(false)
	if err != nil {
		return row, err
	}
	fab, err := network.New(k, g, ud, network.Config{})
	if err != nil {
		return row, err
	}
	sys, err := adapter.NewSystem(k, fab, tbl, adapter.Config{
		Mode: adapter.ModeCircuit,
	}, seed)
	if err != nil {
		return row, err
	}
	hosts := g.Hosts()
	memberSets, groupsOf, err := traffic.AssignGroups(hosts, 4, 6, seed)
	if err != nil {
		return row, err
	}
	for gi, set := range memberSets {
		grp, err := multicast.NewGroup(gi, set)
		if err != nil {
			return row, err
		}
		if _, err := sys.AddGroup(grp); err != nil {
			return row, err
		}
	}
	gen, err := traffic.New(k, traffic.Config{
		OfferedLoad:   load,
		MeanWorm:      400,
		MulticastProb: 0.15,
		Until:         200_000,
	}, hosts, groupsOf, sys, seed)
	if err != nil {
		return row, err
	}
	gen.Start()
	if err := k.Run(800_000); err != nil {
		return row, err
	}
	row.Load = load
	for _, h := range hosts {
		c1, c2, _ := sys.Adapter(h).Pools()
		if c1.Peak > row.PeakClass1 {
			row.PeakClass1 = c1.Peak
		}
		if c2.Peak > row.PeakClass2 {
			row.PeakClass2 = c2.Peak
		}
	}
	st := sys.Stats()
	row.Deliveries = st.Deliveries
	row.GiveUps = st.GiveUps
	// Hops attempted ~= deliveries minus origins' local copies plus
	// retransmissions; NACKs per attempted hop is the paper's failure
	// probability.
	hops := st.Deliveries - st.MulticastsSent + st.Retransmits
	if hops > 0 {
		row.NackRate = float64(st.Nacks) / float64(hops)
	}
	return row, nil
}

// PrintBufferStudy renders the study.
func PrintBufferStudy(w io.Writer, rows []BufferStudyRow) {
	fmt.Fprintln(w, "Buffer-contention study (Section 9 'work in progress'): reliable")
	fmt.Fprintln(w, "protocol, LANai-sized pools (12.8 KB per class), 4 groups x 6")
	fmt.Fprintln(w, "load    peakClass1  peakClass2  nackRate  deliveries  giveups")
	for _, r := range rows {
		fmt.Fprintf(w, "%5.3f   %9d   %9d   %7.4f  %10d  %7d\n",
			r.Load, r.PeakClass1, r.PeakClass2, r.NackRate, r.Deliveries, r.GiveUps)
	}
}
