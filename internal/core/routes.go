package core

// The routing-scheme comparison grid: unicast latency and throughput under
// up/down routing, VC-partitioned minimal torus routing (dateline, plain
// scan and iSLIP arbitration), Duato-style adaptive escape-lane routing,
// direct full-mesh routing, deterministic Clos spine routing, and
// shufflenet forward-column routing.  This is not a figure from the paper
// — the paper fixes up/down routing (Section 2) — but the natural
// companion experiment once the fabric has virtual channels: how much of
// the torus's path diversity does the spanning-tree discipline give up,
// and what does a richer physical topology buy instead?  The grid stays
// unicast (load comparability), though the schemes themselves now carry
// multicast too (see sim.Config.Route).

import (
	"context"
	"fmt"
	"io"

	"wormlan/internal/network"
	"wormlan/internal/sim"
	"wormlan/internal/sweep"
	"wormlan/internal/topology"
)

// RoutesRow is one (variant, load) cell of the routing comparison.
type RoutesRow struct {
	Variant string
	Load    float64
	UniLat  float64 // mean unicast latency, byte-times
	Thpt    float64 // delivered payload bytes per byte-time per host
	Samples int64
}

// RoutesVariant is one curve of the routing comparison grid.
type RoutesVariant struct {
	Name   string
	Route  string // sim.Config.Route
	NumVCs int
	Arb    string // "" = port scan, "islip" = iSLIP
}

// RoutesVariants are the comparison curves: the repo's default
// spanning-tree routing, dateline minimal routing under both arbiters,
// Duato-style adaptive routing, the VC-free full mesh, Clos spine
// routing, and shufflenet forward-column routing.  All run 64 hosts (8x8
// torus with one host per switch; 8-switch mesh with eight hosts each;
// 8-leaf Clos with eight hosts per leaf; (2,4) shufflenet with one host
// per switch) so per-host load means the same thing on every curve.
var RoutesVariants = []RoutesVariant{
	{Name: "updown", Route: "updown", NumVCs: 1},
	{Name: "vcmin", Route: "vcmin", NumVCs: 2},
	{Name: "vcmin-islip", Route: "vcmin", NumVCs: 2, Arb: "islip"},
	{Name: "adaptive", Route: "adaptive", NumVCs: 2},
	{Name: "fullmesh", Route: "fullmesh", NumVCs: 1},
	{Name: "clos", Route: "clos", NumVCs: 1},
	{Name: "shufflenet", Route: "shufflenet", NumVCs: 3},
}

// RoutesLoads returns the offered-load grid for the comparison.
func RoutesLoads(s Scale) []float64 {
	if s == Quick {
		return []float64{0.04, 0.08, 0.12}
	}
	return []float64{0.02, 0.04, 0.06, 0.08, 0.10, 0.12, 0.14, 0.16, 0.18, 0.20}
}

func routesWindows(s Scale) (warm, meas int64) {
	if s == Quick {
		return 20_000, 80_000
	}
	return 50_000, 300_000
}

// routesConfig builds the sim config for one (variant, load) cell.
func routesConfig(v RoutesVariant, load float64, warm, meas int64, seed uint64) sim.Config {
	cfg := sim.Config{
		Route:       v.Route,
		Scheme:      sim.HamiltonianSF, // multicast mode; irrelevant for pure unicast
		OfferedLoad: load,
		Warmup:      warm,
		Measure:     meas,
		Seed:        seed,
	}
	switch v.Route {
	case "fullmesh":
		cfg.Graph = topology.FullMesh(8, 8, 1)
	case "clos":
		cfg.Graph, cfg.ClosGeom = topology.ClosWithGeom(8, 4, 8, 1)
	case "shufflenet":
		cfg.Graph, cfg.ShuffleGeom = topology.BidirShufflenetWithGeom(2, 4, 1)
	default:
		g, geo := topology.TorusWithGeom(8, 8, 1, 1)
		cfg.Graph, cfg.TorusGeom = g, geo
	}
	cfg.Network.NumVCs = v.NumVCs
	if v.Arb == "islip" {
		cfg.Network.Arb = network.ArbISLIP
		cfg.Network.ArbIters = 2
	}
	return cfg
}

// VariantsWithVCs returns the default curves with every multi-lane
// variant's lane count replaced by nvc (nvc < 2 keeps the defaults) — the
// hook behind mcbench's -vcs flag.
func VariantsWithVCs(nvc int) []RoutesVariant {
	out := append([]RoutesVariant(nil), RoutesVariants...)
	if nvc < 2 {
		return out
	}
	for i := range out {
		if out[i].NumVCs >= 2 {
			out[i].NumVCs = nvc
		}
		// Shufflenet's wrap-count lanes reach 2, so it can never run below
		// three lanes regardless of the requested count.
		if out[i].Route == "shufflenet" && out[i].NumVCs < 3 {
			out[i].NumVCs = 3
		}
	}
	return out
}

// routesGrid expresses the comparison as a sweep grid: one point per
// (variant, load) cell, each with a seed derived from the point identity.
func routesGrid(s Scale, seed uint64, variants []RoutesVariant) sweep.Grid[RoutesRow] {
	warm, meas := routesWindows(s)
	g := sweep.Grid[RoutesRow]{Name: "routes", BaseSeed: seed}
	for _, v := range variants {
		for _, load := range RoutesLoads(s) {
			v, load := v, load
			g.Add(figPoint{Scheme: v.Name, Load: load, Warmup: warm, Measure: meas,
				Route: v.Route, NumVCs: v.NumVCs, Arb: v.Arb},
				func(_ context.Context, pseed uint64) (RoutesRow, error) {
					r, err := sim.Run(routesConfig(v, load, warm, meas, pseed))
					if err != nil {
						return RoutesRow{}, fmt.Errorf("routes %s load %v: %w", v.Name, load, err)
					}
					return RoutesRow{
						Variant: v.Name,
						Load:    load,
						UniLat:  r.UniLatency.Mean(),
						Thpt:    r.ThroughputPerHost,
						Samples: r.UniDeliveries,
					}, nil
				})
		}
	}
	return g
}

// Routes runs the routing comparison sequentially; see RoutesWith for
// parallel sweeps.
func Routes(s Scale, seed uint64) ([]RoutesRow, error) {
	return RoutesWith(context.Background(), s, seed, sequential)
}

// RoutesWith runs the routing comparison grid under the given sweep
// options.  Rows are identical for any worker count.
func RoutesWith(ctx context.Context, s Scale, seed uint64, o Options) ([]RoutesRow, error) {
	return RoutesWithVariants(ctx, s, seed, o, RoutesVariants)
}

// RoutesWithVariants is RoutesWith over a custom curve list (e.g. the
// default variants at a different lane count; see VariantsWithVCs).
func RoutesWithVariants(ctx context.Context, s Scale, seed uint64, o Options, variants []RoutesVariant) ([]RoutesRow, error) {
	eng, err := o.engine()
	if err != nil {
		return nil, err
	}
	return sweep.Run(ctx, eng, routesGrid(s, seed, variants))
}

// PrintRoutes renders the rows as the comparison's series.
func PrintRoutes(w io.Writer, rows []RoutesRow) {
	fmt.Fprintln(w, "Routing comparison: unicast latency vs offered load, 64 hosts")
	fmt.Fprintln(w, "variant                 load    uniLatency   thpt/host   n")
	for _, r := range rows {
		fmt.Fprintf(w, "%-22s %6.3f   %9.0f    %8.4f   %d\n",
			r.Variant, r.Load, r.UniLat, r.Thpt, r.Samples)
	}
}
