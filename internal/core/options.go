package core

import (
	"time"

	"wormlan/internal/sweep"
)

// Options selects the execution policy for an experiment sweep.  The zero
// value runs points in parallel across GOMAXPROCS workers with no cache;
// Workers == 1 is exact sequential execution (the pre-sweep behaviour).
type Options struct {
	// Workers bounds concurrent simulation points; <= 0 means GOMAXPROCS.
	Workers int
	// CacheDir, when non-empty, memoizes completed points on disk so
	// re-running a figure after editing one cell is incremental.
	CacheDir string
	// Timeout, when positive, bounds each point's wall-clock execution.
	Timeout time.Duration
	// OnProgress, when non-nil, receives one callback per completed point.
	OnProgress func(sweep.Progress)
}

// engine materializes the sweep engine for these options.
func (o Options) engine() (*sweep.Engine, error) {
	e := &sweep.Engine{Workers: o.Workers, Timeout: o.Timeout, OnProgress: o.OnProgress}
	if o.CacheDir != "" {
		c, err := sweep.NewCache(o.CacheDir)
		if err != nil {
			return nil, err
		}
		e.Cache = c
	}
	return e, nil
}

// sequential is the policy of the legacy one-call presets: one worker, no
// cache, so published entry points keep their exact historical behaviour.
var sequential = Options{Workers: 1}
