package core

import (
	"encoding/json"
	"testing"
)

// TestRoutesParallelEquivalence: the routing comparison grid is
// worker-count invariant, like every other figure grid.
func TestRoutesParallelEquivalence(t *testing.T) {
	g := routesGrid(Quick, 1996, RoutesVariants)
	if testing.Short() {
		// Point seeds depend only on point identity, never on position,
		// so a truncated grid exercises the same property at race-job
		// cost.  The slice spans two variants (updown and vcmin).
		g.Points = g.Points[:4]
	}
	assertWorkerInvariant(t, g)
}

// TestFigPointKeyStability: the routing knobs on figPoint are omitempty,
// so a pre-VC figure cell (fig10/fig11) serializes exactly as it did
// before the fields existed — its sweep cache key and derived seed are
// unchanged, and no cached figure re-runs.
func TestFigPointKeyStability(t *testing.T) {
	p := figPoint{Scheme: "hamiltonian-sf", Load: 0.03, MulticastProb: 0.1,
		Warmup: 30_000, Measure: 120_000}
	b, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"scheme":"hamiltonian-sf","load":0.03,"mcProb":0.1,"warmup":30000,"measure":120000}`
	if string(b) != want {
		t.Fatalf("pre-VC figPoint encoding changed (cache keys would rotate):\n got  %s\n want %s", b, want)
	}
}
