package ipmap

import (
	"net"
	"testing"
)

func TestMapIP(t *testing.T) {
	cases := []struct {
		ip   string
		want uint8
		ok   bool
	}{
		{"224.0.0.1", 1, true},
		{"239.1.2.3", 3, true},
		{"224.9.8.254", 254, true},
		{"224.0.0.255", 0, false}, // broadcast collision
		{"10.0.0.1", 0, false},    // not class D
		{"192.168.1.7", 0, false},
	}
	for _, c := range cases {
		g, err := MapIP(net.ParseIP(c.ip))
		if c.ok && (err != nil || g != c.want) {
			t.Errorf("MapIP(%s) = %d, %v", c.ip, g, err)
		}
		if !c.ok && err == nil {
			t.Errorf("MapIP(%s) accepted", c.ip)
		}
	}
	if _, err := MapIP(net.ParseIP("::1")); err == nil {
		t.Error("IPv6 accepted")
	}
}

func TestUnionRule(t *testing.T) {
	// Two IP groups sharing low bits (x.x.x.9): the Myrinet group must be
	// the union of both memberships.
	tb := NewTable()
	a := net.ParseIP("224.0.0.9")
	b := net.ParseIP("239.5.5.9")
	if _, err := tb.Join(1, a); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Join(2, b); err != nil {
		t.Fatal(err)
	}
	tb.Join(3, a)
	tb.Join(3, b)
	m := tb.Members(9)
	if len(m) != 3 || m[0] != 1 || m[1] != 2 || m[2] != 3 {
		t.Fatalf("union members %v", m)
	}
	// Filtering: host 1 accepts only group a.
	if !tb.Accept(1, a) || tb.Accept(1, b) {
		t.Fatal("host 1 filtering wrong")
	}
	if !tb.Accept(3, a) || !tb.Accept(3, b) {
		t.Fatal("host 3 filtering wrong")
	}
	if tb.Accept(2, a) {
		t.Fatal("host 2 accepts unjoined group")
	}
}

func TestLeaveKeepsUnionMembership(t *testing.T) {
	tb := NewTable()
	a := net.ParseIP("224.0.0.9")
	b := net.ParseIP("239.5.5.9")
	tb.Join(3, a)
	tb.Join(3, b)
	tb.Leave(3, a)
	// Still a member of Myrinet group 9 via b.
	m := tb.Members(9)
	if len(m) != 1 || m[0] != 3 {
		t.Fatalf("members after partial leave: %v", m)
	}
	if tb.Accept(3, a) {
		t.Fatal("still accepting left group")
	}
	if !tb.Accept(3, b) {
		t.Fatal("dropped remaining group")
	}
	tb.Leave(3, b)
	if len(tb.Members(9)) != 0 {
		t.Fatal("members after full leave")
	}
	if len(tb.Groups()) != 0 {
		t.Fatal("group not garbage-collected")
	}
}

func TestJoinIdempotentLeaveUnjoined(t *testing.T) {
	tb := NewTable()
	a := net.ParseIP("224.0.0.4")
	tb.Join(1, a)
	tb.Join(1, a)
	if len(tb.Members(4)) != 1 {
		t.Fatal("double join double-counted")
	}
	if _, err := tb.Leave(2, a); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Leave(1, net.ParseIP("8.8.8.8")); err == nil {
		t.Fatal("leave of non-class-D accepted")
	}
	tb.Leave(1, a)
	tb.Leave(1, a) // idempotent
	if len(tb.Members(4)) != 0 {
		t.Fatal("leave failed")
	}
}

func TestGroupsSorted(t *testing.T) {
	tb := NewTable()
	tb.Join(1, net.ParseIP("224.0.0.9"))
	tb.Join(1, net.ParseIP("224.0.0.3"))
	tb.Join(2, net.ParseIP("224.0.0.200"))
	gs := tb.Groups()
	if len(gs) != 3 || gs[0] != 3 || gs[1] != 9 || gs[2] != 200 {
		t.Fatalf("groups %v", gs)
	}
}
