// Package ipmap implements the interoperation between IP multicast and
// Myrinet multicast groups described in Section 8.1 of the paper.
//
// IP multicast uses class D addresses (224.0.0.0/4, a 28-bit group space).
// The Myrinet implementation uses eight-bit group identifiers, with group
// 255 reserved for broadcast.  The mapping takes the low eight bits of the
// class D address as the Myrinet group; collisions (distinct IP groups
// sharing low bits) are legal because the receiving IP layer filters, but
// the driver must keep each Myrinet group equal to the union of all IP
// groups sharing those low bits.
package ipmap

import (
	"fmt"
	"net"
	"sort"

	"wormlan/internal/topology"
)

// BroadcastGroup is the Myrinet group reserved for broadcast.
const BroadcastGroup uint8 = 255

// MapIP returns the Myrinet multicast group for a class D IP address.  It
// rejects non-class-D addresses and addresses whose low byte collides with
// the broadcast group.
func MapIP(ip net.IP) (uint8, error) {
	v4 := ip.To4()
	if v4 == nil {
		return 0, fmt.Errorf("ipmap: %v is not an IPv4 address", ip)
	}
	if v4[0]&0xF0 != 0xE0 {
		return 0, fmt.Errorf("ipmap: %v is not a class D (multicast) address", ip)
	}
	g := v4[3]
	if g == BroadcastGroup {
		return 0, fmt.Errorf("ipmap: %v maps to the reserved broadcast group %d", ip, BroadcastGroup)
	}
	return g, nil
}

// Table maintains the driver's view: which hosts joined which IP groups,
// and therefore which Myrinet groups must exist with which members (the
// union rule of Section 8.1).
type Table struct {
	// joined[host][ip-string] for IP-level filtering.
	joined map[topology.NodeID]map[string]bool
	// members[group][host] for the Myrinet-level union groups.
	members map[uint8]map[topology.NodeID]int // count of IP groups mapping here
}

// NewTable returns an empty membership table.
func NewTable() *Table {
	return &Table{
		joined:  make(map[topology.NodeID]map[string]bool),
		members: make(map[uint8]map[topology.NodeID]int),
	}
}

// Join records that host joined the IP multicast group ip.  It returns the
// Myrinet group the driver must (re)program.
func (t *Table) Join(host topology.NodeID, ip net.IP) (uint8, error) {
	g, err := MapIP(ip)
	if err != nil {
		return 0, err
	}
	key := ip.String()
	hj := t.joined[host]
	if hj == nil {
		hj = make(map[string]bool)
		t.joined[host] = hj
	}
	if hj[key] {
		return g, nil // idempotent
	}
	hj[key] = true
	hm := t.members[g]
	if hm == nil {
		hm = make(map[topology.NodeID]int)
		t.members[g] = hm
	}
	hm[host]++
	return g, nil
}

// Leave records that host left the IP group; the host remains a member of
// the Myrinet group while any other IP group with the same low bits keeps
// it there.
func (t *Table) Leave(host topology.NodeID, ip net.IP) (uint8, error) {
	g, err := MapIP(ip)
	if err != nil {
		return 0, err
	}
	key := ip.String()
	if !t.joined[host][key] {
		return g, nil
	}
	delete(t.joined[host], key)
	hm := t.members[g]
	hm[host]--
	if hm[host] <= 0 {
		delete(hm, host)
		if len(hm) == 0 {
			delete(t.members, g)
		}
	}
	return g, nil
}

// Members returns the hosts that must belong to the given Myrinet group —
// the union of all IP groups whose addresses share its low eight bits —
// in ascending host order (the order the circuit/tree builders expect).
func (t *Table) Members(g uint8) []topology.NodeID {
	hm := t.members[g]
	out := make([]topology.NodeID, 0, len(hm))
	for h := range hm {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Accept implements the receiver-side IP filtering: a packet for IP group
// ip delivered on the (possibly shared) Myrinet group is handed up only on
// hosts that joined that exact IP group.
func (t *Table) Accept(host topology.NodeID, ip net.IP) bool {
	return t.joined[host][ip.String()]
}

// Groups returns all active Myrinet groups in ascending order.
func (t *Table) Groups() []uint8 {
	out := make([]uint8, 0, len(t.members))
	for g := range t.members {
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
