package route

import (
	"testing"

	"wormlan/internal/topology"
)

// FuzzEncodeVCPortRoundTrip pins the VC route-byte codec — the single
// encoding authority the portbyte analyzer directs every caller to — over
// its whole input space: encode/decode round-trips exactly, lane 0 is the
// identity encoding, marker bytes are never produced, and the error cases
// are precisely the documented ones.
func FuzzEncodeVCPortRoundTrip(f *testing.F) {
	f.Add(int16(0), 0)
	f.Add(int16(63), 1)
	f.Add(int16(62), 3)
	f.Add(int16(63), 3) // would collide with End: must error
	f.Add(int16(-1), 0)
	f.Add(int16(64), 2)
	f.Fuzz(func(t *testing.T, p int16, vc int) {
		b, err := EncodeVCPort(topology.PortID(p), vc)
		wantErr := p < 0 || p > MaxVCPort || vc < 0 || vc > 3 ||
			vc<<VCShift|int(p) >= int(BroadcastPort)
		if (err != nil) != wantErr {
			t.Fatalf("EncodeVCPort(%d, %d) error = %v, want error %v", p, vc, err, wantErr)
		}
		if err != nil {
			return
		}
		if b >= BroadcastPort {
			t.Fatalf("EncodeVCPort(%d, %d) = %#x collides with a marker byte", p, vc, b)
		}
		gotPort, gotVC := DecodeVCPort(b)
		if gotPort != int(p) || gotVC != vc {
			t.Fatalf("DecodeVCPort(EncodeVCPort(%d, %d)) = (%d, %d)", p, vc, gotPort, gotVC)
		}
		if vc == 0 && b != byte(p) {
			t.Fatalf("lane 0 must be the identity encoding: EncodeVCPort(%d, 0) = %#x", p, b)
		}
	})
}

// FuzzDecodeVCPortTotal: every non-marker byte decodes to a (port, lane)
// pair that re-encodes to the same byte — decode is a bijection over the
// codec's range.
func FuzzDecodeVCPortTotal(f *testing.F) {
	f.Add(byte(0))
	f.Add(byte(0x3f))
	f.Add(byte(0x40))
	f.Add(byte(0xfd))
	f.Fuzz(func(t *testing.T, b byte) {
		if b >= BroadcastPort {
			return // marker bytes are not VC encodings
		}
		port, vc := DecodeVCPort(b)
		back, err := EncodeVCPort(topology.PortID(port), vc)
		if err != nil {
			t.Fatalf("DecodeVCPort(%#x) = (%d, %d) does not re-encode: %v", b, port, vc, err)
		}
		if back != b {
			t.Fatalf("re-encode of DecodeVCPort(%#x) = %#x", b, back)
		}
	})
}
