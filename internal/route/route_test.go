package route

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"

	"wormlan/internal/rng"
	"wormlan/internal/topology"
	"wormlan/internal/updown"
)

// paperTree is the example of Figure 2: at the first switch the worm exits
// ports 1 and 3; the copy from port 1 fans out to ports 2 and 5 (hosts);
// the copy from port 3 fans out to port 4 (then port 1, a host) and port 7
// (a host).
func paperTree() *Tree {
	return &Tree{Branches: []Branch{
		{Port: 1, Sub: &Tree{Branches: []Branch{{Port: 2}, {Port: 5}}}},
		{Port: 3, Sub: &Tree{Branches: []Branch{
			{Port: 4, Sub: &Tree{Branches: []Branch{{Port: 1}}}},
			{Port: 7},
		}}},
	}}
}

func TestEncodeDecodeRoundtripPaperExample(t *testing.T) {
	tr := paperTree()
	h, err := Encode(tr)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(h)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, back) {
		t.Fatalf("roundtrip mismatch:\n in: %v\nout: %v", tr, back)
	}
}

func TestPaperExampleSplits(t *testing.T) {
	h, err := Encode(paperTree())
	if err != nil {
		t.Fatal(err)
	}
	splits, err := SplitHeader(h)
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) != 2 {
		t.Fatalf("splits = %d, want 2", len(splits))
	}
	if splits[0].Port != 1 || splits[1].Port != 3 {
		t.Fatalf("split ports %d, %d", splits[0].Port, splits[1].Port)
	}
	// The copy exiting port 1 carries the subtree {2, 5}: its own splits
	// must be two host deliveries.
	sub, err := SplitHeader(splits[0].Header)
	if err != nil {
		t.Fatal(err)
	}
	if len(sub) != 2 || sub[0].Port != 2 || sub[1].Port != 5 {
		t.Fatalf("port-1 subtree splits: %+v", sub)
	}
	for _, s := range sub {
		if !bytes.Equal(s.Header, []byte{End}) {
			t.Fatalf("host delivery header = %v, want bare END", s.Header)
		}
	}
}

func TestTreeMetrics(t *testing.T) {
	tr := paperTree()
	if n := tr.NumLeaves(); n != 4 {
		t.Fatalf("NumLeaves = %d, want 4", n)
	}
	if d := tr.Depth(); d != 3 {
		t.Fatalf("Depth = %d, want 3", d)
	}
	if f := tr.Fanout(); f != 2 {
		t.Fatalf("Fanout = %d, want 2", f)
	}
}

func TestStringNotation(t *testing.T) {
	s := paperTree().String()
	// Regularized Figure 2 notation: same DFS order of ports as the paper.
	want := "1 P 2 P 5 P E 3 P 4 P 1 P E 7 P E E"
	if s != want {
		t.Fatalf("String = %q, want %q", s, want)
	}
}

func randomTree(r *rng.Source, depth int) *Tree {
	n := r.Intn(3) + 1
	t := &Tree{}
	usedPorts := map[int]bool{}
	for i := 0; i < n; i++ {
		p := r.Intn(32)
		for usedPorts[p] {
			p = r.Intn(32)
		}
		usedPorts[p] = true
		b := Branch{Port: topology.PortID(p)}
		if depth > 0 && r.Intn(2) == 0 {
			b.Sub = randomTree(r, depth-1)
		}
		t.Branches = append(t.Branches, b)
	}
	return t
}

func TestEncodeDecodeRoundtripProperty(t *testing.T) {
	err := quick.Check(func(seed uint64, depthRaw uint8) bool {
		r := rng.New(seed, 1)
		tr := randomTree(r, int(depthRaw%5))
		h, err := Encode(tr)
		if err != nil {
			return false
		}
		back, err := Decode(h)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(tr, back)
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitLeavesCountMatchesTree(t *testing.T) {
	// Property: recursively splitting a header visits exactly NumLeaves()
	// host deliveries.
	var countHosts func(h []byte) int
	countHosts = func(h []byte) int {
		if len(h) == 1 && h[0] == End {
			return 1
		}
		splits, err := SplitHeader(h)
		if err != nil {
			t.Fatalf("split: %v", err)
		}
		n := 0
		for _, s := range splits {
			n += countHosts(s.Header)
		}
		return n
	}
	err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed, 2)
		tr := randomTree(r, 4)
		h, err := Encode(tr)
		if err != nil {
			return false
		}
		return countHosts(h) == tr.NumLeaves()
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

func TestEncodeErrors(t *testing.T) {
	if _, err := Encode(&Tree{}); err == nil {
		t.Fatal("empty tree encoded")
	}
	if _, err := Encode(&Tree{Branches: []Branch{{Port: 300}}}); err == nil {
		t.Fatal("oversized port encoded")
	}
	if _, err := Encode(&Tree{Branches: []Branch{{Port: End}}}); err == nil {
		t.Fatal("END as port encoded")
	}
	// Subtree exceeding one-byte pointer: a chain of ~90 nodes is > 254 B.
	deep := &Tree{Branches: []Branch{{Port: 1}}}
	for i := 0; i < 90; i++ {
		deep = &Tree{Branches: []Branch{{Port: 1, Sub: deep}}}
	}
	if _, err := Encode(deep); err == nil {
		t.Fatal("oversized subtree encoded")
	}
}

func TestSplitHeaderErrors(t *testing.T) {
	cases := map[string][]byte{
		"empty":            {},
		"no end":           {1, 1},
		"port then eof":    {1},
		"zero ptr":         {1, 0, End},
		"ptr overrun":      {1, 9, End},
		"trailing garbage": {1, 1, End, 42},
		"broadcast inside": {BroadcastPort, 1, End},
	}
	for name, h := range cases {
		if _, err := SplitHeader(h); err == nil {
			t.Errorf("%s: malformed header %v accepted", name, h)
		}
	}
}

func TestDecodeBareEnd(t *testing.T) {
	tr, err := Decode([]byte{End})
	if err != nil || tr != nil {
		t.Fatalf("Decode(END) = %v, %v", tr, err)
	}
}

func TestEncodeUnicast(t *testing.T) {
	h, err := EncodeUnicast([]topology.PortID{3, 0, 7})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(h, []byte{3, 0, 7}) {
		t.Fatalf("unicast header = %v", h)
	}
	if _, err := EncodeUnicast([]topology.PortID{End}); err == nil {
		t.Fatal("END as unicast port accepted")
	}
}

func TestBroadcastHeader(t *testing.T) {
	h, err := Broadcast([]topology.PortID{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(h, []byte{2, 4, BroadcastPort}) {
		t.Fatalf("broadcast header = %v", h)
	}
}

func buildGroupTree(t *testing.T, g *topology.Graph, src topology.NodeID, dsts []topology.NodeID) *Tree {
	t.Helper()
	r, err := updown.New(g, topology.None)
	if err != nil {
		t.Fatal(err)
	}
	var routes []updown.Route
	for _, d := range dsts {
		rt, err := r.Route(src, d)
		if err != nil {
			t.Fatal(err)
		}
		routes = append(routes, rt)
	}
	tr, err := BuildTree(routes)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestBuildTreeReachesAllDestinations(t *testing.T) {
	for name, g := range map[string]*topology.Graph{
		"torus":      topology.Torus(4, 4, 1, 1),
		"myrinet4":   topology.Myrinet4(),
		"shufflenet": topology.BidirShufflenet(2, 3, 1),
	} {
		t.Run(name, func(t *testing.T) {
			hosts := g.Hosts()
			src := hosts[0]
			dsts := []topology.NodeID{hosts[2], hosts[4], hosts[5], hosts[len(hosts)-1]}
			tr := buildGroupTree(t, g, src, dsts)
			if tr.NumLeaves() != len(dsts) {
				t.Fatalf("tree has %d leaves, want %d", tr.NumLeaves(), len(dsts))
			}
			sw, _ := g.HostAttachment(src)
			got, err := Destinations(g, sw, tr)
			if err != nil {
				t.Fatal(err)
			}
			want := map[topology.NodeID]bool{}
			for _, d := range dsts {
				want[d] = true
			}
			if len(got) != len(dsts) {
				t.Fatalf("delivered to %d hosts, want %d", len(got), len(dsts))
			}
			for _, h := range got {
				if !want[h] {
					t.Fatalf("delivered to unexpected host %d", h)
				}
			}
			// And the encoded form must round-trip.
			h, err := Encode(tr)
			if err != nil {
				t.Fatal(err)
			}
			back, err := Decode(h)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(tr, back) {
				t.Fatal("group tree roundtrip mismatch")
			}
		})
	}
}

func TestBuildTreeSharesPrefix(t *testing.T) {
	// On a line, routes from h0 to h2 and h3 share the path through s1; the
	// multicast tree must have a single branch at the first switches.
	g := topology.Line(4, 1)
	hosts := g.Hosts()
	tr := buildGroupTree(t, g, hosts[0], []topology.NodeID{hosts[2], hosts[3]})
	if len(tr.Branches) != 1 {
		t.Fatalf("line tree fans out at first switch: %v", tr)
	}
	if tr.Fanout() != 2 {
		t.Fatalf("fanout = %d, want 2 (split at s2)", tr.Fanout())
	}
}

func TestBuildTreeErrors(t *testing.T) {
	if _, err := BuildTree(nil); err == nil {
		t.Fatal("empty route set accepted")
	}
	g := topology.Line(3, 1)
	r, _ := updown.New(g, topology.None)
	hosts := g.Hosts()
	r01, _ := r.Route(hosts[0], hosts[1])
	r12, _ := r.Route(hosts[1], hosts[2])
	if _, err := BuildTree([]updown.Route{r01, r12}); err == nil {
		t.Fatal("mixed-source routes accepted")
	}
	dup := []updown.Route{r01, r01}
	if _, err := BuildTree(dup); err == nil {
		t.Fatal("duplicate destination accepted")
	}
}

func TestDestinationsErrors(t *testing.T) {
	g := topology.Line(3, 1)
	sw := g.Switches()[0]
	// Port 99 does not exist.
	if _, err := Destinations(g, sw, &Tree{Branches: []Branch{{Port: 99}}}); err == nil {
		t.Fatal("unwired port accepted")
	}
	// Leaf pointing at a switch.
	var swPort topology.PortID = topology.NoPort
	for pi, p := range g.Node(sw).Ports {
		if p.Wired() && g.Node(p.Peer).Kind == topology.Switch {
			swPort = topology.PortID(pi)
		}
	}
	if _, err := Destinations(g, sw, &Tree{Branches: []Branch{{Port: swPort}}}); err == nil {
		t.Fatal("leaf to switch accepted")
	}
	// Transit pointing at a host.
	var hostPort topology.PortID = topology.NoPort
	for pi, p := range g.Node(sw).Ports {
		if p.Wired() && g.Node(p.Peer).Kind == topology.Host {
			hostPort = topology.PortID(pi)
		}
	}
	sub := &Tree{Branches: []Branch{{Port: 0}}}
	if _, err := Destinations(g, sw, &Tree{Branches: []Branch{{Port: hostPort, Sub: sub}}}); err == nil {
		t.Fatal("transit to host accepted")
	}
	// Rooted at a host.
	if _, err := Destinations(g, g.Hosts()[0], paperTree()); err == nil {
		t.Fatal("tree rooted at host accepted")
	}
}

func BenchmarkEncodeGroupTree(b *testing.B) {
	g := topology.Torus(8, 8, 1, 1)
	r, err := updown.New(g, topology.None)
	if err != nil {
		b.Fatal(err)
	}
	hosts := g.Hosts()
	var routes []updown.Route
	for i := 1; i <= 10; i++ {
		rt, err := r.Route(hosts[0], hosts[i*6])
		if err != nil {
			b.Fatal(err)
		}
		routes = append(routes, rt)
	}
	tr, err := BuildTree(routes)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(tr); err != nil {
			b.Fatal(err)
		}
	}
}
