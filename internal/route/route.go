// Package route implements Myrinet-style source-route headers: unicast
// port-number lists and the linearized multicast tree encoding of Section 3
// (Figure 2) of the paper.
//
// # Unicast headers
//
// A unicast source route is a sequence of switch output-port bytes.  Each
// switch consumes the leading byte, uses it as the crossbar output port,
// and forwards the rest of the worm; the destination host adapter receives
// the worm with the header fully stripped.
//
// # Multicast headers
//
// A multicast route is a tree of port numbers.  To keep source routing, the
// tree is linearized by depth-first traversal.  The format used here is a
// regularized version of the paper's Figure 2 (the figure's byte layout is
// ambiguous about trailing markers; this one is self-delimiting):
//
//	header := branch* END
//	branch := PORT PTR sub
//	sub    := header | ε
//
// PORT is a switch output-port byte.  PTR is the byte distance from the PTR
// byte itself to the next branch's PORT byte (or to the END byte for the
// last branch), i.e. len(sub)+1, exactly the "byte count from the pointer
// location to the pointed-to location" of the paper.  sub is the complete
// header to stamp on the copy exiting PORT; it is empty when the port leads
// to a destination host, in which case the switch stamps a bare END byte
// (the host adapter recognizes a header consisting of END alone as local
// delivery).
//
// The switch's processing rule is the paper's, verbatim: "read the port
// number and pointer value; copy the bytes indicated by the pointer to that
// port, followed by an end-of-route marker; repeat until the end-of-route
// marker is read."
package route

import (
	"errors"
	"fmt"
	"sort"

	"wormlan/internal/topology"
	"wormlan/internal/updown"
)

// End is the end-of-route marker byte.
const End = 0xFF

// MaxPort is the largest encodable port number.  0xFF is the END marker;
// 0xFE is reserved for the broadcast pseudo-port (see Broadcast).
const MaxPort = 0xFD

// BroadcastPort is a pseudo-port instructing a switch to replicate the worm
// onto every 'down' link of the up/down spanning tree (the simplified
// broadcast header of Section 3: a unicast route to the root followed by
// this byte).
const BroadcastPort = 0xFE

// AdaptivePort is the route-anywhere marker used by Duato-style adaptive
// routing: a unicast worm whose header is the single byte AdaptivePort asks
// each switch to pick the output itself — an adaptive lane (VC >= 1) of any
// minimal productive port if one is free, otherwise the deadlock-free
// lane-0 escape route — and to re-stamp the marker on the forwarded copy.
//
// The byte value deliberately aliases MaxPort: it is only interpreted as a
// marker by fabrics with an adaptive table installed (network.SetAdaptive),
// where explicit route bytes never reach 0xFD; everywhere else it remains
// an ordinary encodable port number, so EncodeUnicast needs no special case.
const AdaptivePort = 0xFD

// Tree is a multicast routing tree rooted at the first switch the worm
// enters.  Branches are the output ports taken at that switch; a branch
// with a nil Sub delivers to whatever the port is wired to (a host).
type Tree struct {
	Branches []Branch
}

// Branch is one output port of a Tree node.
type Branch struct {
	Port topology.PortID
	Sub  *Tree // nil: leaf (host delivery)
}

// NumLeaves returns the number of host deliveries in the tree.
func (t *Tree) NumLeaves() int {
	n := 0
	for _, b := range t.Branches {
		if b.Sub == nil {
			n++
		} else {
			n += b.Sub.NumLeaves()
		}
	}
	return n
}

// Depth returns the maximum switch depth of the tree (1 for a tree whose
// branches are all leaves).
func (t *Tree) Depth() int {
	d := 0
	for _, b := range t.Branches {
		sub := 1
		if b.Sub != nil {
			sub = 1 + b.Sub.Depth()
		}
		if sub > d {
			d = sub
		}
	}
	return d
}

// Fanout returns the maximum number of branches at any node of the tree;
// this is the crossbar replication factor the switch fabric must support.
func (t *Tree) Fanout() int {
	f := len(t.Branches)
	for _, b := range t.Branches {
		if b.Sub != nil {
			if s := b.Sub.Fanout(); s > f {
				f = s
			}
		}
	}
	return f
}

// Encode linearizes the tree into a multicast header.
func Encode(t *Tree) ([]byte, error) {
	var out []byte
	var enc func(t *Tree) error
	enc = func(t *Tree) error {
		if len(t.Branches) == 0 {
			return errors.New("route: tree node with no branches")
		}
		for _, b := range t.Branches {
			if b.Port < 0 || b.Port > MaxPort {
				return fmt.Errorf("route: port %d not encodable", b.Port)
			}
			out = append(out, byte(b.Port))
			ptrIdx := len(out)
			out = append(out, 0) // patched below
			if b.Sub != nil {
				if err := enc(b.Sub); err != nil {
					return err
				}
			}
			subLen := len(out) - ptrIdx - 1
			if subLen+1 > 0xFF {
				return fmt.Errorf("route: subtree of %d bytes overflows one-byte pointer", subLen)
			}
			out[ptrIdx] = byte(subLen + 1)
		}
		out = append(out, End)
		return nil
	}
	if err := enc(t); err != nil {
		return nil, err
	}
	return out, nil
}

// Split is one replication decision made by a switch processing a
// multicast header: send a copy out Port carrying Header.
type Split struct {
	Port   topology.PortID
	Header []byte
}

// SplitHeader performs the switch's processing of a multicast header: it
// returns the copies to emit, one per branch, each with the header to stamp
// on the exiting worm (a complete sub-header, or a bare END for host
// delivery).  The input must be a complete well-formed header.
func SplitHeader(h []byte) ([]Split, error) {
	var out []Split
	i := 0
	for {
		if i >= len(h) {
			return nil, errors.New("route: truncated multicast header")
		}
		if h[i] == End {
			if i != len(h)-1 {
				return nil, fmt.Errorf("route: %d trailing bytes after END", len(h)-1-i)
			}
			return out, nil
		}
		port := h[i]
		if port == BroadcastPort {
			return nil, errors.New("route: broadcast pseudo-port inside multicast header")
		}
		i++
		if i >= len(h) {
			return nil, errors.New("route: header ends after port byte")
		}
		ptr := int(h[i])
		if ptr < 1 {
			return nil, errors.New("route: zero pointer")
		}
		subStart := i + 1
		subEnd := i + ptr
		if subEnd > len(h) {
			return nil, fmt.Errorf("route: pointer %d overruns header", ptr)
		}
		sub := h[subStart:subEnd]
		var stamp []byte
		if len(sub) == 0 {
			stamp = []byte{End}
		} else {
			stamp = append([]byte(nil), sub...)
		}
		out = append(out, Split{Port: topology.PortID(port), Header: stamp})
		i = subEnd
	}
}

// Decode parses a multicast header back into a Tree.  A bare END header
// decodes to nil (local delivery).
func Decode(h []byte) (*Tree, error) {
	if len(h) == 1 && h[0] == End {
		return nil, nil
	}
	splits, err := SplitHeader(h)
	if err != nil {
		return nil, err
	}
	t := &Tree{}
	for _, s := range splits {
		var sub *Tree
		if !(len(s.Header) == 1 && s.Header[0] == End) {
			sub, err = Decode(s.Header)
			if err != nil {
				return nil, err
			}
		}
		t.Branches = append(t.Branches, Branch{Port: s.Port, Sub: sub})
	}
	return t, nil
}

// EncodeUnicast renders a unicast route as its port-byte sequence.
func EncodeUnicast(ports []topology.PortID) ([]byte, error) {
	out := make([]byte, len(ports))
	for i, p := range ports {
		if p < 0 || p > MaxPort {
			return nil, fmt.Errorf("route: port %d not encodable", p)
		}
		out[i] = byte(p)
	}
	return out, nil
}

// BuildTree merges unicast routes that share a source into a multicast
// routing tree (the per-branch routes must have been computed over the same
// routing so shared prefixes coincide).  It returns an error if two routes
// disagree about what lies beyond a port (one terminating, one continuing),
// which would indicate corrupt inputs.  Branches are ordered by port number
// so the encoding is deterministic.
func BuildTree(routes []updown.Route) (*Tree, error) {
	if len(routes) == 0 {
		return nil, errors.New("route: no routes to merge")
	}
	src := routes[0].Src
	for _, rt := range routes[1:] {
		if rt.Src != src {
			return nil, fmt.Errorf("route: mixed sources %d and %d", src, rt.Src)
		}
	}
	type suffix struct {
		ports []topology.PortID
	}
	var build func(suffixes []suffix) (*Tree, error)
	build = func(suffixes []suffix) (*Tree, error) {
		byPort := map[topology.PortID][]suffix{}
		var order []topology.PortID
		for _, s := range suffixes {
			p := s.ports[0]
			if _, ok := byPort[p]; !ok {
				order = append(order, p)
			}
			byPort[p] = append(byPort[p], suffix{s.ports[1:]})
		}
		sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
		t := &Tree{}
		for _, p := range order {
			subs := byPort[p]
			leaves, conts := 0, 0
			var contSubs []suffix
			for _, s := range subs {
				if len(s.ports) == 0 {
					leaves++
				} else {
					conts++
					contSubs = append(contSubs, s)
				}
			}
			switch {
			case leaves > 0 && conts > 0:
				return nil, fmt.Errorf("route: port %d is both terminal and transit", p)
			case leaves > 1:
				return nil, fmt.Errorf("route: duplicate destination via port %d", p)
			case leaves == 1:
				t.Branches = append(t.Branches, Branch{Port: p})
			default:
				sub, err := build(contSubs)
				if err != nil {
					return nil, err
				}
				t.Branches = append(t.Branches, Branch{Port: p, Sub: sub})
			}
		}
		return t, nil
	}
	suffixes := make([]suffix, len(routes))
	for i, rt := range routes {
		if len(rt.Ports) == 0 {
			return nil, fmt.Errorf("route: empty route to %d", rt.Dst)
		}
		suffixes[i] = suffix{rt.Ports}
	}
	return build(suffixes)
}

// Broadcast builds the simplified broadcast header of Section 3: the
// unicast route from the source to the up/down root switch followed by the
// broadcast pseudo-port.  Switches forward such a worm to every 'down'
// spanning-tree link and every attached host except the arrival port.
func Broadcast(toRoot []topology.PortID) ([]byte, error) {
	head, err := EncodeUnicast(toRoot)
	if err != nil {
		return nil, err
	}
	return append(head, BroadcastPort), nil
}

// Destinations walks the tree over the topology starting at the given
// switch and returns the hosts it delivers to, in depth-first order.  It
// errors if a leaf branch exits to a switch or a transit branch exits to a
// host — the tree does not fit the topology.
func Destinations(g *topology.Graph, sw topology.NodeID, t *Tree) ([]topology.NodeID, error) {
	if g.Node(sw).Kind != topology.Switch {
		return nil, fmt.Errorf("route: tree rooted at non-switch %d", sw)
	}
	var out []topology.NodeID
	for _, b := range t.Branches {
		ports := g.Node(sw).Ports
		if int(b.Port) >= len(ports) || !ports[b.Port].Wired() {
			return nil, fmt.Errorf("route: switch %d has no wired port %d", sw, b.Port)
		}
		peer := ports[b.Port].Peer
		if b.Sub == nil {
			if g.Node(peer).Kind != topology.Host {
				return nil, fmt.Errorf("route: leaf branch at switch %d port %d exits to a %s",
					sw, b.Port, g.Node(peer).Kind)
			}
			out = append(out, peer)
			continue
		}
		if g.Node(peer).Kind != topology.Switch {
			return nil, fmt.Errorf("route: transit branch at switch %d port %d exits to a %s",
				sw, b.Port, g.Node(peer).Kind)
		}
		sub, err := Destinations(g, peer, b.Sub)
		if err != nil {
			return nil, err
		}
		out = append(out, sub...)
	}
	return out, nil
}

// String renders the tree in the paper's "1 P 2 P 5 E ..." notation, for
// debugging and documentation.
func (t *Tree) String() string {
	h, err := Encode(t)
	if err != nil {
		return "<invalid tree: " + err.Error() + ">"
	}
	return headerString(h)
}

func headerString(h []byte) string {
	out := make([]byte, 0, len(h)*3)
	skip := -1
	for i, b := range h {
		if i > 0 {
			out = append(out, ' ')
		}
		switch {
		case i == skip:
			out = append(out, 'P')
		case b == End:
			out = append(out, 'E')
		default:
			out = appendInt(out, int(b))
			skip = i + 1
		}
	}
	return string(out)
}

func appendInt(b []byte, v int) []byte {
	return append(b, []byte(fmt.Sprintf("%d", v))...)
}
