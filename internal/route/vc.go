package route

import (
	"fmt"

	"wormlan/internal/topology"
)

// Virtual-channel header encoding.
//
// A fabric running with per-link virtual channels (network.Config.VCHeaders)
// interprets each unicast source-route byte as a (lane, port) pair packed as
//
//	byte = vc<<6 | port
//
// leaving 6 bits of port space (0..63) and 2 bits of lane space (0..3).
// The packing is chosen so that lane 0 is the identity encoding: a plain
// port byte decodes to (port, lane 0), which is exactly how a VC-oblivious
// route reads on a VC-enabled fabric.  Encoded bytes must stay clear of the
// End (0xFF) and BroadcastPort (0xFE) markers, which restricts lanes 2..3
// to ports 0..61; the dateline routing scheme only ever uses lanes 0..1.

// VCShift is the bit position of the lane id inside a VC-encoded route byte.
const VCShift = 6

// MaxVCPort is the largest port number encodable alongside a lane id.
const MaxVCPort = (1 << VCShift) - 1

// EncodeVCPort packs an output port and a virtual-channel lane into one
// unicast route byte.
func EncodeVCPort(p topology.PortID, vc int) (byte, error) {
	if p < 0 || int(p) > MaxVCPort {
		return 0, fmt.Errorf("route: port %d not encodable with a VC lane (max %d)", p, MaxVCPort)
	}
	if vc < 0 || vc > 3 {
		return 0, fmt.Errorf("route: VC lane %d out of range [0,3]", vc)
	}
	b := byte(vc)<<VCShift | byte(p)
	if b >= BroadcastPort {
		return 0, fmt.Errorf("route: VC-encoded byte 0x%02x for port %d lane %d collides with a marker", b, p, vc)
	}
	return b, nil
}

// DecodeVCPort splits a VC-encoded unicast route byte into its output port
// and lane.
func DecodeVCPort(b byte) (port int, vc int) {
	return int(b & MaxVCPort), int(b >> VCShift)
}
