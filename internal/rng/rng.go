// Package rng provides a small, fast, deterministic random number
// generator and the distribution draws used throughout the simulator.
//
// The simulator must be exactly reproducible from a seed so that every
// experiment in EXPERIMENTS.md can be regenerated bit-for-bit.  We therefore
// avoid math/rand's global state and implement PCG-XSH-RR 64/32, a small
// generator with excellent statistical properties, plus a 64-bit variant
// (PCG-XSL-RR 128/64 is overkill; we use splitmix-style expansion).
package rng

import (
	"math"
	"math/bits"
)

// Source is a deterministic pseudo-random source.  It implements the subset
// of math/rand's API that the simulator needs, plus the traffic
// distributions from the paper (Poisson interarrivals, geometric worm
// lengths).
type Source struct {
	state uint64
	inc   uint64
}

const pcgMult = 6364136223846793005

// New returns a Source seeded with seed.  Two sources with the same seed
// produce identical streams.  The stream parameter selects one of 2^63
// independent sequences; use distinct streams for independent stochastic
// processes (e.g. one per traffic generator) so that adding a generator
// does not perturb the draws seen by another.
func New(seed, stream uint64) *Source {
	s := &Source{inc: stream<<1 | 1}
	s.state = 0
	s.Uint32()
	s.state += seed
	s.Uint32()
	return s
}

// Uint32 returns the next 32 uniformly distributed bits.
func (s *Source) Uint32() uint32 {
	old := s.state
	s.state = old*pcgMult + s.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return xorshifted>>rot | xorshifted<<((-rot)&31)
}

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Source) Uint64() uint64 {
	hi := uint64(s.Uint32())
	lo := uint64(s.Uint32())
	return hi<<32 | lo
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Source) Float64() float64 {
	// 53 random bits / 2^53, the canonical construction.
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n).  It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	// Lemire's nearly-divisionless bounded draw.
	bound := uint32(n)
	for {
		v := s.Uint32()
		m := uint64(v) * uint64(bound)
		l := uint32(m)
		if l >= bound || l >= -bound%bound {
			return int(m >> 32)
		}
	}
}

// Int63n returns a uniform int64 in [0, n).  It panics if n <= 0.  Use
// this for bounds that exceed 32 bits (e.g. reservoir-sampling draws over
// an unbounded stream count, which would overflow an int conversion on
// 32-bit platforms).
func (s *Source) Int63n(n int64) int64 {
	if n <= 0 {
		panic("rng: Int63n called with n <= 0")
	}
	// Lemire's nearly-divisionless bounded draw, 64-bit.
	bound := uint64(n)
	for {
		v := s.Uint64()
		hi, lo := bits.Mul64(v, bound)
		if lo >= bound || lo >= -bound%bound {
			return int64(hi)
		}
	}
}

// Perm returns a pseudo-random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := s.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// Exp returns an exponentially distributed float64 with the given mean.
// Exponential interarrival times yield the Poisson worm-generation process
// used for all simulation experiments in the paper (Section 7.1).
func (s *Source) Exp(mean float64) float64 {
	// Inverse transform; guard against log(0).
	u := s.Float64()
	for u == 0 {
		u = s.Float64()
	}
	return -mean * math.Log(u)
}

// Geometric returns a geometrically distributed integer >= 1 with the given
// mean.  The paper draws worm lengths from a geometric distribution with a
// mean of 400 bytes (Section 7.1).  The support starts at 1: a zero-length
// worm carries no payload and is meaningless.
func (s *Source) Geometric(mean float64) int {
	if mean <= 1 {
		return 1
	}
	// For support {1, 2, ...} with success probability p, the mean is 1/p.
	p := 1 / mean
	u := s.Float64()
	for u == 0 {
		u = s.Float64()
	}
	k := int(math.Floor(math.Log(u)/math.Log(1-p))) + 1
	if k < 1 {
		k = 1
	}
	return k
}

// Poisson returns a Poisson-distributed integer with the given mean, using
// Knuth's method for small means and normal approximation above 500 (where
// Knuth's method becomes both slow and numerically fragile).
func (s *Source) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 500 {
		// Normal approximation with continuity correction.
		n := int(math.Round(mean + math.Sqrt(mean)*s.Norm()))
		if n < 0 {
			n = 0
		}
		return n
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= s.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Norm returns a standard normal draw (Box-Muller, one value per call).
func (s *Source) Norm() float64 {
	u1 := s.Float64()
	for u1 == 0 {
		u1 = s.Float64()
	}
	u2 := s.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}
