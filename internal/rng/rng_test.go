package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42, 1)
	b := New(42, 1)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestStreamsIndependent(t *testing.T) {
	a := New(42, 1)
	b := New(42, 2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint32() == b.Uint32() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams 1 and 2 coincide on %d of 1000 draws", same)
	}
}

func TestSeedChangesStream(t *testing.T) {
	a := New(1, 7)
	b := New(2, 7)
	if a.Uint64() == b.Uint64() && a.Uint64() == b.Uint64() {
		t.Fatal("different seeds produced identical draws")
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3, 3)
	for i := 0; i < 100000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(4, 4)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(5, 5)
	for n := 1; n < 40; n++ {
		seen := make([]bool, n)
		for i := 0; i < 200*n; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
			seen[v] = true
		}
		for v, ok := range seen {
			if !ok {
				t.Fatalf("Intn(%d) never produced %d", n, v)
			}
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1, 1).Intn(0)
}

func TestInt63nBounds(t *testing.T) {
	s := New(7, 7)
	for n := int64(1); n < 40; n++ {
		seen := make([]bool, n)
		for i := int64(0); i < 200*n; i++ {
			v := s.Int63n(n)
			if v < 0 || v >= n {
				t.Fatalf("Int63n(%d) = %d out of range", n, v)
			}
			seen[v] = true
		}
		for v, ok := range seen {
			if !ok {
				t.Fatalf("Int63n(%d) never produced %d", n, v)
			}
		}
	}
	// Bounds far past 32 bits stay in range — the motivating case for the
	// 64-bit draw (reservoir sampling over long streams).
	big := int64(1) << 40
	for i := 0; i < 1000; i++ {
		if v := s.Int63n(big); v < 0 || v >= big {
			t.Fatalf("Int63n(2^40) = %d out of range", v)
		}
	}
}

func TestInt63nDeterministic(t *testing.T) {
	a, b := New(11, 3), New(11, 3)
	for i := 0; i < 100; i++ {
		if va, vb := a.Int63n(1e12), b.Int63n(1e12); va != vb {
			t.Fatalf("draw %d diverged: %d vs %d", i, va, vb)
		}
	}
}

func TestInt63nPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Int63n(0) did not panic")
		}
	}()
	New(1, 1).Int63n(0)
}

func TestPermIsPermutation(t *testing.T) {
	s := New(6, 6)
	if err := quick.Check(func(nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := s.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExpMean(t *testing.T) {
	s := New(7, 7)
	for _, mean := range []float64{1, 10, 400, 1000} {
		sum := 0.0
		const n = 100000
		for i := 0; i < n; i++ {
			sum += s.Exp(mean)
		}
		got := sum / n
		if math.Abs(got-mean)/mean > 0.03 {
			t.Fatalf("Exp mean = %v, want ~%v", got, mean)
		}
	}
}

func TestGeometricMeanAndSupport(t *testing.T) {
	s := New(8, 8)
	for _, mean := range []float64{2, 40, 400} {
		sum := 0.0
		const n = 100000
		for i := 0; i < n; i++ {
			v := s.Geometric(mean)
			if v < 1 {
				t.Fatalf("Geometric produced %d < 1", v)
			}
			sum += float64(v)
		}
		got := sum / n
		if math.Abs(got-mean)/mean > 0.05 {
			t.Fatalf("Geometric(%v) mean = %v", mean, got)
		}
	}
}

func TestGeometricDegenerate(t *testing.T) {
	s := New(9, 9)
	for i := 0; i < 100; i++ {
		if v := s.Geometric(0.5); v != 1 {
			t.Fatalf("Geometric(0.5) = %d, want 1", v)
		}
		if v := s.Geometric(1); v != 1 {
			t.Fatalf("Geometric(1) = %d, want 1", v)
		}
	}
}

func TestPoissonMean(t *testing.T) {
	s := New(10, 10)
	for _, mean := range []float64{0.5, 4, 80, 600} {
		sum := 0.0
		const n = 50000
		for i := 0; i < n; i++ {
			sum += float64(s.Poisson(mean))
		}
		got := sum / n
		if math.Abs(got-mean)/math.Max(mean, 1) > 0.05 {
			t.Fatalf("Poisson(%v) mean = %v", mean, got)
		}
	}
}

func TestPoissonZeroMean(t *testing.T) {
	s := New(11, 11)
	if v := s.Poisson(0); v != 0 {
		t.Fatalf("Poisson(0) = %d", v)
	}
	if v := s.Poisson(-1); v != 0 {
		t.Fatalf("Poisson(-1) = %d", v)
	}
}

func TestNormMoments(t *testing.T) {
	s := New(12, 12)
	sum, sumSq := 0.0, 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		v := s.Norm()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %v", variance)
	}
}

func TestShuffleCoversArrangements(t *testing.T) {
	s := New(13, 13)
	counts := map[[3]int]int{}
	for i := 0; i < 6000; i++ {
		arr := [3]int{0, 1, 2}
		s.Shuffle(3, func(i, j int) { arr[i], arr[j] = arr[j], arr[i] })
		counts[arr]++
	}
	if len(counts) != 6 {
		t.Fatalf("shuffle produced %d of 6 arrangements", len(counts))
	}
	for arr, c := range counts {
		if c < 700 || c > 1300 {
			t.Fatalf("arrangement %v count %d far from uniform 1000", arr, c)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1, 1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkGeometric400(b *testing.B) {
	s := New(1, 1)
	for i := 0; i < b.N; i++ {
		_ = s.Geometric(400)
	}
}
